package pokeholes

// This file implements the streaming batch API: Campaign fans a pool of
// fuzzed (or explicit) programs out over the engine's worker pool, checks
// every optimization level of a configuration, and streams per-program
// results back in seed order so aggregation is deterministic regardless of
// worker count.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/compiler"
	"repro/internal/fuzzgen"
	"repro/internal/minic"
)

// OptLevels returns a family's optimizing levels (everything but O0), the
// default level sweep of a campaign.
func OptLevels(f Family) []string {
	all := compiler.GCLevels
	if f == CL {
		all = compiler.CLLevels
	}
	out := make([]string, 0, len(all)-1)
	for _, l := range all {
		if l != "O0" {
			out = append(out, l)
		}
	}
	return out
}

// CampaignSpec describes one batch run.
type CampaignSpec struct {
	// Family and Version select the compiler under test.
	Family  Family
	Version string
	// Levels are the optimization levels to check (default: OptLevels).
	Levels []string
	// Matrix switches the campaign to matrix mode: every program is swept
	// across the whole version × level grid via Engine.Sweep (the frontend
	// of each program is lowered exactly once for the grid), and
	// Family/Version/Levels above are ignored. Result.Sweep carries the
	// per-config reports.
	Matrix *Matrix
	// N programs are fuzzed from seeds Seed0..Seed0+N-1 ...
	N     int
	Seed0 int64
	// ... unless Programs supplies them explicitly (Result.Seed is then
	// the index).
	Programs []*minic.Program
	// Measure also computes the §2 metrics of every level against the O0
	// reference build.
	Measure bool
	// Triage also attributes every violation to a culprit optimization.
	Triage bool
	// ReduceSchedules additionally delta-debugs every violation's pass
	// schedule to its minimal reproducing subsequence
	// (Engine.ScheduleReduce) and reports it in Result.Schedules. It
	// requires Triage: the hunt enriches bucket signatures with both.
	ReduceSchedules bool
}

// Result is one program's campaign outcome. Results arrive in seed order.
type Result struct {
	// Index is the program's position in the campaign (0-based); Seed is
	// its fuzzer seed (or Index when the spec supplied explicit programs).
	Index int
	Seed  int64
	Prog  *minic.Program
	// Violations maps each checked level to its conjecture violations
	// (single-version campaigns; nil in matrix mode).
	Violations map[string][]Violation
	// Sweep holds the matrix-mode outcome: per-config reports in
	// Matrix.Configs order (nil in single-version campaigns).
	Sweep *SweepResult
	// Metrics maps each level to its §2 measures (when spec.Measure; in
	// matrix mode the metrics live in Sweep.Metrics instead).
	Metrics map[string]Metrics
	// Culprits maps level+"|"+violation-key (matrix mode: the full config
	// string + "|" + key) to the triaged culprit pass (when spec.Triage);
	// empty string means not single-knob controllable.
	Culprits map[string]string
	// Schedules maps the same keys as Culprits to the canonical string of
	// the violation's minimal reproducing pass schedule (when
	// spec.ReduceSchedules); empty string means the reduction failed or
	// the violation pre-dates the optimizer.
	Schedules map[string]string
	// Err is the first error this program's checks hit, if any.
	Err error
}

// Culprit returns the triaged culprit of a violation at a level.
func (r *Result) Culprit(level string, v Violation) (string, bool) {
	c, ok := r.Culprits[level+"|"+v.Key()]
	return c, ok
}

// CulpritAt returns the triaged culprit of a violation at a matrix
// configuration (matrix-mode campaigns).
func (r *Result) CulpritAt(cfg Config, v Violation) (string, bool) {
	c, ok := r.Culprits[cfg.String()+"|"+v.Key()]
	return c, ok
}

// Schedule returns the minimal reproducing pass schedule of a violation
// at a level (canonical string form; ReduceSchedules campaigns).
func (r *Result) Schedule(level string, v Violation) (string, bool) {
	s, ok := r.Schedules[level+"|"+v.Key()]
	return s, ok
}

// ScheduleAt returns the minimal reproducing pass schedule of a violation
// at a matrix configuration (ReduceSchedules matrix campaigns).
func (r *Result) ScheduleAt(cfg Config, v Violation) (string, bool) {
	s, ok := r.Schedules[cfg.String()+"|"+v.Key()]
	return s, ok
}

// Campaign runs the spec over the engine's worker pool and returns a
// channel that yields one Result per program, strictly in seed order. The
// channel closes when the campaign finishes or ctx is cancelled; on
// cancellation in-flight programs may be dropped, but the delivered prefix
// is always contiguous. Identical specs yield identical result streams at
// any worker count.
//
// Cancel contract: a consumer that stops receiving before the channel
// closes MUST cancel ctx (and may then abandon the channel — draining is
// optional). Cancellation releases every campaign goroutine: the feeder
// and the workers select on ctx.Done alongside their channel sends, and
// the reorder goroutine drains the workers before exiting. Abandoning the
// channel without cancelling leaks the pool: the reorder goroutine stays
// blocked on its send to the consumer, and the workers behind it.
func (e *Engine) Campaign(ctx context.Context, spec CampaignSpec) (<-chan Result, error) {
	if spec.Matrix != nil {
		if err := spec.Matrix.withDefaults().validate(); err != nil {
			return nil, err
		}
	} else {
		if spec.Family != GC && spec.Family != CL {
			return nil, fmt.Errorf("pokeholes: unknown family %q", spec.Family)
		}
		if (Config{Family: spec.Family, Version: spec.Version}).VersionIndex() < 0 {
			return nil, fmt.Errorf("pokeholes: unknown version %q for family %s", spec.Version, spec.Family)
		}
	}
	if spec.ReduceSchedules && !spec.Triage {
		return nil, fmt.Errorf("pokeholes: ReduceSchedules requires Triage")
	}
	jobs := spec.N
	if len(spec.Programs) > 0 {
		jobs = len(spec.Programs)
	}
	if jobs <= 0 {
		return nil, fmt.Errorf("pokeholes: empty campaign (N == 0 and no programs)")
	}
	var levels []string
	if spec.Matrix == nil {
		levels = spec.Levels
		if len(levels) == 0 {
			levels = OptLevels(spec.Family)
		}
	}
	workers := e.workers
	if workers > jobs {
		workers = jobs
	}

	indexCh := make(chan int)
	resCh := make(chan Result, workers)
	out := make(chan Result)

	// The dispatch window bounds how far the pool may run ahead of the
	// slowest in-flight job, so the reorder buffer (and the Results it
	// holds) stays O(workers) instead of O(jobs) when job costs are skewed.
	window := 4 * workers
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	go func() {
		defer close(indexCh)
		for i := 0; i < jobs; i++ {
			select {
			case <-tokens:
			case <-ctx.Done():
				return
			}
			select {
			case indexCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indexCh {
				// The send races the reorder goroutine's exit on
				// cancellation: once it stops draining resCh, an
				// unconditional send here would strand the worker (and
				// wg.Wait, and the resCh close) forever.
				select {
				case resCh <- e.campaignJob(ctx, spec, idx, levels):
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Reassemble in seed order: workers finish out of order, but the feeder
	// dispatched a contiguous prefix of indices, so buffering until the next
	// expected index arrives yields a gap-free ordered stream.
	go func() {
		defer close(out)
		pending := map[int]Result{}
		next := 0
		for r := range resCh {
			pending[r.Index] = r
			for {
				nr, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case out <- nr:
				case <-ctx.Done():
					// Consumer gone: drain the workers and stop.
					for range resCh {
					}
					return
				}
				next++
				// Refund the emitted result's dispatch credit. At most
				// `window` jobs are outstanding, so this never blocks.
				select {
				case tokens <- struct{}{}:
				default:
				}
			}
		}
	}()
	return out, nil
}

// campaignJob runs one program through every level of the spec (or, in
// matrix mode, through the whole configuration matrix in one Sweep).
func (e *Engine) campaignJob(ctx context.Context, spec CampaignSpec, idx int, levels []string) Result {
	r := Result{Index: idx}
	if len(spec.Programs) > 0 {
		r.Seed = int64(idx)
		r.Prog = spec.Programs[idx]
	} else {
		r.Seed = spec.Seed0 + int64(idx)
		r.Prog = fuzzgen.GenerateSeed(r.Seed)
	}
	if spec.Triage {
		r.Culprits = map[string]string{}
	}
	if spec.ReduceSchedules {
		r.Schedules = map[string]string{}
	}
	if spec.Matrix != nil {
		mx := *spec.Matrix
		if spec.Measure {
			mx.Measure = true
		}
		// One worker: the campaign pool is already e.workers wide, so the
		// per-program config grid runs serially inside this job to keep
		// total engine concurrency at the WithWorkers bound.
		sr, err := e.sweep(ctx, r.Prog, mx, 1)
		if err != nil {
			r.Err = fmt.Errorf("seed %d matrix: %w", r.Seed, err)
			return r
		}
		r.Sweep = sr
		if spec.Triage {
			for i, rep := range sr.Reports {
				for _, v := range rep.Violations {
					culprit, err := e.Triage(ctx, r.Prog, sr.Configs[i], v)
					if err != nil {
						culprit = "" // not controllable by a single knob (§4.3)
					}
					r.Culprits[sr.Configs[i].String()+"|"+v.Key()] = culprit
					if spec.ReduceSchedules {
						r.Schedules[sr.Configs[i].String()+"|"+v.Key()] =
							e.reduceScheduleStr(ctx, r.Prog, sr.Configs[i], v)
					}
				}
			}
		}
		return r
	}
	r.Violations = map[string][]Violation{}
	if spec.Measure {
		r.Metrics = map[string]Metrics{}
	}
	for _, level := range levels {
		if err := ctx.Err(); err != nil {
			r.Err = err
			return r
		}
		cfg := Config{Family: spec.Family, Version: spec.Version, Level: level}
		rep, err := e.Check(ctx, r.Prog, cfg)
		if err != nil {
			r.Err = fmt.Errorf("seed %d %s: %w", r.Seed, cfg, err)
			return r
		}
		r.Violations[level] = rep.Violations
		if spec.Measure {
			m, err := e.Measure(ctx, r.Prog, cfg)
			if err != nil {
				r.Err = fmt.Errorf("seed %d %s: %w", r.Seed, cfg, err)
				return r
			}
			r.Metrics[level] = m
		}
		if spec.Triage {
			for _, v := range rep.Violations {
				culprit, err := e.Triage(ctx, r.Prog, cfg, v)
				if err != nil {
					culprit = "" // not controllable by a single knob (§4.3)
				}
				r.Culprits[level+"|"+v.Key()] = culprit
				if spec.ReduceSchedules {
					r.Schedules[level+"|"+v.Key()] = e.reduceScheduleStr(ctx, r.Prog, cfg, v)
				}
			}
		}
	}
	return r
}

// reduceScheduleStr flattens Engine.ScheduleReduce to the canonical
// schedule string Result.Schedules and corpus signatures carry; a failed
// reduction (or one finding the violation pre-dates the optimizer) is the
// empty string, which signatures treat as "no schedule component".
func (e *Engine) reduceScheduleStr(ctx context.Context, prog *minic.Program, cfg Config, v Violation) string {
	red, err := e.ScheduleReduce(ctx, prog, cfg, v)
	if err != nil {
		return ""
	}
	return red.Schedule.String()
}
