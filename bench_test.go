package pokeholes_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro"
	"repro/internal/compiler"
	"repro/internal/conjecture"
	"repro/internal/experiments"
	"repro/internal/fuzzgen"
	"repro/internal/minic"
)

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the mapping and the recorded shapes).
// Program counts are scaled down from the paper's 1000/5000 so a full
// -bench=. run stays in CI territory; cmd/paperbench runs the full sizes.
// Each iteration runs on a fresh engine session so the caches start cold.

const (
	benchPrograms       = 30
	benchTriagePrograms = 6
	benchSeed           = 42
)

// crossValidateMatches sinks the legacy-baseline revalidation result of
// BenchmarkCrossValidate so the comparison loop cannot be elided.
var crossValidateMatches int

func benchRunner() *experiments.Runner {
	return experiments.NewRunner(pokeholes.NewEngine())
}

// BenchmarkFigure1 regenerates the §2 quantitative study (line coverage,
// availability of variables, product across versions and levels).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Figure1(context.Background(), benchPrograms/3, benchSeed, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the per-level violation counts.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := benchRunner().Table1(context.Background(), benchPrograms, benchSeed, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the clang-like level-set distribution.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lv, err := benchRunner().Sweep(context.Background(), compiler.CL, "trunk", benchPrograms, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Figure23(lv, io.Discard)
	}
}

// BenchmarkFigure3 regenerates the gcc-like level-set distribution.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lv, err := benchRunner().Sweep(context.Background(), compiler.GC, "trunk", benchPrograms, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Figure23(lv, io.Discard)
	}
}

// BenchmarkTable2 regenerates the triaged culprit ranking (the expensive
// experiment: every violation is bisected or flag-searched).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Table2(context.Background(), benchTriagePrograms, benchSeed, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the issue catalog table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard)
	}
}

// BenchmarkTable4 regenerates the cross-version regression study (one
// matrix campaign per family).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Table4(context.Background(), benchPrograms/2, benchSeed, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the per-program violation grid.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchRunner().Figure4(context.Background(), benchPrograms/2, benchSeed, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinePerProgram measures the single-program end-to-end cost
// (generate, compile, trace, check one conjecture sweep) — the paper
// reports ~30 s/program on its server; this quantifies our substrate.
// The engine's cache is disabled so every iteration is a cold run.
func BenchmarkPipelinePerProgram(b *testing.B) {
	eng := pokeholes.NewEngine(pokeholes.WithCompileCache(0))
	for i := 0; i < b.N; i++ {
		prog := pokeholes.GenerateProgram(int64(i))
		if _, err := eng.Check(context.Background(), prog, pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileOnly isolates the compiler (lower + optimize + codegen),
// with the cache disabled so each iteration really compiles.
func BenchmarkCompileOnly(b *testing.B) {
	eng := pokeholes.NewEngine(pokeholes.WithCompileCache(0))
	prog := pokeholes.GenerateProgram(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Compile(context.Background(), prog, pokeholes.Config{Family: pokeholes.CL, Version: "trunk", Level: "O3"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOnly isolates the debugger session over a fixed binary.
func BenchmarkTraceOnly(b *testing.B) {
	prog := pokeholes.GenerateProgram(7)
	exe, err := pokeholes.NewEngine().Compile(context.Background(), prog, pokeholes.Config{Family: pokeholes.CL, Version: "trunk", Level: "O3"})
	if err != nil {
		b.Fatal(err)
	}
	dbg := pokeholes.NativeDebugger(pokeholes.CL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pokeholes.RecordTrace(exe, dbg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFirstHitVsFullLoop quantifies design decision 2 of
// DESIGN.md: first-hit line checking versus stopping at every breakpoint
// hit. The recorded trace is the same; the cost difference is the number of
// debugger stops.
func BenchmarkAblationFirstHitVsFullLoop(b *testing.B) {
	prog := pokeholes.GenerateProgram(11)
	exe, err := pokeholes.NewEngine().Compile(context.Background(), prog, pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"})
	if err != nil {
		b.Fatal(err)
	}
	dbg := pokeholes.NativeDebugger(pokeholes.GC)
	b.Run("first-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pokeholes.RecordTrace(exe, dbg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFuzzgen isolates test-subject generation.
func BenchmarkFuzzgen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fuzzgen.GenerateSeed(int64(i))
	}
}

// BenchmarkCampaignSweep measures one engine campaign (Table 1's
// substrate: every level of gc trunk over the seed pool), with a fresh
// engine per iteration so the cache starts cold.
func BenchmarkCampaignSweep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := pokeholes.NewEngine(pokeholes.WithWorkers(workers))
				results, err := eng.Campaign(context.Background(), pokeholes.CampaignSpec{
					Family: pokeholes.GC, Version: "trunk",
					N: benchPrograms, Seed0: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				for res := range results {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// BenchmarkSweepVsIndependentChecks pins the tentpole claim on the
// paper's actual matrix workload (check + §2 metrics per configuration,
// the Figure 1 substrate): one Engine.Sweep over a family's full
// version × level matrix beats the same grid evaluated as independent
// per-config sessions. The sweep lowers the frontend once, analyzes once,
// and records each version's O0 reference trace once; the independent
// loop — what a per-config driver does without a matrix primitive —
// re-derives all of that for every configuration, on top of running the
// configs serially instead of over the worker pool.
func BenchmarkSweepVsIndependentChecks(b *testing.B) {
	prog := pokeholes.GenerateProgram(7)
	mx := pokeholes.FullMatrix(pokeholes.GC)
	mx.Measure = true
	configs := mx.Configs()
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := pokeholes.NewEngine()
			if _, err := eng.Sweep(context.Background(), prog, mx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// One fresh session per config: work is shared within a config
			// (Measure reuses Check's trace) but never across configs.
			for _, cfg := range configs {
				eng := pokeholes.NewEngine()
				if _, err := eng.Check(context.Background(), prog, cfg); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Measure(context.Background(), prog, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSweepPrefixSnapshots measures the schedule-prefix snapshot
// tier on its headline workload: a full gc version × level sweep, where
// sibling levels share long canonical-schedule prefixes. "cold" disables
// the tier; "snapshot" is the default engine. Both run serially (one
// worker) so the reported passes/op and skipped/op are deterministic —
// byte-identical reports, ~quarter fewer pass executions.
func BenchmarkSweepPrefixSnapshots(b *testing.B) {
	prog := pokeholes.GenerateProgram(7)
	mx := pokeholes.FullMatrix(pokeholes.GC)
	for _, mode := range []struct {
		name string
		opts []pokeholes.Option
	}{
		{"cold", []pokeholes.Option{pokeholes.WithWorkers(1), pokeholes.WithOptSnapshots(false)}},
		{"snapshot", []pokeholes.Option{pokeholes.WithWorkers(1)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var run, skipped int64
			for i := 0; i < b.N; i++ {
				eng := pokeholes.NewEngine(mode.opts...)
				if _, err := eng.Sweep(context.Background(), prog, mx); err != nil {
					b.Fatal(err)
				}
				s := eng.Stats()
				run += s.PassesRun
				skipped += s.PassesSkipped
			}
			b.ReportMetric(float64(run)/float64(b.N), "passes/op")
			b.ReportMetric(float64(skipped)/float64(b.N), "skipped/op")
		})
	}
}

// BenchmarkScheduleReducePrefixSnapshots measures the tier on ddmin's
// probe stream: every ScheduleReduce probe is an explicit schedule sharing
// prefixes with earlier probes, so a snapshot-warm engine optimizes only
// suffixes. The warming Check runs outside the timer; passes/op counts
// only the reduction's own optimizer work.
func BenchmarkScheduleReducePrefixSnapshots(b *testing.B) {
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	prog, report := findViolatingSeed(b, cfg)
	v := report.Violations[0]
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		opts []pokeholes.Option
	}{
		{"cold", []pokeholes.Option{pokeholes.WithWorkers(1), pokeholes.WithOptSnapshots(false)}},
		{"snapshot", []pokeholes.Option{pokeholes.WithWorkers(1)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var run int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := pokeholes.NewEngine(mode.opts...)
				if _, err := eng.Check(ctx, prog, cfg); err != nil {
					b.Fatal(err)
				}
				before := eng.Stats().PassesRun
				b.StartTimer()
				if _, err := eng.ScheduleReduce(ctx, prog, cfg, v); err != nil {
					b.Fatal(err)
				}
				run += eng.Stats().PassesRun - before
			}
			b.ReportMetric(float64(run)/float64(b.N), "passes/op")
		})
	}
}

// findViolatingSeed scans fuzzed programs for one whose check reports at
// least one violation, so the cross-validation test and benchmark have
// real work. Shared by TestCrossValidateSharesExecution and
// BenchmarkCrossValidate so both probe the same corpus the same way.
func findViolatingSeed(tb testing.TB, cfg pokeholes.Config) (*minic.Program, *pokeholes.Report) {
	tb.Helper()
	eng := pokeholes.NewEngine()
	for seed := int64(1); seed < 200; seed++ {
		prog := pokeholes.GenerateProgram(seed)
		r, err := eng.Check(context.Background(), prog, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		if len(r.Violations) > 0 {
			return prog, r
		}
	}
	tb.Fatal("no violating program in the probe seed range")
	return nil, nil
}

// BenchmarkCrossValidate pins the tentpole claim end to end: the paper's
// §4.2 pipeline checks a binary and cross-validates its violations in the
// other debugger engine. The single-pass session layer records both engine
// views from ONE VM execution; the legacy shape — still measurable through
// the public facade — re-executes the binary under the second engine.
// Both sub-benchmarks run on a fresh engine per iteration (cold caches)
// and report their measured vm-executions/op: 1 vs 2 per binary.
func BenchmarkCrossValidate(b *testing.B) {
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	prog, report := findViolatingSeed(b, cfg)
	violations := report.Violations
	ctx := context.Background()

	b.Run("single-pass", func(b *testing.B) {
		var executions int64
		for i := 0; i < b.N; i++ {
			eng := pokeholes.NewEngine()
			if _, err := eng.Check(ctx, prog, cfg); err != nil {
				b.Fatal(err)
			}
			for _, v := range violations {
				if _, err := eng.CrossValidate(ctx, prog, cfg, v); err != nil {
					b.Fatal(err)
				}
			}
			executions += eng.Stats().Traces
		}
		b.ReportMetric(float64(executions)/float64(b.N), "vm-executions/op")
	})
	b.Run("two-pass-legacy", func(b *testing.B) {
		// The pre-Recorder shape: one recorded execution for the check,
		// then a second full execution under the other debugger engine.
		other, err := pokeholes.DebuggerByName("lldb")
		if err != nil {
			b.Fatal(err)
		}
		var executions int64
		for i := 0; i < b.N; i++ {
			eng := pokeholes.NewEngine()
			if _, err := eng.Check(ctx, prog, cfg); err != nil {
				b.Fatal(err)
			}
			exe, err := eng.Compile(ctx, prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := pokeholes.RecordTrace(exe, other)
			if err != nil {
				b.Fatal(err)
			}
			facts := eng.Facts(prog)
			revalidated := conjecture.CheckAll(facts, tr)
			matched := 0
			for _, v := range violations {
				for _, got := range revalidated {
					if got.Key() == v.Key() {
						matched++
						break
					}
				}
			}
			crossValidateMatches += matched
			executions += eng.Stats().Traces + 1 // + the manual second pass
		}
		b.ReportMetric(float64(executions)/float64(b.N), "vm-executions/op")
	})
}

// BenchmarkCheckCachedVsCold quantifies what the compile cache buys on
// repeated checks of one program (the Check->Triage->Minimize baseline).
func BenchmarkCheckCachedVsCold(b *testing.B) {
	prog := pokeholes.GenerateProgram(7)
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	b.Run("cold", func(b *testing.B) {
		eng := pokeholes.NewEngine(pokeholes.WithCompileCache(0))
		for i := 0; i < b.N; i++ {
			if _, err := eng.Check(context.Background(), prog, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := pokeholes.NewEngine()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Check(context.Background(), prog, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
