// Command paperbench regenerates the paper's tables and figures at
// configurable scale and prints them as text.
//
// Usage:
//
//	paperbench [-exp all|fig1|tab1|fig23|tab2|tab3|tab4|fig4|regress] [-n 200] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compiler"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1, tab1, fig23, tab2, tab3, tab4, fig4, regress, all")
	n := flag.Int("n", 200, "number of fuzzed programs (paper: 1000 for tables, 5000 for fig1)")
	nTriage := flag.Int("ntriage", 10, "programs for the triage table (expensive)")
	seed := flag.Int64("seed", 1, "first seed")
	flag.Parse()
	w := os.Stdout

	run := func(id string) bool { return *exp == "all" || *exp == id }

	if run("fig1") {
		if _, err := experiments.Figure1(*n/4, *seed, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	var gc, cl *experiments.LevelViolations
	if run("tab1") || run("fig23") {
		var err error
		gc, cl, err = experiments.Table1(*n, *seed, w)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if run("fig23") {
		fmt.Fprintln(w, "Figure 2 (cl):")
		experiments.Figure23(cl, w)
		fmt.Fprintln(w, "Figure 3 (gc):")
		experiments.Figure23(gc, w)
		fmt.Fprintln(w)
	}
	if run("tab2") {
		if _, err := experiments.Table2(*nTriage, *seed, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if run("tab3") {
		experiments.Table3(w)
		fmt.Fprintln(w)
	}
	if run("tab4") {
		if _, err := experiments.Table4(*n/2, *seed, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if run("fig4") {
		if err := experiments.Figure4(*n/2, *seed, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if run("regress") {
		t1, p1, og, err := experiments.RegressionAvailability(*n/4, *seed, w)
		if err != nil {
			fatal(err)
		}
		if og > t1 {
			closed := (p1 - t1) / (og - t1)
			fmt.Fprintf(w, "the patch closes %.0f%% of the O1 -> Og availability gap (paper: ~50%%)\n", closed*100)
		}
	}
	_ = compiler.GC
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
