// Command paperbench regenerates the paper's tables and figures at
// configurable scale and prints them as text, or as machine-readable JSON
// with -json for benchmark trajectories. Experiments run on an Engine
// session whose worker pool parallelizes each campaign.
//
// Usage:
//
//	paperbench [-exp all|fig1|tab1|fig23|tab2|tab3|tab4|fig4|regress|matrix|hunt|herd]
//	           [-matrix] [-n 200] [-seed 1] [-workers 0] [-cache 4096] [-json]
//	           [-bench-json BENCH_trace.json]
//
// -matrix (or -exp matrix) runs the full version × level grid of both
// families as one Engine.Sweep matrix campaign per family: every program
// is lowered exactly once for its whole grid. -exp hunt runs a budgeted
// deduplicated Engine.Hunt and prints the unique-bugs-over-time curve.
// -exp herd runs the distributed-hunting scaling experiment
// (experiments.ScalingCurve): the same total fuzzing budget spent by 1,
// 4 and 16 sharded replicas, their corpora merged via corpus.Merge, as
// merged-unique-buckets-over-wall-clock curves.
//
// -bench-json FILE times the hot tracing paths — check, full-matrix sweep,
// and check + cross-validate — on cold engine sessions and writes their
// ns-per-op (plus the measured VM executions per cross-validated binary)
// as JSON; CI runs it every push and uploads the file as the benchmark
// trajectory artifact. It also writes BENCH_store.json next to FILE,
// timing a cold compilation against a disk load of the same build from a
// pre-warmed artifact store, and BENCH_frontend.json, timing the
// function-granular incremental frontend (cold, one-function-changed,
// one-statement-deleted, unchanged, with functions-relowered-per-op)
// against the whole-program frontend, and BENCH_schedule.json, timing one
// ScheduleReduce delta-debugging run on a warm engine (every ddmin probe
// reuses the cached lowered module) against the same reduction forced to
// recompile from scratch on every probe, with the probes-per-op count,
// and BENCH_passes.json, timing the schedule-prefix snapshot tier (full
// gc sweep and one ScheduleReduce, cold vs snapshot-warm, with per-op
// pass-execution counts and snapshot hit rates; the snapshot sweep must
// run >= 25% fewer passes and the snapshot reduction strictly fewer),
// and BENCH_herd.json, the distributed-hunting scaling curves (1 vs 4 vs
// 16 sharded replicas at equal total budget, merged via corpus.Merge)
// with the 4-replica-dominates-solo acceptance check enforced.
// Alone it runs only the benchmarks; combined with -exp or -matrix it
// runs both.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"strings"

	"repro"
	"repro/internal/compiler"
	"repro/internal/experiments"
	"repro/internal/minic"
)

// experimentJSON is one -json record: identity, wall time, and the
// experiment-specific payload.
type experimentJSON struct {
	Experiment  string  `json:"experiment"`
	Programs    int     `json:"programs"`
	Seed        int64   `json:"seed"`
	WallSeconds float64 `json:"wall_seconds"`
	Payload     any     `json:"payload,omitempty"`
}

type reportJSON struct {
	Experiments []experimentJSON      `json:"experiments"`
	Engine      pokeholes.EngineStats `json:"engine"`
	Workers     int                   `json:"workers"`
	TotalWallS  float64               `json:"total_wall_seconds"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1, tab1, fig23, tab2, tab3, tab4, fig4, regress, matrix, hunt, herd, all")
	matrix := flag.Bool("matrix", false, "run the full version × level matrix sweep of both families (alone: only the matrix; with -exp: in addition)")
	n := flag.Int("n", 200, "number of fuzzed programs (paper: 1000 for tables, 5000 for fig1)")
	nTriage := flag.Int("ntriage", 10, "programs for the triage table (expensive)")
	seed := flag.Int64("seed", 1, "first seed")
	workers := flag.Int("workers", 0, "campaign worker-pool size (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", pokeholes.DefaultCacheSize, "compile-cache entries (0 disables)")
	jsonOut := flag.Bool("json", false, "emit machine-readable per-experiment results on stdout")
	benchJSON := flag.String("bench-json", "", "write check/sweep/cross-validate ns-per-op to this file (alone: benchmarks only)")
	flag.Parse()
	// A bare -matrix means "just the matrix", not "everything plus the
	// matrix"; an explicitly passed -exp selection (including "all") keeps
	// running alongside it.
	expSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			expSet = true
		}
	})
	if *matrix && !expSet {
		*exp = "matrix"
	}
	if *benchJSON != "" {
		if err := writeBenchTrace(*benchJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "paperbench: wrote", *benchJSON)
		storeJSON := filepath.Join(filepath.Dir(*benchJSON), "BENCH_store.json")
		if err := writeBenchStore(storeJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "paperbench: wrote", storeJSON)
		frontendJSON := filepath.Join(filepath.Dir(*benchJSON), "BENCH_frontend.json")
		if err := writeBenchFrontend(frontendJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "paperbench: wrote", frontendJSON)
		scheduleJSON := filepath.Join(filepath.Dir(*benchJSON), "BENCH_schedule.json")
		if err := writeBenchSchedule(scheduleJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "paperbench: wrote", scheduleJSON)
		passesJSON := filepath.Join(filepath.Dir(*benchJSON), "BENCH_passes.json")
		if err := writeBenchPasses(passesJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "paperbench: wrote", passesJSON)
		herdJSON := filepath.Join(filepath.Dir(*benchJSON), "BENCH_herd.json")
		if err := writeBenchHerd(herdJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "paperbench: wrote", herdJSON)
		// A bare -bench-json means "just the trajectory".
		if !expSet && !*matrix {
			return
		}
	}

	var opts []pokeholes.Option
	if *workers > 0 {
		opts = append(opts, pokeholes.WithWorkers(*workers))
	}
	opts = append(opts, pokeholes.WithCompileCache(*cacheSize))
	eng := pokeholes.NewEngine(opts...)
	runner := experiments.NewRunner(eng)
	ctx := context.Background()

	var w io.Writer = os.Stdout
	if *jsonOut {
		w = io.Discard
	}
	var records []experimentJSON
	t0 := time.Now()
	record := func(id string, programs int, payload any, start time.Time) {
		records = append(records, experimentJSON{
			Experiment: id, Programs: programs, Seed: *seed,
			WallSeconds: time.Since(start).Seconds(), Payload: payload})
	}
	run := func(id string) bool { return *exp == "all" || *exp == id }

	if run("fig1") {
		start := time.Now()
		cells, err := runner.Figure1(ctx, *n/4, *seed, w)
		if err != nil {
			fatal(err)
		}
		record("fig1", *n/4, cells, start)
		fmt.Fprintln(w)
	}
	var gc, cl *experiments.LevelViolations
	if run("tab1") || run("fig23") {
		start := time.Now()
		var err error
		gc, cl, err = runner.Table1(ctx, *n, *seed, w)
		if err != nil {
			fatal(err)
		}
		if run("tab1") {
			record("tab1", *n, map[string]any{
				"cl_unique": [3]int{cl.Unique(1), cl.Unique(2), cl.Unique(3)},
				"gc_unique": [3]int{gc.Unique(1), gc.Unique(2), gc.Unique(3)},
				"cl_clean":  cl.CleanPrograms,
				"gc_clean":  gc.CleanPrograms,
			}, start)
		}
		fmt.Fprintln(w)
	}
	if run("fig23") {
		start := time.Now()
		fmt.Fprintln(w, "Figure 2 (cl):")
		experiments.Figure23(cl, w)
		fmt.Fprintln(w, "Figure 3 (gc):")
		experiments.Figure23(gc, w)
		record("fig23", *n, map[string]any{
			"cl": experiments.LevelSetDistribution(cl),
			"gc": experiments.LevelSetDistribution(gc),
		}, start)
		fmt.Fprintln(w)
	}
	if run("tab2") {
		start := time.Now()
		rows, err := runner.Table2(ctx, *nTriage, *seed, w)
		if err != nil {
			fatal(err)
		}
		record("tab2", *nTriage, rows, start)
		fmt.Fprintln(w)
	}
	if run("tab3") {
		start := time.Now()
		experiments.Table3(w)
		record("tab3", 0, nil, start)
		fmt.Fprintln(w)
	}
	if run("tab4") {
		start := time.Now()
		rows, err := runner.Table4(ctx, *n/2, *seed, w)
		if err != nil {
			fatal(err)
		}
		record("tab4", *n/2, rows, start)
		fmt.Fprintln(w)
	}
	if run("fig4") {
		start := time.Now()
		if err := runner.Figure4(ctx, *n/2, *seed, w); err != nil {
			fatal(err)
		}
		record("fig4", *n/2, nil, start)
		fmt.Fprintln(w)
	}
	if run("hunt") {
		start := time.Now()
		rep, err := runner.HuntCurve(ctx, pokeholes.HuntSpec{
			Family: pokeholes.GC, Version: "trunk", Budget: *n, Seed0: *seed}, w)
		if err != nil {
			fatal(err)
		}
		record("hunt", *n, map[string]any{
			"curve": rep.Curve, "buckets": rep.Corpus.Len(),
			"violations": rep.Violations, "dups": rep.Dups,
		}, start)
		fmt.Fprintln(w)
	}
	if run("herd") {
		start := time.Now()
		// A fixed small budget keeps every fleet size under the adaptive-
		// weight warmup per replica, the regime where the curves are
		// comparable point-for-point (same program per seed at any fleet
		// size); it must divide by every fleet size.
		res, err := runner.ScalingCurve(ctx, pokeholes.HuntSpec{
			Family: pokeholes.GC, Version: "trunk", Levels: []string{"O2"},
			Budget: 32, Seed0: *seed, BatchSize: 8}, []int{1, 4, 16}, w)
		if err != nil {
			fatal(err)
		}
		record("herd", 32*len(res.Series), res, start)
		fmt.Fprintln(w)
	}
	if *matrix || *exp == "matrix" {
		start := time.Now()
		payload := map[string]any{}
		for _, fam := range []pokeholes.Family{pokeholes.CL, pokeholes.GC} {
			vers := pokeholes.Versions(fam)
			byVer, err := runner.MatrixSweep(ctx, fam, vers, *n, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "Matrix (%s): unique violations per version across all optimizing levels, %d programs\n", fam, *n)
			fmt.Fprintf(w, "%-10s %6s %6s %6s\n", "version", "C1", "C2", "C3")
			famPayload := map[string][3]int{}
			for _, ver := range vers {
				lv := byVer[ver]
				counts := [3]int{lv.Unique(1), lv.Unique(2), lv.Unique(3)}
				famPayload[ver] = counts
				fmt.Fprintf(w, "%-10s %6d %6d %6d\n", ver, counts[0], counts[1], counts[2])
			}
			payload[string(fam)] = famPayload
		}
		record("matrix", *n, payload, start)
		fmt.Fprintln(w)
	}
	if run("regress") {
		start := time.Now()
		t1, p1, og, err := runner.RegressionAvailability(ctx, *n/4, *seed, w)
		if err != nil {
			fatal(err)
		}
		payload := map[string]float64{"trunk_o1": t1, "patched_o1": p1, "og_reference": og}
		if og > t1 {
			closed := (p1 - t1) / (og - t1)
			payload["gap_closed"] = closed
			fmt.Fprintf(w, "the patch closes %.0f%% of the O1 -> Og availability gap (paper: ~50%%)\n", closed*100)
		}
		record("regress", *n/4, payload, start)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reportJSON{
			Experiments: records,
			Engine:      eng.Stats(),
			Workers:     *workers,
			TotalWallS:  time.Since(t0).Seconds(),
		}); err != nil {
			fatal(err)
		}
	}
}

// benchRecordJSON is one timed probe of the tracing hot path.
type benchRecordJSON struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	Ops     int    `json:"ops"`
	// VMExecutionsPerOp is the recorded executions one operation costs
	// (cross_validate pins the single-pass contract: 1 per binary).
	VMExecutionsPerOp float64 `json:"vm_executions_per_op,omitempty"`
}

// benchTraceJSON is the BENCH_trace.json schema CI uploads as the
// benchmark trajectory artifact.
type benchTraceJSON struct {
	Benchmarks  []benchRecordJSON `json:"benchmarks"`
	GeneratedAt string            `json:"generated_at"`
}

// writeBenchTrace times the tracing hot paths on cold engine sessions —
// the seed of the benchmark trajectory (check, full-matrix sweep, and the
// single-pass check + cross-validate) — and writes them as JSON.
func writeBenchTrace(path string) error {
	ctx := context.Background()
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	prog := pokeholes.GenerateProgram(7)
	mx := pokeholes.FullMatrix(pokeholes.GC)

	// A violating program gives cross-validation real work.
	vProg := prog
	var violations []pokeholes.Violation
	for seed := int64(1); seed < 200 && len(violations) == 0; seed++ {
		p := pokeholes.GenerateProgram(seed)
		r, err := pokeholes.NewEngine().Check(ctx, p, cfg)
		if err != nil {
			return err
		}
		if len(r.Violations) > 0 {
			vProg, violations = p, r.Violations
		}
	}
	crossValidate := func(eng *pokeholes.Engine) error {
		if _, err := eng.Check(ctx, vProg, cfg); err != nil {
			return err
		}
		for _, v := range violations {
			if _, err := eng.CrossValidate(ctx, vProg, cfg, v); err != nil {
				return err
			}
		}
		return nil
	}
	// The executions-per-binary metric, measured outside the timing loop
	// (it is deterministic).
	probe := pokeholes.NewEngine()
	if err := crossValidate(probe); err != nil {
		return err
	}
	executionsPerOp := float64(probe.Stats().Traces)

	probes := []struct {
		name  string
		perOp float64
		run   func(b *testing.B)
	}{
		{"check", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pokeholes.NewEngine().Check(ctx, prog, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sweep", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pokeholes.NewEngine().Sweep(ctx, prog, mx); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"cross_validate", executionsPerOp, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := crossValidate(pokeholes.NewEngine()); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	out := benchTraceJSON{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	for _, p := range probes {
		r := testing.Benchmark(p.run)
		out.Benchmarks = append(out.Benchmarks, benchRecordJSON{
			Name: p.name, NsPerOp: r.NsPerOp(), Ops: r.N, VMExecutionsPerOp: p.perOp})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeBenchStore times the artifact-store trade: a cold compilation
// (frontend + backend on a fresh engine) against a disk load of the same
// build (container decode from a pre-warmed store on a fresh engine). The
// two run over identical programs, so their ns/op ratio is the store's
// speedup on a warm start. Written next to BENCH_trace.json as
// BENCH_store.json and uploaded by CI alongside it.
func writeBenchStore(path string) error {
	ctx := context.Background()
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	prog := pokeholes.GenerateProgram(7)

	dir, err := os.MkdirTemp("", "paperbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	warm := pokeholes.NewEngine(pokeholes.WithArtifactStore(dir))
	if serr := warm.Stats().StoreError; serr != "" {
		return fmt.Errorf("bench store: %s", serr)
	}
	if _, err := warm.Compile(ctx, prog, cfg); err != nil {
		return err
	}

	probes := []struct {
		name string
		run  func(b *testing.B)
	}{
		// Fresh engines per iteration keep the memory cache out of both
		// measurements; the only difference is where the build comes from.
		{"cold_compile", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pokeholes.NewEngine().Compile(ctx, prog, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"disk_load", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := pokeholes.NewEngine(pokeholes.WithArtifactStore(dir))
				if _, err := eng.Compile(ctx, prog, cfg); err != nil {
					b.Fatal(err)
				}
				if st := eng.Stats(); st.Compiles != 0 {
					b.Fatalf("disk_load iteration compiled %d times, want 0", st.Compiles)
				}
			}
		}},
	}
	out := benchTraceJSON{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	for _, p := range probes {
		r := testing.Benchmark(p.run)
		out.Benchmarks = append(out.Benchmarks, benchRecordJSON{
			Name: p.name, NsPerOp: r.NsPerOp(), Ops: r.N})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchFrontendRecordJSON is one timed probe of the frontend stage: ns/op
// plus the functions re-lowered per operation (the incremental frontend's
// figure of merit — a one-function edit should re-lower exactly one).
type benchFrontendRecordJSON struct {
	Name             string  `json:"name"`
	NsPerOp          int64   `json:"ns_per_op"`
	Ops              int     `json:"ops"`
	FnReloweredPerOp float64 `json:"fn_relowered_per_op"`
}

// benchFrontendJSON is the BENCH_frontend.json schema CI uploads next to
// the benchmark trajectory artifact.
type benchFrontendJSON struct {
	Benchmarks  []benchFrontendRecordJSON `json:"benchmarks"`
	GeneratedAt string                    `json:"generated_at"`
}

// frozenBenchFnCache serves reads from the wrapped cache but drops writes,
// so a probe can replay "this exact delta arrives cold" every iteration.
type frozenBenchFnCache struct{ compiler.FnCache }

func (frozenBenchFnCache) AddFunc(string, *compiler.FnArtifact)      {}
func (frozenBenchFnCache) AddGlobals(string, *compiler.GlobalsTable) {}

// writeBenchFrontend times the function-granular incremental frontend's
// three cache states — cold (every function lowers), a warm cache seeing a
// one-function edit or a one-statement deletion (the fuzz-mutant and
// reduction-candidate hot paths), and a warm cache seeing the identical
// program (pure assembly) — against the whole-program frontend on the same
// many-function input. Written next to BENCH_trace.json as
// BENCH_frontend.json and uploaded by CI alongside it.
func writeBenchFrontend(path string) error {
	const nfuncs = 10
	var sb strings.Builder
	sb.WriteString("int g1 = 1;\nvolatile int g2;\nint a[8] = {1, 2, 3, 4, 5, 6, 7, 8};\n")
	for i := 0; i < nfuncs; i++ {
		fmt.Fprintf(&sb, `int fn%d(int x) {
  int acc = %d;
  int i = 0;
  for (; i < 8; i = i + 1) {
    acc = acc + a[i] * x;
    if (acc > 100) {
      acc = acc - g1;
    }
  }
  g2 = acc;
  return acc;
}
`, i, i)
	}
	sb.WriteString("int main(void) {\n  int s = 0;\n")
	for i := 0; i < nfuncs; i++ {
		fmt.Fprintf(&sb, "  s = s + fn%d(s);\n", i)
	}
	sb.WriteString("  return s;\n}\n")
	parse := func(src string) (*minic.Program, string, error) {
		p, err := minic.Parse(src)
		if err != nil {
			return nil, "", err
		}
		minic.AssignLines(p)
		if err := minic.Check(p); err != nil {
			return nil, "", err
		}
		return p, minic.Render(p), nil
	}
	prog, progSrc, err := parse(sb.String())
	if err != nil {
		return err
	}
	// The changed mutant flips an operator inside fn4 (a same-shape edit,
	// the typical fuzz mutation); the deleted mutant removes one statement
	// from fn4 (the typical reduction candidate, shifting every function
	// below it).
	changed, changedSrc, err := parse(strings.Replace(progSrc,
		"      acc = acc - g1;\n    }\n  }\n  g2 = acc;\n  return acc;\n}\nint fn5",
		"      acc = acc + g1;\n    }\n  }\n  g2 = acc;\n  return acc;\n}\nint fn5", 1))
	if err != nil {
		return err
	}
	deleted, deletedSrc, err := parse(strings.Replace(progSrc,
		"  g2 = acc;\n  return acc;\n}\nint fn5", "  return acc;\n}\nint fn5", 1))
	if err != nil {
		return err
	}
	warm := func() (compiler.FnCache, error) {
		c := compiler.NewMemFnCache()
		if _, _, err := compiler.FrontendIncrementalSrc(prog, progSrc, c); err != nil {
			return nil, err
		}
		return frozenBenchFnCache{c}, nil
	}

	probes := []struct {
		name string
		p    *minic.Program
		src  string
		want int // functions re-lowered per op, -1 for "all, whole-program"
	}{
		{"whole", prog, progSrc, -1},
		{"cold", prog, progSrc, len(prog.Funcs)},
		{"one_changed", changed, changedSrc, 1},
		{"one_deleted", deleted, deletedSrc, 1},
		{"unchanged", prog, progSrc, 0},
	}
	out := benchFrontendJSON{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	for _, p := range probes {
		var relowered int
		var r testing.BenchmarkResult
		if p.want < 0 {
			relowered = len(prog.Funcs)
			r = testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := compiler.Frontend(p.p); err != nil {
						b.Fatal(err)
					}
				}
			})
		} else {
			cold := p.want == len(prog.Funcs)
			var cache compiler.FnCache
			if !cold {
				if cache, err = warm(); err != nil {
					return err
				}
			}
			r = testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c := cache
					if cold {
						c = compiler.NewMemFnCache()
					}
					_, n, err := compiler.FrontendIncrementalSrc(p.p, p.src, c)
					if err != nil {
						b.Fatal(err)
					}
					relowered = n
				}
			})
			if relowered != p.want {
				return fmt.Errorf("bench frontend: %s relowered %d functions, want %d",
					p.name, relowered, p.want)
			}
		}
		out.Benchmarks = append(out.Benchmarks, benchFrontendRecordJSON{
			Name: p.name, NsPerOp: r.NsPerOp(), Ops: r.N,
			FnReloweredPerOp: float64(relowered)})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchScheduleRecordJSON is one timed probe of schedule delta debugging:
// ns/op plus the ddmin probes one reduction costs (deterministic for a
// fixed violation, so it is measured once outside the timing loop).
type benchScheduleRecordJSON struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	Ops         int    `json:"ops"`
	ProbesPerOp int    `json:"probes_per_op"`
}

// benchScheduleJSON is the BENCH_schedule.json schema CI uploads next to
// the benchmark trajectory artifact.
type benchScheduleJSON struct {
	Benchmarks []benchScheduleRecordJSON `json:"benchmarks"`
	// MinimalSchedule is the reduction's answer on the probe violation,
	// recorded so trajectory diffs notice a behavior change, not just a
	// speed change.
	MinimalSchedule string `json:"minimal_schedule"`
	GeneratedAt     string `json:"generated_at"`
}

// writeBenchSchedule times one ScheduleReduce delta-debugging run two
// ways: on a warm engine, where every ddmin probe re-optimizes the cached
// lowered module (the designed hot path — zero frontend runs), and on an
// engine with the compile cache disabled, where every probe recompiles
// from scratch — the cost the schedule-aware cache keys save. The Check
// that warms each engine runs outside the timer, so the ns/op ratio is
// purely the per-probe saving. Written next to BENCH_trace.json as
// BENCH_schedule.json and uploaded by CI alongside it.
func writeBenchSchedule(path string) error {
	ctx := context.Background()
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}

	// Find a violating program to reduce (same scan as writeBenchTrace).
	var vProg *minic.Program
	var v pokeholes.Violation
	for seed := int64(1); seed < 200; seed++ {
		p := pokeholes.GenerateProgram(seed)
		r, err := pokeholes.NewEngine().Check(ctx, p, cfg)
		if err != nil {
			return err
		}
		if len(r.Violations) > 0 {
			vProg, v = p, r.Violations[0]
			break
		}
	}
	if vProg == nil {
		return fmt.Errorf("bench schedule: no violating program in the seed scan")
	}

	// Probes/op and the minimal schedule, measured once outside the timing
	// loop (the reduction is deterministic).
	probeEng := pokeholes.NewEngine()
	if _, err := probeEng.Check(ctx, vProg, cfg); err != nil {
		return err
	}
	red, err := probeEng.ScheduleReduce(ctx, vProg, cfg, v)
	if err != nil {
		return err
	}

	// Fresh engine per iteration: a reused engine would answer later
	// reductions from the schedule-keyed cache entries the first one
	// populated, which measures the cache, not the reduction.
	reduce := func(b *testing.B, opts ...pokeholes.Option) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := pokeholes.NewEngine(opts...)
			if _, err := eng.Check(ctx, vProg, cfg); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := eng.ScheduleReduce(ctx, vProg, cfg, v); err != nil {
				b.Fatal(err)
			}
		}
	}
	probes := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"reduce_warm", func(b *testing.B) { reduce(b) }},
		{"reduce_full_recompile", func(b *testing.B) {
			reduce(b, pokeholes.WithCompileCache(0))
		}},
	}
	out := benchScheduleJSON{
		MinimalSchedule: red.Schedule.String(),
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
	}
	for _, p := range probes {
		r := testing.Benchmark(p.run)
		out.Benchmarks = append(out.Benchmarks, benchScheduleRecordJSON{
			Name: p.name, NsPerOp: r.NsPerOp(), Ops: r.N, ProbesPerOp: red.Probes})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type benchPassesRecordJSON struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	Ops     int    `json:"ops"`
	// PassesRunPerOp counts optimizer pass executions actually performed
	// per operation; PassesSkippedPerOp the executions avoided by resuming
	// from schedule-prefix snapshots. Run + skipped is the cold cost.
	PassesRunPerOp     int64 `json:"passes_run_per_op"`
	PassesSkippedPerOp int64 `json:"passes_skipped_per_op"`
	// SnapshotHitRate is the fraction of backend compilations that resumed
	// from a snapshot (0 for the cold records).
	SnapshotHitRate float64 `json:"snapshot_hit_rate"`
}

// benchPassesJSON is the BENCH_passes.json schema CI uploads next to the
// benchmark trajectory artifact: the schedule-prefix snapshot tier's
// sweep and ddmin-probe costs, cold vs snapshot-warm.
type benchPassesJSON struct {
	Benchmarks  []benchPassesRecordJSON `json:"benchmarks"`
	GeneratedAt string                  `json:"generated_at"`
}

// writeBenchPasses times the schedule-prefix snapshot tier on its two
// designed workloads — a full gc version × level Sweep (sibling levels
// share canonical-schedule prefixes) and one ScheduleReduce run (ddmin
// probes share prefixes with each other) — each cold (tier disabled) and
// snapshot-warm, with per-op pass-execution counts from a deterministic
// serial engine. Two acceptance criteria are enforced, so trajectory
// diffs catch a semantics regression, not just new numbers: the snapshot
// sweep must run at least 25% fewer passes than the cold sweep, and the
// snapshot reduction's passes/op must be strictly below the cold one's.
// Written next to BENCH_trace.json as BENCH_passes.json.
func writeBenchPasses(path string) error {
	ctx := context.Background()
	sweepProg := pokeholes.GenerateProgram(7)
	mx := pokeholes.FullMatrix(pokeholes.GC)
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}

	// A violating program for the reduction (same scan as writeBenchTrace).
	var vProg *minic.Program
	var v pokeholes.Violation
	for seed := int64(1); seed < 200; seed++ {
		p := pokeholes.GenerateProgram(seed)
		r, err := pokeholes.NewEngine().Check(ctx, p, cfg)
		if err != nil {
			return err
		}
		if len(r.Violations) > 0 {
			vProg, v = p, r.Violations[0]
			break
		}
	}
	if vProg == nil {
		return fmt.Errorf("bench passes: no violating program in the seed scan")
	}

	// All engines run serially: the prefix-reuse schedule, and with it the
	// per-op counters, are deterministic at one worker.
	engine := func(snapshots bool) *pokeholes.Engine {
		return pokeholes.NewEngine(pokeholes.WithWorkers(1), pokeholes.WithOptSnapshots(snapshots))
	}
	sweep := func(snapshots bool) (func(b *testing.B), *pokeholes.EngineStats) {
		stats := &pokeholes.EngineStats{}
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine(snapshots)
				if _, err := eng.Sweep(ctx, sweepProg, mx); err != nil {
					b.Fatal(err)
				}
				*stats = eng.Stats()
			}
		}, stats
	}
	reduce := func(snapshots bool) (func(b *testing.B), *pokeholes.EngineStats) {
		stats := &pokeholes.EngineStats{}
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := engine(snapshots)
				if _, err := eng.Check(ctx, vProg, cfg); err != nil {
					b.Fatal(err)
				}
				warm := eng.Stats()
				b.StartTimer()
				if _, err := eng.ScheduleReduce(ctx, vProg, cfg, v); err != nil {
					b.Fatal(err)
				}
				s := eng.Stats()
				s.PassesRun -= warm.PassesRun
				s.PassesSkipped -= warm.PassesSkipped
				s.SnapshotHits -= warm.SnapshotHits
				s.Compiles -= warm.Compiles
				*stats = s
			}
		}, stats
	}

	out := benchPassesJSON{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	perOp := map[string]int64{}
	for _, p := range []struct {
		name string
		mk   func(bool) (func(b *testing.B), *pokeholes.EngineStats)
		snap bool
	}{
		{"sweep_cold", sweep, false},
		{"sweep_snapshot", sweep, true},
		{"reduce_probes_cold", reduce, false},
		{"reduce_probes_snapshot", reduce, true},
	} {
		run, stats := p.mk(p.snap)
		r := testing.Benchmark(run)
		rate := 0.0
		if stats.Compiles > 0 {
			rate = float64(stats.SnapshotHits) / float64(stats.Compiles)
		}
		perOp[p.name] = stats.PassesRun
		out.Benchmarks = append(out.Benchmarks, benchPassesRecordJSON{
			Name: p.name, NsPerOp: r.NsPerOp(), Ops: r.N,
			PassesRunPerOp:     stats.PassesRun,
			PassesSkippedPerOp: stats.PassesSkipped,
			SnapshotHitRate:    rate,
		})
	}
	if cold, snap := perOp["sweep_cold"], perOp["sweep_snapshot"]; 4*snap > 3*cold {
		return fmt.Errorf("bench passes: snapshot sweep ran %d passes/op vs %d cold — want >= 25%% fewer", snap, cold)
	}
	if cold, snap := perOp["reduce_probes_cold"], perOp["reduce_probes_snapshot"]; snap >= cold {
		return fmt.Errorf("bench passes: snapshot reduction ran %d passes/op vs %d cold — want strictly fewer", snap, cold)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchHerdJSON is the BENCH_herd.json schema CI uploads next to the
// benchmark trajectory artifact: the distributed-hunting scaling curves
// (1 vs 4 vs 16 sharded replicas spending the same total budget, merged
// via corpus.Merge).
type benchHerdJSON struct {
	Scaling     *experiments.ScalingResult `json:"scaling"`
	WallSeconds float64                    `json:"wall_seconds"`
	GeneratedAt string                     `json:"generated_at"`
}

// writeBenchHerd runs the distributed-hunting scaling experiment at a
// fixed small budget (under the adaptive-weight warmup, so every fleet
// size fuzzes the identical program per seed and the curves compare
// point-for-point) and enforces the acceptance criterion — the 4-replica
// fleet strictly dominates the solo hunt at its final wall-clock point —
// so trajectory diffs notice a semantics regression, not just new
// numbers. Written next to BENCH_trace.json as BENCH_herd.json.
func writeBenchHerd(path string) error {
	spec := pokeholes.HuntSpec{
		Family: pokeholes.GC, Version: "trunk", Levels: []string{"O2"},
		Budget: 32, Seed0: 900, BatchSize: 8,
	}
	start := time.Now()
	res, err := experiments.NewRunner(pokeholes.NewEngine()).
		ScalingCurve(context.Background(), spec, []int{1, 4, 16}, io.Discard)
	if err != nil {
		return err
	}
	solo, fleet := res.Fleet(1), res.Fleet(4)
	last := len(fleet.Points) - 1
	if ft, st := fleet.Points[last].Buckets, solo.Points[last].Buckets; ft <= st {
		return fmt.Errorf("bench herd: 4-replica fleet has %d buckets at its final point, solo has %d — want strictly more", ft, st)
	}
	out := benchHerdJSON{
		Scaling:     res,
		WallSeconds: time.Since(start).Seconds(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
