// Command minidbg compiles a MiniC source file and replays a scripted
// debugging session over it: one-shot breakpoints on every steppable line,
// printing the frame variables at each first hit — the paper's §4.2 trace.
//
// Usage:
//
//	minidbg [-family gc|cl] [-version trunk] [-O Og] [-debugger gdb|lldb] file.c
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/compiler"
	"repro/internal/debugger"
)

func main() {
	family := flag.String("family", "gc", "compiler family: gc or cl")
	version := flag.String("version", "trunk", "compiler version")
	level := flag.String("O", "Og", "optimization level")
	dbgName := flag.String("debugger", "", "debugger engine (gdb or lldb; default: the family's native one)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minidbg [flags] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := pokeholes.ParseProgram(string(src))
	if err != nil {
		fatal(err)
	}
	lvl := *level
	if !strings.HasPrefix(lvl, "O") {
		lvl = "O" + lvl
	}
	fam := compiler.Family(*family)
	var opts []pokeholes.Option
	if *dbgName != "" {
		dbg, err := pokeholes.DebuggerByName(*dbgName)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, pokeholes.WithDebugger(fam, dbg))
	}
	eng := pokeholes.NewEngine(opts...)
	cfg := pokeholes.Config{Family: fam, Version: *version, Level: lvl}
	trace, err := eng.Trace(context.Background(), prog, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s under %s: %d steppable lines, %d stepped\n",
		cfg, eng.DebuggerFor(fam).Name(), len(trace.Steppable), len(trace.Stops))
	lines := strings.Split(pokeholes.Render(prog), "\n")
	for _, l := range trace.HitLines() {
		srcLine := ""
		if l-1 < len(lines) {
			srcLine = strings.TrimSpace(lines[l-1])
		}
		fmt.Printf("%3d  %-40.40s | %s\n", l, srcLine, varsOf(trace.Stops[l]))
	}
}

func varsOf(s *debugger.Stop) string {
	var parts []string
	for _, v := range s.Vars {
		if v.State == debugger.Available {
			parts = append(parts, fmt.Sprintf("%s=%d", v.Name, v.Value))
		} else {
			parts = append(parts, fmt.Sprintf("%s=<%s>", v.Name, v.State))
		}
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minidbg:", err)
	os.Exit(1)
}
