// Command minidbg compiles a MiniC source file and replays a scripted
// debugging session over it: one-shot breakpoints on every steppable line,
// printing the frame variables at each first hit — the paper's §4.2 trace.
//
// A .mcx artifact container (minicc -o, or a file from an engine's
// artifact store) is accepted in place of a source file: the session then
// runs directly over the contained executable — no compiler involved —
// under the container's recorded family/version/level. The source column
// is omitted (a container does not carry source).
//
// Usage:
//
//	minidbg [-family gc|cl] [-version trunk] [-O Og] [-debugger gdb|lldb] file.c
//	minidbg [-debugger gdb|lldb] prog.mcx
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/compiler"
	"repro/internal/container"
	"repro/internal/debugger"
)

func main() {
	family := flag.String("family", "gc", "compiler family: gc or cl")
	version := flag.String("version", "trunk", "compiler version")
	level := flag.String("O", "Og", "optimization level")
	dbgName := flag.String("debugger", "", "debugger engine (gdb or lldb; default: the family's native one)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minidbg [flags] file.c|file.mcx")
		os.Exit(2)
	}
	input := flag.Arg(0)

	if strings.HasSuffix(input, ".mcx") {
		data, err := os.ReadFile(input)
		if err != nil {
			fatal(err)
		}
		art, err := container.Decode(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", input, err))
		}
		fam := compiler.Family(art.Prov.Family)
		dbg := pokeholes.NativeDebugger(fam)
		if *dbgName != "" {
			if dbg, err = pokeholes.DebuggerByName(*dbgName); err != nil {
				fatal(err)
			}
		}
		cfg := pokeholes.Config{Family: fam, Version: art.Prov.Version, Level: art.Prov.Level}
		trace, err := pokeholes.RecordTrace(art.Exe, dbg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s under %s (from %s): %d steppable lines, %d stepped\n",
			cfg, dbg.Name(), input, len(trace.Steppable), len(trace.Stops))
		for _, l := range trace.HitLines() {
			fmt.Printf("%3d  | %s\n", l, varsOf(trace.Stops[l]))
		}
		return
	}

	src, err := os.ReadFile(input)
	if err != nil {
		fatal(err)
	}
	prog, err := pokeholes.ParseProgram(string(src))
	if err != nil {
		fatal(err)
	}
	lvl := *level
	if !strings.HasPrefix(lvl, "O") {
		lvl = "O" + lvl
	}
	fam := compiler.Family(*family)
	var opts []pokeholes.Option
	if *dbgName != "" {
		dbg, err := pokeholes.DebuggerByName(*dbgName)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, pokeholes.WithDebugger(fam, dbg))
	}
	eng := pokeholes.NewEngine(opts...)
	cfg := pokeholes.Config{Family: fam, Version: *version, Level: lvl}
	trace, err := eng.Trace(context.Background(), prog, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s under %s: %d steppable lines, %d stepped\n",
		cfg, eng.DebuggerFor(fam).Name(), len(trace.Steppable), len(trace.Stops))
	lines := strings.Split(pokeholes.Render(prog), "\n")
	for _, l := range trace.HitLines() {
		srcLine := ""
		if l-1 < len(lines) {
			srcLine = strings.TrimSpace(lines[l-1])
		}
		fmt.Printf("%3d  %-40.40s | %s\n", l, srcLine, varsOf(trace.Stops[l]))
	}
}

func varsOf(s *debugger.Stop) string {
	var parts []string
	for _, v := range s.Vars {
		if v.State == debugger.Available {
			parts = append(parts, fmt.Sprintf("%s=%d", v.Name, v.Value))
		} else {
			parts = append(parts, fmt.Sprintf("%s=<%s>", v.Name, v.State))
		}
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minidbg:", err)
	os.Exit(1)
}
