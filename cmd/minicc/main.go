// Command minicc compiles a MiniC source file with the simulated toolchain
// and dumps the generated virtual assembly and (optionally) the debug
// information tree, like a cross of cc -S and readelf --debug-dump.
//
// With -o it instead emits the build as a .mcx artifact container (the
// format of internal/container, the same one the engine's artifact store
// persists), and a .mcx file is accepted back in place of a source file:
// minicc then skips the compiler entirely and inspects or runs the
// contained executable.
//
// Usage:
//
//	minicc [-family gc|cl] [-version trunk] [-O2] [-dwarf] [-run] file.c
//	minicc [flags] -o prog.mcx file.c
//	minicc [-dwarf] [-run] prog.mcx
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/compiler"
	"repro/internal/container"
	"repro/internal/dwarf"
	"repro/internal/minic"
	"repro/internal/store/atomicfile"
	"repro/internal/vm"
)

func main() {
	family := flag.String("family", "gc", "compiler family: gc or cl")
	version := flag.String("version", "trunk", "compiler version")
	level := flag.String("O", "O2", "optimization level (O0, Og, O1, O2, O3, Os, Oz)")
	dumpDwarf := flag.Bool("dwarf", false, "dump the debug information tree")
	run := flag.Bool("run", false, "execute the program and print its exit value")
	out := flag.String("o", "", "write the build as an artifact container (.mcx) instead of dumping assembly")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [flags] file.c|file.mcx")
		os.Exit(2)
	}
	input := flag.Arg(0)

	var art *container.Artifact
	if strings.HasSuffix(input, ".mcx") {
		data, err := os.ReadFile(input)
		if err != nil {
			fatal(err)
		}
		if art, err = container.Decode(data); err != nil {
			fatal(fmt.Errorf("%s: %w", input, err))
		}
	} else {
		src, err := os.ReadFile(input)
		if err != nil {
			fatal(err)
		}
		prog, err := pokeholes.ParseProgram(string(src))
		if err != nil {
			fatal(err)
		}
		lvl := *level
		if !strings.HasPrefix(lvl, "O") {
			lvl = "O" + lvl
		}
		eng := pokeholes.NewEngine()
		cfg := pokeholes.Config{Family: compiler.Family(*family), Version: *version, Level: lvl}
		res, err := eng.CompileResult(context.Background(), prog, cfg)
		if err != nil {
			fatal(err)
		}
		canonical := pokeholes.Render(prog)
		art = &container.Artifact{
			Exe: res.Exe,
			Prov: container.Provenance{
				Family: string(cfg.Family), Version: cfg.Version, Level: cfg.Level,
				Fingerprint: minic.FingerprintSource(canonical), SourceLen: len(canonical),
			},
			PipelineExecutions: res.PipelineExecutions,
			Applied:            res.Applied,
		}
	}

	if *out != "" {
		if err := atomicfile.WriteBytes(*out, container.Encode(art)); err != nil {
			fatal(err)
		}
		return
	}

	cfg := pokeholes.Config{Family: compiler.Family(art.Prov.Family),
		Version: art.Prov.Version, Level: art.Prov.Level}
	fmt.Printf("; %s\n", cfg)
	fmt.Print(art.Exe.Prog)
	if *dumpDwarf {
		info, err := art.Exe.DebugInfo()
		if err != nil {
			fatal(err)
		}
		fmt.Println("; line table:")
		for _, e := range info.Lines {
			fmt.Printf(";   pc %4d -> line %d\n", e.PC, e.Line)
		}
		fmt.Println("; debug information entries:")
		dumpDIE(info.CU, 0)
	}
	if *run {
		obs, err := vm.Observe(art.Exe.Prog)
		if err != nil {
			fatal(err)
		}
		for _, e := range obs.Events {
			fmt.Printf("event: %s\n", e)
		}
		fmt.Printf("exit: %d\n", obs.Ret)
	}
}

func dumpDIE(d *dwarf.DIE, depth int) {
	fmt.Printf(";   %s%s\n", strings.Repeat("  ", depth), d)
	for _, c := range d.Children {
		dumpDIE(c, depth+1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
