// Command minicc compiles a MiniC source file with the simulated toolchain
// and dumps the generated virtual assembly and (optionally) the debug
// information tree, like a cross of cc -S and readelf --debug-dump.
//
// Usage:
//
//	minicc [-family gc|cl] [-version trunk] [-O2] [-dwarf] [-run] file.c
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/compiler"
	"repro/internal/dwarf"
	"repro/internal/vm"
)

func main() {
	family := flag.String("family", "gc", "compiler family: gc or cl")
	version := flag.String("version", "trunk", "compiler version")
	level := flag.String("O", "O2", "optimization level (O0, Og, O1, O2, O3, Os, Oz)")
	dumpDwarf := flag.Bool("dwarf", false, "dump the debug information tree")
	run := flag.Bool("run", false, "execute the program and print its exit value")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [flags] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := pokeholes.ParseProgram(string(src))
	if err != nil {
		fatal(err)
	}
	lvl := *level
	if !strings.HasPrefix(lvl, "O") {
		lvl = "O" + lvl
	}
	eng := pokeholes.NewEngine()
	cfg := pokeholes.Config{Family: compiler.Family(*family), Version: *version, Level: lvl}
	res, err := eng.CompileResult(context.Background(), prog, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("; %s\n", cfg)
	fmt.Print(res.Exe.Prog)
	if *dumpDwarf {
		info, err := res.Exe.DebugInfo()
		if err != nil {
			fatal(err)
		}
		fmt.Println("; line table:")
		for _, e := range info.Lines {
			fmt.Printf(";   pc %4d -> line %d\n", e.PC, e.Line)
		}
		fmt.Println("; debug information entries:")
		dumpDIE(info.CU, 0)
	}
	if *run {
		obs, err := vm.Observe(res.Exe.Prog)
		if err != nil {
			fatal(err)
		}
		for _, e := range obs.Events {
			fmt.Printf("event: %s\n", e)
		}
		fmt.Printf("exit: %d\n", obs.Ret)
	}
}

func dumpDIE(d *dwarf.DIE, depth int) {
	fmt.Printf(";   %s%s\n", strings.Repeat("  ", depth), d)
	for _, c := range d.Children {
		dumpDIE(c, depth+1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
