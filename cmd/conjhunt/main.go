// Command conjhunt runs the paper's bug-hunting pipeline as an
// open-ended, deduplicated hunt (Engine.Hunt): fuzzed programs stream
// through the campaign worker pool, every conjecture violation is triaged
// to a culprit optimization, delta-debugged to a minimal reproducing pass
// schedule, and bucketed by its stable signature (conjecture, culprit
// pass, violation shape, minimal schedule), and each bucket keeps one
// minimized exemplar program. The corpus persists as a JSONL store, so
// hunts are incremental: re-running with -resume continues from the saved
// seed cursor and only ever reports buckets the corpus has not seen.
//
// With -matrix the hunt covers the family's full version × level grid
// per program instead of a single version.
//
// Usage:
//
// With -shard i/n the hunt covers only shard i's slice of the seed
// space (seeds seed+i, seed+i+n, …): n replicas on the same -seed hunt
// disjoint seed ranges whose corpora merge into one global bug set (see
// corpus.Merge and cmd/conjherd). A sharded corpus records its identity
// and refuses to resume under a different shard scheme.
//
// Usage:
//
//	conjhunt [-family gc|cl] [-version trunk] [-matrix] [-budget 200]
//	         [-seed 1] [-shard i/n] [-batch 32] [-workers 0]
//	         [-corpus hunt.jsonl] [-resume] [-nominimize] [-show]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/compiler"
)

func main() {
	family := flag.String("family", "gc", "compiler family: gc or cl")
	version := flag.String("version", "trunk", "compiler version")
	matrix := flag.Bool("matrix", false, "hunt across the family's version × level matrix (all versions unless -version is given explicitly)")
	budget := flag.Int("budget", 200, "number of fuzzed programs this run")
	seed := flag.Int64("seed", 1, "first seed of a fresh hunt (a resumed hunt continues from the corpus cursor)")
	shard := flag.String("shard", "", "hunt only shard i of n disjoint seed slices, as \"i/n\" (empty: unsharded)")
	batch := flag.Int("batch", 0, "programs per fuzz batch (0: the default; adaptive weights update between batches)")
	workers := flag.Int("workers", 0, "worker-pool size (0: GOMAXPROCS)")
	corpusPath := flag.String("corpus", "", "corpus JSONL path: checkpointed after every batch")
	resume := flag.Bool("resume", false, "resume the hunt from an existing -corpus store")
	noMinimize := flag.Bool("nominimize", false, "keep original fuzzed programs as exemplars instead of reducing them")
	show := flag.Bool("show", false, "print each new bucket's exemplar source")
	flag.Parse()

	var opts []pokeholes.Option
	if *workers > 0 {
		opts = append(opts, pokeholes.WithWorkers(*workers))
	}
	eng := pokeholes.NewEngine(opts...)
	// Ctrl-C and SIGTERM (CI timeouts, container stops) cancel the
	// hunt; the loop checkpoints the corpus on the way out, so an
	// interrupted hunt resumes where it stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fam := compiler.Family(*family)
	spec := pokeholes.HuntSpec{
		Family: fam, Version: *version,
		Budget: *budget, Seed0: *seed, BatchSize: *batch,
		CorpusPath: *corpusPath, NoMinimize: *noMinimize,
	}
	if *shard != "" {
		idx, cnt, err := parseShard(*shard)
		if err != nil {
			fatal(err)
		}
		spec.ShardIndex, spec.ShardCount = idx, cnt
	}
	if *matrix {
		mx := &pokeholes.Matrix{Family: fam}
		// An explicitly passed -version narrows the matrix to that
		// version instead of being silently ignored.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "version" {
				mx.Versions = []string{*version}
			}
		})
		spec.Matrix = mx
	}
	if !*resume && *corpusPath != "" {
		// Refuse to clobber an existing store: a fresh hunt checkpoints
		// over -corpus after its first batch, which would destroy every
		// bucket a previous run collected.
		if _, err := os.Stat(*corpusPath); err == nil {
			fatal(fmt.Errorf("%s exists; pass -resume to continue it (or remove the file for a fresh hunt)", *corpusPath))
		}
	}
	if *resume {
		if *corpusPath == "" {
			fatal(fmt.Errorf("-resume needs -corpus"))
		}
		c, err := pokeholes.LoadCorpus(*corpusPath)
		switch {
		case err == nil:
			spec.Corpus = c
			shardNote := ""
			if c.ShardCount > 1 {
				shardNote = fmt.Sprintf(" (shard %d/%d)", c.ShardIndex, c.ShardCount)
			}
			fmt.Fprintf(os.Stderr, "resuming: %d buckets, %d programs hunted, next seed %d%s\n",
				c.Len(), c.Programs, c.NextSeed, shardNote)
		case errors.Is(err, fs.ErrNotExist):
			// Absent store: a first -resume run legitimately starts
			// fresh, but say so — a typo'd path would otherwise
			// silently re-report every known bucket.
			fmt.Fprintf(os.Stderr, "no corpus at %s; starting a fresh hunt\n", *corpusPath)
		default:
			fatal(err)
		}
	}

	// Live progress line, updated after every batch.
	spec.Progress = func(p pokeholes.HuntProgress) {
		dupRate := 0.0
		if p.Violations > 0 {
			dupRate = 100 * float64(p.Dups) / float64(p.Violations)
		}
		fmt.Fprintf(os.Stderr, "\rhunt: %d programs | %d buckets (+%d this batch) | %d violations | dup %.0f%%   ",
			p.Programs, p.Buckets, p.NewInBatch, p.Violations, dupRate)
	}

	rep, err := eng.Hunt(ctx, spec)
	fmt.Fprintln(os.Stderr)
	if rep != nil {
		report(rep, *show)
	}
	if errors.Is(err, context.Canceled) {
		// A signal-interrupted hunt that checkpointed is a clean,
		// bounded run, not a failure.
		if *corpusPath != "" {
			fmt.Fprintln(os.Stderr, "conjhunt: interrupted; corpus checkpointed")
		} else {
			fmt.Fprintln(os.Stderr, "conjhunt: interrupted (no -corpus: findings not persisted)")
		}
		return
	}
	if err != nil {
		fatal(err)
	}
}

func report(rep *pokeholes.HuntReport, show bool) {
	c := rep.Corpus
	fmt.Printf("hunted %d programs this run (%d lifetime): %d violations -> %d new buckets, %d dups\n",
		rep.Programs, c.Programs, rep.Violations, len(rep.NewBuckets), rep.Dups)
	fmt.Printf("corpus: %d unique bugs, %d violations total, next seed %d\n\n",
		c.Len(), c.Violations(), c.NextSeed)
	fmt.Printf("%-58s %6s %8s %6s %-11s %s\n", "signature", "count", "seed", "lines", "found-after", "schedule")
	for _, b := range c.Buckets() {
		note := ""
		if b.DebuggerSuspect {
			note = "  [debugger-side suspect]"
		}
		fmt.Printf("%-58s %6d %8d %6d %-11d %s%s\n", b.Sig, b.Count, b.Seed, b.ExemplarLines,
			b.FoundAfter, scheduleCol(b.Schedule), note)
	}
	if show {
		for _, b := range rep.NewBuckets {
			state := "minimized"
			if !b.Minimized {
				state = "unminimized"
			}
			fmt.Printf("\n%s (%s exemplar, seed %d, %s, var %s line %d):\n",
				b.Sig, state, b.Seed, b.Config, b.Var, b.Line)
			fmt.Printf("    minimal schedule: %s\n", scheduleCol(b.Schedule))
			fmt.Print(indent(b.Exemplar))
		}
	}
}

// scheduleCol renders a bucket's minimal reproducing pass schedule for
// the report; "-" marks buckets without one (schedule-less hunts and
// migrated v1 stores, whose signatures stay three-part).
func scheduleCol(sched string) string {
	if sched == "" {
		return "-"
	}
	return sched
}

func indent(s string) string {
	out := ""
	cur := ""
	for _, c := range s {
		if c == '\n' {
			out += "    " + cur + "\n"
			cur = ""
		} else {
			cur += string(c)
		}
	}
	if cur != "" {
		out += "    " + cur + "\n"
	}
	return out
}

// parseShard parses "i/n" into a shard (index, count).
func parseShard(s string) (int, int, error) {
	var idx, cnt int
	if _, err := fmt.Sscanf(s, "%d/%d", &idx, &cnt); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/n\", e.g. 0/4", s)
	}
	if cnt < 1 || idx < 0 || idx >= cnt {
		return 0, 0, fmt.Errorf("-shard %q: index must be in [0,%d)", s, cnt)
	}
	return idx, cnt, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conjhunt:", err)
	os.Exit(1)
}
