// Command conjhunt runs the paper's full bug-hunting pipeline: generate
// fuzzed programs, compile them across optimization levels, record debugger
// traces, check the three conjectures, triage each violation to a culprit
// optimization, and minimize one exemplary test case per culprit. The hunt
// runs as one Engine campaign: programs fan out over the worker pool and
// results stream back in seed order, so the report is deterministic at any
// parallelism.
//
// With -matrix the hunt covers the family's full version × level grid in
// one matrix campaign per program (the frontend is lowered once per
// program for the whole grid) instead of a single version.
//
// Usage:
//
//	conjhunt [-family gc|cl] [-version trunk] [-matrix] [-n 50] [-seed 1] [-workers 0] [-reduce]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/compiler"
	"repro/internal/minic"
)

func main() {
	family := flag.String("family", "gc", "compiler family: gc or cl")
	version := flag.String("version", "trunk", "compiler version")
	matrix := flag.Bool("matrix", false, "hunt across the family's version × level matrix (all versions unless -version is given explicitly)")
	n := flag.Int("n", 50, "number of fuzzed programs")
	seed := flag.Int64("seed", 1, "first seed")
	workers := flag.Int("workers", 0, "campaign worker-pool size (0: GOMAXPROCS)")
	doReduce := flag.Bool("reduce", false, "minimize one test case per culprit")
	flag.Parse()

	var opts []pokeholes.Option
	if *workers > 0 {
		opts = append(opts, pokeholes.WithWorkers(*workers))
	}
	eng := pokeholes.NewEngine(opts...)
	ctx := context.Background()

	fam := compiler.Family(*family)
	spec := pokeholes.CampaignSpec{
		Family: fam, Version: *version, N: *n, Seed0: *seed, Triage: true}
	if *matrix {
		mx := &pokeholes.Matrix{Family: fam}
		// An explicitly passed -version narrows the matrix to that version
		// instead of being silently ignored.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "version" {
				mx.Versions = []string{*version}
			}
		})
		spec.Matrix = mx
	}
	results, err := eng.Campaign(ctx, spec)
	if err != nil {
		fatal(err)
	}

	levels := pokeholes.OptLevels(fam)
	culpritCount := map[string]int{}
	reduced := map[string]bool{}
	total := 0
	// handle reports one violation, shared by both campaign modes.
	handle := func(res pokeholes.Result, cfg pokeholes.Config, v pokeholes.Violation, culprit string) {
		total++
		if culprit == "" {
			culprit = "(untriaged)"
		}
		culpritCount[culprit]++
		fmt.Printf("seed %d %s: %s -> culprit %s\n", res.Seed, cfg, v, culprit)
		// Cross-validate in the other debugger (§4.2).
		if also, err := eng.CrossValidate(ctx, res.Prog, cfg, v); err == nil && !also {
			fmt.Printf("  note: not reproducible in the other debugger (debugger-side suspect)\n")
		}
		if *doReduce && culprit != "(untriaged)" && !reduced[culprit] {
			reduced[culprit] = true
			small := eng.Minimize(ctx, res.Prog, cfg, v, culprit)
			fmt.Printf("  minimized test case (%d -> %d lines):\n", countLines(res.Prog), countLines(small))
			fmt.Println(indent(pokeholes.Render(small)))
		}
	}
	for res := range results {
		if res.Err != nil {
			fatal(res.Err)
		}
		if *matrix {
			for i, rep := range res.Sweep.Reports {
				cfg := res.Sweep.Configs[i]
				for _, v := range rep.Violations {
					culprit, _ := res.CulpritAt(cfg, v)
					handle(res, cfg, v, culprit)
				}
			}
			continue
		}
		for _, level := range levels {
			cfg := pokeholes.Config{Family: fam, Version: *version, Level: level}
			for _, v := range res.Violations[level] {
				culprit, _ := res.Culprit(level, v)
				handle(res, cfg, v, culprit)
			}
		}
	}
	fmt.Printf("\n%d violations; culprit distribution:\n", total)
	type kv struct {
		k string
		v int
	}
	var ks []kv
	for k, v := range culpritCount {
		ks = append(ks, kv{k, v})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].v > ks[j].v })
	for _, e := range ks {
		fmt.Printf("  %-20s %d\n", e.k, e.v)
	}
}

func countLines(p *minic.Program) int {
	n := 0
	for _, c := range pokeholes.Render(p) {
		if c == '\n' {
			n++
		}
	}
	return n
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == '\n' {
			out = append(out, cur)
			cur = ""
		} else {
			cur += string(c)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conjhunt:", err)
	os.Exit(1)
}
