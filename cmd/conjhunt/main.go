// Command conjhunt runs the paper's full bug-hunting pipeline: generate
// fuzzed programs, compile them across optimization levels, record debugger
// traces, check the three conjectures, triage each violation to a culprit
// optimization, and minimize one exemplary test case per culprit.
//
// Usage:
//
//	conjhunt [-family gc|cl] [-version trunk] [-n 50] [-seed 1] [-reduce]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/conjecture"
	"repro/internal/experiments"
	"repro/internal/fuzzgen"
	"repro/internal/minic"
	"repro/internal/reduce"
	"repro/internal/triage"
)

func main() {
	family := flag.String("family", "gc", "compiler family: gc or cl")
	version := flag.String("version", "trunk", "compiler version")
	n := flag.Int("n", 50, "number of fuzzed programs")
	seed := flag.Int64("seed", 1, "first seed")
	doReduce := flag.Bool("reduce", false, "minimize one test case per culprit")
	flag.Parse()

	fam := compiler.Family(*family)
	levels := []string{"Og", "O1", "O2", "O3", "Os", "Oz"}
	if fam == compiler.CL {
		levels = []string{"Og", "O2", "O3", "Os", "Oz"}
	}
	culpritCount := map[string]int{}
	reduced := map[string]bool{}
	total := 0
	for i := 0; i < *n; i++ {
		prog := fuzzgen.GenerateSeed(*seed + int64(i))
		facts := analysis.Analyze(prog)
		for _, level := range levels {
			cfg := compiler.Config{Family: fam, Version: *version, Level: level}
			vs, err := experiments.ViolationsFor(prog, facts, cfg)
			if err != nil {
				fatal(err)
			}
			for _, v := range vs {
				total++
				tg := triage.Target{Prog: prog, Facts: facts, Cfg: cfg, Key: v.Key()}
				culprit, err := triage.Culprit(tg)
				if err != nil {
					culprit = "(untriaged)"
				}
				culpritCount[culprit]++
				fmt.Printf("seed %d %s: %s -> culprit %s\n", *seed+int64(i), cfg, v, culprit)
				// Cross-validate in the other debugger (§4.2).
				if also, err := experiments.ValidateInOtherDebugger(tg); err == nil && !also {
					fmt.Printf("  note: not reproducible in the other debugger (debugger-side suspect)\n")
				}
				if *doReduce && culprit != "(untriaged)" && !reduced[culprit] {
					reduced[culprit] = true
					pred := reduce.ViolationPredicate(cfg, v.Conjecture, v.Var, culprit)
					small := reduce.Reduce(prog, pred)
					fmt.Printf("  minimized test case (%d -> %d lines):\n", countLines(prog), countLines(small))
					fmt.Println(indent(minic.Render(small)))
				}
			}
		}
	}
	fmt.Printf("\n%d violations; culprit distribution:\n", total)
	type kv struct {
		k string
		v int
	}
	var ks []kv
	for k, v := range culpritCount {
		ks = append(ks, kv{k, v})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].v > ks[j].v })
	for _, e := range ks {
		fmt.Printf("  %-20s %d\n", e.k, e.v)
	}
	_ = conjecture.Violation{}
}

func countLines(p *minic.Program) int {
	n := 0
	for _, c := range minic.Render(p) {
		if c == '\n' {
			n++
		}
	}
	return n
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == '\n' {
			out = append(out, cur)
			cur = ""
		} else {
			cur += string(c)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conjhunt:", err)
	os.Exit(1)
}
