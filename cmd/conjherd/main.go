// Command conjherd coordinates a herd of hunting replicas into one
// global bug corpus: it periodically pulls each replica's corpus
// snapshot from GET /hunt/export, unions them locally via corpus.Merge
// (associative, commutative, idempotent — re-pulling an older or
// unchanged snapshot never double-counts), checkpoints the merged
// corpus, and optionally pushes it back to every replica's POST
// /hunt/merge so the whole fleet shares the global view.
//
// The intended deployment is N conjserved replicas started on disjoint
// shards of the same seed space:
//
//	conjserved -addr :8081 -hunt-budget 10000 -hunt-shard 0/2 ...
//	conjserved -addr :8082 -hunt-budget 10000 -hunt-shard 1/2 ...
//	conjherd -replicas http://host:8081,http://host:8082 \
//	         -corpus global.jsonl -interval 30s
//
// With -once the coordinator runs a single pull/merge/checkpoint cycle
// and exits (CI smoke tests); otherwise it loops every -interval until
// every replica reports its hunt done (or forever with -interval and
// hunts that never end), and always runs one final cycle on the way
// out. Exit status is non-zero if any replica was never reached.
//
// Usage:
//
//	conjherd -replicas url[,url...] [-corpus global.jsonl]
//	         [-interval 30s] [-once] [-push] [-timeout 10s]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/corpus"
)

func main() {
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (e.g. http://host:8081,http://host:8082)")
	corpusPath := flag.String("corpus", "", "merged corpus checkpoint path (JSONL; loaded on start if present)")
	interval := flag.Duration("interval", 30*time.Second, "delay between merge cycles")
	once := flag.Bool("once", false, "run a single pull/merge cycle and exit")
	push := flag.Bool("push", false, "after merging, push the global corpus back to every replica's /hunt/merge")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
	flag.Parse()

	urls := splitURLs(*replicas)
	if len(urls) == 0 {
		fatal(errors.New("-replicas is required (comma-separated base URLs)"))
	}

	// The global corpus is a pure aggregator: it never hunts, so it keeps
	// no shard identity and its own counters stay zero — everything lives
	// in the per-origin merge ledgers.
	global := corpus.New()
	if *corpusPath != "" {
		switch c, err := corpus.Load(*corpusPath); {
		case err == nil:
			global = c
			fmt.Fprintf(os.Stderr, "conjherd: resuming global corpus: %d buckets, %d programs across origins\n",
				global.Len(), global.TotalPrograms())
		case errors.Is(err, fs.ErrNotExist):
			// First run: the checkpoint appears after the first cycle.
		default:
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{Timeout: *timeout}

	reached := make([]bool, len(urls))
	cycle := func() {
		for i, base := range urls {
			src, err := pull(ctx, client, base)
			if err != nil {
				fmt.Fprintf(os.Stderr, "conjherd: pull %s: %v\n", base, err)
				continue
			}
			reached[i] = true
			st, err := global.Merge(src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "conjherd: merge %s: %v\n", base, err)
				continue
			}
			fmt.Fprintf(os.Stderr, "conjherd: %s: +%d new, %d reconciled -> %d global buckets\n",
				base, st.NewBuckets, st.MergedBuckets, global.Len())
		}
		if *corpusPath != "" {
			if err := global.Save(*corpusPath); err != nil {
				fatal(err)
			}
		}
		if *push {
			var buf bytes.Buffer
			if err := global.Encode(&buf); err != nil {
				fatal(err)
			}
			for _, base := range urls {
				if err := pushTo(ctx, client, base, buf.Bytes()); err != nil {
					fmt.Fprintf(os.Stderr, "conjherd: push %s: %v\n", base, err)
				}
			}
		}
	}

	cycle()
	if !*once {
		for !allDone(ctx, client, urls) && ctx.Err() == nil {
			select {
			case <-time.After(*interval):
			case <-ctx.Done():
			}
			cycle()
		}
	}

	fmt.Printf("conjherd: global corpus: %d unique bugs, %d violations, %d programs hunted across origins\n",
		global.Len(), global.Violations(), global.TotalPrograms())
	for _, b := range global.Buckets() {
		fmt.Printf("  %-58s %6d\n", b.Sig, b.Count)
	}
	for i, ok := range reached {
		if !ok {
			fatal(fmt.Errorf("replica %s was never reached", urls[i]))
		}
	}
}

// pull fetches and decodes one replica's corpus snapshot.
func pull(ctx context.Context, client *http.Client, base string) (*corpus.Corpus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/hunt/export", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return corpus.Decode(resp.Body)
}

// pushTo POSTs the merged corpus to one replica's /hunt/merge.
func pushTo(ctx context.Context, client *http.Client, base string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/hunt/merge",
		bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// allDone reports whether every replica's background hunt has finished
// (unreachable replicas and replicas with no hunt configured count as
// not-done, keeping the loop alive for them).
func allDone(ctx context.Context, client *http.Client, urls []string) bool {
	for _, base := range urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/hunt/status", nil)
		if err != nil {
			return false
		}
		resp, err := client.Do(req)
		if err != nil {
			return false
		}
		var st struct {
			Configured bool `json:"configured"`
			Done       bool `json:"done"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
		resp.Body.Close()
		if err != nil || !st.Configured || !st.Done {
			return false
		}
	}
	return true
}

func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			out = append(out, u)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conjherd:", err)
	os.Exit(1)
}
