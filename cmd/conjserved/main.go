// Command conjserved serves a shared checking engine over HTTP/JSON: the
// paper's whole pipeline — check, matrix sweep, triage, minimization and
// fuzzing campaigns — behind /check, /sweep, /triage, /minimize and
// /campaign, with request batching (identical concurrent submissions
// coalesce onto one cache-backed computation), bounded admission control
// (429 past the queue limit, 503 past the per-request deadline, both with
// Retry-After), and byte-deterministic response bodies so replicas can be
// load-balanced and replayed. /stats surfaces the engine's cache and
// hunting counters; with -hunt-budget a background Engine.Hunt runs for
// the server's lifetime and /hunt/status reports its progress.
//
// Usage:
//
//	conjserved [-addr :8080] [-workers 0] [-cache 4096] [-respcache 1024]
//	           [-timeout 30s] [-inflight 0] [-queue 0] [-store artifacts/]
//	           [-hunt-budget 0] [-hunt-family gc] [-hunt-version trunk]
//	           [-hunt-seed 1] [-hunt-shard i/n] [-hunt-batch 0]
//	           [-hunt-nominimize] [-corpus hunt.jsonl]
//
// -hunt-shard i/n restricts the background hunt to shard i's slice of
// the seed space, so a herd of replicas on the same -hunt-seed covers
// disjoint seed ranges; each replica's findings surface on /hunt/export
// and any replica (or cmd/conjherd) can union corpora via /hunt/merge
// into one global bug set.
//
// -store points the engine at a persistent artifact directory (the
// content-addressed .mcx store of internal/store): plain builds are served
// from disk when present and written through when not, so a restarted —
// or second — replica pointed at the same directory warm-starts off
// earlier compilations. The flag is strict: a store that cannot be opened
// is fatal, not silently degraded.
//
// SIGINT/SIGTERM drain in-flight requests (and checkpoint the hunt's
// corpus) before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/compiler"
)

func main() {
	addr := flag.String("addr", ":8080", "TCP listen address")
	workers := flag.Int("workers", 0, "engine worker-pool size (0: GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "engine cache entries (0: the default, negative: unbounded)")
	respCache := flag.Int("respcache", 0, "response-body cache entries (0: the default, negative: disabled)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0: the default, negative: none)")
	inflight := flag.Int("inflight", 0, "max concurrently processed requests (0: worker count)")
	queue := flag.Int("queue", 0, "admission queue depth beyond -inflight (0: the default, negative: no queue)")
	huntBudget := flag.Int("hunt-budget", 0, "run a background hunt of this many fuzzed programs (0: no hunt)")
	huntFamily := flag.String("hunt-family", "gc", "background hunt compiler family")
	huntVersion := flag.String("hunt-version", "trunk", "background hunt compiler version")
	huntSeed := flag.Int64("hunt-seed", 1, "background hunt first fuzzer seed")
	huntShard := flag.String("hunt-shard", "", "background hunt seed shard as \"i/n\" (empty: unsharded)")
	huntBatch := flag.Int("hunt-batch", 0, "background hunt programs per batch (0: the default)")
	huntNoMinimize := flag.Bool("hunt-nominimize", false, "background hunt keeps original exemplars (faster discovery)")
	corpusPath := flag.String("corpus", "", "background hunt corpus checkpoint path (JSONL)")
	storeDir := flag.String("store", "", "persistent artifact store directory (.mcx containers, shareable between replicas)")
	flag.Parse()

	var opts []pokeholes.Option
	if *workers > 0 {
		opts = append(opts, pokeholes.WithWorkers(*workers))
	}
	if *cacheSize != 0 {
		opts = append(opts, pokeholes.WithCompileCache(*cacheSize))
	}
	if *storeDir != "" {
		opts = append(opts, pokeholes.WithArtifactStore(*storeDir))
	}
	eng := pokeholes.NewEngine(opts...)
	// An engine whose store failed to open silently degrades to memory-only
	// caching; a server explicitly asked to persist must not.
	if serr := eng.Stats().StoreError; serr != "" {
		log.Fatalf("conjserved: -store %s: %s", *storeDir, serr)
	}

	spec := pokeholes.ServeSpec{
		Addr:           *addr,
		MaxInflight:    *inflight,
		MaxQueue:       *queue,
		RequestTimeout: *timeout,
		ResponseCache:  *respCache,
	}
	if *huntBudget > 0 {
		spec.Hunt = &pokeholes.HuntSpec{
			Family:     compiler.Family(*huntFamily),
			Version:    *huntVersion,
			Budget:     *huntBudget,
			Seed0:      *huntSeed,
			BatchSize:  *huntBatch,
			NoMinimize: *huntNoMinimize,
			CorpusPath: *corpusPath,
			Progress: func(p pokeholes.HuntProgress) {
				log.Printf("hunt: batch %d, %d programs, %d buckets (%d new)",
					p.Batch, p.Programs, p.Buckets, p.NewInBatch)
			},
		}
		if *huntShard != "" {
			var idx, cnt int
			if _, err := fmt.Sscanf(*huntShard, "%d/%d", &idx, &cnt); err != nil || cnt < 1 || idx < 0 || idx >= cnt {
				log.Fatalf("conjserved: -hunt-shard %q: want \"i/n\" with 0 <= i < n", *huntShard)
			}
			spec.Hunt.ShardIndex, spec.Hunt.ShardCount = idx, cnt
		}
	}

	// SIGINT/SIGTERM start the graceful drain: Serve stops accepting,
	// waits for in-flight requests, and joins the background hunt (which
	// checkpoints its corpus on cancellation).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("conjserved: listening on %s", *addr)
	start := time.Now()
	if err := eng.Serve(ctx, spec); err != nil {
		log.Fatalf("conjserved: %v", err)
	}
	st := eng.Stats()
	log.Printf("conjserved: frontend fn-cache: %d lookups, %d hits, %d functions relowered",
		st.FnFrontends, st.FnFrontendHits, st.FnRelowered)
	log.Printf("conjserved: optimizer: %d passes run, %d skipped via %d snapshot resumes",
		st.PassesRun, st.PassesSkipped, st.SnapshotHits)
	log.Printf("conjserved: drained cleanly after %s", time.Since(start).Round(time.Millisecond))
}
