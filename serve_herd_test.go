package pokeholes_test

// Tests for the distributed-hunting control plane: /hunt/export and
// /hunt/merge semantics, the shard field of /hunt/status, and a -race
// hammer that pulls snapshots concurrently with a live background hunt
// (every export must decode cleanly — never a torn body).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/corpus"
)

// herdCorpus builds a tiny shard corpus with one bucket.
func herdCorpus(t *testing.T, idx, cnt int, sig string, count int) string {
	t.Helper()
	c := corpus.New()
	c.Seed0, c.ShardIndex, c.ShardCount = 1, idx, cnt
	c.Programs = 10 * (idx + 1)
	if err := c.Add(&corpus.Bucket{Sig: corpus.Signature(sig), Conjecture: 1,
		Culprit: "lsr", Shape: "opaque-arg:optimized-out",
		Seed: int64(idx + 1), Count: count, FoundAfter: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func exportCorpus(t *testing.T, client *http.Client, url string) *corpus.Corpus {
	t.Helper()
	resp, err := client.Get(url + "/hunt/export")
	if err != nil {
		t.Fatalf("GET /hunt/export: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /hunt/export: status %d", resp.StatusCode)
	}
	c, err := corpus.Decode(resp.Body)
	if err != nil {
		t.Fatalf("exported corpus does not decode: %v", err)
	}
	return c
}

// TestServeHuntMergeExport pins the coordinator contract: pushed corpora
// union into the global corpus (per-origin counts summing across
// distinct shards, idempotent on re-push), the export round-trips, and
// malformed or future-versioned pushes are rejected with 400.
func TestServeHuntMergeExport(t *testing.T) {
	eng := pokeholes.NewEngine()
	ts := httptest.NewServer(eng.NewServer(pokeholes.ServeSpec{}).Handler())
	defer ts.Close()
	client := ts.Client()
	defer client.CloseIdleConnections()

	const sig = "C1|lsr|opaque-arg:optimized-out"
	shard0 := herdCorpus(t, 0, 2, sig, 3)
	shard1 := herdCorpus(t, 1, 2, sig, 5)

	status, body := servePost(t, client, ts.URL+"/hunt/merge", shard0)
	if status != http.StatusOK {
		t.Fatalf("/hunt/merge: status %d: %s", status, body)
	}
	var mr pokeholes.MergeResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.NewBuckets != 1 || mr.GlobalBuckets != 1 {
		t.Errorf("first merge: %+v, want 1 new bucket", mr)
	}

	// Pushing the same snapshot again must not double-count.
	servePost(t, client, ts.URL+"/hunt/merge", shard0)
	// A different shard's count for the same signature sums.
	servePost(t, client, ts.URL+"/hunt/merge", shard1)

	got := exportCorpus(t, client, ts.URL)
	if got.Len() != 1 {
		t.Fatalf("global corpus has %d buckets, want 1", got.Len())
	}
	b, _ := got.Bucket(sig)
	if b.Count != 8 {
		t.Errorf("global bucket Count = %d, want 8 (3+5, idempotent re-push)", b.Count)
	}
	if b.Seed != 1 {
		t.Errorf("global exemplar seed = %d, want the earliest (1)", b.Seed)
	}
	if got.TotalPrograms() != 30 {
		t.Errorf("global TotalPrograms = %d, want 30", got.TotalPrograms())
	}

	// The export is itself mergeable: round-tripping it back is a no-op.
	var rt bytes.Buffer
	if err := got.Encode(&rt); err != nil {
		t.Fatal(err)
	}
	status, body = servePost(t, client, ts.URL+"/hunt/merge", rt.String())
	if status != http.StatusOK {
		t.Fatalf("re-merge of export: status %d: %s", status, body)
	}
	if after := exportCorpus(t, client, ts.URL); after.Len() != 1 {
		t.Errorf("re-merging the export changed the global corpus: %d buckets", after.Len())
	} else if ab, _ := after.Bucket(sig); ab.Count != 8 {
		t.Errorf("re-merging the export changed counts: %d", ab.Count)
	}

	// Rejections: garbage and future store versions are client errors.
	if status, _ := servePost(t, client, ts.URL+"/hunt/merge", "not jsonl"); status != http.StatusBadRequest {
		t.Errorf("garbage merge body: status %d, want 400", status)
	}
	future := `{"kind":"hunt-corpus","version":4}` + "\n"
	if status, _ := servePost(t, client, ts.URL+"/hunt/merge", future); status != http.StatusBadRequest {
		t.Errorf("future-version merge: status %d, want 400", status)
	}

	// /stats surfaces the merge counters.
	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sr struct {
		Server pokeholes.ServerStats `json:"server"`
	}
	if err := json.Unmarshal(stats, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Server.Merges != 4 || sr.Server.GlobalBuckets != 1 {
		t.Errorf("stats: merges=%d global_buckets=%d, want 4 and 1",
			sr.Server.Merges, sr.Server.GlobalBuckets)
	}
}

// TestServeHuntStatusReportsShard: a server configured with a sharded
// background hunt names its slice in /hunt/status.
func TestServeHuntStatusReportsShard(t *testing.T) {
	eng := pokeholes.NewEngine()
	hunt := pokeholes.HuntSpec{Family: pokeholes.GC, Version: "trunk",
		Levels: []string{"O2"}, Budget: 8, Seed0: 900,
		ShardIndex: 1, ShardCount: 4}
	ts := httptest.NewServer(eng.NewServer(pokeholes.ServeSpec{Hunt: &hunt}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/hunt/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st pokeholes.HuntStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Configured || st.Shard != "1/4" {
		t.Errorf("hunt status = %s, want configured shard 1/4", body)
	}
}

// TestServeHuntExportNeverTorn is the -race hammer for the satellite
// bugfix: while a background hunt merges snapshots into the global
// corpus, concurrent /hunt/export, /hunt/merge and /hunt/status traffic
// must always see consistent state — every export body decodes cleanly,
// at any interleaving. Run under -race this also audits the hunt-status
// synchronization.
func TestServeHuntExportNeverTorn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	eng := pokeholes.NewEngine()
	hunt := pokeholes.HuntSpec{Family: pokeholes.GC, Version: "trunk",
		Levels: []string{"O2"}, Budget: 24, Seed0: 900, BatchSize: 4,
		NoMinimize: true}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- eng.Serve(ctx, pokeholes.ServeSpec{Listener: ln, Hunt: &hunt})
	}()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()
	for i := 0; i < 100; i++ {
		if resp, err := client.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	push := herdCorpus(t, 3, 7, "C1|gvn|opaque-arg:optimized-out", 2)
	var wg sync.WaitGroup
	huntDone := func() bool {
		resp, err := client.Get(base + "/hunt/status")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var st pokeholes.HuntStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return false
		}
		return st.Done
	}
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				exportCorpus(t, client, base)
				resp, err := client.Post(base+"/hunt/merge", "application/x-ndjson",
					strings.NewReader(push))
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !huntDone() {
		if time.Now().After(deadline) {
			t.Error("background hunt did not finish in time")
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// After the hunt drains, the global corpus holds the hunt's buckets
	// plus the hammered push.
	final := exportCorpus(t, client, base)
	if _, ok := final.Bucket("C1|gvn|opaque-arg:optimized-out"); !ok {
		t.Error("pushed bucket missing from final export")
	}
	if final.Len() < 2 {
		t.Errorf("final export has %d buckets; expected the hunt to contribute some", final.Len())
	}

	cancel()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
