package pokeholes_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/corpus"
)

// shardSpec returns shard idx of cnt of the shared determinism hunt,
// with the total budget split evenly. Budgets stay under the adaptive-
// weight warmup (32 recorded programs) so every replica generates the
// same program per seed as one unsharded hunt would — the precondition
// for the merged-equals-unsharded comparison below. NoMinimize keeps
// the comparison on the raw discovery exemplars.
func shardSpec(idx, cnt int) pokeholes.HuntSpec {
	s := huntSpec()
	s.Budget = 32 / cnt
	s.NoMinimize = true
	s.ShardIndex, s.ShardCount = idx, cnt
	return s
}

// TestShardedHuntsMergeToUnshardedBucketSet is the distributed-hunting
// acceptance test: 4 replicas hunting disjoint seed shards, merged,
// produce exactly the bucket set of one unsharded hunt over the same
// total budget — same signatures, same exemplars (earliest seed wins),
// same per-bucket violation totals.
func TestShardedHuntsMergeToUnshardedBucketSet(t *testing.T) {
	ctx := context.Background()

	solo := shardSpec(0, 1)
	soloRep, err := pokeholes.NewEngine().Hunt(ctx, solo)
	if err != nil {
		t.Fatal(err)
	}
	if soloRep.Corpus.Len() == 0 {
		t.Fatal("unsharded hunt found no buckets; the comparison is vacuous")
	}

	const shards = 4
	merged := corpus.New()
	for i := 0; i < shards; i++ {
		rep, err := pokeholes.NewEngine().Hunt(ctx, shardSpec(i, shards))
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, shards, err)
		}
		if _, err := merged.Merge(rep.Corpus); err != nil {
			t.Fatalf("merging shard %d/%d: %v", i, shards, err)
		}
	}

	if merged.Len() != soloRep.Corpus.Len() {
		t.Errorf("merged corpus has %d buckets, unsharded hunt found %d",
			merged.Len(), soloRep.Corpus.Len())
	}
	if got, want := merged.TotalPrograms(), soloRep.Corpus.Programs; got != want {
		t.Errorf("merged TotalPrograms = %d, want %d", got, want)
	}
	for _, want := range soloRep.Corpus.Buckets() {
		got, ok := merged.Bucket(want.Sig)
		if !ok {
			t.Errorf("merged corpus lost bucket %s", want.Sig)
			continue
		}
		if got.Seed != want.Seed {
			t.Errorf("bucket %s: merged exemplar from seed %d, unsharded opened at seed %d",
				want.Sig, got.Seed, want.Seed)
		}
		if got.Exemplar != want.Exemplar {
			t.Errorf("bucket %s: merged exemplar differs from unsharded exemplar", want.Sig)
		}
		if got.Count != want.Count {
			t.Errorf("bucket %s: merged Count = %d, unsharded = %d", want.Sig, got.Count, want.Count)
		}
	}
}

// TestShardResumeMismatchFailsLoudly pins the seed-cursor bugfix: a
// corpus hunted under one shard scheme must refuse to resume under
// another (silently continuing would re-fuzz or skip seeds that belong
// to a different replica), and a legacy identity-less corpus must
// refuse any sharded resume at all.
func TestShardResumeMismatchFailsLoudly(t *testing.T) {
	ctx := context.Background()
	spec := shardSpec(1, 4)
	rep, err := pokeholes.NewEngine().Hunt(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	for _, bad := range []struct {
		name     string
		idx, cnt int
	}{
		{"different count", 1, 2},
		{"different index", 2, 4},
		{"explicit unsharded", 0, 1},
	} {
		resume := spec
		resume.Corpus = rep.Corpus
		resume.ShardIndex, resume.ShardCount = bad.idx, bad.cnt
		if _, err := pokeholes.NewEngine().Hunt(ctx, resume); err == nil {
			t.Errorf("%s: resuming shard 1/4 corpus as %d/%d must fail loudly",
				bad.name, bad.idx, bad.cnt)
		} else if !strings.Contains(err.Error(), "shard") {
			t.Errorf("%s: error does not name the shard mismatch: %v", bad.name, err)
		}
	}

	// The zero-value spec adopts the corpus's recorded identity and
	// continues on its stride.
	resume := spec
	resume.Corpus = rep.Corpus
	resume.ShardIndex, resume.ShardCount = 0, 0
	resume.Budget = 8
	if _, err := pokeholes.NewEngine().Hunt(ctx, resume); err != nil {
		t.Errorf("zero-value shard spec must adopt the corpus identity: %v", err)
	}

	// A legacy corpus (no recorded identity) cannot prove its cursor is
	// on any shard's stride.
	legacy := corpus.New()
	legacy.NextSeed = 907
	legacy.Programs = 7
	legacyResume := shardSpec(1, 4)
	legacyResume.Corpus = legacy
	if _, err := pokeholes.NewEngine().Hunt(ctx, legacyResume); err == nil {
		t.Error("sharded resume of an identity-less corpus must fail loudly")
	}

	// An off-stride cursor (wrong residue class for the recorded shard)
	// is refused too.
	skewed := corpus.New()
	skewed.Seed0, skewed.ShardIndex, skewed.ShardCount = 900, 1, 4
	skewed.NextSeed = 903 // residue 2, not 1
	skewed.Programs = 1
	skewedResume := shardSpec(1, 4)
	skewedResume.Corpus = skewed
	if _, err := pokeholes.NewEngine().Hunt(ctx, skewedResume); err == nil {
		t.Error("off-stride cursor must fail loudly")
	}
}

// TestShardCancelResumeStaysOnStride: a sharded hunt cancelled mid-run
// checkpoints a cursor on its own stride; resuming it finishes the
// budget and converges to the uninterrupted shard's corpus, and
// resuming the same checkpoint under a different ShardCount fails.
func TestShardCancelResumeStaysOnStride(t *testing.T) {
	// Several small batches, so a batch-1 cancel leaves real budget to
	// resume (the shard default is a single batch).
	shardSpec24 := func() pokeholes.HuntSpec {
		s := shardSpec(2, 4)
		s.Budget, s.BatchSize = 16, 4
		return s
	}
	full, err := pokeholes.NewEngine().Hunt(context.Background(), shardSpec24())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	spec := shardSpec24()
	spec.CorpusPath = path
	spec.Progress = func(p pokeholes.HuntProgress) {
		if p.Batch == 1 {
			cancel()
		}
	}
	rep, err := pokeholes.NewEngine().Hunt(ctx, spec)
	if err == nil {
		t.Fatal("cancelled hunt returned no error")
	}
	if rep.Programs >= spec.Budget {
		t.Skip("hunt finished before cancellation took effect")
	}

	loaded, err := corpus.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ShardIndex != 2 || loaded.ShardCount != 4 || loaded.Seed0 != spec.Seed0 {
		t.Fatalf("checkpoint lost the shard identity: seed0=%d shard=%d/%d",
			loaded.Seed0, loaded.ShardIndex, loaded.ShardCount)
	}
	if rel := loaded.NextSeed - loaded.Seed0 - 2; rel < 0 || rel%4 != 0 {
		t.Fatalf("checkpointed cursor %d is off shard 2/4's stride", loaded.NextSeed)
	}

	// Resuming under a different ShardCount must fail loudly even from
	// a mid-run checkpoint.
	bad := shardSpec(2, 8)
	bad.Corpus = loaded
	if _, err := pokeholes.NewEngine().Hunt(context.Background(), bad); err == nil {
		t.Error("mid-run checkpoint resumed under a different ShardCount")
	}

	resume := shardSpec24()
	resume.Budget = spec.Budget - loaded.Programs
	resume.Corpus = loaded
	resumed, err := pokeholes.NewEngine().Hunt(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	got, want := encodeCorpus(t, resumed.Corpus), encodeCorpus(t, full.Corpus)
	if string(got) != string(want) {
		t.Errorf("shard corpus after cancel+resume differs from uninterrupted shard:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHuntSnapshotPublishesQuiescentCorpus: the Snapshot hook fires at
// batch boundaries with a corpus that is safe to Merge right there on
// the hunt goroutine, and the merged union equals the final corpus.
func TestHuntSnapshotPublishesQuiescentCorpus(t *testing.T) {
	global := corpus.New()
	snapshots := 0
	spec := shardSpec(0, 2)
	spec.Snapshot = func(c *corpus.Corpus) {
		snapshots++
		if _, err := global.Merge(c); err != nil {
			t.Errorf("snapshot merge: %v", err)
		}
	}
	rep, err := pokeholes.NewEngine().Hunt(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if snapshots < spec.Budget/spec.BatchSize {
		t.Errorf("Snapshot fired %d times, want at least one per batch (%d)",
			snapshots, spec.Budget/spec.BatchSize)
	}
	if global.Len() != rep.Corpus.Len() {
		t.Errorf("global corpus has %d buckets after snapshots, hunt found %d",
			global.Len(), rep.Corpus.Len())
	}
	for _, b := range rep.Corpus.Buckets() {
		g, ok := global.Bucket(b.Sig)
		if !ok || g.Count != b.Count {
			t.Errorf("bucket %s not faithfully merged via snapshots", b.Sig)
		}
	}
}
