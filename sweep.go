package pokeholes

// This file implements the configuration-matrix API: Engine.Sweep checks
// one program across a whole version × level grid of a family while
// sharing every configuration-invariant artifact — the lowered IR module
// (frontend runs once per program), the static-analysis facts, and the
// per-version O0 reference traces of the quantitative study. Sibling
// levels additionally share optimizer work through the engine's
// schedule-prefix snapshot tier: a level whose canonical schedule extends
// a prefix another level already ran resumes from that cached state and
// executes only its suffix (see internal/compiler/snapshot.go). Configs
// fan out over the engine's worker pool; results land at their config
// index, so aggregation is deterministic at any parallelism.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/compiler"
	"repro/internal/conjecture"
	"repro/internal/metrics"
	"repro/internal/minic"
)

// Versions returns a family's releases, oldest first.
func Versions(f Family) []string {
	vs := compiler.GCVersions
	if f == CL {
		vs = compiler.CLVersions
	}
	return append([]string(nil), vs...)
}

// Levels returns all of a family's optimization levels, including O0.
func Levels(f Family) []string {
	ls := compiler.GCLevels
	if f == CL {
		ls = compiler.CLLevels
	}
	return append([]string(nil), ls...)
}

// Matrix describes a version × level configuration grid of one family.
// The zero values of Versions and Levels mean "every version" and "every
// optimizing level" respectively.
type Matrix struct {
	Family Family
	// Versions to check, oldest first (default: all of the family's).
	Versions []string
	// Levels to check (default: OptLevels, i.e. everything but O0).
	Levels []string
	// Measure also computes the §2 metrics of every configuration against
	// its version's O0 reference build, recorded once per version.
	Measure bool
}

// FullMatrix is the family's complete version × optimizing-level grid.
func FullMatrix(f Family) Matrix {
	return Matrix{Family: f, Versions: Versions(f), Levels: OptLevels(f)}
}

// withDefaults fills the empty dimensions.
func (m Matrix) withDefaults() Matrix {
	if len(m.Versions) == 0 {
		m.Versions = Versions(m.Family)
	}
	if len(m.Levels) == 0 {
		m.Levels = OptLevels(m.Family)
	}
	return m
}

// validate rejects unknown families, versions and levels.
func (m Matrix) validate() error {
	if m.Family != GC && m.Family != CL {
		return fmt.Errorf("pokeholes: unknown family %q", m.Family)
	}
	for _, v := range m.Versions {
		if (Config{Family: m.Family, Version: v}).VersionIndex() < 0 {
			return fmt.Errorf("pokeholes: unknown version %q for family %s", v, m.Family)
		}
	}
	known := map[string]bool{}
	for _, l := range Levels(m.Family) {
		known[l] = true
	}
	for _, l := range m.Levels {
		if !known[l] {
			return fmt.Errorf("pokeholes: unknown level %q for family %s", l, m.Family)
		}
	}
	return nil
}

// Configs returns the matrix's configurations in deterministic
// version-major, level-minor order (the order Sweep reports in).
func (m Matrix) Configs() []Config {
	m = m.withDefaults()
	out := make([]Config, 0, len(m.Versions)*len(m.Levels))
	for _, v := range m.Versions {
		for _, l := range m.Levels {
			out = append(out, Config{Family: m.Family, Version: v, Level: l})
		}
	}
	return out
}

// SweepResult is one program checked across a whole configuration matrix.
type SweepResult struct {
	Matrix  Matrix
	Configs []Config
	// Reports[i] is the Check report of Configs[i]. Each report is
	// identical to what Engine.Check would return for that configuration.
	Reports []*Report
	// Metrics[i] is Configs[i]'s §2 metrics (non-nil iff Matrix.Measure).
	Metrics []Metrics
}

// Report returns the report of one matrix configuration, or nil.
func (s *SweepResult) Report(cfg Config) *Report {
	for i, c := range s.Configs {
		if c == cfg {
			return s.Reports[i]
		}
	}
	return nil
}

// Violations returns the violations of one (version, level) cell, or nil
// when the cell is outside the matrix.
func (s *SweepResult) Violations(version, level string) []Violation {
	r := s.Report(Config{Family: s.Matrix.Family, Version: version, Level: level})
	if r == nil {
		return nil
	}
	return r.Violations
}

// LevelSets rolls one version's violations up by the exact set of matrix
// levels each unique violation reproduces at — the Venn decomposition
// behind the paper's Figures 2 and 3. Every matrix level participates;
// the paper's figures exclude Oz, so reproduce them with a matrix whose
// Levels omit it (experiments.LevelSetDistribution does exactly that).
// Keys are violation keys; values are level lists in matrix order.
func (s *SweepResult) LevelSets(version string) map[string][]string {
	mx := s.Matrix.withDefaults()
	out := map[string][]string{}
	for _, level := range mx.Levels {
		for _, v := range s.Violations(version, level) {
			out[v.Key()] = append(out[v.Key()], level)
		}
	}
	return out
}

// LevelSetCounts collapses LevelSets into a distribution: "Og+O2+O3" → how
// many unique violations reproduce at exactly that level set.
func (s *SweepResult) LevelSetCounts(version string) map[string]int {
	out := map[string]int{}
	for _, levels := range s.LevelSets(version) {
		key := ""
		for _, l := range levels {
			if key != "" {
				key += "+"
			}
			key += l
		}
		out[key]++
	}
	return out
}

// UniqueByConjecture returns, for one version, the number of distinct
// violations of each conjecture across all matrix levels (the Table 4
// rollup).
func (s *SweepResult) UniqueByConjecture(version string) [3]int {
	mx := s.Matrix.withDefaults()
	seen := map[string]bool{}
	var counts [3]int
	for _, level := range mx.Levels {
		for _, v := range s.Violations(version, level) {
			if !seen[v.Key()] {
				seen[v.Key()] = true
				counts[v.Conjecture-1]++
			}
		}
	}
	return counts
}

// SortedLevelSetKeys returns the distribution keys of LevelSetCounts in
// descending count order (name-ascending tiebreak), for stable rendering.
func SortedLevelSetKeys(dist map[string]int) []string {
	keys := make([]string, 0, len(dist))
	for k := range dist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if dist[keys[i]] != dist[keys[j]] {
			return dist[keys[i]] > dist[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Sweep checks prog against every configuration of the matrix, sharing the
// frontend (lowered exactly once per program), the analysis facts, and —
// when measuring — the per-version O0 reference traces. Per-config work
// fans out over the engine's worker pool; Reports are ordered like
// Matrix.Configs, so identical matrices yield identical results at any
// worker count. Every report is byte-identical to an Engine.Check of the
// same configuration.
func (e *Engine) Sweep(ctx context.Context, prog *minic.Program, mx Matrix) (*SweepResult, error) {
	return e.sweep(ctx, prog, mx, e.workers)
}

// sweep is Sweep with an explicit worker bound. Matrix-mode campaigns run
// it with one worker per job: the campaign pool already saturates
// WithWorkers, so fanning configs out again would run up to workers²
// concurrent jobs.
func (e *Engine) sweep(ctx context.Context, prog *minic.Program, mx Matrix, workers int) (*SweepResult, error) {
	mx = mx.withDefaults()
	if err := mx.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	configs := mx.Configs()

	// Stage 1, once per program: frontend and facts. The module is passed
	// down to every per-config job, so the sharing holds even when the
	// engine cache is disabled.
	mod, err := e.frontend(ctx, prog)
	if err != nil {
		return nil, err
	}
	facts, err := e.facts(ctx, prog)
	if err != nil {
		return nil, err
	}
	// Computed once, before the fan-out, so the per-configuration workers
	// share one rendering instead of each re-rendering the program.
	srcKey := sourceKey(prog)

	// O0 reference traces, one per version, recorded before the fan-out so
	// level workers of the same version share rather than race. Each
	// trace is the family debugger's view of the config's single-pass
	// session (view 0 of its MultiTrace).
	var refs map[string]*Trace
	if mx.Measure {
		refs = make(map[string]*Trace, len(mx.Versions))
		for _, ver := range mx.Versions {
			refCfg := Config{Family: mx.Family, Version: ver, Level: "O0"}
			ref, err := e.traceFrom(ctx, mod, srcKey, prog, refCfg)
			if err != nil {
				return nil, err
			}
			refs[ver] = ref.Views[0]
		}
	}

	res := &SweepResult{Matrix: mx, Configs: configs, Reports: make([]*Report, len(configs))}
	if mx.Measure {
		res.Metrics = make([]Metrics, len(configs))
	}

	// Stages 2+3 per config: optimize, codegen, trace, check. Indexed
	// writes need no reorder buffer; the slice is the deterministic order.
	if workers > len(configs) {
		workers = len(configs)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(configs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = func() error {
					if err := ctx.Err(); err != nil {
						return err
					}
					cfg := configs[i]
					mt, err := e.traceFrom(ctx, mod, srcKey, prog, cfg)
					if err != nil {
						return err
					}
					tr := mt.Views[0]
					res.Reports[i] = &Report{Config: cfg, Trace: tr,
						Violations: conjecture.CheckAll(facts, tr)}
					if mx.Measure {
						res.Metrics[i] = metrics.Compute(tr, refs[cfg.Version])
					}
					return nil
				}()
			}
		}()
	}
	for i := range configs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	// First error in config order, so failures are as deterministic as
	// successes.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}
