// Package triage pinpoints the optimization behind a conjecture violation
// (§4.3 of the paper). Two methods mirror the paper's:
//
//   - Bisect, for the clang-like family: re-run the pipeline with an
//     execution limit and binary-search the first pass application that
//     makes the violation appear (the -opt-bisect-limit technique).
//   - FlagSearch, for the gcc-like family: recompile with one pass disabled
//     at a time (the -fno-<opt> survey); every flag whose removal makes the
//     violation vanish is a culprit candidate.
//
// Both probe streams are prefix-friendly by construction — a bisection
// probe executes a prefix of the full pipeline, and a flag-disable probe
// shares the schedule up to the disabled pass's first occurrence — so on
// an engine with the schedule-prefix snapshot tier enabled each probe
// resumes from the longest cached prefix state and re-optimizes only its
// suffix (ascending bisection probes become O(suffix) instead of
// O(whole pipeline)).
package triage

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/conjecture"
	"repro/internal/debugger"
	"repro/internal/minic"
)

// CompileFn is a pluggable compiler entry point with the same contract as
// compiler.Compile.
type CompileFn func(*minic.Program, compiler.Config, compiler.Options) (*compiler.Result, error)

// Target is one violation to triage.
type Target struct {
	Prog  *minic.Program
	Facts *analysis.Facts
	Cfg   compiler.Config
	// Key identifies the violation (conjecture.Violation.Key()).
	Key string
	// Compile, when non-nil, replaces compiler.Compile for every build the
	// triage performs. The engine injects its caching, counting compile
	// here so triage baselines reuse the artifacts of an earlier Check.
	Compile CompileFn
	// Debugger, when non-nil, replaces the family's native debugger for
	// every trace the triage records (the engine injects its configured
	// debugger so WithDebugger overrides hold through triage).
	Debugger debugger.Debugger
	// StepBudget caps the VM steps of every trace the triage records;
	// 0 means vm.DefaultMaxStep (the engine threads WithStepBudget here).
	StepBudget int
}

// dbg returns the target's debugger, defaulting to the family's native one.
func (tg Target) dbg() debugger.Debugger {
	if tg.Debugger != nil {
		return tg.Debugger
	}
	return newDebugger(tg.Cfg.Family)
}

// compile builds the target's program with the configured entry point.
func (tg Target) compile(o compiler.Options) (*compiler.Result, error) {
	if tg.Compile != nil {
		return tg.Compile(tg.Prog, tg.Cfg, o)
	}
	return compiler.Compile(tg.Prog, tg.Cfg, o)
}

// newDebugger builds the family's native debugger with its catalogued
// defects, as the paper's pipeline does.
func newDebugger(f compiler.Family) debugger.Debugger {
	name := compiler.NativeDebugger(f)
	if name == "gdb" {
		return debugger.NewGDB(compiler.DebuggerDefects("gdb"))
	}
	return debugger.NewLLDB(compiler.DebuggerDefects("lldb"))
}

// Occurs compiles with the given knobs and reports whether the violation
// reproduces.
func Occurs(tg Target, o compiler.Options) (bool, error) {
	res, err := tg.compile(o)
	if err != nil {
		return false, err
	}
	tr, err := debugger.RecordWith(res.Exe, tg.dbg(), debugger.RecordOpts{StepBudget: tg.StepBudget})
	if err != nil {
		return false, err
	}
	for _, v := range conjecture.CheckAll(tg.Facts, tr) {
		if v.Key() == tg.Key {
			return true, nil
		}
	}
	return false, nil
}

// Bisect finds the first pass execution whose application makes the
// violation visible and returns the pass name (without the function
// suffix). It fails when the violation does not reproduce with the full
// pipeline.
func Bisect(tg Target) (string, error) {
	full, err := tg.compile(compiler.Options{})
	if err != nil {
		return "", err
	}
	n := full.PipelineExecutions
	occursAt := func(limit int) (bool, error) {
		if limit == 0 {
			// A zero execution budget cannot be expressed through the
			// bisect knob (zero means "unlimited" there); disabling every
			// pass is equivalent.
			disabled := map[string]bool{}
			for _, name := range compiler.PassNames(tg.Cfg) {
				disabled[name] = true
			}
			return Occurs(tg, compiler.Options{Disabled: disabled})
		}
		return Occurs(tg, compiler.Options{BisectLimit: limit})
	}
	all, err := occursAt(n)
	if err != nil {
		return "", err
	}
	if !all {
		return "", fmt.Errorf("triage: violation does not reproduce at full pipeline")
	}
	if zero, err := occursAt(0); err != nil {
		return "", err
	} else if zero {
		// Present before any optimization ran: attributable to codegen or
		// the debugger, not a middle-end pass.
		return "codegen", nil
	}
	// Register promotion is the always-on baseline of every optimizing
	// level (the -O0 comparison point of the paper uses memory-resident
	// variables); start the search after it so attribution lands on a real
	// transformation unless promotion itself is the cause.
	lo := 0
	for _, name := range full.Applied {
		if !strings.HasPrefix(name, "mem2reg(") {
			break
		}
		lo++
	}
	if lo > 0 {
		occ, err := occursAt(lo)
		if err != nil {
			return "", err
		}
		if occ {
			return "mem2reg", nil
		}
	}
	hi := n // lo: absent, hi: present
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		occ, err := occursAt(mid)
		if err != nil {
			return "", err
		}
		if occ {
			hi = mid
		} else {
			lo = mid
		}
	}
	name := full.Applied[hi-1]
	if i := strings.IndexByte(name, '('); i >= 0 {
		name = name[:i]
	}
	return name, nil
}

// FlagSearch tries the pipeline with each pass disabled separately and
// returns the passes whose removal makes the violation disappear. Multiple
// results reflect dependencies between optimizations (the paper's inlining
// example); none means the behaviour is not controllable by single flags.
func FlagSearch(tg Target) ([]string, error) {
	base, err := Occurs(tg, compiler.Options{})
	if err != nil {
		return nil, err
	}
	if !base {
		return nil, fmt.Errorf("triage: violation does not reproduce with all passes enabled")
	}
	var culprits []string
	for _, name := range compiler.PassNames(tg.Cfg) {
		if name == "mem2reg" {
			// Register promotion has no disable flag on real compilers
			// (it is the optimizing levels' baseline); a violation only
			// controllable by it counts as flag-uncontrollable (§4.3).
			continue
		}
		occ, err := Occurs(tg, compiler.Options{Disabled: map[string]bool{name: true}})
		if err != nil {
			return nil, err
		}
		if !occ {
			culprits = append(culprits, name)
		}
	}
	return culprits, nil
}

// Culprit runs the family-appropriate method and returns a single ranked
// culprit name (the paper heuristically down-ranks inlining because
// disabling it suppresses many downstream passes).
func Culprit(tg Target) (string, error) {
	if tg.Cfg.Family == compiler.CL {
		return Bisect(tg)
	}
	cands, err := FlagSearch(tg)
	if err != nil {
		return "", err
	}
	if len(cands) == 0 {
		return "", fmt.Errorf("triage: no single flag controls the violation")
	}
	return rankCulprits(cands), nil
}

// rankCulprits picks the reported culprit from FlagSearch's candidate
// list. FlagSearch returns candidates in the pipeline's canonical
// PassNames order, so the pick is a pure function of the set — identical
// at any worker count. The first candidate wins unless it is inlining or
// register promotion, which the paper down-ranks because disabling them
// suppresses many downstream passes: any other candidate beats them.
func rankCulprits(cands []string) string {
	best := cands[0]
	for _, c := range cands {
		if c != "inline" && (best == "inline" || best == "mem2reg") {
			best = c
		}
	}
	return best
}
