package triage

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/conjecture"
	"repro/internal/debugger"
	"repro/internal/fuzzgen"
	"repro/internal/minic"
)

// findAnyViolation sweeps seeds until a violation shows under cfg.
func findAnyViolation(t *testing.T, cfg compiler.Config) (Target, bool) {
	t.Helper()
	for seed := int64(1000); seed < 1100; seed++ {
		prog := fuzzgen.GenerateSeed(seed)
		facts := analysis.Analyze(prog)
		res, err := compiler.Compile(prog, cfg, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		dbg := newDebugger(cfg.Family)
		tr, err := debugger.Record(res.Exe, dbg)
		if err != nil {
			t.Fatal(err)
		}
		vs := conjecture.CheckAll(facts, tr)
		if len(vs) > 0 {
			return Target{Prog: prog, Facts: facts, Cfg: cfg, Key: vs[0].Key()}, true
		}
	}
	return Target{}, false
}

func TestBisectFindsAPass(t *testing.T) {
	cfg := compiler.Config{Family: compiler.CL, Version: "trunk", Level: "Og"}
	tg, ok := findAnyViolation(t, cfg)
	if !ok {
		t.Skip("no violation found in the seed range")
	}
	pass, err := Bisect(tg)
	if err != nil {
		t.Fatal(err)
	}
	if pass == "" {
		t.Fatal("empty culprit")
	}
	// The named pass must be in the pipeline (or the codegen bucket).
	if pass != "codegen" {
		found := false
		for _, name := range compiler.PassNames(cfg) {
			if name == pass {
				found = true
			}
		}
		if !found {
			t.Errorf("culprit %q not in pipeline %v", pass, compiler.PassNames(cfg))
		}
	}
}

func TestFlagSearchDisablingCulpritKillsViolation(t *testing.T) {
	cfg := compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O2"}
	tg, ok := findAnyViolation(t, cfg)
	if !ok {
		t.Skip("no violation found in the seed range")
	}
	culprits, err := FlagSearch(tg)
	if err != nil {
		t.Fatal(err)
	}
	if len(culprits) == 0 {
		t.Skip("violation not controllable by a single flag (a documented outcome)")
	}
	// Re-verify the defining property of a culprit flag.
	occ, err := Occurs(tg, compiler.Options{Disabled: map[string]bool{culprits[0]: true}})
	if err != nil {
		t.Fatal(err)
	}
	if occ {
		t.Errorf("violation persists with culprit %s disabled", culprits[0])
	}
}

func TestOccursIsStable(t *testing.T) {
	cfg := compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O2"}
	tg, ok := findAnyViolation(t, cfg)
	if !ok {
		t.Skip("no violation found")
	}
	for i := 0; i < 3; i++ {
		occ, err := Occurs(tg, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !occ {
			t.Fatal("violation not deterministic")
		}
	}
}

func TestOccursFalseForCleanProgram(t *testing.T) {
	prog := minic.MustParse(`
int main(void) {
  int x = 1;
  return x;
}`)
	tg := Target{Prog: prog, Facts: analysis.Analyze(prog),
		Cfg: compiler.Config{Family: compiler.GC, Version: "patched", Level: "O1"},
		Key: "C1:main:x:3"}
	occ, err := Occurs(tg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if occ {
		t.Error("phantom violation reported")
	}
	if _, err := Bisect(tg); err == nil {
		t.Error("Bisect should fail when the violation does not reproduce")
	}
	if _, err := FlagSearch(tg); err == nil {
		t.Error("FlagSearch should fail when the violation does not reproduce")
	}
}
