package triage

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/opt"
)

// Schedule delta debugging (ROADMAP item 2, modeled on swift's
// opt_bug_reducer): instead of stopping at a single culprit pass,
// ScheduleReduce delta-debugs the configuration's canonical pass schedule
// down to a minimal subsequence that still reproduces the violation. A
// result naming two or more passes is a pass-interaction bug — e.g.
// inlining exposing a defect in a later scalar pass — which single-culprit
// triage conflates with the plain single-pass bucket. ddmin probes are
// subsequences of one canonical schedule, so consecutive probes share long
// prefixes; on a snapshot-enabled engine each probe resumes from the
// longest cached prefix state instead of re-optimizing from entry 0.

// ScheduleReduction is ScheduleReduce's outcome.
type ScheduleReduction struct {
	// Schedule is the minimal subsequence of the configuration's canonical
	// schedule that still reproduces the violation: removing any single
	// entry makes it vanish (1-minimality). Len() >= 2 marks a
	// pass-interaction bug. The empty schedule means the violation
	// pre-dates the optimizer (codegen or debugger side).
	Schedule opt.Schedule
	// Probes counts the candidate schedules compiled and traced.
	Probes int
}

// Interaction reports whether the reduction found a pass-interaction bug:
// a minimal schedule needing two or more passes.
func (r *ScheduleReduction) Interaction() bool { return r.Schedule.Len() >= 2 }

// ScheduleReduce finds a 1-minimal subsequence of the canonical O-level
// schedule that still reproduces the target violation, using ddmin
// (Zeller's delta debugging: prefix/suffix splits, then complements, with
// doubling granularity). Every probe compiles an explicit candidate
// schedule via Target.Compile — the engine injects a compile that re-runs
// Optimize+Codegen from the cached lowered module, so probes perform zero
// frontend executions. The algorithm is sequential and purely a function
// of probe outcomes, so the result is byte-deterministic at any engine
// worker count. It fails when the violation does not reproduce under the
// full canonical schedule.
func ScheduleReduce(tg Target) (*ScheduleReduction, error) {
	red := &ScheduleReduction{}
	occurs := func(entries []opt.Entry) (bool, error) {
		red.Probes++
		s := opt.Schedule{Entries: entries}
		return Occurs(tg, compiler.Options{Schedule: &s})
	}

	full := compiler.ScheduleFor(tg.Cfg)
	occ, err := occurs(full.Entries)
	if err != nil {
		return nil, err
	}
	if !occ {
		return nil, fmt.Errorf("triage: violation does not reproduce under the full schedule")
	}
	if full.Len() == 0 {
		return red, nil
	}
	occ, err = occurs(nil)
	if err != nil {
		return nil, err
	}
	if occ {
		// Reproduces with no optimization at all: attributable to codegen
		// or the debugger, mirroring Bisect's "codegen" verdict.
		return red, nil
	}

	entries := full.Entries
	n := 2
	for len(entries) >= 2 {
		reduced := false
		// Subsets: at n == 2 these are the prefix/suffix splits.
		for _, c := range chunksOf(entries, n) {
			occ, err := occurs(c)
			if err != nil {
				return nil, err
			}
			if occ {
				entries, n, reduced = c, 2, true
				break
			}
		}
		// Complements (identical to the subsets when n == 2, so skipped
		// there): at n == len(entries) each probe removes one entry, which
		// is what establishes 1-minimality on exit.
		if !reduced && n > 2 {
			for i := 0; i < n; i++ {
				comp := complementOf(entries, n, i)
				occ, err := occurs(comp)
				if err != nil {
					return nil, err
				}
				if occ {
					entries = comp
					if n > 2 {
						n--
					}
					reduced = true
					break
				}
			}
		}
		if !reduced {
			if n >= len(entries) {
				break
			}
			n *= 2
			if n > len(entries) {
				n = len(entries)
			}
		}
	}
	red.Schedule = opt.Schedule{Entries: entries}
	return red, nil
}

// chunksOf splits entries into n contiguous chunks of near-equal length,
// earlier chunks taking the remainder — the deterministic split ddmin's
// reproducibility depends on.
func chunksOf(entries []opt.Entry, n int) [][]opt.Entry {
	out := make([][]opt.Entry, 0, n)
	size, rem := len(entries)/n, len(entries)%n
	start := 0
	for i := 0; i < n; i++ {
		end := start + size
		if i < rem {
			end++
		}
		if end > start {
			out = append(out, entries[start:end])
		}
		start = end
	}
	return out
}

// complementOf returns entries with the i-th of n chunks removed,
// preserving order.
func complementOf(entries []opt.Entry, n, i int) []opt.Entry {
	chunks := chunksOf(entries, n)
	out := make([]opt.Entry, 0, len(entries))
	for j, c := range chunks {
		if j == i {
			continue
		}
		out = append(out, c...)
	}
	return out
}
