package triage

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/minic"
	"repro/internal/opt"
)

func TestScheduleReduceFindsMinimalSchedule(t *testing.T) {
	cfg := compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O2"}
	tg, ok := findAnyViolation(t, cfg)
	if !ok {
		t.Skip("no violation found in the seed range")
	}
	red, err := ScheduleReduce(tg)
	if err != nil {
		t.Fatal(err)
	}
	full := compiler.ScheduleFor(cfg)
	if red.Schedule.Len() > full.Len() {
		t.Fatalf("minimal schedule longer than the canonical one: %q", red.Schedule)
	}
	if red.Probes < 2 {
		t.Fatalf("suspiciously few probes: %d", red.Probes)
	}

	// The minimal schedule must be a subsequence of the canonical one.
	j := 0
	for _, e := range red.Schedule.Entries {
		for j < full.Len() && full.Entries[j] != e {
			j++
		}
		if j == full.Len() {
			t.Fatalf("minimal schedule %q is not a subsequence of %q", red.Schedule, full)
		}
		j++
	}

	// Defining property: the minimal schedule reproduces...
	s := red.Schedule.Clone()
	occ, err := Occurs(tg, compiler.Options{Schedule: &s})
	if err != nil {
		t.Fatal(err)
	}
	if !occ {
		t.Fatalf("violation does not reproduce under the minimal schedule %q", s)
	}
	// ...and it is 1-minimal: dropping any single entry kills it.
	for i := range s.Entries {
		sub := opt.Schedule{Entries: append(append([]opt.Entry{}, s.Entries[:i]...), s.Entries[i+1:]...)}
		occ, err := Occurs(tg, compiler.Options{Schedule: &sub})
		if err != nil {
			t.Fatal(err)
		}
		if occ {
			t.Fatalf("schedule not 1-minimal: still reproduces without entry %d (%s)", i, s.Entries[i])
		}
	}
}

// TestScheduleReduceDeterministic pins byte-determinism: repeated
// reductions of the same target produce the identical schedule and probe
// count (ddmin is sequential and purely outcome-driven).
func TestScheduleReduceDeterministic(t *testing.T) {
	cfg := compiler.Config{Family: compiler.CL, Version: "trunk", Level: "O2"}
	tg, ok := findAnyViolation(t, cfg)
	if !ok {
		t.Skip("no violation found in the seed range")
	}
	first, err := ScheduleReduce(tg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := ScheduleReduce(tg)
		if err != nil {
			t.Fatal(err)
		}
		if again.Schedule.String() != first.Schedule.String() || again.Probes != first.Probes {
			t.Fatalf("reduction not deterministic: %q/%d vs %q/%d",
				again.Schedule, again.Probes, first.Schedule, first.Probes)
		}
	}
}

func TestScheduleReduceFailsWithoutReproduction(t *testing.T) {
	prog := minic.MustParse(`
int main(void) {
  int x = 1;
  return x;
}`)
	tg := Target{Prog: prog, Facts: analysis.Analyze(prog),
		Cfg: compiler.Config{Family: compiler.GC, Version: "patched", Level: "O1"},
		Key: "C1:main:x:3"}
	if _, err := ScheduleReduce(tg); err == nil {
		t.Fatal("ScheduleReduce should fail when the violation does not reproduce")
	}
}

func TestChunkHelpers(t *testing.T) {
	es := []opt.Entry{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}, {Name: "e"}}
	chunks := chunksOf(es, 2)
	if len(chunks) != 2 || len(chunks[0]) != 3 || len(chunks[1]) != 2 {
		t.Fatalf("chunksOf(5, 2) = %v", chunks)
	}
	comp := complementOf(es, 5, 2)
	if len(comp) != 4 {
		t.Fatalf("complementOf removed wrong count: %v", comp)
	}
	for _, e := range comp {
		if e.Name == "c" {
			t.Fatalf("complementOf(_, 5, 2) kept the removed entry: %v", comp)
		}
	}
	// n larger than len degrades to one chunk per entry, no empties.
	chunks = chunksOf(es[:2], 4)
	if len(chunks) != 2 {
		t.Fatalf("chunksOf(2, 4) = %v", chunks)
	}
}

// TestRankCulprits pins the culprit ranking heuristic (satellite of the
// schedule work): inlining and register promotion are down-ranked, the
// earliest other candidate wins, and the pick is a pure deterministic
// function of the candidate list.
func TestRankCulprits(t *testing.T) {
	cases := []struct {
		cands []string
		want  string
	}{
		{[]string{"lsr"}, "lsr"},
		{[]string{"inline"}, "inline"},
		{[]string{"mem2reg"}, "mem2reg"},
		{[]string{"inline", "lsr"}, "lsr"},
		{[]string{"mem2reg", "sroa"}, "sroa"},
		{[]string{"inline", "mem2reg"}, "mem2reg"},
		{[]string{"lsr", "inline", "dse"}, "lsr"},
		{[]string{"inline", "lsr", "dse"}, "lsr"},
		{[]string{"ccp", "copyprop"}, "ccp"},
	}
	for _, c := range cases {
		if got := rankCulprits(c.cands); got != c.want {
			t.Errorf("rankCulprits(%v) = %q, want %q", c.cands, got, c.want)
		}
		// Determinism: the same list always ranks the same.
		for i := 0; i < 3; i++ {
			if rankCulprits(c.cands) != rankCulprits(c.cands) {
				t.Fatalf("rankCulprits(%v) not deterministic", c.cands)
			}
		}
	}
}
