// Package object defines the executable container produced by the compiler:
// machine code plus an encoded debug-information section, mirroring an ELF
// file with DWARF sections. The debug information is stored in its binary
// encoding and decoded on demand, so consumers exercise the same parse path
// a real debugger would.
package object

import (
	"sync"

	"repro/internal/asm"
	"repro/internal/dwarf"
)

// Executable is a linked program image. It is safe for concurrent use once
// built: the engine's compile cache shares one Executable across campaign
// workers.
type Executable struct {
	Prog *asm.Program
	// DebugSection is the encoded debug information ("the DWARF blob").
	DebugSection []byte

	once      sync.Once
	cached    *dwarf.Info
	cachedErr error

	sessionOnce sync.Once
	session     any
	sessionErr  error
}

// New bundles a program with its debug information.
func New(prog *asm.Program, info *dwarf.Info) *Executable {
	return &Executable{Prog: prog, DebugSection: dwarf.Encode(info)}
}

// FromParts reassembles an executable from a program and an already-encoded
// debug section — the load path of the .mcx container format. The returned
// executable carries no runtime caches: debug information decodes on first
// use and the debugger's session artifact (stop plan) is rebuilt lazily,
// exactly as for a freshly linked executable.
func FromParts(prog *asm.Program, debugSection []byte) *Executable {
	return &Executable{Prog: prog, DebugSection: debugSection}
}

// DebugInfo decodes (and caches) the debug section.
func (e *Executable) DebugInfo() (*dwarf.Info, error) {
	e.once.Do(func() {
		e.cached, e.cachedErr = dwarf.Decode(e.DebugSection)
	})
	return e.cached, e.cachedErr
}

// SessionArtifact caches one lazily built, read-only session artifact
// alongside the decoded debug information — the debugger's precompiled
// stop plan. The builder runs at most once per executable (first caller
// wins; the artifact must not depend on caller state), so repeated
// sessions over a shared executable pay the precompilation once.
func (e *Executable) SessionArtifact(build func() (any, error)) (any, error) {
	e.sessionOnce.Do(func() {
		e.session, e.sessionErr = build()
	})
	return e.session, e.sessionErr
}
