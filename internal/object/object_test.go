package object

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/dwarf"
)

func TestExecutableDebugRoundTrip(t *testing.T) {
	info := dwarf.NewInfo()
	info.NLines = 9
	info.Lines = []dwarf.LineEntry{{PC: 0, Line: 3}}
	info.CU.AddChild(&dwarf.DIE{ID: info.NewID(), Tag: dwarf.TagSubprogram,
		Name: "main", Ranges: []dwarf.PCRange{{Lo: 0, Hi: 4}}})
	prog := &asm.Program{Funcs: []*asm.Func{{Name: "main", Entry: 0, End: 4}}}
	exe := New(prog, info)
	if len(exe.DebugSection) == 0 {
		t.Fatal("empty debug section")
	}
	back, err := exe.DebugInfo()
	if err != nil {
		t.Fatal(err)
	}
	if back.NLines != 9 || back.SubprogramByName("main") == nil {
		t.Error("debug info corrupted through the section round trip")
	}
	// Cached decode returns the same instance.
	again, err := exe.DebugInfo()
	if err != nil {
		t.Fatal(err)
	}
	if again != back {
		t.Error("decode not cached")
	}
}

func TestExecutableRejectsCorruptSection(t *testing.T) {
	exe := &Executable{DebugSection: []byte{0xde, 0xad}}
	if _, err := exe.DebugInfo(); err == nil {
		t.Error("corrupt section accepted")
	}
}
