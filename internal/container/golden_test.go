package container_test

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compiler"
	"repro/internal/container"
	"repro/internal/minic"
	"repro/internal/vm"
)

var update = flag.Bool("update", false, "regenerate the golden container fixture")

// goldenSource is frozen: changing it (or the compiler's output for it)
// invalidates testdata/golden/container.mcx and with it the pinned format
// bytes. Regenerate deliberately with -update.
const goldenSource = `
int counter = 0;
volatile int vflag = 1;
extern void sink(int v);
int twice(int n) {
  return n + n;
}
int main(void) {
  int total = 0;
  int i = 0;
  while (i < 4) {
    total = total + twice(i) + counter;
    i = i + 1;
  }
  total = total + vflag;
  sink(total);
  return total;
}
`

const goldenPath = "testdata/golden/container.mcx"

func goldenArtifact(t *testing.T) *container.Artifact {
	t.Helper()
	cfg := compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O2"}
	return artifactFor(t, parse(t, goldenSource), cfg)
}

// TestGoldenContainer pins the on-disk format: the committed fixture must
// decode, re-encode byte-identically, carry the expected provenance, and
// byte-match a fresh encode of the same source. Any format or compiler
// change that shifts the bytes fails here first, forcing a deliberate
// FormatVersion decision.
func TestGoldenContainer(t *testing.T) {
	fresh := container.Encode(goldenArtifact(t))

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, fresh, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(data, fresh) {
		t.Fatalf("fixture (%d bytes) differs from a fresh encode (%d bytes); "+
			"if the format or compiler changed deliberately, bump FormatVersion "+
			"and regenerate with -update", len(data), len(fresh))
	}

	// Pin the fixed-width header fields by raw byte inspection, not via the
	// decoder — the fixture is the ground truth for external readers.
	if len(data) < 16 {
		t.Fatalf("fixture too short: %d bytes", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != container.Magic {
		t.Fatalf("fixture magic %#x, want %#x", m, container.Magic)
	}
	if !bytes.Equal(data[0:4], []byte("MCX1")) {
		t.Fatalf("fixture does not start with the literal bytes MCX1: % x", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != container.FormatVersion {
		t.Fatalf("fixture format version %d, want %d", v, container.FormatVersion)
	}
	if n := binary.LittleEndian.Uint16(data[6:8]); n != 4 {
		t.Fatalf("fixture section count %d, want 4", n)
	}

	art, err := container.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	want := container.Provenance{
		Family: "gc", Version: "trunk", Level: "O2",
		Fingerprint: minic.FingerprintSource(minic.Render(parse(t, goldenSource))),
		SourceLen:   len(minic.Render(parse(t, goldenSource))),
	}
	if art.Prov != want {
		t.Fatalf("fixture provenance %+v, want %+v", art.Prov, want)
	}

	// The fixture must still be a runnable executable: pin its VM exit.
	obs, err := vm.Observe(art.Exe.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Ret != 13 {
		t.Fatalf("fixture executable returned %d, want 13", obs.Ret)
	}
}
