package container_test

import (
	"bytes"
	"testing"

	"repro/internal/compiler"
	"repro/internal/container"
	"repro/internal/debugger"
	"repro/internal/fuzzgen"
	"repro/internal/minic"
	"repro/internal/vm"
)

// testSource exercises most of the instruction set: globals (one
// volatile), calls to opaque externals, a loop with an induction variable,
// pointers, and a small inlinable helper.
const testSource = `
int g = 3;
volatile int flag = 0;
extern void opaque(int x);
int helper(int a) {
  return a * 2 + g;
}
int main(void) {
  int acc = 0;
  int i = 0;
  while (i < 5) {
    acc = acc + helper(i);
    i = i + 1;
  }
  int *p = &acc;
  *p = *p + flag;
  opaque(acc);
  return acc;
}
`

func parse(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	minic.AssignLines(prog)
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// artifactFor compiles a program and wraps it the way the engine's
// write-through does.
func artifactFor(t *testing.T, prog *minic.Program, cfg compiler.Config) *container.Artifact {
	t.Helper()
	res, err := compiler.Compile(prog, cfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := minic.Render(prog)
	return &container.Artifact{
		Exe: res.Exe,
		Prov: container.Provenance{
			Family: string(cfg.Family), Version: cfg.Version, Level: cfg.Level,
			Fingerprint: minic.FingerprintSource(src), SourceLen: len(src),
		},
		PipelineExecutions: res.PipelineExecutions,
		Applied:            res.Applied,
	}
}

func testConfigs() []compiler.Config {
	return []compiler.Config{
		{Family: compiler.GC, Version: "trunk", Level: "O0"},
		{Family: compiler.GC, Version: "trunk", Level: "O2"},
		{Family: compiler.CL, Version: "trunk", Level: "O2"},
		{Family: compiler.CL, Version: "v9", Level: "Og"},
	}
}

func TestRoundTripByteStable(t *testing.T) {
	progs := []*minic.Program{parse(t, testSource), fuzzgen.GenerateSeed(7), fuzzgen.GenerateSeed(42)}
	for _, prog := range progs {
		for _, cfg := range testConfigs() {
			art := artifactFor(t, prog, cfg)
			enc := container.Encode(art)
			dec, err := container.Decode(enc)
			if err != nil {
				t.Fatalf("%s: Decode: %v", cfg, err)
			}
			if enc2 := container.Encode(dec); !bytes.Equal(enc, enc2) {
				t.Fatalf("%s: Encode(Decode(x)) differs from Encode(x)", cfg)
			}
			if dec.Prov != art.Prov {
				t.Fatalf("%s: provenance %+v, want %+v", cfg, dec.Prov, art.Prov)
			}
			if dec.PipelineExecutions != art.PipelineExecutions {
				t.Fatalf("%s: executions %d, want %d", cfg, dec.PipelineExecutions, art.PipelineExecutions)
			}
			if len(dec.Applied) != len(art.Applied) {
				t.Fatalf("%s: %d applied passes, want %d", cfg, len(dec.Applied), len(art.Applied))
			}
			for i := range dec.Applied {
				if dec.Applied[i] != art.Applied[i] {
					t.Fatalf("%s: applied[%d] = %q, want %q", cfg, i, dec.Applied[i], art.Applied[i])
				}
			}
			if got, want := dec.Exe.Prog.String(), art.Exe.Prog.String(); got != want {
				t.Fatalf("%s: decoded program disassembly differs", cfg)
			}
			if !bytes.Equal(dec.Exe.DebugSection, art.Exe.DebugSection) {
				t.Fatalf("%s: decoded debug section differs", cfg)
			}
		}
	}
}

// TestDecodedExecutableBehaves pins that a loaded executable is a drop-in
// replacement: same VM observation and the same recorded debugger session
// (stop plans rebuilt lazily, not persisted).
func TestDecodedExecutableBehaves(t *testing.T) {
	prog := parse(t, testSource)
	cfg := compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O2"}
	art := artifactFor(t, prog, cfg)
	dec, err := container.Decode(container.Encode(art))
	if err != nil {
		t.Fatal(err)
	}

	obs1, err := vm.Observe(art.Exe.Prog)
	if err != nil {
		t.Fatal(err)
	}
	obs2, err := vm.Observe(dec.Exe.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if obs1.Ret != obs2.Ret || len(obs1.Events) != len(obs2.Events) {
		t.Fatalf("decoded executable observes differently: ret %d/%d, %d/%d events",
			obs1.Ret, obs2.Ret, len(obs1.Events), len(obs2.Events))
	}

	dbg := debugger.NewGDB(compiler.DebuggerDefects("gdb"))
	tr1, err := debugger.Record(art.Exe, dbg)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := debugger.Record(dec.Exe, dbg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr1.Stops) != len(tr2.Stops) || len(tr1.Steppable) != len(tr2.Steppable) {
		t.Fatalf("decoded executable traces differently: %d/%d stops, %d/%d steppable",
			len(tr1.Stops), len(tr2.Stops), len(tr1.Steppable), len(tr2.Steppable))
	}
	for line, s1 := range tr1.Stops {
		s2 := tr2.Stops[line]
		if s2 == nil || s1.Frame != s2.Frame || len(s1.Vars) != len(s2.Vars) {
			t.Fatalf("line %d: stop differs on decoded executable", line)
		}
		for i, v := range s1.Vars {
			if s2.Vars[i] != v {
				t.Fatalf("line %d: var %q differs: %+v vs %+v", line, v.Name, v, s2.Vars[i])
			}
		}
	}
}

// TestCanonicalScalarTypes pins that decoding restores the parser's
// canonical *minic.IntType pointers, keeping identity comparison valid on
// loaded executables.
func TestCanonicalScalarTypes(t *testing.T) {
	prog := parse(t, testSource)
	cfg := compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O2"}
	dec, err := container.Decode(container.Encode(artifactFor(t, prog, cfg)))
	if err != nil {
		t.Fatal(err)
	}
	canonical := map[*minic.IntType]bool{
		minic.Int8: true, minic.Int16: true, minic.Int32: true, minic.Int64: true,
		minic.Uint8: true, minic.Uint16: true, minic.Uint32: true, minic.Uint64: true,
	}
	widths := 0
	for _, in := range dec.Exe.Prog.Instrs {
		if in.Width == nil {
			continue
		}
		widths++
		if !canonical[in.Width] {
			t.Fatalf("instruction width %v is not a canonical type pointer", in.Width)
		}
	}
	if widths == 0 {
		t.Fatal("test program compiled to no width-carrying instructions; pick a richer source")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	art := artifactFor(t, parse(t, testSource), compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O2"})
	enc := container.Encode(art)
	for i := 0; i < len(enc); i++ {
		if _, err := container.Decode(enc[:i]); err == nil {
			t.Fatalf("Decode accepted a %d-byte truncation of a %d-byte container", i, len(enc))
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	art := artifactFor(t, parse(t, testSource), compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O0"})
	enc := container.Encode(art)
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 1 << bit
			dec, err := container.Decode(mut)
			if err != nil {
				continue
			}
			// The only acceptable acceptance is canonical: re-encoding must
			// reproduce the mutated bytes exactly (it cannot, given the
			// checksum covers every payload byte and the header is pinned —
			// so reaching here is a hole in the format's integrity).
			if !bytes.Equal(container.Encode(dec), mut) {
				t.Fatalf("byte %d bit flip accepted without byte-stable re-encode", i)
			}
		}
	}
}
