// Package container defines the .mcx artifact format: a versioned,
// deterministic binary encoding of a compiled object.Executable together
// with its provenance and pipeline metadata. The layout follows the
// load-command/section scheme of real object containers (Mach-O is the
// template): a fixed-width header with a magic, a format version and a
// payload checksum, then a section table of (type, offset, size) triples,
// then the section payloads. Readers can seek straight to a section; the
// section contents themselves use the toolchain's compact varint idiom.
//
// The format is canonical: Encode is a pure function of the artifact, and
// Decode accepts exactly the bytes Encode produces — after parsing it
// re-encodes the result and rejects any input that does not round-trip
// byte for byte. Decoding is fully bounds-checked and never panics on
// corrupt or adversarial input (FuzzContainerDecode pins both properties).
//
// Only the compiled image is persisted. Runtime caches — the decoded DWARF
// tree, the debugger's precompiled stop plan (object.SessionArtifact) —
// are deliberately absent: a loaded executable rebuilds them lazily, so the
// on-disk bytes stay independent of whichever debugger engines a process
// happens to configure.
package container

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/asm"
	"repro/internal/minic"
	"repro/internal/object"
)

// Magic identifies a MiniC executable container ("MCX1" little-endian).
const Magic = 0x3158434d

// FormatVersion is the current container format revision. Decode rejects
// any other value: the format carries compiled artifacts between replicas,
// so silent cross-version reads would be cache poisoning.
const FormatVersion = 1

// Section types, in the fixed order Encode emits them.
const (
	// SecProg is the asm.Program image (instructions, functions, globals).
	SecProg = 1
	// SecDwarf is the executable's debug section, verbatim — the same
	// bytes dwarf.Encode produced at compile time, so a loaded executable
	// exercises the identical dwarf.Decode path an in-memory one does.
	SecDwarf = 2
	// SecProv is the provenance: family, version, level, and the
	// canonical-source fingerprint + length the store addresses by.
	SecProv = 3
	// SecPipeline is the optimization-pipeline metadata (executed pass
	// instances and their count) that triage's bisection needs, so a
	// store-loaded build can back a Triage exactly like a fresh one.
	SecPipeline = 4
)

// sectionOrder is the canonical emission order.
var sectionOrder = [...]uint32{SecProg, SecDwarf, SecProv, SecPipeline}

// headerSize is magic(4) + version(2) + nsections(2) + checksum(8).
const headerSize = 16

// sectionEntrySize is type(4) + offset(4) + size(4).
const sectionEntrySize = 12

// Provenance records where an artifact came from: the configuration that
// built it and the identity of the source it was built from. Fingerprint
// is the canonical-source hash (minic.FingerprintSource); SourceLen is the
// canonical source's byte length, a cheap second check so a fingerprint
// collision between two programs cannot alias their artifacts undetected.
type Provenance struct {
	Family      string
	Version     string
	Level       string
	Fingerprint uint64
	SourceLen   int
}

// Config renders the provenance's configuration ("gc-trunk-O2"), the form
// the store embeds in artifact file names.
func (p Provenance) Config() string {
	return fmt.Sprintf("%s-%s-%s", p.Family, p.Version, p.Level)
}

// Artifact is one decoded container: the executable plus everything the
// engine needs to serve the compilation from disk as if it had just run.
type Artifact struct {
	Exe  *object.Executable
	Prov Provenance
	// PipelineExecutions and Applied mirror compiler.Result: the pass
	// executions the build performed, and the executed pass instances in
	// order (the bisection search space of triage).
	PipelineExecutions int
	Applied            []string
}

// Encode serialises the artifact. The output is deterministic: equal
// artifacts encode to equal bytes, so golden fixtures and the store's
// content addressing are stable.
func Encode(a *Artifact) []byte {
	payloads := [len(sectionOrder)][]byte{
		encodeProg(a.Exe.Prog),
		a.Exe.DebugSection,
		encodeProv(a.Prov),
		encodePipeline(a),
	}
	total := 0
	for _, p := range payloads {
		total += len(p)
	}
	h := fnv.New64a()
	for _, p := range payloads {
		h.Write(p)
	}

	out := make([]byte, 0, headerSize+len(sectionOrder)*sectionEntrySize+total)
	out = binary.LittleEndian.AppendUint32(out, Magic)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(sectionOrder)))
	out = binary.LittleEndian.AppendUint64(out, h.Sum64())
	offset := uint32(headerSize + len(sectionOrder)*sectionEntrySize)
	for i, typ := range sectionOrder {
		out = binary.LittleEndian.AppendUint32(out, typ)
		out = binary.LittleEndian.AppendUint32(out, offset)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payloads[i])))
		offset += uint32(len(payloads[i]))
	}
	for _, p := range payloads {
		out = append(out, p...)
	}
	return out
}

// Decode parses a container. It never panics: every length is checked
// against the remaining input before use, the payload checksum must match,
// and — the canonicality guarantee — the parsed artifact must re-encode to
// exactly the input bytes. The returned executable carries no runtime
// caches: its debug information is decoded (and validated) here once, and
// debugger stop plans are rebuilt lazily on first session.
func Decode(data []byte) (*Artifact, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("container: short header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data); m != Magic {
		return nil, fmt.Errorf("container: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != FormatVersion {
		return nil, fmt.Errorf("container: unsupported format version %d", v)
	}
	nsec := int(binary.LittleEndian.Uint16(data[6:]))
	if nsec != len(sectionOrder) {
		return nil, fmt.Errorf("container: %d sections, want %d", nsec, len(sectionOrder))
	}
	checksum := binary.LittleEndian.Uint64(data[8:])
	tableEnd := headerSize + nsec*sectionEntrySize
	if len(data) < tableEnd {
		return nil, fmt.Errorf("container: truncated section table")
	}

	// Sections must appear in canonical order, contiguous, starting right
	// after the table and ending at the input's last byte.
	wantOffset := uint32(tableEnd)
	var secs [len(sectionOrder)][]byte
	for i := 0; i < nsec; i++ {
		entry := data[headerSize+i*sectionEntrySize:]
		typ := binary.LittleEndian.Uint32(entry)
		off := binary.LittleEndian.Uint32(entry[4:])
		size := binary.LittleEndian.Uint32(entry[8:])
		if typ != sectionOrder[i] {
			return nil, fmt.Errorf("container: section %d has type %d, want %d", i, typ, sectionOrder[i])
		}
		if off != wantOffset {
			return nil, fmt.Errorf("container: section %d at offset %d, want %d", i, off, wantOffset)
		}
		if uint64(off)+uint64(size) > uint64(len(data)) {
			return nil, fmt.Errorf("container: section %d overruns input", i)
		}
		secs[i] = data[off : off+size]
		wantOffset = off + size
	}
	if int(wantOffset) != len(data) {
		return nil, fmt.Errorf("container: %d trailing bytes", len(data)-int(wantOffset))
	}
	h := fnv.New64a()
	h.Write(data[tableEnd:])
	if h.Sum64() != checksum {
		return nil, fmt.Errorf("container: payload checksum mismatch")
	}

	prog, err := decodeProg(secs[0])
	if err != nil {
		return nil, err
	}
	prov, err := decodeProv(secs[2])
	if err != nil {
		return nil, err
	}
	a := &Artifact{Exe: object.FromParts(prog, append([]byte(nil), secs[1]...)), Prov: prov}
	if a.PipelineExecutions, a.Applied, err = decodePipeline(secs[3]); err != nil {
		return nil, err
	}
	// Validate the debug section now rather than at first use; the decoded
	// tree stays cached on the executable, so this costs nothing extra.
	if _, err := a.Exe.DebugInfo(); err != nil {
		return nil, fmt.Errorf("container: debug section: %w", err)
	}
	// Canonicality: accepted inputs must be exactly what Encode would
	// produce, so every accepted container re-encodes byte-stably and a
	// corrupt-but-parseable variant (non-minimal varints, reordered
	// fields) can never enter the store's content addressing.
	if reenc := Encode(a); !bytesEqual(reenc, data) {
		return nil, fmt.Errorf("container: non-canonical encoding")
	}
	return a, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- section payloads -------------------------------------------------

// writer accumulates a section payload in the toolchain's varint idiom.
type writer struct{ buf []byte }

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// reader is the bounds-checked counterpart of writer. Every method checks
// the remaining input and returns an error instead of slicing past the
// end, so decoding cannot panic whatever the input.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("container: "+format, args...)
	}
}

func (r *reader) remaining() int { return len(r.data) - r.pos }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("truncated uvarint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("truncated varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// count reads a length prefix and rejects values that could not possibly
// fit in the remaining input (each counted element costs at least one
// byte), so corrupt counts cannot drive huge allocations.
func (r *reader) count() int {
	v := r.uvarint()
	if r.err == nil && v > uint64(r.remaining()) {
		r.fail("count %d exceeds remaining %d bytes", v, r.remaining())
		return 0
	}
	return int(v)
}

func (r *reader) str() string {
	n := r.count()
	if r.err != nil {
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.remaining() < 1 {
		r.fail("truncated bool at %d", r.pos)
		return false
	}
	b := r.data[r.pos]
	r.pos++
	if b > 1 {
		r.fail("bad bool byte %#x at %d", b, r.pos-1)
		return false
	}
	return b == 1
}

// done requires the payload to be fully consumed.
func (r *reader) done(section string) error {
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("container: %d trailing bytes in %s section", r.remaining(), section)
	}
	return nil
}

func encodeProv(p Provenance) []byte {
	w := &writer{}
	w.str(p.Family)
	w.str(p.Version)
	w.str(p.Level)
	w.uvarint(p.Fingerprint)
	w.uvarint(uint64(p.SourceLen))
	return w.buf
}

func decodeProv(data []byte) (Provenance, error) {
	r := &reader{data: data}
	p := Provenance{
		Family:  r.str(),
		Version: r.str(),
		Level:   r.str(),
	}
	p.Fingerprint = r.uvarint()
	p.SourceLen = int(r.uvarint())
	return p, r.done("provenance")
}

func encodePipeline(a *Artifact) []byte {
	w := &writer{}
	w.varint(int64(a.PipelineExecutions))
	w.uvarint(uint64(len(a.Applied)))
	for _, s := range a.Applied {
		w.str(s)
	}
	return w.buf
}

func decodePipeline(data []byte) (int, []string, error) {
	r := &reader{data: data}
	execs := int(r.varint())
	n := r.count()
	var applied []string
	for i := 0; i < n && r.err == nil; i++ {
		applied = append(applied, r.str())
	}
	return execs, applied, r.done("pipeline")
}

// encodeProg serialises an asm.Program losslessly: every field of every
// instruction is written unconditionally, so the encoding is a pure
// function of the value and round-trips exactly.
func encodeProg(p *asm.Program) []byte {
	w := &writer{}
	w.uvarint(uint64(len(p.Instrs)))
	for _, in := range p.Instrs {
		encodeInstr(w, in)
	}
	w.uvarint(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		w.str(f.Name)
		w.varint(int64(f.Entry))
		w.varint(int64(f.End))
		w.varint(int64(f.NTemp))
		w.uvarint(uint64(len(f.Slots)))
		for _, s := range f.Slots {
			w.varint(int64(s))
		}
		w.bool(f.HasRet)
	}
	w.uvarint(uint64(len(p.Globals)))
	for _, g := range p.Globals {
		w.str(g.Name)
		w.varint(int64(g.Size))
		w.uvarint(uint64(len(g.Init)))
		for _, v := range g.Init {
			w.varint(v)
		}
		w.bool(g.Volatile)
	}
	return w.buf
}

func encodeInstr(w *writer, in *asm.Instr) {
	w.uvarint(uint64(in.Op))
	w.varint(int64(in.Rd))
	encodeOperand(w, in.Src)
	encodeOperand(w, in.Src2)
	w.uvarint(uint64(len(in.Args)))
	for _, a := range in.Args {
		encodeOperand(w, a)
	}
	w.varint(int64(in.UnOp))
	w.varint(int64(in.BinOp))
	encodeWidth(w, in.Width)
	w.str(in.Global)
	w.varint(int64(in.Slot))
	w.str(in.Callee)
	w.varint(int64(in.Target))
	w.varint(int64(in.Line))
	w.varint(int64(in.InlineID))
}

func encodeOperand(w *writer, o asm.Operand) {
	w.bool(o.IsConst)
	w.varint(o.C)
	w.varint(int64(o.Temp))
}

// encodeWidth writes a *minic.IntType as 0 (nil) or (width<<1 | unsigned)
// + 1; decode maps the pair back onto the canonical type pointers, so
// identity comparison of scalar types keeps working on loaded executables.
func encodeWidth(w *writer, t *minic.IntType) {
	if t == nil {
		w.uvarint(0)
		return
	}
	v := uint64(t.Width) << 1
	if t.Unsigned {
		v |= 1
	}
	w.uvarint(v + 1)
}

// canonicalInt maps (width, unsigned) back to the parser's canonical type
// pointers. The toolchain guarantees scalar types are canonical, so a
// decoded executable must restore that invariant, not allocate lookalikes.
func canonicalInt(width int, unsigned bool) *minic.IntType {
	for _, t := range []*minic.IntType{
		minic.Int8, minic.Int16, minic.Int32, minic.Int64,
		minic.Uint8, minic.Uint16, minic.Uint32, minic.Uint64,
	} {
		if t.Width == width && t.Unsigned == unsigned {
			return t
		}
	}
	return &minic.IntType{Width: width, Unsigned: unsigned}
}

func decodeProg(data []byte) (*asm.Program, error) {
	r := &reader{data: data}
	p := &asm.Program{}
	nInstr := r.count()
	for i := 0; i < nInstr && r.err == nil; i++ {
		p.Instrs = append(p.Instrs, decodeInstr(r))
	}
	nFunc := r.count()
	for i := 0; i < nFunc && r.err == nil; i++ {
		f := &asm.Func{
			Name:  r.str(),
			Entry: int(r.varint()),
			End:   int(r.varint()),
			NTemp: int(r.varint()),
		}
		nSlots := r.count()
		for k := 0; k < nSlots && r.err == nil; k++ {
			f.Slots = append(f.Slots, int(r.varint()))
		}
		f.HasRet = r.bool()
		p.Funcs = append(p.Funcs, f)
	}
	nGlob := r.count()
	for i := 0; i < nGlob && r.err == nil; i++ {
		g := &asm.Global{
			Name: r.str(),
			Size: int(r.varint()),
		}
		nInit := r.count()
		for k := 0; k < nInit && r.err == nil; k++ {
			g.Init = append(g.Init, r.varint())
		}
		g.Volatile = r.bool()
		p.Globals = append(p.Globals, g)
	}
	if err := r.done("program"); err != nil {
		return nil, err
	}
	return p, nil
}

func decodeInstr(r *reader) *asm.Instr {
	in := &asm.Instr{}
	in.Op = asm.Op(r.uvarint())
	if r.err == nil && (in.Op < 0 || in.Op > asm.OpNop) {
		r.fail("unknown opcode %d", in.Op)
		return in
	}
	in.Rd = int(r.varint())
	in.Src = decodeOperand(r)
	in.Src2 = decodeOperand(r)
	nArgs := r.count()
	for i := 0; i < nArgs && r.err == nil; i++ {
		in.Args = append(in.Args, decodeOperand(r))
	}
	// Operator enums are bounds-checked so a decoded instruction can never
	// index-panic an operator name table or evaluator downstream.
	in.UnOp = minic.UnaryOp(r.varint())
	if r.err == nil && (in.UnOp < minic.Neg || in.UnOp > minic.Deref) {
		r.fail("unknown unary op %d", in.UnOp)
		return in
	}
	in.BinOp = minic.BinOp(r.varint())
	if r.err == nil && (in.BinOp < minic.Add || in.BinOp > minic.LogOr) {
		r.fail("unknown binary op %d", in.BinOp)
		return in
	}
	in.Width = decodeWidth(r)
	in.Global = r.str()
	in.Slot = int(r.varint())
	in.Callee = r.str()
	in.Target = int(r.varint())
	in.Line = int(r.varint())
	in.InlineID = int(r.varint())
	return in
}

func decodeOperand(r *reader) asm.Operand {
	return asm.Operand{IsConst: r.bool(), C: r.varint(), Temp: int(r.varint())}
}

func decodeWidth(r *reader) *minic.IntType {
	v := r.uvarint()
	if v == 0 || r.err != nil {
		return nil
	}
	v--
	return canonicalInt(int(v>>1), v&1 == 1)
}
