package container_test

import (
	"bytes"
	"testing"

	"repro/internal/compiler"
	"repro/internal/container"
	"repro/internal/fuzzgen"
)

// FuzzContainerDecode pins the decoder's two safety properties: it never
// panics on arbitrary bytes, and anything it accepts re-encodes to the
// exact input (canonical form), so a decoded artifact can always be
// re-addressed by the bytes it came from.
func FuzzContainerDecode(f *testing.F) {
	// Seed with real containers across configs, plus truncated and
	// bit-flipped variants so the fuzzer starts deep inside the format
	// instead of rediscovering the magic number.
	for _, seed := range []int64{7, 42} {
		prog := fuzzgen.GenerateSeed(seed)
		for _, cfg := range []compiler.Config{
			{Family: compiler.GC, Version: "trunk", Level: "O0"},
			{Family: compiler.CL, Version: "trunk", Level: "O2"},
		} {
			res, err := compiler.Compile(prog, cfg, compiler.Options{})
			if err != nil {
				f.Fatal(err)
			}
			enc := container.Encode(&container.Artifact{
				Exe: res.Exe,
				Prov: container.Provenance{
					Family: string(cfg.Family), Version: cfg.Version, Level: cfg.Level,
					Fingerprint: uint64(seed), SourceLen: 100,
				},
				PipelineExecutions: res.PipelineExecutions,
				Applied:            res.Applied,
			})
			f.Add(enc)
			f.Add(enc[:len(enc)/2])
			f.Add(enc[:16])
			for _, i := range []int{0, 5, 9, len(enc) / 2, len(enc) - 1} {
				mut := append([]byte(nil), enc...)
				mut[i] ^= 0x40
				f.Add(mut)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte("MCX1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		art, err := container.Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(container.Encode(art), data) {
			t.Fatalf("accepted input does not re-encode byte-stably")
		}
	})
}
