package ir

import "repro/internal/minic"

// This file defines MiniC's defined arithmetic semantics in one place. The
// IR interpreter, the constant folder, and the virtual machine all call
// these helpers, so an optimization can never change observable behaviour by
// disagreeing about edge cases (division by zero, shift overflow, wrapping).

// width64 is the default arithmetic width when an instruction carries none.
var width64 = minic.Int64

// widthOf normalises a possibly-nil width annotation.
func widthOf(w *minic.IntType) *minic.IntType {
	if w == nil {
		return width64
	}
	return w
}

// EvalBin evaluates a binary operation at the given width with MiniC's
// defined semantics: wrap-around arithmetic, division by zero yields zero,
// shift counts are masked to 0..63.
func EvalBin(op minic.BinOp, a, b int64, w *minic.IntType) int64 {
	w = widthOf(w)
	var r int64
	switch op {
	case minic.Add:
		r = a + b
	case minic.Sub:
		r = a - b
	case minic.Mul:
		r = a * b
	case minic.Div:
		if b == 0 {
			return 0
		}
		if w.Unsigned {
			r = int64(uint64(a) / uint64(b))
		} else {
			if a == -1<<63 && b == -1 {
				r = a // wraps, like Go
			} else {
				r = a / b
			}
		}
	case minic.Rem:
		if b == 0 {
			return 0
		}
		if w.Unsigned {
			r = int64(uint64(a) % uint64(b))
		} else {
			if a == -1<<63 && b == -1 {
				r = 0
			} else {
				r = a % b
			}
		}
	case minic.And:
		r = a & b
	case minic.Or:
		r = a | b
	case minic.Xor:
		r = a ^ b
	case minic.Shl:
		r = a << (uint64(b) & 63)
	case minic.Shr:
		s := uint64(b) & 63
		if w.Unsigned {
			// Mask the value to its width before the logical shift.
			uv := uint64(a)
			if w.Width < 64 {
				uv &= 1<<uint(w.Width) - 1
			}
			r = int64(uv >> s)
		} else {
			r = a >> s
		}
	case minic.Eq:
		return b2i(a == b)
	case minic.Ne:
		return b2i(a != b)
	case minic.Lt:
		if w.Unsigned {
			return b2i(uint64(a) < uint64(b))
		}
		return b2i(a < b)
	case minic.Le:
		if w.Unsigned {
			return b2i(uint64(a) <= uint64(b))
		}
		return b2i(a <= b)
	case minic.Gt:
		if w.Unsigned {
			return b2i(uint64(a) > uint64(b))
		}
		return b2i(a > b)
	case minic.Ge:
		if w.Unsigned {
			return b2i(uint64(a) >= uint64(b))
		}
		return b2i(a >= b)
	case minic.LogAnd:
		return b2i(a != 0 && b != 0)
	case minic.LogOr:
		return b2i(a != 0 || b != 0)
	}
	return w.Truncate(r)
}

// EvalUn evaluates a unary operation at the given width.
func EvalUn(op minic.UnaryOp, a int64, w *minic.IntType) int64 {
	w = widthOf(w)
	switch op {
	case minic.Neg:
		return w.Truncate(-a)
	case minic.LogNot:
		return b2i(a == 0)
	case minic.BitNot:
		return w.Truncate(^a)
	}
	return a
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
