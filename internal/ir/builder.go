package ir

import (
	"fmt"

	"repro/internal/minic"
)

// Lower translates a checked MiniC program into an IR module. The produced
// code is unoptimized "-O0 style": every source variable lives in a stack
// slot, every use reloads it, and one DbgVal intrinsic per variable declares
// the slot as its lifetime location. mem2reg (an optimization pass) later
// promotes eligible slots to registers and rewrites the debug intrinsics.
func Lower(prog *minic.Program) (*Module, error) {
	m := LowerGlobals(prog)
	for _, f := range prog.Funcs {
		lf, err := LowerFunc(prog, m, f)
		if err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, lf)
	}
	return m, nil
}

// LowerGlobals lowers just the global declarations of prog into a module
// with no functions, with NLines already set for the whole program. It is
// the first stage of Lower, exported so the incremental frontend can build
// (or reuse) the globals table independently of the function bodies.
func LowerGlobals(prog *minic.Program) *Module {
	m := &Module{NLines: ProgramLines(prog)}
	for _, g := range prog.Globals {
		mg := &Global{
			Name:     g.Name,
			Type:     g.Type,
			Size:     g.Type.Size(),
			Volatile: g.Volatile,
			DeclLine: g.Line,
		}
		mg.Init = make([]int64, mg.Size)
		flattenInit(g.Type, g.Init, mg.Init, 0)
		m.Globals = append(m.Globals, mg)
	}
	return m
}

// ProgramLines returns the module line count Lower records as NLines: the
// maximum over global declaration lines and, per function, the deepest
// statement line plus the closing-brace line.
func ProgramLines(prog *minic.Program) int {
	nlines := 0
	for _, g := range prog.Globals {
		if g.Line > nlines {
			nlines = g.Line
		}
	}
	for _, f := range prog.Funcs {
		maxLine := f.Line
		if f.Body != nil {
			minic.WalkStmt(f.Body, func(s minic.Stmt) bool {
				if s.Pos() > maxLine {
					maxLine = s.Pos()
				}
				return true
			})
		}
		if maxLine+1 > nlines {
			nlines = maxLine + 1
		}
	}
	return nlines
}

// flattenInit fills out[] with the flattened initialiser of t at offset off
// and returns the next offset.
func flattenInit(t minic.Type, iv *minic.InitValue, out []int64, off int) int {
	switch tt := t.(type) {
	case *minic.ArrayType:
		elemSize := tt.Elem.Size()
		for i := 0; i < tt.Len; i++ {
			var sub *minic.InitValue
			if iv != nil && iv.List != nil && i < len(iv.List) {
				sub = iv.List[i]
			}
			flattenInit(tt.Elem, sub, out, off+i*elemSize)
		}
		return off + tt.Len*elemSize
	default:
		if iv != nil {
			v := iv.Scalar
			if it, ok := t.(*minic.IntType); ok {
				v = it.Truncate(v)
			}
			out[off] = v
		}
		return off + 1
	}
}

type loopCtx struct {
	breakTo    *Block
	continueTo *Block
}

type builder struct {
	prog   *minic.Program
	mod    *Module
	fn     *Func
	cur    *Block
	scopes []map[string]*Var
	labels map[string]*Block
	loops  []loopCtx
	// nestedDepth counts enclosing bare brace scopes (not control-flow
	// bodies); declarations inside them are flagged on the variable.
	nestedDepth int
}

// LowerFunc lowers a single function declaration against module m's globals
// table. Apart from global resolution (by name, into m.Globals) and its own
// absolute source lines, the produced IR depends only on fd's body and the
// signatures of the functions it calls — the contract minic.FnFingerprint
// digests, and what makes per-function caching sound.
func LowerFunc(prog *minic.Program, m *Module, fd *minic.FuncDecl) (*Func, error) {
	f := &Func{
		Name:   fd.Name,
		HasRet: !minic.Equal(fd.Ret, minic.Void),
		Line:   fd.Line,
		Opaque: fd.Opaque,
	}
	if fd.Opaque {
		return f, nil
	}
	b := &builder{prog: prog, mod: m, fn: f, labels: map[string]*Block{}}
	b.cur = f.NewBlock()
	b.push()
	for _, p := range fd.Params {
		v := b.declareVar(p.Name, p.Type, fd.Line, true)
		f.Params = append(f.Params, v)
	}
	// Pre-create label blocks so forward gotos resolve.
	minic.WalkStmt(fd.Body, func(s minic.Stmt) bool {
		if ls, ok := s.(*minic.LabeledStmt); ok {
			b.labels[ls.Label] = f.NewBlock()
		}
		return true
	})
	if err := b.stmts(fd.Body.Stmts); err != nil {
		return nil, err
	}
	b.pop()
	// Implicit return for functions that fall off the end.
	if b.cur.Term() == nil {
		ret := &Instr{Op: OpRet, Dst: -1}
		if f.HasRet {
			ret.Args = []Value{ConstVal(0)}
		}
		b.cur.Instrs = append(b.cur.Instrs, ret)
	}
	// Terminate any unterminated blocks (dead ends after goto/return) with a
	// self-consistent return so the verifier is happy; unreachable blocks
	// are cleaned by simplifycfg.
	for _, blk := range f.Blocks {
		if blk.Term() == nil {
			ret := &Instr{Op: OpRet, Dst: -1}
			if f.HasRet {
				ret.Args = []Value{ConstVal(0)}
			}
			blk.Instrs = append(blk.Instrs, ret)
		}
	}
	return f, nil
}

func (b *builder) push() { b.scopes = append(b.scopes, map[string]*Var{}) }
func (b *builder) pop()  { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *builder) declareVar(name string, t minic.Type, line int, param bool) *Var {
	size := t.Size()
	v := &Var{Name: name, Type: t, DeclLine: line, Slot: b.fn.NewSlot(size), IsParam: param,
		InNestedScope: b.nestedDepth > 0}
	b.fn.Vars = append(b.fn.Vars, v)
	b.scopes[len(b.scopes)-1][name] = v
	// Declare the variable's lifetime location: its stack slot.
	b.emit(&Instr{Op: OpDbgVal, Dst: -1, V: v, Args: []Value{SlotVal(v.Slot)}, Line: line})
	return v
}

func (b *builder) lookupVar(name string) *Var {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if v := b.scopes[i][name]; v != nil {
			return v
		}
	}
	return nil
}

func (b *builder) emit(in *Instr) *Instr {
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

func (b *builder) br(to *Block, line int) {
	if b.cur.Term() == nil {
		b.emit(&Instr{Op: OpBr, Dst: -1, Tgts: []*Block{to}, Line: line})
	}
}

func (b *builder) stmts(ss []minic.Stmt) error {
	for _, s := range ss {
		if err := b.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) stmt(s minic.Stmt) error {
	switch x := s.(type) {
	case *minic.Block:
		b.push()
		b.nestedDepth++
		defer func() { b.nestedDepth--; b.pop() }()
		return b.stmts(x.Stmts)
	case *minic.DeclStmt:
		for _, vd := range x.Vars {
			v := b.declareVar(vd.Name, vd.Type, vd.Line, false)
			if vd.Init != nil {
				val, err := b.expr(vd.Init)
				if err != nil {
					return err
				}
				b.storeVar(v, val, vd.Line)
			}
		}
		return nil
	case *minic.AssignStmt:
		return b.assign(x.LHS, x.RHS, x.Line)
	case *minic.IfStmt:
		return b.ifStmt(x)
	case *minic.ForStmt:
		return b.forStmt(x)
	case *minic.WhileStmt:
		return b.whileStmt(x)
	case *minic.ExprStmt:
		_, err := b.expr(x.X)
		return err
	case *minic.ReturnStmt:
		in := &Instr{Op: OpRet, Dst: -1, Line: x.Line}
		if x.X != nil {
			v, err := b.expr(x.X)
			if err != nil {
				return err
			}
			in.Args = []Value{v}
		} else if b.fn.HasRet {
			in.Args = []Value{ConstVal(0)}
		}
		b.emit(in)
		b.cur = b.fn.NewBlock()
		return nil
	case *minic.GotoStmt:
		tgt := b.labels[x.Label]
		if tgt == nil {
			return fmt.Errorf("ir: line %d: goto to unknown label %q", x.Line, x.Label)
		}
		b.emit(&Instr{Op: OpBr, Dst: -1, Tgts: []*Block{tgt}, Line: x.Line})
		b.cur = b.fn.NewBlock()
		return nil
	case *minic.LabeledStmt:
		tgt := b.labels[x.Label]
		b.br(tgt, x.Line)
		b.cur = tgt
		return b.stmt(x.Stmt)
	case *minic.BreakStmt:
		if len(b.loops) == 0 {
			return fmt.Errorf("ir: line %d: break outside loop", x.Line)
		}
		b.emit(&Instr{Op: OpBr, Dst: -1, Tgts: []*Block{b.loops[len(b.loops)-1].breakTo}, Line: x.Line})
		b.cur = b.fn.NewBlock()
		return nil
	case *minic.ContinueStmt:
		if len(b.loops) == 0 {
			return fmt.Errorf("ir: line %d: continue outside loop", x.Line)
		}
		b.emit(&Instr{Op: OpBr, Dst: -1, Tgts: []*Block{b.loops[len(b.loops)-1].continueTo}, Line: x.Line})
		b.cur = b.fn.NewBlock()
		return nil
	}
	return fmt.Errorf("ir: unknown statement %T", s)
}

func (b *builder) ifStmt(x *minic.IfStmt) error {
	cond, err := b.expr(x.Cond)
	if err != nil {
		return err
	}
	thenB := b.fn.NewBlock()
	var elseB *Block
	exitB := b.fn.NewBlock()
	if x.Else != nil {
		elseB = b.fn.NewBlock()
	} else {
		elseB = exitB
	}
	b.emit(&Instr{Op: OpCondBr, Dst: -1, Args: []Value{cond}, Tgts: []*Block{thenB, elseB}, Line: x.Line})
	b.cur = thenB
	b.push()
	if err := b.stmts(x.Then.Stmts); err != nil {
		return err
	}
	b.pop()
	b.br(exitB, x.Line)
	if x.Else != nil {
		b.cur = elseB
		b.push()
		if err := b.stmts(x.Else.Stmts); err != nil {
			return err
		}
		b.pop()
		b.br(exitB, x.Line)
	}
	b.cur = exitB
	return nil
}

func (b *builder) forStmt(x *minic.ForStmt) error {
	b.push()
	defer b.pop()
	if x.Init != nil {
		if err := b.stmt(x.Init); err != nil {
			return err
		}
	}
	head := b.fn.NewBlock()
	body := b.fn.NewBlock()
	post := b.fn.NewBlock()
	exit := b.fn.NewBlock()
	b.br(head, x.Line)
	b.cur = head
	if x.Cond != nil {
		cond, err := b.expr(x.Cond)
		if err != nil {
			return err
		}
		b.emit(&Instr{Op: OpCondBr, Dst: -1, Args: []Value{cond}, Tgts: []*Block{body, exit}, Line: x.Line})
	} else {
		b.br(body, x.Line)
	}
	b.cur = body
	b.loops = append(b.loops, loopCtx{breakTo: exit, continueTo: post})
	b.push()
	if err := b.stmts(x.Body.Stmts); err != nil {
		return err
	}
	b.pop()
	b.loops = b.loops[:len(b.loops)-1]
	b.br(post, x.Line)
	b.cur = post
	if x.Post != nil {
		if err := b.stmt(x.Post); err != nil {
			return err
		}
	}
	b.br(head, x.Line)
	b.cur = exit
	return nil
}

func (b *builder) whileStmt(x *minic.WhileStmt) error {
	head := b.fn.NewBlock()
	body := b.fn.NewBlock()
	exit := b.fn.NewBlock()
	b.br(head, x.Line)
	b.cur = head
	cond, err := b.expr(x.Cond)
	if err != nil {
		return err
	}
	b.emit(&Instr{Op: OpCondBr, Dst: -1, Args: []Value{cond}, Tgts: []*Block{body, exit}, Line: x.Line})
	b.cur = body
	b.loops = append(b.loops, loopCtx{breakTo: exit, continueTo: head})
	b.push()
	if err := b.stmts(x.Body.Stmts); err != nil {
		return err
	}
	b.pop()
	b.loops = b.loops[:len(b.loops)-1]
	b.br(head, x.Line)
	b.cur = exit
	return nil
}

// storeVar stores val into v's slot and records the debug update.
func (b *builder) storeVar(v *Var, val Value, line int) {
	b.emit(&Instr{Op: OpStoreSlot, Dst: -1, Slot: v.Slot, Args: []Value{ConstVal(0), val},
		Width: intWidth(v.Type), Line: line})
}

func intWidth(t minic.Type) *minic.IntType {
	if it, ok := t.(*minic.IntType); ok {
		return it
	}
	return nil
}

// assign lowers LHS = RHS and returns nothing; used by statements and by
// AssignExpr (which additionally wants the value).
func (b *builder) assign(lhs, rhs minic.Expr, line int) error {
	_, err := b.assignVal(lhs, rhs, line)
	return err
}

func (b *builder) assignVal(lhs, rhs minic.Expr, line int) (Value, error) {
	val, err := b.expr(rhs)
	if err != nil {
		return Value{}, err
	}
	// Truncate the value to the LHS type if needed.
	if it, ok := lhs.ExprType().(*minic.IntType); ok {
		if val.IsConst() {
			val = ConstVal(it.Truncate(val.C))
		} else if it.Width < 64 {
			t := b.fn.NewTemp()
			b.emit(&Instr{Op: OpCopy, Dst: t, Args: []Value{val}, Width: it, Line: line})
			val = TempVal(t)
		}
	}
	switch l := lhs.(type) {
	case *minic.VarRef:
		if v := b.lookupVar(l.Name); v != nil {
			b.storeVar(v, val, line)
			return val, nil
		}
		g := b.mod.Global(l.Name)
		if g == nil {
			return Value{}, fmt.Errorf("ir: line %d: unknown variable %q", line, l.Name)
		}
		b.emit(&Instr{Op: OpStoreG, Dst: -1, G: g, Args: []Value{ConstVal(0), val},
			Width: intWidth(g.Type), Line: line})
		return val, nil
	case *minic.IndexExpr:
		base, idx, err := b.indexChain(l)
		if err != nil {
			return Value{}, err
		}
		switch tgt := base.(type) {
		case *Global:
			b.emit(&Instr{Op: OpStoreG, Dst: -1, G: tgt, Args: []Value{idx, val},
				Width: intWidth(l.ExprType()), Line: line})
		case *Var:
			b.emit(&Instr{Op: OpStoreSlot, Dst: -1, Slot: tgt.Slot, Args: []Value{idx, val},
				Width: intWidth(l.ExprType()), Line: line})
		case Value: // pointer base: computed address
			addr := b.addInto(tgt, idx, line)
			b.emit(&Instr{Op: OpStorePtr, Dst: -1, Args: []Value{addr, val},
				Width: intWidth(l.ExprType()), Line: line})
		}
		return val, nil
	case *minic.UnaryExpr: // *p = val
		if l.Op != minic.Deref {
			return Value{}, fmt.Errorf("ir: line %d: bad assignment target", line)
		}
		p, err := b.expr(l.X)
		if err != nil {
			return Value{}, err
		}
		b.emit(&Instr{Op: OpStorePtr, Dst: -1, Args: []Value{p, val},
			Width: intWidth(l.ExprType()), Line: line})
		return val, nil
	}
	return Value{}, fmt.Errorf("ir: line %d: bad assignment target %T", line, lhs)
}

// addInto emits base+idx unless idx is the constant 0.
func (b *builder) addInto(base, idx Value, line int) Value {
	if idx.IsConst() && idx.C == 0 {
		return base
	}
	t := b.fn.NewTemp()
	b.emit(&Instr{Op: OpBin, Dst: t, BinOp: minic.Add, Args: []Value{base, idx}, Line: line})
	return TempVal(t)
}

// indexChain resolves a (possibly nested) IndexExpr down to its base object
// and a flattened index value. The base is a *Global, a *Var (local array
// slot), or a Value holding a computed pointer.
func (b *builder) indexChain(e *minic.IndexExpr) (interface{}, Value, error) {
	// Collect indices innermost-last.
	var idxExprs []minic.Expr
	var baseExpr minic.Expr = e
	for {
		ie, ok := baseExpr.(*minic.IndexExpr)
		if !ok {
			break
		}
		idxExprs = append([]minic.Expr{ie.Index}, idxExprs...)
		baseExpr = ie.Base
	}
	// Determine the base object and its type.
	var base interface{}
	var baseType minic.Type
	switch be := baseExpr.(type) {
	case *minic.VarRef:
		if v := b.lookupVar(be.Name); v != nil {
			baseType = v.Type
			if minic.IsPointer(v.Type) {
				pv, err := b.expr(be)
				if err != nil {
					return nil, Value{}, err
				}
				base = pv
				baseType = v.Type.(*minic.PointerType).Elem
			} else {
				base = v
			}
		} else if g := b.mod.Global(be.Name); g != nil {
			baseType = g.Type
			if minic.IsPointer(g.Type) {
				pv, err := b.expr(be)
				if err != nil {
					return nil, Value{}, err
				}
				base = pv
				baseType = g.Type.(*minic.PointerType).Elem
			} else {
				base = g
			}
		} else {
			return nil, Value{}, fmt.Errorf("ir: line %d: unknown array %q", e.Line, be.Name)
		}
	default:
		// Pointer-valued expression as base.
		pv, err := b.expr(baseExpr)
		if err != nil {
			return nil, Value{}, err
		}
		base = pv
		pt, ok := baseExpr.ExprType().(*minic.PointerType)
		if !ok {
			return nil, Value{}, fmt.Errorf("ir: line %d: bad index base", e.Line)
		}
		baseType = pt.Elem
	}
	// Flatten indices: for each dimension, scale by element size.
	flat := ConstVal(0)
	t := baseType
	for i, ie := range idxExprs {
		var elemSize int
		if at, ok := t.(*minic.ArrayType); ok {
			elemSize = at.Elem.Size()
			t = at.Elem
		} else {
			elemSize = 1
		}
		iv, err := b.expr(ie)
		if err != nil {
			return nil, Value{}, err
		}
		scaled := iv
		if elemSize != 1 {
			if iv.IsConst() {
				scaled = ConstVal(iv.C * int64(elemSize))
			} else {
				tt := b.fn.NewTemp()
				b.emit(&Instr{Op: OpBin, Dst: tt, BinOp: minic.Mul,
					Args: []Value{iv, ConstVal(int64(elemSize))}, Line: ie.Pos()})
				scaled = TempVal(tt)
			}
		}
		if i == 0 {
			flat = scaled
		} else {
			flat = b.addInto(flat, scaled, ie.Pos())
		}
	}
	return base, flat, nil
}

// expr lowers an expression and returns the resulting value.
func (b *builder) expr(e minic.Expr) (Value, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		return ConstVal(x.Value), nil
	case *minic.VarRef:
		if v := b.lookupVar(x.Name); v != nil {
			if minic.IsArray(v.Type) {
				// Array decays to its address.
				t := b.fn.NewTemp()
				b.emit(&Instr{Op: OpAddrSlot, Dst: t, Slot: v.Slot, Args: []Value{ConstVal(0)}, Line: x.Line})
				v.AddrTaken = true
				return TempVal(t), nil
			}
			t := b.fn.NewTemp()
			b.emit(&Instr{Op: OpLoadSlot, Dst: t, Slot: v.Slot, Args: []Value{ConstVal(0)},
				Width: intWidth(v.Type), Line: x.Line})
			return TempVal(t), nil
		}
		g := b.mod.Global(x.Name)
		if g == nil {
			return Value{}, fmt.Errorf("ir: line %d: unknown variable %q", x.Line, x.Name)
		}
		if minic.IsArray(g.Type) {
			t := b.fn.NewTemp()
			b.emit(&Instr{Op: OpAddrG, Dst: t, G: g, Args: []Value{ConstVal(0)}, Line: x.Line})
			return TempVal(t), nil
		}
		t := b.fn.NewTemp()
		b.emit(&Instr{Op: OpLoadG, Dst: t, G: g, Args: []Value{ConstVal(0)},
			Width: intWidth(g.Type), Line: x.Line})
		return TempVal(t), nil
	case *minic.IndexExpr:
		base, idx, err := b.indexChain(x)
		if err != nil {
			return Value{}, err
		}
		t := b.fn.NewTemp()
		switch tgt := base.(type) {
		case *Global:
			b.emit(&Instr{Op: OpLoadG, Dst: t, G: tgt, Args: []Value{idx},
				Width: intWidth(x.ExprType()), Line: x.Line})
		case *Var:
			b.emit(&Instr{Op: OpLoadSlot, Dst: t, Slot: tgt.Slot, Args: []Value{idx},
				Width: intWidth(x.ExprType()), Line: x.Line})
		case Value:
			addr := b.addInto(tgt, idx, x.Line)
			b.emit(&Instr{Op: OpLoadPtr, Dst: t, Args: []Value{addr},
				Width: intWidth(x.ExprType()), Line: x.Line})
		}
		return TempVal(t), nil
	case *minic.UnaryExpr:
		return b.unary(x)
	case *minic.BinaryExpr:
		return b.binary(x)
	case *minic.AssignExpr:
		return b.assignVal(x.LHS, x.RHS, x.Line)
	case *minic.CallExpr:
		return b.call(x)
	}
	return Value{}, fmt.Errorf("ir: unknown expression %T", e)
}

func (b *builder) unary(x *minic.UnaryExpr) (Value, error) {
	switch x.Op {
	case minic.Addr:
		switch tgt := x.X.(type) {
		case *minic.VarRef:
			if v := b.lookupVar(tgt.Name); v != nil {
				v.AddrTaken = true
				t := b.fn.NewTemp()
				b.emit(&Instr{Op: OpAddrSlot, Dst: t, Slot: v.Slot, Args: []Value{ConstVal(0)}, Line: x.Line})
				return TempVal(t), nil
			}
			g := b.mod.Global(tgt.Name)
			if g == nil {
				return Value{}, fmt.Errorf("ir: line %d: unknown variable %q", x.Line, tgt.Name)
			}
			t := b.fn.NewTemp()
			b.emit(&Instr{Op: OpAddrG, Dst: t, G: g, Args: []Value{ConstVal(0)}, Line: x.Line})
			return TempVal(t), nil
		case *minic.IndexExpr:
			base, idx, err := b.indexChain(tgt)
			if err != nil {
				return Value{}, err
			}
			t := b.fn.NewTemp()
			switch bb := base.(type) {
			case *Global:
				b.emit(&Instr{Op: OpAddrG, Dst: t, G: bb, Args: []Value{idx}, Line: x.Line})
			case *Var:
				bb.AddrTaken = true
				b.emit(&Instr{Op: OpAddrSlot, Dst: t, Slot: bb.Slot, Args: []Value{idx}, Line: x.Line})
			case Value:
				return b.addInto(bb, idx, x.Line), nil
			}
			return TempVal(t), nil
		case *minic.UnaryExpr:
			if tgt.Op == minic.Deref {
				return b.expr(tgt.X) // &*p == p
			}
		}
		return Value{}, fmt.Errorf("ir: line %d: cannot take address", x.Line)
	case minic.Deref:
		p, err := b.expr(x.X)
		if err != nil {
			return Value{}, err
		}
		t := b.fn.NewTemp()
		b.emit(&Instr{Op: OpLoadPtr, Dst: t, Args: []Value{p},
			Width: intWidth(x.ExprType()), Line: x.Line})
		return TempVal(t), nil
	default:
		v, err := b.expr(x.X)
		if err != nil {
			return Value{}, err
		}
		t := b.fn.NewTemp()
		b.emit(&Instr{Op: OpUn, Dst: t, UnOp: x.Op, Args: []Value{v},
			Width: intWidth(x.ExprType()), Line: x.Line})
		return TempVal(t), nil
	}
}

func (b *builder) binary(x *minic.BinaryExpr) (Value, error) {
	if x.Op.IsLogical() {
		return b.logical(x)
	}
	l, err := b.expr(x.X)
	if err != nil {
		return Value{}, err
	}
	r, err := b.expr(x.Y)
	if err != nil {
		return Value{}, err
	}
	w := intWidth(x.ExprType())
	if x.Op.IsComparison() {
		// Comparisons use the left operand's signedness.
		w = intWidth(x.X.ExprType())
	}
	t := b.fn.NewTemp()
	b.emit(&Instr{Op: OpBin, Dst: t, BinOp: x.Op, Args: []Value{l, r}, Width: w, Line: x.Line})
	return TempVal(t), nil
}

// logical lowers short-circuit && and || into control flow writing a result
// register.
func (b *builder) logical(x *minic.BinaryExpr) (Value, error) {
	res := b.fn.NewTemp()
	l, err := b.expr(x.X)
	if err != nil {
		return Value{}, err
	}
	lBool := b.fn.NewTemp()
	b.emit(&Instr{Op: OpBin, Dst: lBool, BinOp: minic.Ne, Args: []Value{l, ConstVal(0)}, Line: x.Line})
	evalRHS := b.fn.NewBlock()
	short := b.fn.NewBlock()
	done := b.fn.NewBlock()
	if x.Op == minic.LogAnd {
		b.emit(&Instr{Op: OpCondBr, Dst: -1, Args: []Value{TempVal(lBool)},
			Tgts: []*Block{evalRHS, short}, Line: x.Line})
	} else {
		b.emit(&Instr{Op: OpCondBr, Dst: -1, Args: []Value{TempVal(lBool)},
			Tgts: []*Block{short, evalRHS}, Line: x.Line})
	}
	// Short-circuit result.
	b.cur = short
	var sc int64
	if x.Op == minic.LogOr {
		sc = 1
	}
	b.emit(&Instr{Op: OpCopy, Dst: res, Args: []Value{ConstVal(sc)}, Line: x.Line})
	b.br(done, x.Line)
	// Full evaluation.
	b.cur = evalRHS
	r, err := b.expr(x.Y)
	if err != nil {
		return Value{}, err
	}
	b.emit(&Instr{Op: OpBin, Dst: res, BinOp: minic.Ne, Args: []Value{r, ConstVal(0)}, Line: x.Line})
	b.br(done, x.Line)
	b.cur = done
	return TempVal(res), nil
}

func (b *builder) call(x *minic.CallExpr) (Value, error) {
	callee := b.prog.Func(x.Name)
	if callee == nil {
		return Value{}, fmt.Errorf("ir: line %d: unknown function %q", x.Line, x.Name)
	}
	in := &Instr{Op: OpCall, Dst: -1, Call: x.Name, Line: x.Line}
	for _, a := range x.Args {
		v, err := b.expr(a)
		if err != nil {
			return Value{}, err
		}
		in.Args = append(in.Args, v)
	}
	if !minic.Equal(callee.Ret, minic.Void) {
		in.Dst = b.fn.NewTemp()
	}
	b.emit(in)
	if in.Dst >= 0 {
		return TempVal(in.Dst), nil
	}
	return ConstVal(0), nil
}
