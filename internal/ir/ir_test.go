package ir

import (
	"testing"

	"repro/internal/minic"
)

func lower(t *testing.T, src string) *Module {
	t.Helper()
	prog := minic.MustParse(src)
	m, err := Lower(prog)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v\n%s", err, m)
	}
	return m
}

func run(t *testing.T, src string) *Observation {
	t.Helper()
	m := lower(t, src)
	obs, err := Interp(m, 0)
	if err != nil {
		t.Fatalf("Interp: %v\n%s", err, m)
	}
	return obs
}

func TestInterpArithmetic(t *testing.T) {
	obs := run(t, `
int main(void) {
  int a = 6;
  int b = 7;
  return a * b;
}`)
	if obs.Ret != 42 {
		t.Errorf("ret = %d, want 42", obs.Ret)
	}
}

func TestInterpLoopsAndArrays(t *testing.T) {
	obs := run(t, `
int b[10][2];
int sum;
int main(void) {
  int i;
  int j;
  for (i = 0; i < 10; i = i + 1) {
    for (j = 0; j < 2; j = j + 1) {
      b[i][j] = i * 2 + j;
    }
  }
  sum = 0;
  for (i = 0; i < 10; i = i + 1) {
    for (j = 0; j < 2; j = j + 1) {
      sum = sum + b[i][j];
    }
  }
  return sum;
}`)
	if obs.Ret != 190 {
		t.Errorf("ret = %d, want 190", obs.Ret)
	}
	if obs.Globals["b"][3] != 3 { // b[1][1] = 1*2+1
		t.Errorf("b[1][1] = %d, want 3", obs.Globals["b"][3])
	}
}

func TestInterpOpaqueCallEvents(t *testing.T) {
	obs := run(t, `
extern void opaque(int x, int y);
int main(void) {
  int v = 5;
  opaque(v, v * 2);
  return 0;
}`)
	if len(obs.Events) != 1 {
		t.Fatalf("events = %v, want one call", obs.Events)
	}
	e := obs.Events[0]
	if e.Kind != "call" || e.Name != "opaque" || e.Args[0] != 5 || e.Args[1] != 10 {
		t.Errorf("event = %v", e)
	}
}

func TestInterpVolatileEvents(t *testing.T) {
	obs := run(t, `
volatile int c;
int main(void) {
  int i;
  for (i = 0; i < 3; i = i + 1) {
    c = i;
  }
  return c;
}`)
	var stores []int64
	for _, e := range obs.Events {
		if e.Kind == "vstore" {
			stores = append(stores, e.Args[0])
		}
	}
	if len(stores) != 3 || stores[0] != 0 || stores[2] != 2 {
		t.Errorf("volatile stores = %v, want [0 1 2]", stores)
	}
	if obs.Ret != 2 {
		t.Errorf("ret = %d, want 2", obs.Ret)
	}
}

func TestInterpPointers(t *testing.T) {
	obs := run(t, `
int b = 0;
int main(void) {
  int* v1 = &b;
  int** v2 = &v1;
  *v2 = v1;
  **v2 = 7;
  return b;
}`)
	if obs.Ret != 7 {
		t.Errorf("ret = %d, want 7", obs.Ret)
	}
}

func TestInterpShortCircuit(t *testing.T) {
	obs := run(t, `
int calls;
int side(void) {
  calls = calls + 1;
  return 1;
}
int main(void) {
  int a = 0;
  int r = a && side();
  int s = 1 || side();
  return r * 10 + s;
}`)
	if obs.Ret != 1 {
		t.Errorf("ret = %d, want 1", obs.Ret)
	}
	if obs.Globals["calls"][0] != 0 {
		t.Errorf("side() called %d times, want 0 (short-circuit)", obs.Globals["calls"][0])
	}
}

func TestInterpGotoLoop(t *testing.T) {
	obs := run(t, `
int a;
int main(void) {
  int n = 0;
f: if (n < 5) {
    n = n + 1;
    goto f;
  }
  return n;
}`)
	if obs.Ret != 5 {
		t.Errorf("ret = %d, want 5", obs.Ret)
	}
}

func TestInterpCallsAndRecursion(t *testing.T) {
	obs := run(t, `
int fact(int n) {
  if (n <= 1) {
    return 1;
  }
  return n * fact(n - 1);
}
int main(void) {
  return fact(6);
}`)
	if obs.Ret != 720 {
		t.Errorf("ret = %d, want 720", obs.Ret)
	}
}

func TestInterpDivisionByZeroDefined(t *testing.T) {
	obs := run(t, `
int main(void) {
  int a = 7;
  int z = 0;
  return a / z + a % z;
}`)
	if obs.Ret != 0 {
		t.Errorf("ret = %d, want 0 (defined division by zero)", obs.Ret)
	}
}

func TestInterpWidthTruncation(t *testing.T) {
	obs := run(t, `
int main(void) {
  char c = 200;
  short s = 70000;
  return c + s;
}`)
	// char 200 -> -56; short 70000 -> 4464; sum = 4408
	if obs.Ret != 4408 {
		t.Errorf("ret = %d, want 4408", obs.Ret)
	}
}

func TestInterpUnsignedCompare(t *testing.T) {
	obs := run(t, `
int main(void) {
  unsigned int u = 0;
  u = u - 1;
  if (u > 100) {
    return 1;
  }
  return 0;
}`)
	if obs.Ret != 1 {
		t.Errorf("unsigned wraparound compare: ret = %d, want 1", obs.Ret)
	}
}

func TestInterpStepLimit(t *testing.T) {
	prog := minic.MustParse(`
int main(void) {
  while (1) { }
  return 0;
}`)
	m, err := Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Interp(m, 1000); err != ErrStepLimit {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestInterpLocalArrays(t *testing.T) {
	obs := run(t, `
int main(void) {
  int arr[4];
  int i;
  for (i = 0; i < 4; i = i + 1) {
    arr[i] = i * i;
  }
  return arr[3];
}`)
	if obs.Ret != 9 {
		t.Errorf("ret = %d, want 9", obs.Ret)
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	m := lower(t, "int main(void) { return 3; }")
	f := m.Func("main")
	// Inject a mid-block terminator.
	bad := &Instr{Op: OpRet, Dst: -1, Args: []Value{ConstVal(0)}}
	f.Entry().Instrs = append([]*Instr{bad}, f.Entry().Instrs...)
	if err := Verify(m); err == nil {
		t.Error("verifier accepted mid-block terminator")
	}
}

func TestModuleCloneIndependent(t *testing.T) {
	m := lower(t, `
int g;
extern void opaque(int x);
int main(void) {
  int v = 3;
  g = v;
  opaque(v);
  return g;
}`)
	cp := m.Clone()
	if err := Verify(cp); err != nil {
		t.Fatalf("clone fails verify: %v", err)
	}
	obs1, err := Interp(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	obs2, err := Interp(cp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !obs1.Equal(obs2) {
		t.Error("clone behaves differently")
	}
	// Mutating the clone must not affect the original.
	cp.Func("main").Blocks = nil
	if len(m.Func("main").Blocks) == 0 {
		t.Error("clone shares blocks")
	}
}

func TestObservationEqual(t *testing.T) {
	a := &Observation{Ret: 1, Events: []Event{{Kind: "call", Name: "f", Args: []int64{1}}},
		Globals: map[string][]int64{"g": {1, 2}}}
	b := &Observation{Ret: 1, Events: []Event{{Kind: "call", Name: "f", Args: []int64{1}}},
		Globals: map[string][]int64{"g": {1, 2}}}
	if !a.Equal(b) {
		t.Error("equal observations reported unequal")
	}
	b.Events[0].Args[0] = 2
	if a.Equal(b) {
		t.Error("different call args reported equal")
	}
	b.Events[0].Args[0] = 1
	b.Globals["g"][1] = 3
	if a.Equal(b) {
		t.Error("different memory reported equal")
	}
}

func TestDbgValPresenceAtO0(t *testing.T) {
	m := lower(t, `
int main(void) {
  int x = 1;
  int y = 2;
  return x + y;
}`)
	f := m.Func("main")
	count := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpDbgVal {
				if in.Args[0].Kind != SlotRef {
					t.Errorf("O0 dbgval should be slot-based, got %v", in.Args[0])
				}
				count++
			}
		}
	}
	if count != 2 {
		t.Errorf("dbgval count = %d, want 2", count)
	}
}
