package ir

import (
	"fmt"

	"repro/internal/minic"
)

// Interpreter executes IR modules directly. It exists for differential
// testing: the observable behaviour of a module (opaque-call arguments,
// volatile global accesses, final global memory, main's return value) must
// be identical before and after any optimization pipeline. The VM executing
// generated machine code must agree too.

// Layout constants shared with the code generator and VM.
const (
	// GlobalBase is the address of the first global (0 is the null page).
	GlobalBase = 16
	// StackBase is where the first stack frame is allocated.
	StackBase = 1 << 16
	// MemWords is the total simulated memory size in words.
	MemWords = 1<<16 + 1<<14
)

// Event is one externally observable action.
type Event struct {
	Kind string  // "call", "vstore", "vload"
	Name string  // callee or volatile global name
	Args []int64 // call arguments or the stored/loaded value
}

func (e Event) String() string { return fmt.Sprintf("%s %s %v", e.Kind, e.Name, e.Args) }

// Observation is the complete observable behaviour of one execution.
type Observation struct {
	Events  []Event
	Ret     int64
	Globals map[string][]int64
	Steps   int
}

// ErrStepLimit is returned when execution exceeds the step budget.
var ErrStepLimit = fmt.Errorf("ir: interpreter step limit exceeded")

// Interp runs the module's main function and collects its observable
// behaviour. maxSteps bounds execution (0 means a generous default).
func Interp(m *Module, maxSteps int) (*Observation, error) {
	if maxSteps == 0 {
		maxSteps = 2_000_000
	}
	ip := &interp{
		m:     m,
		mem:   make([]int64, MemWords),
		gbase: map[*Global]int64{},
		limit: maxSteps,
		sp:    StackBase,
		obs:   &Observation{Globals: map[string][]int64{}},
	}
	addr := int64(GlobalBase)
	for _, g := range m.Globals {
		ip.gbase[g] = addr
		copy(ip.mem[addr:], g.Init)
		addr += int64(g.Size)
	}
	mainFn := m.Func("main")
	if mainFn == nil || mainFn.Opaque {
		return nil, fmt.Errorf("ir: no main function")
	}
	ret, err := ip.callFunc(mainFn, nil)
	if err != nil {
		return nil, err
	}
	ip.obs.Ret = ret
	ip.obs.Steps = ip.steps
	for _, g := range m.Globals {
		base := ip.gbase[g]
		ip.obs.Globals[g.Name] = append([]int64(nil), ip.mem[base:base+int64(g.Size)]...)
	}
	return ip.obs, nil
}

type interp struct {
	m     *Module
	mem   []int64
	gbase map[*Global]int64
	sp    int64
	steps int
	limit int
	obs   *Observation
}

type frame struct {
	fn      *Func
	base    int64 // slot area base address
	temps   []int64
	slotOff []int64
}

func (ip *interp) callFunc(f *Func, args []int64) (int64, error) {
	if f.Opaque {
		ip.obs.Events = append(ip.obs.Events, Event{Kind: "call", Name: f.Name, Args: args})
		return 0, nil
	}
	fr := &frame{fn: f, base: ip.sp, temps: make([]int64, f.NTemp)}
	// Lay out slots contiguously.
	off := int64(0)
	fr.slotOff = make([]int64, f.NSlot)
	for i, size := range f.Slots {
		fr.slotOff[i] = off
		off += int64(size)
	}
	if fr.base+off >= MemWords {
		return 0, fmt.Errorf("ir: stack overflow in %s", f.Name)
	}
	ip.sp = fr.base + off
	defer func() { ip.sp = fr.base }()
	// Zero the frame and bind parameters (params occupy their slots).
	for i := fr.base; i < fr.base+off; i++ {
		ip.mem[i] = 0
	}
	for i, p := range f.Params {
		if i < len(args) {
			v := args[i]
			if it, ok := p.Type.(*minic.IntType); ok {
				v = it.Truncate(v)
			}
			ip.mem[fr.base+fr.slotOff[p.Slot]] = v
		}
	}

	block := f.Entry()
	idx := 0
	for {
		ip.steps++
		if ip.steps > ip.limit {
			return 0, ErrStepLimit
		}
		if idx >= len(block.Instrs) {
			return 0, fmt.Errorf("ir: fell off block b%d in %s", block.ID, f.Name)
		}
		in := block.Instrs[idx]
		idx++
		switch in.Op {
		case OpDbgVal:
			// Debug intrinsics have no run-time effect.
		case OpCopy:
			v := ip.val(fr, in.Args[0])
			if in.Width != nil {
				v = in.Width.Truncate(v)
			}
			fr.temps[in.Dst] = v
		case OpUn:
			fr.temps[in.Dst] = EvalUn(in.UnOp, ip.val(fr, in.Args[0]), in.Width)
		case OpBin:
			fr.temps[in.Dst] = EvalBin(in.BinOp, ip.val(fr, in.Args[0]), ip.val(fr, in.Args[1]), in.Width)
		case OpLoadG:
			a := ip.gbase[in.G] + ip.val(fr, in.Args[0])
			if err := ip.checkAddr(a); err != nil {
				return 0, err
			}
			v := ip.mem[a]
			if in.G.Volatile {
				ip.obs.Events = append(ip.obs.Events, Event{Kind: "vload", Name: in.G.Name, Args: []int64{v}})
			}
			fr.temps[in.Dst] = v
		case OpStoreG:
			a := ip.gbase[in.G] + ip.val(fr, in.Args[0])
			if err := ip.checkAddr(a); err != nil {
				return 0, err
			}
			v := ip.val(fr, in.Args[1])
			if in.Width != nil {
				v = in.Width.Truncate(v)
			}
			ip.mem[a] = v
			if in.G.Volatile {
				ip.obs.Events = append(ip.obs.Events, Event{Kind: "vstore", Name: in.G.Name, Args: []int64{v}})
			}
		case OpLoadSlot:
			a := fr.base + fr.slotOff[in.Slot] + ip.val(fr, in.Args[0])
			if err := ip.checkAddr(a); err != nil {
				return 0, err
			}
			fr.temps[in.Dst] = ip.mem[a]
		case OpStoreSlot:
			a := fr.base + fr.slotOff[in.Slot] + ip.val(fr, in.Args[0])
			if err := ip.checkAddr(a); err != nil {
				return 0, err
			}
			v := ip.val(fr, in.Args[1])
			if in.Width != nil {
				v = in.Width.Truncate(v)
			}
			ip.mem[a] = v
		case OpAddrG:
			fr.temps[in.Dst] = ip.gbase[in.G] + ip.val(fr, in.Args[0])
		case OpAddrSlot:
			fr.temps[in.Dst] = fr.base + fr.slotOff[in.Slot] + ip.val(fr, in.Args[0])
		case OpLoadPtr:
			a := ip.val(fr, in.Args[0])
			if err := ip.checkAddr(a); err != nil {
				return 0, err
			}
			fr.temps[in.Dst] = ip.mem[a]
			ip.noteVolatileAddr(a, "vload", ip.mem[a])
		case OpStorePtr:
			a := ip.val(fr, in.Args[0])
			if err := ip.checkAddr(a); err != nil {
				return 0, err
			}
			v := ip.val(fr, in.Args[1])
			if in.Width != nil {
				v = in.Width.Truncate(v)
			}
			ip.mem[a] = v
			ip.noteVolatileAddr(a, "vstore", v)
		case OpCall:
			callee := ip.m.Func(in.Call)
			if callee == nil {
				return 0, fmt.Errorf("ir: call to unknown function %q", in.Call)
			}
			cargs := make([]int64, len(in.Args))
			for i, a := range in.Args {
				cargs[i] = ip.val(fr, a)
			}
			rv, err := ip.callFunc(callee, cargs)
			if err != nil {
				return 0, err
			}
			if in.Dst >= 0 {
				fr.temps[in.Dst] = rv
			}
		case OpBr:
			block = in.Tgts[0]
			idx = 0
		case OpCondBr:
			if ip.val(fr, in.Args[0]) != 0 {
				block = in.Tgts[0]
			} else {
				block = in.Tgts[1]
			}
			idx = 0
		case OpRet:
			if len(in.Args) > 0 {
				return ip.val(fr, in.Args[0]), nil
			}
			return 0, nil
		default:
			return 0, fmt.Errorf("ir: interp: unknown op %v", in.Op)
		}
	}
}

// noteVolatileAddr records a volatile event when a points into a volatile
// global's storage.
func (ip *interp) noteVolatileAddr(a int64, kind string, v int64) {
	for _, g := range ip.m.Globals {
		if !g.Volatile {
			continue
		}
		base := ip.gbase[g]
		if a >= base && a < base+int64(g.Size) {
			ip.obs.Events = append(ip.obs.Events, Event{Kind: kind, Name: g.Name, Args: []int64{v}})
			return
		}
	}
}

func (ip *interp) checkAddr(a int64) error {
	if a < 0 || a >= MemWords {
		return fmt.Errorf("ir: memory access out of range: %d", a)
	}
	return nil
}

func (ip *interp) val(fr *frame, v Value) int64 {
	switch v.Kind {
	case Const:
		return v.C
	case Temp:
		return fr.temps[v.Temp]
	}
	return 0
}

// Equal reports whether two observations are behaviourally identical.
func (o *Observation) Equal(other *Observation) bool {
	if o.Ret != other.Ret || len(o.Events) != len(other.Events) {
		return false
	}
	for i, e := range o.Events {
		oe := other.Events[i]
		if e.Kind != oe.Kind || e.Name != oe.Name || len(e.Args) != len(oe.Args) {
			return false
		}
		for j := range e.Args {
			if e.Args[j] != oe.Args[j] {
				return false
			}
		}
	}
	for name, vals := range o.Globals {
		ovals, ok := other.Globals[name]
		if !ok || len(vals) != len(ovals) {
			return false
		}
		for i := range vals {
			if vals[i] != ovals[i] {
				return false
			}
		}
	}
	return true
}
