// Package ir defines the three-address intermediate representation of the
// simulated optimizing compiler, including the debug-metadata intrinsics
// (DbgVal) that the optimizer must maintain and that the paper's injected
// implementation defects mishandle.
//
// The IR is register-based but not SSA: each source variable promoted by
// mem2reg maps to one virtual register that may be redefined. Address-taken
// locals and local arrays live in stack slots; globals live in module memory.
// Every instruction carries the source line it implements and, when it was
// produced by inlining, the inline site chain.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/minic"
)

// Op enumerates IR operations.
type Op int

// IR operations.
const (
	OpCopy      Op = iota // Dst = Args[0]
	OpUn                  // Dst = UnOp Args[0]
	OpBin                 // Dst = Args[0] BinOp Args[1]
	OpLoadG               // Dst = Global[Args[0]]
	OpStoreG              // Global[Args[0]] = Args[1]
	OpLoadSlot            // Dst = Slot[Args[0]]
	OpStoreSlot           // Slot[Args[0]] = Args[1]
	OpAddrG               // Dst = &Global + Args[0]
	OpAddrSlot            // Dst = &Slot + Args[0]
	OpLoadPtr             // Dst = *Args[0]
	OpStorePtr            // *Args[0] = Args[1]
	OpCall                // Dst = Callee(Args...); Dst < 0 for void
	OpBr                  // goto Targets[0]
	OpCondBr              // if Args[0] != 0 goto Targets[0] else Targets[1]
	OpRet                 // return Args[0] if len(Args) > 0
	OpDbgVal              // debug intrinsic: Var's value is Args[0] from here
)

var opNames = [...]string{
	"copy", "un", "bin", "loadg", "storeg", "loadslot", "storeslot",
	"addrg", "addrslot", "loadptr", "storeptr", "call", "br", "condbr",
	"ret", "dbgval",
}

func (o Op) String() string { return opNames[o] }

// IsTerminator reports whether o ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// HasDst reports whether the operation defines a destination register.
func (o Op) HasDst() bool {
	switch o {
	case OpCopy, OpUn, OpBin, OpLoadG, OpLoadSlot, OpAddrG, OpAddrSlot, OpLoadPtr:
		return true
	}
	return false
}

// ValueKind tags the variants of Value.
type ValueKind int

// Value kinds.
const (
	Const   ValueKind = iota // a constant integer
	Temp                     // a virtual register
	Undef                    // no value (debug intrinsics only)
	SlotRef                  // "lives in stack slot N" (debug intrinsics only)
)

// Value is an operand: a constant, a virtual register, or (for DbgVal only)
// an undefined marker or a slot reference.
type Value struct {
	Kind ValueKind
	Temp int   // register or slot index
	C    int64 // constant payload
}

// ConstVal returns a constant value.
func ConstVal(c int64) Value { return Value{Kind: Const, C: c} }

// TempVal returns a register value.
func TempVal(t int) Value { return Value{Kind: Temp, Temp: t} }

// UndefVal returns the undefined marker.
func UndefVal() Value { return Value{Kind: Undef} }

// SlotVal returns a slot-reference value for debug intrinsics.
func SlotVal(slot int) Value { return Value{Kind: SlotRef, Temp: slot} }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return v.Kind == Const }

// IsTemp reports whether v is a register.
func (v Value) IsTemp() bool { return v.Kind == Temp }

func (v Value) String() string {
	switch v.Kind {
	case Const:
		return fmt.Sprintf("%d", v.C)
	case Temp:
		return fmt.Sprintf("t%d", v.Temp)
	case Undef:
		return "undef"
	case SlotRef:
		return fmt.Sprintf("slot%d", v.Temp)
	}
	return "?"
}

// InlineSite records one level of inlining: the named callee was inlined at
// CallLine of the function identified by Parent (nil parent = the enclosing
// physical function). ID disambiguates multiple inlinings of the same callee.
type InlineSite struct {
	Callee   string
	CallLine int
	ID       int
	Parent   *InlineSite
}

// Root returns the outermost inline site in the chain.
func (s *InlineSite) Root() *InlineSite {
	for s.Parent != nil {
		s = s.Parent
	}
	return s
}

// Var is a source-level variable tracked by debug information.
type Var struct {
	Name      string
	Type      minic.Type
	DeclLine  int
	Slot      int  // stack slot index, or -1 when register-promoted
	AddrTaken bool // the program takes &v somewhere
	IsParam   bool
	Inlined   *InlineSite // non-nil when this var came from an inlined callee
	// SuppressDIE marks variables for which a defective transformation
	// lost all debug metadata in a way that prevents any DIE emission
	// (the paper's "Missing DIE" manifestation).
	SuppressDIE bool
	// InNestedScope records that the variable was declared inside an
	// unnamed brace scope (relevant to one catalogued gcc defect).
	InNestedScope bool
}

func (v *Var) String() string { return v.Name }

// Global is a module-level variable.
type Global struct {
	Name     string
	Type     minic.Type
	Size     int // flattened size in words
	Init     []int64
	Volatile bool
	DeclLine int
}

// Debug-location flags carried on OpDbgVal intrinsics. They model damage
// whose effect materialises during code generation: truncated ranges, wrong
// frame attribution, abstract-origin-only emission.
const (
	// DbgTruncRange asks codegen to end this location's range early (just
	// before the next call instruction), reproducing ranges that fail to
	// cover a call site.
	DbgTruncRange uint8 = 1 << iota
	// DbgWrongFrame makes codegen attribute the location to the wrong
	// (inlined) frame, so the debugger cannot resolve it at the point of
	// interest.
	DbgWrongFrame
	// DbgAbstractOnly makes codegen place the location on the abstract
	// origin DIE only. This is legitimate DWARF; one of the debuggers
	// cannot consume it.
	DbgAbstractOnly
	// DbgEmptyRange makes codegen emit a zero-length range before the real
	// one; one of the debuggers mishandles it and shows a stale value.
	DbgEmptyRange
)

// Instr is one IR instruction.
type Instr struct {
	Op    Op
	Dst   int // destination register, -1 when none
	Args  []Value
	UnOp  minic.UnaryOp  // for OpUn
	BinOp minic.BinOp    // for OpBin
	Width *minic.IntType // arithmetic width; nil means 64-bit
	G     *Global        // for global memory ops
	Slot  int            // for slot memory ops
	Call  string         // callee name for OpCall
	Tgts  []*Block       // branch targets
	V     *Var           // for OpDbgVal
	Flags uint8          // Dbg* flag bits, OpDbgVal only
	Line  int            // source line (0 = artificial)
	At    *InlineSite    // inline site chain, nil at top level
}

// Clone returns a shallow-control copy of the instruction (Args and Tgts
// slices are fresh; referenced blocks/vars/globals are shared).
func (in *Instr) Clone() *Instr {
	cp := *in
	cp.Args = append([]Value(nil), in.Args...)
	cp.Tgts = append([]*Block(nil), in.Tgts...)
	return &cp
}

func (in *Instr) String() string {
	var sb strings.Builder
	if in.Dst >= 0 {
		fmt.Fprintf(&sb, "t%d = ", in.Dst)
	}
	switch in.Op {
	case OpCopy:
		fmt.Fprintf(&sb, "%s", in.Args[0])
	case OpUn:
		fmt.Fprintf(&sb, "%s%s", in.UnOp, in.Args[0])
	case OpBin:
		fmt.Fprintf(&sb, "%s %s %s", in.Args[0], in.BinOp, in.Args[1])
	case OpLoadG:
		fmt.Fprintf(&sb, "%s[%s]", in.G.Name, in.Args[0])
	case OpStoreG:
		fmt.Fprintf(&sb, "%s[%s] = %s", in.G.Name, in.Args[0], in.Args[1])
	case OpLoadSlot:
		fmt.Fprintf(&sb, "slot%d[%s]", in.Slot, in.Args[0])
	case OpStoreSlot:
		fmt.Fprintf(&sb, "slot%d[%s] = %s", in.Slot, in.Args[0], in.Args[1])
	case OpAddrG:
		fmt.Fprintf(&sb, "&%s + %s", in.G.Name, in.Args[0])
	case OpAddrSlot:
		fmt.Fprintf(&sb, "&slot%d + %s", in.Slot, in.Args[0])
	case OpLoadPtr:
		fmt.Fprintf(&sb, "*%s", in.Args[0])
	case OpStorePtr:
		fmt.Fprintf(&sb, "*%s = %s", in.Args[0], in.Args[1])
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		fmt.Fprintf(&sb, "call %s(%s)", in.Call, strings.Join(args, ", "))
	case OpBr:
		fmt.Fprintf(&sb, "br b%d", in.Tgts[0].ID)
	case OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, b%d, b%d", in.Args[0], in.Tgts[0].ID, in.Tgts[1].ID)
	case OpRet:
		if len(in.Args) > 0 {
			fmt.Fprintf(&sb, "ret %s", in.Args[0])
		} else {
			sb.WriteString("ret")
		}
	case OpDbgVal:
		fmt.Fprintf(&sb, "dbgval %s = %s", in.V.Name, in.Args[0])
	}
	if in.Line > 0 {
		fmt.Fprintf(&sb, "  ; line %d", in.Line)
	}
	if in.At != nil {
		fmt.Fprintf(&sb, " (inlined %s@%d)", in.At.Callee, in.At.CallLine)
	}
	return sb.String()
}

// Block is a basic block: a label plus an instruction list ending in a
// terminator.
type Block struct {
	ID     int
	Instrs []*Instr
}

// Term returns the block terminator, or nil if the block is not terminated.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Tgts
}

// Func is an IR function.
type Func struct {
	Name    string
	HasRet  bool
	Params  []*Var
	Vars    []*Var // all source variables, including params and inlined vars
	Blocks  []*Block
	NTemp   int
	NSlot   int
	Slots   []int // size of each slot in words
	Line    int
	Opaque  bool
	Pure    bool // side-effect-free; set by the ipa-pure-const analysis
	nextBID int
	nextIID int // inline site id counter
}

// NewTemp allocates a fresh virtual register.
func (f *Func) NewTemp() int {
	t := f.NTemp
	f.NTemp++
	return t
}

// NewSlot allocates a stack slot of the given size and returns its index.
func (f *Func) NewSlot(size int) int {
	s := f.NSlot
	f.NSlot++
	f.Slots = append(f.Slots, size)
	return s
}

// NewBlock appends a fresh empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBID}
	f.nextBID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewInlineID returns a fresh inline-site identifier.
func (f *Func) NewInlineID() int {
	f.nextIID++
	return f.nextIID
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// VarByName returns the non-inlined variable with the given name, or nil.
func (f *Func) VarByName(name string) *Var {
	for _, v := range f.Vars {
		if v.Name == name && v.Inlined == nil {
			return v
		}
	}
	return nil
}

// Preds computes the predecessor map of the function's CFG.
func (f *Func) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// RemoveBlock deletes b from the block list (callers must fix branches).
func (f *Func) RemoveBlock(b *Block) {
	for i, bb := range f.Blocks {
		if bb == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// Reachable returns the set of blocks reachable from the entry.
func (f *Func) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var stack []*Block
	if len(f.Blocks) > 0 {
		stack = append(stack, f.Entry())
		seen[f.Entry()] = true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// String renders the function as readable IR text.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	return sb.String()
}

// Module is a compiled translation unit before code generation.
type Module struct {
	Globals []*Global
	Funcs   []*Func
	NLines  int // number of source lines, for metric denominators
}

// Func returns the function named name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global named name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s size=%d volatile=%v\n", g.Name, g.Size, g.Volatile)
	}
	for _, f := range m.Funcs {
		if f.Opaque {
			fmt.Fprintf(&sb, "extern func %s\n", f.Name)
			continue
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}

// Clone deep-copies the module so that destructive pass pipelines can run on
// independent instances (the triage machinery recompiles many variants).
func (m *Module) Clone() *Module {
	out := &Module{NLines: m.NLines}
	gmap := map[*Global]*Global{}
	for _, g := range m.Globals {
		ng := &Global{Name: g.Name, Type: g.Type, Size: g.Size,
			Init: append([]int64(nil), g.Init...), Volatile: g.Volatile, DeclLine: g.DeclLine}
		gmap[g] = ng
		out.Globals = append(out.Globals, ng)
	}
	for _, f := range m.Funcs {
		out.Funcs = append(out.Funcs, cloneFunc(f, func(g *Global) *Global { return gmap[g] }, 0))
	}
	return out
}

// CloneFuncInto deep-copies f for assembly into module m: global operands
// are re-resolved by name against m's globals, and every positive source
// line is shifted by delta (line 0 marks compiler-artificial positions and
// is preserved). This is how the incremental frontend rebases a cached
// function lowering onto a new position in a new program.
func CloneFuncInto(f *Func, m *Module, delta int) *Func {
	memo := map[*Global]*Global{}
	return cloneFunc(f, func(g *Global) *Global {
		ng, ok := memo[g]
		if !ok {
			ng = m.Global(g.Name)
			memo[g] = ng
		}
		return ng
	}, delta)
}

// CloneFuncShift deep-copies f with every positive source line shifted by
// delta, keeping global operands as they are. It is CloneFuncInto for the
// assembly case where the destination module shares the very globals f was
// lowered against and only the function's position moved.
func CloneFuncShift(f *Func, delta int) *Func {
	return cloneFunc(f, nil, delta)
}

func cloneFunc(f *Func, remapG func(*Global) *Global, lineDelta int) *Func {
	shift := func(line int) int {
		if line > 0 {
			return line + lineDelta
		}
		return line
	}
	nf := &Func{Name: f.Name, HasRet: f.HasRet, NTemp: f.NTemp, NSlot: f.NSlot,
		Slots: append([]int(nil), f.Slots...), Line: shift(f.Line), Opaque: f.Opaque,
		Pure: f.Pure, nextBID: f.nextBID, nextIID: f.nextIID}
	var smap map[*InlineSite]*InlineSite
	var cloneSite func(s *InlineSite) *InlineSite
	cloneSite = func(s *InlineSite) *InlineSite {
		if s == nil {
			return nil
		}
		if ns, ok := smap[s]; ok {
			return ns
		}
		if smap == nil {
			smap = map[*InlineSite]*InlineSite{}
		}
		ns := &InlineSite{Callee: s.Callee, CallLine: shift(s.CallLine), ID: s.ID, Parent: cloneSite(s.Parent)}
		smap[s] = ns
		return ns
	}
	// The copies are arena-allocated — one backing array each for vars,
	// blocks, instructions and operands — instead of one allocation per
	// node: this clone is the incremental frontend's rebase path and
	// Optimize's per-configuration module copy.
	var vmap map[*Var]*Var
	if len(f.Vars) > 0 {
		vmap = make(map[*Var]*Var, len(f.Vars))
		arena := make([]Var, len(f.Vars))
		nf.Vars = make([]*Var, len(f.Vars))
		for i, v := range f.Vars {
			nv := &arena[i]
			*nv = Var{Name: v.Name, Type: v.Type, DeclLine: shift(v.DeclLine), Slot: v.Slot,
				AddrTaken: v.AddrTaken, IsParam: v.IsParam, Inlined: cloneSite(v.Inlined),
				SuppressDIE: v.SuppressDIE, InNestedScope: v.InNestedScope}
			vmap[v] = nv
			nf.Vars[i] = nv
		}
	}
	if len(f.Params) > 0 {
		nf.Params = make([]*Var, len(f.Params))
		for i, p := range f.Params {
			nf.Params[i] = vmap[p]
		}
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	if len(f.Blocks) > 0 {
		arena := make([]Block, len(f.Blocks))
		nf.Blocks = make([]*Block, len(f.Blocks))
		for i, b := range f.Blocks {
			nb := &arena[i]
			nb.ID = b.ID
			bmap[b] = nb
			nf.Blocks[i] = nb
		}
	}
	nInstr, nargs, ntgts := 0, 0, 0
	for _, b := range f.Blocks {
		nInstr += len(b.Instrs)
		for _, in := range b.Instrs {
			nargs += len(in.Args)
			ntgts += len(in.Tgts)
		}
	}
	if nInstr > 0 {
		// One arena per function, shared by every block, rather than one
		// per block: a clone is a handful of allocations regardless of the
		// block count.
		arena := make([]Instr, nInstr)
		ptrs := make([]*Instr, nInstr)
		argArena := make([]Value, 0, nargs)
		tgtArena := make([]*Block, 0, ntgts)
		k := 0
		for bi, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				continue
			}
			nb := nf.Blocks[bi]
			blockStart := k
			for _, in := range b.Instrs {
				ni := &arena[k]
				*ni = *in
				// Full-capacity sub-slices: a later append on one
				// instruction's operands (or one block's instruction list)
				// reallocates instead of clobbering its neighbour's.
				if len(in.Args) > 0 {
					start := len(argArena)
					argArena = append(argArena, in.Args...)
					ni.Args = argArena[start:len(argArena):len(argArena)]
				} else {
					ni.Args = nil
				}
				if len(in.Tgts) > 0 {
					start := len(tgtArena)
					for _, t := range in.Tgts {
						tgtArena = append(tgtArena, bmap[t])
					}
					ni.Tgts = tgtArena[start:len(tgtArena):len(tgtArena)]
				} else {
					ni.Tgts = nil
				}
				if ni.G != nil && remapG != nil {
					ni.G = remapG(ni.G)
				}
				if ni.V != nil {
					ni.V = vmap[ni.V]
				}
				ni.At = cloneSite(in.At)
				ni.Line = shift(ni.Line)
				ptrs[k] = ni
				k++
			}
			nb.Instrs = ptrs[blockStart:k:k]
		}
	}
	return nf
}
