package ir

import "fmt"

// Verify checks structural invariants of a module: every block ends in
// exactly one terminator (and only at the end), branch targets belong to the
// function, register and slot indices are in range, and debug intrinsics
// reference variables of the function. The optimizer runs the verifier after
// every pass in tests.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if f.Opaque {
			continue
		}
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	inFunc := map[*Block]bool{}
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	vars := map[*Var]bool{}
	for _, v := range f.Vars {
		vars[v] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("b%d: empty block", b.ID)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("b%d: does not end in a terminator", b.ID)
				}
				return fmt.Errorf("b%d: terminator %v in mid-block position %d", b.ID, in.Op, i)
			}
			if in.Op.HasDst() {
				if in.Dst < 0 || in.Dst >= f.NTemp {
					return fmt.Errorf("b%d[%d]: bad dst t%d", b.ID, i, in.Dst)
				}
			}
			for _, a := range in.Args {
				if a.Kind == Temp && (a.Temp < 0 || a.Temp >= f.NTemp) {
					return fmt.Errorf("b%d[%d]: bad temp operand t%d", b.ID, i, a.Temp)
				}
				if a.Kind == SlotRef && in.Op != OpDbgVal {
					return fmt.Errorf("b%d[%d]: slot-ref operand outside dbgval", b.ID, i)
				}
				if a.Kind == Undef && in.Op != OpDbgVal {
					return fmt.Errorf("b%d[%d]: undef operand outside dbgval", b.ID, i)
				}
			}
			switch in.Op {
			case OpLoadSlot, OpStoreSlot, OpAddrSlot:
				if in.Slot < 0 || in.Slot >= f.NSlot {
					return fmt.Errorf("b%d[%d]: bad slot %d", b.ID, i, in.Slot)
				}
			case OpLoadG, OpStoreG, OpAddrG:
				if in.G == nil {
					return fmt.Errorf("b%d[%d]: nil global", b.ID, i)
				}
			case OpBr:
				if len(in.Tgts) != 1 || !inFunc[in.Tgts[0]] {
					return fmt.Errorf("b%d[%d]: bad br target", b.ID, i)
				}
			case OpCondBr:
				if len(in.Tgts) != 2 || !inFunc[in.Tgts[0]] || !inFunc[in.Tgts[1]] {
					return fmt.Errorf("b%d[%d]: bad condbr targets", b.ID, i)
				}
				if len(in.Args) != 1 {
					return fmt.Errorf("b%d[%d]: condbr needs one operand", b.ID, i)
				}
			case OpDbgVal:
				if in.V == nil || !vars[in.V] {
					return fmt.Errorf("b%d[%d]: dbgval references foreign variable", b.ID, i)
				}
				if len(in.Args) != 1 {
					return fmt.Errorf("b%d[%d]: dbgval needs one operand", b.ID, i)
				}
			case OpRet:
				if f.HasRet && len(in.Args) == 0 {
					return fmt.Errorf("b%d[%d]: ret without value in value-returning function", b.ID, i)
				}
			}
		}
	}
	return nil
}
