package conjecture

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/bugs"
	"repro/internal/compiler"
	"repro/internal/debugger"
	"repro/internal/minic"
)

// traceOf compiles src at cfg with optional extra defects and records the
// native-debugger trace.
func traceOf(t *testing.T, src string, cfg compiler.Config, extra map[string]bool) (*analysis.Facts, *debugger.Trace) {
	t.Helper()
	prog := minic.MustParse(src)
	res, err := compiler.Compile(prog, cfg, compiler.Options{ExtraDefects: extra})
	if err != nil {
		t.Fatal(err)
	}
	var dbg debugger.Debugger
	if compiler.NativeDebugger(cfg.Family) == "gdb" {
		dbg = debugger.NewGDB(compiler.DebuggerDefects("gdb"))
	} else {
		dbg = debugger.NewLLDB(compiler.DebuggerDefects("lldb"))
	}
	tr, err := debugger.Record(res.Exe, dbg)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Analyze(prog), tr
}

const c1src = `
int a = 4;
extern void opaque(int x, int y);
int main(void) {
  int v1 = 0;
  int v2 = a + 1;
  opaque(v1, v2);
  return 0;
}
`

func TestC1CleanCompilerHasNoViolations(t *testing.T) {
	cfg := compiler.Config{Family: compiler.GC, Version: "patched", Level: "O0"}
	f, tr := traceOf(t, c1src, cfg, nil)
	if vs := CheckAll(f, tr); len(vs) != 0 {
		t.Errorf("O0 must be violation-free, got %v", vs)
	}
}

func TestC1DetectsInjectedDrop(t *testing.T) {
	// The instcombine drop mechanism loses v1's constant at the call.
	cfg := compiler.Config{Family: compiler.CL, Version: "trunk", Level: "O2"}
	f, tr := traceOf(t, c1src, cfg, map[string]bool{bugs.CLInstCombineDrop: true})
	vs := CheckC1(f, tr)
	// At least the O0-visible variables must be checked; whether a
	// violation fires depends on the pipeline's folding, so assert the
	// checker runs on the call line when stepped.
	stop := tr.Stops[7]
	if stop == nil {
		t.Skip("call line not stepped under this pipeline")
	}
	for _, v := range vs {
		if v.Conjecture != 1 {
			t.Errorf("CheckC1 returned conjecture %d", v.Conjecture)
		}
		if v.Line != 7 {
			t.Errorf("violation at line %d, want 7", v.Line)
		}
	}
}

func TestViolationKeyStability(t *testing.T) {
	v := Violation{Conjecture: 2, Line: 10, Func: "main", Var: "x"}
	if v.Key() != "C2:main:x:10" {
		t.Errorf("key = %q", v.Key())
	}
	if Filter([]Violation{v, {Conjecture: 1}}, 2)[0].Key() != v.Key() {
		t.Error("Filter lost the violation")
	}
}

func TestC3MonotoneAvailabilityAccepted(t *testing.T) {
	// Normal decay (available then optimized-out) must not violate.
	f := &analysis.Facts{
		FuncOfLine: map[int]string{5: "main", 6: "main", 7: "main"},
		Instances:  []analysis.Instance{{Func: "main", Var: "x", StartLine: 4, EndLine: 9}},
	}
	tr := &debugger.Trace{Stops: map[int]*debugger.Stop{
		5: {Line: 5, Vars: []debugger.Variable{{Name: "x", State: debugger.Available}}},
		6: {Line: 6, Vars: []debugger.Variable{{Name: "x", State: debugger.OptimizedOut}}},
		7: {Line: 7, Vars: []debugger.Variable{{Name: "x", State: debugger.OptimizedOut}}},
	}}
	if vs := CheckC3(f, tr); len(vs) != 0 {
		t.Errorf("monotone decay flagged: %v", vs)
	}
}

func TestC3FlagsResurrection(t *testing.T) {
	f := &analysis.Facts{
		FuncOfLine: map[int]string{5: "main", 6: "main", 7: "main"},
		Instances:  []analysis.Instance{{Func: "main", Var: "x", StartLine: 4, EndLine: 9}},
	}
	tr := &debugger.Trace{Stops: map[int]*debugger.Stop{
		5: {Line: 5, Vars: []debugger.Variable{{Name: "x", State: debugger.OptimizedOut}}},
		6: {Line: 6, Vars: []debugger.Variable{{Name: "x", State: debugger.OptimizedOut}}},
		7: {Line: 7, Vars: []debugger.Variable{{Name: "x", State: debugger.Available}}},
	}}
	vs := CheckC3(f, tr)
	if len(vs) != 1 || vs[0].Line != 7 {
		t.Errorf("resurrection not flagged correctly: %v", vs)
	}
}

func TestC3SkipsAssignmentLine(t *testing.T) {
	// The stop on the assignment line itself happens before the assignment
	// executes; unavailability there must not become the baseline.
	f := &analysis.Facts{
		FuncOfLine: map[int]string{4: "main", 5: "main"},
		Instances:  []analysis.Instance{{Func: "main", Var: "x", StartLine: 4, EndLine: 9}},
	}
	tr := &debugger.Trace{Stops: map[int]*debugger.Stop{
		4: {Line: 4, Vars: []debugger.Variable{{Name: "x", State: debugger.OptimizedOut}}},
		5: {Line: 5, Vars: []debugger.Variable{{Name: "x", State: debugger.Available}}},
	}}
	if vs := CheckC3(f, tr); len(vs) != 0 {
		t.Errorf("assignment-line baseline leaked: %v", vs)
	}
}

func TestC2SimplifiableSkipped(t *testing.T) {
	f := &analysis.Facts{
		GlobalAssigns: []analysis.GlobalAssign{{
			Line: 5, Func: "main", Global: "g", Simplifiable: true,
			Constituents: []analysis.Constituent{{Name: "x", Constant: true}},
		}},
	}
	tr := &debugger.Trace{Stops: map[int]*debugger.Stop{
		5: {Line: 5, Vars: []debugger.Variable{{Name: "x", State: debugger.OptimizedOut}}},
	}}
	if vs := CheckC2(f, tr); len(vs) != 0 {
		t.Errorf("simplifiable expression checked: %v", vs)
	}
}

func TestC2QualifyingConstituent(t *testing.T) {
	f := &analysis.Facts{
		GlobalAssigns: []analysis.GlobalAssign{{
			Line: 5, Func: "main", Global: "g",
			Constituents: []analysis.Constituent{
				{Name: "x", Constant: true},
				{Name: "y"}, // does not qualify
			},
		}},
	}
	tr := &debugger.Trace{Stops: map[int]*debugger.Stop{
		5: {Line: 5, Vars: []debugger.Variable{
			{Name: "x", State: debugger.OptimizedOut},
			{Name: "y", State: debugger.OptimizedOut},
		}},
	}}
	vs := CheckC2(f, tr)
	if len(vs) != 1 || vs[0].Var != "x" {
		t.Errorf("want exactly x flagged, got %v", vs)
	}
}

func TestUnsteppedLinesAreSilent(t *testing.T) {
	f := &analysis.Facts{
		OpaqueCalls: []analysis.OpaqueCall{{Line: 9, Func: "main", Callee: "o", ArgVars: []string{"x"}}},
	}
	tr := &debugger.Trace{Stops: map[int]*debugger.Stop{}}
	if vs := CheckC1(f, tr); len(vs) != 0 {
		t.Errorf("unstepped line produced violations: %v", vs)
	}
}
