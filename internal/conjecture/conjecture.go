// Package conjecture implements the paper's three empirically derived
// conjectures over debugger traces — the core of the testing methodology.
//
// Conjecture 1: a variable passed as an argument to an opaque function must
// be available when stepping on the call line.
//
// Conjecture 2: at a line assigning to global storage through a
// non-simplifiable expression, every qualifying constituent (constant, or
// unalterable-and-live) must be available.
//
// Conjecture 3: after an assignment, a local variable's availability may
// only stay equal or degrade until its next reassignment.
package conjecture

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/debugger"
)

// Violation is one conjecture violation at a program point.
type Violation struct {
	Conjecture int
	Line       int
	Func       string
	Var        string
	State      debugger.VarState
	Detail     string
}

// Key identifies a violation for deduplication across optimization levels
// (the paper treats violations at different lines as distinct).
func (v Violation) Key() string {
	return fmt.Sprintf("C%d:%s:%s:%d", v.Conjecture, v.Func, v.Var, v.Line)
}

func (v Violation) String() string {
	return fmt.Sprintf("C%d violation: %s of %s is %s at line %d (%s)",
		v.Conjecture, v.Var, v.Func, v.State, v.Line, v.Detail)
}

// CheckC1 checks the call-argument conjecture against a trace.
func CheckC1(f *analysis.Facts, tr *debugger.Trace) []Violation {
	var out []Violation
	seen := map[string]bool{}
	for _, oc := range f.OpaqueCalls {
		stop := tr.Stops[oc.Line]
		if stop == nil {
			continue // the line was not stepped; the conjecture is silent
		}
		for _, name := range oc.ArgVars {
			v := stop.Var(name)
			if v.State == debugger.Available {
				continue
			}
			viol := Violation{Conjecture: 1, Line: oc.Line, Func: oc.Func,
				Var: name, State: v.State,
				Detail: fmt.Sprintf("argument to opaque %s", oc.Callee)}
			if !seen[viol.Key()] {
				seen[viol.Key()] = true
				out = append(out, viol)
			}
		}
	}
	return out
}

// CheckC2 checks the constituents conjecture against a trace.
func CheckC2(f *analysis.Facts, tr *debugger.Trace) []Violation {
	var out []Violation
	seen := map[string]bool{}
	for _, ga := range f.GlobalAssigns {
		if ga.Simplifiable {
			continue
		}
		stop := tr.Stops[ga.Line]
		if stop == nil {
			continue
		}
		for _, c := range ga.Constituents {
			if !c.Qualifies() {
				continue
			}
			v := stop.Var(c.Name)
			if v.State == debugger.Available {
				continue
			}
			why := "constant constituent"
			if !c.Constant {
				why = "unalterable live constituent"
			}
			viol := Violation{Conjecture: 2, Line: ga.Line, Func: ga.Func,
				Var: c.Name, State: v.State,
				Detail: fmt.Sprintf("%s of store to %s", why, ga.Global)}
			if !seen[viol.Key()] {
				seen[viol.Key()] = true
				out = append(out, viol)
			}
		}
	}
	return out
}

// CheckC3 checks the decaying-visibility conjecture: within one variable
// instance (assignment to next assignment), walking the stepped lines in
// source order, availability must never improve.
func CheckC3(f *analysis.Facts, tr *debugger.Trace) []Violation {
	var out []Violation
	seen := map[string]bool{}
	for _, inst := range f.Instances {
		// The assignment line itself is excluded: a stop there happens
		// before the assignment executes, so the variable may legitimately
		// be unavailable at that point.
		var lines []int
		for l := inst.StartLine + 1; l < inst.EndLine; l++ {
			if tr.Stops[l] != nil && f.FuncOfLine[l] == inst.Func {
				lines = append(lines, l)
			}
		}
		sort.Ints(lines)
		if len(lines) < 2 {
			continue
		}
		prev := rank(tr.Stops[lines[0]].Var(inst.Var).State)
		for _, l := range lines[1:] {
			cur := rank(tr.Stops[l].Var(inst.Var).State)
			if cur > prev {
				viol := Violation{Conjecture: 3, Line: l, Func: inst.Func,
					Var: inst.Var, State: tr.Stops[l].Var(inst.Var).State,
					Detail: fmt.Sprintf("availability improved after line %d without reassignment", lines[0])}
				if !seen[viol.Key()] {
					seen[viol.Key()] = true
					out = append(out, viol)
				}
			}
			if cur < prev {
				prev = cur
			}
		}
	}
	return out
}

func rank(s debugger.VarState) int {
	switch s {
	case debugger.Available:
		return 2
	case debugger.OptimizedOut:
		return 1
	}
	return 0
}

// CheckAll runs the three conjectures and returns all violations.
func CheckAll(f *analysis.Facts, tr *debugger.Trace) []Violation {
	out := CheckC1(f, tr)
	out = append(out, CheckC2(f, tr)...)
	out = append(out, CheckC3(f, tr)...)
	return out
}

// Filter returns the violations of one conjecture.
func Filter(vs []Violation, conj int) []Violation {
	var out []Violation
	for _, v := range vs {
		if v.Conjecture == conj {
			out = append(out, v)
		}
	}
	return out
}
