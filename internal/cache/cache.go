// Package cache provides a concurrency-safe LRU cache with request
// coalescing: concurrent GetOrCompute calls for the same key run the
// compute function once and share the result. The engine uses it to key
// compilations, analyses and traces by canonical-source fingerprint, so a
// Check→Triage→Minimize flow (or a parallel campaign) never repeats work
// it has already done.
package cache

import (
	"container/list"
	"context"
	"sync"
)

// Cache is a bounded LRU map from K to V. A capacity <= 0 means unbounded.
// The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[K]*list.Element
	inflight map[K]*flight[V]
	hits     uint64
	misses   uint64
}

type pair[K comparable, V any] struct {
	key K
	val V
}

// flight is one in-progress computation other callers can wait on.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
	// abandoned marks a flight whose leader failed because its OWN context
	// was cancelled: the result says nothing about the computation, so
	// coalesced waiters with live contexts retry (one of them becomes the
	// next leader) instead of inheriting a stranger's cancellation.
	abandoned bool
}

// New returns an empty cache holding at most capacity entries (unbounded
// when capacity <= 0).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    map[K]*list.Element{},
		inflight: map[K]*flight[V]{},
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(pair[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the cached value for key, marking it most recently used,
// without touching the hit/miss counters. Probe-heavy tiers — the
// optimizer's longest-prefix snapshot search tries many keys per lookup —
// use it so Stats keep describing demand lookups.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(pair[K, V]).val, true
	}
	var zero V
	return zero, false
}

// GetOrCompute returns the cached value for key, computing and storing it
// with fn on a miss. Concurrent calls for the same key coalesce: one runs
// fn, the rest block and share its result. Errors are returned to every
// waiter and are not cached.
func (c *Cache[K, V]) GetOrCompute(key K, fn func() (V, error)) (V, error) {
	return c.GetOrComputeCtx(context.Background(), key, fn)
}

// GetOrComputeCtx is GetOrCompute honoring context cancellation while
// waiting on a coalesced computation: a waiter whose ctx is cancelled
// unblocks immediately with ctx.Err() instead of hanging until the
// leader's compute returns. The leader itself always runs fn to
// completion — other waiters may still need the result — so a compute
// that should stop early must check ctx inside fn.
//
// Error semantics: a genuine compute failure is delivered to the leader
// and to every waiter coalesced onto it, exactly once each, and is never
// cached — the next caller recomputes. A failure caused by the LEADER'S
// context being cancelled is different: it says nothing about the key, so
// waiters with live contexts do not inherit it; one of them takes over
// and recomputes (per-request deadlines stay per-request even under
// coalescing).
func (c *Cache[K, V]) GetOrComputeCtx(ctx context.Context, key K, fn func() (V, error)) (V, error) {
	var zero V
	for {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			return el.Value.(pair[K, V]).val, nil
		}
		if fl, ok := c.inflight[key]; ok {
			// Coalesce onto the running computation. Counts as a hit: the
			// work is shared, not repeated.
			c.hits++
			c.mu.Unlock()
			select {
			case <-fl.done:
				if fl.abandoned {
					continue // leader cancelled, not a real failure: take over
				}
				return fl.val, fl.err
			case <-ctx.Done():
				return zero, ctx.Err()
			}
		}
		c.misses++
		fl := &flight[V]{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()

		fl.val, fl.err = fn()
		// Only the leader's own cancellation marks the flight abandoned: a
		// compute that failed for a real reason while the leader stayed
		// live must propagate, not be retried by every waiter in turn.
		fl.abandoned = fl.err != nil && ctx.Err() != nil

		c.mu.Lock()
		delete(c.inflight, key)
		if fl.err == nil {
			c.store(key, fl.val)
		}
		c.mu.Unlock()
		close(fl.done)
		return fl.val, fl.err
	}
}

// Add stores a value, evicting the least recently used entry if needed.
func (c *Cache[K, V]) Add(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(key, val)
}

// store inserts or refreshes key under c.mu.
func (c *Cache[K, V]) store(key K, val V) {
	if el, ok := c.items[key]; ok {
		el.Value = pair[K, V]{key, val}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(pair[K, V]{key, val})
	if c.capacity > 0 {
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(pair[K, V]).key)
		}
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the hit and miss counts so far.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
