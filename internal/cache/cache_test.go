package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEviction(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	if _, ok := c.Get(1); !ok { // 1 becomes most recently used
		t.Fatal("1 missing")
	}
	c.Add(3, 30) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Errorf("1 lost: %v %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestGetOrComputeCoalesces(t *testing.T) {
	c := New[string, int](0)
	var computes atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, err := c.GetOrCompute("k", func() (int, error) {
				computes.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("computed %d times, want 1 (coalesced)", n)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[string, int](0)
	boom := errors.New("boom")
	if _, err := c.GetOrCompute("k", func() (int, error) { return 0, boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	v, err := c.GetOrCompute("k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Errorf("retry after error failed: %v %v", v, err)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

// TestGetOrComputeCtxCancelledWaiter pins the cancellation contract: a
// coalesced waiter whose context is cancelled unblocks with ctx.Err()
// while the leader's compute is still running, and the leader still
// completes and caches its result.
func TestGetOrComputeCtxCancelledWaiter(t *testing.T) {
	c := New[string, int](0)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err := c.GetOrCompute("k", func() (int, error) {
			close(leaderIn)
			<-leaderGo
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader got %v, %v", v, err)
		}
	}()
	<-leaderIn // the computation is in flight

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrComputeCtx(ctx, "k", func() (int, error) {
			t.Error("waiter must coalesce, not compute")
			return 0, nil
		})
		waiterErr <- err
	}()
	cancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked on the in-flight compute")
	}

	close(leaderGo)
	<-leaderDone
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Errorf("leader result not cached: %v %v", v, ok)
	}
}

// TestGetOrComputeCtxPreCancelled: a call with an already-cancelled
// context returns immediately without computing.
func TestGetOrComputeCtxPreCancelled(t *testing.T) {
	c := New[string, int](0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.GetOrComputeCtx(ctx, "k", func() (int, error) {
		t.Error("compute ran under a cancelled context")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestLeaderErrorPropagatesToWaiters pins the failure contract of
// coalescing: every waiter coalesced onto a failing leader receives the
// leader's error — the same value, delivered exactly once per waiter —
// the failure is not cached, and the next caller recomputes fresh.
func TestLeaderErrorPropagatesToWaiters(t *testing.T) {
	c := New[string, int](0)
	boom := errors.New("boom")
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	var computes atomic.Int64

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrCompute("k", func() (int, error) {
			computes.Add(1)
			close(leaderIn)
			<-leaderGo
			return 0, boom
		})
		leaderErr <- err
	}()
	<-leaderIn // the failing computation is in flight

	const waiters = 8
	errs := make(chan error, waiters)
	var joined sync.WaitGroup
	for i := 0; i < waiters; i++ {
		joined.Add(1)
		go func() {
			joined.Done()
			_, err := c.GetOrCompute("k", func() (int, error) {
				t.Error("waiter must coalesce onto the failing leader, not compute")
				return 0, nil
			})
			errs <- err
		}()
	}
	joined.Wait()
	// The waiters are launched; give them a beat to reach the coalesce
	// path before the leader fails. A waiter that misses the flight would
	// compute (and trip the t.Error above), so the assertion stands
	// regardless of scheduling.
	time.Sleep(10 * time.Millisecond)
	close(leaderGo)

	if err := <-leaderErr; err != boom {
		t.Errorf("leader err = %v, want boom", err)
	}
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if err != boom {
				t.Errorf("waiter err = %v, want the leader's error", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never unblocked after the leader failed")
		}
	}
	if c.Len() != 0 {
		t.Errorf("failed computation was cached: len = %d, want 0", c.Len())
	}
	// The failure was not cached: the next caller computes fresh.
	v, err := c.GetOrCompute("k", func() (int, error) {
		computes.Add(1)
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Errorf("recompute after failure: %v %v", v, err)
	}
	if n := computes.Load(); n != 2 {
		t.Errorf("computed %d times, want 2 (failed once, recomputed once)", n)
	}
}

// TestLeaderCancellationDoesNotPoisonWaiters: when the leader's own
// context is cancelled mid-compute, its failure is an artifact of THAT
// request's deadline, not of the key — a coalesced waiter with a live
// context must take over and compute instead of inheriting the
// cancellation (the per-request-deadline contract the serving layer's
// request batching depends on).
func TestLeaderCancellationDoesNotPoisonWaiters(t *testing.T) {
	c := New[string, int](0)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var computes atomic.Int64

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrComputeCtx(leaderCtx, "k", func() (int, error) {
			computes.Add(1)
			close(leaderIn)
			<-leaderCtx.Done() // a well-behaved compute observes its ctx
			return 0, leaderCtx.Err()
		})
		leaderErr <- err
	}()
	<-leaderIn

	waiterVal := make(chan int, 1)
	go func() {
		v, err := c.GetOrComputeCtx(context.Background(), "k", func() (int, error) {
			computes.Add(1)
			return 42, nil
		})
		if err != nil {
			t.Errorf("live waiter inherited the leader's cancellation: %v", err)
		}
		waiterVal <- v
	}()
	// Let the waiter coalesce onto the doomed flight, then kill the leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Errorf("leader err = %v, want context.Canceled", err)
	}
	select {
	case v := <-waiterVal:
		if v != 42 {
			t.Errorf("waiter got %d, want 42 from its own takeover compute", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never took over after the leader was cancelled")
	}
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Errorf("takeover result not cached: %v %v", v, ok)
	}
}

func TestUnboundedCapacity(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 100; i++ {
		c.Add(i, i)
	}
	if c.Len() != 100 {
		t.Errorf("len = %d, want 100", c.Len())
	}
}
