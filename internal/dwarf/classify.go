package dwarf

// The DIE-level defect classifier of Section 5.3: given a conjecture
// violation (a variable that should have been available at a program
// counter), the classifier inspects the emitted DWARF and assigns one of the
// paper's four manifestation categories.

// Class is a DIE defect category.
type Class string

// DIE defect classes.
const (
	ClassMissing    Class = "Missing DIE"
	ClassHollow     Class = "Hollow DIE"
	ClassIncomplete Class = "Incomplete DIE"
	ClassIncorrect  Class = "Incorrect DIE"
	ClassNone       Class = "OK"
)

// Classify determines how the debug information of variable name fails at
// pc. It returns ClassNone when the DWARF actually provides the value (then
// the unavailability was a debugger-side problem).
func Classify(info *Info, varName string, pc uint32) Class {
	sub := info.Subprogram(pc)
	if sub == nil {
		return ClassMissing
	}
	// Search the frame subtree (innermost inline frame first, then the
	// subprogram scope), like a debugger would.
	scopes := []*DIE{sub}
	scopes = append(scopes, info.InlineChainAt(pc)...)
	var die *DIE
	for k := len(scopes) - 1; k >= 0; k-- {
		die = findVarInScope(scopes[k], varName, pc)
		if die != nil {
			break
		}
	}
	if die == nil {
		// The variable may have a DIE outside the current frame's scopes:
		// location information attributed to the wrong frame.
		var foreign *DIE
		info.CU.Walk(func(d *DIE) {
			if foreign != nil || d.Tag != TagVariable && d.Tag != TagFormalParameter {
				return
			}
			if d.Name == varName && !d.Abstract {
				if _, ok := d.LocAt(pc); ok || d.ConstValue != nil {
					foreign = d
				}
			}
		})
		if foreign != nil {
			return ClassIncorrect
		}
		return ClassMissing
	}
	if die.ConstValue != nil {
		return ClassNone
	}
	if len(die.Loc) == 0 {
		// Check the abstract origin: legitimate DWARF may keep the location
		// there (the lldb bug surface).
		if die.AbstractOrigin != 0 {
			if org := info.ByID(die.AbstractOrigin); org != nil {
				if org.ConstValue != nil || len(org.Loc) > 0 {
					return ClassNone
				}
			}
		}
		return ClassHollow
	}
	if r, ok := die.LocAt(pc); ok {
		_ = r
		return ClassNone
	}
	return ClassIncomplete
}

// findVarInScope locates the variable DIE for name visible at pc within the
// given scope DIE (descending through lexical blocks that cover pc, but not
// into nested subprograms or inlined subroutines).
func findVarInScope(scope *DIE, name string, pc uint32) *DIE {
	for _, c := range scope.Children {
		switch c.Tag {
		case TagVariable, TagFormalParameter:
			if c.Name == name {
				return c
			}
		case TagLexicalBlock:
			if c.CoversPC(pc) || len(c.Ranges) == 0 {
				if d := findVarInScope(c, name, pc); d != nil {
					return d
				}
			}
		}
	}
	return nil
}
