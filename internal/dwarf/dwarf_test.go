package dwarf

import (
	"testing"
	"testing/quick"
)

func sampleInfo() *Info {
	info := NewInfo()
	info.NLines = 12
	info.Lines = []LineEntry{{PC: 0, Line: 3}, {PC: 4, Line: 5}, {PC: 9, Line: 7}, {PC: 12, Line: 5}}
	sub := info.CU.AddChild(&DIE{ID: info.NewID(), Tag: TagSubprogram, Name: "main",
		DeclLine: 2, Ranges: []PCRange{{Lo: 0, Hi: 20}}})
	c := int64(7)
	sub.AddChild(&DIE{ID: info.NewID(), Tag: TagVariable, Name: "x",
		DeclLine: 3, Loc: []LocRange{{Lo: 2, Hi: 10, Kind: LocReg, Value: 4}}})
	sub.AddChild(&DIE{ID: info.NewID(), Tag: TagVariable, Name: "k",
		DeclLine: 3, ConstValue: &c})
	abs := info.CU.AddChild(&DIE{ID: info.NewID(), Tag: TagSubprogram, Name: "callee", Abstract: true})
	av := abs.AddChild(&DIE{ID: info.NewID(), Tag: TagVariable, Name: "p", Abstract: true})
	inl := sub.AddChild(&DIE{ID: info.NewID(), Tag: TagInlinedSubroutine, Name: "callee",
		CallLine: 6, AbstractOrigin: abs.ID, Ranges: []PCRange{{Lo: 9, Hi: 12}}})
	inl.AddChild(&DIE{ID: info.NewID(), Tag: TagVariable, Name: "p", AbstractOrigin: av.ID,
		Loc: []LocRange{{Lo: 9, Hi: 12, Kind: LocConst, Value: 1}}})
	return info
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	info := sampleInfo()
	data := Encode(info)
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.NLines != info.NLines || len(back.Lines) != len(info.Lines) {
		t.Fatal("line table header mismatch")
	}
	for i := range info.Lines {
		if back.Lines[i] != info.Lines[i] {
			t.Errorf("line entry %d: %v vs %v", i, back.Lines[i], info.Lines[i])
		}
	}
	var count, countBack int
	info.CU.Walk(func(*DIE) { count++ })
	back.CU.Walk(func(*DIE) { countBack++ })
	if count != countBack {
		t.Fatalf("DIE count: %d vs %d", count, countBack)
	}
	x := back.CU.Find(func(d *DIE) bool { return d.Name == "x" })
	if x == nil || len(x.Loc) != 1 || x.Loc[0] != (LocRange{Lo: 2, Hi: 10, Kind: LocReg, Value: 4}) {
		t.Errorf("x loc list corrupted: %+v", x)
	}
	k := back.CU.Find(func(d *DIE) bool { return d.Name == "k" })
	if k == nil || k.ConstValue == nil || *k.ConstValue != 7 {
		t.Errorf("k const corrupted: %+v", k)
	}
	p := back.CU.Find(func(d *DIE) bool { return d.Name == "p" && !d.Abstract })
	if p == nil || p.AbstractOrigin == 0 {
		t.Error("abstract origin reference lost")
	}
	if back.ByID(p.AbstractOrigin) == nil {
		t.Error("abstract origin unresolvable after decode")
	}
	// Encoding is deterministic.
	if string(Encode(back)) != string(data) {
		t.Error("re-encode differs")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Decode([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("bad magic accepted")
	}
	data := Encode(sampleInfo())
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Error("truncated input accepted")
	}
}

func TestPCToLineAndLinePCs(t *testing.T) {
	info := sampleInfo()
	cases := map[uint32]int{0: 3, 3: 3, 4: 5, 8: 5, 9: 7, 11: 7, 12: 5}
	for pc, want := range cases {
		if got := info.PCToLine(pc); got != want {
			t.Errorf("PCToLine(%d) = %d, want %d", pc, got, want)
		}
	}
	if pcs := info.LinePCs(5); len(pcs) != 2 || pcs[0] != 4 || pcs[1] != 12 {
		t.Errorf("LinePCs(5) = %v (duplicated lines must yield all entries)", pcs)
	}
	steppable := info.SteppableLines()
	for _, l := range []int{3, 5, 7} {
		if !steppable[l] {
			t.Errorf("line %d missing from steppable set", l)
		}
	}
}

func TestSubprogramAndInlineChain(t *testing.T) {
	info := sampleInfo()
	if sub := info.Subprogram(5); sub == nil || sub.Name != "main" {
		t.Fatalf("Subprogram(5) = %v", sub)
	}
	if sub := info.Subprogram(25); sub != nil {
		t.Error("pc outside all ranges should have no subprogram")
	}
	chain := info.InlineChainAt(10)
	if len(chain) != 1 || chain[0].Name != "callee" {
		t.Fatalf("InlineChainAt(10) = %v", chain)
	}
	if len(info.InlineChainAt(3)) != 0 {
		t.Error("no inline chain expected at pc 3")
	}
	if abs := info.AbstractSubprogram("callee"); abs == nil || !abs.Abstract {
		t.Error("abstract instance lookup failed")
	}
}

func TestClassify(t *testing.T) {
	info := sampleInfo()
	// Available in range: no defect.
	if c := Classify(info, "x", 5); c != ClassNone {
		t.Errorf("x at 5 = %v, want OK", c)
	}
	// Outside the location range but inside scope: incomplete.
	if c := Classify(info, "x", 15); c != ClassIncomplete {
		t.Errorf("x at 15 = %v, want Incomplete", c)
	}
	// Constant value: fine anywhere in scope.
	if c := Classify(info, "k", 15); c != ClassNone {
		t.Errorf("k at 15 = %v, want OK", c)
	}
	// No DIE at all: missing.
	if c := Classify(info, "nosuch", 5); c != ClassMissing {
		t.Errorf("nosuch = %v, want Missing", c)
	}
	// Hollow: DIE exists, no loc, no const.
	sub := info.SubprogramByName("main")
	sub.AddChild(&DIE{ID: info.NewID(), Tag: TagVariable, Name: "h"})
	if c := Classify(info, "h", 5); c != ClassHollow {
		t.Errorf("h = %v, want Hollow", c)
	}
	// Incorrect: the DIE with a covering location lives in another frame.
	inl := sub.Find(func(d *DIE) bool { return d.Tag == TagInlinedSubroutine })
	inl.AddChild(&DIE{ID: info.NewID(), Tag: TagVariable, Name: "w",
		Loc: []LocRange{{Lo: 0, Hi: 20, Kind: LocConst, Value: 9}}})
	if c := Classify(info, "w", 3); c != ClassIncorrect {
		t.Errorf("w at 3 = %v, want Incorrect (it is scoped to the inlined frame)", c)
	}
}

func TestLocRangeCovers(t *testing.T) {
	r := LocRange{Lo: 4, Hi: 8}
	for pc, want := range map[uint32]bool{3: false, 4: true, 7: true, 8: false} {
		if r.Covers(pc) != want {
			t.Errorf("Covers(%d) = %v", pc, !want)
		}
	}
	empty := LocRange{Lo: 5, Hi: 5}
	if empty.Covers(5) {
		t.Error("empty range must cover nothing")
	}
}

func TestEncodeDecodePropertyLineTable(t *testing.T) {
	// Round-tripping arbitrary line tables preserves them.
	f := func(pcs []uint16, lines []uint8) bool {
		info := NewInfo()
		n := len(pcs)
		if len(lines) < n {
			n = len(lines)
		}
		for i := 0; i < n; i++ {
			info.Lines = append(info.Lines, LineEntry{PC: uint32(pcs[i]), Line: int(lines[i])})
		}
		info.NLines = 300
		back, err := Decode(Encode(info))
		if err != nil || len(back.Lines) != len(info.Lines) {
			return false
		}
		for i := range info.Lines {
			if back.Lines[i] != info.Lines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
