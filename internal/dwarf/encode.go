package dwarf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization of Info. The format is a compact tag-length-value
// tree using unsigned varints, reminiscent of real DWARF's abbreviation-
// driven encoding. It exists so that executables can carry their debug
// information as an opaque section, and so tools can reload it without
// sharing memory with the compiler.

const magic = 0x44574630 // "DWF0"

// Encode serialises the debug information.
func Encode(info *Info) []byte {
	var b bytes.Buffer
	writeU32(&b, magic)
	writeUvarint(&b, uint64(info.NLines))
	writeUvarint(&b, uint64(len(info.Lines)))
	for _, e := range info.Lines {
		writeUvarint(&b, uint64(e.PC))
		writeUvarint(&b, uint64(e.Line))
	}
	encodeDIE(&b, info.CU)
	return b.Bytes()
}

// Decode reconstructs debug information from Encode's output.
func Decode(data []byte) (*Info, error) {
	b := bytes.NewReader(data)
	var m uint32
	if err := binary.Read(b, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("dwarf: short header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dwarf: bad magic %#x", m)
	}
	info := &Info{}
	nl, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	info.NLines = int(nl)
	n, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	for k := uint64(0); k < n; k++ {
		pc, err := binary.ReadUvarint(b)
		if err != nil {
			return nil, err
		}
		line, err := binary.ReadUvarint(b)
		if err != nil {
			return nil, err
		}
		info.Lines = append(info.Lines, LineEntry{PC: uint32(pc), Line: int(line)})
	}
	cu, maxID, err := decodeDIE(b, 0)
	if err != nil {
		return nil, err
	}
	info.CU = cu
	info.nextID = maxID + 1
	return info, nil
}

func writeU32(b *bytes.Buffer, v uint32) {
	_ = binary.Write(b, binary.LittleEndian, v)
}

func writeUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

func writeVarint(b *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	b.Write(tmp[:n])
}

func writeString(b *bytes.Buffer, s string) {
	writeUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func encodeDIE(b *bytes.Buffer, d *DIE) {
	writeUvarint(b, uint64(d.ID))
	writeUvarint(b, uint64(d.Tag))
	writeString(b, d.Name)
	writeUvarint(b, uint64(d.DeclLine))
	writeUvarint(b, uint64(d.CallLine))
	flags := uint64(0)
	if d.Abstract {
		flags |= 1
	}
	if d.ConstValue != nil {
		flags |= 2
	}
	writeUvarint(b, flags)
	writeUvarint(b, uint64(d.AbstractOrigin))
	if d.ConstValue != nil {
		writeVarint(b, *d.ConstValue)
	}
	writeUvarint(b, uint64(len(d.Loc)))
	for _, r := range d.Loc {
		writeUvarint(b, uint64(r.Lo))
		writeUvarint(b, uint64(r.Hi))
		writeUvarint(b, uint64(r.Kind))
		writeVarint(b, r.Value)
	}
	writeUvarint(b, uint64(len(d.Ranges)))
	for _, r := range d.Ranges {
		writeUvarint(b, uint64(r.Lo))
		writeUvarint(b, uint64(r.Hi))
	}
	writeUvarint(b, uint64(len(d.Children)))
	for _, c := range d.Children {
		encodeDIE(b, c)
	}
}

// maxDIEDepth bounds the decoder's recursion so a corrupt child-count
// chain cannot grow the stack without limit; real DIE trees are a handful
// of levels deep (CU → subprogram → block → inlined subroutine …).
const maxDIEDepth = 1000

func decodeDIE(b *bytes.Reader, depth int) (*DIE, int, error) {
	if depth > maxDIEDepth {
		return nil, 0, fmt.Errorf("dwarf: DIE tree deeper than %d", maxDIEDepth)
	}
	d := &DIE{}
	id, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	d.ID = int(id)
	maxID := d.ID
	tag, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	d.Tag = Tag(tag)
	if d.Tag < TagCompileUnit || d.Tag > TagLexicalBlock {
		return nil, 0, fmt.Errorf("dwarf: unknown tag %d", d.Tag)
	}
	n, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	// Bound the allocation by what the input could actually hold: a
	// corrupt length must fail cleanly, not drive make() into a panic.
	if n > uint64(b.Len()) {
		return nil, 0, fmt.Errorf("dwarf: name length %d exceeds remaining %d bytes", n, b.Len())
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(b, name); err != nil {
		return nil, 0, err
	}
	d.Name = string(name)
	decl, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	d.DeclLine = int(decl)
	callLine, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	d.CallLine = int(callLine)
	flags, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	d.Abstract = flags&1 != 0
	org, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	d.AbstractOrigin = int(org)
	if flags&2 != 0 {
		cv, err := binary.ReadVarint(b)
		if err != nil {
			return nil, 0, err
		}
		d.ConstValue = &cv
	}
	nloc, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	for k := uint64(0); k < nloc; k++ {
		var r LocRange
		lo, err := binary.ReadUvarint(b)
		if err != nil {
			return nil, 0, err
		}
		hi, err := binary.ReadUvarint(b)
		if err != nil {
			return nil, 0, err
		}
		kind, err := binary.ReadUvarint(b)
		if err != nil {
			return nil, 0, err
		}
		v, err := binary.ReadVarint(b)
		if err != nil {
			return nil, 0, err
		}
		r.Lo, r.Hi, r.Kind, r.Value = uint32(lo), uint32(hi), LocKind(kind), v
		if r.Kind < LocReg || r.Kind > LocConst {
			return nil, 0, fmt.Errorf("dwarf: unknown location kind %d", r.Kind)
		}
		d.Loc = append(d.Loc, r)
	}
	nrng, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	for k := uint64(0); k < nrng; k++ {
		lo, err := binary.ReadUvarint(b)
		if err != nil {
			return nil, 0, err
		}
		hi, err := binary.ReadUvarint(b)
		if err != nil {
			return nil, 0, err
		}
		d.Ranges = append(d.Ranges, PCRange{Lo: uint32(lo), Hi: uint32(hi)})
	}
	nch, err := binary.ReadUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	for k := uint64(0); k < nch; k++ {
		c, cmax, err := decodeDIE(b, depth+1)
		if err != nil {
			return nil, 0, err
		}
		if cmax > maxID {
			maxID = cmax
		}
		d.Children = append(d.Children, c)
	}
	return d, maxID, nil
}
