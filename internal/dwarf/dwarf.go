// Package dwarf models the debug-information format of the simulated
// toolchain: a DIE tree (compile unit, subprograms, variables, inlined
// subroutines with abstract origins), location lists with PC ranges, a line
// table, and the four-way DIE-defect classifier of the paper (Missing /
// Hollow / Incomplete / Incorrect).
//
// The shapes mirror real DWARF at the granularity the paper's analysis
// needs: DW_AT_const_value vs DW_AT_location, range coverage of program
// counters, and the concrete/abstract duality of inlined subroutines.
package dwarf

import "fmt"

// Tag identifies the kind of a DIE.
type Tag int

// DIE tags.
const (
	TagCompileUnit Tag = iota
	TagSubprogram
	TagVariable
	TagFormalParameter
	TagInlinedSubroutine
	TagLexicalBlock
)

var tagNames = [...]string{
	"DW_TAG_compile_unit", "DW_TAG_subprogram", "DW_TAG_variable",
	"DW_TAG_formal_parameter", "DW_TAG_inlined_subroutine", "DW_TAG_lexical_block",
}

func (t Tag) String() string { return tagNames[t] }

// LocKind describes how a location expression yields a value.
type LocKind int

// Location kinds.
const (
	// LocReg: the value lives in machine register Value.
	LocReg LocKind = iota
	// LocSlot: the value lives in frame slot Value of the current frame.
	LocSlot
	// LocConst: the value is the constant Value (DW_AT_const_value via
	// location list, used when a variable holds different constants over
	// different ranges).
	LocConst
)

func (k LocKind) String() string {
	return [...]string{"reg", "slot", "const"}[k]
}

// LocRange is one entry of a location list: within [Lo, Hi) the variable is
// described by (Kind, Value).
type LocRange struct {
	Lo, Hi uint32
	Kind   LocKind
	Value  int64
}

// Covers reports whether pc falls inside the range. Empty ranges (Lo == Hi)
// cover nothing — though one of the simulated debuggers disagrees.
func (r LocRange) Covers(pc uint32) bool { return pc >= r.Lo && pc < r.Hi }

// PCRange is a half-open code range.
type PCRange struct {
	Lo, Hi uint32
}

// Covers reports whether pc is in the range.
func (r PCRange) Covers(pc uint32) bool { return pc >= r.Lo && pc < r.Hi }

// DIE is one debug information entry.
type DIE struct {
	ID       int
	Tag      Tag
	Name     string // variable or function name; callee name for inlined
	DeclLine int
	CallLine int  // TagInlinedSubroutine: line of the inlined call
	Abstract bool // abstract instance (no code ranges)
	// AbstractOrigin references the ID of the abstract DIE this concrete
	// DIE instantiates (0 = none).
	AbstractOrigin int
	// ConstValue is the whole-lifetime DW_AT_const_value (nil if absent).
	ConstValue *int64
	// Loc is the location list (empty for hollow DIEs).
	Loc []LocRange
	// Ranges are the code ranges of subprograms and inlined subroutines.
	Ranges   []PCRange
	Children []*DIE
}

// AddChild appends c and returns it.
func (d *DIE) AddChild(c *DIE) *DIE {
	d.Children = append(d.Children, c)
	return c
}

// CoversPC reports whether any code range of d covers pc.
func (d *DIE) CoversPC(pc uint32) bool {
	for _, r := range d.Ranges {
		if r.Covers(pc) {
			return true
		}
	}
	return false
}

// LocAt returns the location entry covering pc, if any.
func (d *DIE) LocAt(pc uint32) (LocRange, bool) {
	for _, r := range d.Loc {
		if r.Covers(pc) {
			return r, true
		}
	}
	return LocRange{}, false
}

// Walk visits d and all descendants in pre-order.
func (d *DIE) Walk(fn func(*DIE)) {
	fn(d)
	for _, c := range d.Children {
		c.Walk(fn)
	}
}

// Find returns the first descendant (or d itself) satisfying pred.
func (d *DIE) Find(pred func(*DIE) bool) *DIE {
	var out *DIE
	d.Walk(func(x *DIE) {
		if out == nil && pred(x) {
			out = x
		}
	})
	return out
}

// LineEntry maps a program counter to a source line.
type LineEntry struct {
	PC   uint32
	Line int
}

// Info is the complete debug information of one executable.
type Info struct {
	CU    *DIE
	Lines []LineEntry
	// NLines is the number of source lines of the compiled program.
	NLines int

	nextID int
}

// NewInfo creates an Info with an empty compile unit.
func NewInfo() *Info {
	i := &Info{nextID: 1}
	i.CU = &DIE{ID: i.NewID(), Tag: TagCompileUnit}
	return i
}

// NewID allocates a DIE identifier.
func (i *Info) NewID() int {
	id := i.nextID
	i.nextID++
	return id
}

// ByID returns the DIE with the given id, or nil.
func (i *Info) ByID(id int) *DIE {
	return i.CU.Find(func(d *DIE) bool { return d.ID == id })
}

// PCToLine returns the source line of pc (0 when unmapped).
func (i *Info) PCToLine(pc uint32) int {
	line := 0
	for _, e := range i.Lines {
		if e.PC > pc {
			break
		}
		line = e.Line
	}
	return line
}

// LinePCs returns the address of each line-table entry for the line, i.e.
// the breakpoint candidates (several when optimization duplicated the line).
func (i *Info) LinePCs(line int) []uint32 {
	var out []uint32
	for _, e := range i.Lines {
		if e.Line == line {
			out = append(out, e.PC)
		}
	}
	return out
}

// SteppableLines returns the set of lines present in the line table.
func (i *Info) SteppableLines() map[int]bool {
	out := map[int]bool{}
	for _, e := range i.Lines {
		out[e.Line] = true
	}
	return out
}

// Subprogram returns the concrete (non-abstract) subprogram DIE covering pc.
func (i *Info) Subprogram(pc uint32) *DIE {
	for _, c := range i.CU.Children {
		if c.Tag == TagSubprogram && !c.Abstract && c.CoversPC(pc) {
			return c
		}
	}
	return nil
}

// SubprogramByName returns the concrete subprogram DIE named name.
func (i *Info) SubprogramByName(name string) *DIE {
	for _, c := range i.CU.Children {
		if c.Tag == TagSubprogram && !c.Abstract && c.Name == name {
			return c
		}
	}
	return nil
}

// AbstractSubprogram returns the abstract instance for the named function.
func (i *Info) AbstractSubprogram(name string) *DIE {
	for _, c := range i.CU.Children {
		if c.Tag == TagSubprogram && c.Abstract && c.Name == name {
			return c
		}
	}
	return nil
}

// InlineChainAt returns the chain of inlined-subroutine DIEs containing pc,
// outermost first.
func (i *Info) InlineChainAt(pc uint32) []*DIE {
	sub := i.Subprogram(pc)
	if sub == nil {
		return nil
	}
	var chain []*DIE
	cur := sub
	for {
		var next *DIE
		for _, c := range cur.Children {
			if c.Tag == TagInlinedSubroutine && c.CoversPC(pc) {
				next = c
				break
			}
			if c.Tag == TagLexicalBlock && c.CoversPC(pc) {
				for _, cc := range c.Children {
					if cc.Tag == TagInlinedSubroutine && cc.CoversPC(pc) {
						next = cc
						break
					}
				}
			}
		}
		if next == nil {
			return chain
		}
		chain = append(chain, next)
		cur = next
	}
}

func (d *DIE) String() string {
	s := fmt.Sprintf("%s %q", d.Tag, d.Name)
	if d.Abstract {
		s += " (abstract)"
	}
	if d.ConstValue != nil {
		s += fmt.Sprintf(" const=%d", *d.ConstValue)
	}
	if len(d.Loc) > 0 {
		s += fmt.Sprintf(" loc=%v", d.Loc)
	}
	return s
}

func (r LocRange) String() string {
	return fmt.Sprintf("[%d,%d)%s:%d", r.Lo, r.Hi, r.Kind, r.Value)
}
