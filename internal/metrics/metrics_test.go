package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/debugger"
)

func stop(line int, vars map[string]debugger.VarState) *debugger.Stop {
	s := &debugger.Stop{Line: line}
	for n, st := range vars {
		s.Vars = append(s.Vars, debugger.Variable{Name: n, State: st})
	}
	return s
}

func TestComputeIdenticalTracesScoreOne(t *testing.T) {
	tr := &debugger.Trace{Stops: map[int]*debugger.Stop{
		3: stop(3, map[string]debugger.VarState{"x": debugger.Available}),
		4: stop(4, map[string]debugger.VarState{"x": debugger.Available, "y": debugger.Available}),
	}}
	m := Compute(tr, tr)
	if m.LineCoverage != 1 || m.Availability != 1 || m.Product != 1 {
		t.Errorf("self comparison = %+v, want all 1", m)
	}
}

func TestComputeLineLoss(t *testing.T) {
	ref := &debugger.Trace{Stops: map[int]*debugger.Stop{
		3: stop(3, map[string]debugger.VarState{"x": debugger.Available}),
		4: stop(4, map[string]debugger.VarState{"x": debugger.Available}),
		5: stop(5, map[string]debugger.VarState{"x": debugger.Available}),
		6: stop(6, map[string]debugger.VarState{"x": debugger.Available}),
	}}
	opt := &debugger.Trace{Stops: map[int]*debugger.Stop{
		3: ref.Stops[3],
		5: ref.Stops[5],
	}}
	m := Compute(opt, ref)
	if m.LineCoverage != 0.5 {
		t.Errorf("line coverage = %v, want 0.5", m.LineCoverage)
	}
	if m.Availability != 1 {
		t.Errorf("availability on shared lines = %v, want 1", m.Availability)
	}
	if m.Product != 0.5 {
		t.Errorf("product = %v, want 0.5", m.Product)
	}
}

func TestComputeAvailabilityLoss(t *testing.T) {
	ref := &debugger.Trace{Stops: map[int]*debugger.Stop{
		3: stop(3, map[string]debugger.VarState{"x": debugger.Available, "y": debugger.Available}),
	}}
	opt := &debugger.Trace{Stops: map[int]*debugger.Stop{
		3: stop(3, map[string]debugger.VarState{"x": debugger.Available, "y": debugger.OptimizedOut}),
	}}
	m := Compute(opt, ref)
	if m.Availability != 0.5 {
		t.Errorf("availability = %v, want 0.5", m.Availability)
	}
}

func TestComputeSkipsVarlessLines(t *testing.T) {
	ref := &debugger.Trace{Stops: map[int]*debugger.Stop{
		3: stop(3, nil), // no variables: the ratio is undefined there
		4: stop(4, map[string]debugger.VarState{"x": debugger.Available}),
	}}
	opt := &debugger.Trace{Stops: map[int]*debugger.Stop{
		3: stop(3, nil),
		4: stop(4, map[string]debugger.VarState{"x": debugger.Available}),
	}}
	if m := Compute(opt, ref); m.Availability != 1 {
		t.Errorf("availability = %v, want 1", m.Availability)
	}
}

func TestMean(t *testing.T) {
	ms := []Metrics{
		{LineCoverage: 1, Availability: 0.5, Product: 0.5},
		{LineCoverage: 0.5, Availability: 1, Product: 0.5},
	}
	mean := Mean(ms)
	if mean.LineCoverage != 0.75 || mean.Availability != 0.75 || mean.Product != 0.5 {
		t.Errorf("mean = %+v", mean)
	}
	zero := Mean(nil)
	if zero.LineCoverage != 0 {
		t.Errorf("empty mean = %+v", zero)
	}
}

func TestMetricsBoundedProperty(t *testing.T) {
	// Whatever the traces, all metrics stay within [0, 1].
	f := func(optAvail []bool, lines []uint8) bool {
		ref := &debugger.Trace{Stops: map[int]*debugger.Stop{}}
		opt := &debugger.Trace{Stops: map[int]*debugger.Stop{}}
		for i, l := range lines {
			line := int(l)%20 + 1
			ref.Stops[line] = stop(line, map[string]debugger.VarState{"x": debugger.Available})
			st := debugger.OptimizedOut
			if i < len(optAvail) && optAvail[i] {
				st = debugger.Available
			}
			if i%3 != 0 {
				opt.Stops[line] = stop(line, map[string]debugger.VarState{"x": st})
			}
		}
		m := Compute(opt, ref)
		ok := func(v float64) bool { return v >= 0 && v <= 1 && !math.IsNaN(v) }
		return ok(m.LineCoverage) && ok(m.Availability) && ok(m.Product)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
