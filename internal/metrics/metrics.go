// Package metrics computes the paper's quantitative-study measures (§2):
// line coverage and availability of variables of an optimized executable
// relative to its -O0 counterpart, plus their product.
package metrics

import (
	"repro/internal/debugger"
)

// Metrics holds the three per-program measures.
type Metrics struct {
	LineCoverage float64
	Availability float64
	Product      float64
}

// Compute derives the metrics for an optimized trace against the
// unoptimized reference trace of the same program.
//
//   - Line coverage: unique source lines the debugger stepped on, relative
//     to the reference.
//   - Availability of variables: for each line stepped in both traces, the
//     ratio of available variables to the reference's, averaged.
func Compute(opt, ref *debugger.Trace) Metrics {
	m := Metrics{}
	refLines := ref.HitLines()
	if len(refLines) > 0 {
		hit := 0
		for _, l := range refLines {
			if opt.Stops[l] != nil {
				hit++
			}
		}
		m.LineCoverage = float64(hit) / float64(len(refLines))
	}
	var sum float64
	var n int
	for _, l := range refLines {
		so := opt.Stops[l]
		sr := ref.Stops[l]
		if so == nil || sr == nil {
			continue
		}
		refAvail := countAvailable(sr)
		if refAvail == 0 {
			continue // no variables to compare on this line
		}
		optAvail := 0
		for _, v := range sr.Vars {
			if v.State != debugger.Available {
				continue
			}
			if so.Var(v.Name).State == debugger.Available {
				optAvail++
			}
		}
		sum += float64(optAvail) / float64(refAvail)
		n++
	}
	if n > 0 {
		m.Availability = sum / float64(n)
	}
	m.Product = m.LineCoverage * m.Availability
	return m
}

func countAvailable(s *debugger.Stop) int {
	n := 0
	for _, v := range s.Vars {
		if v.State == debugger.Available {
			n++
		}
	}
	return n
}

// Mean averages a set of per-program metrics (the paper's global average
// over the testing pool).
func Mean(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var out Metrics
	for _, m := range ms {
		out.LineCoverage += m.LineCoverage
		out.Availability += m.Availability
		out.Product += m.Product
	}
	n := float64(len(ms))
	out.LineCoverage /= n
	out.Availability /= n
	out.Product /= n
	return out
}
