// Package reduce shrinks a test program while preserving a property —
// normally "the conjecture violation still occurs AND disabling the culprit
// pass still makes it disappear", the paper's C-Reduce augmentation (§4.4)
// that keeps the by-group prioritisation sound.
package reduce

import (
	"repro/internal/compiler"
	"repro/internal/debugger"
	"repro/internal/minic"
	"repro/internal/triage"
)

// Predicate reports whether a candidate program is still interesting. The
// candidate is laid out and type-checked before the predicate runs.
type Predicate func(*minic.Program) bool

// Reduce repeatedly applies shrinking transformations, keeping those that
// preserve the predicate, until a fixpoint. The input program is not
// modified.
//
// The scan resumes from the last accepted transformation instead of
// restarting at candidate 0 after every accepted shrink: candidates are
// generated in a stable structural order, so the prefix before the
// accepted index was just rejected against a strictly larger program and
// is very unlikely to pass now. Earlier candidates that a shrink newly
// enables are caught by the wrap-around pass, which rescans from 0 until
// one full scan accepts nothing — the same fixpoint guarantee as the
// restart-from-scratch strategy, without its quadratic rescan cost.
func Reduce(prog *minic.Program, keep Predicate) *minic.Program {
	cur := minic.Clone(prog)
	start := 0
	for {
		// Candidates are enumerated as cheap edit descriptors and only
		// materialized (cloned + transformed) when actually tried: a scan
		// costs one program clone per tried candidate, not per possible
		// candidate.
		edits := candidateEdits(cur)
		if start > len(edits) {
			start = len(edits)
		}
		accepted := -1
		for i := start; i < len(edits); i++ {
			attempt := applyEdit(cur, edits[i])
			if attempt == nil {
				continue
			}
			minic.AssignLines(attempt)
			if minic.Check(attempt) != nil {
				continue
			}
			if keep(attempt) {
				cur = attempt
				accepted = i
				break
			}
		}
		switch {
		case accepted >= 0:
			// Continue from the accepted position on the regenerated
			// candidate list of the smaller program.
			start = accepted
		case start == 0:
			// A full scan accepted nothing: fixpoint.
			return cur
		default:
			// The tail is exhausted; wrap around for the earlier
			// candidates the shrinks may have enabled.
			start = 0
		}
	}
}

// ViolationPredicate builds the paper's culprit-preserving predicate: the
// violation variable must still violate its conjecture at the given level,
// and compiling with the culprit pass disabled must make the violation
// disappear (§4.4's double compilation per step).
func ViolationPredicate(cfg compiler.Config, conj int, varName, culprit string) Predicate {
	return ViolationPredicateWith(cfg, conj, varName, culprit, nil, nil, 0)
}

// ViolationPredicateWith is ViolationPredicate with a pluggable compiler
// entry point, debugger and VM step budget (nil/0 mean compiler.Compile,
// the family's native debugger and vm.DefaultMaxStep). The engine injects
// its caching compile so the reducer's first predicate evaluation — on a
// clone of the already-checked program — reuses the cached build, its
// configured debugger so WithDebugger overrides hold through reduction,
// and its WithStepBudget setting.
func ViolationPredicateWith(cfg compiler.Config, conj int, varName, culprit string, compile triage.CompileFn, dbg debugger.Debugger, stepBudget int) Predicate {
	return func(p *minic.Program) bool {
		key, ok := findViolation(p, cfg, conj, varName, compile, dbg, stepBudget)
		if !ok {
			return false
		}
		if culprit == "" {
			return true
		}
		tg := makeTarget(p, cfg, key, compile, dbg, stepBudget)
		occ, err := triage.Occurs(tg, compiler.Options{Disabled: map[string]bool{culprit: true}})
		return err == nil && !occ
	}
}

// edit is one shrinking transformation described without materializing the
// candidate program: the kind of shrink plus the block path / index it
// applies at.
type edit struct {
	kind editKind
	path string // block path for statement-level edits
	idx  int    // statement / function / global index
}

type editKind int

const (
	editDelStmt    editKind = iota // remove one statement
	editDropFunc                   // drop a whole function (not main)
	editDropGlobal                 // drop a global
	editUnwrap                     // replace a control structure by its body
)

// candidateEdits enumerates one-step shrinks of prog, cheapest first, in
// the same stable structural order the reducer's resumable scan relies on.
func candidateEdits(prog *minic.Program) []edit {
	var out []edit
	// Remove one statement anywhere.
	forEachBlock(prog, func(_ *minic.Program, b *minic.Block, path string) {
		for i := range b.Stmts {
			out = append(out, edit{kind: editDelStmt, path: path, idx: i})
		}
	})
	// Drop a whole function (not main).
	for fi, f := range prog.Funcs {
		if f.Name == "main" {
			continue
		}
		out = append(out, edit{kind: editDropFunc, idx: fi})
	}
	// Drop a global.
	for gi := range prog.Globals {
		out = append(out, edit{kind: editDropGlobal, idx: gi})
	}
	// Unwrap control structures: replace if/for/while bodies at top level.
	forEachBlock(prog, func(_ *minic.Program, b *minic.Block, path string) {
		for i, s := range b.Stmts {
			switch s.(type) {
			case *minic.IfStmt, *minic.ForStmt, *minic.WhileStmt, *minic.Block, *minic.LabeledStmt:
				out = append(out, edit{kind: editUnwrap, path: path, idx: i})
			}
		}
	})
	return out
}

// applyEdit materializes one candidate: a clone of prog with e applied.
// It returns nil when the edit no longer resolves (it never does for edits
// enumerated from prog itself).
func applyEdit(prog *minic.Program, e edit) *minic.Program {
	c := minic.Clone(prog)
	switch e.kind {
	case editDelStmt:
		cb := resolveBlock(c, e.path)
		if cb == nil || e.idx >= len(cb.Stmts) {
			return nil
		}
		cb.Stmts = append(cb.Stmts[:e.idx:e.idx], cb.Stmts[e.idx+1:]...)
	case editDropFunc:
		if e.idx >= len(c.Funcs) {
			return nil
		}
		c.Funcs = append(c.Funcs[:e.idx:e.idx], c.Funcs[e.idx+1:]...)
	case editDropGlobal:
		if e.idx >= len(c.Globals) {
			return nil
		}
		c.Globals = append(c.Globals[:e.idx:e.idx], c.Globals[e.idx+1:]...)
	case editUnwrap:
		cb := resolveBlock(c, e.path)
		if cb == nil || e.idx >= len(cb.Stmts) {
			return nil
		}
		// The replacement statements already belong to the clone, so they
		// splice in directly without another copy.
		var repl []minic.Stmt
		switch x := cb.Stmts[e.idx].(type) {
		case *minic.IfStmt:
			repl = x.Then.Stmts
		case *minic.ForStmt:
			repl = x.Body.Stmts
		case *minic.WhileStmt:
			repl = x.Body.Stmts
		case *minic.Block:
			repl = x.Stmts
		case *minic.LabeledStmt:
			repl = []minic.Stmt{x.Stmt}
		default:
			return nil
		}
		rest := append([]minic.Stmt{}, cb.Stmts[e.idx+1:]...)
		cb.Stmts = append(append(cb.Stmts[:e.idx:e.idx], repl...), rest...)
	}
	return c
}

// candidates materializes every one-step shrink of prog, cheapest first.
// Reduce itself applies edits lazily; this is for fixpoint verification.
func candidates(prog *minic.Program) []*minic.Program {
	var out []*minic.Program
	for _, e := range candidateEdits(prog) {
		if c := applyEdit(prog, e); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// forEachBlock visits every block of the program with a stable path string
// so the same block can be located in a clone.
func forEachBlock(prog *minic.Program, visit func(*minic.Program, *minic.Block, string)) {
	for _, f := range prog.Funcs {
		if f.Body == nil {
			continue
		}
		var walk func(b *minic.Block, path string)
		walk = func(b *minic.Block, path string) {
			visit(prog, b, path)
			for i, s := range b.Stmts {
				sub := func(bb *minic.Block, tag string) {
					if bb != nil {
						walk(bb, pathJoin(path, i, tag))
					}
				}
				switch x := s.(type) {
				case *minic.IfStmt:
					sub(x.Then, "t")
					sub(x.Else, "e")
				case *minic.ForStmt:
					sub(x.Body, "b")
				case *minic.WhileStmt:
					sub(x.Body, "b")
				case *minic.Block:
					sub(x, "k")
				case *minic.LabeledStmt:
					if inner, ok := x.Stmt.(*minic.Block); ok {
						sub(inner, "k")
					}
					if inner, ok := x.Stmt.(*minic.IfStmt); ok {
						sub(inner.Then, "t")
						sub(inner.Else, "e")
					}
				}
			}
		}
		walk(f.Body, f.Name)
	}
}

func pathJoin(path string, i int, tag string) string {
	return path + "/" + tag + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// resolveBlock finds the block named by path in a cloned program.
func resolveBlock(prog *minic.Program, path string) *minic.Block {
	var found *minic.Block
	forEachBlock(prog, func(_ *minic.Program, b *minic.Block, p string) {
		if p == path {
			found = b
		}
	})
	return found
}
