package reduce

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/conjecture"
	"repro/internal/debugger"
	"repro/internal/fuzzgen"
	"repro/internal/minic"
)

func TestReduceShrinksWhilePreservingProperty(t *testing.T) {
	prog := minic.MustParse(`
int g;
int unused1;
int unused2;
void deadFunc(void) { unused1 = 3; }
int main(void) {
  int a = 1;
  int b = 2;
  int c = 3;
  g = a;
  g = b;
  g = c;
  return 0;
}`)
	// Property: the program still contains a store of c to g.
	pred := func(p *minic.Program) bool {
		return strings.Contains(minic.Render(p), "g = c;")
	}
	small := Reduce(prog, pred)
	if !pred(small) {
		t.Fatal("property lost")
	}
	before := len(strings.Split(minic.Render(prog), "\n"))
	after := len(strings.Split(minic.Render(small), "\n"))
	if after >= before {
		t.Errorf("no shrink: %d -> %d lines", before, after)
	}
	if small.Func("deadFunc") != nil {
		t.Error("dead function not removed")
	}
	// Original untouched.
	if prog.Func("deadFunc") == nil {
		t.Error("reduction mutated the input program")
	}
}

func TestReduceRejectsInvalidCandidates(t *testing.T) {
	// Removing the declaration of a used variable must be rejected by the
	// type checker, not crash the reducer.
	prog := minic.MustParse(`
int g;
int main(void) {
  int x = 7;
  g = x;
  return 0;
}`)
	pred := func(p *minic.Program) bool {
		return strings.Contains(minic.Render(p), "g = x;")
	}
	small := Reduce(prog, pred)
	if err := minic.Check(small); err != nil {
		t.Fatalf("reducer produced invalid program: %v", err)
	}
}

func TestViolationPredicateEndToEnd(t *testing.T) {
	// Find a real violation, then reduce preserving it with its culprit.
	cfg := compiler.Config{Family: compiler.CL, Version: "trunk", Level: "Og"}
	for seed := int64(1000); seed < 1050; seed++ {
		prog := fuzzgen.GenerateSeed(seed)
		facts := analysis.Analyze(prog)
		res, err := compiler.Compile(prog, cfg, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := debugger.Record(res.Exe, debugger.NewLLDB(compiler.DebuggerDefects("lldb")))
		if err != nil {
			t.Fatal(err)
		}
		vs := conjecture.CheckAll(facts, tr)
		if len(vs) == 0 {
			continue
		}
		v := vs[0]
		pred := ViolationPredicate(cfg, v.Conjecture, v.Var, "")
		if !pred(minic.Clone(prog)) {
			t.Fatalf("predicate false on the original program for %v", v)
		}
		small := Reduce(prog, pred)
		if !pred(small) {
			t.Fatal("reduction lost the violation")
		}
		if len(minic.Render(small)) > len(minic.Render(prog)) {
			t.Error("reduction grew the program")
		}
		return
	}
	t.Skip("no violation found in the seed range")
}
