package reduce

import (
	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/conjecture"
	"repro/internal/debugger"
	"repro/internal/minic"
	"repro/internal/triage"
)

// findViolation compiles p under cfg, traces it with the family's native
// debugger, and looks for a violation of the given conjecture on the given
// variable (any line: reduction moves line numbers around, so the paper's
// "same line, same optimization" criterion translates here to "same
// variable, same conjecture, culprit preserved").
func findViolation(p *minic.Program, cfg compiler.Config, conj int, varName string, compile triage.CompileFn, dbg debugger.Debugger, stepBudget int) (string, bool) {
	if compile == nil {
		compile = func(p *minic.Program, cfg compiler.Config, o compiler.Options) (*compiler.Result, error) {
			return compiler.Compile(p, cfg, o)
		}
	}
	res, err := compile(p, cfg, compiler.Options{})
	if err != nil {
		return "", false
	}
	if dbg == nil {
		if compiler.NativeDebugger(cfg.Family) == "gdb" {
			dbg = debugger.NewGDB(compiler.DebuggerDefects("gdb"))
		} else {
			dbg = debugger.NewLLDB(compiler.DebuggerDefects("lldb"))
		}
	}
	tr, err := debugger.RecordWith(res.Exe, dbg, debugger.RecordOpts{StepBudget: stepBudget})
	if err != nil {
		return "", false
	}
	facts := analysis.Analyze(p)
	for _, v := range conjecture.CheckAll(facts, tr) {
		if v.Conjecture == conj && v.Var == varName {
			return v.Key(), true
		}
	}
	return "", false
}

func makeTarget(p *minic.Program, cfg compiler.Config, key string, compile triage.CompileFn, dbg debugger.Debugger, stepBudget int) triage.Target {
	return triage.Target{Prog: p, Facts: analysis.Analyze(p), Cfg: cfg, Key: key,
		Compile: compile, Debugger: dbg, StepBudget: stepBudget}
}
