package reduce

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/fuzzgen"
	"repro/internal/ir"
	"repro/internal/minic"
)

// countStmts counts every statement in the program, recursing into nested
// blocks, so the benchmark below can insist on a genuinely large input.
func countStmts(prog *minic.Program) int {
	var blk func(b *minic.Block) int
	var one func(s minic.Stmt) int
	one = func(s minic.Stmt) int {
		n := 1
		switch x := s.(type) {
		case *minic.IfStmt:
			n += blk(x.Then)
			if x.Else != nil {
				n += blk(x.Else)
			}
		case *minic.ForStmt:
			n += blk(x.Body)
		case *minic.WhileStmt:
			n += blk(x.Body)
		case *minic.Block:
			n += blk(x) - 1 // the block itself was already counted
		case *minic.LabeledStmt:
			n += one(x.Stmt) - 1
		}
		return n
	}
	blk = func(b *minic.Block) int {
		n := 0
		for _, s := range b.Stmts {
			n += one(s)
		}
		return n
	}
	total := 0
	for _, f := range prog.Funcs {
		if f.Body != nil {
			total += blk(f.Body)
		}
	}
	return total
}

// largeFuzzedProgram returns a fuzzed program of at least 200 statements —
// the scale at which the old restart-from-candidate-0 reduction loop went
// visibly quadratic.
func largeFuzzedProgram(tb testing.TB) *minic.Program {
	tb.Helper()
	for seed := int64(1); seed < 200; seed++ {
		o := fuzzgen.Options{
			Seed:       seed,
			MaxGlobals: 4, MaxArrays: 2, MaxHelpers: 3,
			MaxStmts: 8, MaxDepth: 2, MaxLoopNest: 2,
			MaxLoopBound: 4, MaxExprDepth: 2,
			Volatile: true, Pointers: true, OpaqueCalls: true,
			Helpers: true, AssignExprs: true, NestedScopes: true,
			Gotos: true, ShortCircuit: true, Unsigned: true,
			NarrowTypes: true, IndexArith: true, ConstFoldBait: true,
		}
		prog := fuzzgen.Generate(o)
		if n := countStmts(prog); n >= 200 && n <= 300 {
			return prog
		}
	}
	tb.Fatal("no seed produced a 200-statement program")
	return nil
}

// keepAllG1Stores builds a cheap structural predicate that pins every
// store to g1 scattered through the program. Many candidates fail it, so
// the reduction repeatedly pays for the failing prefix — the access
// pattern where the old restart-from-candidate-0 loop went quadratic.
func keepAllG1Stores(prog *minic.Program) (Predicate, bool) {
	want := strings.Count(minic.Render(prog), "g1 =")
	return func(p *minic.Program) bool {
		return strings.Count(minic.Render(p), "g1 =") >= want
	}, want > 0
}

// BenchmarkReduce200Stmts measures a full reduction of a ~200-statement
// fuzzed program under a cheap structural predicate, so the timing is
// dominated by the reducer's own candidate generation and scan order
// rather than by compilations.
func BenchmarkReduce200Stmts(b *testing.B) {
	prog := largeFuzzedProgram(b)
	b.Logf("input: %d statements", countStmts(prog))
	pred, ok := keepAllG1Stores(prog)
	if !ok {
		b.Skip("probe program has no store to g1")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		small := Reduce(prog, pred)
		if !pred(small) {
			b.Fatal("reduction lost the property")
		}
	}
}

// countG1StoresIR counts stores to the global g1 in lowered IR — the
// frontend-level analogue of keepAllG1Stores, forcing every reduction
// candidate through the frontend.
func countG1StoresIR(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStoreG && in.G != nil && in.G.Name == "g1" {
					n++
				}
			}
		}
	}
	return n
}

// manyFunctionProgram builds a ~200-statement program spread over many
// mid-sized functions — the corpus shape the function-granular frontend
// targets: fuzz and hunt corpora carry helpers, and a reduction candidate
// edits exactly one of them while every other body stays byte-identical.
func manyFunctionProgram(tb testing.TB) *minic.Program {
	tb.Helper()
	var sb strings.Builder
	sb.WriteString("int g1 = 1;\nvolatile int g2;\nint a[8] = {1, 2, 3, 4, 5, 6, 7, 8};\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&sb, "int fn%d(int x) {\n  int acc = %d;\n  int t = x + %d;\n  int i = 0;\n  g1 = g1 + t;\n", i, i, i)
		for r := 0; r < 4; r++ {
			fmt.Fprintf(&sb, `  for (i = 0; i < 8; i = i + 1) {
    acc = acc + a[i] * x;
    t = t + acc - %d;
    if (acc > 100) {
      acc = acc - g1;
      g2 = t;
    }
  }
`, r)
		}
		sb.WriteString("  g1 = g1 + acc;\n  g2 = acc;\n  return acc;\n}\n")
	}
	sb.WriteString("int main(void) {\n  int s = 0;\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&sb, "  s = s + fn%d(s);\n", i)
	}
	sb.WriteString("  g1 = s;\n  return s;\n}\n")
	prog, err := minic.Parse(sb.String())
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	minic.AssignLines(prog)
	if err := minic.Check(prog); err != nil {
		tb.Fatalf("check: %v", err)
	}
	return prog
}

// BenchmarkReduceFrontendPredicate measures a full reduction under a
// frontend-backed predicate — every candidate is lowered to IR and the
// property checked there — comparing the whole-program frontend against
// the function-granular incremental frontend sharing one per-function
// cache across the whole reduction. With nothing but lowering in the
// predicate this is the incremental tier's worst case: candidate cloning,
// layout and rendering dominate the loop, and the per-function savings
// roughly cancel against assembly overhead (the tier's win shows at the
// frontend stage itself — BenchmarkFrontendIncremental — and in engine
// workloads where the lowered module feeds optimize/codegen/trace work).
func BenchmarkReduceFrontendPredicate(b *testing.B) {
	prog := manyFunctionProgram(b)
	b.Logf("input: %d statements across %d functions", countStmts(prog), len(prog.Funcs))
	base, err := compiler.Frontend(prog)
	if err != nil {
		b.Fatal(err)
	}
	want := countG1StoresIR(base)
	if want == 0 {
		b.Skip("probe program has no IR store to g1")
	}
	// Both predicates render the candidate first, as the engine does for
	// every program it touches (the module-level cache key is the rendered
	// source), so the comparison isolates the lowering stage the way the
	// real pipeline sees it. The incremental side shares a bounded LRU
	// across the reduction, mirroring the engine's shared cache.
	wholePred := func(p *minic.Program) bool {
		_ = minic.Render(p)
		m, err := compiler.Frontend(p)
		return err == nil && countG1StoresIR(m) >= want
	}
	incrementalReduce := func() *minic.Program {
		fnc := lruFnCache{c: cache.New[string, any](4096)}
		return Reduce(prog, func(p *minic.Program) bool {
			m, _, err := compiler.FrontendIncrementalSrc(p, minic.Render(p), fnc)
			return err == nil && countG1StoresIR(m) >= want
		})
	}
	// Both predicates must drive the reduction to the same fixpoint.
	if w, i := minic.Render(Reduce(prog, wholePred)), minic.Render(incrementalReduce()); w != i {
		b.Fatalf("whole and incremental predicates reduced differently:\n%s\nvs\n%s", w, i)
	}
	b.Run("whole", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			small := Reduce(prog, wholePred)
			if !wholePred(small) {
				b.Fatal("reduction lost the property")
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			small := incrementalReduce()
			if countG1StoresIR(mustFrontend(b, small)) < want {
				b.Fatal("reduction lost the property")
			}
		}
	})
}

// lruFnCache backs the incremental frontend with a bounded LRU, the same
// shape the engine uses, so a long reduction cannot grow the per-function
// tier without bound.
type lruFnCache struct{ c *cache.Cache[string, any] }

func (l lruFnCache) GetFunc(key string) (*compiler.FnArtifact, bool) {
	v, ok := l.c.Get("fn|" + key)
	if !ok {
		return nil, false
	}
	return v.(*compiler.FnArtifact), true
}

func (l lruFnCache) AddFunc(key string, a *compiler.FnArtifact) { l.c.Add("fn|"+key, a) }

func (l lruFnCache) GetGlobals(key string) (*compiler.GlobalsTable, bool) {
	v, ok := l.c.Get("g|" + key)
	if !ok {
		return nil, false
	}
	return v.(*compiler.GlobalsTable), true
}

func (l lruFnCache) AddGlobals(key string, t *compiler.GlobalsTable) { l.c.Add("g|"+key, t) }

func mustFrontend(tb testing.TB, p *minic.Program) *ir.Module {
	m, err := compiler.Frontend(p)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestReduceReachesFixpoint pins the resumable scan's contract: the result
// of Reduce is a true fixpoint — no single candidate transformation of it
// still satisfies the predicate — exactly as the restart-from-scratch
// strategy guaranteed.
func TestReduceReachesFixpoint(t *testing.T) {
	prog := largeFuzzedProgram(t)
	pred, ok := keepAllG1Stores(prog)
	if !ok {
		t.Skip("probe program has no store to g1")
	}
	small := Reduce(prog, pred)
	if !pred(small) {
		t.Fatal("reduction lost the property")
	}
	for _, attempt := range candidates(small) {
		minic.AssignLines(attempt)
		if minic.Check(attempt) != nil {
			continue
		}
		if pred(attempt) {
			t.Fatalf("not a fixpoint: a candidate still satisfies the predicate:\n%s",
				minic.Render(attempt))
		}
	}
	t.Logf("reduced %d -> %d statements", countStmts(prog), countStmts(small))
}
