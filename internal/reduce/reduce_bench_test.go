package reduce

import (
	"strings"
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/minic"
)

// countStmts counts every statement in the program, recursing into nested
// blocks, so the benchmark below can insist on a genuinely large input.
func countStmts(prog *minic.Program) int {
	var blk func(b *minic.Block) int
	var one func(s minic.Stmt) int
	one = func(s minic.Stmt) int {
		n := 1
		switch x := s.(type) {
		case *minic.IfStmt:
			n += blk(x.Then)
			if x.Else != nil {
				n += blk(x.Else)
			}
		case *minic.ForStmt:
			n += blk(x.Body)
		case *minic.WhileStmt:
			n += blk(x.Body)
		case *minic.Block:
			n += blk(x) - 1 // the block itself was already counted
		case *minic.LabeledStmt:
			n += one(x.Stmt) - 1
		}
		return n
	}
	blk = func(b *minic.Block) int {
		n := 0
		for _, s := range b.Stmts {
			n += one(s)
		}
		return n
	}
	total := 0
	for _, f := range prog.Funcs {
		if f.Body != nil {
			total += blk(f.Body)
		}
	}
	return total
}

// largeFuzzedProgram returns a fuzzed program of at least 200 statements —
// the scale at which the old restart-from-candidate-0 reduction loop went
// visibly quadratic.
func largeFuzzedProgram(tb testing.TB) *minic.Program {
	tb.Helper()
	for seed := int64(1); seed < 200; seed++ {
		o := fuzzgen.Options{
			Seed:       seed,
			MaxGlobals: 4, MaxArrays: 2, MaxHelpers: 3,
			MaxStmts: 8, MaxDepth: 2, MaxLoopNest: 2,
			MaxLoopBound: 4, MaxExprDepth: 2,
			Volatile: true, Pointers: true, OpaqueCalls: true,
			Helpers: true, AssignExprs: true, NestedScopes: true,
			Gotos: true, ShortCircuit: true, Unsigned: true,
			NarrowTypes: true, IndexArith: true, ConstFoldBait: true,
		}
		prog := fuzzgen.Generate(o)
		if n := countStmts(prog); n >= 200 && n <= 300 {
			return prog
		}
	}
	tb.Fatal("no seed produced a 200-statement program")
	return nil
}

// keepAllG1Stores builds a cheap structural predicate that pins every
// store to g1 scattered through the program. Many candidates fail it, so
// the reduction repeatedly pays for the failing prefix — the access
// pattern where the old restart-from-candidate-0 loop went quadratic.
func keepAllG1Stores(prog *minic.Program) (Predicate, bool) {
	want := strings.Count(minic.Render(prog), "g1 =")
	return func(p *minic.Program) bool {
		return strings.Count(minic.Render(p), "g1 =") >= want
	}, want > 0
}

// BenchmarkReduce200Stmts measures a full reduction of a ~200-statement
// fuzzed program under a cheap structural predicate, so the timing is
// dominated by the reducer's own candidate generation and scan order
// rather than by compilations.
func BenchmarkReduce200Stmts(b *testing.B) {
	prog := largeFuzzedProgram(b)
	b.Logf("input: %d statements", countStmts(prog))
	pred, ok := keepAllG1Stores(prog)
	if !ok {
		b.Skip("probe program has no store to g1")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		small := Reduce(prog, pred)
		if !pred(small) {
			b.Fatal("reduction lost the property")
		}
	}
}

// TestReduceReachesFixpoint pins the resumable scan's contract: the result
// of Reduce is a true fixpoint — no single candidate transformation of it
// still satisfies the predicate — exactly as the restart-from-scratch
// strategy guaranteed.
func TestReduceReachesFixpoint(t *testing.T) {
	prog := largeFuzzedProgram(t)
	pred, ok := keepAllG1Stores(prog)
	if !ok {
		t.Skip("probe program has no store to g1")
	}
	small := Reduce(prog, pred)
	if !pred(small) {
		t.Fatal("reduction lost the property")
	}
	for _, attempt := range candidates(small) {
		minic.AssignLines(attempt)
		if minic.Check(attempt) != nil {
			continue
		}
		if pred(attempt) {
			t.Fatalf("not a fixpoint: a candidate still satisfies the predicate:\n%s",
				minic.Render(attempt))
		}
	}
	t.Logf("reduced %d -> %d statements", countStmts(prog), countStmts(small))
}
