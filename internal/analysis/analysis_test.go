package analysis

import (
	"testing"

	"repro/internal/minic"
)

const src = `
int b[10][2];
volatile int c;
int a;
extern void opq(int x, int y);
int helper(int v) { return v; }
int main(void) {
  int i;
  int j;
  int k = 3;
  int addr;
  for (i = 0; i < 10; i = i + 1) {
    j = 0;
    a = b[i][j * 1];
    c = i + k;
  }
  opq(j, k);
  opq(i, 4);
  helper(k);
  k = 3;
  {
    int s = 1;
    a = s + k;
  }
  return 0;
}
`

func facts(t *testing.T) *Facts {
	t.Helper()
	return Analyze(minic.MustParse(src))
}

func TestOpaqueCalls(t *testing.T) {
	f := facts(t)
	if len(f.OpaqueCalls) != 2 {
		t.Fatalf("opaque calls = %d, want 2 (helper is not opaque)", len(f.OpaqueCalls))
	}
	first := f.OpaqueCalls[0]
	if first.Callee != "opq" || len(first.ArgVars) != 2 ||
		first.ArgVars[0] != "j" || first.ArgVars[1] != "k" {
		t.Errorf("first call = %+v", first)
	}
	second := f.OpaqueCalls[1]
	if len(second.ArgVars) != 1 || second.ArgVars[0] != "i" {
		t.Errorf("second call should track only the variable argument: %+v", second)
	}
}

func TestGlobalAssignConstituents(t *testing.T) {
	f := facts(t)
	var store *GlobalAssign
	for i := range f.GlobalAssigns {
		if f.GlobalAssigns[i].Global == "a" && len(f.GlobalAssigns[i].Constituents) >= 2 {
			store = &f.GlobalAssigns[i]
			break
		}
	}
	if store == nil {
		t.Fatalf("array store not found: %+v", f.GlobalAssigns)
	}
	byName := map[string]Constituent{}
	for _, c := range store.Constituents {
		byName[c.Name] = c
	}
	// i is the loop IV indexing global memory and used later.
	if c := byName["i"]; !c.Induction || !c.UsedLater || !c.Qualifies() {
		t.Errorf("i = %+v, want qualifying induction", c)
	}
	// j is constant (assigned only the literal 0).
	if c := byName["j"]; !c.Constant || !c.Qualifies() {
		t.Errorf("j = %+v, want constant", c)
	}
}

func TestVolatileStoreIsGlobalAssign(t *testing.T) {
	f := facts(t)
	found := false
	for _, ga := range f.GlobalAssigns {
		if ga.Global == "c" {
			found = true
		}
	}
	if !found {
		t.Error("volatile store not collected")
	}
}

func TestSimplifiableExclusion(t *testing.T) {
	p := minic.MustParse(`
int g;
int main(void) {
  int v = 3;
  g = v & 0;
  g = v * 0;
  g = v + 0;
  return 0;
}`)
	f := Analyze(p)
	simp, nonsimp := 0, 0
	for _, ga := range f.GlobalAssigns {
		if ga.Simplifiable {
			simp++
		} else {
			nonsimp++
		}
	}
	if simp != 2 {
		t.Errorf("simplifiable = %d, want 2 (v&0 and v*0)", simp)
	}
	if nonsimp != 1 {
		t.Errorf("non-simplifiable = %d, want 1 (v+0 needs v)", nonsimp)
	}
}

func TestInstancesDelimitedByAssignments(t *testing.T) {
	f := facts(t)
	var kInsts []Instance
	for _, in := range f.Instances {
		if in.Var == "k" && in.Func == "main" {
			kInsts = append(kInsts, in)
		}
	}
	if len(kInsts) != 2 {
		t.Fatalf("k instances = %d, want 2 (declaration init and reassignment)", len(kInsts))
	}
	if kInsts[0].EndLine != kInsts[1].StartLine {
		t.Errorf("instances must abut: %+v", kInsts)
	}
}

func TestScopeClipping(t *testing.T) {
	// A for-init-declared IV's instance must end with its loop.
	p := minic.MustParse(`
int g;
int main(void) {
  for (int i = 0; i < 3; i = i + 1) {
    g = g + i;
  }
  g = 0;
  g = 1;
  return 0;
}`)
	f := Analyze(p)
	for _, in := range f.Instances {
		if in.Var != "i" {
			continue
		}
		// Loop body's last line is 5; the instance must not extend to the
		// trailing statements.
		if in.EndLine > 7 {
			t.Errorf("IV instance leaks out of its loop: %+v", in)
		}
	}
	// A nested-scope variable is clipped to its block.
	var sEnd int
	for _, in := range Analyze(minic.MustParse(src)).Instances {
		if in.Var == "s" {
			sEnd = in.EndLine
		}
	}
	if sEnd == 0 {
		t.Fatal("s instance missing")
	}
}

func TestFuncOfLine(t *testing.T) {
	f := facts(t)
	// All statement lines of main map to main.
	cnt := 0
	for _, fn := range f.FuncOfLine {
		if fn == "main" {
			cnt++
		}
	}
	if cnt < 10 {
		t.Errorf("too few main lines: %d", cnt)
	}
}
