// Package analysis derives the source-level facts the conjecture checkers
// need from a MiniC program: which lines call opaque functions with which
// variable arguments (Conjecture 1), which lines assign to global storage
// through non-simplifiable expressions and which constituents qualify as
// expected-available (Conjecture 2), and the assignment-delimited lifetime
// instances of local variables (Conjecture 3).
package analysis

import (
	"sort"

	"repro/internal/minic"
)

// OpaqueCall is a call to an opaque function with variable arguments.
type OpaqueCall struct {
	Line    int
	Func    string // enclosing function
	Callee  string
	ArgVars []string // source variables passed (directly) as arguments
}

// Constituent is a variable taking part in a global-store assignment.
type Constituent struct {
	Name string
	// Constant: every reaching definition is a literal or address-of.
	Constant bool
	// Induction: the variable is a loop induction variable used to index
	// global memory in the assignment.
	Induction bool
	// UsedLater: the program may use the variable after the assignment.
	UsedLater bool
}

// Qualifies reports whether Conjecture 2 expects the constituent available.
func (c Constituent) Qualifies() bool {
	return c.Constant || (c.Induction && c.UsedLater)
}

// GlobalAssign is an assignment to global storage.
type GlobalAssign struct {
	Line         int
	Func         string
	Global       string
	Constituents []Constituent
	// Simplifiable marks expressions the conjecture rules out (a constant
	// operand annihilates the rest, e.g. v2 & 0).
	Simplifiable bool
}

// Instance is one assignment-delimited lifetime segment of a variable
// (Conjecture 3 treats reassignment as a fresh instance).
type Instance struct {
	Func      string
	Var       string
	StartLine int // the assignment line
	EndLine   int // exclusive: next assignment line or function end + 1
}

// Facts is the full fact base for one program.
type Facts struct {
	FuncOfLine    map[int]string
	OpaqueCalls   []OpaqueCall
	GlobalAssigns []GlobalAssign
	Instances     []Instance
	// DeclLine maps "func.var" to its declaration line.
	DeclLine map[string]int
	// MaxLine is the last line of the program.
	MaxLine int
}

// Analyze builds the fact base. The program must be checked and laid out.
func Analyze(prog *minic.Program) *Facts {
	f := &Facts{FuncOfLine: map[int]string{}, DeclLine: map[string]int{}}
	globals := map[string]bool{}
	for _, g := range prog.Globals {
		globals[g.Name] = true
	}
	opaque := map[string]bool{}
	for _, fn := range prog.Funcs {
		if fn.Opaque {
			opaque[fn.Name] = true
		}
	}
	for _, fn := range prog.Funcs {
		if fn.Body == nil {
			continue
		}
		fa := newFuncAnalysis(prog, fn, globals, opaque)
		fa.run(f)
	}
	return f
}

type funcAnalysis struct {
	prog    *minic.Program
	fn      *minic.FuncDecl
	globals map[string]bool
	opaque  map[string]bool

	locals      map[string]bool
	assignLines map[string][]int // var -> lines of assignments
	useLines    map[string][]int // var -> lines of uses (reads)
	constOnly   map[string]bool  // var -> all assignments are literal/addr
	inductions  map[string]bool  // var -> is a loop induction variable
	scopeEnd    map[string]int   // var -> last line of its lexical scope
	lastLine    int
}

func newFuncAnalysis(prog *minic.Program, fn *minic.FuncDecl,
	globals, opaque map[string]bool) *funcAnalysis {
	return &funcAnalysis{
		prog: prog, fn: fn, globals: globals, opaque: opaque,
		locals:      map[string]bool{},
		assignLines: map[string][]int{},
		useLines:    map[string][]int{},
		constOnly:   map[string]bool{},
		inductions:  map[string]bool{},
		scopeEnd:    map[string]int{},
	}
}

func (a *funcAnalysis) run(out *Facts) {
	for _, p := range a.fn.Params {
		a.locals[p.Name] = true
		out.DeclLine[a.fn.Name+"."+p.Name] = a.fn.Line
	}
	// Pass 1: declarations, assignments, uses, induction variables, lines.
	minic.WalkStmt(a.fn.Body, func(s minic.Stmt) bool {
		if s.Pos() > a.lastLine {
			a.lastLine = s.Pos()
		}
		out.FuncOfLine[s.Pos()] = a.fn.Name
		switch x := s.(type) {
		case *minic.DeclStmt:
			for _, v := range x.Vars {
				a.locals[v.Name] = true
				a.constOnly[v.Name] = true
				out.DeclLine[a.fn.Name+"."+v.Name] = v.Line
				if v.Init != nil {
					a.recordAssign(v.Name, v.Line, v.Init)
					a.scanUses(v.Init)
				}
			}
		case *minic.AssignStmt:
			a.recordLHS(x.LHS, x.Line, x.RHS)
			a.scanUses(x.RHS)
			a.scanIndexUses(x.LHS)
		case *minic.ForStmt:
			a.markInduction(x)
		default:
			for _, e := range minic.Exprs(s) {
				a.scanUses(e)
			}
		}
		// Assignment expressions and calls nest anywhere.
		for _, e := range minic.Exprs(s) {
			a.scanNested(e, s.Pos())
		}
		return true
	})
	if a.lastLine > out.MaxLine {
		out.MaxLine = a.lastLine
	}
	// Pass 2: conjecture-specific facts.
	minic.WalkStmt(a.fn.Body, func(s minic.Stmt) bool {
		switch x := s.(type) {
		case *minic.ExprStmt:
			a.collectOpaqueCalls(x.X, x.Line, out)
		case *minic.AssignStmt:
			a.collectOpaqueCalls(x.RHS, x.Line, out)
			a.collectGlobalAssign(x, out)
		case *minic.DeclStmt:
			for _, v := range x.Vars {
				if v.Init != nil {
					a.collectOpaqueCalls(v.Init, v.Line, out)
				}
			}
		case *minic.IfStmt:
			a.collectOpaqueCalls(x.Cond, x.Line, out)
		case *minic.WhileStmt:
			a.collectOpaqueCalls(x.Cond, x.Line, out)
		case *minic.ReturnStmt:
			if x.X != nil {
				a.collectOpaqueCalls(x.X, x.Line, out)
			}
		}
		return true
	})
	// Pass 3: variable instances for Conjecture 3, clipped to the
	// variable's lexical scope (a loop induction variable's instance ends
	// with the loop, not the function).
	a.recordScopes(a.fn.Body, a.lastLine)
	// Emit instances in sorted variable order: Facts (and hence violation
	// order) must be deterministic for a given program, or parallel and
	// serial campaign runs would stream violations differently.
	vars := make([]string, 0, len(a.assignLines))
	for v := range a.assignLines {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		if !a.locals[v] {
			continue
		}
		lines := a.assignLines[v]
		sort.Ints(lines)
		scopeLimit := a.lastLine + 1
		if se, ok := a.scopeEnd[v]; ok {
			scopeLimit = se + 1
		}
		for i, start := range lines {
			end := scopeLimit
			if i+1 < len(lines) && lines[i+1] < end {
				end = lines[i+1]
			}
			if end > start {
				out.Instances = append(out.Instances, Instance{
					Func: a.fn.Name, Var: v, StartLine: start, EndLine: end,
				})
			}
		}
	}
}

// maxLine returns the last source line within a statement subtree.
func maxLine(s minic.Stmt) int {
	m := 0
	minic.WalkStmt(s, func(x minic.Stmt) bool {
		if x.Pos() > m {
			m = x.Pos()
		}
		return true
	})
	return m
}

// recordScopes walks blocks computing the lexical scope end of each
// declaration: the last line of the enclosing block (or the loop body for
// variables declared in a for-loop initialiser).
func (a *funcAnalysis) recordScopes(b *minic.Block, end int) {
	for _, s := range b.Stmts {
		switch x := s.(type) {
		case *minic.DeclStmt:
			for _, v := range x.Vars {
				a.scopeEnd[v.Name] = end
			}
		case *minic.Block:
			a.recordScopes(x, maxLine(x))
		case *minic.IfStmt:
			a.recordScopes(x.Then, maxLine(x.Then))
			if x.Else != nil {
				a.recordScopes(x.Else, maxLine(x.Else))
			}
		case *minic.ForStmt:
			loopEnd := maxLine(x)
			if ds, ok := x.Init.(*minic.DeclStmt); ok {
				for _, v := range ds.Vars {
					a.scopeEnd[v.Name] = loopEnd
				}
			}
			a.recordScopes(x.Body, loopEnd)
		case *minic.WhileStmt:
			a.recordScopes(x.Body, maxLine(x))
		case *minic.LabeledStmt:
			if blk, ok := x.Stmt.(*minic.Block); ok {
				a.recordScopes(blk, maxLine(blk))
			}
			if is, ok := x.Stmt.(*minic.IfStmt); ok {
				a.recordScopes(is.Then, maxLine(is.Then))
				if is.Else != nil {
					a.recordScopes(is.Else, maxLine(is.Else))
				}
			}
		}
	}
}

func (a *funcAnalysis) recordLHS(lhs minic.Expr, line int, rhs minic.Expr) {
	if vr, ok := lhs.(*minic.VarRef); ok {
		a.recordAssign(vr.Name, line, rhs)
	}
}

func (a *funcAnalysis) recordAssign(name string, line int, rhs minic.Expr) {
	a.assignLines[name] = append(a.assignLines[name], line)
	if _, ok := a.constOnly[name]; !ok {
		a.constOnly[name] = true
	}
	if !isConstExpr(rhs) {
		a.constOnly[name] = false
	}
}

// isConstExpr implements the paper's "constant" variable class: numeric
// literals, or taking the address of another variable.
func isConstExpr(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.IntLit:
		return true
	case *minic.UnaryExpr:
		if x.Op == minic.Addr {
			return true
		}
		if x.Op == minic.Neg || x.Op == minic.BitNot {
			return isConstExpr(x.X)
		}
	case *minic.BinaryExpr:
		return isConstExpr(x.X) && isConstExpr(x.Y)
	}
	return false
}

func (a *funcAnalysis) scanUses(e minic.Expr) {
	minic.WalkExpr(e, func(x minic.Expr) bool {
		switch n := x.(type) {
		case *minic.VarRef:
			a.useLines[n.Name] = append(a.useLines[n.Name], n.Line)
		case *minic.AssignExpr:
			// The LHS is a definition, not a use; still scan its indices.
			if vr, ok := n.LHS.(*minic.VarRef); ok {
				a.recordAssign(vr.Name, n.Line, n.RHS)
			} else {
				a.scanIndexUses(n.LHS)
			}
			a.scanUses(n.RHS)
			return false
		}
		return true
	})
}

// scanIndexUses records reads occurring in index positions of an lvalue.
func (a *funcAnalysis) scanIndexUses(lhs minic.Expr) {
	if ie, ok := lhs.(*minic.IndexExpr); ok {
		a.scanUses(ie.Index)
		a.scanIndexUses(ie.Base)
	}
	if ue, ok := lhs.(*minic.UnaryExpr); ok && ue.Op == minic.Deref {
		a.scanUses(ue.X)
	}
}

// scanNested records assignments hidden in assignment expressions.
func (a *funcAnalysis) scanNested(e minic.Expr, line int) {
	minic.WalkExpr(e, func(x minic.Expr) bool {
		if ae, ok := x.(*minic.AssignExpr); ok {
			if vr, ok := ae.LHS.(*minic.VarRef); ok && a.locals[vr.Name] {
				// Already recorded by scanUses; keep for statement-level
				// callers that bypass it.
				_ = vr
				_ = line
			}
		}
		return true
	})
}

// markInduction records the induction variable of a canonical for loop.
func (a *funcAnalysis) markInduction(f *minic.ForStmt) {
	name := ""
	switch init := f.Init.(type) {
	case *minic.AssignStmt:
		if vr, ok := init.LHS.(*minic.VarRef); ok {
			name = vr.Name
		}
	case *minic.DeclStmt:
		if len(init.Vars) > 0 {
			name = init.Vars[0].Name
		}
	}
	if name == "" {
		// for (; i < n; i = i + 1) style: take the post-statement target.
		if post, ok := f.Post.(*minic.AssignStmt); ok {
			if vr, ok := post.LHS.(*minic.VarRef); ok {
				name = vr.Name
			}
		}
	}
	if name != "" {
		a.inductions[name] = true
	}
}

func (a *funcAnalysis) collectOpaqueCalls(e minic.Expr, line int, out *Facts) {
	minic.WalkExpr(e, func(x minic.Expr) bool {
		call, ok := x.(*minic.CallExpr)
		if !ok || !a.opaque[call.Name] {
			return true
		}
		oc := OpaqueCall{Line: line, Func: a.fn.Name, Callee: call.Name}
		for _, arg := range call.Args {
			if vr, ok := arg.(*minic.VarRef); ok && a.locals[vr.Name] {
				oc.ArgVars = append(oc.ArgVars, vr.Name)
			}
		}
		if len(oc.ArgVars) > 0 {
			out.OpaqueCalls = append(out.OpaqueCalls, oc)
		}
		return true
	})
}

func (a *funcAnalysis) collectGlobalAssign(x *minic.AssignStmt, out *Facts) {
	gname, indexVars := a.globalTarget(x.LHS)
	if gname == "" {
		return
	}
	// Induction variables indexing global memory on the right-hand side
	// qualify too (the paper's c = a[i][j][k] example reads the arrays).
	minic.WalkExpr(x.RHS, func(e minic.Expr) bool {
		if ie, ok := e.(*minic.IndexExpr); ok {
			if base, rvs := a.globalTarget(ie); base != "" {
				indexVars = append(indexVars, rvs...)
			}
		}
		return true
	})
	ga := GlobalAssign{Line: x.Line, Func: a.fn.Name, Global: gname,
		Simplifiable: simplifiable(x.RHS)}
	seen := map[string]bool{}
	addConstituent := func(name string) {
		if seen[name] || !a.locals[name] {
			return
		}
		seen[name] = true
		ga.Constituents = append(ga.Constituents, Constituent{
			Name:      name,
			Constant:  a.constOnly[name],
			Induction: a.inductions[name] && contains(indexVars, name),
			UsedLater: a.usedAfter(name, x.Line),
		})
	}
	minic.WalkExpr(x.RHS, func(e minic.Expr) bool {
		if vr, ok := e.(*minic.VarRef); ok {
			addConstituent(vr.Name)
		}
		return true
	})
	for _, iv := range indexVars {
		addConstituent(iv)
	}
	if len(ga.Constituents) > 0 {
		out.GlobalAssigns = append(out.GlobalAssigns, ga)
	}
}

// globalTarget resolves an lvalue that denotes global storage and returns
// the variables used in its index expressions.
func (a *funcAnalysis) globalTarget(lhs minic.Expr) (string, []string) {
	switch x := lhs.(type) {
	case *minic.VarRef:
		if a.globals[x.Name] && !a.locals[x.Name] {
			return x.Name, nil
		}
	case *minic.IndexExpr:
		base := x
		var idxVars []string
		var cur minic.Expr = x
		for {
			ie, ok := cur.(*minic.IndexExpr)
			if !ok {
				break
			}
			minic.WalkExpr(ie.Index, func(e minic.Expr) bool {
				if vr, ok := e.(*minic.VarRef); ok {
					idxVars = append(idxVars, vr.Name)
				}
				return true
			})
			cur = ie.Base
		}
		if vr, ok := cur.(*minic.VarRef); ok && a.globals[vr.Name] && !a.locals[vr.Name] {
			_ = base
			return vr.Name, idxVars
		}
	}
	return "", nil
}

// usedAfter reports whether name has a read at a line strictly greater than
// line, or is read anywhere within an enclosing loop (conservative textual
// liveness).
func (a *funcAnalysis) usedAfter(name string, line int) bool {
	for _, l := range a.useLines[name] {
		if l > line {
			return true
		}
	}
	// Induction variables are read by their own loop header/update.
	return a.inductions[name]
}

// simplifiable implements the conjecture's exclusion of trivially
// simplifiable expressions: some constituent is annihilated by a constant
// operand (x*0, x&0, x%1, x<<64...), so not all constituents are needed.
func simplifiable(e minic.Expr) bool {
	found := false
	minic.WalkExpr(e, func(x minic.Expr) bool {
		be, ok := x.(*minic.BinaryExpr)
		if !ok {
			return true
		}
		for _, pair := range [][2]minic.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			lit, ok := pair[1].(*minic.IntLit)
			if !ok {
				continue
			}
			switch {
			case be.Op == minic.Mul && lit.Value == 0,
				be.Op == minic.And && lit.Value == 0,
				be.Op == minic.Rem && lit.Value == 1,
				be.Op == minic.Div && pair[1] == be.X && lit.Value == 0:
				found = true
			}
		}
		return true
	})
	return found
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
