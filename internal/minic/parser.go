package minic

import (
	"fmt"
)

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a whole MiniC translation unit. The returned program is not
// yet type-checked; call Check on it.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for !p.atEOF() {
		if err := p.parseTopLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

// peek returns the token n positions ahead of the current one (peek(0) ==
// cur), or an EOF token past the end of input.
func (p *Parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) is(text string) bool { return p.cur().Text == text && p.cur().Kind != TokEOF }

func (p *Parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(text string) (Token, error) {
	if !p.is(text) {
		return Token{}, fmt.Errorf("minic: line %d: expected %q, got %q", p.cur().Line, text, p.cur().String())
	}
	return p.next(), nil
}

func (p *Parser) expectIdent() (Token, error) {
	if p.cur().Kind != TokIdent {
		return Token{}, fmt.Errorf("minic: line %d: expected identifier, got %q", p.cur().Line, p.cur().String())
	}
	return p.next(), nil
}

// parseBaseType parses a scalar base type (no array suffixes or stars).
func (p *Parser) parseBaseType() (Type, error) {
	unsigned := p.accept("unsigned")
	t := p.cur()
	var base *IntType
	switch t.Text {
	case "char":
		base = Int8
	case "short":
		base = Int16
	case "int":
		base = Int32
	case "long":
		base = Int64
	case "void":
		if unsigned {
			return nil, fmt.Errorf("minic: line %d: unsigned void", t.Line)
		}
		p.next()
		return Void, nil
	default:
		if unsigned {
			// Bare "unsigned" means unsigned int.
			return Uint32, nil
		}
		return nil, fmt.Errorf("minic: line %d: expected type, got %q", t.Line, t.String())
	}
	p.next()
	if unsigned {
		return &IntType{Width: base.Width, Unsigned: true}, nil
	}
	return base, nil
}

func (p *Parser) startsType() bool {
	switch p.cur().Text {
	case "int", "short", "char", "long", "unsigned", "void", "volatile", "extern", "static":
		return true
	}
	return false
}

// parseStars wraps base in one PointerType per '*'.
func (p *Parser) parseStars(base Type) Type {
	for p.accept("*") {
		base = &PointerType{Elem: base}
	}
	return base
}

// parseArraySuffix parses trailing [N][M]... and builds the array type
// outermost-first, as C does.
func (p *Parser) parseArraySuffix(base Type) (Type, error) {
	var dims []int
	for p.accept("[") {
		n := p.cur()
		if n.Kind != TokNumber {
			return nil, fmt.Errorf("minic: line %d: expected array length", n.Line)
		}
		p.next()
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		dims = append(dims, int(n.Val))
	}
	for i := len(dims) - 1; i >= 0; i-- {
		base = &ArrayType{Elem: base, Len: dims[i]}
	}
	return base, nil
}

func (p *Parser) parseTopLevel(prog *Program) error {
	extern := p.accept("extern")
	p.accept("static") // accepted for Csmith-style sources; no linkage model
	volatile := p.accept("volatile")
	base, err := p.parseBaseType()
	if err != nil {
		return err
	}
	base = p.parseStars(base)
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.is("(") {
		return p.parseFuncRest(prog, base, name, extern)
	}
	return p.parseGlobalRest(prog, base, name, volatile)
}

func (p *Parser) parseFuncRest(prog *Program, ret Type, name Token, extern bool) error {
	if _, err := p.expect("("); err != nil {
		return err
	}
	fd := &FuncDecl{Name: name.Text, Ret: ret, Line: name.Line, Opaque: extern}
	if !p.is(")") {
		if p.is("void") && p.peek(1).Text == ")" {
			p.next()
		} else {
			for {
				pbase, err := p.parseBaseType()
				if err != nil {
					return err
				}
				pbase = p.parseStars(pbase)
				pname, err := p.expectIdent()
				if err != nil {
					return err
				}
				fd.Params = append(fd.Params, &Param{Name: pname.Text, Type: pbase})
				if !p.accept(",") {
					break
				}
			}
		}
	}
	if _, err := p.expect(")"); err != nil {
		return err
	}
	if p.accept(";") {
		fd.Opaque = true
		prog.Funcs = append(prog.Funcs, fd)
		return nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	fd.Opaque = false
	prog.Funcs = append(prog.Funcs, fd)
	return nil
}

func (p *Parser) parseGlobalRest(prog *Program, base Type, name Token, volatile bool) error {
	for {
		typ, err := p.parseArraySuffix(base)
		if err != nil {
			return err
		}
		g := &GlobalDecl{Name: name.Text, Type: typ, Volatile: volatile, Line: name.Line}
		if p.accept("=") {
			init, err := p.parseInit()
			if err != nil {
				return err
			}
			g.Init = init
		}
		prog.Globals = append(prog.Globals, g)
		if p.accept(",") {
			name, err = p.expectIdent()
			if err != nil {
				return err
			}
			continue
		}
		_, err = p.expect(";")
		return err
	}
}

func (p *Parser) parseInit() (*InitValue, error) {
	if p.accept("{") {
		iv := &InitValue{List: []*InitValue{}}
		if !p.is("}") {
			for {
				sub, err := p.parseInit()
				if err != nil {
					return nil, err
				}
				iv.List = append(iv.List, sub)
				if !p.accept(",") {
					break
				}
			}
		}
		if _, err := p.expect("}"); err != nil {
			return nil, err
		}
		return iv, nil
	}
	neg := p.accept("-")
	t := p.cur()
	if t.Kind != TokNumber {
		return nil, fmt.Errorf("minic: line %d: expected constant initialiser", t.Line)
	}
	p.next()
	v := t.Val
	if neg {
		v = -v
	}
	return &InitValue{Scalar: v}, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &Block{Line: open.Line}
	for !p.is("}") {
		if p.atEOF() {
			return nil, fmt.Errorf("minic: unexpected EOF in block starting at line %d", open.Line)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	// Label: identifier followed by ':'.
	if t.Kind == TokIdent && p.peek(1).Text == ":" {
		p.next()
		p.next()
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &LabeledStmt{Label: t.Text, Stmt: inner, Line: t.Line}, nil
	}
	switch {
	case p.is("{"):
		return p.parseBlock()
	case p.startsType():
		return p.parseDeclStmt()
	case p.is("if"):
		return p.parseIf()
	case p.is("for"):
		return p.parseFor()
	case p.is("while"):
		return p.parseWhile()
	case p.is("return"):
		p.next()
		rs := &ReturnStmt{Line: t.Line}
		if !p.is(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		_, err := p.expect(";")
		return rs, err
	case p.is("goto"):
		p.next()
		lbl, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &GotoStmt{Label: lbl.Text, Line: t.Line}, nil
	case p.is("break"):
		p.next()
		_, err := p.expect(";")
		return &BreakStmt{Line: t.Line}, err
	case p.is("continue"):
		p.next()
		_, err := p.expect(";")
		return &ContinueStmt{Line: t.Line}, err
	case p.is(";"):
		p.next()
		return &Block{Line: t.Line}, nil
	}
	return p.parseExprOrAssignStmt()
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	line := p.cur().Line
	p.accept("volatile") // accepted and ignored on locals
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{Line: line}
	for {
		t := p.parseStars(base)
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t, err = p.parseArraySuffix(t)
		if err != nil {
			return nil, err
		}
		vd := &VarDecl{Name: name.Text, Type: t, Line: name.Line}
		if p.accept("=") {
			init, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		ds.Vars = append(ds.Vars, vd)
		if !p.accept(",") {
			break
		}
	}
	_, err = p.expect(";")
	return ds, err
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	thenB, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Cond: cond, Then: thenB, Line: t.Line}
	if p.accept("else") {
		elseB, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		is.Else = elseB
	}
	return is, nil
}

// parseStmtAsBlock parses a statement, wrapping non-block statements in a
// single-statement block so control structures always have Block bodies.
func (p *Parser) parseStmtAsBlock() (*Block, error) {
	if p.is("{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Block{Stmts: []Stmt{s}, Line: s.Pos()}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fs := &ForStmt{Line: t.Line}
	if !p.is(";") {
		if p.startsType() {
			ds, err := p.parseDeclStmt() // consumes ';'
			if err != nil {
				return nil, err
			}
			fs.Init = ds
		} else {
			init, err := p.parseSimpleStmtNoSemi()
			if err != nil {
				return nil, err
			}
			fs.Init = init
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.is(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(")") {
		post, err := p.parseSimpleStmtNoSemi()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
}

// parseSimpleStmtNoSemi parses an assignment or expression statement without
// consuming the trailing semicolon (used in for-loop clauses).
func (p *Parser) parseSimpleStmtNoSemi() (Stmt, error) {
	line := p.cur().Line
	x, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if ae, ok := x.(*AssignExpr); ok {
		return &AssignStmt{LHS: ae.LHS, RHS: ae.RHS, Line: line}, nil
	}
	return &ExprStmt{X: x, Line: line}, nil
}

func (p *Parser) parseExprOrAssignStmt() (Stmt, error) {
	s, err := p.parseSimpleStmtNoSemi()
	if err != nil {
		return nil, err
	}
	_, err = p.expect(";")
	return s, err
}

// Expression parsing with precedence climbing. parseExpr handles the comma-
// free expression grammar; assignment is right-associative and lowest.

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() (Expr, error) {
	line := p.cur().Line
	lhs, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.is("=") {
		p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if !isLValue(lhs) {
			return nil, fmt.Errorf("minic: line %d: assignment to non-lvalue", line)
		}
		return &AssignExpr{LHS: lhs, RHS: rhs, Line: line}, nil
	}
	return lhs, nil
}

func isLValue(e Expr) bool {
	switch x := e.(type) {
	case *VarRef:
		return true
	case *IndexExpr:
		return true
	case *UnaryExpr:
		return x.Op == Deref
	}
	return false
}

var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var binOpOf = map[string]BinOp{
	"+": Add, "-": Sub, "*": Mul, "/": Div, "%": Rem,
	"&": And, "|": Or, "^": Xor, "<<": Shl, ">>": Shr,
	"==": Eq, "!=": Ne, "<": Lt, "<=": Le, ">": Gt, ">=": Ge,
	"&&": LogAnd, "||": LogOr,
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.Text]
		if t.Kind != TokPunct || !ok || prec <= minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: binOpOf[t.Text], X: lhs, Y: rhs, Line: t.Line}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	var op UnaryOp
	switch t.Text {
	case "-":
		op = Neg
	case "!":
		op = LogNot
	case "~":
		op = BitNot
	case "&":
		op = Addr
	case "*":
		op = Deref
	default:
		return p.parsePostfix()
	}
	p.next()
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return &UnaryExpr{Op: op, X: x, Line: t.Line}, nil
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.is("[") {
		t := p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		x = &IndexExpr{Base: x, Index: idx, Line: t.Line}
	}
	return x, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return &IntLit{Value: t.Val, Typ: Int32, Line: t.Line}, nil
	case t.Kind == TokIdent:
		p.next()
		if p.is("(") {
			p.next()
			call := &CallExpr{Name: t.Text, Line: t.Line}
			if !p.is(")") {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &VarRef{Name: t.Text, Line: t.Line}, nil
	case t.Text == "(":
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(")")
		return x, err
	}
	return nil, fmt.Errorf("minic: line %d: unexpected token %q", t.Line, t.String())
}
