package minic_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/minic"
)

const fpTestSrc = `int g1 = 7;
volatile int g2;
int a[3] = {1, 2, 3};
extern void opaque(int x);
int helper(int x) {
  g1 = g1 + x;
  return g1;
}
int main(void) {
  int i = 0;
  for (; i < 3; i = i + 1) {
    g1 = helper(a[i]);
    opaque(g2);
  }
  return g1;
}
`

func mustProg(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	minic.AssignLines(prog)
	if err := minic.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

// TestRenderIsPure pins the printer contract the concurrent cache paths
// rely on: Render never writes line numbers (or anything else) back into
// the AST, and its output does not depend on the lines currently stored on
// the nodes. AssignLines remains the one explicit mutator.
func TestRenderIsPure(t *testing.T) {
	prog := mustProg(t, fpTestSrc)
	want := minic.Render(prog)

	main := prog.Func("main")
	ret := main.Body.Stmts[len(main.Body.Stmts)-1].(*minic.ReturnStmt)
	main.Line = 9999
	ret.Line = 8888
	prog.Globals[0].Line = 7777

	if got := minic.Render(prog); got != want {
		t.Fatalf("Render reads stored line numbers: output changed after scrambling them")
	}
	if main.Line != 9999 || ret.Line != 8888 || prog.Globals[0].Line != 7777 {
		t.Fatalf("Render mutated the AST: main.Line=%d ret.Line=%d g.Line=%d",
			main.Line, ret.Line, prog.Globals[0].Line)
	}

	minic.AssignLines(prog)
	if main.Line == 9999 || ret.Line == 8888 || prog.Globals[0].Line == 7777 {
		t.Fatalf("AssignLines left scrambled lines in place")
	}
	if got := minic.Render(prog); got != want {
		t.Fatalf("Render changed after AssignLines")
	}
}

// TestFnSourcePositionIndependent: the same function text renders
// identically no matter where in a program it sits — the property that
// lets one cached lowering serve every program containing the function.
func TestFnSourcePositionIndependent(t *testing.T) {
	a := mustProg(t, fpTestSrc)
	shifted := "int extra1;\nint extra2;\nvoid pad(void) {\n  extra1 = 1;\n}\n" + fpTestSrc
	b := mustProg(t, shifted)

	for _, name := range []string{"helper", "main", "opaque"} {
		fa, fb := a.Func(name), b.Func(name)
		if fa.Line == fb.Line {
			t.Fatalf("test setup: %s not shifted", name)
		}
		if minic.FnSource(fa) != minic.FnSource(fb) {
			t.Fatalf("FnSource of %s depends on position:\n%q\nvs\n%q",
				name, minic.FnSource(fa), minic.FnSource(fb))
		}
		if minic.FnFingerprint(a, fa) != minic.FnFingerprint(b, fb) {
			t.Fatalf("FnFingerprint of %s depends on position", name)
		}
	}
}

func TestFnDepsSource(t *testing.T) {
	prog := mustProg(t, fpTestSrc)
	deps := minic.FnDepsSource(prog, prog.Func("main"))

	for _, want := range []string{"int g1\n", "volatile int g2\n", "int[3] a\n",
		"extern void opaque(int x)\n", "int helper(int x)\n"} {
		if !strings.Contains(deps, want) {
			t.Errorf("main deps missing %q:\n%s", want, deps)
		}
	}
	// helper touches only g1: no other symbol may leak into its digest.
	hdeps := minic.FnDepsSource(prog, prog.Func("helper"))
	if hdeps != "int g1\n" {
		t.Errorf("helper deps = %q, want just g1", hdeps)
	}

	// Global initialisers do not affect lowering and must not affect deps.
	changed := mustProg(t, strings.Replace(fpTestSrc, "int g1 = 7;", "int g1 = 8;", 1))
	if minic.FnDepsSource(changed, changed.Func("main")) != deps {
		t.Errorf("deps digest depends on a global initialiser")
	}
	if minic.GlobalsSource(changed) == minic.GlobalsSource(prog) {
		t.Errorf("GlobalsSource must cover initialisers")
	}

	// Changing a referenced global's type must change the digest.
	retyped := mustProg(t, strings.Replace(fpTestSrc, "int g1 = 7;", "unsigned char g1 = 7;", 1))
	if minic.FnDepsSource(retyped, retyped.Func("helper")) == hdeps {
		t.Errorf("deps digest ignores a referenced global's type")
	}
}

// TestFnSourcesMatchesFnSource pins the slicing fast path: FnSources must
// return, for every function, exactly the text the standalone renderer
// produces — the incremental frontend's cache keys depend on it.
func TestFnSourcesMatchesFnSource(t *testing.T) {
	progs := map[string]*minic.Program{"base": mustProg(t, fpTestSrc)}
	for seed := int64(1); seed <= 8; seed++ {
		p := fuzzgen.GenerateSeed(seed)
		minic.AssignLines(p)
		progs[fmt.Sprintf("fuzz%d", seed)] = p
	}
	for name, prog := range progs {
		got := minic.FnSources(prog)
		if len(got) != len(prog.Funcs) {
			t.Fatalf("%s: FnSources returned %d texts for %d functions", name, len(got), len(prog.Funcs))
		}
		for i, fd := range prog.Funcs {
			if want := minic.FnSource(fd); got[i] != want {
				t.Fatalf("%s: FnSources[%d] (%s) = %q, want %q", name, i, fd.Name, got[i], want)
			}
		}
	}
	// A program whose stored lines are stale must still come out right via
	// the per-function fallback path.
	stale := mustProg(t, fpTestSrc)
	for _, fd := range stale.Funcs {
		fd.Line += 1000
	}
	got := minic.FnSources(stale)
	for i, fd := range stale.Funcs {
		if want := minic.FnSource(fd); got[i] != want {
			t.Fatalf("stale-lines fallback: FnSources[%d] (%s) = %q, want %q", i, fd.Name, got[i], want)
		}
	}
}

func TestGlobalsSourceIsRenderPrefix(t *testing.T) {
	prog := mustProg(t, fpTestSrc)
	full := minic.Render(prog)
	gsrc := minic.GlobalsSource(prog)
	if !strings.HasPrefix(full, gsrc) {
		t.Fatalf("GlobalsSource is not the rendered prologue:\n%q\nvs program:\n%q", gsrc, full)
	}
	if strings.Count(gsrc, "\n") != len(prog.Globals) {
		t.Fatalf("GlobalsSource has %d lines, want %d", strings.Count(gsrc, "\n"), len(prog.Globals))
	}
}
