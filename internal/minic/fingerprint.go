package minic

import "hash/fnv"

// Fingerprint returns a cheap content hash of the program's canonical
// source (the printer's rendering). Two programs with the same canonical
// source compile identically under a given configuration, so the engine's
// compile, analysis and trace caches key on it: a clone of a program — as
// the reducer produces on every step — hits the same cache entries as the
// original. The engine pairs the hash with the full source in its keys,
// so a hash collision cannot alias two programs.
func Fingerprint(p *Program) uint64 {
	return FingerprintSource(Render(p))
}

// FingerprintSource is Fingerprint over already-rendered canonical source.
func FingerprintSource(src string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(src))
	return h.Sum64()
}
