// Package minic implements the MiniC source language used as the test-subject
// language of the reproduction: a small, C-like language with globals
// (optionally volatile), multi-dimensional arrays, pointers, loops with
// induction variables, goto/labels, and calls to opaque external functions.
//
// MiniC deliberately has no undefined behaviour: integer arithmetic wraps at
// the declared width, shifts are masked, and division by zero yields zero.
// This removes the UB-validation step of the paper's pipeline (which used
// compile-time checks plus compcert) by construction.
package minic

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all MiniC types.
type Type interface {
	// String renders the type in MiniC source syntax.
	String() string
	// Size returns the size of a value of this type in abstract words.
	Size() int
	typ()
}

// IntType is a fixed-width integer type. Width is in bits (8, 16, 32 or 64).
type IntType struct {
	Width    int
	Unsigned bool
}

// PointerType is a pointer to Elem.
type PointerType struct {
	Elem Type
}

// ArrayType is a fixed-length array of Elem.
type ArrayType struct {
	Elem Type
	Len  int
}

// VoidType is the type of functions that return no value.
type VoidType struct{}

func (t *IntType) typ()     {}
func (t *PointerType) typ() {}
func (t *ArrayType) typ()   {}
func (t *VoidType) typ()    {}

// Predefined types shared across the toolchain. They are canonical: the
// parser and the fuzzer always hand out these pointers for scalar types, so
// identity comparison is safe for them (composite types still require Equal).
var (
	Int8   = &IntType{Width: 8}
	Int16  = &IntType{Width: 16}
	Int32  = &IntType{Width: 32}
	Int64  = &IntType{Width: 64}
	Uint8  = &IntType{Width: 8, Unsigned: true}
	Uint16 = &IntType{Width: 16, Unsigned: true}
	Uint32 = &IntType{Width: 32, Unsigned: true}
	Uint64 = &IntType{Width: 64, Unsigned: true}
	Void   = &VoidType{}
)

func (t *IntType) String() string {
	// Allocation-free for the canonical widths: type names appear in every
	// rendered declaration and every per-function dependency digest, so
	// this is one of the frontend's hottest string paths.
	switch t.Width {
	case 8:
		if t.Unsigned {
			return "unsigned char"
		}
		return "char"
	case 16:
		if t.Unsigned {
			return "unsigned short"
		}
		return "short"
	case 32:
		if t.Unsigned {
			return "unsigned int"
		}
		return "int"
	case 64:
		if t.Unsigned {
			return "unsigned long"
		}
		return "long"
	}
	name := fmt.Sprintf("int%d", t.Width)
	if t.Unsigned {
		return "unsigned " + name
	}
	return name
}

func (t *IntType) Size() int { return 1 }

func (t *PointerType) String() string { return t.Elem.String() + "*" }
func (t *PointerType) Size() int      { return 1 }

func (t *ArrayType) String() string {
	// Arrays print inner-to-outer: int[2][3] is an array of 2 arrays of 3.
	dims := []string{}
	var elem Type = t
	for {
		at, ok := elem.(*ArrayType)
		if !ok {
			break
		}
		dims = append(dims, fmt.Sprintf("[%d]", at.Len))
		elem = at.Elem
	}
	return elem.String() + strings.Join(dims, "")
}

func (t *ArrayType) Size() int { return t.Len * t.Elem.Size() }

func (t *VoidType) String() string { return "void" }
func (t *VoidType) Size() int      { return 0 }

// Equal reports whether two types are structurally identical.
func Equal(a, b Type) bool {
	switch at := a.(type) {
	case *IntType:
		bt, ok := b.(*IntType)
		return ok && at.Width == bt.Width && at.Unsigned == bt.Unsigned
	case *PointerType:
		bt, ok := b.(*PointerType)
		return ok && Equal(at.Elem, bt.Elem)
	case *ArrayType:
		bt, ok := b.(*ArrayType)
		return ok && at.Len == bt.Len && Equal(at.Elem, bt.Elem)
	case *VoidType:
		_, ok := b.(*VoidType)
		return ok
	}
	return false
}

// IsInt reports whether t is an integer type.
func IsInt(t Type) bool { _, ok := t.(*IntType); return ok }

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool { _, ok := t.(*PointerType); return ok }

// IsArray reports whether t is an array type.
func IsArray(t Type) bool { _, ok := t.(*ArrayType); return ok }

// ElemType returns the element type of an array or pointer, or nil.
func ElemType(t Type) Type {
	switch tt := t.(type) {
	case *ArrayType:
		return tt.Elem
	case *PointerType:
		return tt.Elem
	}
	return nil
}

// Truncate wraps v to the width and signedness of t. MiniC arithmetic is
// performed in 64 bits and truncated on store and on expression evaluation,
// giving fully defined two's-complement semantics.
func (t *IntType) Truncate(v int64) int64 {
	if t.Width == 64 {
		return v
	}
	bits := uint(t.Width)
	mask := int64(1)<<bits - 1
	v &= mask
	if !t.Unsigned && v&(1<<(bits-1)) != 0 {
		v -= 1 << bits
	}
	return v
}
