// Native fuzz targets for the MiniC frontend. The seed corpus mixes
// fuzzgen-rendered programs (the generator lives downstream of minic, so
// this file is an external test package) with hand-written edge cases;
// `go test` exercises just the seeds, CI's fuzz-smoke step mutates them
// for a bounded time.
package minic_test

import (
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/minic"
)

// FuzzParseRenderParse asserts the frontend's canonicalization contract
// on arbitrary input: Parse never panics; for input that parses and
// type-checks, Render(Parse(src)) must itself parse, check, and render
// to the same bytes (the fixpoint every cache key and fingerprint in the
// engine relies on).
func FuzzParseRenderParse(f *testing.F) {
	for seed := int64(1); seed <= 12; seed++ {
		f.Add(minic.Render(fuzzgen.GenerateSeed(seed)))
	}
	f.Add("int main(void) {\n  return 0;\n}\n")
	f.Add("int g;\nextern void opaque(int x);\nint main(void) {\n  int a = 1;\n  g = a;\n  opaque(a);\n  return 0;\n}\n")
	f.Add("int a[3] = {1, 2, 3};\nint main(void) {\n  int *p = &a[1];\n  *p = 4;\n  return 0;\n}\n")
	f.Add("") // empty input
	f.Add("int main(")
	f.Add("\x00\xff garbage ☃")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minic.Parse(src) // must not panic on any input
		if err != nil {
			return
		}
		minic.AssignLines(prog)
		if minic.Check(prog) != nil {
			// Parsed but ill-typed: rendering such programs is outside the
			// canonicalization contract.
			return
		}
		out := minic.Render(prog)
		prog2, err := minic.Parse(out)
		if err != nil {
			t.Fatalf("rendering is not reparseable: %v\nrendered:\n%s", err, out)
		}
		minic.AssignLines(prog2)
		if err := minic.Check(prog2); err != nil {
			t.Fatalf("rendering no longer type-checks: %v\nrendered:\n%s", err, out)
		}
		if out2 := minic.Render(prog2); out2 != out {
			t.Fatalf("parse→render is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
	})
}

// FuzzFnFingerprint asserts the per-function cache-key contract on
// arbitrary checked programs: FnFingerprint is stable under
// parse→render→parse (a reduction clone keys like its original), and two
// functions with different canonical bodies never collide on the
// (body fingerprint, deps digest) pair.
func FuzzFnFingerprint(f *testing.F) {
	for seed := int64(1); seed <= 12; seed++ {
		f.Add(minic.Render(fuzzgen.GenerateSeed(seed)))
	}
	f.Add("int g;\nint h(void) {\n  return g;\n}\nint main(void) {\n  return h();\n}\n")
	f.Add("int main(void) {\n  return 0;\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minic.Parse(src)
		if err != nil {
			return
		}
		minic.AssignLines(prog)
		if minic.Check(prog) != nil {
			return
		}
		prog2, err := minic.Parse(minic.Render(prog))
		if err != nil {
			t.Fatalf("rendering is not reparseable: %v", err)
		}
		minic.AssignLines(prog2)
		if len(prog2.Funcs) != len(prog.Funcs) {
			t.Fatalf("reparse changed the function count: %d vs %d", len(prog.Funcs), len(prog2.Funcs))
		}
		for i, fd := range prog.Funcs {
			id1 := minic.FnFingerprint(prog, fd)
			id2 := minic.FnFingerprint(prog2, prog2.Funcs[i])
			if id1 != id2 {
				t.Fatalf("fingerprint of %s unstable under parse→render→parse: %+v vs %+v",
					fd.Name, id1, id2)
			}
		}
		for i := range prog.Funcs {
			for j := i + 1; j < len(prog.Funcs); j++ {
				fi, fj := prog.Funcs[i], prog.Funcs[j]
				if minic.FnSource(fi) == minic.FnSource(fj) {
					continue
				}
				if minic.FnFingerprint(prog, fi) == minic.FnFingerprint(prog, fj) {
					t.Fatalf("distinct canonical bodies collide on (fingerprint, deps digest): %s vs %s",
						fi.Name, fj.Name)
				}
			}
		}
	})
}
