package minic

import (
	"fmt"
	"strconv"
	"unicode"
)

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokPunct   // operators and delimiters
	TokKeyword // reserved words
)

// Token is a lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Val  int64 // for TokNumber
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "EOF"
	}
	return t.Text
}

var keywords = map[string]bool{
	"int": true, "short": true, "char": true, "long": true,
	"unsigned": true, "void": true, "volatile": true, "extern": true,
	"if": true, "else": true, "for": true, "while": true,
	"return": true, "goto": true, "break": true, "continue": true,
	"static": true,
}

// Lexer tokenises MiniC source text.
type Lexer struct {
	src  []byte
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []byte(src), line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return fmt.Errorf("minic: line %d: unterminated block comment", l.line)
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// twoCharPuncts lists the multi-character operators, longest first.
var twoCharPuncts = []string{"<<", ">>", "==", "!=", "<=", ">=", "&&", "||"}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peek()

	if unicode.IsLetter(rune(c)) || c == '_' {
		start := l.pos
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				l.advance()
			} else {
				break
			}
		}
		text := string(l.src[start:l.pos])
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	}

	if unicode.IsDigit(rune(c)) {
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peek())) ||
			l.peek() == 'x' || l.peek() == 'X' ||
			(l.peek() >= 'a' && l.peek() <= 'f') || (l.peek() >= 'A' && l.peek() <= 'F')) {
			l.advance()
		}
		// Trailing integer suffixes (U, L, UL) are accepted and ignored.
		for l.pos < len(l.src) && (l.peek() == 'u' || l.peek() == 'U' || l.peek() == 'l' || l.peek() == 'L') {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		numText := text
		for len(numText) > 0 {
			last := numText[len(numText)-1]
			if last == 'u' || last == 'U' || last == 'l' || last == 'L' {
				numText = numText[:len(numText)-1]
			} else {
				break
			}
		}
		v, err := strconv.ParseUint(numText, 0, 64)
		if err != nil {
			return Token{}, fmt.Errorf("minic: line %d: bad number %q", line, text)
		}
		return Token{Kind: TokNumber, Text: text, Val: int64(v), Line: line, Col: col}, nil
	}

	for _, p := range twoCharPuncts {
		if l.pos+1 < len(l.src) && string(l.src[l.pos:l.pos+2]) == p {
			l.advance()
			l.advance()
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}

	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
		'(', ')', '{', '}', '[', ']', ';', ',', ':':
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}, nil
	}
	return Token{}, fmt.Errorf("minic: line %d: unexpected character %q", line, string(c))
}

// LexAll tokenises the whole input, excluding the trailing EOF token.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
