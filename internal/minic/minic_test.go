package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

const paperExample = `
int b[10][2];
int a;
extern void opaque(int x);
int main(void) {
  int i = 0, j, k;
  for (; i < 10; i = i + 1) {
    j = 0;
    k = 0;
    for (; k < 1; k = k + 1) {
      a = b[i][j * k];
    }
  }
  return 0;
}
`

func TestParsePaperExample(t *testing.T) {
	prog, err := Parse(paperExample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(prog.Globals))
	}
	if prog.Globals[0].Name != "b" || !IsArray(prog.Globals[0].Type) {
		t.Errorf("global b wrong: %+v", prog.Globals[0])
	}
	at := prog.Globals[0].Type.(*ArrayType)
	if at.Len != 10 {
		t.Errorf("outer array len = %d, want 10", at.Len)
	}
	inner, ok := at.Elem.(*ArrayType)
	if !ok || inner.Len != 2 {
		t.Errorf("inner array wrong: %v", at.Elem)
	}
	f := prog.Func("opaque")
	if f == nil || !f.Opaque {
		t.Fatalf("opaque function not parsed as opaque: %+v", f)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := LexAll("int x = 0x1F; // comment\n x = x << 2;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.Text)
	}
	want := []string{"int", "x", "=", "0x1F", ";", "x", "=", "x", "<<", "2", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
	if toks[3].Val != 0x1F {
		t.Errorf("hex literal = %d, want 31", toks[3].Val)
	}
}

func TestLexerBlockComment(t *testing.T) {
	toks, err := LexAll("int /* hi\nthere */ y;")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Text != "y" {
		t.Errorf("tokens = %v", toks)
	}
	if toks[1].Line != 2 {
		t.Errorf("y on line %d, want 2", toks[1].Line)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := LexAll("int x = @;"); err == nil {
		t.Error("expected error for bad character")
	}
	if _, err := LexAll("/* unterminated"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	prog := MustParse(paperExample)
	src := Render(prog)
	prog2, err := Parse(src)
	if err != nil {
		t.Fatalf("reparse: %v\nsource:\n%s", err, src)
	}
	AssignLines(prog2)
	if err := Check(prog2); err != nil {
		t.Fatalf("recheck: %v", err)
	}
	src2 := Render(prog2)
	if src != src2 {
		t.Errorf("render not idempotent:\n--- first ---\n%s\n--- second ---\n%s", src, src2)
	}
}

func TestAssignLinesMatchesRender(t *testing.T) {
	// The line numbers stored by AssignLines must equal those a parser sees
	// in the rendered text.
	prog := MustParse(paperExample)
	src := Render(prog)
	prog2, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog2); err != nil {
		t.Fatal(err)
	}
	// Collect (statement kind, line) pairs from both and compare.
	collect := func(p *Program) []int {
		var lines []int
		for _, f := range p.Funcs {
			if f.Body == nil {
				continue
			}
			WalkStmt(f.Body, func(s Stmt) bool {
				lines = append(lines, s.Pos())
				return true
			})
		}
		return lines
	}
	a, b := collect(prog), collect(prog2)
	if len(a) != len(b) {
		t.Fatalf("statement count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("statement %d: line %d (assigned) vs %d (parsed)", i, a[i], b[i])
		}
	}
}

func TestCheckerRejects(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undefined var", "int main(void) { x = 1; return 0; }"},
		{"undefined func", "int main(void) { f(1); return 0; }"},
		{"dup global", "int a; int a; int main(void) { return 0; }"},
		{"dup local", "int main(void) { int a; int a; return 0; }"},
		{"goto nowhere", "int main(void) { goto nope; return 0; }"},
		{"index scalar", "int a; int main(void) { a[0] = 1; return 0; }"},
		{"deref int", "int a; int main(void) { int x; x = *a; return 0; }"},
		{"addr of literal", "int main(void) { int* p; p = &3; return 0; }"},
		{"return in void", "void f(void) { return 3; } int main(void) { return 0; }"},
		{"wrong argc", "void f(int a) { } int main(void) { f(1, 2); return 0; }"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				return // parse error is also acceptable rejection
			}
			if err := Check(prog); err == nil {
				t.Errorf("Check accepted invalid program %q", tc.src)
			}
		})
	}
}

func TestTruncate(t *testing.T) {
	cases := []struct {
		t    *IntType
		in   int64
		want int64
	}{
		{Int8, 200, -56},
		{Uint8, 200, 200},
		{Uint8, 256, 0},
		{Int8, -129, 127},
		{Int16, 40000, -25536},
		{Uint16, 70000, 4464},
		{Int32, 1 << 40, 0},
		{Int64, -5, -5},
		{Uint32, -1, 4294967295},
	}
	for _, tc := range cases {
		if got := tc.t.Truncate(tc.in); got != tc.want {
			t.Errorf("%v.Truncate(%d) = %d, want %d", tc.t, tc.in, got, tc.want)
		}
	}
}

func TestTruncateProperties(t *testing.T) {
	// Truncate is idempotent and stays within range for all widths.
	for _, it := range []*IntType{Int8, Int16, Int32, Uint8, Uint16, Uint32} {
		it := it
		f := func(v int64) bool {
			once := it.Truncate(v)
			if it.Truncate(once) != once {
				return false
			}
			if it.Unsigned {
				return once >= 0 && once < 1<<uint(it.Width)
			}
			lo := -(int64(1) << uint(it.Width-1))
			hi := int64(1)<<uint(it.Width-1) - 1
			return once >= lo && once <= hi
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", it, err)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{Int32, "int"},
		{Int16, "short"},
		{Uint16, "unsigned short"},
		{&PointerType{Elem: Int32}, "int*"},
		{&ArrayType{Elem: &ArrayType{Elem: Int32, Len: 4}, Len: 2}, "int[2][4]"},
		{Void, "void"},
	}
	for _, tc := range cases {
		if got := tc.typ.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !Equal(&IntType{Width: 32}, Int32) {
		t.Error("structurally equal ints not Equal")
	}
	if Equal(Int32, Uint32) {
		t.Error("signed/unsigned should differ")
	}
	a := &ArrayType{Elem: Int32, Len: 3}
	b := &ArrayType{Elem: Int32, Len: 3}
	c := &ArrayType{Elem: Int32, Len: 4}
	if !Equal(a, b) || Equal(a, c) {
		t.Error("array equality wrong")
	}
	if !Equal(&PointerType{Elem: a}, &PointerType{Elem: b}) {
		t.Error("pointer equality wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	prog := MustParse(paperExample)
	cp := Clone(prog)
	// Mutate the clone and ensure the original is untouched.
	cp.Globals[0].Name = "zzz"
	main := cp.Func("main")
	main.Body.Stmts = nil
	if prog.Globals[0].Name != "b" {
		t.Error("clone shares global decls")
	}
	if len(prog.Func("main").Body.Stmts) == 0 {
		t.Error("clone shares statement slices")
	}
	// A fresh clone renders identically.
	cp2 := Clone(prog)
	if Render(cp2) != Render(prog) {
		t.Error("clone renders differently")
	}
}

func TestGotoLabelRoundTrip(t *testing.T) {
	src := `
int a;
int main(void) {
  int x = 0;
f: if (a) {
    goto f;
  }
  x = x + 1;
  return x;
}
`
	prog := MustParse(src)
	text := Render(prog)
	if !strings.Contains(text, "f: if (a)") {
		t.Errorf("label not rendered inline:\n%s", text)
	}
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if err := Check(prog2); err != nil {
		t.Fatal(err)
	}
}

func TestExprPrecedenceRoundTrip(t *testing.T) {
	srcs := []string{
		"int a; int b; int c; int main(void) { a = b + c * 2; return 0; }",
		"int a; int b; int main(void) { a = (b + 1) * 2; return 0; }",
		"int a; int b; int c; int main(void) { a = b << 2 | c & 3; return 0; }",
		"int a; int b; int main(void) { a = -b + ~a; return 0; }",
		"int a; int b; int main(void) { if ((a = b) == 0 && b > 1) { a = 2; } return 0; }",
	}
	for _, src := range srcs {
		prog := MustParse(src)
		text := Render(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q: %v\n%s", src, err, text)
		}
		AssignLines(prog2)
		if err := Check(prog2); err != nil {
			t.Fatal(err)
		}
		if Render(prog2) != text {
			t.Errorf("precedence round trip changed:\n%s\nvs\n%s", text, Render(prog2))
		}
	}
}

func TestWalkExprStops(t *testing.T) {
	prog := MustParse("int a; int main(void) { a = 1 + 2 * 3; return 0; }")
	var count int
	stmts := prog.Func("main").Body.Stmts
	as := stmts[0].(*AssignStmt)
	WalkExpr(as.RHS, func(e Expr) bool {
		count++
		return false // do not descend
	})
	if count != 1 {
		t.Errorf("walk visited %d nodes with early stop, want 1", count)
	}
	count = 0
	WalkExpr(as.RHS, func(e Expr) bool { count++; return true })
	if count != 5 { // (+ 1 (* 2 3)) = 5 nodes
		t.Errorf("walk visited %d nodes, want 5", count)
	}
}

func TestVolatileGlobal(t *testing.T) {
	prog := MustParse("volatile int a; int main(void) { a = 1; return 0; }")
	if !prog.Globals[0].Volatile {
		t.Error("volatile not parsed")
	}
	if !strings.Contains(Render(prog), "volatile int a;") {
		t.Error("volatile not rendered")
	}
}

func TestGlobalInitializers(t *testing.T) {
	src := "int a[2][2] = {{1, 2}, {3, 4}};\nshort b = -7;\nint main(void) { return 0; }\n"
	prog := MustParse(src)
	g := prog.Global("a")
	if g.Init == nil || len(g.Init.List) != 2 || g.Init.List[1].List[0].Scalar != 3 {
		t.Errorf("array init wrong: %+v", g.Init)
	}
	if prog.Global("b").Init.Scalar != -7 {
		t.Error("negative scalar init wrong")
	}
	// Over-long initialisers are rejected.
	if _, err := Parse("int a[1] = {1, 2}; int main(void) { return 0; }"); err == nil {
		prog, _ := Parse("int a[1] = {1, 2}; int main(void) { return 0; }")
		if err := Check(prog); err == nil {
			t.Error("oversized initialiser accepted")
		}
	}
}
