package minic

// Clone returns a deep copy of prog. Types are shared (they are immutable);
// all declarations, statements and expressions are fresh nodes. The reducer
// relies on Clone to mutate candidate programs without disturbing the
// original.
func Clone(p *Program) *Program {
	out := &Program{}
	for _, g := range p.Globals {
		out.Globals = append(out.Globals, &GlobalDecl{
			Name: g.Name, Type: g.Type, Volatile: g.Volatile,
			Init: cloneInit(g.Init), Line: g.Line,
		})
	}
	for _, f := range p.Funcs {
		nf := &FuncDecl{Name: f.Name, Ret: f.Ret, Opaque: f.Opaque, Line: f.Line}
		for _, pa := range f.Params {
			nf.Params = append(nf.Params, &Param{Name: pa.Name, Type: pa.Type})
		}
		if f.Body != nil {
			nf.Body = cloneBlock(f.Body)
		}
		out.Funcs = append(out.Funcs, nf)
	}
	return out
}

func cloneInit(iv *InitValue) *InitValue {
	if iv == nil {
		return nil
	}
	out := &InitValue{Scalar: iv.Scalar}
	if iv.List != nil {
		out.List = make([]*InitValue, len(iv.List))
		for i, sub := range iv.List {
			out.List[i] = cloneInit(sub)
		}
	}
	return out
}

func cloneBlock(b *Block) *Block {
	out := &Block{Line: b.Line}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, CloneStmt(s))
	}
	return out
}

// CloneStmt returns a deep copy of a statement.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *Block:
		return cloneBlock(x)
	case *DeclStmt:
		out := &DeclStmt{Line: x.Line}
		for _, v := range x.Vars {
			out.Vars = append(out.Vars, &VarDecl{
				Name: v.Name, Type: v.Type, Init: CloneExpr(v.Init), Line: v.Line,
			})
		}
		return out
	case *AssignStmt:
		return &AssignStmt{LHS: CloneExpr(x.LHS), RHS: CloneExpr(x.RHS), Line: x.Line}
	case *IfStmt:
		out := &IfStmt{Cond: CloneExpr(x.Cond), Then: cloneBlock(x.Then), Line: x.Line}
		if x.Else != nil {
			out.Else = cloneBlock(x.Else)
		}
		return out
	case *ForStmt:
		out := &ForStmt{Body: cloneBlock(x.Body), Line: x.Line}
		if x.Init != nil {
			out.Init = CloneStmt(x.Init)
		}
		if x.Cond != nil {
			out.Cond = CloneExpr(x.Cond)
		}
		if x.Post != nil {
			out.Post = CloneStmt(x.Post)
		}
		return out
	case *WhileStmt:
		return &WhileStmt{Cond: CloneExpr(x.Cond), Body: cloneBlock(x.Body), Line: x.Line}
	case *ExprStmt:
		return &ExprStmt{X: CloneExpr(x.X), Line: x.Line}
	case *ReturnStmt:
		return &ReturnStmt{X: CloneExpr(x.X), Line: x.Line}
	case *GotoStmt:
		return &GotoStmt{Label: x.Label, Line: x.Line}
	case *LabeledStmt:
		return &LabeledStmt{Label: x.Label, Stmt: CloneStmt(x.Stmt), Line: x.Line}
	case *BreakStmt:
		return &BreakStmt{Line: x.Line}
	case *ContinueStmt:
		return &ContinueStmt{Line: x.Line}
	}
	panic("minic: CloneStmt: unknown statement")
}

// CloneExpr returns a deep copy of an expression (nil-safe).
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *IntLit:
		return &IntLit{Value: x.Value, Typ: x.Typ, Line: x.Line}
	case *VarRef:
		return &VarRef{Name: x.Name, Typ: x.Typ, Line: x.Line}
	case *IndexExpr:
		return &IndexExpr{Base: CloneExpr(x.Base), Index: CloneExpr(x.Index), Typ: x.Typ, Line: x.Line}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: CloneExpr(x.X), Typ: x.Typ, Line: x.Line}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, X: CloneExpr(x.X), Y: CloneExpr(x.Y), Typ: x.Typ, Line: x.Line}
	case *AssignExpr:
		return &AssignExpr{LHS: CloneExpr(x.LHS), RHS: CloneExpr(x.RHS), Typ: x.Typ, Line: x.Line}
	case *CallExpr:
		out := &CallExpr{Name: x.Name, Typ: x.Typ, Line: x.Line}
		for _, a := range x.Args {
			out.Args = append(out.Args, CloneExpr(a))
		}
		return out
	}
	panic("minic: CloneExpr: unknown expression")
}
