package minic

import "strings"

// Function-granular fingerprinting. The frontend lowers each function from
// exactly two inputs: the function's own canonical text, and the
// signatures/shapes of the symbols the body can resolve outside itself —
// the return type and opaqueness of every called function, and the type
// (hence size and array/pointer shape) of every referenced global. FnID
// captures both, so a cached lowering may be reused whenever the pair
// matches, regardless of what the rest of the program looks like.

// FnID identifies one function's config-invariant lowering: a hash of the
// function's canonical body text and a digest of the external declarations
// it references. Consumers pair the hashes with the full source texts in
// cache keys (as the engine does for whole programs), so a hash collision
// cannot alias two functions.
type FnID struct {
	Body uint64 // FingerprintSource over FnSource
	Deps uint64 // FingerprintSource over FnDepsSource
}

// FnFingerprint fingerprints f's lowering within prog.
func FnFingerprint(prog *Program, f *FuncDecl) FnID {
	return FnID{
		Body: FingerprintSource(FnSource(f)),
		Deps: FingerprintSource(FnDepsSource(prog, f)),
	}
}

// FnSources returns the canonical rendering of every function of prog —
// element i equals FnSource(prog.Funcs[i]) — from a single whole-program
// render: in the canonical layout each function is a contiguous chunk of
// the program text, so the per-function texts are slices of one rendering
// instead of len(Funcs) separate ones. prog must be canonically laid out
// (AssignLines) so the stored function start lines match the rendering;
// if they do not, the per-function renderer is used as a fallback.
func FnSources(prog *Program) []string {
	return FnSourcesFromRender(prog, Render(prog))
}

// FnSourcesFromRender is FnSources for a caller that already holds the
// canonical rendering of prog (the engine renders every program once for
// its module-level cache key); src must equal Render(prog).
func FnSourcesFromRender(prog *Program, src string) []string {
	out := make([]string, len(prog.Funcs))
	if len(prog.Funcs) == 0 {
		return out
	}
	starts := make([]int, len(prog.Funcs))
	line, off, fi := 1, 0, 0
	for fi < len(prog.Funcs) {
		if line == prog.Funcs[fi].Line {
			starts[fi] = off
			fi++
			if fi == len(prog.Funcs) {
				break
			}
			continue
		}
		nl := strings.IndexByte(src[off:], '\n')
		if nl < 0 {
			break
		}
		off += nl + 1
		line++
	}
	if fi < len(prog.Funcs) {
		// Stored lines do not match the canonical layout: render each
		// function on its own.
		for i, fd := range prog.Funcs {
			out[i] = FnSource(fd)
		}
		return out
	}
	for i := range prog.Funcs {
		end := len(src)
		if i+1 < len(prog.Funcs) {
			end = starts[i+1]
		}
		out[i] = src[starts[i]:end]
	}
	return out
}

// FnDepsSource renders the external declarations f's body can reference:
// one line per referenced global ("[volatile ]<type> <name>") and one per
// called function ("[extern ]<ret> <name>(<params>)"), in program order.
// Global initialisers are omitted — a function's lowering does not depend
// on them. Name references are over-approximated (a local shadowing a
// global still counts the global), which can only cause a spurious cache
// miss, never a wrong hit.
func FnDepsSource(prog *Program, f *FuncDecl) string {
	vars := map[string]bool{}
	calls := map[string]bool{}
	if f.Body != nil {
		for _, s := range f.Body.Stmts {
			collectStmtRefs(s, vars, calls)
		}
	}
	var b strings.Builder
	for _, g := range prog.Globals {
		if vars[g.Name] {
			writeGlobalSig(&b, g)
		}
	}
	for _, fd := range prog.Funcs {
		if calls[fd.Name] {
			writeFuncSig(&b, fd)
		}
	}
	return b.String()
}

// writeGlobalSig writes g's FnDepsSource line: "[volatile ]<type> <name>\n".
func writeGlobalSig(b *strings.Builder, g *GlobalDecl) {
	if g.Volatile {
		b.WriteString("volatile ")
	}
	b.WriteString(g.Type.String())
	b.WriteByte(' ')
	b.WriteString(g.Name)
	b.WriteByte('\n')
}

// writeFuncSig writes f's FnDepsSource line: "[extern ]<ret> <name>(<params>)\n".
func writeFuncSig(b *strings.Builder, f *FuncDecl) {
	if f.Opaque {
		b.WriteString("extern ")
	}
	b.WriteString(f.Ret.String())
	b.WriteByte(' ')
	b.WriteString(f.Name)
	b.WriteByte('(')
	b.WriteString(paramsText(f.Params))
	b.WriteString(")\n")
}

// FnDepsIndex amortizes FnDepsSource over all the functions of one
// program: every declaration's signature line is rendered once up front,
// and the reference-collection maps are reused between functions. Source
// returns exactly FnDepsSource(prog, f).
type FnDepsIndex struct {
	prog  *Program
	gsigs []string
	fsigs []string
	vars  map[string]bool
	calls map[string]bool
}

// NewFnDepsIndex builds the signature-line index for prog.
func NewFnDepsIndex(prog *Program) *FnDepsIndex {
	ix := &FnDepsIndex{
		prog:  prog,
		gsigs: make([]string, len(prog.Globals)),
		fsigs: make([]string, len(prog.Funcs)),
		vars:  map[string]bool{},
		calls: map[string]bool{},
	}
	var b strings.Builder
	for i, g := range prog.Globals {
		b.Reset()
		writeGlobalSig(&b, g)
		ix.gsigs[i] = b.String()
	}
	for i, fd := range prog.Funcs {
		b.Reset()
		writeFuncSig(&b, fd)
		ix.fsigs[i] = b.String()
	}
	return ix
}

// Source returns FnDepsSource(prog, f) using the precomputed index.
func (ix *FnDepsIndex) Source(f *FuncDecl) string {
	clear(ix.vars)
	clear(ix.calls)
	if f.Body != nil {
		for _, s := range f.Body.Stmts {
			collectStmtRefs(s, ix.vars, ix.calls)
		}
	}
	n := 0
	for i, g := range ix.prog.Globals {
		if ix.vars[g.Name] {
			n += len(ix.gsigs[i])
		}
	}
	for i, fd := range ix.prog.Funcs {
		if ix.calls[fd.Name] {
			n += len(ix.fsigs[i])
		}
	}
	var b strings.Builder
	b.Grow(n)
	for i, g := range ix.prog.Globals {
		if ix.vars[g.Name] {
			b.WriteString(ix.gsigs[i])
		}
	}
	for i, fd := range ix.prog.Funcs {
		if ix.calls[fd.Name] {
			b.WriteString(ix.fsigs[i])
		}
	}
	return b.String()
}

// collectStmtRefs records every variable name and every callee name that
// appears anywhere under s. It visits the same nodes as WalkStmt + Exprs +
// WalkExpr but with direct recursion, keeping the per-function dependency
// digest off the allocator on the incremental frontend's hot path.
func collectStmtRefs(s Stmt, vars, calls map[string]bool) {
	switch x := s.(type) {
	case *Block:
		for _, st := range x.Stmts {
			collectStmtRefs(st, vars, calls)
		}
	case *DeclStmt:
		for _, v := range x.Vars {
			collectExprRefs(v.Init, vars, calls)
		}
	case *AssignStmt:
		collectExprRefs(x.LHS, vars, calls)
		collectExprRefs(x.RHS, vars, calls)
	case *IfStmt:
		collectExprRefs(x.Cond, vars, calls)
		collectStmtRefs(x.Then, vars, calls)
		if x.Else != nil {
			collectStmtRefs(x.Else, vars, calls)
		}
	case *ForStmt:
		collectExprRefs(x.Cond, vars, calls)
		if x.Init != nil {
			collectStmtRefs(x.Init, vars, calls)
		}
		if x.Post != nil {
			collectStmtRefs(x.Post, vars, calls)
		}
		collectStmtRefs(x.Body, vars, calls)
	case *WhileStmt:
		collectExprRefs(x.Cond, vars, calls)
		collectStmtRefs(x.Body, vars, calls)
	case *LabeledStmt:
		collectStmtRefs(x.Stmt, vars, calls)
	case *ExprStmt:
		collectExprRefs(x.X, vars, calls)
	case *ReturnStmt:
		collectExprRefs(x.X, vars, calls)
	}
}

func collectExprRefs(e Expr, vars, calls map[string]bool) {
	switch x := e.(type) {
	case *VarRef:
		vars[x.Name] = true
	case *IndexExpr:
		collectExprRefs(x.Base, vars, calls)
		collectExprRefs(x.Index, vars, calls)
	case *UnaryExpr:
		collectExprRefs(x.X, vars, calls)
	case *BinaryExpr:
		collectExprRefs(x.X, vars, calls)
		collectExprRefs(x.Y, vars, calls)
	case *AssignExpr:
		collectExprRefs(x.LHS, vars, calls)
		collectExprRefs(x.RHS, vars, calls)
	case *CallExpr:
		calls[x.Name] = true
		for _, a := range x.Args {
			collectExprRefs(a, vars, calls)
		}
	}
}

// GlobalsSource returns the canonical rendering of the program's global
// declaration prologue — the first len(prog.Globals) lines of Render. In
// the canonical layout globals always occupy lines 1..N, so this text
// fully determines the lowered globals table including declaration lines.
func GlobalsSource(prog *Program) string {
	var b strings.Builder
	for _, g := range prog.Globals {
		b.WriteString(globalText(g))
		b.WriteByte('\n')
	}
	return b.String()
}
