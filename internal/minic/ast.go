package minic

// This file defines the MiniC abstract syntax tree. Every statement and
// expression carries the source line it appears on; for generated programs
// the layout pass (AssignLines) synchronises lines with the printer so that
// the debugger, the conjecture checkers, and the reducer all agree on line
// identity.

// Node is implemented by every AST node.
type Node interface {
	Pos() int // source line, 1-based; 0 if not laid out yet
}

// Program is a whole MiniC translation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a file-scope variable, optionally volatile and
// optionally initialised.
type GlobalDecl struct {
	Name     string
	Type     Type
	Volatile bool
	Init     *InitValue // nil means zero-initialised
	Line     int
}

func (d *GlobalDecl) Pos() int { return d.Line }

// InitValue is a (possibly nested) initialiser: either a scalar or a list.
type InitValue struct {
	Scalar int64
	List   []*InitValue // non-nil for aggregate initialisers
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl declares (and, unless Opaque, defines) a function.
type FuncDecl struct {
	Name   string
	Params []*Param
	Ret    Type
	Body   *Block // nil when Opaque
	Opaque bool   // declared extern: the optimizer knows nothing about it
	Line   int
}

func (d *FuncDecl) Pos() int { return d.Line }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Line  int
}

// VarDecl is a single local variable declaration with optional initialiser.
type VarDecl struct {
	Name string
	Type Type
	Init Expr // may be nil
	Line int
}

// DeclStmt declares one or more local variables.
type DeclStmt struct {
	Vars []*VarDecl
	Line int
}

// AssignStmt assigns RHS to LHS. LHS is a VarRef, IndexExpr or UnaryExpr
// with op Deref.
type AssignStmt struct {
	LHS  Expr
	RHS  Expr
	Line int
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Line int
}

// ForStmt is a C-style for loop; any of Init, Cond, Post may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body *Block
	Line int
}

// WhileStmt loops while Cond is nonzero.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Line int
}

// ExprStmt evaluates an expression for its side effects (calls, assignment
// expressions).
type ExprStmt struct {
	X    Expr
	Line int
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X    Expr // nil for void returns
	Line int
}

// GotoStmt jumps to a label in the same function.
type GotoStmt struct {
	Label string
	Line  int
}

// LabeledStmt attaches a label to a statement.
type LabeledStmt struct {
	Label string
	Stmt  Stmt
	Line  int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ Line int }

func (s *Block) stmt()        {}
func (s *DeclStmt) stmt()     {}
func (s *AssignStmt) stmt()   {}
func (s *IfStmt) stmt()       {}
func (s *ForStmt) stmt()      {}
func (s *WhileStmt) stmt()    {}
func (s *ExprStmt) stmt()     {}
func (s *ReturnStmt) stmt()   {}
func (s *GotoStmt) stmt()     {}
func (s *LabeledStmt) stmt()  {}
func (s *BreakStmt) stmt()    {}
func (s *ContinueStmt) stmt() {}

func (s *Block) Pos() int        { return s.Line }
func (s *DeclStmt) Pos() int     { return s.Line }
func (s *AssignStmt) Pos() int   { return s.Line }
func (s *IfStmt) Pos() int       { return s.Line }
func (s *ForStmt) Pos() int      { return s.Line }
func (s *WhileStmt) Pos() int    { return s.Line }
func (s *ExprStmt) Pos() int     { return s.Line }
func (s *ReturnStmt) Pos() int   { return s.Line }
func (s *GotoStmt) Pos() int     { return s.Line }
func (s *LabeledStmt) Pos() int  { return s.Line }
func (s *BreakStmt) Pos() int    { return s.Line }
func (s *ContinueStmt) Pos() int { return s.Line }

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
	// Type returns the checked type of the expression; nil before checking.
	ExprType() Type
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Typ   Type
	Line  int
}

// VarRef names a local, parameter or global.
type VarRef struct {
	Name string
	Typ  Type
	Line int
}

// IndexExpr indexes an array: Base[Index]. Multi-dimensional accesses nest.
type IndexExpr struct {
	Base  Expr
	Index Expr
	Typ   Type
	Line  int
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	Neg    UnaryOp = iota // -x
	LogNot                // !x
	BitNot                // ~x
	Addr                  // &x
	Deref                 // *x
)

func (op UnaryOp) String() string {
	return [...]string{"-", "!", "~", "&", "*"}[op]
}

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Op   UnaryOp
	X    Expr
	Typ  Type
	Line int
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	LogAnd
	LogOr
)

func (op BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
		"==", "!=", "<", "<=", ">", ">=", "&&", "||"}[op]
}

// IsComparison reports whether op yields a boolean 0/1 result.
func (op BinOp) IsComparison() bool { return op >= Eq && op <= Ge }

// IsLogical reports whether op is short-circuiting.
func (op BinOp) IsLogical() bool { return op == LogAnd || op == LogOr }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinOp
	X, Y Expr
	Typ  Type
	Line int
}

// AssignExpr is an assignment used as an expression, e.g. (v2 = a) == 0.
type AssignExpr struct {
	LHS  Expr // VarRef, IndexExpr, or Deref UnaryExpr
	RHS  Expr
	Typ  Type
	Line int
}

// CallExpr calls a named function.
type CallExpr struct {
	Name string
	Args []Expr
	Typ  Type
	Line int
}

func (e *IntLit) expr()     {}
func (e *VarRef) expr()     {}
func (e *IndexExpr) expr()  {}
func (e *UnaryExpr) expr()  {}
func (e *BinaryExpr) expr() {}
func (e *AssignExpr) expr() {}
func (e *CallExpr) expr()   {}

func (e *IntLit) Pos() int     { return e.Line }
func (e *VarRef) Pos() int     { return e.Line }
func (e *IndexExpr) Pos() int  { return e.Line }
func (e *UnaryExpr) Pos() int  { return e.Line }
func (e *BinaryExpr) Pos() int { return e.Line }
func (e *AssignExpr) Pos() int { return e.Line }
func (e *CallExpr) Pos() int   { return e.Line }

func (e *IntLit) ExprType() Type     { return e.Typ }
func (e *VarRef) ExprType() Type     { return e.Typ }
func (e *IndexExpr) ExprType() Type  { return e.Typ }
func (e *UnaryExpr) ExprType() Type  { return e.Typ }
func (e *BinaryExpr) ExprType() Type { return e.Typ }
func (e *AssignExpr) ExprType() Type { return e.Typ }
func (e *CallExpr) ExprType() Type   { return e.Typ }

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global named name, or nil.
func (p *Program) Global(name string) *GlobalDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// WalkExpr calls fn for e and every sub-expression, pre-order. If fn returns
// false the walk does not descend into the node's children.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *IndexExpr:
		WalkExpr(x.Base, fn)
		WalkExpr(x.Index, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *BinaryExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Y, fn)
	case *AssignExpr:
		WalkExpr(x.LHS, fn)
		WalkExpr(x.RHS, fn)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	}
}

// WalkStmt calls fn for s and every nested statement, pre-order. If fn
// returns false the walk does not descend.
func WalkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch x := s.(type) {
	case *Block:
		for _, st := range x.Stmts {
			WalkStmt(st, fn)
		}
	case *IfStmt:
		WalkStmt(x.Then, fn)
		if x.Else != nil {
			WalkStmt(x.Else, fn)
		}
	case *ForStmt:
		if x.Init != nil {
			WalkStmt(x.Init, fn)
		}
		if x.Post != nil {
			WalkStmt(x.Post, fn)
		}
		WalkStmt(x.Body, fn)
	case *WhileStmt:
		WalkStmt(x.Body, fn)
	case *LabeledStmt:
		WalkStmt(x.Stmt, fn)
	}
}

// Exprs returns the expressions directly contained in s (not recursing into
// nested statements).
func Exprs(s Stmt) []Expr {
	switch x := s.(type) {
	case *DeclStmt:
		var out []Expr
		for _, v := range x.Vars {
			if v.Init != nil {
				out = append(out, v.Init)
			}
		}
		return out
	case *AssignStmt:
		return []Expr{x.LHS, x.RHS}
	case *IfStmt:
		return []Expr{x.Cond}
	case *ForStmt:
		if x.Cond != nil {
			return []Expr{x.Cond}
		}
	case *WhileStmt:
		return []Expr{x.Cond}
	case *ExprStmt:
		return []Expr{x.X}
	case *ReturnStmt:
		if x.X != nil {
			return []Expr{x.X}
		}
	}
	return nil
}
