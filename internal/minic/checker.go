package minic

import (
	"fmt"
)

// Check type-checks prog, filling in the Typ fields of expressions and
// validating name resolution, lvalue-ness, label targets and return types.
// It returns the first error found, or nil.
func Check(prog *Program) error {
	c := &checker{prog: prog, globals: map[string]*GlobalDecl{}, funcs: map[string]*FuncDecl{}}
	for _, g := range prog.Globals {
		if c.globals[g.Name] != nil {
			return fmt.Errorf("minic: line %d: duplicate global %q", g.Line, g.Name)
		}
		if err := checkInit(g.Type, g.Init, g.Line); err != nil {
			return err
		}
		c.globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if c.funcs[f.Name] != nil {
			return fmt.Errorf("minic: line %d: duplicate function %q", f.Line, f.Name)
		}
		c.funcs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		if f.Opaque {
			continue
		}
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func checkInit(t Type, iv *InitValue, line int) error {
	if iv == nil {
		return nil
	}
	switch tt := t.(type) {
	case *ArrayType:
		if iv.List == nil {
			return fmt.Errorf("minic: line %d: scalar initialiser for array", line)
		}
		if len(iv.List) > tt.Len {
			return fmt.Errorf("minic: line %d: too many initialisers (%d > %d)", line, len(iv.List), tt.Len)
		}
		for _, sub := range iv.List {
			if err := checkInit(tt.Elem, sub, line); err != nil {
				return err
			}
		}
	case *IntType:
		if iv.List != nil {
			return fmt.Errorf("minic: line %d: aggregate initialiser for scalar", line)
		}
	case *PointerType:
		if iv.List != nil || iv.Scalar != 0 {
			return fmt.Errorf("minic: line %d: pointer globals may only be zero-initialised", line)
		}
	}
	return nil
}

// promote applies C-style usual arithmetic conversions, simplified: the
// result width is the wider of the operands but at least 32 bits, and the
// result is unsigned if either promoted operand is unsigned.
func promote(a, b Type) Type {
	at, aok := a.(*IntType)
	bt, bok := b.(*IntType)
	if !aok || !bok {
		// Pointer arithmetic yields the pointer operand's type.
		if IsPointer(a) {
			return a
		}
		if IsPointer(b) {
			return b
		}
		return Int64
	}
	w := at.Width
	if bt.Width > w {
		w = bt.Width
	}
	if w < 32 {
		w = 32
	}
	unsigned := (at.Unsigned && at.Width >= w) || (bt.Unsigned && bt.Width >= w)
	switch {
	case w == 32 && !unsigned:
		return Int32
	case w == 32:
		return Uint32
	case w == 64 && !unsigned:
		return Int64
	default:
		return Uint64
	}
}

type checker struct {
	prog    *Program
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl

	fn     *FuncDecl
	scopes []map[string]Type
	labels map[string]bool
	gotos  []*GotoStmt
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t Type, line int) error {
	top := c.scopes[len(c.scopes)-1]
	if top[name] != nil {
		return fmt.Errorf("minic: line %d: duplicate local %q", line, name)
	}
	top[name] = t
	return nil
}

func (c *checker) lookup(name string) Type {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t := c.scopes[i][name]; t != nil {
			return t
		}
	}
	if g := c.globals[name]; g != nil {
		return g.Type
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = nil
	c.labels = map[string]bool{}
	c.gotos = nil
	c.push()
	for _, p := range f.Params {
		if err := c.declare(p.Name, p.Type, f.Line); err != nil {
			return err
		}
	}
	// Collect labels first so forward gotos resolve.
	WalkStmt(f.Body, func(s Stmt) bool {
		if ls, ok := s.(*LabeledStmt); ok {
			c.labels[ls.Label] = true
		}
		return true
	})
	if err := c.checkBlock(f.Body); err != nil {
		return err
	}
	c.pop()
	for _, g := range c.gotos {
		if !c.labels[g.Label] {
			return fmt.Errorf("minic: line %d: goto to undefined label %q", g.Line, g.Label)
		}
	}
	return nil
}

func (c *checker) checkBlock(b *Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch x := s.(type) {
	case *Block:
		return c.checkBlock(x)
	case *DeclStmt:
		for _, v := range x.Vars {
			if v.Init != nil {
				if _, err := c.checkExpr(v.Init); err != nil {
					return err
				}
			}
			if err := c.declare(v.Name, v.Type, v.Line); err != nil {
				return err
			}
		}
	case *AssignStmt:
		lt, err := c.checkExpr(x.LHS)
		if err != nil {
			return err
		}
		if !isLValue(x.LHS) {
			return fmt.Errorf("minic: line %d: assignment to non-lvalue", x.Line)
		}
		if IsArray(lt) {
			return fmt.Errorf("minic: line %d: assignment to array", x.Line)
		}
		if _, err := c.checkExpr(x.RHS); err != nil {
			return err
		}
	case *IfStmt:
		if _, err := c.checkExpr(x.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(x.Then); err != nil {
			return err
		}
		if x.Else != nil {
			return c.checkBlock(x.Else)
		}
	case *ForStmt:
		c.push()
		defer c.pop()
		if x.Init != nil {
			if err := c.checkStmt(x.Init); err != nil {
				return err
			}
		}
		if x.Cond != nil {
			if _, err := c.checkExpr(x.Cond); err != nil {
				return err
			}
		}
		if x.Post != nil {
			if err := c.checkStmt(x.Post); err != nil {
				return err
			}
		}
		return c.checkBlock(x.Body)
	case *WhileStmt:
		if _, err := c.checkExpr(x.Cond); err != nil {
			return err
		}
		return c.checkBlock(x.Body)
	case *ExprStmt:
		_, err := c.checkExpr(x.X)
		return err
	case *ReturnStmt:
		if x.X != nil {
			if Equal(c.fn.Ret, Void) {
				return fmt.Errorf("minic: line %d: return with value in void function %q", x.Line, c.fn.Name)
			}
			_, err := c.checkExpr(x.X)
			return err
		}
	case *GotoStmt:
		c.gotos = append(c.gotos, x)
	case *LabeledStmt:
		return c.checkStmt(x.Stmt)
	case *BreakStmt, *ContinueStmt:
		// Loop-nesting validity is enforced by the parser's grammar users;
		// the IR lowering rejects stray break/continue.
	default:
		return fmt.Errorf("minic: unknown statement %T", s)
	}
	return nil
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.Typ == nil {
			x.Typ = Int32
		}
		return x.Typ, nil
	case *VarRef:
		t := c.lookup(x.Name)
		if t == nil {
			return nil, fmt.Errorf("minic: line %d: undefined variable %q", x.Line, x.Name)
		}
		x.Typ = t
		return t, nil
	case *IndexExpr:
		bt, err := c.checkExpr(x.Base)
		if err != nil {
			return nil, err
		}
		et := ElemType(bt)
		if et == nil {
			return nil, fmt.Errorf("minic: line %d: indexing non-array", x.Line)
		}
		if _, err := c.checkExpr(x.Index); err != nil {
			return nil, err
		}
		x.Typ = et
		return et, nil
	case *UnaryExpr:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case Addr:
			if !isLValue(x.X) {
				return nil, fmt.Errorf("minic: line %d: address of non-lvalue", x.Line)
			}
			x.Typ = &PointerType{Elem: xt}
		case Deref:
			pt, ok := xt.(*PointerType)
			if !ok {
				return nil, fmt.Errorf("minic: line %d: dereference of non-pointer", x.Line)
			}
			x.Typ = pt.Elem
		case LogNot:
			x.Typ = Int32
		default:
			if !IsInt(xt) {
				return nil, fmt.Errorf("minic: line %d: unary %s on non-integer", x.Line, x.Op)
			}
			x.Typ = xt
		}
		return x.Typ, nil
	case *BinaryExpr:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if _, err := c.checkExpr(x.Y); err != nil {
			return nil, err
		}
		if x.Op.IsComparison() || x.Op.IsLogical() {
			x.Typ = Int32
		} else {
			x.Typ = promote(xt, x.Y.ExprType())
		}
		return x.Typ, nil
	case *AssignExpr:
		lt, err := c.checkExpr(x.LHS)
		if err != nil {
			return nil, err
		}
		if !isLValue(x.LHS) {
			return nil, fmt.Errorf("minic: line %d: assignment to non-lvalue", x.Line)
		}
		if _, err := c.checkExpr(x.RHS); err != nil {
			return nil, err
		}
		x.Typ = lt
		return lt, nil
	case *CallExpr:
		f := c.funcs[x.Name]
		if f == nil {
			return nil, fmt.Errorf("minic: line %d: call to undefined function %q", x.Line, x.Name)
		}
		if !f.Opaque && len(x.Args) != len(f.Params) {
			return nil, fmt.Errorf("minic: line %d: call to %q with %d args, want %d",
				x.Line, x.Name, len(x.Args), len(f.Params))
		}
		for _, a := range x.Args {
			if _, err := c.checkExpr(a); err != nil {
				return nil, err
			}
		}
		x.Typ = f.Ret
		return f.Ret, nil
	}
	return nil, fmt.Errorf("minic: unknown expression %T", e)
}

// MustParse parses, lays out and checks src, panicking on error. It is a
// convenience for tests and examples.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	AssignLines(prog)
	if err := Check(prog); err != nil {
		panic(err)
	}
	return prog
}
