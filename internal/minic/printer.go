package minic

import (
	"fmt"
	"strings"
)

// This file implements the canonical source layout for MiniC programs.
// Render prints a program one statement per line; AssignLines walks the AST
// in exactly the same order and stores the resulting line numbers on the
// nodes. The two are kept in lockstep by deriving both from the same
// layout walker, so that a rendered program re-parses to an AST with
// identical line numbers. Line identity is load-bearing: the debugger's
// line table, the conjecture checkers, and the reducer all key on it.

// Render returns the canonical source text of prog. It does not mutate the
// AST; use AssignLines to stamp canonical line numbers onto the nodes.
func Render(prog *Program) string {
	var w layoutWriter
	w.program(prog)
	return w.b.String()
}

// AssignLines assigns canonical line numbers to every node of prog without
// building the source text (it still walks the full layout).
func AssignLines(prog *Program) {
	w := layoutWriter{discard: true, assign: true}
	w.program(prog)
}

// FnSource returns the canonical rendering of a single function declaration
// in isolation, laid out as if it started at line 1. The text is
// position-independent: two functions with equal FnSource lower to
// identical IR up to a uniform line shift and global-pointer identity.
func FnSource(f *FuncDecl) string {
	var w layoutWriter
	w.funcDecl(f)
	return w.b.String()
}

type layoutWriter struct {
	b       strings.Builder
	line    int
	indent  int
	discard bool // skip text construction: only the line counter is needed
	assign  bool // write computed line numbers back into the AST nodes
}

// emit writes one full source line and returns its line number.
func (w *layoutWriter) emit(text string) int {
	w.line++
	if !w.discard {
		for i := 0; i < w.indent; i++ {
			w.b.WriteString("  ")
		}
		w.b.WriteString(text)
		w.b.WriteByte('\n')
	}
	return w.line
}

// set stores line into dst only when the writer is in assigning mode.
func (w *layoutWriter) set(dst *int, line int) {
	if w.assign {
		*dst = line
	}
}

func (w *layoutWriter) exprLine(e Expr, line int) {
	if w.assign {
		setExprLine(e, line)
	}
}

func (w *layoutWriter) stmtLine(s Stmt, line int) {
	if w.assign {
		setStmtLine(s, line)
	}
}

func (w *layoutWriter) program(p *Program) {
	for _, g := range p.Globals {
		w.set(&g.Line, w.emit(globalText(g)))
	}
	for _, f := range p.Funcs {
		w.funcDecl(f)
	}
}

func (w *layoutWriter) funcDecl(f *FuncDecl) {
	if f.Opaque {
		w.set(&f.Line, w.emit(fmt.Sprintf("extern %s %s(%s);", f.Ret, f.Name, paramsText(f.Params))))
		return
	}
	ln := w.emit(fmt.Sprintf("%s %s(%s) {", f.Ret, f.Name, paramsText(f.Params)))
	w.set(&f.Line, ln)
	w.set(&f.Body.Line, ln)
	w.indent++
	w.stmts(f.Body.Stmts)
	w.indent--
	w.emit("}")
}

func globalText(g *GlobalDecl) string {
	var sb strings.Builder
	if g.Volatile {
		sb.WriteString("volatile ")
	}
	base, dims := splitArray(g.Type)
	sb.WriteString(base.String())
	sb.WriteByte(' ')
	sb.WriteString(g.Name)
	sb.WriteString(dims)
	if g.Init != nil {
		sb.WriteString(" = ")
		sb.WriteString(initText(g.Init))
	}
	sb.WriteByte(';')
	return sb.String()
}

// splitArray separates the element type from the [N][M] suffix text.
func splitArray(t Type) (Type, string) {
	dims := ""
	for {
		at, ok := t.(*ArrayType)
		if !ok {
			return t, dims
		}
		dims += fmt.Sprintf("[%d]", at.Len)
		t = at.Elem
	}
}

func initText(iv *InitValue) string {
	if iv.List == nil {
		return fmt.Sprintf("%d", iv.Scalar)
	}
	parts := make([]string, len(iv.List))
	for i, sub := range iv.List {
		parts[i] = initText(sub)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func paramsText(ps []*Param) string {
	if len(ps) == 0 {
		return "void"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Type.String() + " " + p.Name
	}
	return strings.Join(parts, ", ")
}

func (w *layoutWriter) stmts(ss []Stmt) {
	for _, s := range ss {
		w.stmt(s)
	}
}

// stmt lays out one statement. Compound statements occupy a header line plus
// their bodies; simple statements occupy exactly one line.
func (w *layoutWriter) stmt(s Stmt) {
	switch x := s.(type) {
	case *Block:
		if len(x.Stmts) == 0 {
			w.set(&x.Line, w.emit(";"))
			return
		}
		w.set(&x.Line, w.emit("{"))
		w.indent++
		w.stmts(x.Stmts)
		w.indent--
		w.emit("}")
	case *DeclStmt:
		ln := w.emit(declText(x))
		w.set(&x.Line, ln)
		if w.assign {
			for _, v := range x.Vars {
				v.Line = ln
				if v.Init != nil {
					setExprLine(v.Init, ln)
				}
			}
		}
	case *AssignStmt:
		ln := w.emit(exprText(x.LHS) + " = " + exprText(x.RHS) + ";")
		w.set(&x.Line, ln)
		w.exprLine(x.LHS, ln)
		w.exprLine(x.RHS, ln)
	case *IfStmt:
		ln := w.emit("if (" + exprText(x.Cond) + ") {")
		w.set(&x.Line, ln)
		w.exprLine(x.Cond, ln)
		w.indent++
		w.stmts(x.Then.Stmts)
		w.set(&x.Then.Line, ln)
		w.indent--
		if x.Else != nil {
			w.emit("} else {")
			w.indent++
			w.stmts(x.Else.Stmts)
			w.set(&x.Else.Line, ln)
			w.indent--
		}
		w.emit("}")
	case *ForStmt:
		hdr := "for ("
		if x.Init != nil {
			hdr += simpleStmtText(x.Init)
		}
		hdr += "; "
		if x.Cond != nil {
			hdr += exprText(x.Cond)
		}
		hdr += "; "
		if x.Post != nil {
			hdr += simpleStmtText(x.Post)
		}
		hdr += ") {"
		ln := w.emit(hdr)
		w.set(&x.Line, ln)
		if x.Init != nil {
			w.stmtLine(x.Init, ln)
		}
		if x.Cond != nil {
			w.exprLine(x.Cond, ln)
		}
		if x.Post != nil {
			w.stmtLine(x.Post, ln)
		}
		w.indent++
		w.stmts(x.Body.Stmts)
		w.set(&x.Body.Line, ln)
		w.indent--
		w.emit("}")
	case *WhileStmt:
		ln := w.emit("while (" + exprText(x.Cond) + ") {")
		w.set(&x.Line, ln)
		w.exprLine(x.Cond, ln)
		w.indent++
		w.stmts(x.Body.Stmts)
		w.set(&x.Body.Line, ln)
		w.indent--
		w.emit("}")
	case *ExprStmt:
		ln := w.emit(exprText(x.X) + ";")
		w.set(&x.Line, ln)
		w.exprLine(x.X, ln)
	case *ReturnStmt:
		if x.X != nil {
			ln := w.emit("return " + exprText(x.X) + ";")
			w.set(&x.Line, ln)
			w.exprLine(x.X, ln)
		} else {
			w.set(&x.Line, w.emit("return;"))
		}
	case *GotoStmt:
		w.set(&x.Line, w.emit("goto "+x.Label+";"))
	case *LabeledStmt:
		// The label shares the line of its statement, as with "f: if (a)".
		w.emitLabeled(x)
	case *BreakStmt:
		w.set(&x.Line, w.emit("break;"))
	case *ContinueStmt:
		w.set(&x.Line, w.emit("continue;"))
	default:
		panic(fmt.Sprintf("minic: unknown statement %T", s))
	}
}

// emitLabeled lays out "label: stmt" keeping the label on the statement's
// first line.
func (w *layoutWriter) emitLabeled(x *LabeledStmt) {
	// Render the inner statement into a sub-writer to find its first line,
	// then splice the label in. To keep line numbers identical between
	// discard and render modes we lay out the inner statement normally and
	// prepend the label text to the first emitted line.
	if w.discard {
		w.set(&x.Line, w.line+1)
		w.stmt(x.Stmt)
		return
	}
	sub := layoutWriter{line: w.line, indent: w.indent, assign: w.assign}
	sub.stmt(x.Stmt)
	rendered := sub.b.String()
	lines := strings.SplitN(rendered, "\n", 2)
	first := strings.TrimLeft(lines[0], " ")
	w.set(&x.Line, w.emit(x.Label+": "+first))
	if len(lines) > 1 && lines[1] != "" {
		w.b.WriteString(lines[1])
		w.line = sub.line
	}
}

func declText(d *DeclStmt) string {
	base, _ := splitArray(d.Vars[0].Type)
	if pt, ok := base.(*PointerType); ok {
		for {
			if inner, ok := pt.Elem.(*PointerType); ok {
				pt = inner
				continue
			}
			break
		}
	}
	// Find the scalar base shared by the declaration group.
	scalar := scalarBase(d.Vars[0].Type)
	parts := make([]string, len(d.Vars))
	for i, v := range d.Vars {
		parts[i] = declaratorText(v.Type, v.Name, scalar)
		if v.Init != nil {
			parts[i] += " = " + exprText(v.Init)
		}
	}
	return scalar.String() + " " + strings.Join(parts, ", ") + ";"
}

// scalarBase strips arrays and pointers down to the underlying scalar type.
func scalarBase(t Type) Type {
	for {
		switch tt := t.(type) {
		case *ArrayType:
			t = tt.Elem
		case *PointerType:
			t = tt.Elem
		default:
			return t
		}
	}
}

// declaratorText renders the declarator for name of type t relative to the
// scalar base (stars before the name, array dims after).
func declaratorText(t Type, name string, scalar Type) string {
	stars := ""
	for {
		pt, ok := t.(*PointerType)
		if !ok {
			break
		}
		stars += "*"
		t = pt.Elem
	}
	_, dims := splitArray(t)
	_ = scalar
	return stars + name + dims
}

func simpleStmtText(s Stmt) string {
	switch x := s.(type) {
	case *AssignStmt:
		return exprText(x.LHS) + " = " + exprText(x.RHS)
	case *ExprStmt:
		return exprText(x.X)
	case *DeclStmt:
		txt := declText(x)
		return strings.TrimSuffix(txt, ";")
	}
	panic(fmt.Sprintf("minic: bad simple statement %T", s))
}

// exprText renders an expression with minimal-but-safe parenthesisation.
func exprText(e Expr) string {
	return exprTextPrec(e, 0)
}

func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		return binPrec[x.Op.String()]
	case *AssignExpr:
		return 0
	case *UnaryExpr:
		return 11
	default:
		return 12
	}
}

func exprTextPrec(e Expr, outer int) string {
	var s string
	switch x := e.(type) {
	case *IntLit:
		s = fmt.Sprintf("%d", x.Value)
	case *VarRef:
		s = x.Name
	case *IndexExpr:
		s = exprTextPrec(x.Base, 11) + "[" + exprText(x.Index) + "]"
	case *UnaryExpr:
		s = x.Op.String() + exprTextPrec(x.X, 11)
	case *BinaryExpr:
		p := binPrec[x.Op.String()]
		s = exprTextPrec(x.X, p-1) + " " + x.Op.String() + " " + exprTextPrec(x.Y, p)
	case *AssignExpr:
		s = exprTextPrec(x.LHS, 11) + " = " + exprTextPrec(x.RHS, 0)
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprText(a)
		}
		s = x.Name + "(" + strings.Join(args, ", ") + ")"
	default:
		panic(fmt.Sprintf("minic: unknown expression %T", e))
	}
	if exprPrec(e) < outer || (outer > 0 && isAssignOrLogical(e)) {
		return "(" + s + ")"
	}
	return s
}

func isAssignOrLogical(e Expr) bool {
	_, ok := e.(*AssignExpr)
	return ok
}

// setExprLine stamps line onto e and all sub-expressions.
func setExprLine(e Expr, line int) {
	WalkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *IntLit:
			n.Line = line
		case *VarRef:
			n.Line = line
		case *IndexExpr:
			n.Line = line
		case *UnaryExpr:
			n.Line = line
		case *BinaryExpr:
			n.Line = line
		case *AssignExpr:
			n.Line = line
		case *CallExpr:
			n.Line = line
		}
		return true
	})
}

// setStmtLine stamps line onto a simple statement and its expressions.
func setStmtLine(s Stmt, line int) {
	switch x := s.(type) {
	case *AssignStmt:
		x.Line = line
		setExprLine(x.LHS, line)
		setExprLine(x.RHS, line)
	case *ExprStmt:
		x.Line = line
		setExprLine(x.X, line)
	case *DeclStmt:
		x.Line = line
		for _, v := range x.Vars {
			v.Line = line
			if v.Init != nil {
				setExprLine(v.Init, line)
			}
		}
	}
}
