package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/container"
	"repro/internal/fuzzgen"
	"repro/internal/minic"
	"repro/internal/store"
)

func testArtifact(t *testing.T, seed int64, cfg compiler.Config) (store.Key, *container.Artifact) {
	t.Helper()
	prog := fuzzgen.GenerateSeed(seed)
	res, err := compiler.Compile(prog, cfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := minic.Render(prog)
	key := store.Key{
		Fingerprint: minic.FingerprintSource(src), SourceLen: len(src),
		Family: string(cfg.Family), Version: cfg.Version, Level: cfg.Level,
	}
	return key, &container.Artifact{
		Exe: res.Exe,
		Prov: container.Provenance{
			Family: key.Family, Version: key.Version, Level: key.Level,
			Fingerprint: key.Fingerprint, SourceLen: key.SourceLen,
		},
		PipelineExecutions: res.PipelineExecutions,
		Applied:            res.Applied,
	}
}

var gcO2 = compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O2"}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, art := testArtifact(t, 3, gcO2)

	if _, ok := s.Get(key); ok {
		t.Fatal("Get hit on an empty store")
	}
	if err := s.Put(key, art); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get missed a just-put artifact")
	}
	if !bytes.Equal(container.Encode(got), container.Encode(art)) {
		t.Fatal("loaded artifact re-encodes differently from the stored one")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit, 1 miss, 1 write, 1 entry", st)
	}
	if st.BytesWritten == 0 || st.BytesRead != st.BytesWritten {
		t.Fatalf("stats %+v: bytes read should equal bytes written", st)
	}
}

func TestOpenScansExistingEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, art := testArtifact(t, 5, gcO2)
	if err := s1.Put(key, art); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store Len = %d, want 1", s2.Len())
	}
	if _, ok := s2.Get(key); !ok {
		t.Fatal("reopened store missed the persisted artifact")
	}
}

func TestOpenQuarantinesGarbageEntries(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef-gc-trunk-O2.mcx"), []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-.mcx files are not ours; they must be left alone.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0 after quarantine", s.Len())
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if _, err := os.Stat(filepath.Join(dir, "deadbeef-gc-trunk-O2.mcx.quarantined")); err != nil {
		t.Fatalf("quarantined file not set aside: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatalf("unrelated file was touched: %v", err)
	}
}

func TestGetQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, art := testArtifact(t, 7, gcO2)
	if err := s.Put(key, art); err != nil {
		t.Fatal(err)
	}

	// Corrupt the payload behind the store's back (header stays valid, so
	// only the full decode catches it).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".mcx") {
			name = e.Name()
		}
	}
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key); ok {
		t.Fatal("Get returned a corrupt artifact")
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	// Quarantine removed it from the index; a fresh Get is a plain miss.
	if _, ok := s.Get(key); ok {
		t.Fatal("Get hit after quarantine")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Hits != 0 {
		t.Fatalf("stats %+v, want 1 quarantined and 0 hits", st)
	}
}

// TestGetQuarantinesRenamedEntry pins the provenance check: a valid
// container filed under the wrong address must miss, not serve a wrong
// artifact.
func TestGetQuarantinesRenamedEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, art := testArtifact(t, 9, gcO2)
	other, _ := testArtifact(t, 11, gcO2)
	if err := s.Put(key, art); err != nil {
		t.Fatal(err)
	}

	// Move the artifact to the other key's address, simulating a renamed or
	// fingerprint-colliding file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	oldPath := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	wrongKey := other
	wrongPath := filepath.Join(dir, wrongKeyFilename(wrongKey))
	if err := os.WriteFile(wrongPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(wrongKey); ok {
		t.Fatal("Get served an artifact whose provenance does not match the key")
	}
	if _, err := os.Stat(wrongPath + ".quarantined"); err != nil {
		t.Fatalf("mismatched entry not quarantined: %v", err)
	}
}

// wrongKeyFilename mirrors the store's address scheme for test setup.
func wrongKeyFilename(k store.Key) string {
	b := make([]byte, 0, 64)
	const hexdigits = "0123456789abcdef"
	for i := 60; i >= 0; i -= 4 {
		b = append(b, hexdigits[(k.Fingerprint>>uint(i))&0xf])
	}
	return string(b) + "-" + k.Family + "-" + k.Version + "-" + k.Level + ".mcx"
}

// TestCrossStoreSharing pins the replica-sharing contract: a Get reads
// disk even when the file appeared after this store's open-time scan.
func TestCrossStoreSharing(t *testing.T) {
	dir := t.TempDir()
	a, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.Open(dir) // opened before the write, index is empty
	if err != nil {
		t.Fatal(err)
	}
	key, art := testArtifact(t, 13, gcO2)
	if err := a.Put(key, art); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(key); !ok {
		t.Fatal("replica store missed an artifact written after its open")
	}
	if b.Len() != 1 {
		t.Fatalf("replica Len = %d, want 1 after live pickup", b.Len())
	}
}

func TestPutRejectsProvenanceMismatch(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, art := testArtifact(t, 15, gcO2)
	key.Level = "O0" // address disagrees with the artifact's provenance
	if err := s.Put(key, art); err == nil {
		t.Fatal("Put accepted an artifact under a mismatched address")
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Writes != 0 {
		t.Fatalf("stats %+v, want 1 write error and 0 writes", st)
	}
}
