package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteBytesCreatesReadableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteBytes(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q, want %q", got, "hello")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteReplacesExistingAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteBytes(path, []byte("new content")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new content" {
		t.Fatalf("content = %q after replace", got)
	}
}

func TestWriteErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteBytes(path, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := Write(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "keep me" {
		t.Fatalf("failed write clobbered the target: %q", got)
	}
	// The temporary file must not linger either.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after failed write, want 1", len(entries))
	}
}
