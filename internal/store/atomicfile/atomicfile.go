// Package atomicfile writes files atomically and durably: content goes to
// a temporary file in the destination directory, is fsynced, widened to the
// conventional 0644, and renamed over the target in one step. A crash at
// any point leaves either the old file or the new one, never a torn mix —
// the contract both the hunt-corpus checkpoints and the artifact store
// depend on.
package atomicfile

import (
	"io"
	"os"
	"path/filepath"
)

// Write atomically replaces path with whatever the callback writes. The
// temporary file lives in path's directory so the final rename never
// crosses a filesystem boundary; it is fsynced before the rename so the
// content is durable by the time the new name is visible, and chmodded to
// 0644 so the artifact is readable like any other checked-in file (CI
// uploads, analysis tooling running as another user).
func Write(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".atomic-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteBytes is Write for callers that already hold the full content.
func WriteBytes(path string, data []byte) error {
	return Write(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
