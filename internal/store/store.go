// Package store is the persistent artifact tier of the compile cache: a
// content-addressed directory of .mcx containers, one per compiled
// (source fingerprint, configuration) pair. File names carry the address —
// <fingerprint>-<family>-<version>-<level>.mcx — so any number of replica
// processes can share one directory with no coordination beyond the
// filesystem: writes are atomic tmp+fsync+rename (internal/store/atomicfile),
// and readers decode whatever complete file the last rename published.
//
// The store is forgiving by design. Open scans the directory and
// quarantines entries whose header is not a valid container (renamed to
// <name>.quarantined, never deleted); a Get that finds a corrupt or
// mismatched entry quarantines it and reports a miss, so one torn file can
// cost a recompile but never a failure or a wrong artifact.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/container"
	"repro/internal/store/atomicfile"
)

// Stats are a store's lifetime counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Writes counts artifacts put.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Writes int64 `json:"writes"`
	// BytesRead and BytesWritten total the container payloads moved.
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// Quarantined counts entries set aside as corrupt (at open or on Get);
	// WriteErrors counts failed Puts (the compile still succeeds).
	Quarantined int64 `json:"quarantined"`
	WriteErrors int64 `json:"write_errors"`
	// Entries is the current number of readable artifacts known to the
	// store (scanned at open, plus this process's writes).
	Entries int `json:"entries"`
}

// Store is an open artifact directory. It is safe for concurrent use by
// one process's workers; cross-process safety comes from atomic renames.
type Store struct {
	root string

	mu    sync.Mutex
	index map[string]bool // file base name -> known readable
	stats Stats
}

// Key addresses one artifact: the canonical-source fingerprint (and its
// length, a cheap anti-collision check) plus the configuration.
type Key struct {
	Fingerprint uint64
	SourceLen   int
	Family      string
	Version     string
	Level       string
}

// filename renders the content address: <fingerprint>-<config>.mcx.
func (k Key) filename() string {
	return fmt.Sprintf("%016x-%s-%s-%s.mcx", k.Fingerprint, k.Family, k.Version, k.Level)
}

// matches reports whether an artifact's provenance is the one the key
// asked for — the integrity check that makes a renamed or fingerprint-
// colliding file a miss instead of a wrong answer.
func (k Key) matches(p container.Provenance) bool {
	return p.Fingerprint == k.Fingerprint && p.SourceLen == k.SourceLen &&
		p.Family == k.Family && p.Version == k.Version && p.Level == k.Level
}

// Open creates (if needed) and scans an artifact directory. Entries whose
// header is not a readable container header are quarantined, not fatal;
// files that are not .mcx at all are ignored (they are not ours to touch).
func Open(root string) (*Store, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{root: root, index: map[string]bool{}}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".mcx") {
			continue
		}
		if !headerOK(filepath.Join(root, name)) {
			s.quarantineLocked(name)
			continue
		}
		s.index[name] = true
	}
	s.stats.Entries = len(s.index)
	return s, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// headerOK cheaply checks the fixed-width container header (magic and
// format version) without reading the whole file.
func headerOK(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [6]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return false
	}
	magic := uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
	version := uint16(hdr[4]) | uint16(hdr[5])<<8
	return magic == container.Magic && version == container.FormatVersion
}

// quarantineLocked renames a bad entry aside. Callers hold s.mu (or are
// still single-threaded in Open).
func (s *Store) quarantineLocked(name string) {
	// Best-effort: if the rename fails the entry simply stays out of the
	// index and keeps reporting misses.
	_ = os.Rename(filepath.Join(s.root, name), filepath.Join(s.root, name+".quarantined"))
	delete(s.index, name)
	s.stats.Quarantined++
}

// Get loads the artifact for key, if present and intact. A corrupt,
// truncated or provenance-mismatched entry is quarantined and reported as
// a miss. The read goes to disk even when the open-time index did not see
// the file, so artifacts written by a concurrently running replica are
// picked up live.
func (s *Store) Get(key Key) (*container.Artifact, bool) {
	name := key.filename()
	data, err := os.ReadFile(filepath.Join(s.root, name))
	if err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	art, err := container.Decode(data)
	if err != nil || !key.matches(art.Prov) {
		s.mu.Lock()
		s.quarantineLocked(name)
		s.stats.Misses++
		s.stats.Entries = len(s.index)
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	if !s.index[name] {
		s.index[name] = true
		s.stats.Entries = len(s.index)
	}
	s.stats.Hits++
	s.stats.BytesRead += int64(len(data))
	s.mu.Unlock()
	return art, true
}

// Put writes an artifact under its provenance-derived address, atomically
// and durably. A concurrent Put of the same artifact (another worker,
// another replica) is harmless: both renames publish identical bytes.
func (s *Store) Put(key Key, art *container.Artifact) error {
	if !key.matches(art.Prov) {
		err := fmt.Errorf("store: artifact provenance %+v does not match key %+v", art.Prov, key)
		s.mu.Lock()
		s.stats.WriteErrors++
		s.mu.Unlock()
		return err
	}
	name := key.filename()
	data := container.Encode(art)
	if err := atomicfile.WriteBytes(filepath.Join(s.root, name), data); err != nil {
		s.mu.Lock()
		s.stats.WriteErrors++
		s.mu.Unlock()
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	if !s.index[name] {
		s.index[name] = true
		s.stats.Entries = len(s.index)
	}
	s.stats.Writes++
	s.stats.BytesWritten += int64(len(data))
	s.mu.Unlock()
	return nil
}

// Len returns the number of readable artifacts the store knows about.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
