// Package codegen lowers optimized IR to the virtual machine instruction
// set and emits the executable's debug information: line table, variable
// DIEs with location lists, and concrete/abstract inlined-subroutine trees.
//
// The location-list construction is where several of the paper's defect
// mechanisms materialise: flagged debug intrinsics produce truncated ranges
// (copy-propagation and scheduling bugs), wrong-frame DIE placement
// (scheduling near inlined code), abstract-origin-only constants (the lldb
// bug surface), and instruction-selection drops for global-load sources.
package codegen

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/dwarf"
	"repro/internal/ir"
)

// Options configures code generation.
type Options struct {
	// Defects is the active defect-mechanism set.
	Defects map[string]bool
	// Stats receives counters when non-nil.
	Stats map[string]int
}

func (o Options) defect(id string) bool { return o.Defects[id] }

func (o Options) count(key string) {
	if o.Stats != nil {
		o.Stats[key]++
	}
}

// Generate compiles the module to an executable program plus its debug
// information.
func Generate(m *ir.Module, o Options) (*asm.Program, *dwarf.Info, error) {
	prog := &asm.Program{}
	info := dwarf.NewInfo()
	info.NLines = m.NLines
	for _, g := range m.Globals {
		prog.Globals = append(prog.Globals, &asm.Global{
			Name: g.Name, Size: g.Size, Init: g.Init, Volatile: g.Volatile,
		})
	}
	for _, f := range m.Funcs {
		if f.Opaque {
			continue
		}
		if err := genFunc(prog, info, f, o); err != nil {
			return nil, nil, fmt.Errorf("codegen %s: %w", f.Name, err)
		}
	}
	buildLineTable(prog, info)
	return prog, info, nil
}

// dbgEvent is a debug intrinsic pinned to the address of the instruction
// that follows it.
type dbgEvent struct {
	pc    int
	instr *ir.Instr
}

func genFunc(prog *asm.Program, info *dwarf.Info, f *ir.Func, o Options) error {
	af := &asm.Func{Name: f.Name, Entry: len(prog.Instrs), NTemp: f.NTemp,
		Slots: append([]int(nil), f.Slots...), HasRet: f.HasRet}

	// Linearize: entry first, then remaining blocks in list order.
	order := make([]*ir.Block, 0, len(f.Blocks))
	seen := map[*ir.Block]bool{}
	add := func(b *ir.Block) {
		if !seen[b] {
			seen[b] = true
			order = append(order, b)
		}
	}
	reach := f.Reachable()
	add(f.Entry())
	for _, b := range f.Blocks {
		if reach[b] {
			add(b)
		}
	}

	blockPC := map[*ir.Block]int{}
	var fixups []struct {
		pc  int
		tgt *ir.Block
		alt bool // second target of a conditional branch
	}
	var events []dbgEvent
	siteOf := map[int]*ir.InlineSite{} // inline site id -> site
	// Per-pc inline id for range construction.
	emit := func(in *asm.Instr) int {
		pc := len(prog.Instrs)
		prog.Instrs = append(prog.Instrs, in)
		return pc
	}
	opnd := func(v ir.Value) asm.Operand {
		if v.IsConst() {
			return asm.Const(v.C)
		}
		return asm.Reg(v.Temp)
	}
	inlineID := func(s *ir.InlineSite) int {
		if s == nil {
			return 0
		}
		siteOf[s.ID] = s
		return s.ID
	}

	for _, b := range order {
		blockPC[b] = len(prog.Instrs)
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpDbgVal:
				events = append(events, dbgEvent{pc: len(prog.Instrs), instr: in})
				if in.At != nil {
					siteOf[in.At.ID] = in.At
				}
			case ir.OpCopy:
				emit(&asm.Instr{Op: asm.OpMov, Rd: in.Dst, Src: opnd(in.Args[0]),
					Width: in.Width, Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpUn:
				emit(&asm.Instr{Op: asm.OpUn, Rd: in.Dst, Src: opnd(in.Args[0]),
					UnOp: in.UnOp, Width: in.Width, Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpBin:
				emit(&asm.Instr{Op: asm.OpBin, Rd: in.Dst, Src: opnd(in.Args[0]),
					Src2: opnd(in.Args[1]), BinOp: in.BinOp, Width: in.Width,
					Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpLoadG:
				emit(&asm.Instr{Op: asm.OpLoadG, Rd: in.Dst, Global: in.G.Name,
					Src: opnd(in.Args[0]), Width: in.Width, Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpStoreG:
				emit(&asm.Instr{Op: asm.OpStoreG, Rd: -1, Global: in.G.Name,
					Src: opnd(in.Args[0]), Src2: opnd(in.Args[1]), Width: in.Width,
					Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpLoadSlot:
				emit(&asm.Instr{Op: asm.OpLoadSlot, Rd: in.Dst, Slot: in.Slot,
					Src: opnd(in.Args[0]), Width: in.Width, Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpStoreSlot:
				emit(&asm.Instr{Op: asm.OpStoreSlot, Rd: -1, Slot: in.Slot,
					Src: opnd(in.Args[0]), Src2: opnd(in.Args[1]), Width: in.Width,
					Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpAddrG:
				emit(&asm.Instr{Op: asm.OpAddrG, Rd: in.Dst, Global: in.G.Name,
					Src: opnd(in.Args[0]), Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpAddrSlot:
				emit(&asm.Instr{Op: asm.OpAddrSlot, Rd: in.Dst, Slot: in.Slot,
					Src: opnd(in.Args[0]), Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpLoadPtr:
				emit(&asm.Instr{Op: asm.OpLoadPtr, Rd: in.Dst, Src: opnd(in.Args[0]),
					Width: in.Width, Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpStorePtr:
				emit(&asm.Instr{Op: asm.OpStorePtr, Rd: -1, Src: opnd(in.Args[0]),
					Src2: opnd(in.Args[1]), Width: in.Width, Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpCall:
				args := make([]asm.Operand, len(in.Args))
				for i, a := range in.Args {
					args[i] = opnd(a)
				}
				emit(&asm.Instr{Op: asm.OpCall, Rd: in.Dst, Callee: in.Call, Args: args,
					Line: in.Line, InlineID: inlineID(in.At)})
			case ir.OpBr:
				pc := emit(&asm.Instr{Op: asm.OpJmp, Rd: -1, Line: in.Line, InlineID: inlineID(in.At)})
				fixups = append(fixups, struct {
					pc  int
					tgt *ir.Block
					alt bool
				}{pc, in.Tgts[0], false})
			case ir.OpCondBr:
				// jz cond -> false target; fallthrough-jmp -> true target.
				pc := emit(&asm.Instr{Op: asm.OpJz, Rd: -1, Src: opnd(in.Args[0]),
					Line: in.Line, InlineID: inlineID(in.At)})
				fixups = append(fixups, struct {
					pc  int
					tgt *ir.Block
					alt bool
				}{pc, in.Tgts[1], false})
				pc2 := emit(&asm.Instr{Op: asm.OpJmp, Rd: -1, Line: in.Line, InlineID: inlineID(in.At)})
				fixups = append(fixups, struct {
					pc  int
					tgt *ir.Block
					alt bool
				}{pc2, in.Tgts[0], false})
			case ir.OpRet:
				ret := &asm.Instr{Op: asm.OpRet, Rd: -1, Src: asm.Operand{Temp: -1},
					Line: in.Line, InlineID: inlineID(in.At)}
				if len(in.Args) > 0 {
					ret.Src = opnd(in.Args[0])
				}
				emit(ret)
			default:
				return fmt.Errorf("unknown op %v", in.Op)
			}
		}
	}
	// Guarantee at least one instruction (empty function bodies).
	if len(prog.Instrs) == af.Entry {
		emit(&asm.Instr{Op: asm.OpRet, Rd: -1, Src: asm.Operand{Temp: -1}, Line: f.Line})
	}
	af.End = len(prog.Instrs)
	prog.Funcs = append(prog.Funcs, af)
	for _, fx := range fixups {
		prog.Instrs[fx.pc].Target = blockPC[fx.tgt]
	}
	buildDebugInfo(prog, info, f, af, events, siteOf, o)
	return nil
}

// buildLineTable derives line entries from instruction lines: one entry per
// address where the line changes.
func buildLineTable(prog *asm.Program, info *dwarf.Info) {
	last := -1
	lastFn := ""
	for pc, in := range prog.Instrs {
		f := prog.FuncAt(pc)
		name := ""
		if f != nil {
			name = f.Name
		}
		if in.Line > 0 && (in.Line != last || name != lastFn) {
			info.Lines = append(info.Lines, dwarf.LineEntry{PC: uint32(pc), Line: in.Line})
			last = in.Line
		}
		lastFn = name
	}
}
