package codegen

import (
	"sort"

	"repro/internal/asm"
	"repro/internal/bugs"
	"repro/internal/dwarf"
	"repro/internal/ir"
)

// buildDebugInfo constructs the subprogram DIE, the inlined-subroutine
// trees, and per-variable location lists for one compiled function.
func buildDebugInfo(prog *asm.Program, info *dwarf.Info, f *ir.Func, af *asm.Func,
	events []dbgEvent, siteOf map[int]*ir.InlineSite, o Options) {

	sub := info.CU.AddChild(&dwarf.DIE{ID: info.NewID(), Tag: dwarf.TagSubprogram,
		Name: f.Name, DeclLine: f.Line,
		Ranges: []dwarf.PCRange{{Lo: uint32(af.Entry), Hi: uint32(af.End)}}})

	// --- Location lists -------------------------------------------------
	type openLoc struct {
		kind  dwarf.LocKind
		value int64
		start int
	}
	ranges := map[*ir.Var][]dwarf.LocRange{}
	open := map[*ir.Var]*openLoc{}
	wrongFrame := map[*ir.Var]bool{}
	abstractOnly := map[*ir.Var]int64{}
	hasNonAbstract := map[*ir.Var]bool{}
	dropped := map[*ir.Var]bool{} // isel-defect drops
	hadEvent := map[*ir.Var]bool{}

	closeLoc := func(v *ir.Var, pc int) {
		ol := open[v]
		if ol == nil {
			return
		}
		ranges[v] = append(ranges[v], dwarf.LocRange{
			Lo: uint32(ol.start), Hi: uint32(pc), Kind: ol.kind, Value: ol.value})
		delete(open, v)
	}
	// nextCall finds the next call at or after pc within the function.
	nextCall := func(pc int) int {
		for p := pc; p < af.End; p++ {
			if prog.Instrs[p].Op == asm.OpCall {
				return p
			}
		}
		return af.End
	}
	// defIsGlobalLoad reports whether the nearest preceding definition of
	// temp t before pc is a global load, looking through register moves
	// (the isel-defect trigger: the selected DAG roots at the load).
	defIsGlobalLoad := func(t, pc int) bool {
		for depth := 0; depth < 8; depth++ {
			var def *asm.Instr
			for p := pc - 1; p >= af.Entry; p-- {
				in := prog.Instrs[p]
				if in.Rd == t {
					def = in
					pc = p
					break
				}
			}
			if def == nil {
				return false
			}
			switch {
			case def.Op == asm.OpLoadG:
				return true
			case def.Op == asm.OpMov && !def.Src.IsConst:
				t = def.Src.Temp
			default:
				return false
			}
		}
		return false
	}

	ei := 0
	for pc := af.Entry; pc <= af.End; pc++ {
		// Apply the debug events pinned to this address.
		for ei < len(events) && events[ei].pc == pc {
			ev := events[ei].instr
			ei++
			v := ev.V
			hadEvent[v] = true
			if ev.Flags&ir.DbgWrongFrame != 0 {
				wrongFrame[v] = true
			}
			closeLoc(v, pc)
			val := ev.Args[0]
			if ev.Flags&ir.DbgAbstractOnly != 0 && val.IsConst() && v.Inlined != nil {
				// The constant will live on the abstract origin only.
				abstractOnly[v] = val.C
				continue
			}
			if val.Kind != ir.Undef {
				hasNonAbstract[v] = true
			}
			switch val.Kind {
			case ir.Undef:
				// Stays closed: optimized out from here.
			case ir.Const:
				open[v] = &openLoc{kind: dwarf.LocConst, value: val.C, start: pc}
			case ir.Temp:
				if o.defect(bugs.CLISelGlobalLoadDrop) && defIsGlobalLoad(val.Temp, pc) {
					dropped[v] = true
					o.count("codegen.isel-dropped")
					continue
				}
				open[v] = &openLoc{kind: dwarf.LocReg, value: int64(asm.RegOf(val.Temp)), start: pc}
			case ir.SlotRef:
				open[v] = &openLoc{kind: dwarf.LocSlot, value: int64(val.Temp), start: pc}
			}
			if ev.Flags&ir.DbgTruncRange != 0 && open[v] != nil {
				// The emitted range fails to cover the next call.
				end := nextCall(pc)
				if end > pc {
					ranges[v] = append(ranges[v], dwarf.LocRange{
						Lo: uint32(pc), Hi: uint32(end),
						Kind: open[v].kind, Value: open[v].value})
					delete(open, v)
					o.count("codegen.trunc-range")
				}
			}
		}
		if pc == af.End {
			break
		}
		// Register redefinition ends the ranges it invalidates.
		in := prog.Instrs[pc]
		if in.Rd >= 0 {
			reg := int64(asm.RegOf(in.Rd))
			for v, ol := range open {
				if ol.kind == dwarf.LocReg && ol.value == reg {
					closeLoc(v, pc)
				}
			}
		}
	}
	for v := range open {
		closeLoc(v, af.End)
	}

	// Defect bugs.GCUnnamedScopeRange: variables declared in unnamed brace
	// scopes lose every other location range.
	if o.defect(bugs.GCUnnamedScopeRange) {
		for v, rs := range ranges {
			if !v.InNestedScope || len(rs) < 2 {
				continue
			}
			var kept []dwarf.LocRange
			for i, r := range rs {
				if i%2 == 0 {
					kept = append(kept, r)
				}
			}
			ranges[v] = kept
			o.count("codegen.unnamedscope-trimmed")
		}
	}

	// --- Inlined-subroutine tree -----------------------------------------
	// Compute, for every inline site, the set of covered addresses (a pc
	// executed under a nested site also belongs to all ancestor sites).
	pcsOf := map[int][]int{} // site id -> pcs
	for pc := af.Entry; pc < af.End; pc++ {
		id := prog.Instrs[pc].InlineID
		if id == 0 {
			continue
		}
		for s := siteOf[id]; s != nil; s = s.Parent {
			pcsOf[s.ID] = append(pcsOf[s.ID], pc)
		}
	}
	siteDIE := map[int]*dwarf.DIE{}
	absByCallee := map[string]*dwarf.DIE{}
	// Abstract instances first.
	calleeVars := map[string][]*ir.Var{}
	for _, v := range f.Vars {
		if v.Inlined != nil {
			calleeVars[v.Inlined.Callee] = append(calleeVars[v.Inlined.Callee], v)
		}
	}
	abstractFor := func(callee string) *dwarf.DIE {
		if d := absByCallee[callee]; d != nil {
			return d
		}
		if d := info.AbstractSubprogram(callee); d != nil {
			absByCallee[callee] = d
			return d
		}
		d := info.CU.AddChild(&dwarf.DIE{ID: info.NewID(), Tag: dwarf.TagSubprogram,
			Name: callee, Abstract: true})
		seen := map[string]bool{}
		for _, v := range calleeVars[callee] {
			if seen[v.Name] {
				continue
			}
			seen[v.Name] = true
			tag := dwarf.TagVariable
			if v.IsParam {
				tag = dwarf.TagFormalParameter
			}
			d.AddChild(&dwarf.DIE{ID: info.NewID(), Tag: tag, Name: v.Name,
				DeclLine: v.DeclLine, Abstract: true})
		}
		absByCallee[callee] = d
		return d
	}
	// Concrete site DIEs, parents before children.
	var ids []int
	for id := range pcsOf {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var ensureSite func(id int) *dwarf.DIE
	ensureSite = func(id int) *dwarf.DIE {
		if d := siteDIE[id]; d != nil {
			return d
		}
		s := siteOf[id]
		parent := sub
		if s.Parent != nil {
			parent = ensureSite(s.Parent.ID)
		}
		abs := abstractFor(s.Callee)
		d := parent.AddChild(&dwarf.DIE{ID: info.NewID(), Tag: dwarf.TagInlinedSubroutine,
			Name: s.Callee, CallLine: s.CallLine, AbstractOrigin: abs.ID,
			Ranges: pcRanges(pcsOf[id])})
		siteDIE[id] = d
		return d
	}
	for _, id := range ids {
		ensureSite(id)
	}

	// --- Variable DIEs ----------------------------------------------------
	abstractVarDIE := func(callee, name string) *dwarf.DIE {
		abs := abstractFor(callee)
		for _, c := range abs.Children {
			if c.Name == name {
				return c
			}
		}
		return nil
	}
	for _, v := range f.Vars {
		if v.SuppressDIE || dropped[v] && !hasNonAbstract[v] {
			o.count("codegen.suppressed-die")
			continue
		}
		// Variables that never had any debug event are unknown to the
		// optimizer's metadata; their DIE disappeared with the metadata.
		if !hadEvent[v] && v.Inlined == nil {
			continue
		}
		tag := dwarf.TagVariable
		if v.IsParam {
			tag = dwarf.TagFormalParameter
		}
		d := &dwarf.DIE{ID: info.NewID(), Tag: tag, Name: v.Name,
			DeclLine: v.DeclLine, Loc: ranges[v]}
		// Scope placement.
		var parent *dwarf.DIE
		switch {
		case v.Inlined != nil:
			site := siteDIE[v.Inlined.ID]
			if abs := abstractVarDIE(v.Inlined.Callee, v.Name); abs != nil {
				d.AbstractOrigin = abs.ID
				if c, ok := abstractOnly[v]; ok && !hasNonAbstract[v] {
					// Legitimate DWARF: the value lives on the abstract
					// origin only.
					abs.ConstValue = &c
					d.Loc = nil
					o.count("codegen.abstract-only")
				}
			}
			if wrongFrame[v] {
				parent = sub // should be the inlined subroutine
				o.count("codegen.wrongframe-die")
			} else if site != nil {
				parent = concreteVarScope(info, site, len(calleeVars[v.Inlined.Callee]))
			} else {
				parent = sub
			}
		default:
			if wrongFrame[v] {
				parent = misplacedScope(info, sub)
				o.count("codegen.wrongframe-die")
			} else {
				parent = sub
			}
		}
		parent.AddChild(d)
	}
}

// concreteVarScope returns the DIE under which an inlined instance's
// variables are placed. Inlined callees with three or more variables get a
// lexical-block wrapper in the concrete tree — legitimate DWARF whose
// structural asymmetry with the (flat) abstract instance is exactly what
// the gdb 29060 bug trips over.
func concreteVarScope(info *dwarf.Info, site *dwarf.DIE, nVars int) *dwarf.DIE {
	if nVars < 3 {
		return site
	}
	for _, c := range site.Children {
		if c.Tag == dwarf.TagLexicalBlock {
			return c
		}
	}
	return site.AddChild(&dwarf.DIE{ID: info.NewID(), Tag: dwarf.TagLexicalBlock,
		Ranges: site.Ranges})
}

// misplacedScope returns the wrong scope for a mis-attributed variable: the
// function's first inlined subroutine if it has one, else a lexical block
// covering no addresses.
func misplacedScope(info *dwarf.Info, sub *dwarf.DIE) *dwarf.DIE {
	for _, c := range sub.Children {
		if c.Tag == dwarf.TagInlinedSubroutine {
			return c
		}
	}
	for _, c := range sub.Children {
		if c.Tag == dwarf.TagLexicalBlock && len(c.Ranges) == 1 && c.Ranges[0].Lo == c.Ranges[0].Hi {
			return c
		}
	}
	return sub.AddChild(&dwarf.DIE{ID: info.NewID(), Tag: dwarf.TagLexicalBlock,
		Ranges: []dwarf.PCRange{{Lo: 0, Hi: 0}}})
}

// pcRanges converts a sorted pc list into contiguous half-open ranges.
func pcRanges(pcs []int) []dwarf.PCRange {
	if len(pcs) == 0 {
		return nil
	}
	sort.Ints(pcs)
	var out []dwarf.PCRange
	lo, hi := pcs[0], pcs[0]+1
	for _, pc := range pcs[1:] {
		if pc == hi {
			hi++
			continue
		}
		out = append(out, dwarf.PCRange{Lo: uint32(lo), Hi: uint32(hi)})
		lo, hi = pc, pc+1
	}
	out = append(out, dwarf.PCRange{Lo: uint32(lo), Hi: uint32(hi)})
	return out
}
