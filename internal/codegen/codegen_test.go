package codegen

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bugs"
	"repro/internal/dwarf"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/opt"
)

func gen(t *testing.T, src string, passes []opt.Pass, defects map[string]bool) (*asm.Program, *dwarf.Info) {
	t.Helper()
	prog := minic.MustParse(src)
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	if passes != nil {
		opt.RunPipeline(m, passes, opt.Options{BisectLimit: -1, Defects: defects})
	}
	p, info, err := Generate(m, Options{Defects: defects})
	if err != nil {
		t.Fatal(err)
	}
	return p, info
}

const src = `
int g;
extern void opaque(int x);
int main(void) {
  int x = 3;
  int y = x + 1;
  g = y;
  opaque(y);
  return 0;
}
`

func TestLineTableMonotonePCs(t *testing.T) {
	_, info := gen(t, src, []opt.Pass{opt.Mem2Reg{}}, nil)
	last := uint32(0)
	for i, e := range info.Lines {
		if i > 0 && e.PC <= last {
			t.Errorf("line table not strictly increasing at %d: %v", i, info.Lines)
		}
		last = e.PC
	}
}

func TestO0SlotLocationsCoverWholeFunction(t *testing.T) {
	p, info := gen(t, src, nil, nil)
	sub := info.SubprogramByName("main")
	if sub == nil {
		t.Fatal("no subprogram DIE")
	}
	mainFn := p.Func("main")
	for _, name := range []string{"x", "y"} {
		d := sub.Find(func(d *dwarf.DIE) bool { return d.Name == name })
		if d == nil {
			t.Fatalf("no DIE for %s", name)
		}
		if len(d.Loc) != 1 || d.Loc[0].Kind != dwarf.LocSlot {
			t.Fatalf("%s: want single slot range, got %v", name, d.Loc)
		}
		if int(d.Loc[0].Hi) != mainFn.End {
			t.Errorf("%s: range does not reach function end: %v", name, d.Loc)
		}
	}
}

func TestConstLocationAfterFolding(t *testing.T) {
	_, info := gen(t, src, []opt.Pass{opt.Mem2Reg{}, opt.InstCombine{}, opt.CCP{}}, nil)
	sub := info.SubprogramByName("main")
	x := sub.Find(func(d *dwarf.DIE) bool { return d.Name == "x" })
	if x == nil {
		t.Fatal("no DIE for x")
	}
	foundConst := false
	for _, r := range x.Loc {
		if r.Kind == dwarf.LocConst && r.Value == 3 {
			foundConst = true
		}
	}
	if !foundConst {
		t.Errorf("x should have a constant location, got %v", x.Loc)
	}
}

func TestTruncRangeFlagEndsBeforeCall(t *testing.T) {
	prog := minic.MustParse(src)
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	opt.RunPipeline(m, []opt.Pass{opt.Mem2Reg{}}, opt.Options{BisectLimit: -1})
	// Flag y's debug values by hand to isolate the codegen behaviour.
	f := m.Func("main")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.V.Name == "y" {
				in.Flags |= ir.DbgTruncRange
			}
		}
	}
	p, info, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find the call pc.
	callPC := -1
	for pc, in := range p.Instrs {
		if in.Op == asm.OpCall && in.Callee == "opaque" {
			callPC = pc
		}
	}
	if callPC < 0 {
		t.Fatal("no call emitted")
	}
	y := info.SubprogramByName("main").Find(func(d *dwarf.DIE) bool { return d.Name == "y" })
	if y == nil {
		t.Fatal("no DIE for y")
	}
	if _, covered := y.LocAt(uint32(callPC)); covered {
		t.Errorf("truncated range must not cover the call at %d: %v", callPC, y.Loc)
	}
}

func TestInlinedSubroutineDIEs(t *testing.T) {
	isrc := `
int g;
int add1(int v) { return v + 1; }
int main(void) {
  g = add1(41);
  return 0;
}`
	_, info := gen(t, isrc, []opt.Pass{opt.Mem2Reg{}, opt.Inline{}}, nil)
	sub := info.SubprogramByName("main")
	inl := sub.Find(func(d *dwarf.DIE) bool { return d.Tag == dwarf.TagInlinedSubroutine })
	if inl == nil {
		t.Fatal("no inlined subroutine DIE")
	}
	if inl.Name != "add1" || len(inl.Ranges) == 0 {
		t.Errorf("inlined DIE malformed: %+v", inl)
	}
	abs := info.AbstractSubprogram("add1")
	if abs == nil {
		t.Fatal("no abstract instance")
	}
	if inl.AbstractOrigin != abs.ID {
		t.Error("abstract origin link broken")
	}
	v := inl.Find(func(d *dwarf.DIE) bool {
		return (d.Tag == dwarf.TagFormalParameter || d.Tag == dwarf.TagVariable) && d.Name == "v"
	})
	if v == nil {
		t.Fatal("inlined parameter has no concrete DIE")
	}
	if v.AbstractOrigin == 0 {
		t.Error("inlined parameter lacks an abstract origin")
	}
}

func TestSuppressedDIEMissing(t *testing.T) {
	prog := minic.MustParse(src)
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	opt.RunPipeline(m, []opt.Pass{opt.Mem2Reg{}}, opt.Options{BisectLimit: -1})
	m.Func("main").VarByName("x").SuppressDIE = true
	_, info, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub := info.SubprogramByName("main")
	if sub.Find(func(d *dwarf.DIE) bool { return d.Name == "x" }) != nil {
		t.Error("suppressed variable still has a DIE (should be Missing)")
	}
}

func TestISelDefectDropsGlobalLoadSources(t *testing.T) {
	gsrc := `
int a = 4;
int g;
extern void opaque(int x);
int main(void) {
  int v = a;
  opaque(v);
  return 0;
}`
	defects := map[string]bool{bugs.CLISelGlobalLoadDrop: true}
	p, info := gen(t, gsrc, []opt.Pass{opt.Mem2Reg{}}, defects)
	v := info.SubprogramByName("main").Find(func(d *dwarf.DIE) bool { return d.Name == "v" })
	if v == nil {
		return // fully suppressed: also a valid manifestation (51780 is Missing DIE)
	}
	callPC := -1
	for pc, in := range p.Instrs {
		if in.Op == asm.OpCall {
			callPC = pc
		}
	}
	if _, covered := v.LocAt(uint32(callPC)); covered {
		t.Errorf("isel defect must leave v unavailable at the call, got %v", v.Loc)
	}
	// Without the defect the location survives.
	_, clean := gen(t, gsrc, []opt.Pass{opt.Mem2Reg{}}, nil)
	vc := clean.SubprogramByName("main").Find(func(d *dwarf.DIE) bool { return d.Name == "v" })
	if vc == nil {
		t.Fatal("clean build lost v entirely")
	}
	if _, covered := vc.LocAt(uint32(callPC)); !covered {
		t.Errorf("clean build must cover the call, got %v", vc.Loc)
	}
}
