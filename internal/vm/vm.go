// Package vm executes compiled programs. It exposes the run-time state a
// debugger needs — current pc, per-frame registers, frame slots, and global
// memory — and a breakpoint/continue execution interface.
//
// The VM's observable behaviour (opaque-call events, volatile accesses,
// final memory, exit value) matches the IR interpreter's, which the test
// suite uses to validate the code generator.
package vm

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/ir"
)

// Event mirrors ir.Event for the machine-level execution.
type Event = ir.Event

// Frame is one activation record.
type Frame struct {
	Fn      *asm.Func
	Regs    []int64 // virtual registers (debug-visible)
	SlotOff []int64 // base address of each slot
	Base    int64
	RetPC   int
	RetReg  int // caller register receiving the return value (-1 none)
}

// Machine is a running VM instance.
type Machine struct {
	Prog    *asm.Program
	Mem     []int64
	PC      int
	Frames  []*Frame
	Events  []Event
	Halted  bool
	Exit    int64
	Steps   int
	MaxStep int

	gbase map[string]int64
	sp    int64
	bps   map[int]bool
}

// ErrStepLimit is returned when execution exceeds the step budget.
var ErrStepLimit = fmt.Errorf("vm: step limit exceeded")

// DefaultMaxStep is the step budget of a fresh machine. Callers may set
// Machine.MaxStep before running to raise or lower it.
const DefaultMaxStep = 4_000_000

// New loads prog and prepares a machine stopped before main's first
// instruction.
func New(prog *asm.Program) (*Machine, error) {
	m := &Machine{
		Prog:    prog,
		Mem:     make([]int64, ir.MemWords),
		gbase:   map[string]int64{},
		sp:      ir.StackBase,
		bps:     map[int]bool{},
		MaxStep: DefaultMaxStep,
	}
	addr := int64(ir.GlobalBase)
	for _, g := range prog.Globals {
		m.gbase[g.Name] = addr
		copy(m.Mem[addr:], g.Init)
		addr += int64(g.Size)
	}
	mainFn := prog.Func("main")
	if mainFn == nil {
		return nil, fmt.Errorf("vm: no main")
	}
	m.pushFrame(mainFn, nil, -1, -1)
	m.PC = mainFn.Entry
	return m, nil
}

func (m *Machine) pushFrame(f *asm.Func, args []int64, retPC, retReg int) *Frame {
	fr := &Frame{Fn: f, Regs: make([]int64, f.NTemp), Base: m.sp, RetPC: retPC, RetReg: retReg}
	off := int64(0)
	fr.SlotOff = make([]int64, len(f.Slots))
	for i, size := range f.Slots {
		fr.SlotOff[i] = fr.Base + off
		off += int64(size)
	}
	for i := fr.Base; i < fr.Base+off && i < int64(len(m.Mem)); i++ {
		m.Mem[i] = 0
	}
	m.sp = fr.Base + off
	// Arguments are materialised in the function's parameter slots, which
	// are by construction the first slots of the frame (one per parameter).
	for i, a := range args {
		if i < len(fr.SlotOff) {
			m.Mem[fr.SlotOff[i]] = a
		}
	}
	m.Frames = append(m.Frames, fr)
	return fr
}

// Frame returns the current activation record, or nil when halted.
func (m *Machine) Frame() *Frame {
	if len(m.Frames) == 0 {
		return nil
	}
	return m.Frames[len(m.Frames)-1]
}

// SetBreak arms a one-time breakpoint at pc.
func (m *Machine) SetBreak(pc int) { m.bps[pc] = true }

// ClearBreaks removes all breakpoints.
func (m *Machine) ClearBreaks() { m.bps = map[int]bool{} }

// ReadReg returns the value of a debug-visible register in the current
// frame.
func (m *Machine) ReadReg(r int) (int64, bool) {
	fr := m.Frame()
	if fr == nil || r < 0 || r >= len(fr.Regs) {
		return 0, false
	}
	return fr.Regs[r], true
}

// ReadSlot returns the value stored in frame slot s (offset 0).
func (m *Machine) ReadSlot(s int) (int64, bool) {
	fr := m.Frame()
	if fr == nil || s < 0 || s >= len(fr.SlotOff) {
		return 0, false
	}
	return m.Mem[fr.SlotOff[s]], true
}

// Continue resumes execution until the next armed breakpoint fires (it is
// then disarmed, one-shot style), or the program halts. It reports whether
// a breakpoint was hit.
func (m *Machine) Continue() (bool, error) {
	for !m.Halted {
		if m.bps[m.PC] {
			delete(m.bps, m.PC)
			return true, nil
		}
		if err := m.Step(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// ForEachStop is the stop-event hook of a recording session: it drives
// execution breakpoint to breakpoint, invoking onStop at every armed
// breakpoint hit (with the machine stopped on the breakpoint pc), then
// stepping over the stop and resuming, until the program halts. It returns
// the first error from Continue, Step or onStop. Continue and Step
// themselves are unchanged; this only packages their loop so sessions
// observe stops without reimplementing it.
func (m *Machine) ForEachStop(onStop func() error) error {
	for {
		hit, err := m.Continue()
		if err != nil {
			return err
		}
		if !hit {
			return nil
		}
		if err := onStop(); err != nil {
			return err
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
}

// Run executes to completion, ignoring breakpoints.
func (m *Machine) Run() error {
	m.ClearBreaks()
	for !m.Halted {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) val(o asm.Operand) int64 {
	if o.IsConst {
		return o.C
	}
	if o.Temp < 0 {
		return 0
	}
	return m.Frame().Regs[o.Temp]
}

func (m *Machine) checkAddr(a int64) error {
	if a < 0 || a >= int64(len(m.Mem)) {
		return fmt.Errorf("vm: address out of range: %d", a)
	}
	return nil
}

func (m *Machine) noteVolatile(a int64, kind string, v int64) {
	for _, g := range m.Prog.Globals {
		if !g.Volatile {
			continue
		}
		base := m.gbase[g.Name]
		if a >= base && a < base+int64(g.Size) {
			m.Events = append(m.Events, Event{Kind: kind, Name: g.Name, Args: []int64{v}})
			return
		}
	}
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	m.Steps++
	if m.Steps > m.MaxStep {
		return ErrStepLimit
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Instrs) {
		return fmt.Errorf("vm: pc out of range: %d", m.PC)
	}
	in := m.Prog.Instrs[m.PC]
	fr := m.Frame()
	next := m.PC + 1
	switch in.Op {
	case asm.OpNop:
	case asm.OpMov:
		v := m.val(in.Src)
		if in.Width != nil {
			v = in.Width.Truncate(v)
		}
		fr.Regs[in.Rd] = v
	case asm.OpUn:
		fr.Regs[in.Rd] = ir.EvalUn(in.UnOp, m.val(in.Src), in.Width)
	case asm.OpBin:
		fr.Regs[in.Rd] = ir.EvalBin(in.BinOp, m.val(in.Src), m.val(in.Src2), in.Width)
	case asm.OpLoadG:
		a := m.gbase[in.Global] + m.val(in.Src)
		if err := m.checkAddr(a); err != nil {
			return err
		}
		v := m.Mem[a]
		if g := m.findGlobal(in.Global); g != nil && g.Volatile {
			m.Events = append(m.Events, Event{Kind: "vload", Name: g.Name, Args: []int64{v}})
		}
		fr.Regs[in.Rd] = v
	case asm.OpStoreG:
		a := m.gbase[in.Global] + m.val(in.Src)
		if err := m.checkAddr(a); err != nil {
			return err
		}
		v := m.val(in.Src2)
		if in.Width != nil {
			v = in.Width.Truncate(v)
		}
		m.Mem[a] = v
		if g := m.findGlobal(in.Global); g != nil && g.Volatile {
			m.Events = append(m.Events, Event{Kind: "vstore", Name: g.Name, Args: []int64{v}})
		}
	case asm.OpLoadSlot:
		a := fr.SlotOff[in.Slot] + m.val(in.Src)
		if err := m.checkAddr(a); err != nil {
			return err
		}
		fr.Regs[in.Rd] = m.Mem[a]
	case asm.OpStoreSlot:
		a := fr.SlotOff[in.Slot] + m.val(in.Src)
		if err := m.checkAddr(a); err != nil {
			return err
		}
		v := m.val(in.Src2)
		if in.Width != nil {
			v = in.Width.Truncate(v)
		}
		m.Mem[a] = v
	case asm.OpAddrG:
		fr.Regs[in.Rd] = m.gbase[in.Global] + m.val(in.Src)
	case asm.OpAddrSlot:
		fr.Regs[in.Rd] = fr.SlotOff[in.Slot] + m.val(in.Src)
	case asm.OpLoadPtr:
		a := m.val(in.Src)
		if err := m.checkAddr(a); err != nil {
			return err
		}
		fr.Regs[in.Rd] = m.Mem[a]
		m.noteVolatile(a, "vload", m.Mem[a])
	case asm.OpStorePtr:
		a := m.val(in.Src)
		if err := m.checkAddr(a); err != nil {
			return err
		}
		v := m.val(in.Src2)
		if in.Width != nil {
			v = in.Width.Truncate(v)
		}
		m.Mem[a] = v
		m.noteVolatile(a, "vstore", v)
	case asm.OpCall:
		args := make([]int64, len(in.Args))
		for i, a := range in.Args {
			args[i] = m.val(a)
		}
		callee := m.Prog.Func(in.Callee)
		if callee == nil {
			// Opaque function: record the observable event.
			m.Events = append(m.Events, Event{Kind: "call", Name: in.Callee, Args: args})
			if in.Rd >= 0 {
				fr.Regs[in.Rd] = 0
			}
		} else {
			m.pushFrame(callee, args, next, in.Rd)
			next = callee.Entry
		}
	case asm.OpJmp:
		next = in.Target
	case asm.OpJz:
		if m.val(in.Src) == 0 {
			next = in.Target
		}
	case asm.OpRet:
		var rv int64
		if in.Src.IsConst || in.Src.Temp >= 0 {
			rv = m.val(in.Src)
		}
		m.sp = fr.Base
		m.Frames = m.Frames[:len(m.Frames)-1]
		if len(m.Frames) == 0 {
			m.Halted = true
			m.Exit = rv
			m.PC = -1
			return nil
		}
		caller := m.Frame()
		if fr.RetReg >= 0 {
			caller.Regs[fr.RetReg] = rv
		}
		next = fr.RetPC
	default:
		return fmt.Errorf("vm: unknown op %v", in.Op)
	}
	m.PC = next
	return nil
}

func (m *Machine) findGlobal(name string) *asm.Global {
	for _, g := range m.Prog.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Observe runs the program to completion and returns its observable
// behaviour in the interpreter's format.
func Observe(prog *asm.Program) (*ir.Observation, error) {
	m, err := New(prog)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	obs := &ir.Observation{Events: m.Events, Ret: m.Exit,
		Globals: map[string][]int64{}, Steps: m.Steps}
	for _, g := range prog.Globals {
		base := m.gbase[g.Name]
		obs.Globals[g.Name] = append([]int64(nil), m.Mem[base:base+int64(g.Size)]...)
	}
	return obs, nil
}
