package vm

import (
	"fmt"
	"testing"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/minic"
)

func build(t *testing.T, src string) (*ir.Module, *Machine) {
	t.Helper()
	prog := minic.MustParse(src)
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	asmProg, _, err := codegen.Generate(m, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mach, err := New(asmProg)
	if err != nil {
		t.Fatal(err)
	}
	return m, mach
}

func TestVMMatchesInterpreter(t *testing.T) {
	srcs := []string{
		`int main(void) { int a = 6; int b = 7; return a * b; }`,
		`
int g[4];
volatile int c;
extern void opaque(int x);
int main(void) {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    g[i] = i * i;
    c = g[i];
  }
  opaque(g[3]);
  return g[2];
}`,
		`
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(10); }`,
		`
int b = 0;
int main(void) {
  int* p = &b;
  *p = 9;
  return *p + b;
}`,
	}
	for _, src := range srcs {
		m, mach := build(t, src)
		ref, err := ir.Interp(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := mach.Run(); err != nil {
			t.Fatalf("vm: %v", err)
		}
		got, err := Observe(mach.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Equal(got) {
			t.Errorf("vm diverges from interpreter for:\n%s\nref=%+v\ngot=%+v", src, ref, got)
		}
	}
}

func TestBreakpointsAreOneShot(t *testing.T) {
	_, mach := build(t, `
int g;
int main(void) {
  int i;
  for (i = 0; i < 3; i = i + 1) {
    g = g + i;
  }
  return g;
}`)
	// Break at the loop body's first instruction; it executes 3 times but
	// the breakpoint must fire once.
	var bodyPC = -1
	for pc, in := range mach.Prog.Instrs {
		if in.Op == 4 /* OpStoreG */ {
			bodyPC = pc
			break
		}
	}
	if bodyPC < 0 {
		t.Fatal("no global store found")
	}
	mach.SetBreak(bodyPC)
	hits := 0
	for {
		hit, err := mach.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			break
		}
		hits++
		if err := mach.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if hits != 1 {
		t.Errorf("breakpoint fired %d times, want 1 (one-shot)", hits)
	}
	if !mach.Halted || mach.Exit != 3 {
		t.Errorf("halted=%v exit=%d, want exit 3", mach.Halted, mach.Exit)
	}
}

func TestReadRegAndSlot(t *testing.T) {
	_, mach := build(t, `
int main(void) {
  int x = 41;
  x = x + 1;
  return x;
}`)
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := mach.ReadReg(1 << 20); ok {
		t.Error("out-of-range register read succeeded")
	}
	if _, ok := mach.ReadSlot(1 << 20); ok {
		t.Error("out-of-range slot read succeeded")
	}
}

func TestStepLimit(t *testing.T) {
	_, mach := build(t, `int main(void) { while (1) { } return 0; }`)
	mach.MaxStep = 500
	if err := mach.Run(); err != ErrStepLimit {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestCalleeSavedRegisters(t *testing.T) {
	// A call must not clobber the caller's registers: the frame's register
	// file is private (the callee-saved convention of the codegen model).
	_, mach := build(t, `
int f(int n) { return n * 2; }
int main(void) {
  int keep = 123;
  int r = f(4);
  return keep + r;
}`)
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	if mach.Exit != 131 {
		t.Errorf("exit = %d, want 131", mach.Exit)
	}
}

func TestForEachStop(t *testing.T) {
	_, mach := build(t, `
int main(void) {
  int x = 1;
  x = x + 1;
  x = x + 1;
  return x;
}`)
	// Arm a breakpoint on every instruction; the hook must fire once per
	// armed pc in execution order, with the machine stopped on that pc.
	for pc := range mach.Prog.Instrs {
		mach.SetBreak(pc)
	}
	var stops []int
	if err := mach.ForEachStop(func() error {
		stops = append(stops, mach.PC)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !mach.Halted || mach.Exit != 3 {
		t.Fatalf("halted=%v exit=%d, want halted with exit 3", mach.Halted, mach.Exit)
	}
	if len(stops) == 0 {
		t.Fatal("no stops observed")
	}
	for i := 1; i < len(stops); i++ {
		if stops[i] == stops[i-1] {
			t.Fatalf("stop %d repeated pc %d (one-shot breakpoints must not re-fire)", i, stops[i])
		}
	}
	// An onStop error aborts the session and surfaces unchanged.
	_, mach2 := build(t, `int main(void) { return 7; }`)
	for pc := range mach2.Prog.Instrs {
		mach2.SetBreak(pc)
	}
	sentinel := fmt.Errorf("sentinel")
	if err := mach2.ForEachStop(func() error { return sentinel }); err != sentinel {
		t.Errorf("err = %v, want the sentinel error", err)
	}
}
