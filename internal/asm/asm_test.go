package asm

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func TestInstrStrings(t *testing.T) {
	p := &Program{}
	f := &Func{Name: "main", Entry: 0, End: 0}
	instrs := []*Instr{
		{Op: OpMov, Rd: 1, Src: Const(5), Line: 2},
		{Op: OpBin, Rd: 2, Src: Reg(1), Src2: Const(3), BinOp: minic.Add},
		{Op: OpUn, Rd: 3, Src: Reg(2), UnOp: minic.Neg},
		{Op: OpLoadG, Rd: 4, Global: "g", Src: Const(0)},
		{Op: OpStoreG, Rd: -1, Global: "g", Src: Const(0), Src2: Reg(4)},
		{Op: OpLoadSlot, Rd: 5, Slot: 1, Src: Const(0)},
		{Op: OpStoreSlot, Rd: -1, Slot: 1, Src: Const(0), Src2: Reg(5)},
		{Op: OpAddrG, Rd: 6, Global: "g", Src: Const(0)},
		{Op: OpAddrSlot, Rd: 7, Slot: 0, Src: Const(0)},
		{Op: OpLoadPtr, Rd: 8, Src: Reg(6)},
		{Op: OpStorePtr, Rd: -1, Src: Reg(6), Src2: Const(1)},
		{Op: OpCall, Rd: 9, Callee: "f", Args: []Operand{Const(1), Reg(2)}},
		{Op: OpJmp, Rd: -1, Target: 3},
		{Op: OpJz, Rd: -1, Src: Reg(1), Target: 5},
		{Op: OpRet, Rd: -1, Src: Const(0)},
		{Op: OpNop, Rd: -1, Src: Operand{Temp: -1}},
	}
	p.Instrs = instrs
	f.End = len(instrs)
	p.Funcs = append(p.Funcs, f)
	text := p.String()
	for _, frag := range []string{"mov 5", "t1 + 3", "g[0]", "slot1[0]",
		"&g + 0", "&slot0 + 0", "*t6", "call f(1, t2)", "jmp 3", "jz t1, 5",
		"ret 0", "nop", "; line 2"} {
		if !strings.Contains(text, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, text)
		}
	}
}

func TestFuncAtAndLookup(t *testing.T) {
	p := &Program{
		Funcs: []*Func{{Name: "a", Entry: 0, End: 3}, {Name: "b", Entry: 3, End: 7}},
	}
	if p.Func("a") == nil || p.Func("zz") != nil {
		t.Error("Func lookup wrong")
	}
	if p.FuncAt(2).Name != "a" || p.FuncAt(3).Name != "b" || p.FuncAt(99) != nil {
		t.Error("FuncAt wrong")
	}
}

func TestRegOfIdentity(t *testing.T) {
	for _, v := range []int{0, 1, 17, 400} {
		if RegOf(v) != v {
			t.Errorf("RegOf(%d) = %d", v, RegOf(v))
		}
	}
}
