// Package asm defines the virtual instruction set the code generator
// targets and the VM executes. The machine has per-frame virtual registers
// (the compiler's temporaries), a frame slot area, and global memory.
// Registers are callee-saved by convention: a call preserves the caller's
// register file, so debug-location ranges survive across calls (the
// variables the paper's conjectures reason about live in callee-saved
// registers on real targets too). A register-held debug location therefore
// ends only when its register is redefined.
package asm

import (
	"fmt"
	"strings"

	"repro/internal/minic"
)

// RegOf maps a temporary to its debug-visible register number. The virtual
// machine has as many registers as the compiler needs, so the mapping is
// the identity; it exists to keep the codegen ↔ debugger contract explicit.
func RegOf(temp int) int { return temp }

// Op enumerates machine operations.
type Op int

// Machine operations.
const (
	OpMov       Op = iota // rd = src
	OpUn                  // rd = unop src
	OpBin                 // rd = src binop src2
	OpLoadG               // rd = global[idx]
	OpStoreG              // global[idx] = src
	OpLoadSlot            // rd = slot[idx]
	OpStoreSlot           // slot[idx] = src
	OpAddrG               // rd = &global + idx
	OpAddrSlot            // rd = &slot + idx
	OpLoadPtr             // rd = *src
	OpStorePtr            // *src = src2
	OpCall                // rd = call name(args...)
	OpJmp                 // pc = target
	OpJz                  // if src == 0: pc = target
	OpRet                 // return src?
	OpNop                 // padding (keeps addresses stable in tests)
)

var opNames = [...]string{
	"mov", "un", "bin", "loadg", "storeg", "loadslot", "storeslot",
	"addrg", "addrslot", "loadptr", "storeptr", "call", "jmp", "jz", "ret", "nop",
}

func (o Op) String() string { return opNames[o] }

// Operand is either a constant or a temporary.
type Operand struct {
	IsConst bool
	C       int64
	Temp    int
}

// Const returns a constant operand.
func Const(c int64) Operand { return Operand{IsConst: true, C: c} }

// Reg returns a temporary operand.
func Reg(t int) Operand { return Operand{Temp: t} }

func (o Operand) String() string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.C)
	}
	return fmt.Sprintf("t%d", o.Temp)
}

// Instr is one machine instruction.
type Instr struct {
	Op     Op
	Rd     int // destination temporary (-1 none)
	Src    Operand
	Src2   Operand
	Args   []Operand // call arguments
	UnOp   minic.UnaryOp
	BinOp  minic.BinOp
	Width  *minic.IntType
	Global string // global symbol for OpLoadG/OpStoreG/OpAddrG
	Slot   int
	Callee string
	Target int // jump target pc
	Line   int
	// InlineID identifies the inline site the instruction belongs to
	// (0 = the enclosing physical function).
	InlineID int
}

func (in *Instr) String() string {
	var sb strings.Builder
	if in.Rd >= 0 {
		fmt.Fprintf(&sb, "t%d = ", in.Rd)
	}
	switch in.Op {
	case OpMov:
		fmt.Fprintf(&sb, "mov %s", in.Src)
	case OpUn:
		fmt.Fprintf(&sb, "%s %s", in.UnOp, in.Src)
	case OpBin:
		fmt.Fprintf(&sb, "%s %s %s", in.Src, in.BinOp, in.Src2)
	case OpLoadG:
		fmt.Fprintf(&sb, "%s[%s]", in.Global, in.Src)
	case OpStoreG:
		fmt.Fprintf(&sb, "%s[%s] = %s", in.Global, in.Src, in.Src2)
	case OpLoadSlot:
		fmt.Fprintf(&sb, "slot%d[%s]", in.Slot, in.Src)
	case OpStoreSlot:
		fmt.Fprintf(&sb, "slot%d[%s] = %s", in.Slot, in.Src, in.Src2)
	case OpAddrG:
		fmt.Fprintf(&sb, "&%s + %s", in.Global, in.Src)
	case OpAddrSlot:
		fmt.Fprintf(&sb, "&slot%d + %s", in.Slot, in.Src)
	case OpLoadPtr:
		fmt.Fprintf(&sb, "*%s", in.Src)
	case OpStorePtr:
		fmt.Fprintf(&sb, "*%s = %s", in.Src, in.Src2)
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		fmt.Fprintf(&sb, "call %s(%s)", in.Callee, strings.Join(args, ", "))
	case OpJmp:
		fmt.Fprintf(&sb, "jmp %d", in.Target)
	case OpJz:
		fmt.Fprintf(&sb, "jz %s, %d", in.Src, in.Target)
	case OpRet:
		if in.Src.IsConst || in.Src.Temp >= 0 {
			fmt.Fprintf(&sb, "ret %s", in.Src)
		} else {
			sb.WriteString("ret")
		}
	case OpNop:
		sb.WriteString("nop")
	}
	if in.Line > 0 {
		fmt.Fprintf(&sb, "  ; line %d", in.Line)
	}
	return sb.String()
}

// Func is one compiled function.
type Func struct {
	Name   string
	Entry  int // pc of the first instruction
	End    int // pc one past the last instruction
	NTemp  int
	Slots  []int // slot sizes in words
	HasRet bool
}

// Global is one data symbol.
type Global struct {
	Name     string
	Size     int
	Init     []int64
	Volatile bool
}

// Program is a fully linked executable image.
type Program struct {
	Instrs  []*Instr
	Funcs   []*Func
	Globals []*Global
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FuncAt returns the function whose code contains pc.
func (p *Program) FuncAt(pc int) *Func {
	for _, f := range p.Funcs {
		if pc >= f.Entry && pc < f.End {
			return f
		}
	}
	return nil
}

// String disassembles the program.
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "%s:\n", f.Name)
		for pc := f.Entry; pc < f.End; pc++ {
			fmt.Fprintf(&sb, "%4d  %s\n", pc, p.Instrs[pc])
		}
	}
	return sb.String()
}
