package debugger

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/object"
	"repro/internal/opt"
)

func compileAt(t *testing.T, src, level string) *object.Executable {
	t.Helper()
	prog := minic.MustParse(src)
	res, err := compiler.Compile(prog, compiler.Config{
		Family: compiler.GC, Version: "trunk", Level: level}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Exe
}

const traceSrc = `
int g;
extern void opaque(int x);
int main(void) {
  int x = 5;
  int y = x + 2;
  g = y;
  opaque(y);
  return 0;
}
`

func TestRecordO0ShowsEverything(t *testing.T) {
	exe := compileAt(t, traceSrc, "O0")
	tr, err := Record(exe, NewGDB(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stops) < 4 {
		t.Fatalf("too few stops: %v", tr.HitLines())
	}
	// At the opaque call line both x and y are available with values.
	var callStop *Stop
	for _, s := range tr.Stops {
		if s.Line == 8 {
			callStop = s
		}
	}
	if callStop == nil {
		t.Fatalf("call line not stepped; lines: %v", tr.HitLines())
	}
	if v := callStop.Var("x"); v.State != Available || v.Value != 5 {
		t.Errorf("x = %+v, want available 5", v)
	}
	if v := callStop.Var("y"); v.State != Available || v.Value != 7 {
		t.Errorf("y = %+v, want available 7", v)
	}
}

func TestFirstHitSemantics(t *testing.T) {
	exe := compileAt(t, `
int g;
int main(void) {
  int i;
  for (i = 0; i < 5; i = i + 1) {
    g = g + i;
  }
  return 0;
}`, "O0")
	tr, err := Record(exe, NewGDB(nil))
	if err != nil {
		t.Fatal(err)
	}
	// The loop body line records its *first* hit: i must be 0 there.
	for _, s := range tr.Stops {
		if s.Line == 6 {
			if v := s.Var("i"); v.State != Available || v.Value != 0 {
				t.Errorf("first-hit i = %+v, want 0", v)
			}
		}
	}
}

func TestVarHelperDefaultsToNotVisible(t *testing.T) {
	s := &Stop{Vars: []Variable{{Name: "a", State: Available, Value: 1}}}
	if v := s.Var("zz"); v.State != NotVisible {
		t.Errorf("missing variable state = %v, want NotVisible", v.State)
	}
}

// buildInlineExe hand-crafts an executable whose DWARF has an inlined
// subroutine with a const value only on the abstract origin — the lldb
// 50076 surface — and variables wrapped in a concrete-only lexical block —
// the gdb 29060 surface.
func buildInlineExe(t *testing.T) *object.Executable {
	t.Helper()
	prog := minic.MustParse(`
int g;
extern void opaque(int x);
int add3(int p, int q, int r) { return p + q + r; }
int main(void) {
  g = add3(1, 2, 3);
  opaque(g);
  return 0;
}`)
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Inline with the abstract-only defect active.
	cfgDefects := map[string]bool{bugs.CLInlineAbstractOnly: true}
	opt.RunPipeline(m, []opt.Pass{opt.Mem2Reg{}, opt.Inline{}},
		opt.Options{BisectLimit: -1, Defects: cfgDefects})
	asmProg, info, err := codegen.Generate(m, codegen.Options{Defects: cfgDefects})
	if err != nil {
		t.Fatal(err)
	}
	return object.New(asmProg, info)
}

func TestDebuggerAsymmetries(t *testing.T) {
	exe := buildInlineExe(t)
	// gdb (no abstract-only defect) can read abstract-origin constants;
	// lldb with the catalogued defect cannot.
	gdb := NewGDB(compiler.DebuggerDefects("gdb"))
	lldb := NewLLDB(compiler.DebuggerDefects("lldb"))
	trG, err := Record(exe, gdb)
	if err != nil {
		t.Fatal(err)
	}
	trL, err := Record(exe, lldb)
	if err != nil {
		t.Fatal(err)
	}
	gdbAvail, lldbAvail := 0, 0
	for _, s := range trG.Stops {
		for _, v := range s.Vars {
			if v.State == Available {
				gdbAvail++
			}
		}
	}
	for _, s := range trL.Stops {
		for _, v := range s.Vars {
			if v.State == Available {
				lldbAvail++
			}
		}
	}
	// The inlined callee has three variables, so codegen wraps its concrete
	// instance in a lexical block the abstract instance lacks; gdb's 29060
	// mismatch bug then hides variables that lldb displays fine — the
	// paper's "symmetric discrepancies" observation.
	if gdbAvail >= lldbAvail {
		t.Errorf("expected gdb to hide block-wrapped inlined variables: gdb=%d lldb=%d",
			gdbAvail, lldbAvail)
	}
	// Without its defect, gdb sees everything lldb sees.
	trClean, err := Record(exe, NewGDB(nil))
	if err != nil {
		t.Fatal(err)
	}
	cleanAvail := 0
	for _, s := range trClean.Stops {
		for _, v := range s.Vars {
			if v.State == Available {
				cleanAvail++
			}
		}
	}
	if cleanAvail < lldbAvail {
		t.Errorf("defect-free gdb shows less than lldb: %d < %d", cleanAvail, lldbAvail)
	}
	// The inlined frame must be reported when stopped inside inlined code.
	foundInline := false
	for _, s := range trG.Stops {
		if s.Frame == "add3" {
			foundInline = true
		}
	}
	if !foundInline {
		t.Log("note: no stop landed inside the inlined frame (layout-dependent)")
	}
}
