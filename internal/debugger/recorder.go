package debugger

// The Recorder is the session layer of the checking pipeline: one VM
// execution per binary, fanned out to N registered debugger engines. The
// paper's §4.2 cross-validation runs the same binary under both engines;
// recording both views from a single pass halves the VM executions, and
// the precompiled StopPlan (built here, at session setup) turns each
// engine's per-stop work into register/memory reads.

import (
	"fmt"
	"maps"

	"repro/internal/object"
	"repro/internal/vm"
)

// MultiTrace is one single-pass recording seen through every registered
// engine: Views[i] is Engines[i]'s Trace of the shared execution. Views
// share no mutable state — stop maps, steppable sets and variable slices
// are engine-private — so a consumer may mutate one view (or one engine's
// defect set) without leaking into another.
type MultiTrace struct {
	// Engines holds the engine names in registration order.
	Engines []string
	// Views holds the per-engine traces, parallel to Engines.
	Views []*Trace
}

// View returns the named engine's trace, or nil when it was not
// registered. With duplicate names the first registration wins.
func (mt *MultiTrace) View(name string) *Trace {
	for i, n := range mt.Engines {
		if n == name {
			return mt.Views[i]
		}
	}
	return nil
}

// Recorder is one single-pass debugging session over an executable. The
// stop plan is precompiled at construction (debug information is decoded
// once, not per stop); Run executes the VM once and presents each
// first-hit stop to every registered engine.
type Recorder struct {
	exe  *object.Executable
	plan *StopPlan
	dbgs []Debugger
	opts RecordOpts
}

// NewRecorder prepares a session over exe for the given engines, compiling
// the stop plan up front. At least one engine is required.
func NewRecorder(exe *object.Executable, o RecordOpts, dbgs ...Debugger) (*Recorder, error) {
	if len(dbgs) == 0 {
		return nil, fmt.Errorf("debugger: recorder needs at least one engine")
	}
	plan, err := PlanStops(exe)
	if err != nil {
		return nil, err
	}
	return &Recorder{exe: exe, plan: plan, dbgs: dbgs, opts: o}, nil
}

// Plan exposes the session's precompiled stop plan.
func (r *Recorder) Plan() *StopPlan { return r.plan }

// Run executes the VM once with one-shot breakpoints armed on every
// line-table address and records the first stop per source line — the
// paper's checking criterion (§4.2, footnote 3) — into one view per
// registered engine. Whether a line is hit is engine-independent, so all
// views stop on exactly the same lines; only the presented frames differ.
func (r *Recorder) Run() (*MultiTrace, error) {
	mt := &MultiTrace{Engines: make([]string, len(r.dbgs)), Views: make([]*Trace, len(r.dbgs))}
	for i, d := range r.dbgs {
		mt.Engines[i] = d.Name()
		mt.Views[i] = &Trace{Stops: make(map[int]*Stop, len(r.plan.steppable)),
			Steppable: maps.Clone(r.plan.steppable), NLines: r.plan.nLines}
	}
	m, err := vm.New(r.exe.Prog)
	if err != nil {
		return nil, err
	}
	if r.opts.StepBudget > 0 {
		m.MaxStep = r.opts.StepBudget
	}
	for _, e := range r.plan.Info.Lines {
		m.SetBreak(int(e.PC))
	}
	err = m.ForEachStop(func() error {
		ps := r.plan.Stops[uint32(m.PC)]
		if ps == nil || ps.Line == 0 || mt.Views[0].Stops[ps.Line] != nil {
			// Not the first hit of a recordable line: resume (the
			// breakpoint was one-shot, so the cost is bounded).
			return nil
		}
		for i, d := range r.dbgs {
			var stop *Stop
			if ins, ok := d.(Inspector); ok {
				stop = ins.InspectAt(ps, m)
			} else {
				var err error
				if stop, err = d.Inspect(r.exe, m); err != nil {
					return err
				}
			}
			mt.Views[i].Stops[ps.Line] = stop
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("debugger: execution failed: %w", err)
	}
	return mt, nil
}
