package debugger

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/bugs"
	"repro/internal/compiler"
	"repro/internal/minic"
	"repro/internal/object"
	"repro/internal/vm"
)

// legacyRecord is the pre-Recorder monolithic loop, kept verbatim as the
// reference implementation for the equivalence contract: one VM pass per
// (binary, debugger), with a full DWARF walk at every stop via Inspect.
func legacyRecord(t *testing.T, exe *object.Executable, dbg Debugger) *Trace {
	t.Helper()
	info, err := exe.DebugInfo()
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Stops: map[int]*Stop{}, Steppable: info.SteppableLines(), NLines: info.NLines}
	m, err := vm.New(exe.Prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range info.Lines {
		m.SetBreak(int(e.PC))
	}
	for {
		hit, err := m.Continue()
		if err != nil {
			t.Fatalf("legacy record: execution failed: %v", err)
		}
		if !hit {
			break
		}
		line := info.PCToLine(uint32(m.PC))
		if line == 0 || tr.Stops[line] != nil {
			if err := m.Step(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		stop, err := dbg.Inspect(exe, m)
		if err != nil {
			t.Fatal(err)
		}
		tr.Stops[line] = stop
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// goldenSources loads the checked-in golden-corpus programs (the same
// fixtures the serving layer pins byte-for-byte).
func goldenSources(t *testing.T) map[string]*minic.Program {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "golden", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden corpus sources found")
	}
	out := map[string]*minic.Program{}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := minic.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		minic.AssignLines(prog)
		if err := minic.Check(prog); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		out[filepath.Base(p)] = prog
	}
	return out
}

// fullGrid returns every (family, version, level) configuration.
func fullGrid() []compiler.Config {
	var out []compiler.Config
	for _, fam := range []compiler.Family{compiler.GC, compiler.CL} {
		versions, levels := compiler.GCVersions, compiler.GCLevels
		if fam == compiler.CL {
			versions, levels = compiler.CLVersions, compiler.CLLevels
		}
		for _, v := range versions {
			for _, l := range levels {
				out = append(out, compiler.Config{Family: fam, Version: v, Level: l})
			}
		}
	}
	return out
}

// TestRecorderMatchesLegacyRecord pins the refactor's equivalence
// contract: for every golden-corpus program across the full version ×
// level grid of both families, the single-pass Recorder produces traces
// deep-equal to the legacy one-engine-per-execution loop, for both
// debugger engines — from ONE execution instead of two.
func TestRecorderMatchesLegacyRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid equivalence sweep skipped in -short mode")
	}
	progs := goldenSources(t)
	grid := fullGrid()
	gdb := NewGDB(compiler.DebuggerDefects("gdb"))
	lldb := NewLLDB(compiler.DebuggerDefects("lldb"))
	for name, prog := range progs {
		name, prog := name, prog
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, cfg := range grid {
				res, err := compiler.Compile(prog, cfg, compiler.Options{})
				if err != nil {
					t.Fatalf("%v: %v", cfg, err)
				}
				wantG := legacyRecord(t, res.Exe, gdb)
				wantL := legacyRecord(t, res.Exe, lldb)
				rec, err := NewRecorder(res.Exe, RecordOpts{}, gdb, lldb)
				if err != nil {
					t.Fatalf("%v: %v", cfg, err)
				}
				mt, err := rec.Run()
				if err != nil {
					t.Fatalf("%v: %v", cfg, err)
				}
				if !reflect.DeepEqual(mt.View("gdb"), wantG) {
					t.Errorf("%v: gdb view diverges from legacy record", cfg)
				}
				if !reflect.DeepEqual(mt.View("lldb"), wantL) {
					t.Errorf("%v: lldb view diverges from legacy record", cfg)
				}
				// Record (the compat API) must be the recorder's view too.
				single, err := Record(res.Exe, gdb)
				if err != nil {
					t.Fatalf("%v: %v", cfg, err)
				}
				if !reflect.DeepEqual(single, wantG) {
					t.Errorf("%v: Record diverges from legacy record", cfg)
				}
			}
		})
	}
}

// TestMultiTraceViewIndependence asserts that the per-engine views of one
// recording share no mutable state: mutating everything reachable from
// one view — its stops, variables, steppable set — must leave the other
// view untouched, and mutating one engine's defect set after the session
// must not reach into either recorded view.
func TestMultiTraceViewIndependence(t *testing.T) {
	prog := minic.MustParse(`
int g;
extern void opaque(int x);
int add3(int p, int q, int r) { return p + q + r; }
int main(void) {
  int x = 4;
  g = add3(x, 2, 3);
  opaque(g);
  return 0;
}`)
	res, err := compiler.Compile(prog, compiler.Config{
		Family: compiler.GC, Version: "trunk", Level: "O2"}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gdbDefects := map[string]bool{bugs.GDBEmptyRange: true, bugs.GDBConcreteMismatch: true}
	rec, err := NewRecorder(res.Exe, RecordOpts{}, NewGDB(gdbDefects), NewLLDB(compiler.DebuggerDefects("lldb")))
	if err != nil {
		t.Fatal(err)
	}
	mt, err := rec.Run()
	if err != nil {
		t.Fatal(err)
	}
	gdbView, lldbView := mt.View("gdb"), mt.View("lldb")
	if gdbView == nil || lldbView == nil {
		t.Fatalf("missing view: engines %v", mt.Engines)
	}
	if gdbView == lldbView {
		t.Fatal("views alias the same Trace")
	}
	baseline := legacyRecord(t, res.Exe, NewLLDB(compiler.DebuggerDefects("lldb")))

	// Vandalize the gdb view in place.
	for line, s := range gdbView.Stops {
		s.Line = -1
		s.Frame = "clobbered"
		for i := range s.Vars {
			s.Vars[i] = Variable{Name: "clobbered", State: Available, Value: -42}
		}
		delete(gdbView.Stops, line)
	}
	for l := range gdbView.Steppable {
		gdbView.Steppable[l] = false
	}
	gdbView.NLines = -1
	// Flip the gdb engine's defect set after the fact.
	gdbDefects[bugs.GDBEmptyRange] = false
	gdbDefects[bugs.GDBConcreteMismatch] = false

	if !reflect.DeepEqual(lldbView, baseline) {
		t.Error("mutating the gdb view (and its defect set) leaked into the lldb view")
	}
}

// TestRecorderRequiresAnEngine covers the degenerate constructor call.
func TestRecorderRequiresAnEngine(t *testing.T) {
	exe := compileAt(t, traceSrc, "O0")
	if _, err := NewRecorder(exe, RecordOpts{}); err == nil {
		t.Fatal("expected error for a recorder with no engines")
	}
}

// TestStopVarIndexedLookup exercises the map-backed Var lookup on a stop
// with many variables, including the stale-index fallback after a caller
// mutates Vars directly.
func TestStopVarIndexedLookup(t *testing.T) {
	s := &Stop{}
	for i := 0; i < varIndexMin+4; i++ {
		s.Vars = append(s.Vars, Variable{Name: fmt.Sprintf("v%02d", i), State: Available, Value: int64(i)})
	}
	s.index()
	if s.byName == nil {
		t.Fatalf("no index built for %d variables", len(s.Vars))
	}
	for i, want := range s.Vars {
		if got := s.Var(want.Name); got != want {
			t.Errorf("Var(%q) = %+v, want %+v (i=%d)", want.Name, got, want, i)
		}
	}
	if got := s.Var("nosuch"); got.State != NotVisible {
		t.Errorf("missing variable state = %v, want NotVisible", got.State)
	}
	// A caller that appends after recording must still get correct answers
	// through the linear-scan fallback.
	s.Vars = append(s.Vars, Variable{Name: "late", State: OptimizedOut})
	if got := s.Var("late"); got.State != OptimizedOut {
		t.Errorf("appended variable state = %v, want OptimizedOut", got.State)
	}
	// Duplicate names resolve to the first occurrence, like the scan.
	dup := &Stop{}
	for i := 0; i < varIndexMin; i++ {
		dup.Vars = append(dup.Vars, Variable{Name: "same", Value: int64(i)})
	}
	dup.index()
	if got := dup.Var("same"); got.Value != 0 {
		t.Errorf("duplicate name resolved to value %d, want 0 (first occurrence)", got.Value)
	}
}

// BenchmarkRecorderTwoEnginesVsTwoRecords quantifies the tentpole at the
// session layer: both engine views from one execution versus the legacy
// two-execution pattern, on a fixed optimized binary.
func BenchmarkRecorderTwoEnginesVsTwoRecords(b *testing.B) {
	prog := minic.MustParse(traceSrc)
	res, err := compiler.Compile(prog, compiler.Config{
		Family: compiler.GC, Version: "trunk", Level: "O2"}, compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	gdb := NewGDB(compiler.DebuggerDefects("gdb"))
	lldb := NewLLDB(compiler.DebuggerDefects("lldb"))
	b.Run("single-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, err := NewRecorder(res.Exe, RecordOpts{}, gdb, lldb)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rec.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("two-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Record(res.Exe, gdb); err != nil {
				b.Fatal(err)
			}
			if _, err := Record(res.Exe, lldb); err != nil {
				b.Fatal(err)
			}
		}
	})
}
