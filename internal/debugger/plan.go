package debugger

// A StopPlan is the per-executable precompilation of everything a
// debugging session needs at each breakpoint address. The DWARF walks that
// the monolithic record loop used to repeat at every stop — subprogram
// lookup, inline-chain resolution, scope descent, location-list scans,
// abstract-origin chasing — depend only on the pc, never on machine state,
// so they are hoisted to session setup: PlanStops runs them once per
// line-table address and lowers each variable to a direct read recipe.
// After a breakpoint fires, inspection degrades to register/memory reads
// plus the per-engine defect toggles.

import (
	"repro/internal/asm"
	"repro/internal/dwarf"
	"repro/internal/object"
)

// PlannedVar is one potentially visible variable of a planned stop, its
// DWARF resolution lowered to direct machine reads. The defect surfaces
// the engines toggle on (empty-range derail, abstract-only fallback,
// block mismatch) are precomputed as flags; which of them fire is decided
// per engine at inspection time.
type PlannedVar struct {
	Name string
	// Const is the whole-lifetime DW_AT_const_value (nil when absent);
	// when set, resolution short-circuits to Available.
	Const *int64
	// EmptyDerail records that an empty location range precedes the
	// covering entry in the location-list scan at this pc — the surface of
	// gdb 28987 (bugs.GDBEmptyRange).
	EmptyDerail bool
	// HasLoc marks a location entry covering the pc; LocKind and LocValue
	// are its lowered form. For LocReg the value is already mapped through
	// asm.RegOf, so inspection is a bare register read.
	HasLoc   bool
	LocKind  dwarf.LocKind
	LocValue int64
	// AbstractConst is the abstract origin's DW_AT_const_value fallback —
	// legitimate DWARF the lldb engine cannot use (bugs.LLDBAbstractOnly).
	AbstractConst *int64
	// BlockMismatch records the concrete/abstract structural asymmetry of
	// gdb 29060: the concrete DIE sits in a lexical block its abstract
	// origin lacks (bugs.GDBConcreteMismatch drops such variables).
	BlockMismatch bool
}

// PlannedStop is the precompiled inspection recipe for one breakpoint pc:
// the resolved line, the innermost frame (an inlined callee when the pc
// falls inside an inlined subroutine), and the visible-variable list in
// scope-walk order.
type PlannedStop struct {
	PC    uint32
	Line  int
	Frame string
	Vars  []PlannedVar
}

// StopPlan maps every breakpoint address of one executable to its
// precompiled stop recipe. It is engine-independent — the same plan
// serves the gdb-like and lldb-like engines, whose catalogued quirks are
// applied as cheap flag checks during inspection — and read-only after
// construction, so one plan may back concurrent sessions.
type StopPlan struct {
	// Info is the decoded debug information the plan was compiled from.
	Info *dwarf.Info
	// Stops keys each line-table address to its recipe.
	Stops map[uint32]*PlannedStop

	steppable map[int]bool // master copy; each trace view gets a clone
	nLines    int
}

// PlanStops returns the stop plan of exe, compiling it on first use: the
// debug information is decoded once (session setup, not per stop) and
// every line-table address gets its resolved subprogram, inline chain,
// variable list, and lowered location steps. The plan is cached on the
// executable — it is read-only and engine-independent — so every later
// session over the same (possibly engine-cache-shared) binary skips the
// precompilation entirely.
func PlanStops(exe *object.Executable) (*StopPlan, error) {
	v, err := exe.SessionArtifact(func() (any, error) { return compilePlan(exe) })
	if err != nil {
		return nil, err
	}
	if p, ok := v.(*StopPlan); ok {
		return p, nil
	}
	// Another subsystem claimed the executable's artifact slot first:
	// fall back to an uncached plan rather than fighting over it.
	return compilePlan(exe)
}

func compilePlan(exe *object.Executable) (*StopPlan, error) {
	info, err := exe.DebugInfo()
	if err != nil {
		return nil, err
	}
	p := &StopPlan{Info: info, Stops: make(map[uint32]*PlannedStop, len(info.Lines)),
		steppable: info.SteppableLines(), nLines: info.NLines}
	for _, e := range info.Lines {
		if _, ok := p.Stops[e.PC]; ok {
			continue
		}
		p.Stops[e.PC] = planStop(info, e.PC)
	}
	return p, nil
}

// planStop resolves one pc: subprogram, inline chain, and the variables of
// the innermost frame's scope, descending into lexical blocks that are in
// scope at the pc.
func planStop(info *dwarf.Info, pc uint32) *PlannedStop {
	ps := &PlannedStop{PC: pc, Line: info.PCToLine(pc)}
	sub := info.Subprogram(pc)
	if sub == nil {
		return ps
	}
	chain := info.InlineChainAt(pc)
	scope := sub
	ps.Frame = sub.Name
	if len(chain) > 0 {
		scope = chain[len(chain)-1]
		ps.Frame = scope.Name
	}
	var walk func(d *dwarf.DIE, inBlock bool)
	walk = func(d *dwarf.DIE, inBlock bool) {
		for _, c := range d.Children {
			switch c.Tag {
			case dwarf.TagVariable, dwarf.TagFormalParameter:
				ps.Vars = append(ps.Vars, planVar(info, c, pc, inBlock))
			case dwarf.TagLexicalBlock:
				if c.CoversPC(pc) || len(c.Ranges) == 0 {
					walk(c, true)
				}
			}
		}
	}
	walk(scope, false)
	return ps
}

// planVar lowers one variable DIE's resolution at pc. The location list is
// scanned in order, mirroring the engines' scan: an empty range seen
// before the first covering entry is recorded as a derail point (it ends
// the scan of an engine with the empty-range defect), and the first
// covering entry wins.
func planVar(info *dwarf.Info, d *dwarf.DIE, pc uint32, inBlock bool) PlannedVar {
	v := PlannedVar{Name: d.Name, Const: d.ConstValue}
	for _, r := range d.Loc {
		if v.HasLoc {
			break
		}
		if r.Lo == r.Hi {
			v.EmptyDerail = true
			continue
		}
		if !r.Covers(pc) {
			continue
		}
		v.HasLoc = true
		v.LocKind = r.Kind
		v.LocValue = r.Value
		if r.Kind == dwarf.LocReg {
			v.LocValue = int64(asm.RegOf(int(r.Value)))
		}
	}
	if d.AbstractOrigin != 0 {
		if org := info.ByID(d.AbstractOrigin); org != nil {
			v.AbstractConst = org.ConstValue
		}
	}
	if inBlock {
		v.BlockMismatch = mismatched(info, d)
	}
	return v
}

// mismatched reports a concrete/abstract structural asymmetry for a
// variable: the concrete DIE sits in a lexical block while its abstract
// origin does not (or vice versa would also qualify; this direction is the
// one the compiler emits).
func mismatched(info *dwarf.Info, d *dwarf.DIE) bool {
	if d.AbstractOrigin == 0 {
		return false
	}
	org := info.ByID(d.AbstractOrigin)
	if org == nil {
		return false
	}
	// The abstract variable's parent must be the abstract subprogram, i.e.
	// flat structure; the concrete one is inside a block, hence mismatch.
	parent := parentOf(info.CU, org)
	return parent != nil && parent.Tag == dwarf.TagSubprogram
}

func parentOf(root, target *dwarf.DIE) *dwarf.DIE {
	var found *dwarf.DIE
	var walk func(d *dwarf.DIE)
	walk = func(d *dwarf.DIE) {
		for _, c := range d.Children {
			if c == target {
				found = d
				return
			}
			walk(c)
		}
	}
	walk(root)
	return found
}
