// Package debugger implements source-level debuggers over the VM and the
// DWARF-like debug information: a gdb-like and an lldb-like engine sharing
// the scope-resolution core but differing in the catalogued quirks the
// paper exposed (empty location ranges, abstract-origin-only locations, and
// concrete/abstract structural mismatches for inlined subroutines).
package debugger

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/bugs"
	"repro/internal/dwarf"
	"repro/internal/object"
	"repro/internal/vm"
)

// VarState is the presentation state of a variable at a stop.
type VarState int

// Variable presentation states, in increasing quality.
const (
	// NotVisible: the variable does not appear in the frame at all.
	NotVisible VarState = iota
	// OptimizedOut: listed, but no value can be shown.
	OptimizedOut
	// Available: listed with its current value.
	Available
)

func (s VarState) String() string {
	return [...]string{"not-visible", "optimized-out", "available"}[s]
}

// Variable is one frame variable at a stop.
type Variable struct {
	Name  string
	State VarState
	Value int64
}

// Stop describes the program state the debugger presents at a breakpoint.
type Stop struct {
	PC   uint32
	Line int
	// Frame is the innermost function name (an inlined callee when the pc
	// falls inside an inlined subroutine).
	Frame string
	Vars  []Variable
}

// Var returns the named variable's presentation, defaulting to NotVisible.
func (s *Stop) Var(name string) Variable {
	for _, v := range s.Vars {
		if v.Name == name {
			return v
		}
	}
	return Variable{Name: name, State: NotVisible}
}

// Debugger inspects stopped machines through debug information.
type Debugger interface {
	// Name identifies the engine ("gdb" or "lldb").
	Name() string
	// Inspect builds the stop presentation for the machine's current pc.
	Inspect(exe *object.Executable, m *vm.Machine) (*Stop, error)
}

// engine is the shared implementation; quirks are toggled per debugger.
type engine struct {
	name string
	// defects holds the debugger-side defect mechanisms that are active.
	defects map[string]bool
}

// NewGDB returns the gdb-like debugger with the given active defects
// (bugs.GDBEmptyRange, bugs.GDBConcreteMismatch).
func NewGDB(defects map[string]bool) Debugger {
	return &engine{name: "gdb", defects: defects}
}

// NewLLDB returns the lldb-like debugger with the given active defects
// (bugs.LLDBAbstractOnly).
func NewLLDB(defects map[string]bool) Debugger {
	return &engine{name: "lldb", defects: defects}
}

func (e *engine) Name() string { return e.name }

func (e *engine) defect(id string) bool { return e.defects[id] }

// Inspect implements Debugger.
func (e *engine) Inspect(exe *object.Executable, m *vm.Machine) (*Stop, error) {
	info, err := exe.DebugInfo()
	if err != nil {
		return nil, err
	}
	pc := uint32(m.PC)
	stop := &Stop{PC: pc, Line: info.PCToLine(pc)}
	sub := info.Subprogram(pc)
	if sub == nil {
		return stop, nil
	}
	chain := info.InlineChainAt(pc)
	scope := sub
	stop.Frame = sub.Name
	if len(chain) > 0 {
		scope = chain[len(chain)-1]
		stop.Frame = scope.Name
	}
	// Collect the variables of the innermost frame's scope.
	dies := e.scopeVariables(info, scope, pc)
	for _, d := range dies {
		v := Variable{Name: d.Name}
		v.State, v.Value = e.resolve(info, d, pc, m)
		stop.Vars = append(stop.Vars, v)
	}
	sort.Slice(stop.Vars, func(i, j int) bool { return stop.Vars[i].Name < stop.Vars[j].Name })
	return stop, nil
}

// scopeVariables lists the variable DIEs of a frame scope at pc, descending
// into lexical blocks that are in scope.
func (e *engine) scopeVariables(info *dwarf.Info, scope *dwarf.DIE, pc uint32) []*dwarf.DIE {
	var out []*dwarf.DIE
	var walk func(d *dwarf.DIE, inBlock bool)
	walk = func(d *dwarf.DIE, inBlock bool) {
		for _, c := range d.Children {
			switch c.Tag {
			case dwarf.TagVariable, dwarf.TagFormalParameter:
				if inBlock && e.defect(bugs.GDBConcreteMismatch) && e.mismatched(info, c) {
					// gdb 29060: the concrete instance nests the variable
					// in a lexical block the abstract instance lacks; the
					// mismatch makes gdb drop the variable.
					continue
				}
				out = append(out, c)
			case dwarf.TagLexicalBlock:
				if c.CoversPC(pc) || len(c.Ranges) == 0 {
					walk(c, true)
				}
			}
		}
	}
	walk(scope, false)
	return out
}

// mismatched reports a concrete/abstract structural asymmetry for a
// variable: the concrete DIE sits in a lexical block while its abstract
// origin does not (or vice versa would also qualify; this direction is the
// one the compiler emits).
func (e *engine) mismatched(info *dwarf.Info, d *dwarf.DIE) bool {
	if d.AbstractOrigin == 0 {
		return false
	}
	org := info.ByID(d.AbstractOrigin)
	if org == nil {
		return false
	}
	// The abstract variable's parent must be the abstract subprogram, i.e.
	// flat structure; the concrete one is inside a block, hence mismatch.
	parent := parentOf(info.CU, org)
	return parent != nil && parent.Tag == dwarf.TagSubprogram
}

func parentOf(root, target *dwarf.DIE) *dwarf.DIE {
	var found *dwarf.DIE
	var walk func(d *dwarf.DIE)
	walk = func(d *dwarf.DIE) {
		for _, c := range d.Children {
			if c == target {
				found = d
				return
			}
			walk(c)
		}
	}
	walk(root)
	return found
}

// resolve evaluates a variable DIE's value at pc against machine state.
func (e *engine) resolve(info *dwarf.Info, d *dwarf.DIE, pc uint32, m *vm.Machine) (VarState, int64) {
	if d.ConstValue != nil {
		return Available, *d.ConstValue
	}
	for _, r := range d.Loc {
		if r.Lo == r.Hi && e.defect(bugs.GDBEmptyRange) {
			// gdb 28987: an empty range derails the location-list scan.
			return OptimizedOut, 0
		}
		if !r.Covers(pc) {
			continue
		}
		switch r.Kind {
		case dwarf.LocConst:
			return Available, r.Value
		case dwarf.LocReg:
			if v, ok := m.ReadReg(asm.RegOf(int(r.Value))); ok {
				return Available, v
			}
			return OptimizedOut, 0
		case dwarf.LocSlot:
			if v, ok := m.ReadSlot(int(r.Value)); ok {
				return Available, v
			}
			return OptimizedOut, 0
		}
	}
	// No covering plain location: consult the abstract origin, whose
	// constant value is legitimate DWARF that lldb's engine cannot use.
	if d.AbstractOrigin != 0 && !e.defect(bugs.LLDBAbstractOnly) {
		if org := info.ByID(d.AbstractOrigin); org != nil && org.ConstValue != nil {
			return Available, *org.ConstValue
		}
	}
	return OptimizedOut, 0
}

// String renders a stop for logs and the example programs.
func (s *Stop) String() string {
	out := fmt.Sprintf("stop at line %d in %s (pc %d):", s.Line, s.Frame, s.PC)
	for _, v := range s.Vars {
		if v.State == Available {
			out += fmt.Sprintf(" %s=%d", v.Name, v.Value)
		} else {
			out += fmt.Sprintf(" %s=<%s>", v.Name, v.State)
		}
	}
	return out
}
