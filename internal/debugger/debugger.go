// Package debugger implements source-level debuggers over the VM and the
// DWARF-like debug information: a gdb-like and an lldb-like engine sharing
// the scope-resolution core but differing in the catalogued quirks the
// paper exposed (empty location ranges, abstract-origin-only locations, and
// concrete/abstract structural mismatches for inlined subroutines).
//
// Sessions are single-pass: a Recorder executes the VM once per binary and
// fans every first-hit stop out to all registered engines, inspecting
// through a StopPlan precompiled at session setup, so per-stop work is
// register/memory reads rather than DWARF walks.
package debugger

import (
	"fmt"
	"sort"

	"repro/internal/bugs"
	"repro/internal/dwarf"
	"repro/internal/object"
	"repro/internal/vm"
)

// VarState is the presentation state of a variable at a stop.
type VarState int

// Variable presentation states, in increasing quality.
const (
	// NotVisible: the variable does not appear in the frame at all.
	NotVisible VarState = iota
	// OptimizedOut: listed, but no value can be shown.
	OptimizedOut
	// Available: listed with its current value.
	Available
)

func (s VarState) String() string {
	return [...]string{"not-visible", "optimized-out", "available"}[s]
}

// Variable is one frame variable at a stop.
type Variable struct {
	Name  string
	State VarState
	Value int64
}

// Stop describes the program state the debugger presents at a breakpoint.
type Stop struct {
	PC   uint32
	Line int
	// Frame is the innermost function name (an inlined callee when the pc
	// falls inside an inlined subroutine).
	Frame string
	Vars  []Variable

	// byName indexes Vars by name on variable-heavy stops (see
	// varIndexMin); Var falls back to the linear scan when the index is
	// absent or stale.
	byName map[string]int
}

// varIndexMin is the Vars count at which a recorded stop gets a
// map-backed name index; below it the linear scan wins.
const varIndexMin = 8

// index builds the name lookup map for variable-heavy stops. Iterating
// backwards makes the first occurrence of a duplicated name win, matching
// the linear scan.
func (s *Stop) index() {
	if len(s.Vars) < varIndexMin {
		return
	}
	s.byName = make(map[string]int, len(s.Vars))
	for i := len(s.Vars) - 1; i >= 0; i-- {
		s.byName[s.Vars[i].Name] = i
	}
}

// Var returns the named variable's presentation, defaulting to NotVisible.
func (s *Stop) Var(name string) Variable {
	if i, ok := s.byName[name]; ok && i < len(s.Vars) && s.Vars[i].Name == name {
		return s.Vars[i]
	}
	for _, v := range s.Vars {
		if v.Name == name {
			return v
		}
	}
	return Variable{Name: name, State: NotVisible}
}

// Debugger inspects stopped machines through debug information.
type Debugger interface {
	// Name identifies the engine ("gdb" or "lldb").
	Name() string
	// Inspect builds the stop presentation for the machine's current pc.
	Inspect(exe *object.Executable, m *vm.Machine) (*Stop, error)
}

// Inspector is a Debugger that can inspect a stop through a precompiled
// StopPlan entry instead of walking DWARF. Both built-in engines implement
// it; the Recorder takes the fast path whenever it is available and falls
// back to per-stop Inspect for foreign Debugger implementations.
type Inspector interface {
	Debugger
	// InspectAt builds the stop presentation from a precompiled recipe,
	// performing only register/memory reads against the machine.
	InspectAt(ps *PlannedStop, m *vm.Machine) *Stop
}

// engine is the shared implementation; quirks are toggled per debugger.
type engine struct {
	name string
	// defects holds the debugger-side defect mechanisms that are active.
	defects map[string]bool
}

// NewGDB returns the gdb-like debugger with the given active defects
// (bugs.GDBEmptyRange, bugs.GDBConcreteMismatch).
func NewGDB(defects map[string]bool) Debugger {
	return &engine{name: "gdb", defects: defects}
}

// NewLLDB returns the lldb-like debugger with the given active defects
// (bugs.LLDBAbstractOnly).
func NewLLDB(defects map[string]bool) Debugger {
	return &engine{name: "lldb", defects: defects}
}

func (e *engine) Name() string { return e.name }

func (e *engine) defect(id string) bool { return e.defects[id] }

// Inspect implements Debugger. It compiles a one-off plan for the current
// pc; session code should plan once per executable (PlanStops or a
// Recorder) so per-stop inspection skips the DWARF walk and the debug-info
// fetch entirely.
func (e *engine) Inspect(exe *object.Executable, m *vm.Machine) (*Stop, error) {
	info, err := exe.DebugInfo()
	if err != nil {
		return nil, err
	}
	return e.InspectAt(planStop(info, uint32(m.PC)), m), nil
}

// InspectAt implements Inspector: the engine's quirks are applied as flag
// checks over the precompiled recipe, and every variable resolves by a
// direct register/memory read.
func (e *engine) InspectAt(ps *PlannedStop, m *vm.Machine) *Stop {
	stop := &Stop{PC: ps.PC, Line: ps.Line, Frame: ps.Frame}
	for i := range ps.Vars {
		pv := &ps.Vars[i]
		if pv.BlockMismatch && e.defect(bugs.GDBConcreteMismatch) {
			// gdb 29060: the concrete instance nests the variable in a
			// lexical block the abstract instance lacks; the mismatch makes
			// gdb drop the variable.
			continue
		}
		v := Variable{Name: pv.Name}
		v.State, v.Value = e.resolve(pv, m)
		stop.Vars = append(stop.Vars, v)
	}
	sort.Slice(stop.Vars, func(i, j int) bool { return stop.Vars[i].Name < stop.Vars[j].Name })
	stop.index()
	return stop
}

// resolve evaluates a planned variable against machine state.
func (e *engine) resolve(pv *PlannedVar, m *vm.Machine) (VarState, int64) {
	if pv.Const != nil {
		return Available, *pv.Const
	}
	if pv.EmptyDerail && e.defect(bugs.GDBEmptyRange) {
		// gdb 28987: an empty range derails the location-list scan.
		return OptimizedOut, 0
	}
	if pv.HasLoc {
		switch pv.LocKind {
		case dwarf.LocConst:
			return Available, pv.LocValue
		case dwarf.LocReg:
			if v, ok := m.ReadReg(int(pv.LocValue)); ok {
				return Available, v
			}
			return OptimizedOut, 0
		case dwarf.LocSlot:
			if v, ok := m.ReadSlot(int(pv.LocValue)); ok {
				return Available, v
			}
			return OptimizedOut, 0
		}
	}
	// No covering plain location: the abstract origin's constant value is
	// legitimate DWARF that lldb's engine cannot use.
	if pv.AbstractConst != nil && !e.defect(bugs.LLDBAbstractOnly) {
		return Available, *pv.AbstractConst
	}
	return OptimizedOut, 0
}

// String renders a stop for logs and the example programs.
func (s *Stop) String() string {
	out := fmt.Sprintf("stop at line %d in %s (pc %d):", s.Line, s.Frame, s.PC)
	for _, v := range s.Vars {
		if v.State == Available {
			out += fmt.Sprintf(" %s=%d", v.Name, v.Value)
		} else {
			out += fmt.Sprintf(" %s=<%s>", v.Name, v.State)
		}
	}
	return out
}
