package debugger

import (
	"fmt"
	"sort"

	"repro/internal/object"
	"repro/internal/vm"
)

// Trace is the per-line record of one debugging session: for every source
// line that could be stepped on, the first-hit presentation of the frame
// (the paper's checking criterion — footnote 3 — records only the first
// time a line is met).
type Trace struct {
	// Stops maps a source line to its first-hit stop record.
	Stops map[int]*Stop
	// Steppable is the set of lines with line-table entries (breakpoint
	// candidates), whether or not execution reached them.
	Steppable map[int]bool
	// NLines is the total number of source lines of the program.
	NLines int
}

// HitLines returns the executed lines in ascending order.
func (t *Trace) HitLines() []int {
	var out []int
	for l := range t.Stops {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// RecordOpts tunes one recording session.
type RecordOpts struct {
	// StepBudget caps the VM steps of the run; 0 means vm.DefaultMaxStep.
	StepBudget int
}

// Record runs the executable under the given debugger: it arms one-time
// breakpoints on every line-table address and records the first stop per
// source line, exactly like the paper's checking pipeline (§4.2).
func Record(exe *object.Executable, dbg Debugger) (*Trace, error) {
	return RecordWith(exe, dbg, RecordOpts{})
}

// RecordWith is Record with session options.
func RecordWith(exe *object.Executable, dbg Debugger, o RecordOpts) (*Trace, error) {
	info, err := exe.DebugInfo()
	if err != nil {
		return nil, err
	}
	t := &Trace{Stops: map[int]*Stop{}, Steppable: info.SteppableLines(), NLines: info.NLines}
	m, err := vm.New(exe.Prog)
	if err != nil {
		return nil, err
	}
	if o.StepBudget > 0 {
		m.MaxStep = o.StepBudget
	}
	for _, e := range info.Lines {
		m.SetBreak(int(e.PC))
	}
	for {
		hit, err := m.Continue()
		if err != nil {
			return nil, fmt.Errorf("debugger: execution failed: %w", err)
		}
		if !hit {
			break
		}
		line := info.PCToLine(uint32(m.PC))
		if line == 0 || t.Stops[line] != nil {
			// Not the first hit of this line: resume (the breakpoint was
			// one-shot, so the cost is bounded).
			if err := m.Step(); err != nil {
				return nil, err
			}
			continue
		}
		stop, err := dbg.Inspect(exe, m)
		if err != nil {
			return nil, err
		}
		t.Stops[line] = stop
		if err := m.Step(); err != nil {
			return nil, err
		}
	}
	return t, nil
}
