package debugger

import (
	"sort"

	"repro/internal/object"
)

// Trace is the per-line record of one debugging session: for every source
// line that could be stepped on, the first-hit presentation of the frame
// (the paper's checking criterion — footnote 3 — records only the first
// time a line is met).
type Trace struct {
	// Stops maps a source line to its first-hit stop record.
	Stops map[int]*Stop
	// Steppable is the set of lines with line-table entries (breakpoint
	// candidates), whether or not execution reached them.
	Steppable map[int]bool
	// NLines is the total number of source lines of the program.
	NLines int
}

// HitLines returns the executed lines in ascending order.
func (t *Trace) HitLines() []int {
	out := make([]int, 0, len(t.Stops))
	for l := range t.Stops {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// RecordOpts tunes one recording session.
type RecordOpts struct {
	// StepBudget caps the VM steps of the run; 0 means vm.DefaultMaxStep.
	StepBudget int
}

// Record runs the executable under the given debugger: it arms one-time
// breakpoints on every line-table address and records the first stop per
// source line, exactly like the paper's checking pipeline (§4.2).
//
// It is a single-engine Recorder session; to trace several engines from
// one execution, use NewRecorder directly.
func Record(exe *object.Executable, dbg Debugger) (*Trace, error) {
	return RecordWith(exe, dbg, RecordOpts{})
}

// RecordWith is Record with session options.
func RecordWith(exe *object.Executable, dbg Debugger, o RecordOpts) (*Trace, error) {
	rec, err := NewRecorder(exe, o, dbg)
	if err != nil {
		return nil, err
	}
	mt, err := rec.Run()
	if err != nil {
		return nil, err
	}
	return mt.Views[0], nil
}
