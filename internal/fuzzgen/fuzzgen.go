// Package fuzzgen generates random MiniC test programs, playing the role of
// Csmith in the paper's pipeline. Programs are deterministic functions of
// the seed, free of undefined behaviour by construction, and guaranteed to
// terminate: every loop is a counted loop with literal bounds whose
// induction variable the body never modifies, and goto loops test
// zero-initialised globals.
//
// Like the paper's Csmith setup, each generation draws an assortment of
// ~20 feature options that shape the program (arrays, volatiles, pointers,
// opaque calls, helper functions, assignment expressions, nested scopes...).
package fuzzgen

import (
	"fmt"
	"math/rand"

	"repro/internal/minic"
)

// Options are the generator's feature knobs (the "assortment of 20 options"
// of §4.1).
type Options struct {
	Seed int64

	MaxGlobals   int // 1
	MaxArrays    int // 2
	MaxHelpers   int // 3
	MaxStmts     int // 4: statements per block
	MaxDepth     int // 5: block nesting
	MaxLoopNest  int // 6
	MaxLoopBound int // 7
	MaxExprDepth int // 8

	Volatile      bool // 9
	Pointers      bool // 10
	OpaqueCalls   bool // 11
	Helpers       bool // 12
	AssignExprs   bool // 13
	NestedScopes  bool // 14
	Gotos         bool // 15
	ShortCircuit  bool // 16
	Unsigned      bool // 17
	NarrowTypes   bool // 18
	IndexArith    bool // 19: iv*const array indexing (LSR bait)
	ConstFoldBait bool // 20: (x)*zeroConst patterns (the paper's §1 shape)
}

// DefaultOptions returns an assortment of options drawn from the seed,
// mirroring how the paper configures Csmith differently per program.
func DefaultOptions(seed int64) Options {
	r := rand.New(rand.NewSource(seed))
	return Options{
		Seed:          seed,
		MaxGlobals:    2 + r.Intn(4),
		MaxArrays:     1 + r.Intn(3),
		MaxHelpers:    r.Intn(4),
		MaxStmts:      3 + r.Intn(5),
		MaxDepth:      1 + r.Intn(3),
		MaxLoopNest:   1 + r.Intn(2),
		MaxLoopBound:  2 + r.Intn(7),
		MaxExprDepth:  1 + r.Intn(3),
		Volatile:      r.Intn(4) != 0,
		Pointers:      r.Intn(3) != 0,
		OpaqueCalls:   r.Intn(8) != 0,
		Helpers:       r.Intn(3) != 0,
		AssignExprs:   r.Intn(2) == 0,
		NestedScopes:  r.Intn(3) == 0,
		Gotos:         r.Intn(4) == 0,
		ShortCircuit:  r.Intn(2) == 0,
		Unsigned:      r.Intn(3) == 0,
		NarrowTypes:   r.Intn(3) == 0,
		IndexArith:    r.Intn(3) != 0,
		ConstFoldBait: r.Intn(3) == 0,
	}
}

// Generate builds a program from the options. The result is laid out and
// type-checked; generation panics only on internal generator bugs.
func Generate(o Options) *minic.Program {
	g := &gen{o: o, r: rand.New(rand.NewSource(o.Seed))}
	prog := g.program()
	minic.AssignLines(prog)
	if err := minic.Check(prog); err != nil {
		panic(fmt.Sprintf("fuzzgen: generated invalid program (seed %d): %v", o.Seed, err))
	}
	return prog
}

// GenerateSeed is shorthand for Generate(DefaultOptions(seed)).
func GenerateSeed(seed int64) *minic.Program {
	return Generate(DefaultOptions(seed))
}

// featureNames lists the boolean feature knobs in their fixed canonical
// order; every weighted draw walks this slice, so a given (seed, weights)
// pair always produces the same assortment.
var featureNames = []string{
	"volatile", "pointers", "opaque_calls", "helpers", "assign_exprs",
	"nested_scopes", "gotos", "short_circuit", "unsigned", "narrow_types",
	"index_arith", "const_fold_bait",
}

// FeatureNames returns the boolean feature knobs in canonical order.
func FeatureNames() []string {
	return append([]string(nil), featureNames...)
}

// Features returns the assortment's boolean knobs as a name → enabled map
// (keys are FeatureNames), the form the hunting loop's per-feature
// statistics consume.
func (o Options) Features() map[string]bool {
	return map[string]bool{
		"volatile":        o.Volatile,
		"pointers":        o.Pointers,
		"opaque_calls":    o.OpaqueCalls,
		"helpers":         o.Helpers,
		"assign_exprs":    o.AssignExprs,
		"nested_scopes":   o.NestedScopes,
		"gotos":           o.Gotos,
		"short_circuit":   o.ShortCircuit,
		"unsigned":        o.Unsigned,
		"narrow_types":    o.NarrowTypes,
		"index_arith":     o.IndexArith,
		"const_fold_bait": o.ConstFoldBait,
	}
}

// setFeature flips one boolean knob by canonical name.
func (o *Options) setFeature(name string, on bool) {
	switch name {
	case "volatile":
		o.Volatile = on
	case "pointers":
		o.Pointers = on
	case "opaque_calls":
		o.OpaqueCalls = on
	case "helpers":
		o.Helpers = on
	case "assign_exprs":
		o.AssignExprs = on
	case "nested_scopes":
		o.NestedScopes = on
	case "gotos":
		o.Gotos = on
	case "short_circuit":
		o.ShortCircuit = on
	case "unsigned":
		o.Unsigned = on
	case "narrow_types":
		o.NarrowTypes = on
	case "index_arith":
		o.IndexArith = on
	case "const_fold_bait":
		o.ConstFoldBait = on
	default:
		// setFeature is only reached through featureNames; an unknown
		// name means the three feature tables (featureNames, Features,
		// this switch) drifted apart.
		panic("fuzzgen: unknown feature knob " + name)
	}
}

// WeightedOptions draws an assortment like DefaultOptions, then redraws
// each boolean feature named in weights with the given enable probability
// (clamped to [0,1]); features absent from the map keep their default
// draw. The redraw stream is independent of DefaultOptions' stream and is
// consumed one value per feature in canonical order, so adding a weight
// for one feature never perturbs another's draw. The result is a
// deterministic function of (seed, weights) — the hunting loop relies on
// that to stay reproducible at any worker count.
func WeightedOptions(seed int64, weights map[string]float64) Options {
	o := DefaultOptions(seed)
	if len(weights) == 0 {
		return o
	}
	// A distinct stream (seed xor a golden-ratio constant) so the biased
	// draws don't correlate with the numeric knobs drawn above.
	r := rand.New(rand.NewSource(int64(uint64(seed) ^ 0x9E3779B97F4A7C15)))
	for _, name := range featureNames {
		p := r.Float64()
		w, ok := weights[name]
		if !ok {
			continue
		}
		if w < 0 {
			w = 0
		} else if w > 1 {
			w = 1
		}
		o.setFeature(name, p < w)
	}
	return o
}

type scalarVar struct {
	name string
	typ  minic.Type
	// iv marks loop induction variables (not to be reassigned).
	iv bool
}

type arrayVar struct {
	name string
	typ  *minic.ArrayType
	dims []int
}

type gen struct {
	o r1Options
	r *rand.Rand

	prog     *minic.Program
	globals  []scalarVar
	garrs    []arrayVar
	volatile []string
	helpers  []*minic.FuncDecl
	opaques  []*minic.FuncDecl

	locals   []scalarVar // current function scope stack (flat; names unique)
	consts   []string    // constant-valued locals (assigned literals only)
	loopIVs  []string
	nextName int
	labelN   int
	loopNest int
}

type r1Options = Options

func (g *gen) fresh(prefix string) string {
	g.nextName++
	return fmt.Sprintf("%s%d", prefix, g.nextName)
}

func (g *gen) scalarType() minic.Type {
	choices := []minic.Type{minic.Int32, minic.Int32, minic.Int64}
	if g.o.NarrowTypes {
		choices = append(choices, minic.Int16, minic.Int8)
	}
	if g.o.Unsigned {
		choices = append(choices, minic.Uint32, minic.Uint16)
	}
	return choices[g.r.Intn(len(choices))]
}

func (g *gen) program() *minic.Program {
	g.prog = &minic.Program{}
	// Globals: scalars, some volatile.
	n := 1 + g.r.Intn(g.o.MaxGlobals)
	for i := 0; i < n; i++ {
		name := g.fresh("g")
		t := g.scalarType()
		gd := &minic.GlobalDecl{Name: name, Type: t}
		if g.r.Intn(2) == 0 {
			gd.Init = &minic.InitValue{Scalar: int64(g.r.Intn(10))}
		}
		if g.o.Volatile && g.r.Intn(3) == 0 {
			gd.Volatile = true
			g.volatile = append(g.volatile, name)
		}
		g.prog.Globals = append(g.prog.Globals, gd)
		g.globals = append(g.globals, scalarVar{name: name, typ: t})
	}
	// Global arrays with initialisers.
	na := g.r.Intn(g.o.MaxArrays + 1)
	for i := 0; i < na; i++ {
		name := g.fresh("arr")
		dims := []int{2 + g.r.Intn(4)}
		if g.r.Intn(2) == 0 {
			dims = append(dims, 2+g.r.Intn(3))
		}
		var t minic.Type = g.scalarType()
		for d := len(dims) - 1; d >= 0; d-- {
			t = &minic.ArrayType{Elem: t, Len: dims[d]}
		}
		at := t.(*minic.ArrayType)
		g.prog.Globals = append(g.prog.Globals, &minic.GlobalDecl{
			Name: name, Type: at, Init: g.arrayInit(at),
		})
		g.garrs = append(g.garrs, arrayVar{name: name, typ: at, dims: dims})
	}
	// Opaque externs (the paper links a printf-like stub).
	if g.o.OpaqueCalls {
		for _, arity := range []int{1, 3} {
			f := &minic.FuncDecl{Name: fmt.Sprintf("opaque%d", arity), Ret: minic.Void, Opaque: true}
			for p := 0; p < arity; p++ {
				f.Params = append(f.Params, &minic.Param{Name: fmt.Sprintf("p%d", p), Type: minic.Int32})
			}
			g.prog.Funcs = append(g.prog.Funcs, f)
			g.opaques = append(g.opaques, f)
		}
	}
	// Helper functions.
	if g.o.Helpers {
		nh := g.r.Intn(g.o.MaxHelpers + 1)
		for i := 0; i < nh; i++ {
			g.helper()
		}
	}
	g.mainFunc()
	return g.prog
}

func (g *gen) arrayInit(t *minic.ArrayType) *minic.InitValue {
	iv := &minic.InitValue{List: []*minic.InitValue{}}
	for i := 0; i < t.Len; i++ {
		if sub, ok := t.Elem.(*minic.ArrayType); ok {
			iv.List = append(iv.List, g.arrayInit(sub))
		} else {
			iv.List = append(iv.List, &minic.InitValue{Scalar: int64(g.r.Intn(9))})
		}
	}
	return iv
}

// helper emits a small function: constant-returning (pure), computing, or
// global-writing.
func (g *gen) helper() {
	name := g.fresh("f")
	kind := g.r.Intn(3)
	f := &minic.FuncDecl{Name: name, Ret: minic.Int32}
	switch kind {
	case 0: // pure constant return
		f.Body = &minic.Block{Stmts: []minic.Stmt{
			&minic.ReturnStmt{X: &minic.IntLit{Value: int64(g.r.Intn(5)), Typ: minic.Int32}},
		}}
	case 1: // parameterised computation
		f.Params = []*minic.Param{{Name: "x", Type: minic.Int32}}
		f.Body = &minic.Block{Stmts: []minic.Stmt{
			&minic.ReturnStmt{X: &minic.BinaryExpr{Op: minic.Add,
				X: &minic.VarRef{Name: "x"},
				Y: &minic.IntLit{Value: int64(1 + g.r.Intn(4)), Typ: minic.Int32}}},
		}}
	default: // writes a global and returns it
		if len(g.globals) == 0 {
			f.Body = &minic.Block{Stmts: []minic.Stmt{
				&minic.ReturnStmt{X: &minic.IntLit{Value: 0, Typ: minic.Int32}},
			}}
			break
		}
		gv := g.globals[g.r.Intn(len(g.globals))]
		f.Body = &minic.Block{Stmts: []minic.Stmt{
			&minic.AssignStmt{LHS: &minic.VarRef{Name: gv.name},
				RHS: &minic.IntLit{Value: int64(g.r.Intn(7)), Typ: minic.Int32}},
			&minic.ReturnStmt{X: &minic.VarRef{Name: gv.name}},
		}}
	}
	g.prog.Funcs = append(g.prog.Funcs, f)
	g.helpers = append(g.helpers, f)
}

func (g *gen) mainFunc() {
	g.locals = nil
	main := &minic.FuncDecl{Name: "main", Ret: minic.Int32}
	body := &minic.Block{}
	// Declarations first: a handful of scalars with varied initialisers.
	nd := 2 + g.r.Intn(4)
	ds := &minic.DeclStmt{}
	for i := 0; i < nd; i++ {
		name := g.fresh("v")
		t := g.scalarType()
		vd := &minic.VarDecl{Name: name, Type: t}
		switch g.r.Intn(3) {
		case 0:
			vd.Init = &minic.IntLit{Value: int64(g.r.Intn(10)), Typ: minic.Int32}
		case 1:
			if e := g.readExpr(0); e != nil {
				vd.Init = e
			}
		}
		ds.Vars = append(ds.Vars, vd)
		g.locals = append(g.locals, scalarVar{name: name, typ: t})
	}
	body.Stmts = append(body.Stmts, ds)
	// The paper's §1 constant-fold bait: a constant local (assigned only a
	// literal) flowing into a global store through a foldable expression.
	if g.o.ConstFoldBait {
		name := g.fresh("z")
		body.Stmts = append(body.Stmts, &minic.DeclStmt{Vars: []*minic.VarDecl{{
			Name: name, Type: minic.Int32, Init: &minic.IntLit{Value: int64(g.r.Intn(3)), Typ: minic.Int32},
		}}})
		g.consts = append(g.consts, name)
		// Readable (e.g. as an opaque-call argument) but never reassigned,
		// so it stays in the conjectures' "constant variable" class.
		g.locals = append(g.locals, scalarVar{name: name, typ: minic.Int32, iv: true})
		if tgt := g.anyGlobalScalar(); tgt != "" {
			body.Stmts = append(body.Stmts, &minic.AssignStmt{
				LHS: &minic.VarRef{Name: tgt},
				RHS: &minic.BinaryExpr{Op: minic.Add,
					X: &minic.VarRef{Name: name},
					Y: g.readExprOr(&minic.IntLit{Value: 1, Typ: minic.Int32})},
			})
		}
	}
	// Pointer pattern: p = &local; *p = ...
	if g.o.Pointers && len(g.locals) > 0 {
		tgt := g.locals[g.r.Intn(len(g.locals))]
		if it, ok := tgt.typ.(*minic.IntType); ok {
			pname := g.fresh("p")
			body.Stmts = append(body.Stmts, &minic.DeclStmt{Vars: []*minic.VarDecl{{
				Name: pname, Type: &minic.PointerType{Elem: it},
				Init: &minic.UnaryExpr{Op: minic.Addr, X: &minic.VarRef{Name: tgt.name}},
			}}})
			body.Stmts = append(body.Stmts, &minic.AssignStmt{
				LHS: &minic.UnaryExpr{Op: minic.Deref, X: &minic.VarRef{Name: pname}},
				RHS: &minic.IntLit{Value: int64(g.r.Intn(9)), Typ: minic.Int32},
			})
		}
	}
	// Goto loop on a zero global (terminates immediately), paper §3.4 style.
	if g.o.Gotos && len(g.globals) > 0 {
		gv := g.globals[0]
		lbl := fmt.Sprintf("l%d", g.labelN)
		g.labelN++
		body.Stmts = append(body.Stmts, &minic.LabeledStmt{Label: lbl,
			Stmt: &minic.IfStmt{
				Cond: &minic.BinaryExpr{Op: minic.Lt,
					X: &minic.VarRef{Name: gv.name},
					Y: &minic.IntLit{Value: 0, Typ: minic.Int32}},
				Then: &minic.Block{Stmts: []minic.Stmt{&minic.GotoStmt{Label: lbl}}},
			}})
	}
	// Main statement soup.
	g.stmts(body, 0)
	// Final opaque call exposing several locals (Conjecture 1 bait).
	if len(g.opaques) > 0 && len(g.locals) >= 3 {
		f := g.opaques[len(g.opaques)-1]
		call := &minic.CallExpr{Name: f.Name}
		perm := g.r.Perm(len(g.locals))
		for i := 0; i < len(f.Params) && i < len(perm); i++ {
			call.Args = append(call.Args, &minic.VarRef{Name: g.locals[perm[i]].name})
		}
		for len(call.Args) < len(f.Params) {
			call.Args = append(call.Args, &minic.IntLit{Value: 0, Typ: minic.Int32})
		}
		body.Stmts = append(body.Stmts, &minic.ExprStmt{X: call})
	}
	body.Stmts = append(body.Stmts, &minic.ReturnStmt{X: &minic.IntLit{Value: 0, Typ: minic.Int32}})
	main.Body = body
	g.prog.Funcs = append(g.prog.Funcs, main)
}

// stmts fills a block with random statements.
func (g *gen) stmts(b *minic.Block, depth int) {
	n := 1 + g.r.Intn(g.o.MaxStmts)
	for i := 0; i < n; i++ {
		if s := g.stmt(depth); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
}

func (g *gen) stmt(depth int) minic.Stmt {
	roll := g.r.Intn(10)
	switch {
	case roll < 3 && g.loopNest < g.o.MaxLoopNest:
		return g.forLoop(depth)
	case roll < 5:
		return g.assignment()
	case roll == 5 && depth < g.o.MaxDepth:
		return g.ifStmt(depth)
	case roll == 6 && len(g.opaques) > 0:
		return g.opaqueCall()
	case roll == 7 && len(g.helpers) > 0:
		return g.helperCall()
	case roll == 8 && g.o.NestedScopes && depth < g.o.MaxDepth:
		blk := &minic.Block{}
		name := g.fresh("s")
		blk.Stmts = append(blk.Stmts, &minic.DeclStmt{Vars: []*minic.VarDecl{{
			Name: name, Type: minic.Int32, Init: &minic.IntLit{Value: int64(g.r.Intn(6)), Typ: minic.Int32},
		}}})
		inner := g.assignmentTo(name)
		if inner != nil {
			blk.Stmts = append(blk.Stmts, inner)
		}
		if st := g.globalStoreUsing(name); st != nil {
			blk.Stmts = append(blk.Stmts, st)
		}
		return blk
	default:
		return g.assignment()
	}
}

// forLoop builds a counted loop; its body may index global arrays with the
// induction variable (the Conjecture 2 / LSR surface).
func (g *gen) forLoop(depth int) minic.Stmt {
	iv := g.fresh("i")
	bound := 1 + g.r.Intn(g.o.MaxLoopBound)
	savedLocals := len(g.locals)
	g.locals = append(g.locals, scalarVar{name: iv, typ: minic.Int32, iv: true})
	g.loopIVs = append(g.loopIVs, iv)
	g.loopNest++
	body := &minic.Block{}
	// Array traffic indexed by the IV.
	if len(g.garrs) > 0 {
		arr := g.garrs[g.r.Intn(len(g.garrs))]
		var idx minic.Expr = &minic.VarRef{Name: iv}
		switch {
		case g.o.IndexArith && arr.dims[0] >= bound:
			// In-range scaled access arr[i * k] — the loop-strength-
			// reduction surface of the paper's Conjecture 2 examples.
			k := (arr.dims[0] - 1) / maxInt(bound-1, 1)
			if k < 1 {
				k = 1
			}
			if k > 1 {
				idx = &minic.BinaryExpr{Op: minic.Mul, X: idx,
					Y: &minic.IntLit{Value: int64(k), Typ: minic.Int32}}
			}
		case g.o.IndexArith && g.r.Intn(2) == 0:
			k := int64(1)
			if arr.dims[0] > 1 {
				k = int64(g.r.Intn(arr.dims[0]-1) + 1)
			}
			idx = &minic.BinaryExpr{Op: minic.Mul, X: idx,
				Y: &minic.IntLit{Value: k, Typ: minic.Int32}}
			idx = &minic.BinaryExpr{Op: minic.Rem, X: idx,
				Y: &minic.IntLit{Value: int64(arr.dims[0]), Typ: minic.Int32}}
		default:
			idx = &minic.BinaryExpr{Op: minic.Rem, X: idx,
				Y: &minic.IntLit{Value: int64(arr.dims[0]), Typ: minic.Int32}}
		}
		var access minic.Expr = &minic.IndexExpr{Base: &minic.VarRef{Name: arr.name}, Index: idx}
		for d := 1; d < len(arr.dims); d++ {
			inner := g.r.Intn(arr.dims[d])
			access = &minic.IndexExpr{Base: access,
				Index: &minic.IntLit{Value: int64(inner), Typ: minic.Int32}}
		}
		if tgt := g.anyGlobalScalar(); tgt != "" && g.r.Intn(2) == 0 {
			body.Stmts = append(body.Stmts, &minic.AssignStmt{
				LHS: &minic.VarRef{Name: tgt}, RHS: access})
		} else {
			body.Stmts = append(body.Stmts, &minic.AssignStmt{
				LHS: access, RHS: g.readExprOr(&minic.VarRef{Name: iv})})
		}
	}
	g.stmts(body, depth+1)
	g.loopNest--
	g.loopIVs = g.loopIVs[:len(g.loopIVs)-1]
	// The induction variable's scope ends with the loop.
	g.locals = g.locals[:savedLocals]
	return &minic.ForStmt{
		Init: &minic.DeclStmt{Vars: []*minic.VarDecl{{Name: iv, Type: minic.Int32,
			Init: &minic.IntLit{Value: 0, Typ: minic.Int32}}}},
		Cond: &minic.BinaryExpr{Op: minic.Lt, X: &minic.VarRef{Name: iv},
			Y: &minic.IntLit{Value: int64(bound), Typ: minic.Int32}},
		Post: &minic.AssignStmt{LHS: &minic.VarRef{Name: iv},
			RHS: &minic.BinaryExpr{Op: minic.Add, X: &minic.VarRef{Name: iv},
				Y: &minic.IntLit{Value: 1, Typ: minic.Int32}}},
		Body: body,
	}
}

func (g *gen) ifStmt(depth int) minic.Stmt {
	cond := g.readExpr(0)
	if cond == nil {
		cond = &minic.IntLit{Value: 1, Typ: minic.Int32}
	}
	if g.o.ShortCircuit && g.r.Intn(2) == 0 {
		if rhs := g.readExpr(0); rhs != nil {
			op := minic.LogAnd
			if g.r.Intn(2) == 0 {
				op = minic.LogOr
			}
			cond = &minic.BinaryExpr{Op: op, X: cond, Y: rhs}
		}
	}
	then := &minic.Block{}
	g.stmts(then, depth+1)
	is := &minic.IfStmt{Cond: cond, Then: then}
	if g.r.Intn(2) == 0 {
		is.Else = &minic.Block{}
		g.stmts(is.Else, depth+1)
	}
	return is
}

func (g *gen) opaqueCall() minic.Stmt {
	f := g.opaques[g.r.Intn(len(g.opaques))]
	call := &minic.CallExpr{Name: f.Name}
	for range f.Params {
		if len(g.locals) > 0 && g.r.Intn(4) != 0 {
			call.Args = append(call.Args, &minic.VarRef{Name: g.locals[g.r.Intn(len(g.locals))].name})
		} else {
			call.Args = append(call.Args, &minic.IntLit{Value: int64(g.r.Intn(9)), Typ: minic.Int32})
		}
	}
	return &minic.ExprStmt{X: call}
}

func (g *gen) helperCall() minic.Stmt {
	f := g.helpers[g.r.Intn(len(g.helpers))]
	call := &minic.CallExpr{Name: f.Name}
	for range f.Params {
		call.Args = append(call.Args, g.readExprOr(&minic.IntLit{Value: 1, Typ: minic.Int32}))
	}
	if tgt := g.writableLocal(); tgt != "" {
		return &minic.AssignStmt{LHS: &minic.VarRef{Name: tgt}, RHS: call}
	}
	return &minic.ExprStmt{X: call}
}

// assignment produces a local or global store, possibly with an embedded
// assignment expression (the Conjecture 1 running-example shape).
func (g *gen) assignment() minic.Stmt {
	if g.r.Intn(3) == 0 {
		if tgt := g.anyGlobalScalar(); tgt != "" {
			return &minic.AssignStmt{LHS: &minic.VarRef{Name: tgt}, RHS: g.expr(0)}
		}
	}
	if tgt := g.writableLocal(); tgt != "" {
		return g.assignmentTo(tgt)
	}
	return nil
}

func (g *gen) assignmentTo(tgt string) minic.Stmt {
	rhs := g.expr(0)
	if g.o.AssignExprs && g.r.Intn(3) == 0 {
		// (v = src) == 0 & other
		if inner := g.writableLocalNot(tgt); inner != "" {
			src := g.readExprOr(&minic.IntLit{Value: 0, Typ: minic.Int32})
			rhs = &minic.BinaryExpr{Op: minic.And,
				X: &minic.BinaryExpr{Op: minic.Eq,
					X: &minic.AssignExpr{LHS: &minic.VarRef{Name: inner}, RHS: src},
					Y: &minic.IntLit{Value: 0, Typ: minic.Int32}},
				Y: g.readExprOr(&minic.IntLit{Value: 1, Typ: minic.Int32}),
			}
		}
	}
	return &minic.AssignStmt{LHS: &minic.VarRef{Name: tgt}, RHS: rhs}
}

// globalStoreUsing emits a store of a non-simplifiable expression over the
// named variable into a global (Conjecture 2 bait), sometimes multiplied by
// a constant-zero local (the paper's §1 fold bait).
func (g *gen) globalStoreUsing(name string) minic.Stmt {
	tgt := g.anyGlobalScalar()
	if tgt == "" {
		return nil
	}
	var rhs minic.Expr = &minic.VarRef{Name: name}
	if g.o.ConstFoldBait && g.r.Intn(2) == 0 {
		rhs = &minic.BinaryExpr{Op: minic.Add, X: rhs,
			Y: &minic.BinaryExpr{Op: minic.Mul,
				X: g.readExprOr(&minic.IntLit{Value: 1, Typ: minic.Int32}),
				Y: &minic.VarRef{Name: name}}}
	}
	return &minic.AssignStmt{LHS: &minic.VarRef{Name: tgt}, RHS: rhs}
}

func (g *gen) anyGlobalScalar() string {
	if len(g.globals) == 0 {
		return ""
	}
	return g.globals[g.r.Intn(len(g.globals))].name
}

func (g *gen) writableLocal() string {
	var cands []string
	for _, v := range g.locals {
		if !v.iv {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[g.r.Intn(len(cands))]
}

func (g *gen) writableLocalNot(not string) string {
	var cands []string
	for _, v := range g.locals {
		if !v.iv && v.name != not {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[g.r.Intn(len(cands))]
}

// readExpr returns a random readable atom (local, global, literal), or nil.
func (g *gen) readExpr(depth int) minic.Expr {
	switch g.r.Intn(3) {
	case 0:
		if len(g.locals) > 0 {
			return &minic.VarRef{Name: g.locals[g.r.Intn(len(g.locals))].name}
		}
	case 1:
		if len(g.globals) > 0 {
			return &minic.VarRef{Name: g.globals[g.r.Intn(len(g.globals))].name}
		}
	}
	return &minic.IntLit{Value: int64(g.r.Intn(16)), Typ: minic.Int32}
}

func (g *gen) readExprOr(fallback minic.Expr) minic.Expr {
	if e := g.readExpr(0); e != nil {
		return e
	}
	return fallback
}

// expr builds a random expression of bounded depth. Division and shifts use
// literal right operands to keep values tame (semantics are defined either
// way).
func (g *gen) expr(depth int) minic.Expr {
	if depth >= g.o.MaxExprDepth || g.r.Intn(3) == 0 {
		return g.readExprOr(&minic.IntLit{Value: int64(g.r.Intn(9)), Typ: minic.Int32})
	}
	ops := []minic.BinOp{minic.Add, minic.Sub, minic.Mul, minic.And, minic.Or,
		minic.Xor, minic.Eq, minic.Ne, minic.Lt, minic.Gt}
	op := ops[g.r.Intn(len(ops))]
	x := g.expr(depth + 1)
	y := g.expr(depth + 1)
	if g.r.Intn(4) == 0 {
		op = minic.Shl
		y = &minic.IntLit{Value: int64(g.r.Intn(4)), Typ: minic.Int32}
	}
	return &minic.BinaryExpr{Op: op, X: x, Y: y}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
