package fuzzgen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := minic.Render(GenerateSeed(seed))
		b := minic.Render(GenerateSeed(seed))
		if a != b {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
}

func TestGeneratedProgramsCheckAndRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		prog := GenerateSeed(seed)
		src := minic.Render(prog)
		re, err := minic.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, src)
		}
		minic.AssignLines(re)
		if err := minic.Check(re); err != nil {
			t.Fatalf("seed %d: recheck: %v\n%s", seed, err, src)
		}
		if minic.Render(re) != src {
			t.Fatalf("seed %d: render not stable", seed)
		}
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		prog := GenerateSeed(seed)
		m, err := ir.Lower(prog)
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		if err := ir.Verify(m); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		if _, err := ir.Interp(m, 500_000); err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, minic.Render(prog))
		}
	}
}

func TestOptionVariety(t *testing.T) {
	// Across many seeds the option assortments must vary and exercise the
	// main features at least sometimes.
	sawVolatile, sawOpaque, sawArrays, sawPointers, sawGoto := false, false, false, false, false
	for seed := int64(0); seed < 60; seed++ {
		prog := GenerateSeed(seed)
		for _, g := range prog.Globals {
			if g.Volatile {
				sawVolatile = true
			}
			if minic.IsArray(g.Type) {
				sawArrays = true
			}
		}
		for _, f := range prog.Funcs {
			if f.Opaque {
				sawOpaque = true
			}
		}
		src := minic.Render(prog)
		if containsStr(src, "goto") {
			sawGoto = true
		}
		if containsStr(src, "*p") || containsStr(src, "int* p") {
			sawPointers = true
		}
	}
	for name, saw := range map[string]bool{
		"volatile": sawVolatile, "opaque": sawOpaque, "arrays": sawArrays,
		"pointers": sawPointers, "goto": sawGoto,
	} {
		if !saw {
			t.Errorf("feature %s never generated across 60 seeds", name)
		}
	}
}

// TestFeatureTablesInSync pins the three hand-maintained feature tables
// (FeatureNames, Options.Features, setFeature) to each other: every
// canonical name must appear in the Features map, and a weight of 1 / 0
// must actually flip that knob on / off through WeightedOptions.
func TestFeatureTablesInSync(t *testing.T) {
	names := FeatureNames()
	feats := DefaultOptions(1).Features()
	if len(names) != len(feats) {
		t.Errorf("FeatureNames has %d entries, Features map has %d", len(names), len(feats))
	}
	for _, name := range names {
		if _, ok := feats[name]; !ok {
			t.Errorf("feature %q missing from Options.Features", name)
		}
		for seed := int64(1); seed <= 3; seed++ {
			if got := WeightedOptions(seed, map[string]float64{name: 1}).Features()[name]; !got {
				t.Errorf("weight 1 did not enable %q (seed %d)", name, seed)
			}
			if got := WeightedOptions(seed, map[string]float64{name: 0}).Features()[name]; got {
				t.Errorf("weight 0 did not disable %q (seed %d)", name, seed)
			}
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
