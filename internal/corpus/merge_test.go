package corpus

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randCorpus builds a randomized hunt corpus: a shard identity, local
// counters, feature stats, and a handful of buckets drawn from a small
// signature pool (so distinct corpora overlap), mixing v1-style
// schedule-less and v2-style schedule-bearing signatures.
func randCorpus(rng *rand.Rand) *Corpus {
	c := New()
	c.Seed0 = int64(1 + rng.Intn(3)*100)
	c.ShardCount = 1 + rng.Intn(4)
	c.ShardIndex = rng.Intn(c.ShardCount)
	c.Programs = rng.Intn(200)
	c.NextSeed = c.Seed0 + int64(rng.Intn(100))
	c.Dups = rng.Intn(50)
	for _, name := range []string{"loops", "calls", "globals"} {
		if rng.Intn(2) == 0 {
			c.features[name] = &FeatureStat{
				OnTrials: rng.Intn(40), OnNew: rng.Intn(5),
				OffTrials: rng.Intn(40), OffNew: rng.Intn(5),
			}
		}
	}
	culprits := []string{"lsr", "gvn", "inline:40"}
	schedules := []string{"", "lsr", "mem2reg,lsr"}
	for i, n := 0, rng.Intn(6); i < n; i++ {
		culprit := culprits[rng.Intn(len(culprits))]
		sched := schedules[rng.Intn(len(schedules))]
		conj := 1 + rng.Intn(3)
		sig := fmt.Sprintf("C%d|%s|opaque-arg:optimized-out", conj, culprit)
		if sched != "" {
			sig += "|" + sched
		}
		if _, ok := c.buckets[Signature(sig)]; ok {
			continue
		}
		b := &Bucket{
			Sig: Signature(sig), Conjecture: conj, Culprit: culprit,
			Shape: "opaque-arg:optimized-out", Schedule: sched,
			Seed: c.Seed0 + int64(rng.Intn(40)), Config: "gc trunk O2",
			Family: "gc", Version: "trunk", Level: "O2",
			Var: "x", Line: 1 + rng.Intn(9),
			Exemplar:      fmt.Sprintf("int main() { return %d; }", rng.Intn(5)),
			ExemplarLines: 1 + rng.Intn(4),
			Minimized:     rng.Intn(2) == 0,
			Count:         1 + rng.Intn(9),
			FoundAfter:    1 + rng.Intn(150),
		}
		if err := c.Add(b); err != nil {
			panic(err)
		}
	}
	return c
}

// encodeString is the canonical-bytes view a merge fold is compared by.
func encodeString(t *testing.T, c *Corpus) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// foldFresh merges the given corpora, in order, into a fresh empty
// aggregator and returns its canonical encoding. Using a fresh
// aggregator keeps the destination's own local counters out of the
// comparison — commutativity is a property of the merged-IN state.
func foldFresh(t *testing.T, cs ...*Corpus) string {
	t.Helper()
	agg := New()
	for _, c := range cs {
		if _, err := agg.Merge(c); err != nil {
			t.Fatal(err)
		}
	}
	return encodeString(t, agg)
}

func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		a, b := randCorpus(rng), randCorpus(rng)
		ab, ba := foldFresh(t, a, b), foldFresh(t, b, a)
		if ab != ba {
			t.Fatalf("trial %d: merge not commutative:\nA,B:\n%s\nB,A:\n%s", trial, ab, ba)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randCorpus(rng), randCorpus(rng), randCorpus(rng)
		// (A ∪ B) ∪ C: fold A and B into one aggregator, then fold that
		// aggregate and C into a second — versus A ∪ (B ∪ C).
		ab := New()
		for _, s := range []*Corpus{a, b} {
			if _, err := ab.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
		bc := New()
		for _, s := range []*Corpus{b, c} {
			if _, err := bc.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
		left, right := foldFresh(t, ab, c), foldFresh(t, a, bc)
		if left != right {
			t.Fatalf("trial %d: merge not associative:\n(AB)C:\n%s\nA(BC):\n%s", trial, left, right)
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		a, b := randCorpus(rng), randCorpus(rng)
		once, twice := foldFresh(t, a, b), foldFresh(t, a, b, a, b, b)
		if once != twice {
			t.Fatalf("trial %d: merge not idempotent:\nonce:\n%s\ntwice:\n%s", trial, once, twice)
		}
	}
}

// TestMergeSumsDisjointCounts pins the per-origin ledger semantics:
// counts from DISTINCT origins sum, re-merges of the SAME origin don't.
func TestMergeSumsDisjointCounts(t *testing.T) {
	mk := func(idx int, count, programs int) *Corpus {
		c := New()
		c.Seed0, c.ShardIndex, c.ShardCount = 1, idx, 4
		c.Programs = programs
		if err := c.Add(&Bucket{Sig: "C1|lsr|opaque-arg:optimized-out",
			Conjecture: 1, Culprit: "lsr", Shape: "opaque-arg:optimized-out",
			Seed: int64(1 + idx), Count: count, FoundAfter: 1}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	agg := New()
	for _, src := range []*Corpus{mk(0, 3, 10), mk(1, 5, 20), mk(0, 3, 10)} {
		if _, err := agg.Merge(src); err != nil {
			t.Fatal(err)
		}
	}
	b, ok := agg.Bucket("C1|lsr|opaque-arg:optimized-out")
	if !ok {
		t.Fatal("bucket lost in merge")
	}
	if b.Count != 8 {
		t.Errorf("disjoint origins must sum (3+5=8), same origin must not double: Count=%d", b.Count)
	}
	if b.Seed != 1 {
		t.Errorf("earliest exemplar must win: Seed=%d", b.Seed)
	}
	if got := agg.TotalPrograms(); got != 30 {
		t.Errorf("TotalPrograms = %d, want 30 (10+20, re-merge not double-counted)", got)
	}
	if agg.Programs != 0 {
		t.Errorf("merge must not touch the aggregator's own Programs counter: %d", agg.Programs)
	}
}

// TestMergeKeepsV1V2Distinct pins the no-conflation rule: a v1-style
// schedule-less signature and a schedule-bearing signature of the same
// culprit/shape are distinct bugs and stay distinct buckets.
func TestMergeKeepsV1V2Distinct(t *testing.T) {
	v1 := New()
	if err := v1.Add(&Bucket{Sig: "C1|lsr|opaque-arg:optimized-out",
		Conjecture: 1, Culprit: "lsr", Count: 2, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	v2 := New()
	if err := v2.Add(&Bucket{Sig: "C1|lsr|opaque-arg:optimized-out|mem2reg,lsr",
		Conjecture: 1, Culprit: "lsr", Schedule: "mem2reg,lsr", Count: 3, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	agg := New()
	for _, src := range []*Corpus{v1, v2} {
		if _, err := agg.Merge(src); err != nil {
			t.Fatal(err)
		}
	}
	if agg.Len() != 2 {
		t.Fatalf("schedule-less and schedule-bearing buckets conflated: %d buckets", agg.Len())
	}
	schedLess, _ := agg.Bucket("C1|lsr|opaque-arg:optimized-out")
	sched, _ := agg.Bucket("C1|lsr|opaque-arg:optimized-out|mem2reg,lsr")
	if schedLess == nil || sched == nil || schedLess.Count != 2 || sched.Count != 3 {
		t.Errorf("per-signature counts mixed: %+v / %+v", schedLess, sched)
	}
}

// TestMergeMixedVersionStores folds a decoded v1 store and a decoded v2
// store and checks both survive with their version-appropriate
// signatures, exercising the legacy anonymous-origin path.
func TestMergeMixedVersionStores(t *testing.T) {
	v1Store := `{"kind":"hunt-corpus","version":1,"programs":4,"next_seed":9,"dups":1,"features":{}}
{"kind":"bucket","sig":"C1|lsr|opaque-arg:optimized-out","conjecture":1,"culprit":"lsr","shape":"opaque-arg:optimized-out","seed":3,"config":"gc trunk O2","family":"gc","version":"trunk","level":"O2","var":"x","line":2,"exemplar":"int main() { return 0; }","exemplar_lines":1,"minimized":true,"count":2,"found_after":3}
`
	v2Store := `{"kind":"hunt-corpus","version":2,"programs":6,"next_seed":11,"dups":0,"features":{}}
{"kind":"bucket","sig":"C1|lsr|opaque-arg:optimized-out|lsr","conjecture":1,"culprit":"lsr","shape":"opaque-arg:optimized-out","schedule":"lsr","seed":5,"config":"gc trunk O2","family":"gc","version":"trunk","level":"O2","var":"x","line":2,"exemplar":"int main() { return 1; }","exemplar_lines":1,"minimized":true,"count":1,"found_after":5}
`
	c1, err := Decode(strings.NewReader(v1Store))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Decode(strings.NewReader(v2Store))
	if err != nil {
		t.Fatal(err)
	}
	if foldFresh(t, c1, c2) != foldFresh(t, c2, c1) {
		t.Error("mixed v1/v2 merge not commutative")
	}
	agg := New()
	for _, src := range []*Corpus{c1, c2} {
		if _, err := agg.Merge(src); err != nil {
			t.Fatal(err)
		}
	}
	if agg.Len() != 2 {
		t.Fatalf("v1 and v2 buckets conflated: %d buckets", agg.Len())
	}
	// Both legacy stores are anonymous (origin key ""): their counters
	// fold by maximum, the conservative choice for unknown provenance.
	if got := agg.TotalPrograms(); got != 6 {
		t.Errorf("anonymous origins must fold by max: TotalPrograms=%d, want 6", got)
	}
}

// TestMergeRejectsFutureVersion: a corpus whose store claims a version
// this code does not know may carry merge-relevant state it cannot see.
func TestMergeRejectsFutureVersion(t *testing.T) {
	future := New()
	future.version = storeVersion + 1
	if _, err := New().Merge(future); err == nil {
		t.Error("merge must reject a future-version source")
	}
	if _, err := future.Merge(New()); err == nil {
		t.Error("merge must reject a future-version target")
	}
}

// TestMergeCanonicalOrder: after a merge the encoded bucket order is
// canonical signature order, whatever order snapshots arrived in.
func TestMergeCanonicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 50; trial++ {
		cs := []*Corpus{randCorpus(rng), randCorpus(rng), randCorpus(rng)}
		agg := New()
		for _, c := range cs {
			if _, err := agg.Merge(c); err != nil {
				t.Fatal(err)
			}
		}
		var prev Signature
		for i, b := range agg.Buckets() {
			if i > 0 && !(prev < b.Sig) {
				t.Fatalf("trial %d: merged bucket order not canonical: %q after %q", trial, b.Sig, prev)
			}
			prev = b.Sig
		}
	}
}

// TestMergedCorpusRoundTrips: a merged corpus (origin ledgers and all)
// must survive Encode/Decode and keep merging identically afterwards.
func TestMergedCorpusRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 50; trial++ {
		a, b, c := randCorpus(rng), randCorpus(rng), randCorpus(rng)
		agg := New()
		for _, s := range []*Corpus{a, b} {
			if _, err := agg.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
		enc := encodeString(t, agg)
		back, err := Decode(strings.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeString(t, back); got != enc {
			t.Fatalf("trial %d: merged corpus not a round-trip fixpoint:\n%s\nvs\n%s", trial, enc, got)
		}
		if foldFresh(t, agg, c) != foldFresh(t, back, c) {
			t.Fatalf("trial %d: decoded merged corpus merges differently", trial)
		}
	}
}
