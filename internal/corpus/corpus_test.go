package corpus

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/conjecture"
	"repro/internal/debugger"
)

func TestSignatureIgnoresProgramIdentifiers(t *testing.T) {
	a := conjecture.Violation{Conjecture: 1, Line: 10, Func: "main", Var: "v3",
		State: debugger.OptimizedOut, Detail: "argument to opaque opaque3"}
	b := conjecture.Violation{Conjecture: 1, Line: 99, Func: "main", Var: "v7",
		State: debugger.OptimizedOut, Detail: "argument to opaque opaque3"}
	if SignatureOf(a, "lsr", "") != SignatureOf(b, "lsr", "") {
		t.Errorf("same-shape violations bucketed apart: %q vs %q",
			SignatureOf(a, "lsr", ""), SignatureOf(b, "lsr", ""))
	}
	if SignatureOf(a, "lsr", "") == SignatureOf(a, "constprop", "") {
		t.Error("culprit not part of the signature")
	}
	c := a
	c.State = debugger.NotVisible
	if SignatureOf(a, "lsr", "") == SignatureOf(c, "lsr", "") {
		t.Error("presentation state not part of the signature")
	}
	if SignatureOf(a, "", "") != SignatureOf(a, "untriaged", "") {
		t.Error("empty culprit must normalize to untriaged")
	}
}

// TestSignatureScheduleComponent pins the v2 signature grammar: an empty
// schedule keeps the v1 three-part form byte for byte, while distinct
// minimal schedules split otherwise-identical signatures — the
// interaction-bug distinction v1 conflated.
func TestSignatureScheduleComponent(t *testing.T) {
	a := conjecture.Violation{Conjecture: 1, Line: 10, Func: "main", Var: "v3",
		State: debugger.OptimizedOut, Detail: "argument to opaque opaque3"}
	if got := SignatureOf(a, "lsr", ""); got != "C1|lsr|opaque-arg:optimized-out" {
		t.Errorf("schedule-less signature changed: %q", got)
	}
	if got := SignatureOf(a, "lsr", "mem2reg,lsr"); got != "C1|lsr|opaque-arg:optimized-out|mem2reg,lsr" {
		t.Errorf("v2 signature = %q", got)
	}
	if SignatureOf(a, "lsr", "mem2reg,lsr") == SignatureOf(a, "lsr", "mem2reg,inline:40,lsr") {
		t.Error("minimal schedule not part of the signature")
	}
}

func TestShapeClassifiesC2Constituents(t *testing.T) {
	con := conjecture.Violation{Conjecture: 2, State: debugger.OptimizedOut,
		Detail: "constant constituent of store to g2"}
	live := conjecture.Violation{Conjecture: 2, State: debugger.OptimizedOut,
		Detail: "unalterable live constituent of store to g2"}
	if Shape(con) == Shape(live) {
		t.Error("constant and live constituents must shape differently")
	}
}

func testCorpus() *Corpus {
	c := New()
	c.NextSeed = 42
	c.Programs = 7
	c.Dups = 3
	c.Add(&Bucket{Sig: "C1|lsr|opaque-arg:optimized-out", Conjecture: 1,
		Culprit: "lsr", Shape: "opaque-arg:optimized-out", Seed: 5,
		Config: "gc-trunk-O2", Var: "v1", Line: 9, Exemplar: "int main(void) {\n}\n",
		ExemplarLines: 2, Minimized: true, Count: 4, FoundAfter: 5})
	c.Add(&Bucket{Sig: "C3|constprop|availability-regrew:available", Conjecture: 3,
		Culprit: "constprop", Shape: "availability-regrew:available", Seed: 6,
		Config: "gc-trunk-O3", Var: "v2", Line: 3, Exemplar: "int g;\n",
		ExemplarLines: 1, Count: 1, FoundAfter: 6})
	c.RecordProgram(map[string]bool{"volatile": true, "gotos": false}, true)
	c.RecordProgram(map[string]bool{"volatile": false, "gotos": false}, false)
	return c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := testCorpus()
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", buf.String(), buf2.String())
	}
	if got.Len() != 2 || got.NextSeed != 42 || got.Programs != 7 || got.Dups != 3 {
		t.Errorf("state lost: %+v", got)
	}
	if b, ok := got.Bucket("C1|lsr|opaque-arg:optimized-out"); !ok || b.Count != 4 || !b.Minimized {
		t.Errorf("bucket lost: %+v ok=%v", b, ok)
	}
	if got.Violations() != 5 {
		t.Errorf("violations = %d, want 5", got.Violations())
	}
}

func TestSaveLoad(t *testing.T) {
	c := testCorpus()
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	c.Encode(&a)
	got.Encode(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("loaded corpus differs from saved corpus")
	}
	// Overwriting checkpoint (the per-batch path) must succeed too.
	if err := got.Save(path); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsNullFeatureStats(t *testing.T) {
	store := `{"kind":"hunt-corpus","version":1,"programs":1,"next_seed":2,"dups":0,"features":{"volatile":null}}` + "\n"
	if _, err := Decode(bytes.NewReader([]byte(store))); err == nil {
		t.Error("null feature stats must be rejected, not deferred to a Weights panic")
	}
}

func TestAddRejectsDuplicateSignature(t *testing.T) {
	c := New()
	if err := c.Add(&Bucket{Sig: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(&Bucket{Sig: "s"}); err == nil {
		t.Error("duplicate Add must fail")
	}
}

func TestWeightsWarmupAndDirection(t *testing.T) {
	c := New()
	if len(c.Weights()) != 0 {
		t.Error("fresh corpus must emit no weights")
	}
	// Below warmup: still nothing.
	for i := 0; i < weightWarmup-1; i++ {
		c.RecordProgram(map[string]bool{"volatile": i%2 == 0}, i%2 == 0)
	}
	if len(c.Weights()) != 0 {
		t.Error("weights emitted during warmup")
	}
	c.RecordProgram(map[string]bool{"volatile": false}, false)
	w := c.Weights()
	// Every new bucket came from volatile-on programs: the weight must
	// steer on-ward.
	if w["volatile"] <= 0.5 {
		t.Errorf("volatile weight = %v, want > 0.5", w["volatile"])
	}
	if w["volatile"] > 0.9 {
		t.Errorf("volatile weight = %v, beyond clamp", w["volatile"])
	}
}

// TestDecodeMigratesV1Store pins the v1→v2 migration: a version-1 store
// (no schedule fields) loads cleanly, its buckets stay schedule-less with
// their three-part signatures intact, and the next checkpoint writes the
// current version.
func TestDecodeMigratesV1Store(t *testing.T) {
	store := `{"kind":"hunt-corpus","version":1,"programs":4,"next_seed":9,"dups":1,"features":{}}
{"kind":"bucket","sig":"C1|lsr|opaque-arg:optimized-out","conjecture":1,"culprit":"lsr","shape":"opaque-arg:optimized-out","seed":5,"config":"gc-trunk -O2","family":"gc","version":"trunk","level":"O2","var":"v1","line":9,"exemplar":"int main(void) {\n}\n","exemplar_lines":2,"minimized":true,"count":4,"found_after":5}
`
	c, err := Decode(bytes.NewReader([]byte(store)))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := c.Bucket("C1|lsr|opaque-arg:optimized-out")
	if !ok {
		t.Fatal("v1 bucket lost in migration")
	}
	if b.Schedule != "" {
		t.Errorf("v1 bucket gained a schedule: %q", b.Schedule)
	}
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	first, _, _ := bytes.Cut(buf.Bytes(), []byte("\n"))
	if !bytes.Contains(first, []byte(`"version":3`)) {
		t.Errorf("re-encoded header not at current version: %s", first)
	}
	// A v2 store with schedules round-trips too.
	c2 := New()
	if err := c2.Add(&Bucket{Sig: "C1|lsr|opaque-arg:optimized-out|mem2reg,lsr",
		Schedule: "mem2reg,lsr", Conjecture: 1, Culprit: "lsr", Count: 1}); err != nil {
		t.Fatal(err)
	}
	var v2buf bytes.Buffer
	if err := c2.Encode(&v2buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(v2buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if b2, ok := back.Bucket("C1|lsr|opaque-arg:optimized-out|mem2reg,lsr"); !ok || b2.Schedule != "mem2reg,lsr" {
		t.Errorf("v2 schedule lost: %+v ok=%v", b2, ok)
	}
	if _, err := Decode(bytes.NewReader([]byte(`{"kind":"hunt-corpus","version":4}` + "\n"))); err == nil {
		t.Error("future store version must be rejected")
	}
}
