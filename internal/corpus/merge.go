package corpus

// Merge is the associative, commutative, idempotent bucket union that
// distributed hunting rests on: a coordinator repeatedly pulls replica
// corpus snapshots and folds them into one global bug set, and folding
// the same snapshot twice — or snapshots of the same replica at
// different ages, in any order or grouping — must converge to the same
// bytes. The trick is that merged counters are per-origin ledgers keyed
// by hunt identity (seed0 + shard): merging takes the per-origin MAXIMUM
// (snapshots of one replica only ever grow, so the max is the newest
// information), and the displayed totals are the sum across origins (so
// disjoint replicas' counts genuinely add).

import (
	"fmt"
	"sort"
)

// OriginStat is one hunt origin's contribution to a merged corpus: its
// own lifetime program/dup counters, its seed cursor, and its
// feature-yield statistics. Fields only ever grow within one origin, so
// Merge folds snapshots of the same origin by field-wise maximum.
type OriginStat struct {
	Programs int                     `json:"programs"`
	Dups     int                     `json:"dups"`
	NextSeed int64                   `json:"next_seed"`
	Features map[string]*FeatureStat `json:"features,omitempty"`
}

func (o *OriginStat) clone() *OriginStat {
	out := &OriginStat{Programs: o.Programs, Dups: o.Dups, NextSeed: o.NextSeed}
	if o.Features != nil {
		out.Features = map[string]*FeatureStat{}
		for name, st := range o.Features {
			cp := *st
			out.Features[name] = &cp
		}
	}
	return out
}

// maxInto raises dst to the field-wise maximum of dst and src.
func (dst *OriginStat) maxInto(src *OriginStat) {
	if src.Programs > dst.Programs {
		dst.Programs = src.Programs
	}
	if src.Dups > dst.Dups {
		dst.Dups = src.Dups
	}
	if src.NextSeed > dst.NextSeed {
		dst.NextSeed = src.NextSeed
	}
	for name, st := range src.Features {
		d := dst.Features[name]
		if d == nil {
			if dst.Features == nil {
				dst.Features = map[string]*FeatureStat{}
			}
			cp := *st
			dst.Features[name] = &cp
			continue
		}
		if st.OnTrials > d.OnTrials {
			d.OnTrials = st.OnTrials
		}
		if st.OnNew > d.OnNew {
			d.OnNew = st.OnNew
		}
		if st.OffTrials > d.OffTrials {
			d.OffTrials = st.OffTrials
		}
		if st.OffNew > d.OffNew {
			d.OffNew = st.OffNew
		}
	}
}

// selfKey is the corpus's own hunt identity — the origin key its local
// work folds under when merged. Corpora with no recorded identity
// (legacy pre-v3 stores, pure aggregators) fold under the anonymous key
// "": two distinct anonymous corpora merge their counters by maximum
// rather than sum, the conservative choice when provenance is unknown.
func (c *Corpus) selfKey() string {
	if c.ShardCount <= 0 {
		return ""
	}
	return fmt.Sprintf("s%d.%d/%d", c.Seed0, c.ShardIndex, c.ShardCount)
}

// ledger returns the corpus's full per-origin view — its merged-in
// origins plus its own live counters raised into its self entry — as
// fresh copies safe to fold into another corpus.
func (c *Corpus) ledger() map[string]*OriginStat {
	out := map[string]*OriginStat{}
	for key, o := range c.origins {
		out[key] = o.clone()
	}
	if c.Programs > 0 || c.Dups > 0 {
		self := out[c.selfKey()]
		if self == nil {
			self = &OriginStat{}
			out[c.selfKey()] = self
		}
		live := OriginStat{Programs: c.Programs, Dups: c.Dups,
			NextSeed: c.NextSeed, Features: c.features}
		self.maxInto(&live)
	}
	return out
}

// OriginLedger returns the per-origin contribution view of the corpus
// (own live work included), keyed by hunt identity "s<seed0>.<i>/<n>"
// (the anonymous key "" collects work with no recorded identity). The
// returned map and its values are fresh copies.
func (c *Corpus) OriginLedger() map[string]*OriginStat { return c.ledger() }

// TotalPrograms is the number of fuzzed programs consumed across every
// origin the corpus has seen — its own hunting plus everything merged
// in. For a never-merged hunt corpus it equals Programs.
func (c *Corpus) TotalPrograms() int {
	n := 0
	for _, o := range c.ledger() {
		n += o.Programs
	}
	return n
}

// TotalDups is the cross-origin duplicate-violation total (see
// TotalPrograms).
func (c *Corpus) TotalDups() int {
	n := 0
	for _, o := range c.ledger() {
		n += o.Dups
	}
	return n
}

// MergedFeatureStats sums the per-feature yield statistics across every
// origin (own live stats included) — the global view of which fuzzer
// knobs have been paying off fleet-wide. The result is a fresh copy.
func (c *Corpus) MergedFeatureStats() map[string]FeatureStat {
	out := map[string]FeatureStat{}
	for _, o := range c.ledger() {
		for name, st := range o.Features {
			agg := out[name]
			agg.OnTrials += st.OnTrials
			agg.OnNew += st.OnNew
			agg.OffTrials += st.OffTrials
			agg.OffNew += st.OffNew
			out[name] = agg
		}
	}
	return out
}

// MergeStats summarizes one Merge call.
type MergeStats struct {
	// NewBuckets is how many buckets the source contributed that the
	// destination had never seen; MergedBuckets how many existed on both
	// sides and were reconciled.
	NewBuckets    int `json:"new_buckets"`
	MergedBuckets int `json:"merged_buckets"`
}

// bucketLedger is a bucket's per-origin violation counts: its explicit
// Origins map if it has been through a merge, else its whole Count
// attributed to the owning corpus's identity.
func bucketLedger(c *Corpus, b *Bucket) map[string]int {
	out := map[string]int{}
	if b.Origins != nil {
		for key, n := range b.Origins {
			out[key] = n
		}
		return out
	}
	out[c.selfKey()] = b.Count
	return out
}

// betterExemplar reports whether a's provenance should represent a
// merged bucket over b's: minimized exemplars beat unminimized ones,
// then the earliest (lowest-seed) discovery wins, then the smallest
// program, with full tie-breaks so the choice is a total order — the
// winner is the same whatever order corpora merge in. The earliest-seed
// rule also makes N disjoint sharded hunts merge to exactly the
// exemplar one unsharded hunt over the same seeds would have kept.
func betterExemplar(a, b *Bucket) bool {
	if a.Minimized != b.Minimized {
		return a.Minimized
	}
	if a.Seed != b.Seed {
		return a.Seed < b.Seed
	}
	if a.ExemplarLines != b.ExemplarLines {
		return a.ExemplarLines < b.ExemplarLines
	}
	if a.Exemplar != b.Exemplar {
		return a.Exemplar < b.Exemplar
	}
	if a.Config != b.Config {
		return a.Config < b.Config
	}
	return false
}

// Merge unions src into c: buckets are keyed by their full signature —
// so a v1-style schedule-less signature and a schedule-bearing v2
// signature of the same culprit/shape stay distinct buckets, never
// conflated — with per-origin counts folded by maximum and summed into
// Count, the better exemplar (minimized, then earliest, then smallest)
// kept, FoundAfter taken at its minimum and DebuggerSuspect OR-ed.
// Corpus-level counters fold into the per-origin ledger; c's own
// Programs/NextSeed/Dups cursor state is never touched, so a hunting
// replica can absorb global knowledge without moving its shard cursor.
// src is never mutated, and none of its buckets are retained.
//
// After a Merge the corpus serializes in canonical signature order
// regardless of merge arrival order, so any fold of the same snapshots
// is byte-identical. Merge is associative, commutative and idempotent;
// it refuses corpora whose stores report a future version.
func (c *Corpus) Merge(src *Corpus) (MergeStats, error) {
	var st MergeStats
	if c.version > storeVersion {
		return st, fmt.Errorf("corpus: merge target reports future store version %d (supported: %d)", c.version, storeVersion)
	}
	if src.version > storeVersion {
		return st, fmt.Errorf("corpus: refusing to merge corpus with future store version %d (supported: %d)", src.version, storeVersion)
	}
	for _, sig := range src.order {
		sb := src.buckets[sig]
		counts := bucketLedger(src, sb)
		eb, ok := c.buckets[sig]
		if !ok {
			nb := *sb
			nb.Origins = counts
			st.NewBuckets++
			if err := c.Add(&nb); err != nil {
				return st, err
			}
			continue
		}
		st.MergedBuckets++
		own := bucketLedger(c, eb)
		for key, n := range counts {
			if n > own[key] {
				own[key] = n
			}
		}
		if betterExemplar(sb, eb) {
			eb.Seed = sb.Seed
			eb.Config = sb.Config
			eb.Family, eb.Version, eb.Level = sb.Family, sb.Version, sb.Level
			eb.Var, eb.Line = sb.Var, sb.Line
			eb.Exemplar, eb.ExemplarLines = sb.Exemplar, sb.ExemplarLines
			eb.Minimized = sb.Minimized
		}
		eb.Origins = own
		eb.Count = 0
		for _, n := range own {
			eb.Count += n
		}
		if sb.FoundAfter < eb.FoundAfter {
			eb.FoundAfter = sb.FoundAfter
		}
		eb.DebuggerSuspect = eb.DebuggerSuspect || sb.DebuggerSuspect
	}
	// New buckets' Count must also be the ledger sum (for a never-merged
	// source it already is; a merged source's buckets carry it too).
	for _, sig := range c.order {
		if b := c.buckets[sig]; b.Origins != nil {
			n := 0
			for _, v := range b.Origins {
				n += v
			}
			b.Count = n
		}
	}
	if c.origins == nil {
		c.origins = map[string]*OriginStat{}
	}
	for key, o := range src.ledger() {
		if have := c.origins[key]; have != nil {
			have.maxInto(o)
		} else {
			c.origins[key] = o
		}
	}
	// Canonical signature order: the serialization of a merged corpus
	// must not depend on which replica's snapshot arrived first.
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	return st, nil
}
