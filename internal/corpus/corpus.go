// Package corpus is the persistent bug corpus of the hunting loop: every
// conjecture violation an open-ended hunt finds is bucketed by a stable
// signature — (conjecture, culprit pass, violation shape) — and each
// bucket keeps exactly one minimized exemplar program. The corpus also
// carries the hunt's cursor (next fuzzer seed), its duplicate counter,
// and per-feature-knob yield statistics that steer the fuzzer toward
// assortments that recently produced new buckets.
//
// The store is a JSONL file: a single header record (kind "hunt-corpus")
// with the cursor, counters and feature stats, followed by one record per
// bucket (kind "bucket") in discovery order. Serialization is
// deterministic — same corpus state, same bytes — so resumed or
// differently-parallel hunts can be compared byte for byte.
package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/conjecture"
	"repro/internal/store/atomicfile"
)

// Signature identifies a bug bucket: conjecture, culprit pass, the
// violation's shape, and — in v2 stores, when schedule reduction ran —
// the minimal pass schedule that still reproduces it. Violations of the
// same signature are treated as the same underlying compiler (or
// debugger) bug regardless of which fuzzed program, variable or line
// exposed them.
type Signature string

// SignatureOf buckets a violation under its triaged culprit and, when
// non-empty, the canonical string of its minimal reproducing pass
// schedule: "C<conj>|<culprit>|<shape>|<sched>". The schedule component
// splits interaction bugs — two violations with the same culprit and
// shape but different minimal schedules (say "inline:40,lsr" versus
// "lsr") are distinct bugs that v1's three-part signatures conflated. An
// empty culprit (not single-knob controllable, §4.3) buckets as
// "untriaged"; an empty schedule keeps the v1 three-part form, so
// schedule-less hunts and migrated v1 stores bucket exactly as before.
func SignatureOf(v conjecture.Violation, culprit, schedule string) Signature {
	if culprit == "" {
		culprit = "untriaged"
	}
	if schedule == "" {
		return Signature(fmt.Sprintf("C%d|%s|%s", v.Conjecture, culprit, Shape(v)))
	}
	return Signature(fmt.Sprintf("C%d|%s|%s|%s", v.Conjecture, culprit, Shape(v), schedule))
}

// Shape is the program-independent part of a violation: its structural
// class (which kind of program point the conjecture fired on) plus the
// variable's presentation state. Variable names, line numbers and seeds
// are deliberately excluded — they vary per fuzzed program and would
// spread one bug over thousands of buckets.
func Shape(v conjecture.Violation) string {
	class := "unknown"
	switch v.Conjecture {
	case 1:
		class = "opaque-arg"
	case 2:
		if strings.HasPrefix(v.Detail, "constant") {
			class = "constant-constituent"
		} else {
			class = "live-constituent"
		}
	case 3:
		class = "availability-regrew"
	}
	return class + ":" + v.State.String()
}

// Bucket is one unique bug: its signature, the provenance of the first
// violation that opened it, and a minimized exemplar program.
type Bucket struct {
	Sig        Signature `json:"sig"`
	Conjecture int       `json:"conjecture"`
	Culprit    string    `json:"culprit"`
	Shape      string    `json:"shape"`
	// Schedule is the canonical string of the minimal pass schedule that
	// still reproduces the bucket's violation (opt.ParseSchedule inverts
	// it). Empty for buckets from schedule-less hunts and for v1 stores,
	// whose signatures then keep the three-part form. Two or more
	// comma-separated entries mark a pass-interaction bug.
	Schedule string `json:"schedule,omitempty"`
	// Seed, Config, Var and Line are the provenance of the first
	// violation bucketed here: the fuzzer seed that produced the
	// exemplar, the configuration it reproduced under, and where.
	// Family/Version/Level carry the configuration structurally (Config
	// is its display form) so a later hunt can rebuild it — e.g. to
	// minimize an exemplar a NoMinimize run left unreduced.
	Seed    int64  `json:"seed"`
	Config  string `json:"config"`
	Family  string `json:"family"`
	Version string `json:"version"`
	Level   string `json:"level"`
	Var     string `json:"var"`
	Line    int    `json:"line"`
	// Exemplar is the bucket's canonical MiniC source: the original
	// fuzzed program until minimization finishes, the reduced program
	// after (Minimized reports which).
	Exemplar      string `json:"exemplar"`
	ExemplarLines int    `json:"exemplar_lines"`
	Minimized     bool   `json:"minimized"`
	// DebuggerSuspect marks a bucket whose opening violation did not
	// reproduce under the other debugger engine (§4.2 cross-
	// validation): the defect likely sits in the checking debugger, not
	// the compiler.
	DebuggerSuspect bool `json:"debugger_suspect,omitempty"`
	// Count is the total number of violations bucketed here, the first
	// one included. In a merged corpus it is the sum of the per-origin
	// contributions below.
	Count int `json:"count"`
	// Origins carries, for buckets that passed through Merge, each
	// contributing hunt's own violation count keyed by hunt identity
	// (see OriginLedger). Merging takes the per-origin maximum — a
	// re-pulled snapshot of the same replica never double-counts — and
	// recomputes Count as the sum. Nil on buckets a hunt opened locally
	// and never merged.
	Origins map[string]int `json:"origins,omitempty"`
	// FoundAfter is the hunt's lifetime program counter when the bucket
	// was opened (programs fully processed, the discovering one
	// included) — the x-coordinate of the unique-bugs-over-time curve.
	FoundAfter int `json:"found_after"`
}

// FeatureStat is the yield bookkeeping of one fuzzer feature knob:
// how many hunted programs had it on/off, and how many of those opened
// at least one new bucket.
type FeatureStat struct {
	OnTrials  int `json:"on_trials"`
	OnNew     int `json:"on_new"`
	OffTrials int `json:"off_trials"`
	OffNew    int `json:"off_new"`
}

// Corpus is the deduplicated bug store of a hunt. It is not safe for
// concurrent use: the hunting loop mutates it only from its (seed-
// ordered) aggregation goroutine.
type Corpus struct {
	buckets map[Signature]*Bucket
	order   []Signature // discovery order (canonical signature order after a Merge)

	// Programs counts fuzzed programs consumed over the corpus's OWN
	// hunting lifetime; NextSeed is the hunt cursor a resumed hunt
	// continues from; Dups counts violations that landed in an existing
	// bucket. Merge never touches these three — merged-in work is
	// tracked per origin instead (see OriginLedger), so a replica that
	// absorbs global knowledge keeps its own cursor and FoundAfter
	// coordinates.
	Programs int
	NextSeed int64
	Dups     int

	// Seed0, ShardIndex and ShardCount are the hunt identity this corpus
	// was created under: shard i of n hunts the seed residue class
	// Seed0+i, Seed0+i+n, … ShardCount 0 marks a corpus with no recorded
	// identity — a legacy (pre-v3) store, or an aggregator that only ever
	// merges. Unsharded hunts record 0/1.
	Seed0      int64
	ShardIndex int
	ShardCount int

	// version is the store version this corpus was decoded at
	// (storeVersion for fresh corpora). Merge refuses corpora claiming a
	// future version rather than silently unioning fields it cannot see.
	version int

	features map[string]*FeatureStat
	origins  map[string]*OriginStat
}

// New returns an empty corpus.
func New() *Corpus {
	return &Corpus{
		buckets:  map[Signature]*Bucket{},
		features: map[string]*FeatureStat{},
		version:  storeVersion,
	}
}

// Len returns the number of buckets (unique bugs).
func (c *Corpus) Len() int { return len(c.order) }

// Bucket returns the bucket of a signature, if present.
func (c *Corpus) Bucket(sig Signature) (*Bucket, bool) {
	b, ok := c.buckets[sig]
	return b, ok
}

// Buckets returns every bucket in discovery order. The slice is fresh;
// the bucket pointers are the corpus's own.
func (c *Corpus) Buckets() []*Bucket {
	out := make([]*Bucket, 0, len(c.order))
	for _, sig := range c.order {
		out = append(out, c.buckets[sig])
	}
	return out
}

// Add opens a new bucket. It fails if the signature is already present —
// dedup decisions belong to the caller, via Bucket.
func (c *Corpus) Add(b *Bucket) error {
	if _, ok := c.buckets[b.Sig]; ok {
		return fmt.Errorf("corpus: bucket %q already present", b.Sig)
	}
	c.buckets[b.Sig] = b
	c.order = append(c.order, b.Sig)
	return nil
}

// CountViolation records one more (duplicate) violation of an existing
// bucket, attributed to this corpus's own hunt identity: buckets that
// passed through Merge keep their per-origin ledger in sync with Count,
// so later merges never lose locally-counted duplicates.
func (c *Corpus) CountViolation(b *Bucket) {
	b.Count++
	if b.Origins != nil {
		b.Origins[c.selfKey()]++
	}
	c.Dups++
}

// Violations returns the lifetime violation total (unique + duplicate).
func (c *Corpus) Violations() int {
	n := 0
	for _, b := range c.buckets {
		n += b.Count
	}
	return n
}

// RecordProgram feeds one hunted program's feature assortment and outcome
// (did it open at least one new bucket?) into the per-feature stats.
func (c *Corpus) RecordProgram(features map[string]bool, producedNew bool) {
	for name, on := range features {
		st := c.features[name]
		if st == nil {
			st = &FeatureStat{}
			c.features[name] = st
		}
		if on {
			st.OnTrials++
			if producedNew {
				st.OnNew++
			}
		} else {
			st.OffTrials++
			if producedNew {
				st.OffNew++
			}
		}
	}
}

// FeatureStats returns the per-feature yield bookkeeping (the corpus's
// own mutable values, keyed by fuzzgen feature name).
func (c *Corpus) FeatureStats() map[string]*FeatureStat {
	return c.features
}

// weightWarmup is the minimum number of recorded programs before a
// feature's weight is emitted: below it the hunt sticks to the fuzzer's
// default assortments and just explores.
const weightWarmup = 32

// Weights derives fuzzer feature weights from the yield stats: the
// Laplace-smoothed probability that a program with the feature on opens a
// new bucket, normalized against the feature-off probability and clamped
// to [0.1, 0.9] so no knob is ever pinned. Features still in warmup — or
// with no new-bucket signal at all — are omitted, which keeps the
// fuzzer's default assortment for them.
func (c *Corpus) Weights() map[string]float64 {
	out := map[string]float64{}
	for name, st := range c.features {
		if st.OnTrials+st.OffTrials < weightWarmup || st.OnNew+st.OffNew == 0 {
			continue
		}
		pOn := (float64(st.OnNew) + 1) / (float64(st.OnTrials) + 2)
		pOff := (float64(st.OffNew) + 1) / (float64(st.OffTrials) + 2)
		w := pOn / (pOn + pOff)
		if w < 0.1 {
			w = 0.1
		} else if w > 0.9 {
			w = 0.9
		}
		out[name] = w
	}
	return out
}

// Store versions: v1 buckets have three-part signatures and no schedule
// field; v2 adds the optional minimal-schedule bucket field and signature
// component; v3 adds the hunt identity (seed0 + shard) and the per-origin
// merge ledgers (header origins, bucket origins) of distributed
// shard-and-merge hunting. Encode always writes the current version;
// Decode accepts all three — a v1 store loads with every bucket
// schedule-less (exactly how its signatures parse), and a pre-v3 store
// loads with no recorded hunt identity, so old corpora keep working.
// Versions beyond storeVersion are rejected by Decode AND by Merge: a
// future store may carry merge-relevant state this code cannot see, and
// silently unioning it would corrupt the global bug set.
const (
	storeVersion   = 3
	storeVersionV2 = 2
	storeVersionV1 = 1
)

// header is the JSONL file's first record.
type header struct {
	Kind       string                  `json:"kind"`
	Version    int                     `json:"version"`
	Programs   int                     `json:"programs"`
	NextSeed   int64                   `json:"next_seed"`
	Dups       int                     `json:"dups"`
	Seed0      int64                   `json:"seed0,omitempty"`
	ShardIndex int                     `json:"shard_index,omitempty"`
	ShardCount int                     `json:"shard_count,omitempty"`
	Features   map[string]*FeatureStat `json:"features"`
	Origins    map[string]*OriginStat  `json:"origins,omitempty"`
}

// bucketRec wraps a bucket with its record kind for the JSONL store.
type bucketRec struct {
	Kind string `json:"kind"`
	*Bucket
}

// Encode writes the corpus as JSONL: the header record, then one bucket
// record per line in discovery order. Output is deterministic (Go's JSON
// encoder sorts map keys).
func (c *Corpus) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(header{Kind: "hunt-corpus", Version: storeVersion,
		Programs: c.Programs, NextSeed: c.NextSeed, Dups: c.Dups,
		Seed0: c.Seed0, ShardIndex: c.ShardIndex, ShardCount: c.ShardCount,
		Features: c.features, Origins: c.origins}); err != nil {
		return err
	}
	for _, sig := range c.order {
		if err := enc.Encode(bucketRec{Kind: "bucket", Bucket: c.buckets[sig]}); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads a corpus previously written by Encode.
func Decode(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26) // exemplar sources can be long
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("corpus: empty store")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("corpus: bad header: %w", err)
	}
	if h.Kind != "hunt-corpus" {
		return nil, fmt.Errorf("corpus: not a hunt corpus (kind %q)", h.Kind)
	}
	if h.Version != storeVersionV1 && h.Version != storeVersionV2 && h.Version != storeVersion {
		return nil, fmt.Errorf("corpus: unsupported version %d", h.Version)
	}
	c := New()
	c.version = h.Version
	c.Programs, c.NextSeed, c.Dups = h.Programs, h.NextSeed, h.Dups
	c.Seed0, c.ShardIndex, c.ShardCount = h.Seed0, h.ShardIndex, h.ShardCount
	if h.Origins != nil {
		for key, o := range h.Origins {
			// A null entry would nil-dereference every later ledger
			// reader; reject it like a null feature stat.
			if o == nil {
				return nil, fmt.Errorf("corpus: null origin entry for %q", key)
			}
			for name, st := range o.Features {
				if st == nil {
					return nil, fmt.Errorf("corpus: null feature stats for %q in origin %q", name, key)
				}
			}
		}
		c.origins = h.Origins
	}
	if h.Features != nil {
		for name, st := range h.Features {
			// A null entry would make every later stats reader (e.g.
			// Weights) nil-dereference; reject it like any other
			// malformed record.
			if st == nil {
				return nil, fmt.Errorf("corpus: null feature stats for %q", name)
			}
		}
		c.features = h.Features
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec bucketRec
		rec.Bucket = &Bucket{}
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("corpus: bad record %d: %w", c.Len()+2, err)
		}
		if rec.Kind != "bucket" {
			return nil, fmt.Errorf("corpus: unexpected record kind %q", rec.Kind)
		}
		if err := c.Add(rec.Bucket); err != nil {
			return nil, err
		}
	}
	return c, sc.Err()
}

// Save checkpoints the corpus to path atomically and durably via the
// toolchain-wide atomicfile helper (tmp in the same directory, fsync,
// 0644, rename): a crash mid-checkpoint never corrupts an existing store,
// and a checkpoint that is visible is also on disk.
func (c *Corpus) Save(path string) error {
	return atomicfile.Write(path, c.Encode)
}

// Load reads a corpus checkpoint from disk.
func Load(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
