package corpus

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeedCorpus builds a representative store for the decode fuzzer's
// seed corpus: header with feature stats, two buckets, one minimized.
func fuzzSeedCorpus() []byte {
	c := New()
	c.Programs = 41
	c.NextSeed = 42
	c.Dups = 3
	c.RecordProgram(map[string]bool{"loops": true, "pointers": false}, true)
	c.Add(&Bucket{Sig: "C1|ccp|opaque-arg:optimized-out", Conjecture: 1,
		Culprit: "ccp", Shape: "opaque-arg:optimized-out", Seed: 7,
		Config: "gc-trunk -O2", Family: "gc", Version: "trunk", Level: "O2",
		Var: "v3", Line: 16, Exemplar: "int main(void) {\n  return 0;\n}\n",
		ExemplarLines: 3, Minimized: true, Count: 4, FoundAfter: 7})
	c.Add(&Bucket{Sig: "C3|untriaged|availability-regrew:not-visible", Conjecture: 3,
		Culprit: "untriaged", Shape: "availability-regrew:not-visible", Seed: 9,
		Config: "cl-trunk -O3", Family: "cl", Version: "trunk", Level: "O3",
		Var: "i", Line: 4, Exemplar: "int main(void) {\n  return 1;\n}\n",
		ExemplarLines: 3, Count: 1, FoundAfter: 30, DebuggerSuspect: true})
	var buf bytes.Buffer
	c.Encode(&buf)
	return buf.Bytes()
}

// FuzzDecode asserts the JSONL store's robustness contract on arbitrary
// bytes: Decode never panics — it returns a corpus or an error — and any
// store it accepts is internally consistent and encodes back to a stable
// fixpoint (decode→encode→decode→encode yields identical bytes), the
// property resumed hunts and byte-for-byte corpus comparisons rest on.
func FuzzDecode(f *testing.F) {
	valid := fuzzSeedCorpus()
	f.Add(valid)
	// Header only.
	f.Add([]byte(bytes.NewBufferString(`{"kind":"hunt-corpus","version":1,"programs":0,"next_seed":5,"dups":0,"features":{}}` + "\n").String()))
	// Mutations a crash or fuzzer is likely to produce.
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("{"))
	f.Add([]byte(`{"kind":"hunt-corpus","version":2}` + "\n"))
	f.Add([]byte(`{"kind":"hunt-corpus","version":1,"features":{"loops":null}}` + "\n"))
	f.Add(bytes.Replace(valid, []byte(`"bucket"`), []byte(`"bucket "`), 1))
	f.Add(valid[:len(valid)/2]) // truncated mid-record
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(bytes.NewReader(data)) // must not panic on any input
		if err != nil {
			return
		}
		// Whatever decoded must be safe to use...
		_ = c.Weights()
		_ = c.Violations()
		for _, b := range c.Buckets() {
			if b == nil {
				t.Fatal("Buckets returned a nil bucket")
			}
		}
		// ...and must round-trip to a byte-stable encoding.
		var first bytes.Buffer
		if err := c.Encode(&first); err != nil {
			t.Fatalf("accepted store failed to encode: %v", err)
		}
		c2, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own encoding failed to decode: %v\n%s", err, truncate(first.String()))
		}
		var second bytes.Buffer
		if err := c2.Encode(&second); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode is not a fixpoint:\nfirst:\n%s\nsecond:\n%s",
				truncate(first.String()), truncate(second.String()))
		}
	})
}

// truncate bounds failure-message payloads.
func truncate(s string) string {
	if len(s) > 2048 {
		return s[:2048] + "…"
	}
	return strings.TrimRight(s, "\n")
}
