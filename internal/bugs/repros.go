package bugs

// Repro holds a MiniC program that reproduces a catalogued issue in the
// simulated toolchain, with the configuration that exposes it and the
// variable/line behaviour to look for. These mirror the paper's appendix:
// each report came with a minimized test case.
type Repro struct {
	Tracker string
	// Family and Level select the exposing configuration ("gc"/"cl").
	Family string
	Level  string
	// Var is the variable whose availability the issue affects.
	Var string
	// Source is the MiniC test case.
	Source string
}

// Repros lists reproduction programs for representative issues of each
// DWARF manifestation class and each system. The verification test compiles
// each under its configuration and checks that the variable's availability
// suffers in the recorded way.
var Repros = []Repro{
	{
		// §1 / 105161: constant folding of (j)*k loses j despite const-value
		// support. Hollow DIE, gc.
		Tracker: "105161", Family: "gc", Level: "O1", Var: "j",
		Source: `
int b[10][2];
int a;
int main(void) {
  int i = 0;
  int j;
  int k;
  for (; i < 10; i = i + 1) {
    j = 0;
    k = 0;
    for (; k < 1; k = k + 1) {
      a = b[i][j * k];
    }
  }
  return 0;
}`,
	},
	{
		// §3.2 / 49975: the peephole AND simplification loses the embedded
		// assignment's copy at an opaque call. Hollow DIE, cl.
		Tracker: "49975", Family: "cl", Level: "O3", Var: "v2",
		Source: `
short a = 4;
extern void foo(int x, int y, int z);
void b(int c) {
  short v1 = 0;
  int v2;
  int v7 = (v2 = a) == 0 & c;
  foo(v1, v2, v7);
}
int main(void) {
  b(a);
  a = 0;
  return 0;
}`,
	},
	{
		// §3.3 / 53855a: LSR fails to salvage the induction variable inside
		// the rewritten loop. Hollow DIE, cl, C2.
		Tracker: "53855a", Family: "cl", Level: "Og", Var: "i",
		Source: `
volatile int c;
int b[16];
int main(void) {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    c = b[i * 3];
  }
  return 0;
}`,
	},
	{
		// 105145: an address-taken local promoted to a register loses its
		// debug information. Hollow DIE, gc, C2.
		Tracker: "105145", Family: "gc", Level: "O2", Var: "x",
		Source: `
int g;
int main(void) {
  int x = 1;
  int* p = &x;
  *p = 5;
  g = *p + 1;
  return 0;
}`,
	},
	{
		// 105108-adjacent (ipa-pure-const): folding a pure call's constant
		// result drops the receiving variable's value. Hollow DIE, gc.
		Tracker: "105108", Family: "gc", Level: "O2", Var: "x",
		Source: `
int zero(void) { return 0; }
int g;
extern void opaque(int v);
int main(void) {
  int i;
  for (i = 0; i < 2; i = i + 1) {
    int x = zero();
    g = x + i + 1;
  }
  return 0;
}`,
	},
}

// ReproFor returns the repro for a tracker id, or nil.
func ReproFor(tracker string) *Repro {
	for i := range Repros {
		if Repros[i].Tracker == tracker {
			return &Repros[i]
		}
	}
	return nil
}
