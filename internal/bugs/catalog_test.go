package bugs

import "testing"

func TestCatalogMatchesPaperTotals(t *testing.T) {
	if len(Catalog) != 38 {
		t.Fatalf("catalog has %d issues, paper reported 38", len(Catalog))
	}
	bySystem := map[System]int{}
	confirmedBySystem := map[System]int{}
	byConjecture := map[int]int{}
	for _, is := range Catalog {
		bySystem[is.System]++
		byConjecture[is.Conjecture]++
		if is.Status == Confirmed || is.Status == Fixed || is.Status == FixedByTrunk {
			confirmedBySystem[is.System]++
		}
	}
	// Paper: 16 clang reports, 19 gcc, 2 gdb, 1 lldb.
	if bySystem[SysClang] != 16 || bySystem[SysGCC] != 19 ||
		bySystem[SysGDB] != 2 || bySystem[SysLLDB] != 1 {
		t.Errorf("per-system counts = %v", bySystem)
	}
	// Paper: 24 confirmed total — 11 clang, 10 gcc, 2 gdb, 1 lldb.
	if confirmedBySystem[SysClang] != 11 || confirmedBySystem[SysGCC] != 10 ||
		confirmedBySystem[SysGDB] != 2 || confirmedBySystem[SysLLDB] != 1 {
		t.Errorf("confirmed counts = %v", confirmedBySystem)
	}
	// Paper: conjectures revealed 20, 11, 7 issues.
	if byConjecture[1] != 20 || byConjecture[2] != 11 || byConjecture[3] != 7 {
		t.Errorf("per-conjecture counts = %v", byConjecture)
	}
}

func TestDIEClassDistribution(t *testing.T) {
	// Paper §5.3: 4 missing, 16 hollow, 12 incomplete, 3 incorrect for the
	// 35 compiler-side issues.
	byClass := map[DIEClass]int{}
	for _, is := range Catalog {
		if is.System == SysClang || is.System == SysGCC {
			byClass[is.Class]++
		}
	}
	want := map[DIEClass]int{MissingDIE: 4, HollowDIE: 16, IncompleteDIE: 12, IncorrectDIE: 3}
	for class, n := range want {
		if byClass[class] != n {
			t.Errorf("%s = %d, want %d", class, byClass[class], n)
		}
	}
}

func TestByTracker(t *testing.T) {
	is := ByTracker("105158")
	if is == nil || is.System != SysGCC || is.Status != Fixed || is.Mechanism != GCCleanupCFGDrop {
		t.Errorf("105158 lookup = %+v", is)
	}
	if ByTracker("nope") != nil {
		t.Error("unknown tracker should yield nil")
	}
}

func TestMechanismsForCoverAllIssues(t *testing.T) {
	for _, sys := range []System{SysClang, SysGCC, SysGDB, SysLLDB} {
		mechs := MechanismsFor(sys)
		if len(mechs) == 0 {
			t.Errorf("no mechanisms for %s", sys)
		}
		seen := map[string]bool{}
		for _, m := range mechs {
			if seen[m] {
				t.Errorf("duplicate mechanism %s", m)
			}
			seen[m] = true
		}
	}
}

func TestEveryIssueHasMechanismAndLevels(t *testing.T) {
	for _, is := range Catalog {
		if is.Mechanism == "" {
			t.Errorf("%s: no mechanism", is.Tracker)
		}
		if is.Conjecture < 1 || is.Conjecture > 3 {
			t.Errorf("%s: bad conjecture %d", is.Tracker, is.Conjecture)
		}
		isCompiler := is.System == SysClang || is.System == SysGCC
		if isCompiler && len(is.Levels) == 0 {
			t.Errorf("%s: compiler issue without affected levels", is.Tracker)
		}
		if isCompiler && is.Class == NoDIEClass {
			t.Errorf("%s: compiler issue without DWARF class", is.Tracker)
		}
	}
}
