// Package bugs is the registry of simulated implementation defects and the
// catalog of the 38 issues the paper reported (Table 3 and Appendix A).
//
// Each *defect mechanism* is a way in which a pass, the code generator, or a
// debugger mishandles debug information; optimizer and debugger code query
// the active-mechanism set at run time. Each *catalog issue* is one paper
// bug report: it names the mechanism that reproduces it, the conjecture that
// exposed it, and the DWARF-level manifestation observed.
package bugs

// Mechanism identifiers for the clang-like (cl) family.
const (
	// CLSimplifyCFGDrop drops debug intrinsics when CFG simplification
	// removes blocks whose only remaining content is debug metadata
	// (paper issues 49769, 55115).
	CLSimplifyCFGDrop = "cl-simplifycfg-drop"
	// CLInstCombineDrop loses the constant when peephole simplification
	// folds an instruction feeding a debug intrinsic (49975, 55123).
	CLInstCombineDrop = "cl-instcombine-drop"
	// CLLSRNoSalvage makes loop strength reduction drop induction-variable
	// debug values inside rewritten loops (53855a).
	CLLSRNoSalvage = "cl-lsr-nosalvage"
	// CLLSRNoSalvageSize is the residual LSR salvage gap that the partial
	// upstream fix did not cover; it triggers only at size-optimizing
	// levels (53855b).
	CLLSRNoSalvageSize = "cl-lsr-nosalvage-size"
	// CLLoopRotateDrop loses debug values that loop rotation should have
	// pushed to the loop exit block (49580).
	CLLoopRotateDrop = "cl-looprotate-drop"
	// CLLoopDeleteDrop loses the final induction-variable value when a
	// loop is deleted after analysis shows a known trip count (49546).
	CLLoopDeleteDrop = "cl-loopdelete-drop"
	// CLIVSimplifyDrop fails to propagate the constant value of a
	// simplified induction variable into debug metadata (49973).
	CLIVSimplifyDrop = "cl-ivsimplify-drop"
	// CLInlineAbstractOnly attaches inlined variables' locations only to
	// the abstract origin of the inlined subroutine (50076 interplay; also
	// the Inliner entries of Table 2).
	CLInlineAbstractOnly = "cl-inline-abstractonly"
	// CLSROAPartialRestore: scalar replacement removes the location and
	// later CFG simplification restores it only partially (54796).
	CLSROAPartialRestore = "cl-sroa-partial"
	// CLSchedIncomplete: instruction scheduling does not extend location
	// ranges over moved instructions (50286, 54611).
	CLSchedIncomplete = "cl-sched-incomplete"
	// CLISelGlobalLoadDrop: instruction selection drops the location of a
	// variable assigned from a global load (51780).
	CLISelGlobalLoadDrop = "cl-isel-globalload"
)

// Mechanism identifiers for the gcc-like (gc) family.
const (
	// GCCleanupCFGDrop: the shared CFG-cleanup helper drops debug values
	// while removing forwarder blocks; because many transformations invoke
	// the helper, the defect surfaces across heterogeneous passes
	// (105158, 105194 — fixed by the "patched" version).
	GCCleanupCFGDrop = "gc-cleanupcfg-drop"
	// GCCCPNoConstValue: conditional constant propagation folds a value
	// but omits the constant from debug metadata (105108, 105161).
	GCCCPNoConstValue = "gc-ccp-noconst"
	// GCCCPRangeShrink: CCP shrinks a variable's location range so its
	// availability flickers during its lifetime (104938).
	GCCCPRangeShrink = "gc-ccp-rangeshrink"
	// GCVRPDrop: value-range propagation removes a definition without
	// inserting a replacement debug statement (105007).
	GCVRPDrop = "gc-vrp-drop"
	// GCDCEDrop: dead code elimination drops debug info even when the
	// emitted code does not change (105176).
	GCDCEDrop = "gc-dce-drop"
	// GCDSEDrop: dead store elimination drops the debug update attached to
	// the eliminated store (105248).
	GCDSEDrop = "gc-dse-drop"
	// GCCopyPropRange: register copy propagation produces a location range
	// that fails to cover the address of a call (105179, 105239).
	GCCopyPropRange = "gc-cprop-range"
	// GCSRAConstArgs: scalar replacement of aggregates loses constant
	// argument values, possibly interacting with scheduling (105261).
	GCSRAConstArgs = "gc-sra-constargs"
	// GCInlineWrongLoc: inlining updates the enclosing location definition
	// incorrectly even though the value was tracked (104549).
	GCInlineWrongLoc = "gc-inline-wrongloc"
	// GCAddrTakenReg: no provision to keep debug info for address-taken
	// locals that later end up in registers (105145).
	GCAddrTakenReg = "gc-addrtaken-reg"
	// GCTopLevelReorder: localizing or merging top-level globals loses
	// debug values derived from them (toplevel-reorder rows of Table 2).
	GCTopLevelReorder = "gc-toplevel-reorder"
	// GCSchedWrongFrame: post-scheduling line attribution associates
	// instructions with the frame of a neighbouring inlined function
	// (105036, 105249).
	GCSchedWrongFrame = "gc-sched-wrongframe"
	// GCPureConstDrop: deleting calls to functions detected as pure drops
	// the debug values of variables holding their results (ipa-pure-const
	// rows of Table 2; the 105108 discussion).
	GCPureConstDrop = "gc-pureconst-drop"
	// GCIPARefAddressable: the static-variable addressability analysis
	// loses a location while leaving the code unchanged (105159).
	GCIPARefAddressable = "gc-iparef-drop"
	// GCUnnamedScopeRange: location definitions for variables declared in
	// unnamed scopes do not cover the full scope (104891).
	GCUnnamedScopeRange = "gc-unnamedscope-range"
)

// LegacyWeakTracking is not a reported bug but the modelled baseline of old
// releases: register promotion records debug updates only for constant
// stores, so most register-resident values go untracked. Its disappearance
// in later releases produces the cross-version availability improvements of
// the paper's Figure 1.
const LegacyWeakTracking = "legacy-weak-tracking"

// Mechanism identifiers for the debugger tools.
const (
	// GDBEmptyRange: gdb mishandles location ranges whose low and high
	// addresses coincide and shows an outdated value (28987).
	GDBEmptyRange = "gdb-emptyrange"
	// GDBConcreteMismatch: a structural mismatch between the concrete and
	// abstract representation of an inlined function makes gdb unable to
	// display variables that lldb displays fine (29060).
	GDBConcreteMismatch = "gdb-concretemismatch"
	// LLDBAbstractOnly: lldb cannot show variables whose location appears
	// only in the abstract origin of an inlined subroutine (50076).
	LLDBAbstractOnly = "lldb-abstractonly"
)

// System identifies which component a catalog issue belongs to.
type System string

// Systems under test.
const (
	SysClang System = "clang"
	SysGCC   System = "gcc"
	SysGDB   System = "gdb"
	SysLLDB  System = "lldb"
)

// Status mirrors the "Bug status" column of Table 3.
type Status string

// Issue statuses.
const (
	Confirmed    Status = "Confirmed"
	Unconfirmed  Status = "Unconfirmed"
	Fixed        Status = "Fixed"
	FixedByTrunk Status = "Fixed by trunk*"
)

// DIEClass mirrors the paper's four DWARF-level manifestation categories.
type DIEClass string

// DIE defect classes (Section 5.3).
const (
	MissingDIE    DIEClass = "Missing DIE"
	HollowDIE     DIEClass = "Hollow DIE"
	IncompleteDIE DIEClass = "Incomplete DIE"
	IncorrectDIE  DIEClass = "Incorrect DIE"
	NoDIEClass    DIEClass = "-" // debugger bugs have no compiler DIE defect
)

// Issue is one reported bug from Table 3 / Appendix A.
type Issue struct {
	Tracker    string // bug tracker identifier
	System     System
	Status     Status
	Conjecture int // 1, 2 or 3
	Class      DIEClass
	Mechanism  string // the defect mechanism that reproduces it
	Levels     []string
	Summary    string
}

// Catalog lists all 38 issues in the order of Table 3.
var Catalog = []Issue{
	{"49546", SysClang, Confirmed, 1, MissingDIE, CLLoopDeleteDrop, []string{"Og"},
		"induction variable unavailable at opaque call after loop deletion"},
	{"49580", SysClang, Confirmed, 1, MissingDIE, CLLoopRotateDrop, []string{"Og"},
		"loop rotation does not push debug metadata to the exit block"},
	{"49769", SysClang, Confirmed, 1, HollowDIE, CLSimplifyCFGDrop, []string{"Og"},
		"CFG simplification removes blocks containing only debug statements"},
	{"49973", SysClang, Confirmed, 1, HollowDIE, CLIVSimplifyDrop, []string{"O3"},
		"induction-variable simplification loses a constant value"},
	{"49975", SysClang, Confirmed, 1, HollowDIE, CLInstCombineDrop, []string{"O3"},
		"peephole AND simplification loses the copy feeding an opaque call"},
	{"51780", SysClang, Confirmed, 1, MissingDIE, CLISelGlobalLoadDrop, []string{"O2"},
		"instruction selection drops a variable assigned from a global"},
	{"55101", SysClang, Unconfirmed, 1, HollowDIE, CLLSRNoSalvage, []string{"O2"},
		"LSR then instruction selection progressively lose locations"},
	{"55115", SysClang, Confirmed, 1, MissingDIE, CLSimplifyCFGDrop, []string{"O1", "O2", "O3", "Og"},
		"CFG simplification removes IR debug statements it cannot re-home"},
	{"55123", SysClang, Unconfirmed, 1, HollowDIE, CLInstCombineDrop, []string{"O1", "O2", "O3", "Og"},
		"instruction combining associates debug metadata with undef"},
	{"53855a", SysClang, FixedByTrunk, 2, HollowDIE, CLLSRNoSalvage, []string{"O1", "Og", "Oz"},
		"LSR fails to salvage induction-variable debug statements"},
	{"53855b", SysClang, Confirmed, 2, HollowDIE, CLLSRNoSalvageSize, []string{"Os"},
		"LSR salvage gap remaining after the partial fix"},
	{"54611", SysClang, Unconfirmed, 2, IncompleteDIE, CLSchedIncomplete, []string{"O1"},
		"scheduling leaves a range missing the assignment instruction"},
	{"54757", SysClang, Unconfirmed, 2, HollowDIE, CLLoopDeleteDrop, []string{"O1", "O2", "O3", "Og"},
		"loop removal drops part of the debug info of the expression"},
	{"54763", SysClang, Unconfirmed, 2, IncompleteDIE, CLSROAPartialRestore, []string{"O2", "O3"},
		"values unavailable before control-flow joins"},
	{"50286", SysClang, Confirmed, 3, IncompleteDIE, CLSchedIncomplete, []string{"Og"},
		"scheduling makes a live variable's availability intermittent"},
	{"54796", SysClang, Confirmed, 3, IncompleteDIE, CLSROAPartialRestore, []string{"Os"},
		"SROA removes a location; later simplification restores it partially"},
	{"104549", SysGCC, Unconfirmed, 1, IncorrectDIE, GCInlineWrongLoc, []string{"O2", "O3"},
		"inlining wrongly updates the location of a tracked constant"},
	{"105007", SysGCC, Confirmed, 1, HollowDIE, GCVRPDrop, []string{"O2", "O3"},
		"EVRP removes a propagated definition without a debug statement"},
	{"105158", SysGCC, Fixed, 1, HollowDIE, GCCleanupCFGDrop, []string{"O1", "O2", "O3", "Og"},
		"shared CFG cleanup loses debug info after boolean simplification"},
	{"105176", SysGCC, Unconfirmed, 1, IncompleteDIE, GCDCEDrop, []string{"Os", "Oz"},
		"dead code elimination drops debug info, code unchanged"},
	{"105179", SysGCC, Unconfirmed, 1, IncompleteDIE, GCCopyPropRange, []string{"Og"},
		"copy propagation emits a range missing the call address"},
	{"105239", SysGCC, Unconfirmed, 1, IncompleteDIE, GCCopyPropRange, []string{"Og"},
		"location range excludes an opaque call preceded by another call"},
	{"105248", SysGCC, Confirmed, 1, HollowDIE, GCDSEDrop, []string{"O1", "O2", "O3"},
		"dead store elimination drops debug info, code unchanged"},
	{"105261", SysGCC, Confirmed, 1, HollowDIE, GCSRAConstArgs, []string{"O2", "O3", "Os", "Oz"},
		"SRA loses several constant-valued call arguments"},
	{"104891", SysGCC, Unconfirmed, 2, IncompleteDIE, GCUnnamedScopeRange, []string{"O2", "O3"},
		"variables in unnamed scopes get incomplete location definitions"},
	{"105036", SysGCC, Unconfirmed, 2, IncorrectDIE, GCSchedWrongFrame, []string{"O3"},
		"wrong frame displayed: scheduling + inlining + unrolling"},
	{"105108", SysGCC, Confirmed, 2, HollowDIE, GCCCPNoConstValue, []string{"Og", "O1"},
		"constant folded via CCP+VRP lacks DW_AT_const_value"},
	{"105145", SysGCC, Confirmed, 2, HollowDIE, GCAddrTakenReg, []string{"O1", "O2", "O3"},
		"address-taken local promoted to register loses its debug info"},
	{"105161", SysGCC, Confirmed, 2, HollowDIE, GCCCPNoConstValue, []string{"O1", "O2", "O3", "Og"},
		"constant folding of (j)*k drops j despite const-value support"},
	{"105249", SysGCC, Unconfirmed, 2, IncorrectDIE, GCSchedWrongFrame, []string{"Os"},
		"scheduling attributes unrolled loop body to an inlined frame"},
	{"104938", SysGCC, Confirmed, 3, IncompleteDIE, GCCCPRangeShrink, []string{"Og"},
		"CCP shrinks the location range; availability flickers"},
	{"105124", SysGCC, Confirmed, 3, IncompleteDIE, GCCCPRangeShrink, []string{"Og"},
		"availability of a constant-valued variable is intermittent"},
	{"105159", SysGCC, Unconfirmed, 3, HollowDIE, GCIPARefAddressable, []string{"Og"},
		"ipa-reference-addressable loses a location, code unchanged"},
	{"105194", SysGCC, Fixed, 3, IncompleteDIE, GCCleanupCFGDrop, []string{"O1", "O2", "O3", "Og"},
		"CFG cleanup after DCE wrongly updates a location definition"},
	{"105389", SysGCC, Unconfirmed, 3, IncompleteDIE, GCCCPRangeShrink, []string{"Og"},
		"one value range missing from a multi-range location"},
	{"28987", SysGDB, Confirmed, 1, NoDIEClass, GDBEmptyRange, nil,
		"gdb shows an outdated value for empty (lo==hi) ranges"},
	{"29060", SysGDB, Confirmed, 1, NoDIEClass, GDBConcreteMismatch, nil,
		"gdb cannot display variables under concrete/abstract mismatch"},
	{"50076", SysLLDB, Confirmed, 1, NoDIEClass, LLDBAbstractOnly, nil,
		"lldb cannot show variables located only in abstract origins"},
}

// ByTracker returns the catalog issue with the given tracker id, or nil.
func ByTracker(id string) *Issue {
	for i := range Catalog {
		if Catalog[i].Tracker == id {
			return &Catalog[i]
		}
	}
	return nil
}

// MechanismsFor returns the distinct defect mechanisms of a system.
func MechanismsFor(sys System) []string {
	seen := map[string]bool{}
	var out []string
	for _, is := range Catalog {
		if is.System == sys && !seen[is.Mechanism] {
			seen[is.Mechanism] = true
			out = append(out, is.Mechanism)
		}
	}
	return out
}
