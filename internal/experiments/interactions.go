package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro"
)

// InteractionTable classifies a hunt corpus's bug buckets by the length
// of their minimal reproducing pass schedule and prints the breakdown:
// interaction bugs need two or more passes run together to reproduce —
// exactly the class that single-culprit triage (one pass flag flipped at
// a time, §4.3) cannot isolate — while single-pass bugs reproduce under
// one pass alone, and unreduced buckets carry no schedule (schedule-less
// hunts and migrated v1 stores). Every interaction bucket is listed with
// its minimal schedule next to the single culprit triage settled on, so
// the table reads as a direct comparison of the two attributions.
func InteractionTable(c *pokeholes.Corpus, w io.Writer) {
	var interactions, singles, unreduced int
	for _, b := range c.Buckets() {
		switch scheduleLen(b.Schedule) {
		case 0:
			unreduced++
		case 1:
			singles++
		default:
			interactions++
		}
	}
	fmt.Fprintf(w, "Interaction bugs vs single-culprit triage (%d buckets)\n", c.Len())
	fmt.Fprintf(w, "%-22s %d\n", "interaction (>=2 passes)", interactions)
	fmt.Fprintf(w, "%-22s %d\n", "single-pass", singles)
	fmt.Fprintf(w, "%-22s %d\n", "unreduced (no schedule)", unreduced)
	if interactions == 0 {
		return
	}
	fmt.Fprintf(w, "%-58s %-12s %s\n", "signature", "culprit", "minimal schedule")
	for _, b := range c.Buckets() {
		if scheduleLen(b.Schedule) < 2 {
			continue
		}
		culprit := b.Culprit
		if culprit == "" {
			culprit = "-"
		}
		fmt.Fprintf(w, "%-58s %-12s %s\n", b.Sig, culprit, b.Schedule)
	}
}

// scheduleLen counts the entries of a canonical schedule string without
// parsing it: entries are comma-joined and never empty.
func scheduleLen(sched string) int {
	if sched == "" {
		return 0
	}
	return strings.Count(sched, ",") + 1
}
