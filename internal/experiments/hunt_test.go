package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro"
	"repro/internal/compiler"
)

// TestHuntCurveDeterministicAcrossWorkers: the printed curve (and the
// bucket rollup under it) is byte-identical between a serial and a
// parallel hunt — the experiments-level face of the corpus determinism
// contract.
func TestHuntCurveDeterministicAcrossWorkers(t *testing.T) {
	spec := pokeholes.HuntSpec{
		Family: compiler.GC, Version: "trunk", Levels: []string{"O2"},
		Budget: testN, Seed0: testSeed, BatchSize: 6,
	}
	render := func(workers int) string {
		var buf bytes.Buffer
		r := NewRunner(pokeholes.NewEngine(pokeholes.WithWorkers(workers)))
		rep, err := r.HuntCurve(context.Background(), spec, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corpus.Len() == 0 {
			t.Fatal("hunt found no buckets; the comparison is vacuous")
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("hunt curve differs across worker counts:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "unique buckets") {
		t.Errorf("missing rollup line:\n%s", serial)
	}
}
