// Package experiments reproduces every table and figure of the paper's
// evaluation: the quantitative study (Figure 1), per-level violation counts
// (Table 1), level-set distributions (Figures 2 and 3), triaged culprit
// rankings (Table 2), the issue catalog (Table 3), the cross-version
// regression study (Table 4), and the per-program violation grid
// (Figure 4). The same runners back cmd/paperbench and the benchmark
// harness in the repository root.
//
// The runners execute on the engine's matrix-campaign API: programs fan
// out over the worker pool, each program is swept across its whole
// version × level grid in one Engine.Sweep (the frontend is lowered once
// per program for the entire grid), and results are aggregated in seed
// order, so a parallel run reproduces a serial run byte for byte. A Runner
// wraps the engine of choice.
package experiments

import (
	"context"
	"fmt"
	"io"

	"repro"
	"repro/internal/compiler"
)

// Runner executes the paper's experiments on one engine session.
type Runner struct {
	E *pokeholes.Engine
}

// NewRunner wraps an engine (nil means the shared default engine).
func NewRunner(e *pokeholes.Engine) *Runner {
	if e == nil {
		e = pokeholes.Default()
	}
	return &Runner{E: e}
}

// LevelViolations is the per-level violation key sets of one sweep.
type LevelViolations struct {
	Family compiler.Family
	// PerLevel[level][conjecture-1] is the set of violation keys.
	PerLevel map[string][3]map[string]bool
	// Programs is the number of programs swept.
	Programs int
	// CleanPrograms counts programs with zero violations per conjecture.
	CleanPrograms [3]int
	// PerProgram[i][conjecture-1] is the count for program i (Figure 4).
	PerProgram [][3]int
}

// forEachResult streams a campaign through fn in seed order, cancelling
// the campaign and draining the channel on the first error (a failed
// result or fn rejecting one). All experiment runners consume campaigns
// through this helper so the cancel/drain protocol lives in one place.
func (r *Runner) forEachResult(ctx context.Context, spec pokeholes.CampaignSpec, fn func(pokeholes.Result) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results, err := r.E.Campaign(ctx, spec)
	if err != nil {
		return err
	}
	for res := range results {
		err := res.Err
		if err == nil {
			err = fn(res)
		}
		if err != nil {
			cancel()
			for range results {
			}
			return err
		}
	}
	return ctx.Err()
}

// MatrixSweep checks n fuzzed programs (seeds seed0..seed0+n-1) across
// versions × optimizing levels of one family in a single matrix campaign —
// the frontend of each program is lowered once for the whole grid — and
// rolls the results up into one LevelViolations per version.
func (r *Runner) MatrixSweep(ctx context.Context, family compiler.Family, versions []string, n int, seed0 int64) (map[string]*LevelViolations, error) {
	levels := pokeholes.OptLevels(family)
	out := map[string]*LevelViolations{}
	for _, ver := range versions {
		lv := &LevelViolations{Family: family, Programs: n,
			PerLevel: map[string][3]map[string]bool{}}
		for _, l := range levels {
			lv.PerLevel[l] = [3]map[string]bool{{}, {}, {}}
		}
		out[ver] = lv
	}
	spec := pokeholes.CampaignSpec{
		Matrix: &pokeholes.Matrix{Family: family, Versions: versions, Levels: levels},
		N:      n, Seed0: seed0}
	err := r.forEachResult(ctx, spec, func(res pokeholes.Result) error {
		for _, ver := range versions {
			lv := out[ver]
			var perProg [3]int
			for _, level := range levels {
				sets := lv.PerLevel[level]
				for _, v := range res.Sweep.Violations(ver, level) {
					// Violation keys are program-qualified so they never
					// collide across the pool.
					key := fmt.Sprintf("p%d:%s", res.Index, v.Key())
					sets[v.Conjecture-1][key] = true
					perProg[v.Conjecture-1]++
				}
				lv.PerLevel[level] = sets
			}
			for c := 0; c < 3; c++ {
				if perProg[c] == 0 {
					lv.CleanPrograms[c]++
				}
			}
			lv.PerProgram = append(lv.PerProgram, perProg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sweep checks n fuzzed programs (seeds seed0..seed0+n-1) against all
// optimization levels of one family version, fanned out over the engine's
// workers and aggregated in seed order.
func (r *Runner) Sweep(ctx context.Context, family compiler.Family, version string, n int, seed0 int64) (*LevelViolations, error) {
	m, err := r.MatrixSweep(ctx, family, []string{version}, n, seed0)
	if err != nil {
		return nil, err
	}
	return m[version], nil
}

// Unique returns the number of distinct violations of a conjecture across
// all levels.
func (lv *LevelViolations) Unique(conj int) int {
	all := map[string]bool{}
	for _, sets := range lv.PerLevel {
		for k := range sets[conj-1] {
			all[k] = true
		}
	}
	return len(all)
}

// Count returns the violation count of a conjecture at one level.
func (lv *LevelViolations) Count(level string, conj int) int {
	return len(lv.PerLevel[level][conj-1])
}

// Table1 reproduces Table 1: conjecture violations per optimization level
// for the trunk versions of both families.
func (r *Runner) Table1(ctx context.Context, n int, seed0 int64, w io.Writer) (gc, cl *LevelViolations, err error) {
	cl, err = r.Sweep(ctx, compiler.CL, "trunk", n, seed0)
	if err != nil {
		return nil, nil, err
	}
	gc, err = r.Sweep(ctx, compiler.GC, "trunk", n, seed0)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "Table 1: conjecture violations in cl (left) & gc (right), %d programs\n", n)
	fmt.Fprintf(w, "%-6s %6s %6s %6s   %6s %6s %6s\n", "Level", "C1", "C2", "C3", "C1", "C2", "C3")
	for _, level := range []string{"Og", "O1", "O2", "O3", "Os", "Oz"} {
		clRow := [3]string{"-", "-", "-"}
		if _, ok := cl.PerLevel[level]; ok {
			for c := 0; c < 3; c++ {
				clRow[c] = fmt.Sprintf("%d", cl.Count(level, c+1))
			}
		}
		gcRow := [3]string{"-", "-", "-"}
		if _, ok := gc.PerLevel[level]; ok {
			for c := 0; c < 3; c++ {
				gcRow[c] = fmt.Sprintf("%d", gc.Count(level, c+1))
			}
		}
		fmt.Fprintf(w, "%-6s %6s %6s %6s   %6s %6s %6s\n", level,
			clRow[0], clRow[1], clRow[2], gcRow[0], gcRow[1], gcRow[2])
	}
	fmt.Fprintf(w, "%-6s %6d %6d %6d   %6d %6d %6d\n", "unique",
		cl.Unique(1), cl.Unique(2), cl.Unique(3),
		gc.Unique(1), gc.Unique(2), gc.Unique(3))
	fmt.Fprintf(w, "programs with no violations: cl (%d, %d, %d) / gc (%d, %d, %d) of %d\n",
		cl.CleanPrograms[0], cl.CleanPrograms[1], cl.CleanPrograms[2],
		gc.CleanPrograms[0], gc.CleanPrograms[1], gc.CleanPrograms[2], n)
	return gc, cl, nil
}

// LevelSetDistribution groups unique violations by the exact set of levels
// they reproduce at (the Venn diagrams of Figures 2 and 3). Oz is excluded,
// as in the paper's figures.
func LevelSetDistribution(lv *LevelViolations) map[string]int {
	membership := map[string][]string{}
	ordered := []string{"Og", "O1", "O2", "O3", "Os"}
	for _, level := range ordered {
		sets, ok := lv.PerLevel[level]
		if !ok {
			continue
		}
		for c := 0; c < 3; c++ {
			for k := range sets[c] {
				membership[fmt.Sprintf("c%d:%s", c, k)] = append(membership[fmt.Sprintf("c%d:%s", c, k)], level)
			}
		}
	}
	out := map[string]int{}
	for _, levels := range membership {
		key := ""
		for _, l := range levels {
			if key != "" {
				key += "+"
			}
			key += l
		}
		out[key]++
	}
	return out
}

// Figure23 prints the unique-violation level-set distribution for one
// family (Figure 2 is cl, Figure 3 is gc).
func Figure23(lv *LevelViolations, w io.Writer) {
	dist := LevelSetDistribution(lv)
	fmt.Fprintf(w, "Unique violations by level set (%s):\n", lv.Family)
	for _, k := range pokeholes.SortedLevelSetKeys(dist) {
		fmt.Fprintf(w, "  %-24s %d\n", k, dist[k])
	}
}
