package experiments

import (
	"context"
	"fmt"
	"io"

	"repro"
)

// HuntCurve runs a budgeted deduplicated hunt (Engine.Hunt) under the
// given spec and prints the unique-bugs-over-time curve: how many
// distinct bug buckets — violations grouped by (conjecture, culprit
// pass, violation shape, minimal schedule) — the fuzzing campaign has
// accumulated after each slice of its program budget, the shape of the
// paper's open-ended campaign rolled up into a small set of unique
// culprit-attributed bugs, followed by the interaction-bug breakdown
// (InteractionTable). Exemplar minimization is forced off: the curve is
// about discovery, and a full hunt over the same corpus can minimize
// later.
func (r *Runner) HuntCurve(ctx context.Context, spec pokeholes.HuntSpec, w io.Writer) (*pokeholes.HuntReport, error) {
	spec.NoMinimize = true
	rep, err := r.E.Hunt(ctx, spec)
	if err != nil {
		return nil, err
	}
	what := fmt.Sprintf("%s %s", spec.Family, spec.Version)
	if spec.Matrix != nil {
		what = fmt.Sprintf("%s matrix", spec.Matrix.Family)
	}
	fmt.Fprintf(w, "Hunt curve (%s, %d programs): unique bug buckets over time\n",
		what, spec.Budget)
	fmt.Fprintf(w, "%-10s %-8s\n", "programs", "buckets")
	// Ten evenly spaced samples plus the endpoint keep the curve
	// readable at any budget.
	step := len(rep.Curve) / 10
	if step < 1 {
		step = 1
	}
	for i := step - 1; i < len(rep.Curve); i += step {
		p := rep.Curve[i]
		fmt.Fprintf(w, "%-10d %-8d\n", p.Programs, p.Buckets)
	}
	if n := len(rep.Curve); n > 0 && n%step != 0 {
		p := rep.Curve[n-1]
		fmt.Fprintf(w, "%-10d %-8d\n", p.Programs, p.Buckets)
	}
	total := rep.Dups + len(rep.NewBuckets)
	dupRate := 0.0
	if total > 0 {
		dupRate = float64(rep.Dups) / float64(total)
	}
	fmt.Fprintf(w, "%d violations -> %d unique buckets (dup rate %.1f%%)\n",
		total, rep.Corpus.Len(), 100*dupRate)
	for _, b := range rep.Corpus.Buckets() {
		fmt.Fprintf(w, "  %-55s x%-5d first seed %d (%s)\n", b.Sig, b.Count, b.Seed, b.Config)
	}
	fmt.Fprintln(w)
	InteractionTable(rep.Corpus, w)
	return rep, nil
}
