package experiments

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"repro"
	"repro/internal/compiler"
)

const (
	testN    = 12
	testSeed = 500
)

// testRunner returns a fresh runner on its own engine so tests do not
// share cache state through the process-wide default engine.
func testRunner() *Runner {
	return NewRunner(pokeholes.NewEngine())
}

func TestTable1ShapesHold(t *testing.T) {
	var buf bytes.Buffer
	gc, cl, err := testRunner().Table1(context.Background(), testN, testSeed, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "unique") {
		t.Error("missing unique row")
	}
	// cl has no O1 sets (alias of Og), gc has all six levels.
	if _, ok := cl.PerLevel["O1"]; ok {
		t.Error("cl must not have a distinct O1")
	}
	if _, ok := gc.PerLevel["O1"]; !ok {
		t.Error("gc must have O1")
	}
	// Unique counts upper-bound per-level counts.
	for _, level := range []string{"Og", "O2", "Os"} {
		for c := 1; c <= 3; c++ {
			if gc.Count(level, c) > gc.Unique(c) {
				t.Errorf("gc %s C%d exceeds unique", level, c)
			}
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	a, err := testRunner().Sweep(context.Background(), compiler.GC, "trunk", 6, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testRunner().Sweep(context.Background(), compiler.GC, "trunk", 6, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= 3; c++ {
		if a.Unique(c) != b.Unique(c) {
			t.Errorf("C%d not deterministic: %d vs %d", c, a.Unique(c), b.Unique(c))
		}
	}
}

// TestMatrixSweepMatchesPerVersionSweeps pins the rollup: a matrix
// campaign across versions must reproduce the per-version sweeps exactly.
func TestMatrixSweepMatchesPerVersionSweeps(t *testing.T) {
	ctx := context.Background()
	versions := []string{"v4", "trunk"}
	byVer, err := testRunner().MatrixSweep(ctx, compiler.GC, versions, 6, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, ver := range versions {
		single, err := testRunner().Sweep(ctx, compiler.GC, ver, 6, testSeed)
		if err != nil {
			t.Fatal(err)
		}
		for c := 1; c <= 3; c++ {
			if byVer[ver].Unique(c) != single.Unique(c) {
				t.Errorf("%s C%d: matrix %d vs single %d", ver, c, byVer[ver].Unique(c), single.Unique(c))
			}
		}
		for level := range single.PerLevel {
			for c := 1; c <= 3; c++ {
				if byVer[ver].Count(level, c) != single.Count(level, c) {
					t.Errorf("%s %s C%d: matrix %d vs single %d",
						ver, level, c, byVer[ver].Count(level, c), single.Count(level, c))
				}
			}
		}
	}
}

func TestLevelSetDistributionAccountsForAll(t *testing.T) {
	lv, err := testRunner().Sweep(context.Background(), compiler.CL, "trunk", testN, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	dist := LevelSetDistribution(lv)
	total := 0
	for _, n := range dist {
		total += n
	}
	// Every unique violation occurring at some non-Oz level appears once.
	uniq := map[string]bool{}
	for _, level := range []string{"Og", "O2", "O3", "Os"} {
		sets, ok := lv.PerLevel[level]
		if !ok {
			continue
		}
		for c := 0; c < 3; c++ {
			for k := range sets[c] {
				uniq["c"+string(rune('0'+c))+k] = true
			}
		}
	}
	if total != len(uniq) {
		t.Errorf("distribution total %d != unique count %d", total, len(uniq))
	}
	Figure23(lv, io.Discard) // must not panic
}

func TestTable4RegressionShapes(t *testing.T) {
	rows, err := testRunner().Table4(context.Background(), testN, testSeed, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string][3]int{}
	for _, r := range rows {
		byKey[string(r.Family)+r.Version] = r.Counts
	}
	// The patched gc build must not add gc C1 violations, and should fix
	// some relative to trunk across a large enough pool (tolerate equality
	// on a small pool).
	if byKey["gcpatched"][0] > byKey["gctrunk"][0] {
		t.Errorf("patched build increased C1: %v vs %v", byKey["gcpatched"], byKey["gctrunk"])
	}
	// trunkstar must not add cl C2 violations.
	if byKey["cltrunkstar"][1] > byKey["cltrunk"][1] {
		t.Errorf("trunkstar increased C2: %v vs %v", byKey["cltrunkstar"], byKey["cltrunk"])
	}
	// The patched build improves at least one conjecture strictly when the
	// pool is non-trivial.
	improved := false
	for c := 0; c < 3; c++ {
		if byKey["gcpatched"][c] < byKey["gctrunk"][c] {
			improved = true
		}
	}
	if !improved {
		t.Errorf("patched build fixed nothing: %v vs %v", byKey["gcpatched"], byKey["gctrunk"])
	}
}

func TestFigure1MonotoneAtO0Boundary(t *testing.T) {
	cells, err := testRunner().Figure1(context.Background(), 4, testSeed, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.LineCoverage < 0 || c.LineCoverage > 1 ||
			c.Availability < 0 || c.Availability > 1 {
			t.Errorf("%s %s %s out of range: %+v", c.Family, c.Version, c.Level, c.Metrics)
		}
	}
}

func TestFigure4Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner().Figure4(context.Background(), 8, testSeed, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("missing header")
	}
}

func TestTable3PrintsCatalog(t *testing.T) {
	var buf bytes.Buffer
	Table3(&buf)
	out := buf.String()
	for _, tracker := range []string{"49546", "105158", "28987", "50076"} {
		if !strings.Contains(out, tracker) {
			t.Errorf("catalog missing %s", tracker)
		}
	}
	if !strings.Contains(out, "total 24 of 38") {
		t.Errorf("confirmed summary wrong:\n%s", out)
	}
}
