package experiments

import (
	"context"
	"fmt"
	"io"

	"repro"
	"repro/internal/bugs"
	"repro/internal/compiler"
	"repro/internal/metrics"
)

// Figure1Cell is one (version, level) aggregate of the quantitative study.
type Figure1Cell struct {
	Family  compiler.Family
	Version string
	Level   string
	metrics.Metrics
}

// measureMatrix runs one measuring matrix campaign over a version × level
// grid of a family and returns every program's metrics per configuration,
// keyed by version then level, in seed order.
func (r *Runner) measureMatrix(ctx context.Context, family compiler.Family, versions, levels []string, n int, seed0 int64) (map[string]map[string][]metrics.Metrics, error) {
	perCell := map[string]map[string][]metrics.Metrics{}
	for _, ver := range versions {
		perCell[ver] = map[string][]metrics.Metrics{}
	}
	spec := pokeholes.CampaignSpec{
		Matrix: &pokeholes.Matrix{Family: family, Versions: versions, Levels: levels},
		N:      n, Seed0: seed0, Measure: true}
	err := r.forEachResult(ctx, spec, func(res pokeholes.Result) error {
		for i, cfg := range res.Sweep.Configs {
			perCell[cfg.Version][cfg.Level] = append(perCell[cfg.Version][cfg.Level], res.Sweep.Metrics[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return perCell, nil
}

// Figure1 reproduces the §2 quantitative study: line coverage, availability
// of variables, and their product, for n fuzzed programs across versions
// and levels of both families. One measuring matrix campaign per family
// covers the whole grid, so each program is lowered once and its O0
// reference is traced once per version.
func (r *Runner) Figure1(ctx context.Context, n int, seed0 int64, w io.Writer) ([]Figure1Cell, error) {
	var cells []Figure1Cell
	type fam struct {
		f        compiler.Family
		versions []string
		levels   []string
	}
	fams := []fam{
		{compiler.CL, []string{"v5", "v7", "v9", "v11", "trunk"}, []string{"Og", "O2", "O3", "Os"}},
		{compiler.GC, []string{"v4", "v6", "v8", "v10", "trunk"}, []string{"O1", "O2", "O3", "Og", "Os"}},
	}
	for _, fm := range fams {
		fmt.Fprintf(w, "Figure 1 (%s): version x level -> line coverage / availability / product\n", fm.f)
		perCell, err := r.measureMatrix(ctx, fm.f, fm.versions, fm.levels, n, seed0)
		if err != nil {
			return nil, err
		}
		for _, ver := range fm.versions {
			for _, level := range fm.levels {
				mean := metrics.Mean(perCell[ver][level])
				cells = append(cells, Figure1Cell{Family: fm.f, Version: ver, Level: level, Metrics: mean})
				fmt.Fprintf(w, "  %-7s %-3s  line=%.3f  avail=%.3f  product=%.3f\n",
					ver, level, mean.LineCoverage, mean.Availability, mean.Product)
			}
		}
	}
	return cells, nil
}

// Table2Row is one triaged-culprit count.
type Table2Row struct {
	Family     compiler.Family
	Conjecture int
	Pass       string
	Count      int
}

// Table2 triages the violations of n programs at the trunk versions and
// prints the most frequent culprit optimizations per conjecture (top-5), as
// in the paper's Table 2. Triage is the expensive step; n is typically
// smaller than for the counting sweeps. Triage runs inside the campaign
// workers, so the whole table parallelizes across programs.
func (r *Runner) Table2(ctx context.Context, n int, seed0 int64, w io.Writer) ([]Table2Row, error) {
	counts := map[compiler.Family]map[int]map[string]int{
		compiler.GC: {1: {}, 2: {}, 3: {}},
		compiler.CL: {1: {}, 2: {}, 3: {}},
	}
	levels := []string{"Og", "O2"}
	for _, family := range []compiler.Family{compiler.CL, compiler.GC} {
		spec := pokeholes.CampaignSpec{Family: family, Version: "trunk",
			Levels: levels, N: n, Seed0: seed0, Triage: true}
		err := r.forEachResult(ctx, spec, func(res pokeholes.Result) error {
			for _, level := range levels {
				for _, v := range res.Violations[level] {
					culprit, _ := res.Culprit(level, v)
					if culprit == "" {
						continue // not controllable by a single knob (§4.3)
					}
					counts[family][v.Conjecture][culprit]++
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var rows []Table2Row
	fmt.Fprintln(w, "Table 2: triaged culprit optimizations (top-5 per conjecture)")
	for _, family := range []compiler.Family{compiler.GC, compiler.CL} {
		method := "flag search"
		if family == compiler.CL {
			method = "opt-bisect"
		}
		fmt.Fprintf(w, "%s (%s):\n", family, method)
		for conj := 1; conj <= 3; conj++ {
			top := topN(counts[family][conj], 5)
			fmt.Fprintf(w, "  C%d:", conj)
			for _, kv := range top {
				fmt.Fprintf(w, "  %s=%d", kv.k, kv.v)
				rows = append(rows, Table2Row{Family: family, Conjecture: conj, Pass: kv.k, Count: kv.v})
			}
			fmt.Fprintln(w)
		}
	}
	return rows, nil
}

type kv struct {
	k string
	v int
}

func topN(m map[string]int, n int) []kv {
	var out []kv
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	// Stable deterministic ordering: count desc, then name.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].v > out[i].v || (out[j].v == out[i].v && out[j].k < out[i].k) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Table3 prints the 38-issue catalog with status, conjecture and DWARF
// classification, i.e. the paper's Table 3.
func Table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: reported issues and their status")
	fmt.Fprintf(w, "%-8s %-6s %-16s %-3s %-15s %s\n", "Tracker", "System", "Status", "C", "DWARF class", "Mechanism")
	for _, is := range bugs.Catalog {
		fmt.Fprintf(w, "%-8s %-6s %-16s C%d  %-15s %s\n",
			is.Tracker, is.System, is.Status, is.Conjecture, is.Class, is.Mechanism)
	}
	confirmed := map[bugs.System]int{}
	for _, is := range bugs.Catalog {
		if is.Status == bugs.Confirmed || is.Status == bugs.Fixed || is.Status == bugs.FixedByTrunk {
			confirmed[is.System]++
		}
	}
	fmt.Fprintf(w, "confirmed: clang=%d gcc=%d gdb=%d lldb=%d (total %d of %d)\n",
		confirmed[bugs.SysClang], confirmed[bugs.SysGCC], confirmed[bugs.SysGDB],
		confirmed[bugs.SysLLDB],
		confirmed[bugs.SysClang]+confirmed[bugs.SysGCC]+confirmed[bugs.SysGDB]+confirmed[bugs.SysLLDB],
		len(bugs.Catalog))
}

// Table4Row is one cross-version violation count.
type Table4Row struct {
	Family  compiler.Family
	Version string
	Counts  [3]int
}

// Table4 reproduces the regression study: unique violations per conjecture
// across versions far apart in time, including the patched gc build and the
// cl trunk with the partial LSR fix. Each family's versions are checked in
// one matrix campaign, so every program is lowered once for all of them.
func (r *Runner) Table4(ctx context.Context, n int, seed0 int64, w io.Writer) ([]Table4Row, error) {
	var rows []Table4Row
	sweep := func(f compiler.Family, versions []string) error {
		byVer, err := r.MatrixSweep(ctx, f, versions, n, seed0)
		if err != nil {
			return err
		}
		for _, ver := range versions {
			lv := byVer[ver]
			rows = append(rows, Table4Row{Family: f, Version: ver,
				Counts: [3]int{lv.Unique(1), lv.Unique(2), lv.Unique(3)}})
		}
		return nil
	}
	if err := sweep(compiler.GC, []string{"v4", "v8", "trunk", "patched"}); err != nil {
		return nil, err
	}
	if err := sweep(compiler.CL, []string{"v5", "v9", "trunk", "trunkstar"}); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Table 4: unique violations across versions (%d programs)\n", n)
	fmt.Fprintf(w, "%-4s %-10s %6s %6s %6s\n", "fam", "version", "C1", "C2", "C3")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %-10s %6d %6d %6d\n", r.Family, r.Version, r.Counts[0], r.Counts[1], r.Counts[2])
	}
	return rows, nil
}

// Figure4 renders the per-program conjecture-violation grid across gc
// versions (one row of cells per version block, 25 programs per text row,
// digit = number of conjectures violated). All four versions run in one
// matrix campaign.
func (r *Runner) Figure4(ctx context.Context, n int, seed0 int64, w io.Writer) error {
	versions := []string{"v4", "v8", "trunk", "patched"}
	byVer, err := r.MatrixSweep(ctx, compiler.GC, versions, n, seed0)
	if err != nil {
		return err
	}
	for _, ver := range versions {
		lv := byVer[ver]
		fmt.Fprintf(w, "Figure 4 (%s): conjectures violated per program\n", ver)
		for i := 0; i < len(lv.PerProgram); i += 25 {
			row := ""
			for j := i; j < i+25 && j < len(lv.PerProgram); j++ {
				c := 0
				for k := 0; k < 3; k++ {
					if lv.PerProgram[j][k] > 0 {
						c++
					}
				}
				row += fmt.Sprintf("%d", c)
			}
			fmt.Fprintln(w, "  "+row)
		}
	}
	return nil
}

// RegressionAvailability reproduces the §5.4 availability-of-variables
// comparison around the patched gc build: it returns the O1 availability
// metric for trunk, patched, and the Og reference, so callers can verify
// that the patch closes about half of the O1→Og gap.
func (r *Runner) RegressionAvailability(ctx context.Context, n int, seed0 int64, w io.Writer) (trunkO1, patchedO1, trunkOg float64, err error) {
	// One matrix campaign covers both builds at both levels; each program
	// is lowered once and its O0 reference traced once per version.
	perCell, err := r.measureMatrix(ctx, compiler.GC,
		[]string{"trunk", "patched"}, []string{"O1", "Og"}, n, seed0)
	if err != nil {
		return
	}
	trunkO1 = metrics.Mean(perCell["trunk"]["O1"]).Availability
	patchedO1 = metrics.Mean(perCell["patched"]["O1"]).Availability
	// The Og reference uses the fixed build: the shared-cleanup defect also
	// affected -Og, so the debugger-friendly ceiling is the patched one.
	trunkOg = metrics.Mean(perCell["patched"]["Og"]).Availability
	fmt.Fprintf(w, "availability-of-variables at O1: trunk=%.4f patched=%.4f (Og reference %.4f)\n",
		trunkO1, patchedO1, trunkOg)
	return
}
