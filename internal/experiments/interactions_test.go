package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// TestInteractionTable pins the classification: interaction buckets are
// exactly those whose minimal schedule has two or more entries, and each
// is listed with its culprit and schedule side by side.
func TestInteractionTable(t *testing.T) {
	c := corpus.New()
	add := func(sig corpus.Signature, culprit, sched string) {
		t.Helper()
		if err := c.Add(&corpus.Bucket{Sig: sig, Culprit: culprit, Schedule: sched, Count: 1}); err != nil {
			t.Fatal(err)
		}
	}
	add("C1|copyprop|a:optimized-out|mem2reg,copyprop", "copyprop", "mem2reg,copyprop")
	add("C1|dce|b:optimized-out|dce", "dce", "dce")
	add("C2|lsr|c:mislocated", "lsr", "") // migrated v1 bucket: no schedule
	add("C3||d:optimized-out|mem2reg,sroa,inline:40", "", "mem2reg,sroa,inline:40")

	var buf bytes.Buffer
	InteractionTable(c, &buf)
	out := buf.String()

	for _, want := range []string{
		"Interaction bugs vs single-culprit triage (4 buckets)",
		"interaction (>=2 passes) 2",
		"single-pass 1",
		"unreduced (no schedule) 1",
		"mem2reg,copyprop",
		"mem2reg,sroa,inline:40",
	} {
		if !strings.Contains(normalize(out), normalize(want)) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The schedule-less v1 bucket must not be listed as an interaction.
	if strings.Contains(out, "C2|lsr|c:mislocated ") {
		t.Errorf("unreduced bucket listed in the interaction table:\n%s", out)
	}
	// The culprit-less interaction bucket renders "-" for its culprit.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mem2reg,sroa,inline:40") && !strings.Contains(line, " - ") {
			t.Errorf("culprit-less interaction row should show '-': %q", line)
		}
	}
}

// normalize collapses runs of spaces so the assertions survive column
// width changes.
func normalize(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

func TestScheduleLen(t *testing.T) {
	for _, tc := range []struct {
		sched string
		want  int
	}{
		{"", 0},
		{"dce", 1},
		{"inline:40", 1},
		{"mem2reg,copyprop", 2},
		{"mem2reg,copyprop,sroa", 3},
	} {
		if got := scheduleLen(tc.sched); got != tc.want {
			t.Errorf("scheduleLen(%q) = %d, want %d", tc.sched, got, tc.want)
		}
	}
}
