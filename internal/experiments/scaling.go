package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro"
	"repro/internal/corpus"
)

// ScalingPoint is one wall-clock sample of a replica fleet's merged
// unique-bugs curve: after each replica has processed PerReplica
// programs (the wall-clock axis — replicas run concurrently), the fleet
// as a whole has consumed Total programs and its merged corpus holds
// Buckets unique bugs.
type ScalingPoint struct {
	PerReplica int `json:"per_replica_programs"`
	Total      int `json:"total_programs"`
	Buckets    int `json:"buckets"`
}

// ScalingSeries is the unique-bugs-over-time curve of one fleet size.
type ScalingSeries struct {
	Replicas     int            `json:"replicas"`
	Points       []ScalingPoint `json:"points"`
	FinalBuckets int            `json:"final_buckets"`
}

// ScalingResult is the distributed-hunting scaling experiment: the same
// total fuzzing budget spent by fleets of different sizes, each fleet's
// sharded corpora merged via corpus.Merge.
type ScalingResult struct {
	TotalBudget int             `json:"total_budget"`
	Series      []ScalingSeries `json:"series"`
}

// Fleet returns the curve for one fleet size, if present.
func (r *ScalingResult) Fleet(replicas int) *ScalingSeries {
	for i := range r.Series {
		if r.Series[i].Replicas == replicas {
			return &r.Series[i]
		}
	}
	return nil
}

// ScalingCurve extends HuntCurve to the distributed shard-and-merge
// setting: for each fleet size n it runs n sharded hunts (shard i of n,
// spec.Budget/n programs each — the same total budget at every fleet
// size), merges the per-shard corpora into one global bug set, and
// reports unique buckets over wall-clock time. Wall-clock is measured
// in per-replica programs: n replicas run concurrently, so after t
// programs per replica the fleet has spent n·t programs total. A bucket
// exists at wall-clock t if ANY replica had opened it within its first
// t programs (per-signature minimum FoundAfter across shards).
//
// Budgets must stay below the adaptive-weight warmup per replica for
// the fleet curves to be comparable point-for-point with the solo hunt
// (identical program per seed); under that regime a fleet of n at
// wall-clock t has hunted a superset of the solo hunt's first t seeds,
// so its curve dominates the solo curve structurally — the experiment
// measures by how much.
func (r *Runner) ScalingCurve(ctx context.Context, spec pokeholes.HuntSpec, fleets []int, w io.Writer) (*ScalingResult, error) {
	if len(fleets) == 0 {
		fleets = []int{1, 4, 16}
	}
	spec.NoMinimize = true // discovery curves; a full hunt can minimize later
	out := &ScalingResult{TotalBudget: spec.Budget}
	for _, n := range fleets {
		if n < 1 || spec.Budget%n != 0 {
			return nil, fmt.Errorf("experiments: fleet size %d must divide the total budget %d", n, spec.Budget)
		}
		perBudget := spec.Budget / n
		merged := corpus.New()
		// firstAt[sig] is the earliest per-replica time any shard opened
		// the bucket — the wall-clock discovery coordinate of the fleet.
		firstAt := map[corpus.Signature]int{}
		for i := 0; i < n; i++ {
			shard := spec
			shard.Budget = perBudget
			shard.ShardIndex, shard.ShardCount = i, n
			rep, err := r.E.Hunt(ctx, shard)
			if err != nil {
				return nil, fmt.Errorf("experiments: shard %d/%d: %w", i, n, err)
			}
			for _, b := range rep.Corpus.Buckets() {
				if at, ok := firstAt[b.Sig]; !ok || b.FoundAfter < at {
					firstAt[b.Sig] = b.FoundAfter
				}
			}
			if _, err := merged.Merge(rep.Corpus); err != nil {
				return nil, fmt.Errorf("experiments: merging shard %d/%d: %w", i, n, err)
			}
		}
		series := ScalingSeries{Replicas: n, FinalBuckets: merged.Len()}
		times := make([]int, 0, len(firstAt))
		for _, at := range firstAt {
			times = append(times, at)
		}
		sort.Ints(times)
		for t := 1; t <= perBudget; t++ {
			buckets := sort.SearchInts(times, t+1) // discoveries with FoundAfter <= t
			series.Points = append(series.Points, ScalingPoint{
				PerReplica: t, Total: n * t, Buckets: buckets})
		}
		out.Series = append(out.Series, series)
	}

	fmt.Fprintf(w, "Scaling curve (%s %s, %d total programs): merged unique buckets over wall-clock\n",
		spec.Family, spec.Version, spec.Budget)
	fmt.Fprintf(w, "%-10s", "t (progs)")
	for _, s := range out.Series {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("%d-replica", s.Replicas))
	}
	fmt.Fprintln(w)
	// Sample the shortest series' time axis (the largest fleet finishes
	// its per-replica budget first); longer series keep growing past it,
	// which the final-buckets row below reports.
	maxT := out.Series[0].Points[len(out.Series[0].Points)-1].PerReplica
	for _, s := range out.Series {
		if last := s.Points[len(s.Points)-1].PerReplica; last < maxT {
			maxT = last
		}
	}
	step := maxT / 8
	if step < 1 {
		step = 1
	}
	for t := step; t <= maxT; t += step {
		fmt.Fprintf(w, "%-10d", t)
		for _, s := range out.Series {
			fmt.Fprintf(w, " %10d", s.Points[t-1].Buckets)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "final")
	for _, s := range out.Series {
		fmt.Fprintf(w, " %10d", s.FinalBuckets)
	}
	fmt.Fprintln(w)
	return out, nil
}
