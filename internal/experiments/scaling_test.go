package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro"
	"repro/internal/compiler"
)

// TestScalingCurveFleetDominatesSolo pins the distributed-hunting
// acceptance criterion: at equal total budget, the 4-replica fleet's
// merged unique-buckets-over-wall-clock curve dominates the 1-replica
// curve everywhere on the shared time axis and strictly at the fleet's
// final point — and both fleets converge to the same final bucket set
// (they hunt the same seed universe).
func TestScalingCurveFleetDominatesSolo(t *testing.T) {
	spec := pokeholes.HuntSpec{
		Family: compiler.GC, Version: "trunk", Levels: []string{"O2"},
		Budget: 32, Seed0: 900, BatchSize: 8,
	}
	var buf bytes.Buffer
	r := NewRunner(pokeholes.NewEngine())
	res, err := r.ScalingCurve(context.Background(), spec, []int{1, 4}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	solo, fleet := res.Fleet(1), res.Fleet(4)
	if solo == nil || fleet == nil {
		t.Fatal("missing series")
	}
	if solo.FinalBuckets == 0 {
		t.Fatal("solo hunt found no buckets; the comparison is vacuous")
	}
	// Same seed universe, same total budget -> same final bug set.
	if fleet.FinalBuckets != solo.FinalBuckets {
		t.Errorf("fleet final buckets %d != solo final %d (same total budget must converge)",
			fleet.FinalBuckets, solo.FinalBuckets)
	}
	// Domination on the shared wall-clock axis: at every per-replica
	// time t the fleet has hunted a superset of the solo hunt's seeds.
	last := len(fleet.Points)
	for i := 0; i < last; i++ {
		if fleet.Points[i].Buckets < solo.Points[i].Buckets {
			t.Errorf("t=%d: fleet has %d buckets < solo's %d — no domination",
				i+1, fleet.Points[i].Buckets, solo.Points[i].Buckets)
		}
	}
	// Strict domination at the fleet's final point: by the time each
	// replica has spent budget/4 programs the fleet has covered the
	// whole seed range, while the solo hunt has only a quarter of it.
	ft, st := fleet.Points[last-1].Buckets, solo.Points[last-1].Buckets
	if ft <= st {
		t.Errorf("fleet at its final wall-clock point has %d buckets, solo has %d — want strictly more", ft, st)
	}
	if fleet.Points[last-1].Total != solo.Points[len(solo.Points)-1].Total {
		t.Errorf("total budgets differ: fleet %d vs solo %d",
			fleet.Points[last-1].Total, solo.Points[len(solo.Points)-1].Total)
	}
}

// TestScalingCurveRejectsIndivisibleFleet: the equal-total-budget
// contract requires the fleet size to divide the budget.
func TestScalingCurveRejectsIndivisibleFleet(t *testing.T) {
	spec := pokeholes.HuntSpec{
		Family: compiler.GC, Version: "trunk", Levels: []string{"O2"},
		Budget: 10, Seed0: 900,
	}
	var buf bytes.Buffer
	if _, err := NewRunner(pokeholes.NewEngine()).ScalingCurve(context.Background(), spec, []int{3}, &buf); err == nil {
		t.Error("fleet size 3 on budget 10 must be rejected")
	}
}
