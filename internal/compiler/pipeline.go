package compiler

import (
	"fmt"

	"repro/internal/opt"
)

// The per-level pass lists are defined as canonical opt.Schedule values —
// first-class, serializable descriptions that the engine digests into
// cache keys and triage's ScheduleReduce delta-debugs. Pipeline
// materializes a schedule into runnable pass values through the opt
// registry, so the Schedule is the single source of truth.

// ScheduleFor returns the canonical pass schedule of a configuration. The
// structure mirrors the paper's observations:
//
//   - gc's -Og is genuinely conservative (no inlining, no loop passes, no
//     scheduler), which is why the paper measures very few gc Conjecture-1
//     violations at -Og and a large availability gap to -O1..-O3.
//   - cl's -Og (= -O1) runs inlining, loop rotation and LSR, and recent cl
//     releases even delete dead loops at -Og — the line-coverage drop the
//     paper notes for the latest clang.
//   - -Os avoids unrolling (indirectly preserving more lines), -Oz adds
//     loop deletion on top.
//
// Unknown levels (including O0) yield the empty schedule.
func ScheduleFor(cfg Config) opt.Schedule {
	vi := cfg.VersionIndex()
	if cfg.Family == GC {
		return gcSchedule(cfg.Level, vi)
	}
	return clSchedule(cfg.Level, vi)
}

// Pipeline materializes cfg's canonical schedule into pass values.
func Pipeline(cfg Config) []opt.Pass {
	s := ScheduleFor(cfg)
	if s.Len() == 0 {
		return nil
	}
	ps, err := s.Passes()
	if err != nil {
		// The canonical schedules name only registered passes; failing to
		// materialize one is a programming error, not an input error.
		panic(fmt.Sprintf("compiler: canonical schedule for %s does not materialize: %v", cfg, err))
	}
	return ps
}

// e builds one schedule entry; the optional second argument is the budget
// of the parameterized passes.
func e(name string, arg ...int) opt.Entry {
	en := opt.Entry{Name: name}
	if len(arg) > 0 {
		en.Arg = arg[0]
	}
	return en
}

func gcSchedule(level string, vi int) opt.Schedule {
	base := []opt.Entry{e("mem2reg")}
	switch level {
	case "Og":
		return opt.Schedule{Entries: append(base,
			e("ccp"),
			e("copyprop"),
			e("simplifycfg"),
			e("dce"),
			e("ipa-reference"),
			e("toplevel-reorder"),
		)}
	case "O1":
		return opt.Schedule{Entries: append(base,
			e("ccp"),
			e("vrp"),
			e("instcombine"),
			e("copyprop"),
			e("dse"),
			e("dce"),
			e("simplifycfg"),
			e("toplevel-reorder"),
			e("dce"),
		)}
	case "O2", "O3", "Os", "Oz":
		es := append(base,
			e("ipa-pure-const"),
			e("inline", inlineBudget(level)),
			e("ccp"),
			e("vrp"),
			e("instcombine"),
			e("copyprop"),
			e("sroa"),
			e("dse"),
			e("simplifycfg"),
		)
		es = append(es, e("ivsimplify"), e("lsr"))
		if level == "O3" {
			es = append(es, e("loopunroll", unrollBudget(vi)))
		}
		if level == "O3" || level == "Oz" {
			es = append(es, e("loopdelete"))
		}
		if level == "O2" || level == "O3" {
			es = append(es, e("looprotate"))
		}
		es = append(es,
			e("ccp"),
			e("dce"),
			e("sched"),
			e("simplifycfg"),
			e("toplevel-reorder"),
			e("dce"),
		)
		return opt.Schedule{Entries: es}
	}
	return opt.Schedule{}
}

func clSchedule(level string, vi int) opt.Schedule {
	base := []opt.Entry{e("mem2reg")}
	switch level {
	case "Og", "O1":
		es := append(base,
			e("inline", inlineBudget(level)),
			e("simplifycfg"),
			e("instcombine"),
			e("ccp"),
			e("copyprop"),
			e("lsr"),
			e("looprotate"),
			e("dce"),
		)
		if vi >= 4 {
			// Recent releases remove dead loops already at -Og.
			es = append(es, e("loopdelete"))
		}
		es = append(es, e("simplifycfg"))
		return opt.Schedule{Entries: es}
	case "O2", "O3":
		return opt.Schedule{Entries: append(base,
			e("ipa-pure-const"),
			e("inline", inlineBudget(level)),
			e("simplifycfg"),
			e("instcombine"),
			e("ccp"),
			e("vrp"),
			e("copyprop"),
			e("sroa"),
			e("ivsimplify"),
			e("lsr"),
			e("loopunroll", unrollBudget(vi)+b2i(level == "O3")),
			e("loopdelete"),
			e("looprotate"),
			e("dse"),
			e("ccp"),
			e("dce"),
			e("sched"),
			e("simplifycfg"),
		)}
	case "Os", "Oz":
		es := append(base,
			e("ipa-pure-const"),
			e("inline", inlineBudget(level)),
			e("simplifycfg"),
			e("instcombine"),
			e("ccp"),
			e("vrp"),
			e("copyprop"),
			e("sroa"),
			e("ivsimplify"),
			e("lsr"),
		)
		if level == "Oz" {
			es = append(es, e("loopdelete"))
		}
		es = append(es,
			e("dse"),
			e("ccp"),
			e("dce"),
			e("sched"),
			e("simplifycfg"),
		)
		return opt.Schedule{Entries: es}
	}
	return opt.Schedule{}
}

// inlineBudget returns the callee-size threshold per level; size-optimizing
// levels inline less, which (as the paper observes for -Os) indirectly
// preserves more debug information.
func inlineBudget(level string) int {
	switch level {
	case "Og", "O1":
		return 24
	case "Os", "Oz":
		return 16
	default:
		return 40
	}
}

// unrollBudget grows in newer releases.
func unrollBudget(vi int) int {
	if vi >= 3 {
		return 4
	}
	return 2
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
