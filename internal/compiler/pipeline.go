package compiler

import "repro/internal/opt"

// Pipeline returns the pass sequence for a configuration. The structure
// mirrors the paper's observations:
//
//   - gc's -Og is genuinely conservative (no inlining, no loop passes, no
//     scheduler), which is why the paper measures very few gc Conjecture-1
//     violations at -Og and a large availability gap to -O1..-O3.
//   - cl's -Og (= -O1) runs inlining, loop rotation and LSR, and recent cl
//     releases even delete dead loops at -Og — the line-coverage drop the
//     paper notes for the latest clang.
//   - -Os avoids unrolling (indirectly preserving more lines), -Oz adds
//     loop deletion on top.
func Pipeline(cfg Config) []opt.Pass {
	vi := cfg.VersionIndex()
	if cfg.Family == GC {
		return gcPipeline(cfg.Level, vi)
	}
	return clPipeline(cfg.Level, vi)
}

func gcPipeline(level string, vi int) []opt.Pass {
	base := []opt.Pass{opt.Mem2Reg{}}
	switch level {
	case "Og":
		return append(base,
			opt.CCP{},
			opt.CopyProp{},
			opt.SimplifyCFG{},
			opt.DCE{},
			opt.IPAReference{},
			opt.TopLevelReorder{},
		)
	case "O1":
		return append(base,
			opt.CCP{},
			opt.VRP{},
			opt.InstCombine{},
			opt.CopyProp{},
			opt.DSE{},
			opt.DCE{},
			opt.SimplifyCFG{},
			opt.TopLevelReorder{},
			opt.DCE{},
		)
	case "O2", "O3", "Os", "Oz":
		ps := append(base,
			opt.IPAPureConst{},
			opt.Inline{MaxInstrs: inlineBudget(level)},
			opt.CCP{},
			opt.VRP{},
			opt.InstCombine{},
			opt.CopyProp{},
			opt.SROA{},
			opt.DSE{},
			opt.SimplifyCFG{},
		)
		ps = append(ps, opt.IVSimplify{}, opt.LSR{})
		if level == "O3" {
			ps = append(ps, opt.LoopUnroll{MaxTrip: unrollBudget(vi)})
		}
		if level == "O3" || level == "Oz" {
			ps = append(ps, opt.LoopDelete{})
		}
		if level == "O2" || level == "O3" {
			ps = append(ps, opt.LoopRotate{})
		}
		ps = append(ps,
			opt.CCP{},
			opt.DCE{},
			opt.Sched{},
			opt.SimplifyCFG{},
			opt.TopLevelReorder{},
			opt.DCE{},
		)
		return ps
	}
	return nil
}

func clPipeline(level string, vi int) []opt.Pass {
	base := []opt.Pass{opt.Mem2Reg{}}
	switch level {
	case "Og", "O1":
		ps := append(base,
			opt.Inline{MaxInstrs: inlineBudget(level)},
			opt.SimplifyCFG{},
			opt.InstCombine{},
			opt.CCP{},
			opt.CopyProp{},
			opt.LSR{},
			opt.LoopRotate{},
			opt.DCE{},
		)
		if vi >= 4 {
			// Recent releases remove dead loops already at -Og.
			ps = append(ps, opt.LoopDelete{})
		}
		ps = append(ps, opt.SimplifyCFG{})
		return ps
	case "O2", "O3":
		ps := append(base,
			opt.IPAPureConst{},
			opt.Inline{MaxInstrs: inlineBudget(level)},
			opt.SimplifyCFG{},
			opt.InstCombine{},
			opt.CCP{},
			opt.VRP{},
			opt.CopyProp{},
			opt.SROA{},
			opt.IVSimplify{},
			opt.LSR{},
			opt.LoopUnroll{MaxTrip: unrollBudget(vi) + b2i(level == "O3")},
			opt.LoopDelete{},
			opt.LoopRotate{},
			opt.DSE{},
			opt.CCP{},
			opt.DCE{},
			opt.Sched{},
			opt.SimplifyCFG{},
		)
		return ps
	case "Os", "Oz":
		ps := append(base,
			opt.IPAPureConst{},
			opt.Inline{MaxInstrs: inlineBudget(level)},
			opt.SimplifyCFG{},
			opt.InstCombine{},
			opt.CCP{},
			opt.VRP{},
			opt.CopyProp{},
			opt.SROA{},
			opt.IVSimplify{},
			opt.LSR{},
		)
		if level == "Oz" {
			ps = append(ps, opt.LoopDelete{})
		}
		ps = append(ps,
			opt.DSE{},
			opt.CCP{},
			opt.DCE{},
			opt.Sched{},
			opt.SimplifyCFG{},
		)
		return ps
	}
	return nil
}

// inlineBudget returns the callee-size threshold per level; size-optimizing
// levels inline less, which (as the paper observes for -Os) indirectly
// preserves more debug information.
func inlineBudget(level string) int {
	switch level {
	case "Og", "O1":
		return 24
	case "Os", "Oz":
		return 16
	default:
		return 40
	}
}

// unrollBudget grows in newer releases.
func unrollBudget(vi int) int {
	if vi >= 3 {
		return 4
	}
	return 2
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
