// Package compiler is the top-level driver of the simulated toolchain. It
// models two compiler families — "gc" (gcc-like) and "cl" (clang-like) —
// with a series of releases each, per-level pass pipelines, and the defect
// registry that decides which catalogued debug-information bugs are active
// for a given (family, version) pair. The paper's experiments sweep exactly
// these dimensions.
package compiler

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/object"
	"repro/internal/opt"
)

// Family names a compiler family.
type Family string

// The two simulated families.
const (
	// GC is the gcc-like family (triaged via per-pass disable flags).
	GC Family = "gc"
	// CL is the clang-like family (triaged via pipeline bisection).
	CL Family = "cl"
)

// Versions per family, oldest first. The last entries are the special
// builds of the regression study: "patched" is gc trunk plus the fix for
// the shared-CFG-cleanup defect (the paper's 105158 patch), and "trunkstar"
// is cl trunk plus the partial LSR salvage fix (53855a).
var (
	GCVersions = []string{"v4", "v6", "v8", "v10", "trunk", "patched"}
	CLVersions = []string{"v5", "v7", "v9", "v11", "trunk", "trunkstar"}
)

// Levels per family. For cl, O1 is an alias of Og, as in the paper.
var (
	GCLevels = []string{"O0", "Og", "O1", "O2", "O3", "Os", "Oz"}
	CLLevels = []string{"O0", "Og", "O2", "O3", "Os", "Oz"}
)

// Config selects one compiler configuration.
type Config struct {
	Family  Family
	Version string
	Level   string
}

func (c Config) String() string {
	return fmt.Sprintf("%s-%s -%s", c.Family, c.Version, c.Level)
}

// VersionIndex returns the release ordinal of the configured version.
func (c Config) VersionIndex() int {
	vs := GCVersions
	if c.Family == CL {
		vs = CLVersions
	}
	for i, v := range vs {
		if v == c.Version {
			return i
		}
	}
	return -1
}

// Options tunes one compilation beyond the configuration.
type Options struct {
	// Disabled skips the named passes (gc-style -fno-<pass> triage).
	Disabled map[string]bool
	// BisectLimit stops the pipeline after N pass executions when >= 0
	// (cl-style -opt-bisect-limit triage). Use -1 for no limit.
	BisectLimit int
	// ExtraDefects adds defect mechanisms on top of the registry (tests).
	ExtraDefects map[string]bool
	// SuppressDefects removes mechanisms from the active set (tests).
	SuppressDefects map[string]bool
	// Stats receives pass and codegen counters when non-nil.
	Stats map[string]int
	// Schedule, when non-nil, replaces the configuration's canonical pass
	// schedule (ScheduleFor) for this compilation — the probe mechanism of
	// triage's schedule delta debugging. It applies even at O0, and
	// Disabled/BisectLimit apply on top of it.
	Schedule *opt.Schedule
	// Snapshots, when non-nil, lets Optimize resume from cached
	// schedule-prefix states and publish new ones (the engine's snapshot
	// tier). It is purely an execution shortcut — results are
	// byte-identical with or without it — and is ignored for
	// stats-exporting builds (Stats != nil), whose per-pass counters must
	// observe every execution.
	Snapshots SnapshotStore
}

// normalizeBisectLimit maps Options.BisectLimit's zero value to "no limit"
// exactly once, at the compiler boundary. The exported Options treats 0 as
// unset — a plain, un-bisected build — while the raw opt layer reads 0
// literally as "stop before the first pass". Every entry point (Compile,
// via CompileFrom, and Optimize directly) funnels through this helper so
// no call site re-implements the mapping.
func normalizeBisectLimit(limit int) int {
	if limit == 0 {
		return -1
	}
	return limit
}

// Result is a completed compilation.
type Result struct {
	Exe *object.Executable
	// Mod is the optimized IR (available for inspection and tests).
	Mod *ir.Module
	// PipelineExecutions is the number of pass executions performed,
	// which bounds the bisection search space.
	PipelineExecutions int
	// Applied lists the executed pass instances in order, e.g.
	// "lsr(main)"; index i corresponds to bisect limit i+1.
	Applied []string
}

// The compilation is staged so callers can cache and share the
// configuration-invariant work:
//
//   - Frontend lowers a program to IR. It depends only on the source, never
//     on the configuration, so one lowered module serves a whole
//     version × level matrix.
//   - Optimize deep-clones a lowered module and runs the configuration's
//     pass pipeline on the clone, leaving the input untouched.
//   - Codegen turns optimized IR into an executable.
//
// Compile runs all three; CompileFrom skips the frontend for callers that
// hold a lowered module already (the engine's Sweep does).

// Frontend lowers prog to IR. The result is independent of any Config, so
// it can be computed once per program and reused across configurations;
// pass it to CompileFrom, which never mutates it.
func Frontend(prog *minic.Program) (*ir.Module, error) {
	return ir.Lower(prog)
}

// Optimize runs cfg's pass schedule — o.Schedule if set, the canonical
// ScheduleFor(cfg) otherwise — on a deep clone of m under the
// configuration's active defects (adjusted by o) and returns the optimized
// clone plus the pipeline statistics. The input module is not modified.
// It fails only when an explicit schedule names an unregistered pass.
//
// With o.Snapshots set, the run may resume from a cached schedule-prefix
// state instead of entry 0 (see snapshot.go); the returned module and
// Result are byte-identical either way.
func Optimize(m *ir.Module, cfg Config, o Options) (*ir.Module, *opt.Result, error) {
	o.BisectLimit = normalizeBisectLimit(o.BisectLimit)
	if cfg.Level == "O0" && o.Schedule == nil {
		return m.Clone(), &opt.Result{}, nil
	}
	sched := ScheduleFor(cfg)
	canonical := true
	if o.Schedule != nil {
		canonical = o.Schedule.Equal(sched)
		sched = *o.Schedule
	}
	oo := opt.Options{
		Disabled:    o.Disabled,
		BisectLimit: o.BisectLimit,
		Defects:     activeDefects(cfg, o),
		Level:       cfg.Level,
		Stats:       o.Stats,
	}
	if o.Snapshots == nil || o.Stats != nil {
		clone := m.Clone()
		pr, err := opt.RunSchedule(clone, sched, oo)
		if err != nil {
			return nil, nil, err
		}
		return clone, pr, nil
	}
	if len(oo.Disabled) > 0 {
		eff := filterDisabled(sched, oo.Disabled)
		canonical = canonical && eff.Len() == sched.Len()
		sched, oo.Disabled = eff, nil
	}
	return optimizeResumable(m, cfg, sched, canonical, o.Snapshots, oo)
}

// Codegen turns optimized IR into an executable under the configuration's
// active defects (adjusted by o).
func Codegen(m *ir.Module, cfg Config, o Options) (*object.Executable, error) {
	prog2, info, err := codegen.Generate(m, codegen.Options{Defects: activeDefects(cfg, o), Stats: o.Stats})
	if err != nil {
		return nil, err
	}
	return object.New(prog2, info), nil
}

// activeDefects is the registry's defect set for cfg with the option
// overrides applied.
func activeDefects(cfg Config, o Options) map[string]bool {
	defects := ActiveDefects(cfg)
	for d := range o.ExtraDefects {
		defects[d] = true
	}
	for d := range o.SuppressDefects {
		delete(defects, d)
	}
	return defects
}

// Compile lowers, optimizes and code-generates prog under cfg.
func Compile(prog *minic.Program, cfg Config, o Options) (*Result, error) {
	o.BisectLimit = normalizeBisectLimit(o.BisectLimit)
	m, err := Frontend(prog)
	if err != nil {
		return nil, err
	}
	return CompileFrom(m, cfg, o)
}

// CompileFrom optimizes and code-generates a pre-lowered module under cfg.
// The module is cloned before the pipeline runs, so a cached frontend
// result can back any number of concurrent compilations.
func CompileFrom(m *ir.Module, cfg Config, o Options) (*Result, error) {
	if cfg.VersionIndex() < 0 {
		return nil, fmt.Errorf("compiler: unknown version %q for family %s", cfg.Version, cfg.Family)
	}
	optimized, pr, err := Optimize(m, cfg, o)
	if err != nil {
		return nil, err
	}
	res := &Result{Mod: optimized, PipelineExecutions: pr.Executions, Applied: pr.Applied}
	exe, err := Codegen(optimized, cfg, o)
	if err != nil {
		return nil, err
	}
	res.Exe = exe
	return res, nil
}

// PipelineLength returns the number of pass executions a full compilation
// of prog at cfg would perform (the bisection upper bound).
func PipelineLength(prog *minic.Program, cfg Config, disabled map[string]bool) (int, error) {
	m, err := ir.Lower(prog)
	if err != nil {
		return 0, err
	}
	if cfg.Level == "O0" {
		return 0, nil
	}
	return opt.CountExecutions(m, Pipeline(cfg), disabled), nil
}

// PassNames lists the distinct pass names of cfg's pipeline, in order of
// first appearance: the flag-disable triage search space.
func PassNames(cfg Config) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range Pipeline(cfg) {
		if !seen[p.Name()] {
			seen[p.Name()] = true
			out = append(out, p.Name())
		}
	}
	return out
}
