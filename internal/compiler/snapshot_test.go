package compiler

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/opt"
)

// mapSnapshots is the simplest possible SnapshotStore: an unbounded map
// shared across compilations, namespaced by SnapshotKeyBase exactly like
// the engine's LRU adapter, with counters for asserting that resumes
// actually happened.
type mapSnapshots struct {
	m           map[string]*Snapshot
	hits, saves int
}

func newMapSnapshots() *mapSnapshots {
	return &mapSnapshots{m: map[string]*Snapshot{}}
}

// forConfig returns the store view Optimize should be handed for cfg: keys
// are prefixed with SnapshotKeyBase so configurations with different
// defect sets or level salts never trade states.
func (s *mapSnapshots) forConfig(cfg Config, o Options) SnapshotStore {
	return &keyedSnapshots{s: s, base: SnapshotKeyBase(cfg, o)}
}

type keyedSnapshots struct {
	s    *mapSnapshots
	base string
}

func (k *keyedSnapshots) Lookup(digests []string, maxExec int) (int, *Snapshot, bool) {
	for i := len(digests) - 1; i >= 1; i-- {
		snap, ok := k.s.m[k.base+"|"+digests[i]]
		if !ok {
			continue
		}
		if maxExec >= 0 && snap.Executions > maxExec {
			continue
		}
		k.s.hits++
		return i, snap, true
	}
	return 0, nil, false
}

func (k *keyedSnapshots) Save(digest string, snap *Snapshot) {
	k.s.saves++
	k.s.m[k.base+"|"+digest] = snap
}

// optimizeBoth runs Optimize cold and snapshot-assisted and fails the test
// unless the module, execution count and applied log are identical.
func optimizeBoth(t *testing.T, m *ir.Module, cfg Config, o Options, store *mapSnapshots, label string) {
	t.Helper()
	cold := o
	cold.Snapshots = nil
	wantMod, wantRes, err := Optimize(m, cfg, cold)
	if err != nil {
		t.Fatalf("%s %s: cold optimize: %v", label, cfg, err)
	}
	warm := o
	warm.Snapshots = store.forConfig(cfg, o)
	gotMod, gotRes, err := Optimize(m, cfg, warm)
	if err != nil {
		t.Fatalf("%s %s: snapshot optimize: %v", label, cfg, err)
	}
	if gotMod.String() != wantMod.String() {
		t.Errorf("%s %s: snapshot-assisted module differs from cold run", label, cfg)
	}
	if gotRes.Executions != wantRes.Executions {
		t.Errorf("%s %s: executions %d, want %d", label, cfg, gotRes.Executions, wantRes.Executions)
	}
	if !reflect.DeepEqual(gotRes.Applied, wantRes.Applied) {
		t.Errorf("%s %s: applied mismatch:\ngot  %v\nwant %v", label, cfg, gotRes.Applied, wantRes.Applied)
	}
}

// TestOptimizeSnapshotEquivalence is the compiler-layer half of the
// byte-identity contract: with a shared snapshot store, every combination
// of level, disabled passes, bisect budget and explicit schedule produces
// the exact module and Result a cold run does — while the second sweep of
// the same matrix resumes from cached prefixes.
func TestOptimizeSnapshotEquivalence(t *testing.T) {
	prog := minic.MustParse(testPrograms[0])
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	store := newMapSnapshots()
	for round := 0; round < 2; round++ {
		for _, cfg := range allConfigs() {
			optimizeBoth(t, m, cfg, Options{}, store, fmt.Sprintf("round%d/plain", round))
			optimizeBoth(t, m, cfg, Options{Disabled: map[string]bool{"dce": true, "lsr": true}},
				store, fmt.Sprintf("round%d/disabled", round))
		}
	}
	if store.hits == 0 {
		t.Fatal("two full sweeps of the matrix never resumed from a snapshot")
	}

	// Ascending bisect budgets over one config: every probe must stitch a
	// mid-pipeline partial entry correctly, and later probes chain off the
	// final-boundary snapshots earlier ones published.
	cfg := Config{Family: CL, Version: "trunk", Level: "O2"}
	n := opt.CountExecutions(m, Pipeline(cfg), nil)
	for limit := 1; limit <= n; limit++ {
		optimizeBoth(t, m, cfg, Options{BisectLimit: limit}, store, fmt.Sprintf("bisect%d", limit))
	}

	// Explicit (ddmin-probe-style) schedules: subsets of the canonical one
	// share prefixes with the canonical runs above and with each other.
	full := ScheduleFor(cfg)
	for cut := 1; cut < full.Len(); cut += 3 {
		sub := opt.Schedule{Entries: append([]opt.Entry{}, full.Entries[:cut]...)}
		optimizeBoth(t, m, cfg, Options{Schedule: &sub}, store, fmt.Sprintf("explicit%d", cut))
	}
}

// TestSnapshotKeyBaseSeparatesDefectSets: counterfactual probe builds
// (ExtraDefects/SuppressDefects) and different versions must key distinct
// snapshot namespaces even when their schedules agree.
func TestSnapshotKeyBaseSeparatesDefectSets(t *testing.T) {
	cfg := Config{Family: GC, Version: "trunk", Level: "O2"}
	plain := SnapshotKeyBase(cfg, Options{})
	if sup := SnapshotKeyBase(cfg, Options{SuppressDefects: map[string]bool{"gc-cleanupcfg-drop": true}}); sup == plain {
		t.Error("suppressing a defect did not change the snapshot key base")
	}
	if ext := SnapshotKeyBase(cfg, Options{ExtraDefects: map[string]bool{"zz-test-defect": true}}); ext == plain {
		t.Error("adding a defect did not change the snapshot key base")
	}
	if v4 := SnapshotKeyBase(Config{Family: GC, Version: "v4", Level: "O2"}, Options{}); v4 == plain {
		t.Error("a different version did not change the snapshot key base")
	}
}

// TestBisectLimitZeroCompilerTreatsAsUnlimited pins the normalization
// satellite at the exported boundary: Options.BisectLimit 0 means "no
// limit" for both Compile and Optimize — identical to an explicit -1 —
// while the raw opt layer's literal reading of 0 is pinned in
// internal/opt's TestBisectLimitZeroRawLayer.
func TestBisectLimitZeroCompilerTreatsAsUnlimited(t *testing.T) {
	prog := minic.MustParse(testPrograms[0])
	cfg := Config{Family: CL, Version: "trunk", Level: "O2"}
	want, err := Compile(prog, cfg, Options{BisectLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Compile(prog, cfg, Options{BisectLimit: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.PipelineExecutions != want.PipelineExecutions || got.PipelineExecutions == 0 {
		t.Errorf("limit 0 executed %d passes, limit -1 executed %d; want equal and nonzero",
			got.PipelineExecutions, want.PipelineExecutions)
	}
	if !reflect.DeepEqual(got.Applied, want.Applied) {
		t.Errorf("limit 0 applied %v, limit -1 applied %v", got.Applied, want.Applied)
	}
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := Optimize(m, cfg, Options{BisectLimit: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != want.PipelineExecutions {
		t.Errorf("Optimize with limit 0 ran %d executions, want %d", res.Executions, want.PipelineExecutions)
	}
}

// TestPipelineCanonicalSchedulePanic pins the documented failure mode: the
// canonical schedules may only name registered passes, and a registry
// regression must surface as a panic at Pipeline, not as a silent
// mis-compile downstream.
func TestPipelineCanonicalSchedulePanic(t *testing.T) {
	restore := opt.RemoveRegisteredPassForTest("mem2reg")
	defer restore()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Pipeline materialized a canonical schedule naming an unregistered pass; want panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "canonical schedule for") || !strings.Contains(msg, "does not materialize") {
			t.Fatalf("panic message %q, want the documented \"canonical schedule for ... does not materialize\" form", msg)
		}
	}()
	Pipeline(Config{Family: GC, Version: "trunk", Level: "O2"})
}
