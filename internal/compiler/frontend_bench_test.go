package compiler

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/minic"
)

// benchFrontendProgram builds a program of nfuncs non-trivial helpers plus
// main, the shape the incremental frontend is for: many functions, of
// which a mutation or reduction step touches one.
func benchFrontendProgram(tb testing.TB, nfuncs int) *minic.Program {
	var sb strings.Builder
	sb.WriteString("int g1 = 1;\nvolatile int g2;\nint a[8] = {1, 2, 3, 4, 5, 6, 7, 8};\n")
	for i := 0; i < nfuncs; i++ {
		fmt.Fprintf(&sb, `int fn%d(int x) {
  int acc = %d;
  int i = 0;
  for (; i < 8; i = i + 1) {
    acc = acc + a[i] * x;
    if (acc > 100) {
      acc = acc - g1;
    }
  }
  g2 = acc;
  return acc;
}
`, i, i)
	}
	sb.WriteString("int main(void) {\n  int s = 0;\n")
	for i := 0; i < nfuncs; i++ {
		fmt.Fprintf(&sb, "  s = s + fn%d(s);\n", i)
	}
	sb.WriteString("  return s;\n}\n")
	prog, err := minic.Parse(sb.String())
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	minic.AssignLines(prog)
	if err := minic.Check(prog); err != nil {
		tb.Fatalf("check: %v", err)
	}
	return prog
}

// frozenFnCache serves reads from the wrapped cache but drops writes, so a
// benchmark can replay "this exact delta arrives cold" forever.
type frozenFnCache struct{ FnCache }

func (frozenFnCache) AddFunc(string, *FnArtifact)      {}
func (frozenFnCache) AddGlobals(string, *GlobalsTable) {}

// warmFnCache returns a cache pre-populated with prog's lowering.
func warmFnCache(tb testing.TB, prog *minic.Program) FnCache {
	cache := NewMemFnCache()
	if _, _, err := FrontendIncremental(prog, cache); err != nil {
		tb.Fatal(err)
	}
	return cache
}

func BenchmarkFrontendWhole(b *testing.B) {
	prog := benchFrontendProgram(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Frontend(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontendIncremental measures the three states of the
// per-function tier: a cold cache (every function lowers, the overhead
// bound), a warm cache seeing a one-function edit (the fuzz-mutant /
// reduction-candidate hot path), and a warm cache seeing the identical
// program again (pure assembly). The benchmarks call the Src entrypoint
// with a pre-computed rendering, as the engine does: the render is paid
// once per program by the module-level cache key on the whole-program and
// incremental paths alike, so it is excluded from the stage comparison
// (Frontend does not render either).
func BenchmarkFrontendIncremental(b *testing.B) {
	prog := benchFrontendProgram(b, 10)
	progSrc := minic.Render(prog)
	parseMutant := func(src string) (*minic.Program, string) {
		m, err := minic.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		minic.AssignLines(m)
		if err := minic.Check(m); err != nil {
			b.Fatal(err)
		}
		return m, minic.Render(m)
	}
	// The changed mutant flips an operator inside fn4 — a same-shape body
	// edit, the typical fuzz mutation: every other function keeps its line
	// and is shared zero-copy.
	changed, changedSrc := parseMutant(strings.Replace(progSrc,
		"      acc = acc - g1;\n    }\n  }\n  g2 = acc;\n  return acc;\n}\nint fn5",
		"      acc = acc + g1;\n    }\n  }\n  g2 = acc;\n  return acc;\n}\nint fn5", 1))
	// The deleted mutant removes one statement from fn4 — the typical
	// reduction candidate: every function below it shifts lines and is
	// rebased by clone.
	deleted, deletedSrc := parseMutant(strings.Replace(progSrc,
		"  g2 = acc;\n  return acc;\n}\nint fn5", "  return acc;\n}\nint fn5", 1))

	b.Run("cold", func(b *testing.B) {
		relowered := 0
		for i := 0; i < b.N; i++ {
			_, n, err := FrontendIncrementalSrc(prog, progSrc, NewMemFnCache())
			if err != nil {
				b.Fatal(err)
			}
			relowered = n
		}
		b.ReportMetric(float64(relowered), "relowered/op")
	})
	b.Run("one_changed", func(b *testing.B) {
		cache := frozenFnCache{warmFnCache(b, prog)}
		relowered := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, n, err := FrontendIncrementalSrc(changed, changedSrc, cache)
			if err != nil {
				b.Fatal(err)
			}
			relowered = n
		}
		if relowered != 1 {
			b.Fatalf("one-function edit relowered %d functions, want 1", relowered)
		}
		b.ReportMetric(float64(relowered), "relowered/op")
	})
	b.Run("one_deleted", func(b *testing.B) {
		cache := frozenFnCache{warmFnCache(b, prog)}
		relowered := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, n, err := FrontendIncrementalSrc(deleted, deletedSrc, cache)
			if err != nil {
				b.Fatal(err)
			}
			relowered = n
		}
		if relowered != 1 {
			b.Fatalf("one-statement deletion relowered %d functions, want 1", relowered)
		}
		b.ReportMetric(float64(relowered), "relowered/op")
	})
	b.Run("unchanged", func(b *testing.B) {
		cache := frozenFnCache{warmFnCache(b, prog)}
		relowered := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, n, err := FrontendIncrementalSrc(prog, progSrc, cache)
			if err != nil {
				b.Fatal(err)
			}
			relowered = n
		}
		if relowered != 0 {
			b.Fatalf("unchanged program relowered %d functions, want 0", relowered)
		}
		b.ReportMetric(float64(relowered), "relowered/op")
	})
}
