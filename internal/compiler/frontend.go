package compiler

import (
	"strconv"
	"strings"

	"repro/internal/ir"
	"repro/internal/minic"
)

// Function-granular incremental frontend. The engine's workloads are
// thousands of near-identical compiles — fuzz mutants, reduction
// candidates, program deltas — where almost every function body is
// unchanged between consecutive programs. FrontendIncremental assembles a
// lowered module from per-function cache entries, re-lowering only the
// functions whose (body, deps) fingerprint changed and cloning the rest,
// so a one-function edit pays for one function's lowering instead of the
// whole program's.
//
// Soundness rests on LowerFunc's input contract: a function's IR is
// determined by its canonical body text, the signature digest of the
// symbols it references (minic.FnFingerprint covers both), the globals
// table it resolves against, and its absolute start line. The first two
// form the cache key; the last two are repaired at assembly time by
// ir.CloneFuncInto (global remap by name + uniform line shift). When the
// function sits at the same line and the very same globals table instance,
// the cached IR is shared without any copy — frontend modules are
// immutable by convention (Optimize clones before running passes).

// GlobalsTable is a cached lowered globals prologue: the []*ir.Global a
// set of function lowerings resolve their global operands against. Entries
// are keyed by GlobalsKey; pointer identity of the table decides whether a
// cached function can be reused zero-copy.
type GlobalsTable struct {
	Globals []*ir.Global
}

// FnArtifact is one cached function lowering: the IR plus the globals
// table it was lowered against. Alt holds the most recent rebase of Fn to
// another start line, if any: reduction scans alternate between a small
// set of line offsets (each deletion span shifts everything below it), and
// keeping two positions per function makes the alternation zero-copy in
// both directions.
type FnArtifact struct {
	Fn    *ir.Func
	Alt   *ir.Func
	Table *GlobalsTable
}

// FnCache stores per-function frontend artifacts. Implementations must be
// safe for the caller's concurrency (the engine adapts its shared LRU; the
// in-memory MemFnCache is single-goroutine).
type FnCache interface {
	GetFunc(key string) (*FnArtifact, bool)
	AddFunc(key string, a *FnArtifact)
	GetGlobals(key string) (*GlobalsTable, bool)
	AddGlobals(key string, t *GlobalsTable)
}

// FnKey is the cache key for one function's lowering within prog: both
// fingerprint hashes paired with the full body and deps texts, so a hash
// collision cannot alias two functions (the same hash-plus-text scheme the
// engine uses for whole programs).
func FnKey(prog *minic.Program, fd *minic.FuncDecl) string {
	return fnKeyFromParts(minic.FnSource(fd), minic.FnDepsSource(prog, fd))
}

// fnKeyFromParts builds FnKey's "%016x|%016x|body\x00deps" layout without
// going through fmt: key construction sits on the assembly hot path, once
// per function per program.
func fnKeyFromParts(body, deps string) string {
	var b strings.Builder
	b.Grow(34 + len(body) + 1 + len(deps))
	writeHex16(&b, minic.FingerprintSource(body))
	b.WriteByte('|')
	writeHex16(&b, minic.FingerprintSource(deps))
	b.WriteByte('|')
	b.WriteString(body)
	b.WriteByte(0)
	b.WriteString(deps)
	return b.String()
}

// writeHex16 writes v as exactly 16 lower-case hex digits ("%016x").
func writeHex16(b *strings.Builder, v uint64) {
	var buf [16]byte
	s := strconv.AppendUint(buf[:0], v, 16)
	for i := len(s); i < 16; i++ {
		b.WriteByte('0')
	}
	b.Write(s)
}

// GlobalsKey is the cache key for prog's lowered globals table.
func GlobalsKey(prog *minic.Program) string {
	src := minic.GlobalsSource(prog)
	var b strings.Builder
	b.Grow(17 + len(src))
	writeHex16(&b, minic.FingerprintSource(src))
	b.WriteByte('|')
	b.WriteString(src)
	return b.String()
}

// FrontendIncremental lowers prog like Frontend, but assembles the module
// from cache: functions whose FnKey is cached are cloned (or shared
// zero-copy when both their start line and globals table are unchanged),
// and only the rest are lowered fresh. It returns the assembled module and
// the number of functions that had to be re-lowered. A nil cache degrades
// to a throwaway in-memory cache (every function lowers fresh).
//
// The assembled module is byte-identical — rendered IR, traces, DWARF
// classification — to Frontend(prog)'s result.
func FrontendIncremental(prog *minic.Program, cache FnCache) (*ir.Module, int, error) {
	return FrontendIncrementalSrc(prog, minic.Render(prog), cache)
}

// FrontendIncrementalSrc is FrontendIncremental for a caller that already
// holds prog's canonical rendering (the engine renders every program once
// for its module-level cache key, so the per-function body texts are
// slices of a string it has anyway); src must equal minic.Render(prog).
func FrontendIncrementalSrc(prog *minic.Program, src string, cache FnCache) (*ir.Module, int, error) {
	if cache == nil {
		cache = NewMemFnCache()
	}
	gkey := GlobalsKey(prog)
	table, ok := cache.GetGlobals(gkey)
	var m *ir.Module
	if ok {
		// Globals occupy lines 1..N of the canonical layout, so a table
		// cached under the same rendered prologue carries the right
		// DeclLines already.
		m = &ir.Module{Globals: table.Globals, NLines: ir.ProgramLines(prog)}
	} else {
		m = ir.LowerGlobals(prog)
		table = &GlobalsTable{Globals: m.Globals}
		cache.AddGlobals(gkey, table)
	}
	relowered := 0
	// All function body texts are slices of the one whole-program render,
	// and the dependency digests share one signature index, instead of a
	// per-function render and declaration scan each.
	bodies := minic.FnSourcesFromRender(prog, src)
	deps := minic.NewFnDepsIndex(prog)
	for i, fd := range prog.Funcs {
		key := fnKeyFromParts(bodies[i], deps.Source(fd))
		if art, ok := cache.GetFunc(key); ok {
			if art.Table == table {
				if fd.Line == art.Fn.Line {
					m.Funcs = append(m.Funcs, art.Fn)
					continue
				}
				if art.Alt != nil && fd.Line == art.Alt.Line {
					m.Funcs = append(m.Funcs, art.Alt)
					continue
				}
				// Same globals, new position: shift lines, skip the remap,
				// and rebase the cache entry to the position just produced
				// (the key is position-independent, so any line is a valid
				// entry). A reduction scan shifts the same functions to the
				// same few lines candidate after candidate; with the
				// previous position retained as Alt, every repeat of either
				// is shared zero-copy instead of cloned again.
				nf := ir.CloneFuncShift(art.Fn, fd.Line-art.Fn.Line)
				m.Funcs = append(m.Funcs, nf)
				cache.AddFunc(key, &FnArtifact{Fn: nf, Alt: art.Fn, Table: table})
				continue
			}
			nf := ir.CloneFuncInto(art.Fn, m, fd.Line-art.Fn.Line)
			m.Funcs = append(m.Funcs, nf)
			cache.AddFunc(key, &FnArtifact{Fn: nf, Table: table})
			continue
		}
		lf, err := ir.LowerFunc(prog, m, fd)
		if err != nil {
			return nil, relowered, err
		}
		relowered++
		m.Funcs = append(m.Funcs, lf)
		cache.AddFunc(key, &FnArtifact{Fn: lf, Table: table})
	}
	return m, relowered, nil
}

// MemFnCache is an unbounded in-memory FnCache for tests, benchmarks and
// one-shot tools. It is not safe for concurrent use; the engine backs
// FnCache with its shared LRU instead.
type MemFnCache struct {
	funcs   map[string]*FnArtifact
	globals map[string]*GlobalsTable
}

// NewMemFnCache returns an empty MemFnCache.
func NewMemFnCache() *MemFnCache {
	return &MemFnCache{funcs: map[string]*FnArtifact{}, globals: map[string]*GlobalsTable{}}
}

func (c *MemFnCache) GetFunc(key string) (*FnArtifact, bool) {
	a, ok := c.funcs[key]
	return a, ok
}

func (c *MemFnCache) AddFunc(key string, a *FnArtifact) { c.funcs[key] = a }

func (c *MemFnCache) GetGlobals(key string) (*GlobalsTable, bool) {
	t, ok := c.globals[key]
	return t, ok
}

func (c *MemFnCache) AddGlobals(key string, t *GlobalsTable) { c.globals[key] = t }
