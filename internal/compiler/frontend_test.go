package compiler

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/debugger"
	"repro/internal/minic"
)

func parseChecked(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	minic.AssignLines(prog)
	if err := minic.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

// goldenPrograms loads the repo's golden corpus (testdata/golden/*.mc).
func goldenPrograms(t *testing.T) map[string]*minic.Program {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "golden", "*.mc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden corpus found: %v", err)
	}
	out := map[string]*minic.Program{}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(filepath.Base(p), ".mc")] = parseChecked(t, string(src))
	}
	return out
}

// gridConfigs is the full version × level matrix of both families.
func gridConfigs() []Config {
	var out []Config
	for _, v := range GCVersions {
		for _, l := range GCLevels {
			out = append(out, Config{Family: GC, Version: v, Level: l})
		}
	}
	for _, v := range CLVersions {
		for _, l := range CLLevels {
			out = append(out, Config{Family: CL, Version: v, Level: l})
		}
	}
	return out
}

func familyDebugger(f Family) debugger.Debugger {
	if f == CL {
		return debugger.NewLLDB(DebuggerDefects("lldb"))
	}
	return debugger.NewGDB(DebuggerDefects("gdb"))
}

// TestFrontendIncrementalEquivalence pins the assembled-from-parts module
// against the whole-program frontend over the golden corpus: identical
// structure (deep equality and rendered IR) both on a cold cache and on a
// warm reassembly, and identical downstream artifacts — applied-pass log
// and full debugger trace — across the whole version × level grid.
func TestFrontendIncrementalEquivalence(t *testing.T) {
	grid := gridConfigs()
	for name, prog := range goldenPrograms(t) {
		t.Run(name, func(t *testing.T) {
			whole, err := Frontend(prog)
			if err != nil {
				t.Fatal(err)
			}
			cache := NewMemFnCache()
			cold, n, err := FrontendIncremental(prog, cache)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(prog.Funcs) {
				t.Fatalf("cold assembly relowered %d functions, want all %d", n, len(prog.Funcs))
			}
			if !reflect.DeepEqual(cold, whole) {
				t.Fatalf("cold assembly differs from whole-program frontend")
			}
			warm, n, err := FrontendIncremental(prog, cache)
			if err != nil {
				t.Fatal(err)
			}
			if n != 0 {
				t.Fatalf("warm assembly relowered %d functions, want 0", n)
			}
			if !reflect.DeepEqual(warm, whole) {
				t.Fatalf("warm assembly differs from whole-program frontend")
			}
			if warm.String() != whole.String() {
				t.Fatalf("warm assembly renders differently:\n%s\nvs\n%s", warm, whole)
			}
			// An unchanged program reassembles zero-copy: the very same
			// function instances, not equal clones.
			for i := range warm.Funcs {
				if warm.Funcs[i] != cold.Funcs[i] {
					t.Fatalf("warm assembly cloned unchanged function %s", warm.Funcs[i].Name)
				}
			}
			for _, cfg := range grid {
				resW, err := CompileFrom(whole, cfg, Options{})
				if err != nil {
					t.Fatalf("%v: whole compile: %v", cfg, err)
				}
				resI, err := CompileFrom(warm, cfg, Options{})
				if err != nil {
					t.Fatalf("%v: incremental compile: %v", cfg, err)
				}
				if !reflect.DeepEqual(resW.Applied, resI.Applied) {
					t.Fatalf("%v: applied-pass logs differ:\n%v\nvs\n%v", cfg, resW.Applied, resI.Applied)
				}
				dbg := familyDebugger(cfg.Family)
				trW, err := debugger.Record(resW.Exe, dbg)
				if err != nil {
					t.Fatalf("%v: whole trace: %v", cfg, err)
				}
				trI, err := debugger.Record(resI.Exe, dbg)
				if err != nil {
					t.Fatalf("%v: incremental trace: %v", cfg, err)
				}
				if !reflect.DeepEqual(trW, trI) {
					t.Fatalf("%v: traces differ between whole and incremental frontends", cfg)
				}
			}
		})
	}
}

const mutationBase = `int g1 = 7;
volatile int g2;
int helper(int x) {
  g1 = g1 + x;
  return g1;
}
int twice(int x) {
  return helper(x) + helper(x);
}
int main(void) {
  int i = 0;
  for (; i < 4; i = i + 1) {
    g2 = twice(i);
  }
  return g1;
}
`

// mutate asserts the exact re-lower count of assembling the mutated
// program against a cache warmed on the base, and that the assembled
// module still matches the whole-program frontend of the mutant.
func assertMutation(t *testing.T, cache FnCache, src string, wantRelowered int) {
	t.Helper()
	prog := parseChecked(t, src)
	whole, err := Frontend(prog)
	if err != nil {
		t.Fatal(err)
	}
	inc, n, err := FrontendIncremental(prog, cache)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantRelowered {
		t.Fatalf("relowered %d functions, want %d", n, wantRelowered)
	}
	if !reflect.DeepEqual(inc, whole) {
		t.Fatalf("assembled module differs from whole-program frontend:\n%s\nvs\n%s", inc, whole)
	}
}

// TestFrontendIncrementalMutation is the one-edit contract: editing one
// function re-lowers exactly that function, whatever the edit does to the
// line positions of everything below it.
func TestFrontendIncrementalMutation(t *testing.T) {
	cache := NewMemFnCache()
	assertMutation(t, cache, mutationBase, 3) // cold: every function lowers

	// Edit the body of the middle function without changing its length:
	// unchanged functions reuse at delta 0.
	assertMutation(t, cache, strings.Replace(mutationBase,
		"return helper(x) + helper(x);", "return helper(x) + helper(x + 1);", 1), 1)

	// Delete a statement from the first function: everything below shifts,
	// so unchanged functions are reused via clone + line rebase.
	assertMutation(t, cache, strings.Replace(mutationBase,
		"  g1 = g1 + x;\n", "", 1), 1)

	// Change a global initialiser: no function body or deps change — zero
	// re-lowers against a fresh globals table.
	assertMutation(t, cache, strings.Replace(mutationBase,
		"int g1 = 7;", "int g1 = 9;", 1), 0)

	// Change a referenced global's type: every function touching it (all
	// three reference g1 or call someone who does? — only the functions
	// whose own bodies name g1) re-lowers; here helper and main do.
	assertMutation(t, cache, strings.Replace(mutationBase,
		"int g1 = 7;", "unsigned int g1 = 7;", 1), 2)
}
