package compiler

import "repro/internal/bugs"

// The defect registry: which catalogued mechanisms are active per (family,
// version). Mechanisms are introduced when the corresponding transformation
// gains aggressiveness and disappear when a release fixes them, giving the
// cross-version trends of the paper's Figure 1, Table 4 and Figure 4.

// span is a half-open version-ordinal interval [From, To); To < 0 means
// "still present".
type span struct {
	Mechanism string
	From, To  int
}

var gcDefects = []span{
	// Fixed by the "patched" build (the 105158 patch): version 5.
	{bugs.GCCleanupCFGDrop, 0, 5},
	{bugs.GCCCPNoConstValue, 0, -1},
	{bugs.GCCCPRangeShrink, 0, -1},
	// EVRP arrived in the v8 release.
	{bugs.GCVRPDrop, 2, -1},
	// Trunk regressions: new DCE/DSE cleanups dropped metadata.
	{bugs.GCDCEDrop, 4, -1},
	{bugs.GCDSEDrop, 4, -1},
	{bugs.GCCopyPropRange, 0, -1},
	{bugs.GCSRAConstArgs, 0, -1},
	{bugs.GCInlineWrongLoc, 0, -1},
	{bugs.GCAddrTakenReg, 0, -1},
	{bugs.GCTopLevelReorder, 0, -1},
	{bugs.GCSchedWrongFrame, 0, -1},
	{bugs.GCPureConstDrop, 0, -1},
	{bugs.GCIPARefAddressable, 0, -1},
	{bugs.GCUnnamedScopeRange, 0, -1},
	// Early releases tracked far less: pre-v8 register promotion only
	// recorded constant-valued debug updates.
	{bugs.LegacyWeakTracking, 0, 2},
}

var clDefects = []span{
	{bugs.CLSimplifyCFGDrop, 0, -1},
	{bugs.CLInstCombineDrop, 0, -1},
	// The partial LSR salvage fix lands in "trunkstar" (version 5).
	{bugs.CLLSRNoSalvage, 0, 5},
	{bugs.CLLSRNoSalvageSize, 0, -1},
	{bugs.CLLoopRotateDrop, 0, -1},
	// Loop deletion at -Og only exists from trunk on; the drop follows it.
	{bugs.CLLoopDeleteDrop, 3, -1},
	{bugs.CLIVSimplifyDrop, 0, -1},
	{bugs.CLInlineAbstractOnly, 0, -1},
	{bugs.CLSROAPartialRestore, 0, -1},
	{bugs.CLSchedIncomplete, 0, -1},
	{bugs.CLISelGlobalLoadDrop, 0, -1},
	// Aggressive transformations added around the v7 release regressed
	// -Og/-Os availability before later releases recovered.
	{bugs.LegacyWeakTracking, 0, 2},
}

// ActiveDefects returns the mechanism set for a configuration.
func ActiveDefects(cfg Config) map[string]bool {
	vi := cfg.VersionIndex()
	table := gcDefects
	if cfg.Family == CL {
		table = clDefects
	}
	out := map[string]bool{}
	for _, s := range table {
		if vi >= s.From && (s.To < 0 || vi < s.To) {
			out[s.Mechanism] = true
		}
	}
	return out
}

// DebuggerDefects returns the active defect set for the named debugger
// ("gdb" or "lldb") — the latest stable releases the paper used, whose
// catalogued bugs are all present.
func DebuggerDefects(name string) map[string]bool {
	switch name {
	case "gdb":
		return map[string]bool{bugs.GDBEmptyRange: true, bugs.GDBConcreteMismatch: true}
	case "lldb":
		return map[string]bool{bugs.LLDBAbstractOnly: true}
	}
	return nil
}

// NativeDebugger names the reference debugger of a family, as used by the
// paper's pipeline (gdb for gcc, lldb for clang).
func NativeDebugger(f Family) string {
	if f == GC {
		return "gdb"
	}
	return "lldb"
}
