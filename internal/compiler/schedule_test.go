package compiler

import (
	"testing"

	"repro/internal/minic"
	"repro/internal/opt"
)

// TestScheduleRoundTripsGrid pins that for every configuration the
// canonical schedule (a) materializes through the registry, (b) captures
// back to itself from the materialized passes, and (c) survives the
// string form — so schedules really are first-class values equivalent to
// the pass lists they describe.
func TestScheduleRoundTripsGrid(t *testing.T) {
	for _, cfg := range allConfigs() {
		s := ScheduleFor(cfg)
		ps := Pipeline(cfg)
		if got := opt.ScheduleOf(ps); !got.Equal(s) {
			t.Errorf("%s: ScheduleOf(Pipeline) = %q, want %q", cfg, got, s)
		}
		back, err := opt.ParseSchedule(s.String())
		if err != nil {
			t.Errorf("%s: ParseSchedule(%q): %v", cfg, s, err)
			continue
		}
		if !back.Equal(s) {
			t.Errorf("%s: string round trip %q != %q", cfg, back, s)
		}
		if cfg.Level == "O0" && s.Len() != 0 {
			t.Errorf("%s: O0 schedule not empty: %q", cfg, s)
		}
	}
}

// TestExplicitDefaultScheduleMatchesImplicit pins that compiling with
// Options.Schedule set to the canonical schedule is indistinguishable
// from the default path — the property that lets the engine key both to
// the same cache slot.
func TestExplicitDefaultScheduleMatchesImplicit(t *testing.T) {
	prog := minic.MustParse(`
int main(void) {
  int i = 0;
  int acc = 1;
  while (i < 6) {
    acc = acc + acc;
    i = i + 1;
  }
  return acc;
}
`)
	for _, cfg := range []Config{
		{Family: GC, Version: "trunk", Level: "O2"},
		{Family: CL, Version: "trunk", Level: "O3"},
	} {
		def, err := Compile(prog, cfg, Options{})
		if err != nil {
			t.Fatalf("%s: default compile: %v", cfg, err)
		}
		s := ScheduleFor(cfg)
		exp, err := Compile(prog, cfg, Options{Schedule: &s})
		if err != nil {
			t.Fatalf("%s: explicit compile: %v", cfg, err)
		}
		if def.Mod.String() != exp.Mod.String() {
			t.Errorf("%s: explicit canonical schedule produced different IR", cfg)
		}
		if def.PipelineExecutions != exp.PipelineExecutions {
			t.Errorf("%s: executions differ: %d vs %d", cfg, def.PipelineExecutions, exp.PipelineExecutions)
		}
	}
}

// TestScheduleSubsetCompiles pins the probe path of schedule delta
// debugging: an arbitrary subsequence of the canonical schedule compiles,
// and the empty schedule behaves like O0 on the optimize stage.
func TestScheduleSubsetCompiles(t *testing.T) {
	prog := minic.MustParse(`
int main(void) {
  int x = 4;
  int y = x * 3;
  return y;
}
`)
	cfg := Config{Family: GC, Version: "trunk", Level: "O2"}
	full := ScheduleFor(cfg)
	if full.Len() < 4 {
		t.Fatalf("unexpectedly short canonical schedule: %q", full)
	}
	sub := opt.Schedule{Entries: []opt.Entry{full.Entries[0], full.Entries[2]}}
	if _, err := Compile(prog, cfg, Options{Schedule: &sub}); err != nil {
		t.Fatalf("subset schedule compile: %v", err)
	}

	empty := opt.Schedule{}
	res, err := Compile(prog, cfg, Options{Schedule: &empty})
	if err != nil {
		t.Fatalf("empty schedule compile: %v", err)
	}
	o0, err := Compile(prog, Config{Family: GC, Version: "trunk", Level: "O0"}, Options{})
	if err != nil {
		t.Fatalf("O0 compile: %v", err)
	}
	if res.Mod.String() != o0.Mod.String() {
		t.Errorf("empty schedule IR differs from O0 IR")
	}

	bad := opt.Schedule{Entries: []opt.Entry{{Name: "bogus"}}}
	if _, err := Compile(prog, cfg, Options{Schedule: &bad}); err == nil {
		t.Fatalf("compile accepted an unregistered pass in an explicit schedule")
	}
}
