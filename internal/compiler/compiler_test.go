package compiler

import (
	"testing"

	"repro/internal/debugger"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/vm"
)

var testPrograms = []string{
	`
int b[10][2];
int a;
int main(void) {
  int i = 0;
  int j;
  int k;
  for (; i < 10; i = i + 1) {
    j = 0;
    k = 0;
    for (; k < 1; k = k + 1) {
      a = b[i][j * k];
    }
  }
  return a;
}`,
	`
extern void opaque(int a, int b, int c);
short a = 4;
void b(int c) {
  short v1 = 0;
  int v2;
  int v7 = (v2 = a) == 0 & c;
  opaque(v1, v2, v7);
}
int main(void) {
  b(a);
  a = 0;
  return 0;
}`,
	`
volatile int c;
int arr[2][4] = {{1, 2, 3, 4}, {5, 6, 7, 8}};
unsigned short b2[4] = {1, 2, 3, 4};
int main(void) {
  int i;
  int j;
  for (i = 0; i < 2; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) {
      c = arr[i][j];
    }
  }
  for (i = 0; i < 4; i = i + 1) {
    c = b2[i];
  }
  return 0;
}`,
	`
int zero(void) { return 0; }
int g;
extern void opaque(int x);
int main(void) {
  int x = zero() + 3;
  g = x * 2;
  opaque(x);
  return g;
}`,
	`
int b = 0;
int a;
void foo(int* d) { a = 0; }
int main(void) {
  int* v1 = &b;
  int** v2 = &v1;
f: if (a) {
    goto f;
  }
  *v2 = v1;
  foo(*v2);
  return 0;
}`,
}

func allConfigs() []Config {
	var out []Config
	for _, v := range GCVersions {
		for _, l := range GCLevels {
			out = append(out, Config{Family: GC, Version: v, Level: l})
		}
	}
	for _, v := range CLVersions {
		for _, l := range CLLevels {
			out = append(out, Config{Family: CL, Version: v, Level: l})
		}
	}
	return out
}

// TestCompileBehaviourEquivalence is the cornerstone differential test:
// every configuration's generated code must behave exactly like the
// unoptimized IR, defects and all.
func TestCompileBehaviourEquivalence(t *testing.T) {
	for pi, src := range testPrograms {
		prog := minic.MustParse(src)
		m0, err := ir.Lower(prog)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ir.Interp(m0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range allConfigs() {
			res, err := Compile(prog, cfg, Options{})
			if err != nil {
				t.Fatalf("program %d %s: compile: %v", pi, cfg, err)
			}
			if err := ir.Verify(res.Mod); err != nil {
				t.Fatalf("program %d %s: verify: %v", pi, cfg, err)
			}
			got, err := vm.Observe(res.Exe.Prog)
			if err != nil {
				t.Fatalf("program %d %s: vm: %v\n%s", pi, cfg, err, res.Exe.Prog)
			}
			if !ref.Equal(got) {
				t.Fatalf("program %d %s: behaviour differs\nref ret=%d ev=%v\ngot ret=%d ev=%v\nasm:\n%s",
					pi, cfg, ref.Ret, ref.Events, got.Ret, got.Events, res.Exe.Prog)
			}
		}
	}
}

// TestO0FullAvailability: the unoptimized build is the paper's reference:
// every declared variable must be available on every stepped line after its
// declaration.
func TestO0FullAvailability(t *testing.T) {
	prog := minic.MustParse(testPrograms[0])
	res, err := Compile(prog, Config{Family: GC, Version: "trunk", Level: "O0"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gdb := debugger.NewGDB(DebuggerDefects("gdb"))
	trace, err := debugger.Record(res.Exe, gdb)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Stops) == 0 {
		t.Fatal("no lines stepped at O0")
	}
	// Variables i, j, k are declared on lines 4-6 of the canonical layout;
	// at the innermost store line all three must be available.
	var storeLine int
	for l, s := range trace.Stops {
		if s.Frame == "main" && s.Var("k").State != debugger.NotVisible &&
			s.Var("j").State != debugger.NotVisible && l > storeLine {
			storeLine = l
		}
	}
	if storeLine == 0 {
		t.Fatalf("no line with j and k visible; trace: %v", trace.Stops)
	}
	s := trace.Stops[storeLine]
	for _, name := range []string{"i", "j", "k"} {
		if v := s.Var(name); v.State != debugger.Available {
			t.Errorf("O0: %s not available at line %d: %v", name, storeLine, v.State)
		}
	}
}

// TestOptimizedTraceRuns exercises trace recording across optimized
// configurations and both debuggers.
func TestOptimizedTraceRuns(t *testing.T) {
	prog := minic.MustParse(testPrograms[1])
	for _, cfg := range []Config{
		{GC, "trunk", "O2"}, {GC, "patched", "Og"},
		{CL, "trunk", "O3"}, {CL, "trunkstar", "Os"},
	} {
		res, err := Compile(prog, cfg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		for _, dbg := range []debugger.Debugger{
			debugger.NewGDB(DebuggerDefects("gdb")),
			debugger.NewLLDB(DebuggerDefects("lldb")),
		} {
			trace, err := debugger.Record(res.Exe, dbg)
			if err != nil {
				t.Fatalf("%s %s: %v", cfg, dbg.Name(), err)
			}
			if len(trace.Stops) == 0 {
				t.Errorf("%s %s: empty trace", cfg, dbg.Name())
			}
		}
	}
}

// TestLineCoverageOgBeatsO3: the debugger-friendly level must preserve at
// least as many steppable lines as the aggressive one (Figure 1's shape).
func TestLineCoverageShape(t *testing.T) {
	prog := minic.MustParse(testPrograms[2])
	count := func(level string) int {
		res, err := Compile(prog, Config{Family: GC, Version: "trunk", Level: level}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		info, err := res.Exe.DebugInfo()
		if err != nil {
			t.Fatal(err)
		}
		return len(info.SteppableLines())
	}
	o0, og, o3 := count("O0"), count("Og"), count("O3")
	if og > o0 {
		t.Errorf("Og lines (%d) exceed O0 (%d)", og, o0)
	}
	if o3 > og {
		t.Errorf("O3 lines (%d) exceed Og (%d)", o3, og)
	}
}

func TestBisectAndDisableKnobs(t *testing.T) {
	prog := minic.MustParse(testPrograms[0])
	cfg := Config{Family: CL, Version: "trunk", Level: "O2"}
	n, err := PipelineLength(prog, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 {
		t.Fatalf("pipeline too short: %d", n)
	}
	res, err := Compile(prog, cfg, Options{BisectLimit: n / 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.PipelineExecutions != n/2 {
		t.Errorf("bisect executed %d, want %d", res.PipelineExecutions, n/2)
	}
	// Disabling a pass keeps compilation working.
	if _, err := Compile(prog, cfg, Options{Disabled: map[string]bool{"lsr": true}}); err != nil {
		t.Fatal(err)
	}
}

func TestActiveDefectsVersionGating(t *testing.T) {
	oldGC := ActiveDefects(Config{Family: GC, Version: "v4", Level: "O2"})
	trunkGC := ActiveDefects(Config{Family: GC, Version: "trunk", Level: "O2"})
	patched := ActiveDefects(Config{Family: GC, Version: "patched", Level: "O2"})
	if !trunkGC["gc-cleanupcfg-drop"] {
		t.Error("trunk should carry the cleanup-cfg defect")
	}
	if patched["gc-cleanupcfg-drop"] {
		t.Error("patched must fix the cleanup-cfg defect")
	}
	if !oldGC["legacy-weak-tracking"] || trunkGC["legacy-weak-tracking"] {
		t.Error("legacy tracking gating wrong")
	}
	if oldGC["gc-vrp-drop"] {
		t.Error("EVRP defect should not exist before v8")
	}
	star := ActiveDefects(Config{Family: CL, Version: "trunkstar", Level: "O2"})
	if star["cl-lsr-nosalvage"] {
		t.Error("trunkstar must fix the LSR salvage defect")
	}
	if !star["cl-lsr-nosalvage-size"] {
		t.Error("trunkstar keeps the size-level LSR residue")
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{Family: GC, Version: "v8", Level: "O2"}
	if cfg.VersionIndex() != 2 {
		t.Errorf("VersionIndex = %d, want 2", cfg.VersionIndex())
	}
	if NativeDebugger(GC) != "gdb" || NativeDebugger(CL) != "lldb" {
		t.Error("native debugger mapping wrong")
	}
	if (Config{Family: GC, Version: "nope", Level: "O2"}).VersionIndex() != -1 {
		t.Error("unknown version should yield -1")
	}
	names := PassNames(Config{Family: CL, Version: "trunk", Level: "O2"})
	if len(names) < 8 {
		t.Errorf("too few pass names: %v", names)
	}
}
