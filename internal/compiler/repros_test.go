package compiler

// The repro verification lives in the compiler package (not bugs) to avoid
// an import cycle: it exercises the whole toolchain per catalogued issue.

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/debugger"
	"repro/internal/minic"
)

// availabilityOfAt compiles src under (family, version, level) and reports
// whether the named variable's availability degrades (relative to O0) on
// some line stepped in both builds.
func availabilityOfAt(t *testing.T, src, family, version, level, varName string) (degraded bool) {
	t.Helper()
	prog := minic.MustParse(src)
	run := func(lvl string) map[int]debugger.VarState {
		res, err := Compile(prog, Config{Family: Family(family), Version: version, Level: lvl}, Options{})
		if err != nil {
			t.Fatalf("%s -%s: %v", family, lvl, err)
		}
		var dbg debugger.Debugger
		if NativeDebugger(Family(family)) == "gdb" {
			dbg = debugger.NewGDB(DebuggerDefects("gdb"))
		} else {
			dbg = debugger.NewLLDB(DebuggerDefects("lldb"))
		}
		tr, err := debugger.Record(res.Exe, dbg)
		if err != nil {
			t.Fatal(err)
		}
		out := map[int]debugger.VarState{}
		for l, s := range tr.Stops {
			out[l] = s.Var(varName).State
		}
		return out
	}
	ref := run("O0")
	got := run(level)
	for line, st := range ref {
		if st != debugger.Available {
			continue
		}
		if g, ok := got[line]; ok && g != debugger.Available {
			return true
		}
	}
	return false
}

// TestCatalogReprosManifest verifies that each recorded reproduction
// program actually degrades its variable's availability under the affected
// configuration — i.e. the catalogued mechanisms fire on the paper's test
// shapes, not only on fuzzed programs.
func TestCatalogReprosManifest(t *testing.T) {
	for _, r := range bugs.Repros {
		r := r
		t.Run(r.Tracker, func(t *testing.T) {
			if !availabilityOfAt(t, r.Source, r.Family, "trunk", r.Level, r.Var) {
				t.Errorf("issue %s: %s stays fully available at %s-%s (mechanism did not fire)",
					r.Tracker, r.Var, r.Family, r.Level)
			}
		})
	}
}

// TestReproFixedVersions verifies that the fixed builds heal the issues the
// paper saw patched: 105161's mechanism family on the patched gc build and
// 53855a's on cl trunkstar.
func TestReproFixedVersions(t *testing.T) {
	lsr := bugs.ReproFor("53855a")
	if lsr == nil {
		t.Fatal("53855a repro missing")
	}
	// The partial fix removes the in-loop losses; other mechanisms may
	// still degrade the variable elsewhere, so the healed build must
	// strictly reduce the number of degraded lines (the paper verified the
	// fix the same way: LSR-attributed violations dropped, not all).
	before := degradedLines(t, lsr.Source, "cl", "trunk", "Og", "i")
	after := degradedLines(t, lsr.Source, "cl", "trunkstar", "Og", "i")
	if before == 0 {
		t.Skip("53855a does not manifest at trunk on this layout")
	}
	if after >= before {
		t.Errorf("trunkstar should reduce the degraded lines: %d -> %d", before, after)
	}
}

// degradedLines counts the lines where varName was available at O0 but not
// at the given configuration.
func degradedLines(t *testing.T, src, family, version, level, varName string) int {
	t.Helper()
	prog := minic.MustParse(src)
	states := func(lvl string) map[int]debugger.VarState {
		res, err := Compile(prog, Config{Family: Family(family), Version: version, Level: lvl}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var dbg debugger.Debugger
		if NativeDebugger(Family(family)) == "gdb" {
			dbg = debugger.NewGDB(DebuggerDefects("gdb"))
		} else {
			dbg = debugger.NewLLDB(DebuggerDefects("lldb"))
		}
		tr, err := debugger.Record(res.Exe, dbg)
		if err != nil {
			t.Fatal(err)
		}
		out := map[int]debugger.VarState{}
		for l, s := range tr.Stops {
			out[l] = s.Var(varName).State
		}
		return out
	}
	ref := states("O0")
	got := states(level)
	n := 0
	for line, st := range ref {
		if st != debugger.Available {
			continue
		}
		if g, ok := got[line]; ok && g != debugger.Available {
			n++
		}
	}
	return n
}
