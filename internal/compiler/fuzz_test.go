package compiler

import (
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/vm"
)

// TestFuzzedBehaviourEquivalence is the toolchain's miscompilation gate:
// for a population of fuzzed programs and a representative sample of
// configurations, generated code must behave exactly like unoptimized IR.
func TestFuzzedBehaviourEquivalence(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	cfgs := []Config{
		{GC, "v4", "O2"}, {GC, "v8", "Os"}, {GC, "trunk", "Og"},
		{GC, "trunk", "O1"}, {GC, "trunk", "O2"}, {GC, "trunk", "O3"},
		{GC, "trunk", "Oz"}, {GC, "patched", "O3"},
		{CL, "v5", "O2"}, {CL, "v9", "Oz"}, {CL, "trunk", "Og"},
		{CL, "trunk", "O2"}, {CL, "trunk", "O3"}, {CL, "trunk", "Os"},
		{CL, "trunkstar", "O2"},
	}
	for seed := int64(0); seed < seeds; seed++ {
		prog := fuzzgen.GenerateSeed(seed)
		m0, err := ir.Lower(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := ir.Interp(m0, 0)
		if err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		for _, cfg := range cfgs {
			res, err := Compile(prog, cfg, Options{})
			if err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, cfg, err, minic.Render(prog))
			}
			got, err := vm.Observe(res.Exe.Prog)
			if err != nil {
				t.Fatalf("seed %d %s: vm: %v\n%s", seed, cfg, err, minic.Render(prog))
			}
			if !ref.Equal(got) {
				t.Fatalf("seed %d %s: MISCOMPILATION\nref ret=%d ev=%d events\ngot ret=%d ev=%d events\nsource:\n%s\nIR:\n%s",
					seed, cfg, ref.Ret, len(ref.Events), got.Ret, len(got.Events),
					minic.Render(prog), res.Mod)
			}
		}
	}
}
