package compiler

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/ir"
	"repro/internal/opt"
)

// Optimize-stage prefix snapshots: the state of a module after the first i
// entries of a schedule ran is a pure function of (lowered module, those i
// entries, active defect set, level salt). Sibling levels of one grid
// share long schedule prefixes, bisection probes execute prefixes of one
// schedule by construction, and ddmin probes share prefixes with each
// other — so Optimize, handed a SnapshotStore, resumes from the longest
// cached prefix state and runs only the suffix. Results are byte-identical
// to from-scratch runs: the resumed module is a clone of the snapshot, and
// Executions/Applied are stitched across the boundary.

// Snapshot is one cached optimizer state: the module as it stood after a
// schedule prefix ran, plus the Result fragment needed to stitch a resumed
// run's statistics. Snapshots are immutable once published — Optimize
// clones Mod before running a suffix on it and never appends to Applied in
// place.
type Snapshot struct {
	Mod *ir.Module
	// Executions and Applied mirror opt.Result for the prefix that
	// produced Mod.
	Executions int
	Applied    []string
}

// SnapshotStore is the prefix-snapshot cache Optimize consults when
// Options.Snapshots is set (the engine adapts its shared LRU to it). A nil
// store simply optimizes from scratch.
type SnapshotStore interface {
	// Lookup returns the longest cached prefix among the digests
	// (prefixDigests[i] keys the i-entry prefix) whose recorded executions
	// fit within maxExec (-1 = unbounded) — a bisect-limited probe may only
	// resume from a state that executed at most its own budget.
	Lookup(prefixDigests []string, maxExec int) (prefixLen int, snap *Snapshot, ok bool)
	// Save publishes the state reached after the digested prefix. The
	// implementation owns eviction; Save may drop the value entirely.
	Save(prefixDigest string, snap *Snapshot)
}

// SnapshotKeyBase returns the configuration-dependent portion of a
// snapshot cache key: family, version, the active-defect-set digest and
// the level salt. The defect digest is what keeps ExtraDefects/
// SuppressDefects builds (triage's counterfactual probes) from ever
// trading states with plain builds of the same version: pass behaviour is
// a function of the active set, not of the version label alone. The level
// component is opt.LevelSalt — empty unless an active defect actually
// branches on the level, so sibling levels share freely whenever sharing
// is provably sound.
func SnapshotKeyBase(cfg Config, o Options) string {
	defects := activeDefects(cfg, o)
	names := make([]string, 0, len(defects))
	for d := range defects {
		names = append(names, d)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%s|%s|%016x|%s", cfg.Family, cfg.Version, h.Sum64(), opt.LevelSalt(defects, cfg.Level))
}

// optimizeResumable is Optimize's snapshot path: resume from the longest
// cached prefix of the effective schedule, run the suffix, publish
// checkpoints. oo.Disabled has already been folded into eff (an explicitly
// filtered schedule runs the exact executions RunSchedule-with-Disabled
// would), so prefix digests of flag-disable probes line up with everyone
// else's.
func optimizeResumable(m *ir.Module, cfg Config, eff opt.Schedule, canonical bool, snaps SnapshotStore, oo opt.Options) (*ir.Module, *opt.Result, error) {
	digests := eff.PrefixDigests()
	start := 0
	priorExec := 0
	var priorApplied []string
	var clone *ir.Module
	if pl, snap, ok := snaps.Lookup(digests, oo.BisectLimit); ok {
		start, priorExec, priorApplied = pl, snap.Executions, snap.Applied
		clone = snap.Mod.Clone()
	} else {
		clone = m.Clone()
	}
	suffix := oo
	if suffix.BisectLimit >= 0 {
		// The budget is suffix-local inside RunScheduleFrom; the prefix
		// already spent its share.
		suffix.BisectLimit -= priorExec
	}
	// Checkpoint policy: a canonical run snapshots only the boundaries a
	// sibling level of the same grid can resume from (plus the final state,
	// which ascending bisection probes chain off); an explicit schedule — a
	// ddmin probe — snapshots every boundary, because subsets and
	// complements share arbitrary prefixes with later probes.
	var keep map[int]bool
	if canonical {
		keep = checkpointLens(cfg, eff, oo.Defects)
	}
	cp := func(prefixLen int, res *opt.Result, final bool) {
		if !final && keep != nil && !keep[prefixLen] {
			return
		}
		snaps.Save(digests[prefixLen], &Snapshot{
			Mod:        clone.Clone(),
			Executions: priorExec + res.Executions,
			Applied:    stitchApplied(priorApplied, res.Applied),
		})
	}
	pr, err := opt.RunScheduleFrom(clone, eff, suffix, start, cp)
	if err != nil {
		return nil, nil, err
	}
	pr.Executions += priorExec
	if priorExec > 0 || start > 0 {
		pr.Applied = stitchApplied(priorApplied, pr.Applied)
	}
	return clone, pr, nil
}

// stitchApplied concatenates a snapshot's applied log with a suffix run's
// into a fresh slice (both inputs stay immutable/live).
func stitchApplied(prefix, suffix []string) []string {
	out := make([]string, 0, len(prefix)+len(suffix))
	return append(append(out, prefix...), suffix...)
}

// checkpointLens returns the boundaries worth snapshotting on a canonical
// run of cfg: for each sibling level of the same family and version with
// the same level salt, the length of the longest schedule prefix the two
// share — exactly the state that sibling's compilation resumes from. The
// map is small (grids have ≤ 7 levels), so canonical compiles pay a
// handful of clones, not one per entry.
func checkpointLens(cfg Config, eff opt.Schedule, defects map[string]bool) map[int]bool {
	levels := GCLevels
	if cfg.Family == CL {
		levels = CLLevels
	}
	salt := opt.LevelSalt(defects, cfg.Level)
	out := map[int]bool{}
	for _, lvl := range levels {
		if lvl == cfg.Level || opt.LevelSalt(defects, lvl) != salt {
			continue
		}
		sib := ScheduleFor(Config{Family: cfg.Family, Version: cfg.Version, Level: lvl})
		k := 0
		for k < eff.Len() && k < sib.Len() && eff.Entries[k] == sib.Entries[k] {
			k++
		}
		if k > 0 {
			out[k] = true
		}
	}
	return out
}

// filterDisabled drops the disabled entries from a schedule. Running the
// filtered schedule is execution-for-execution identical to running the
// original under Options.Disabled — RunPipeline skips disabled entries at
// zero budget cost — which is what lets the snapshot path digest the
// effective schedule instead of bypassing flag-disable probes.
func filterDisabled(s opt.Schedule, disabled map[string]bool) opt.Schedule {
	out := opt.Schedule{Entries: make([]opt.Entry, 0, len(s.Entries))}
	for _, en := range s.Entries {
		if !disabled[en.Name] {
			out.Entries = append(out.Entries, en)
		}
	}
	return out
}
