package opt

import (
	"repro/internal/bugs"
	"repro/internal/ir"
)

// DCE removes side-effect-free definitions whose results are never used by
// real code. The recoverable debug values of removed definitions are
// rewritten to constants; under bugs.GCDCEDrop they are dropped even though
// the emitted code would be identical either way — the paper's 105176.
type DCE struct{}

// Name implements Pass.
func (DCE) Name() string { return "dce" }

// Run implements Pass.
func (DCE) Run(fn *ir.Func, ctx *Context) bool {
	return deleteDeadDefs(fn, ctx, bugs.GCDCEDrop, "dce")
}

// DSE eliminates stores that are overwritten before any possible read.
// It handles global stores within a block (no intervening loads, calls, or
// pointer operations) and stores to non-address-taken slots. Debug
// intrinsics are unaffected by a correct implementation; under
// bugs.GCDSEDrop the pass also deletes the debug intrinsics that carried the
// overwritten value (105248).
type DSE struct{}

// Name implements Pass.
func (DSE) Name() string { return "dse" }

// Run implements Pass.
func (DSE) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for _, b := range fn.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Op != ir.OpStoreG || in.G.Volatile || !in.Args[0].IsConst() {
				continue
			}
			// Find a subsequent store to the same cell with no intervening
			// observer.
			dead := false
			for j := i + 1; j < len(b.Instrs); j++ {
				jj := b.Instrs[j]
				if jj.Op == ir.OpDbgVal {
					continue
				}
				if jj.Op == ir.OpStoreG && jj.G == in.G &&
					jj.Args[0].IsConst() && jj.Args[0].C == in.Args[0].C {
					dead = true
					break
				}
				if observesMemory(jj) {
					break
				}
			}
			if !dead {
				continue
			}
			if ctx.Defect(bugs.GCDSEDrop) {
				// Defective cleanup: the debug updates adjacent to the dead
				// store (describing the stored value) are deleted with it.
				val := in.Args[1]
				for j := i + 1; j < len(b.Instrs); j++ {
					jj := b.Instrs[j]
					if jj.Op == ir.OpDbgVal && jj.Args[0] == val {
						jj.Args[0] = ir.UndefVal()
						ctx.Count("dse.dropped-dbg")
					}
					if jj.Op != ir.OpDbgVal {
						break
					}
				}
			}
			RemoveInstr(b, i)
			i--
			changed = true
			ctx.Count("dse.removed-stores")
		}
	}
	return changed
}

// observesMemory reports whether the instruction may read global memory or
// transfer control somewhere that does.
func observesMemory(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpLoadG, ir.OpLoadPtr, ir.OpStorePtr, ir.OpCall, ir.OpRet, ir.OpBr, ir.OpCondBr:
		return true
	}
	return false
}

// CopyProp forwards the sources of register copies into their uses. Debug
// intrinsics referencing a propagated register are retargeted to the source
// value, which preserves availability. Under bugs.GCCopyPropRange the
// retargeted intrinsics are flagged so that code generation truncates their
// ranges just before the next call (105179: the emitted range fails to
// cover the call address).
type CopyProp struct{}

// Name implements Pass.
func (CopyProp) Name() string { return "copyprop" }

// Run implements Pass.
func (CopyProp) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for {
		defs := singleDefs(fn)
		dom := Dominators(fn)
		progressed := false
		for _, b := range fn.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				if in.Op != ir.OpCopy || in.Dst < 0 || defs[in.Dst] != in {
					continue
				}
				if in.Width != nil && in.Width.Width < 64 {
					continue // truncating copy: not a pure move
				}
				if !defDominatesUses(fn, dom, b, i, in.Dst) {
					continue
				}
				src := in.Args[0]
				// The source must be stable: a constant, or a register with
				// a single definition.
				if src.IsTemp() && defs[src.Temp] == nil {
					continue
				}
				if src.IsTemp() && src.Temp == in.Dst {
					continue
				}
				replaceAllUses(fn, in.Dst, src)
				n := RewriteDbgUses(fn, in.Dst, src)
				// The catalogued range bug (105179, 105239) surfaces only at
				// the debugger-friendly level and only for variables whose
				// location already needed multiple ranges.
				if n > 0 && ctx.Defect(bugs.GCCopyPropRange) && ctx.Level == "Og" {
					var affected []*ir.Instr
					for _, bb := range fn.Blocks {
						for _, ii := range bb.Instrs {
							if ii.Op == ir.OpDbgVal && ii.Args[0] == src {
								affected = append(affected, ii)
							}
						}
					}
					if len(affected) >= 2 {
						for _, ii := range affected {
							ii.Flags |= ir.DbgTruncRange
						}
						ctx.Count("copyprop.flagged-trunc")
					}
				}
				RemoveInstr(b, i)
				i--
				progressed = true
				changed = true
				ctx.Count("copyprop.forwarded")
			}
		}
		if !progressed {
			break
		}
	}
	return changed
}
