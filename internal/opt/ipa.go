package opt

import (
	"sort"

	"repro/internal/bugs"
	"repro/internal/ir"
)

// IPAPureConst detects side-effect-free ("pure") functions and exploits
// them: calls whose results are unused are deleted, and calls to functions
// that provably return a constant are folded.
//
// Correct folding rewrites the destination register's debug values to the
// constant. Under bugs.GCPureConstDrop they become undefined — the paper's
// 105108 discussion, where the deleted call's value was unrecoverable for
// gcc's design (ipa-pure-const is a top C3 culprit in Table 2).
type IPAPureConst struct{}

// Name implements Pass.
func (IPAPureConst) Name() string { return "ipa-pure-const" }

// Run implements Pass (unused; module pass).
func (IPAPureConst) Run(fn *ir.Func, ctx *Context) bool { return false }

// RunModule implements ModulePass.
func (p IPAPureConst) RunModule(ctx *Context) bool {
	// Propagate purity to a fixpoint (callees first).
	changedPurity := true
	for changedPurity {
		changedPurity = false
		for _, f := range ctx.Mod.Funcs {
			if f.Opaque || f.Pure {
				continue
			}
			if isPure(f, ctx.Mod) {
				f.Pure = true
				changedPurity = true
				ctx.Count("ipa-pure-const.marked-pure")
			}
		}
	}
	changed := false
	for _, f := range ctx.Mod.Funcs {
		if f.Opaque {
			continue
		}
		uses := TempUseCounts(f)
		dom := Dominators(f)
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				if in.Op != ir.OpCall {
					continue
				}
				callee := ctx.Mod.Func(in.Call)
				if callee == nil || !callee.Pure {
					continue
				}
				if in.Dst < 0 || uses[in.Dst] == 0 {
					// Result unused: the call disappears.
					if in.Dst >= 0 {
						DropDbgUses(f, in.Dst)
					}
					RemoveInstr(b, i)
					i--
					changed = true
					ctx.Count("ipa-pure-const.deleted-calls")
					continue
				}
				if c, ok := constantReturn(callee); ok {
					if !defDominatesUses(f, dom, b, i, in.Dst) {
						continue
					}
					replaceAllUses(f, in.Dst, ir.ConstVal(c))
					if ctx.Defect(bugs.GCPureConstDrop) {
						// The deleted call's value is unrecoverable for the
						// defective bookkeeping: bindings of the result and
						// of registers it was copied into are voided (the
						// 105108 design-limitation discussion).
						DropDbgUses(f, in.Dst)
						for _, bb := range f.Blocks {
							for _, ii := range bb.Instrs {
								if ii.Op == ir.OpCopy && ii.Dst >= 0 && len(ii.Args) == 1 &&
									ii.Args[0].IsConst() && ii.Args[0].C == c {
									// Copies now feeding from the folded
									// constant came from the call result.
									DropDbgUses(f, ii.Dst)
								}
							}
						}
						ctx.Count("ipa-pure-const.dropped-dbg")
					} else {
						RewriteDbgUses(f, in.Dst, ir.ConstVal(c))
					}
					RemoveInstr(b, i)
					i--
					uses = TempUseCounts(f)
					changed = true
					ctx.Count("ipa-pure-const.folded-calls")
				}
			}
		}
	}
	return changed
}

// isPure reports whether f has no externally visible effects.
func isPure(f *ir.Func, m *ir.Module) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStoreG, ir.OpStorePtr, ir.OpLoadPtr, ir.OpAddrG, ir.OpAddrSlot:
				return false
			case ir.OpLoadG:
				if in.G.Volatile {
					return false
				}
			case ir.OpCall:
				callee := m.Func(in.Call)
				if callee == nil || callee.Opaque || !callee.Pure {
					return false
				}
			}
		}
	}
	return true
}

// constantReturn reports whether every return of f yields the same constant.
func constantReturn(f *ir.Func) (int64, bool) {
	var c int64
	seen := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpRet {
			continue
		}
		if len(t.Args) == 0 || !t.Args[0].IsConst() {
			return 0, false
		}
		if seen && t.Args[0].C != c {
			return 0, false
		}
		c = t.Args[0].C
		seen = true
	}
	return c, seen
}

// TopLevelReorder reorders module-level variables into a canonical layout
// and merges read-only globals with identical contents. Neither action
// changes observable behaviour.
//
// Under bugs.GCTopLevelReorder, variables whose values were loaded from a
// merged global lose their debug values — the mechanism behind the pass
// family's dominance of the gcc column of Table 2.
type TopLevelReorder struct{}

// Name implements Pass.
func (TopLevelReorder) Name() string { return "toplevel-reorder" }

// Run implements Pass (unused; module pass).
func (TopLevelReorder) Run(fn *ir.Func, ctx *Context) bool { return false }

// RunModule implements ModulePass.
func (p TopLevelReorder) RunModule(ctx *Context) bool {
	m := ctx.Mod
	written := map[*ir.Global]bool{}
	addressed := map[*ir.Global]bool{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpStoreG:
					written[in.G] = true
				case ir.OpAddrG:
					addressed[in.G] = true
				}
			}
		}
	}
	// Merge identical read-only, address-free, non-volatile globals.
	merged := map[*ir.Global]*ir.Global{}
	for i, g := range m.Globals {
		if written[g] || addressed[g] || g.Volatile || merged[g] != nil {
			continue
		}
		for _, h := range m.Globals[i+1:] {
			if written[h] || addressed[h] || h.Volatile || merged[h] != nil {
				continue
			}
			if g.Size == h.Size && sameInit(g.Init, h.Init) {
				merged[h] = g
			}
		}
	}
	changed := false
	if len(merged) > 0 {
		var affectedTemps []struct {
			f *ir.Func
			t int
		}
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if (in.Op == ir.OpLoadG || in.Op == ir.OpStoreG || in.Op == ir.OpAddrG) && merged[in.G] != nil {
						in.G = merged[in.G]
						if in.Op == ir.OpLoadG && in.Dst >= 0 {
							affectedTemps = append(affectedTemps, struct {
								f *ir.Func
								t int
							}{f, in.Dst})
						}
						changed = true
						ctx.Count("toplevel-reorder.merged-refs")
					}
				}
			}
		}
		// The merged duplicates stay in the module: they are externally
		// visible objects whose (read-only) contents must survive; only the
		// references were redirected to the canonical copy.
		if ctx.Defect(bugs.GCTopLevelReorder) {
			for _, at := range affectedTemps {
				n := DropDbgUses(at.f, at.t)
				// The loaded value usually reaches debug metadata through a
				// variable's home-register copy; the defective bookkeeping
				// loses those bindings too.
				for _, b := range at.f.Blocks {
					for _, in := range b.Instrs {
						if in.Op == ir.OpCopy && in.Dst >= 0 &&
							len(in.Args) == 1 && in.Args[0].IsTemp() && in.Args[0].Temp == at.t {
							n += DropDbgUses(at.f, in.Dst)
						}
					}
				}
				if n > 0 {
					ctx.Count("toplevel-reorder.dropped-dbg")
				}
			}
		}
	}
	// Canonical layout: stable sort by size then name. Addresses shift but
	// observations are keyed by name, so behaviour is unchanged.
	before := make([]*ir.Global, len(m.Globals))
	copy(before, m.Globals)
	sort.SliceStable(m.Globals, func(i, j int) bool {
		if m.Globals[i].Size != m.Globals[j].Size {
			return m.Globals[i].Size < m.Globals[j].Size
		}
		return m.Globals[i].Name < m.Globals[j].Name
	})
	for i := range before {
		if before[i] != m.Globals[i] {
			changed = true
			ctx.Count("toplevel-reorder.reordered")
			break
		}
	}
	return changed
}

func sameInit(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
