package opt

import (
	"repro/internal/bugs"
	"repro/internal/ir"
	"repro/internal/minic"
)

// CCP is the (simplified) sparse conditional constant propagation pass of
// the pipeline: single-definition registers whose definition folds to a
// constant are substituted everywhere and their definitions deleted;
// branches on constants are folded.
//
// Correct debug maintenance turns debug intrinsics over the folded register
// into constant locations (the DWARF DW_AT_const_value case). Defects:
//   - bugs.GCCCPNoConstValue: the constant is omitted and the intrinsic is
//     marked undefined (the paper's 105108/105161 hollow-DIE bugs).
//   - bugs.GCCCPRangeShrink: the constant is kept but the intrinsic is sunk
//     to the end of its block, shrinking the covered range so availability
//     flickers during the variable's lifetime (104938, Conjecture 3).
type CCP struct{}

// Name implements Pass.
func (CCP) Name() string { return "ccp" }

// Run implements Pass.
func (CCP) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for {
		defs := singleDefs(fn)
		dom := Dominators(fn)
		var foldTemp = -1
		var foldVal ir.Value
		var foldBlock *ir.Block
		var foldIdx int
		var foldInstr *ir.Instr
		// Find the first foldable single-definition register whose
		// definition dominates all its uses.
	search:
		for _, b := range fn.Blocks {
			for i, in := range b.Instrs {
				if in.Dst < 0 || defs[in.Dst] != in {
					continue
				}
				if v, ok := SalvageValue(in); ok {
					if !defDominatesUses(fn, dom, b, i, in.Dst) {
						continue
					}
					foldTemp, foldVal, foldBlock, foldIdx = in.Dst, v, b, i
					foldInstr = in
					break search
				}
			}
		}
		if foldTemp < 0 {
			break
		}
		replaceAllUses(fn, foldTemp, foldVal)
		// The catalogued no-const-value defect (105108, 105161) involves
		// folds in loop context, where gcc's statement bookkeeping loses
		// the propagated constant; straight-line folds keep theirs. The
		// debugger-friendly level folds more carefully and only trips on
		// the nested-loop shape of the original report.
		loopDepth := 0
		for _, l := range FindLoops(fn) {
			if l.Blocks[foldBlock] {
				loopDepth++
			}
		}
		noConst := ctx.Defect(bugs.GCCCPNoConstValue) &&
			(loopDepth >= 2 || (loopDepth >= 1 && ctx.Level != "Og"))
		// The range-shrink defect (104938) is Og-only and needs the shape
		// of its report: straight-line code whose block performs a call
		// (the value resurfaces at the call, flickering availability).
		shrink := ctx.Defect(bugs.GCCCPRangeShrink) && ctx.Level == "Og" &&
			loopDepth == 0 && blockHasCall(foldBlock) && foldVal.IsConst() && foldVal.C == 0
		switch {
		case noConst:
			DropDbgUses(fn, foldTemp)
			ctx.Count("ccp.dropped-const")
		case shrink:
			var rewritten []*ir.Instr
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.OpDbgVal && in.Args[0].IsTemp() && in.Args[0].Temp == foldTemp {
						rewritten = append(rewritten, in)
					}
				}
			}
			RewriteDbgUses(fn, foldTemp, foldVal)
			sinkDbgVals(fn, rewritten)
			ctx.Count("ccp.sunk-dbg")
		default:
			RewriteDbgUses(fn, foldTemp, foldVal)
		}
		// The debug fix-ups above may have reshuffled the block; remove the
		// folded instruction by identity, not by the stale index.
		idx := foldIdx
		if idx >= len(foldBlock.Instrs) || foldBlock.Instrs[idx] != foldInstr {
			idx = -1
			for i, in := range foldBlock.Instrs {
				if in == foldInstr {
					idx = i
					break
				}
			}
		}
		if idx >= 0 {
			RemoveInstr(foldBlock, idx)
		}
		ctx.Count("ccp.folded")
		changed = true
	}
	return changed
}

// blockHasCall reports whether b contains a call instruction.
func blockHasCall(b *ir.Block) bool {
	for _, in := range b.Instrs {
		if in.Op == ir.OpCall {
			return true
		}
	}
	return false
}

// sinkDbgVals moves the given debug intrinsics to the end of their blocks
// (just before the terminator). This models the defective range shrinkage
// of bugs.GCCCPRangeShrink: availability starts only near the block's end.
func sinkDbgVals(fn *ir.Func, targets []*ir.Instr) {
	isTarget := map[*ir.Instr]bool{}
	for _, in := range targets {
		isTarget[in] = true
	}
	for _, b := range fn.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Op != ir.OpDbgVal || !isTarget[in] {
				continue
			}
			delete(isTarget, in)
			term := b.Term()
			if term == nil || i >= len(b.Instrs)-2 {
				continue
			}
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], in, term)
		}
	}
}

// VRP is the (simplified) value-range propagation pass: inside a branch
// taken only when register t equals a constant, uses of t are replaced by
// that constant. When all remaining uses of a definition disappear, the
// definition is deleted.
//
// Under bugs.GCVRPDrop the deleted definition's debug intrinsics are marked
// undefined instead of receiving the propagated constant (105007).
type VRP struct{}

// Name implements Pass.
func (VRP) Name() string { return "vrp" }

// Run implements Pass.
func (VRP) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	defs := singleDefs(fn)
	preds := fn.Preds()
	for _, b := range fn.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr || !t.Args[0].IsTemp() {
			continue
		}
		cond := defs[t.Args[0].Temp]
		if cond == nil || cond.Op != ir.OpBin {
			continue
		}
		var reg int
		var c ir.Value
		var eqSucc *ir.Block
		switch {
		case cond.BinOp == minic.Eq && cond.Args[0].IsTemp() && cond.Args[1].IsConst():
			reg, c, eqSucc = cond.Args[0].Temp, cond.Args[1], t.Tgts[0]
		case cond.BinOp == minic.Ne && cond.Args[0].IsTemp() && cond.Args[1].IsConst():
			reg, c, eqSucc = cond.Args[0].Temp, cond.Args[1], t.Tgts[1]
		default:
			continue
		}
		if defs[reg] == nil {
			continue // multiple definitions: the fact is not sparse
		}
		if len(preds[eqSucc]) != 1 || eqSucc == b {
			continue // the fact only holds on this edge
		}
		// Replace uses of reg in the equality successor.
		n := 0
		for _, in := range eqSucc.Instrs {
			if in.Op == ir.OpDbgVal {
				continue
			}
			for i, a := range in.Args {
				if a.IsTemp() && a.Temp == reg {
					in.Args[i] = c
					n++
				}
			}
		}
		if n > 0 {
			changed = true
			ctx.Count("vrp.propagated")
			// Debug intrinsics in the block can also carry the constant.
			for _, in := range eqSucc.Instrs {
				if in.Op == ir.OpDbgVal && in.Args[0].IsTemp() && in.Args[0].Temp == reg {
					if ctx.Defect(bugs.GCVRPDrop) {
						in.Args[0] = ir.UndefVal()
						ctx.Count("vrp.dropped-dbg")
					} else {
						in.Args[0] = c
					}
				}
			}
		}
	}
	// Delete definitions whose uses all disappeared, salvaging debug info.
	changed = deleteDeadDefs(fn, ctx, bugs.GCVRPDrop, "vrp") || changed
	return changed
}

// deleteDeadDefs removes side-effect-free definitions with no remaining
// non-debug uses. Debug intrinsics over a removed register are rewritten to
// the salvaged constant when possible — unless the named defect is active,
// in which case they are marked undefined.
func deleteDeadDefs(fn *ir.Func, ctx *Context, defect, statPrefix string) bool {
	changed := false
	for {
		uses := TempUseCounts(fn)
		removed := false
		for _, b := range fn.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				if in.Dst < 0 || in.Op == ir.OpCall || uses[in.Dst] != 0 {
					continue
				}
				if hasSideEffects(in, ctx.Mod) || in.Op.IsTerminator() {
					continue
				}
				salvageForRemoval(fn, ctx, b, i, defect, statPrefix)
				RemoveInstr(b, i)
				i--
				removed = true
				changed = true
				ctx.Count(statPrefix + ".deleted-defs")
			}
		}
		if !removed {
			break
		}
	}
	return changed
}

// salvageForRemoval fixes up the debug intrinsics affected by deleting the
// definition at b.Instrs[idx]. For a register with a single definition all
// its debug references belong to this definition; for a multiply-defined
// register only the intrinsics between this definition and the register's
// next redefinition in the block do (mem2reg keeps them adjacent). The
// recoverable (constant) case is rewritten to a constant location unless
// the named defect is active.
func salvageForRemoval(fn *ir.Func, ctx *Context, b *ir.Block, idx int, defect, statPrefix string) {
	in := b.Instrs[idx]
	t := in.Dst
	repl, recoverable := SalvageValue(in)
	if recoverable && ctx.Defect(defect) {
		recoverable = false
		ctx.Count(statPrefix + ".dropped-dbg")
	}
	if !recoverable {
		repl = ir.UndefVal()
	}
	nDefs := 0
	for _, bb := range fn.Blocks {
		for _, ii := range bb.Instrs {
			if ii.Dst == t {
				nDefs++
			}
		}
	}
	if nDefs == 1 {
		RewriteDbgUses(fn, t, repl)
		return
	}
	for i := idx + 1; i < len(b.Instrs); i++ {
		ii := b.Instrs[i]
		if ii.Dst == t {
			break
		}
		if ii.Op == ir.OpDbgVal && ii.Args[0].IsTemp() && ii.Args[0].Temp == t {
			ii.Args[0] = repl
		}
	}
}
