package opt

import (
	"reflect"
	"strings"
	"testing"
)

func TestScheduleStringParseRoundTrip(t *testing.T) {
	s := ScheduleOf([]Pass{
		Mem2Reg{},
		Inline{MaxInstrs: 40},
		CCP{},
		LoopUnroll{MaxTrip: 4},
		TopLevelReorder{},
	})
	want := "mem2reg,inline:40,ccp,loopunroll:4,toplevel-reorder"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	back, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip mismatch: %q vs %q", back, s)
	}
	if back.Digest() != s.Digest() {
		t.Fatalf("digest mismatch after round trip")
	}

	empty, err := ParseSchedule("")
	if err != nil || empty.Len() != 0 {
		t.Fatalf("ParseSchedule(\"\") = %v, %v; want empty schedule", empty, err)
	}
	if empty.String() != "" {
		t.Fatalf("empty schedule String() = %q", empty.String())
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, bad := range []string{"nosuchpass", "mem2reg,,dce", "inline:forty", "mem2reg,bogus:3"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
}

// TestRegistryCoversAllPasses pins that every pass the compiler can
// schedule round-trips through the registry: materializing the entry
// re-creates a pass with the same name and (for budgeted passes) the
// same parameters.
func TestRegistryCoversAllPasses(t *testing.T) {
	for _, p := range allPasses() {
		e := EntryOf(p)
		got, err := Schedule{Entries: []Entry{e}}.Passes()
		if err != nil {
			t.Fatalf("pass %q not registered: %v", p.Name(), err)
		}
		if got[0].Name() != p.Name() {
			t.Fatalf("registry rebuilt %q as %q", p.Name(), got[0].Name())
		}
		if !reflect.DeepEqual(got[0], p) {
			t.Fatalf("registry rebuilt %q as %#v, want %#v", p.Name(), got[0], p)
		}
	}
	if _, err := (Schedule{Entries: []Entry{{Name: "bogus"}}}).Passes(); err == nil {
		t.Fatalf("unregistered pass materialized without error")
	}
}

func TestRegisteredPassesSorted(t *testing.T) {
	names := RegisteredPasses()
	if len(names) != len(passRegistry) {
		t.Fatalf("RegisteredPasses returned %d names, registry has %d", len(names), len(passRegistry))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not strictly sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

// TestRunScheduleMatchesRunPipeline pins that RunSchedule is exactly
// RunPipeline over the materialized schedule: same IR, same Result.
func TestRunScheduleMatchesRunPipeline(t *testing.T) {
	src := `
int main(void) {
  int i = 0;
  int acc = 7;
  while (i < 8) {
    acc = acc + i;
    i = i + 1;
  }
  return acc;
}
`
	passes := allPasses()
	mPipe := lowerSrc(t, src)
	mSched := lowerSrc(t, src)

	rPipe := RunPipeline(mPipe, passes, Options{BisectLimit: -1})
	rSched, err := RunSchedule(mSched, ScheduleOf(passes), Options{BisectLimit: -1})
	if err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	if rPipe.Executions != rSched.Executions {
		t.Fatalf("executions differ: pipeline %d, schedule %d", rPipe.Executions, rSched.Executions)
	}
	if !reflect.DeepEqual(rPipe.Applied, rSched.Applied) {
		t.Fatalf("applied lists differ:\npipeline: %v\nschedule: %v", rPipe.Applied, rSched.Applied)
	}
	if mPipe.String() != mSched.String() {
		t.Fatalf("modules differ after identical schedules")
	}

	if _, err := RunSchedule(lowerSrc(t, src), Schedule{Entries: []Entry{{Name: "bogus"}}}, Options{BisectLimit: -1}); err == nil {
		t.Fatalf("RunSchedule accepted an unregistered pass")
	}
}

// TestAppliedEntryFormat pins Result.Applied's canonical format, which
// schedule digests and triage hash: module passes record the bare pass
// name, function passes record "name(fn)" per function, skipping opaque
// functions.
func TestAppliedEntryFormat(t *testing.T) {
	src := `
int helper(int x) { return x + 1; }
int main(void) {
  int v = helper(4);
  return v;
}
`
	m := lowerSrc(t, src)
	res := RunPipeline(m, []Pass{DCE{}, TopLevelReorder{}}, Options{BisectLimit: -1})
	want := []string{"dce(helper)", "dce(main)", "toplevel-reorder"}
	if !reflect.DeepEqual(res.Applied, want) {
		t.Fatalf("Applied = %v, want %v", res.Applied, want)
	}
	if res.Executions != len(want) {
		t.Fatalf("Executions = %d, want %d", res.Executions, len(want))
	}
}

// TestAppliedPreallocated pins the hot-path preallocation: a full run's
// Applied slice is sized exactly by CountExecutions up front.
func TestAppliedPreallocated(t *testing.T) {
	src := `
int main(void) {
  int a = 3;
  return a;
}
`
	m := lowerSrc(t, src)
	passes := allPasses()
	n := CountExecutions(m, passes, nil)
	res := RunPipeline(m, passes, Options{BisectLimit: -1})
	if len(res.Applied) != n {
		t.Fatalf("full run applied %d executions, CountExecutions predicted %d", len(res.Applied), n)
	}
	if cap(res.Applied) != n {
		t.Fatalf("Applied capacity %d, want exactly %d (preallocated)", cap(res.Applied), n)
	}
}

func TestScheduleDigestDistinguishesArgs(t *testing.T) {
	a := Schedule{Entries: []Entry{{Name: "inline", Arg: 16}}}
	b := Schedule{Entries: []Entry{{Name: "inline", Arg: 40}}}
	if a.Digest() == b.Digest() {
		t.Fatalf("digests collide for different budgets")
	}
	if a.Equal(b) {
		t.Fatalf("Equal conflates different budgets")
	}
	if !strings.Contains(a.String(), ":16") {
		t.Fatalf("budget missing from string form: %q", a.String())
	}
	c := a.Clone()
	c.Entries[0].Arg = 99
	if a.Entries[0].Arg != 16 {
		t.Fatalf("Clone aliases the original entries")
	}
}
