// Package opt implements the optimizer of the simulated compiler: a pass
// manager and the transformation passes whose debug-information maintenance
// the paper's methodology stresses.
//
// Every pass maintains the OpDbgVal debug intrinsics of the IR it rewrites.
// Where the paper's reported bugs show real compilers dropping or corrupting
// that metadata, the corresponding pass consults the defect oracle
// (Context.Defect) and, when the defect is active for the compiler
// configuration under test, reproduces the faulty behaviour. All defect
// identifiers live in defects.go of the compiler package; passes reference
// them by string so that the registry stays the single source of truth.
package opt

import (
	"repro/internal/ir"
)

// Context carries compilation-wide state into passes.
type Context struct {
	Mod *ir.Module
	// Level is the optimization level being compiled ("O1", "Og", ...).
	// A few defects are level-sensitive, mirroring the paper's findings.
	Level string
	// Defects is the set of active implementation-defect identifiers for
	// the (family, version) being simulated.
	Defects map[string]bool
	// Stats counts pass-specific events, keyed by free-form strings.
	Stats map[string]int
}

// Defect reports whether the named implementation defect is active.
func (c *Context) Defect(id string) bool { return c.Defects[id] }

// Count bumps a statistic counter.
func (c *Context) Count(key string) {
	if c.Stats != nil {
		c.Stats[key]++
	}
}

// Pass is one optimizer transformation.
type Pass interface {
	// Name returns the stable pass identifier used by triage flags and the
	// bisection mechanism.
	Name() string
	// Run transforms fn in place and reports whether anything changed.
	Run(fn *ir.Func, ctx *Context) bool
}

// ModulePass is implemented by passes that need whole-module scope
// (inlining, interprocedural analyses, global reordering).
type ModulePass interface {
	Pass
	// RunModule transforms the module; the per-function Run is not used.
	RunModule(ctx *Context) bool
}

// Options configures one pipeline execution.
type Options struct {
	// Disabled names passes to skip (the gcc-style -fno-<pass> triage knob).
	Disabled map[string]bool
	// BisectLimit, when >= 0, stops the pipeline after this many pass
	// executions (the clang-style -opt-bisect-limit triage knob). A pass
	// execution is one (pass, function) application or one module pass.
	BisectLimit int
	// Defects is the active defect set.
	Defects map[string]bool
	// Level is the optimization level label, for level-sensitive defects.
	Level string
	// Stats, when non-nil, receives pass statistics.
	Stats map[string]int
}

// Result reports what a pipeline execution did.
type Result struct {
	// Executions is the total number of pass executions performed.
	Executions int
	// Applied lists the pass executions in order, in a canonical format
	// that schedule digests and tests rely on: a module pass records its
	// bare name ("toplevel-reorder"); a function pass records one
	// "name(fn)" entry per function it ran on ("dce(main)").
	Applied []string
}

// RunPipeline applies the pass list to the module under the given options
// and returns execution statistics. The module is modified in place.
// One Context is built up front and shared by every pass, and Applied is
// preallocated from CountExecutions — this is the hot Optimize path, and
// per-execution slice growth shows up there.
func RunPipeline(m *ir.Module, passes []Pass, o Options) *Result {
	ctx := newContext(m, o)
	res := &Result{Applied: make([]string, 0, CountExecutions(m, passes, o.Disabled))}
	for _, p := range passes {
		if o.Disabled[p.Name()] {
			continue
		}
		if !runEntry(m, p, ctx, res, o.BisectLimit) {
			return res
		}
	}
	return res
}

// newContext builds the shared per-run pass context from the options.
func newContext(m *ir.Module, o Options) *Context {
	ctx := &Context{Mod: m, Defects: o.Defects, Stats: o.Stats, Level: o.Level}
	if ctx.Defects == nil {
		ctx.Defects = map[string]bool{}
	}
	return ctx
}

// runEntry applies one pass to the module under the execution budget
// (limit < 0 = unbounded), recording into res. It returns false when the
// budget stopped the entry before every one of its executions ran.
func runEntry(m *ir.Module, p Pass, ctx *Context, res *Result, limit int) bool {
	budget := func() bool { return limit < 0 || res.Executions < limit }
	if mp, ok := p.(ModulePass); ok {
		if !budget() {
			return false
		}
		mp.RunModule(ctx)
		res.Executions++
		res.Applied = append(res.Applied, p.Name())
		return true
	}
	for _, f := range m.Funcs {
		if f.Opaque {
			continue
		}
		if !budget() {
			return false
		}
		p.Run(f, ctx)
		res.Executions++
		res.Applied = append(res.Applied, p.Name()+"("+f.Name+")")
	}
	return true
}

// entryCost is CountExecutions for a single pass on the module's current
// function set.
func entryCost(m *ir.Module, p Pass) int {
	if _, ok := p.(ModulePass); ok {
		return 1
	}
	n := 0
	for _, f := range m.Funcs {
		if !f.Opaque {
			n++
		}
	}
	return n
}

// CountExecutions returns how many pass executions a full pipeline run would
// perform on the module (used by the bisection driver to size its search).
func CountExecutions(m *ir.Module, passes []Pass, disabled map[string]bool) int {
	n := 0
	for _, p := range passes {
		if disabled[p.Name()] {
			continue
		}
		if _, ok := p.(ModulePass); ok {
			n++
			continue
		}
		for _, f := range m.Funcs {
			if !f.Opaque {
				n++
			}
		}
	}
	return n
}
