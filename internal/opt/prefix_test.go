package opt

import (
	"reflect"
	"strings"
	"testing"
)

// prefixSrc has two functions and a loop, so schedules mix module- and
// function-pass executions and the budgeted passes have work to do.
const prefixSrc = `
int helper(int x) { return x + 2; }
int main(void) {
  int i = 0;
  int acc = 7;
  while (i < 8) {
    acc = acc + helper(i);
    i = i + 1;
  }
  return acc;
}
`

// TestPrefixDigestSanity pins the satellite contract: the full-length
// prefix digest is the schedule digest, every rolling digest equals the
// one computed from the truncated schedule, and index 0 is the empty
// schedule's digest.
func TestPrefixDigestSanity(t *testing.T) {
	s := ScheduleOf(allPasses())
	digests := s.PrefixDigests()
	if len(digests) != s.Len()+1 {
		t.Fatalf("PrefixDigests returned %d entries for a %d-entry schedule", len(digests), s.Len())
	}
	if digests[s.Len()] != s.Digest() {
		t.Errorf("PrefixDigests[%d] = %s, want Digest() = %s", s.Len(), digests[s.Len()], s.Digest())
	}
	if got := s.PrefixDigest(s.Len()); got != s.Digest() {
		t.Errorf("PrefixDigest(Len()) = %s, want Digest() = %s", got, s.Digest())
	}
	if digests[0] != (Schedule{}).Digest() {
		t.Errorf("PrefixDigests[0] = %s, want the empty schedule's digest %s", digests[0], Schedule{}.Digest())
	}
	for i := 0; i <= s.Len(); i++ {
		if digests[i] != s.PrefixDigest(i) {
			t.Errorf("rolling digest %d = %s, want truncated-schedule digest %s", i, digests[i], s.PrefixDigest(i))
		}
	}
}

// TestPrefixDigestsAgreeUpToDivergence: two schedules sharing their first
// k entries share exactly the first k+1 prefix digests and none after.
func TestPrefixDigestsAgreeUpToDivergence(t *testing.T) {
	a, err := ParseSchedule("mem2reg,inline:40,ccp,dce,simplifycfg")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSchedule("mem2reg,inline:40,ccp,vrp,simplifycfg")
	if err != nil {
		t.Fatal(err)
	}
	const shared = 3 // entries 0..2 agree, entry 3 diverges
	da, db := a.PrefixDigests(), b.PrefixDigests()
	for i := 0; i <= shared; i++ {
		if da[i] != db[i] {
			t.Errorf("prefix %d: digests differ (%s vs %s) despite identical entries", i, da[i], db[i])
		}
	}
	for i := shared + 1; i < len(da); i++ {
		if da[i] == db[i] {
			t.Errorf("prefix %d: digests collide (%s) past the divergence point", i, da[i])
		}
	}
	// An argument change alone must also diverge (inline:40 vs inline:16).
	c, err := ParseSchedule("mem2reg,inline:16,ccp,dce,simplifycfg")
	if err != nil {
		t.Fatal(err)
	}
	if dc := c.PrefixDigests(); dc[2] == da[2] || dc[1] != da[1] {
		t.Errorf("budget-arg divergence mishandled: %s/%s at 2, %s/%s at 1", dc[2], da[2], dc[1], da[1])
	}
}

// TestParseScheduleErrorPaths pins each distinct error with its message,
// so callers can tell an unknown pass from a malformed entry.
func TestParseScheduleErrorPaths(t *testing.T) {
	cases := []struct {
		in, wantSub string
	}{
		{"nosuchpass", `unknown pass "nosuchpass"`},
		{"mem2reg,bogus:3", `unknown pass "bogus"`},
		{"mem2reg,,dce", "empty pass name"},
		{":4", "empty pass name"},
		{"inline:forty", `bad argument "forty" for pass "inline"`},
		{"dce:", `bad argument "" for pass "dce"`},
	}
	for _, c := range cases {
		_, err := ParseSchedule(c.in)
		if err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error containing %q", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSchedule(%q) error %q, want it to contain %q", c.in, err.Error(), c.wantSub)
		}
	}
}

// TestRunScheduleFromResumesExactly: for every split point and a spread of
// bisect budgets, running the prefix, then RunScheduleFrom on the suffix,
// stitches to a byte-identical module and Result as the single cold run —
// the contract the compiler's snapshot cache is built on.
func TestRunScheduleFromResumesExactly(t *testing.T) {
	full := ScheduleOf(allPasses())
	defects := map[string]bool{}
	for _, limit := range []int{-1, 1, 5, 9} {
		o := Options{BisectLimit: limit, Defects: defects}
		cold := lowerSrc(t, prefixSrc)
		want, err := RunSchedule(cold, full, o)
		if err != nil {
			t.Fatal(err)
		}
		for start := 0; start <= full.Len(); start++ {
			m := lowerSrc(t, prefixSrc)
			prefix, err := RunSchedule(m, Schedule{Entries: full.Entries[:start]}, Options{BisectLimit: -1, Defects: defects})
			if err != nil {
				t.Fatal(err)
			}
			if limit >= 0 && prefix.Executions > limit {
				continue // a snapshot past the budget is not a legal resume point
			}
			so := o
			if so.BisectLimit >= 0 {
				so.BisectLimit -= prefix.Executions
			}
			suffix, err := RunScheduleFrom(m, full, so, start, nil)
			if err != nil {
				t.Fatal(err)
			}
			gotApplied := append(append([]string{}, prefix.Applied...), suffix.Applied...)
			if got := prefix.Executions + suffix.Executions; got != want.Executions {
				t.Errorf("limit %d start %d: executions %d, want %d", limit, start, got, want.Executions)
			}
			if !reflect.DeepEqual(gotApplied, want.Applied) {
				t.Errorf("limit %d start %d: applied mismatch:\ngot  %v\nwant %v", limit, start, gotApplied, want.Applied)
			}
			if m.String() != cold.String() {
				t.Errorf("limit %d start %d: resumed module differs from cold run", limit, start)
			}
		}
	}
}

// TestRunScheduleFromCheckpoints: the checkpoint callback fires once per
// boundary past the offset, each boundary's module state matches a cold
// run of exactly that prefix, and final marks the last boundary the
// budget lets the run complete.
func TestRunScheduleFromCheckpoints(t *testing.T) {
	full := ScheduleOf(allPasses())
	type seen struct {
		prefixLen  int
		executions int
		final      bool
		state      string
	}
	var got []seen
	m := lowerSrc(t, prefixSrc)
	if _, err := RunScheduleFrom(m, full, Options{BisectLimit: -1}, 0, func(pl int, res *Result, final bool) {
		got = append(got, seen{pl, res.Executions, final, m.String()})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != full.Len() {
		t.Fatalf("saw %d checkpoints, want one per boundary past 0 = %d", len(got), full.Len())
	}
	for i, s := range got {
		if s.prefixLen != i+1 {
			t.Fatalf("checkpoint %d at prefix %d, want %d", i, s.prefixLen, i+1)
		}
		if wantFinal := i == len(got)-1; s.final != wantFinal {
			t.Errorf("checkpoint %d: final=%v, want %v", i, s.final, wantFinal)
		}
		ref := lowerSrc(t, prefixSrc)
		refRes, err := RunSchedule(ref, Schedule{Entries: full.Entries[:s.prefixLen]}, Options{BisectLimit: -1})
		if err != nil {
			t.Fatal(err)
		}
		if s.state != ref.String() {
			t.Errorf("checkpoint at prefix %d: module state differs from a cold prefix run", s.prefixLen)
		}
		if s.executions != refRes.Executions {
			t.Errorf("checkpoint at prefix %d: %d executions, cold prefix ran %d", s.prefixLen, s.executions, refRes.Executions)
		}
	}

	// Under a budget that dies inside an entry, boundaries fire once each up
	// to the last completed entry, only the last is final, and its
	// executions fit the budget — the partial entry's mid-state is never
	// offered as a snapshot.
	m2 := lowerSrc(t, prefixSrc)
	limit := entryCost(m2, mustPass(t, full.Entries[0])) + 1
	var budgeted []seen
	if _, err := RunScheduleFrom(m2, full, Options{BisectLimit: limit}, 0, func(pl int, res *Result, final bool) {
		budgeted = append(budgeted, seen{pl, res.Executions, final, ""})
	}); err != nil {
		t.Fatal(err)
	}
	if len(budgeted) == 0 {
		t.Fatal("budgeted run emitted no checkpoints")
	}
	for i, s := range budgeted {
		if s.prefixLen != i+1 {
			t.Errorf("budgeted checkpoint %d at prefix %d, want %d", i, s.prefixLen, i+1)
		}
		if wantFinal := i == len(budgeted)-1; s.final != wantFinal {
			t.Errorf("budgeted checkpoint at prefix %d: final=%v, want %v", s.prefixLen, s.final, wantFinal)
		}
	}
	if last := budgeted[len(budgeted)-1]; last.executions > limit {
		t.Errorf("final boundary recorded %d executions, over the budget %d", last.executions, limit)
	} else if last.prefixLen == full.Len() {
		t.Errorf("budget %d let the whole %d-entry schedule complete; the partial-entry path went untested", limit, full.Len())
	}
}

// TestBisectLimitZeroRawLayer pins the documented asymmetry the compiler
// helper normalizes away: at the raw opt layer an explicit limit of 0
// means "stop before the first pass" — zero executions, empty Applied —
// for RunPipeline, RunSchedule and RunScheduleFrom alike.
func TestBisectLimitZeroRawLayer(t *testing.T) {
	s := ScheduleOf(allPasses())
	for _, run := range []struct {
		name string
		run  func(t *testing.T) *Result
	}{
		{"RunPipeline", func(t *testing.T) *Result {
			return RunPipeline(lowerSrc(t, prefixSrc), allPasses(), Options{BisectLimit: 0})
		}},
		{"RunSchedule", func(t *testing.T) *Result {
			res, err := RunSchedule(lowerSrc(t, prefixSrc), s, Options{BisectLimit: 0})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
		{"RunScheduleFrom", func(t *testing.T) *Result {
			res, err := RunScheduleFrom(lowerSrc(t, prefixSrc), s, Options{BisectLimit: 0}, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}},
	} {
		res := run.run(t)
		if res.Executions != 0 || len(res.Applied) != 0 {
			t.Errorf("%s with limit 0 ran %d executions (%v), want none", run.name, res.Executions, res.Applied)
		}
	}
}

// mustPass materializes one schedule entry.
func mustPass(t *testing.T, e Entry) Pass {
	t.Helper()
	ps, err := Schedule{Entries: []Entry{e}}.Passes()
	if err != nil {
		t.Fatal(err)
	}
	return ps[0]
}
