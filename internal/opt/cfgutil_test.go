// Black-box tests for the CFG analyses in cfgutil.go. The package is
// opt_test so the pipeline-agreement test can import the compiler's pass
// pipelines without an import cycle.
package opt_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/opt"
)

func br(b, tgt *ir.Block) {
	b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpBr, Dst: -1, Tgts: []*ir.Block{tgt}})
}

func condbr(b *ir.Block, c ir.Value, t1, t2 *ir.Block) {
	b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpCondBr, Dst: -1, Args: []ir.Value{c}, Tgts: []*ir.Block{t1, t2}})
}

func ret(b *ir.Block) {
	b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet, Dst: -1})
}

// TestDominatorsSelfLoopAndUnreachable builds
//
//	b0: condbr t0 -> b1, b2
//	b1: condbr t0 -> b1, b3   (self-loop)
//	b2: ret
//	b3: ret
//	b4: br b1                  (unreachable, still a CFG predecessor of b1)
//
// and checks the dominator sets and the self-loop's natural loop.
func TestDominatorsSelfLoopAndUnreachable(t *testing.T) {
	f := &ir.Func{Name: "f", NTemp: 1}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	c := ir.TempVal(0)
	condbr(b0, c, b1, b2)
	condbr(b1, c, b1, b3)
	ret(b2)
	ret(b3)
	br(b4, b1)

	dom := opt.Dominators(f)
	want := map[*ir.Block][]*ir.Block{
		b0: {b0},
		b1: {b0, b1},
		b2: {b0, b2},
		b3: {b0, b1, b3},
	}
	names := map[*ir.Block]string{b0: "b0", b1: "b1", b2: "b2", b3: "b3", b4: "b4"}
	for b, doms := range want {
		if len(dom[b]) != len(doms) {
			t.Errorf("%s: dominator set size %d, want %d", names[b], len(dom[b]), len(doms))
		}
		for _, d := range doms {
			if !dom[b][d] {
				t.Errorf("%s: missing dominator %s", names[b], names[d])
			}
		}
	}
	// The unreachable block keeps the full (vacuous) set so the dataflow
	// meet over its CFG successors stays well-defined.
	if len(dom[b4]) != len(f.Blocks) {
		t.Errorf("unreachable b4 has %d dominators, want all %d blocks", len(dom[b4]), len(f.Blocks))
	}
	// An unreachable predecessor must not leak into a reachable block's set.
	if dom[b1][b4] {
		t.Error("b4 (unreachable) must not dominate b1")
	}

	loops := opt.FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1 (the self-loop)", len(loops))
	}
	l := loops[0]
	if l.Header != b1 || l.Latch != b1 {
		t.Errorf("self-loop header/latch = %v/%v, want b1/b1", names[l.Header], names[l.Latch])
	}
	if len(l.Blocks) != 1 || !l.Blocks[b1] {
		t.Errorf("self-loop body has %d blocks, want just b1", len(l.Blocks))
	}
	if len(l.Exits) != 1 || l.Exits[0] != b3 {
		t.Errorf("self-loop exits = %v, want [b3]", l.Exits)
	}
}

// TestFindLoopsNatural builds the canonical while-loop shape
//
//	b0: br b1
//	b1: condbr t0 -> b2, b3   (header)
//	b2: br b1                  (latch)
//	b3: ret
func TestFindLoopsNatural(t *testing.T) {
	f := &ir.Func{Name: "f", NTemp: 1}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	br(b0, b1)
	condbr(b1, ir.TempVal(0), b2, b3)
	br(b2, b1)
	ret(b3)

	loops := opt.FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != b1 {
		t.Error("loop header is not b1")
	}
	if l.Latch != b2 {
		t.Error("loop latch is not b2")
	}
	if len(l.Blocks) != 2 || !l.Blocks[b1] || !l.Blocks[b2] {
		t.Errorf("loop body wrong: %d blocks", len(l.Blocks))
	}
	if len(l.Exits) != 1 || l.Exits[0] != b3 {
		t.Errorf("loop exits wrong: %v", l.Exits)
	}
	// A straight-line function has no loops.
	g := &ir.Func{Name: "g"}
	ret(g.NewBlock())
	if got := opt.FindLoops(g); len(got) != 0 {
		t.Errorf("straight-line function reported %d loops", len(got))
	}
}

// TestCountExecutionsMatchesRunPipeline checks the bisection sizing
// contract on a module with opaque (extern) functions: the static count
// must equal the executions a full pipeline run actually performs, with
// and without disabled passes.
func TestCountExecutionsMatchesRunPipeline(t *testing.T) {
	src := `
extern void opaque(int x);
extern int chan(int x);
int helper(int a) {
  int s = 0;
  for (int i = 0; i < a; i = i + 1) {
    s = s + i;
  }
  return s;
}
int main(void) {
  int x = chan(3);
  int y = helper(x);
  opaque(y);
  return 0;
}
`
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	minic.AssignLines(prog)
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	opaque := 0
	for _, f := range m.Funcs {
		if f.Opaque {
			opaque++
		}
	}
	if opaque != 2 {
		t.Fatalf("module has %d opaque functions, want 2", opaque)
	}
	cfg := compiler.Config{Family: compiler.GC, Version: "trunk", Level: "O2"}
	passes := compiler.Pipeline(cfg)
	for _, disabled := range []map[string]bool{nil, {"inline": true, "lsr": true}} {
		want := opt.CountExecutions(m, passes, disabled)
		if want == 0 {
			t.Fatal("pipeline counts no executions; the comparison is vacuous")
		}
		pr := opt.RunPipeline(m.Clone(), passes, opt.Options{
			Disabled: disabled, BisectLimit: -1, Level: cfg.Level})
		if pr.Executions != want {
			t.Errorf("disabled=%v: RunPipeline executed %d passes, CountExecutions predicted %d",
				disabled, pr.Executions, want)
		}
		if len(pr.Applied) != pr.Executions {
			t.Errorf("Applied length %d != Executions %d", len(pr.Applied), pr.Executions)
		}
	}
}
