package opt

import (
	"repro/internal/ir"
)

// Debug-metadata maintenance helpers shared by the passes. The "correct"
// behaviour a pass should exhibit lives here; the passes call these unless a
// defect is active.

// RewriteDbgUses replaces every debug-intrinsic reference to register t in
// fn with the replacement value. Used when a pass deletes or folds the
// definition of t: a constant replacement preserves availability, an Undef
// replacement marks the variable optimized-out from that point.
func RewriteDbgUses(fn *ir.Func, t int, repl ir.Value) int {
	n := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.Args[0].IsTemp() && in.Args[0].Temp == t {
				in.Args[0] = repl
				n++
			}
		}
	}
	return n
}

// DropDbgUses marks all debug intrinsics referencing t as undefined. This is
// the lossy behaviour that correct salvage code avoids for recoverable
// (constant) values.
func DropDbgUses(fn *ir.Func, t int) int {
	return RewriteDbgUses(fn, t, ir.UndefVal())
}

// HoistDbgVals moves the debug intrinsics of src to the front of dst,
// preserving their order. Non-debug instructions are untouched. Used when a
// block is removed but its debug updates must survive on the path through
// dst.
func HoistDbgVals(src, dst *ir.Block) int {
	var dbgs []*ir.Instr
	var rest []*ir.Instr
	for _, in := range src.Instrs {
		if in.Op == ir.OpDbgVal {
			dbgs = append(dbgs, in)
		} else {
			rest = append(rest, in)
		}
	}
	if len(dbgs) == 0 {
		return 0
	}
	src.Instrs = rest
	dst.Instrs = append(append([]*ir.Instr{}, dbgs...), dst.Instrs...)
	return len(dbgs)
}

// SalvageValue attempts to express the value computed by in as a constant.
// It returns the constant value and true when in is a foldable definition
// (a copy of a constant, or an operation over constants).
func SalvageValue(in *ir.Instr) (ir.Value, bool) {
	switch in.Op {
	case ir.OpCopy:
		if in.Args[0].IsConst() {
			c := in.Args[0].C
			if in.Width != nil {
				c = in.Width.Truncate(c)
			}
			return ir.ConstVal(c), true
		}
	case ir.OpUn:
		if in.Args[0].IsConst() {
			return ir.ConstVal(ir.EvalUn(in.UnOp, in.Args[0].C, in.Width)), true
		}
	case ir.OpBin:
		if in.Args[0].IsConst() && in.Args[1].IsConst() {
			return ir.ConstVal(ir.EvalBin(in.BinOp, in.Args[0].C, in.Args[1].C, in.Width)), true
		}
	}
	return ir.Value{}, false
}

// DbgValsFor returns all debug intrinsics in fn that describe v.
func DbgValsFor(fn *ir.Func, v *ir.Var) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.V == v {
				out = append(out, in)
			}
		}
	}
	return out
}

// RemoveInstr deletes the instruction at index i of block b.
func RemoveInstr(b *ir.Block, i int) {
	b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
}

// replaceAllUses substitutes value repl for register t in every non-debug
// operand of fn and returns the number of replacements. Debug uses are
// handled separately so callers can model defective salvage.
func replaceAllUses(fn *ir.Func, t int, repl ir.Value) int {
	n := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal {
				continue
			}
			for i, a := range in.Args {
				if a.IsTemp() && a.Temp == t {
					in.Args[i] = repl
					n++
				}
			}
		}
	}
	return n
}

// defDominatesUses reports whether the definition of register t at
// b.Instrs[idx] dominates every non-debug use of t: uses later in the same
// block, or in blocks strictly dominated by b. Replacing uses of a
// single-static-definition register is only sound under this condition —
// the definition may sit inside a loop with uses executing before it.
func defDominatesUses(fn *ir.Func, dom map[*ir.Block]map[*ir.Block]bool,
	b *ir.Block, idx, t int) bool {
	for _, bb := range fn.Blocks {
		for i, in := range bb.Instrs {
			if in.Op == ir.OpDbgVal {
				continue
			}
			uses := false
			for _, a := range in.Args {
				if a.IsTemp() && a.Temp == t {
					uses = true
				}
			}
			if !uses {
				continue
			}
			if bb == b {
				if i <= idx {
					return false
				}
				continue
			}
			if !dom[bb][b] {
				return false
			}
		}
	}
	return true
}

// singleDefs returns, for each register, its unique defining instruction, or
// nil when the register has zero or multiple definitions.
func singleDefs(fn *ir.Func) []*ir.Instr {
	defs := make([]*ir.Instr, fn.NTemp)
	counts := make([]int, fn.NTemp)
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dst >= 0 {
				counts[in.Dst]++
				defs[in.Dst] = in
			}
		}
	}
	for t := range defs {
		if counts[t] != 1 {
			defs[t] = nil
		}
	}
	return defs
}

// hasSideEffects reports whether removing in could change observable
// behaviour (stores, calls, volatile loads, control flow).
func hasSideEffects(in *ir.Instr, m *ir.Module) bool {
	switch in.Op {
	case ir.OpStoreG, ir.OpStoreSlot, ir.OpStorePtr, ir.OpRet, ir.OpBr, ir.OpCondBr:
		return true
	case ir.OpCall:
		callee := m.Func(in.Call)
		return callee == nil || !callee.Pure
	case ir.OpLoadG:
		return in.G.Volatile
	case ir.OpLoadPtr:
		// Conservatively treat pointer loads as effectful: the pointee may
		// be volatile storage.
		return true
	}
	return false
}
