package opt

import (
	"repro/internal/bugs"
	"repro/internal/ir"
)

// Sched models the instruction scheduler: within each block it hoists
// independent value-producing instructions over their neighbours to shorten
// dependence chains (a deterministic stand-in for list scheduling).
//
// A correct scheduler moves a debug intrinsic together with the definition
// it describes. Defects:
//   - bugs.CLSchedIncomplete: the intrinsic stays behind and is flagged so
//     that its emitted range misses the moved span (50286, 54611).
//   - bugs.GCSchedWrongFrame: in blocks that mix inlined and non-inlined
//     code, locations end up attributed to the inlined frame (105036,
//     105249).
type Sched struct{}

// Name implements Pass.
func (Sched) Name() string { return "sched" }

// Run implements Pass.
func (p Sched) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for _, b := range fn.Blocks {
		changed = p.schedBlock(fn, b, ctx) || changed
	}
	if ctx.Defect(bugs.GCSchedWrongFrame) {
		for _, b := range fn.Blocks {
			mixed := false
			hasInline, hasTop := false, false
			for _, in := range b.Instrs {
				if in.Op == ir.OpDbgVal {
					continue
				}
				if in.At != nil {
					hasInline = true
				} else {
					hasTop = true
				}
			}
			mixed = hasInline && hasTop
			if !mixed {
				continue
			}
			for _, in := range b.Instrs {
				if in.Op == ir.OpDbgVal && in.At == nil && in.Flags&ir.DbgWrongFrame == 0 {
					in.Flags |= ir.DbgWrongFrame
					ctx.Count("sched.wrongframe")
				}
			}
		}
	}
	return changed
}

// schedBlock performs one hoisting sweep: a pure computation is moved above
// an immediately preceding independent instruction.
func (p Sched) schedBlock(fn *ir.Func, b *ir.Block, ctx *Context) bool {
	changed := false
	for i := 1; i < len(b.Instrs); i++ {
		cur := b.Instrs[i]
		prev := b.Instrs[i-1]
		if !schedulable(cur) || !schedulable(prev) {
			continue
		}
		if dependent(prev, cur) {
			continue
		}
		// Hoist loads over non-loads only (a simple latency heuristic that
		// keeps the sweep deterministic and idempotent-ish).
		if !(isLoad(cur) && !isLoad(prev)) {
			continue
		}
		b.Instrs[i-1], b.Instrs[i] = cur, prev
		changed = true
		ctx.Count("sched.hoisted")
		// A debug intrinsic following prev that references prev's result
		// must slide with it; the defective scheduler leaves it flagged.
		if i+1 < len(b.Instrs) {
			next := b.Instrs[i+1]
			if next.Op == ir.OpDbgVal && prev.Dst >= 0 &&
				next.Args[0].IsTemp() && next.Args[0].Temp == prev.Dst {
				if ctx.Defect(bugs.CLSchedIncomplete) {
					next.Flags |= ir.DbgTruncRange
					ctx.Count("sched.flagged-trunc")
				}
			}
		}
	}
	return changed
}

func schedulable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpCopy, ir.OpUn, ir.OpBin, ir.OpAddrG, ir.OpAddrSlot, ir.OpLoadSlot:
		return true
	case ir.OpLoadG:
		return !in.G.Volatile
	}
	return false
}

func isLoad(in *ir.Instr) bool {
	return in.Op == ir.OpLoadG || in.Op == ir.OpLoadSlot
}

// dependent reports whether b reads a's result or they touch the same
// storage.
func dependent(a, b *ir.Instr) bool {
	if a.Dst >= 0 {
		for _, arg := range b.Args {
			if arg.IsTemp() && arg.Temp == a.Dst {
				return true
			}
		}
	}
	if b.Dst >= 0 {
		for _, arg := range a.Args {
			if arg.IsTemp() && arg.Temp == b.Dst {
				return true
			}
		}
		if a.Dst == b.Dst {
			return true
		}
	}
	// Same-slot traffic.
	if (a.Op == ir.OpLoadSlot || a.Op == ir.OpStoreSlot) &&
		(b.Op == ir.OpLoadSlot || b.Op == ir.OpStoreSlot) && a.Slot == b.Slot {
		return true
	}
	// Same-global traffic.
	if (a.Op == ir.OpLoadG || a.Op == ir.OpStoreG) &&
		(b.Op == ir.OpLoadG || b.Op == ir.OpStoreG) && a.G == b.G {
		return true
	}
	return false
}

// IPAReference models the interprocedural reference analysis that discovers
// read-only and non-addressable statics. The analysis itself changes no
// code; under bugs.GCIPARefAddressable it damages the debug values of
// variables loaded from the discovered globals (105159: location lost, code
// unchanged).
type IPAReference struct{}

// Name implements Pass.
func (IPAReference) Name() string { return "ipa-reference" }

// Run implements Pass (unused; module pass).
func (IPAReference) Run(fn *ir.Func, ctx *Context) bool { return false }

// RunModule implements ModulePass.
func (p IPAReference) RunModule(ctx *Context) bool {
	if !ctx.Defect(bugs.GCIPARefAddressable) {
		return false
	}
	m := ctx.Mod
	written := map[*ir.Global]bool{}
	addressed := map[*ir.Global]bool{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpStoreG:
					written[in.G] = true
				case ir.OpAddrG:
					addressed[in.G] = true
				}
			}
		}
	}
	changed := false
	for _, f := range m.Funcs {
		if f.Opaque {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpLoadG || written[in.G] || addressed[in.G] || in.G.Volatile {
					continue
				}
				if in.Dst >= 0 && DropDbgUses(f, in.Dst) > 0 {
					ctx.Count("ipa-reference.dropped-dbg")
					changed = true
				}
			}
		}
	}
	return changed
}

// MarkSuppressedIfDbgless flags variables that lost every debug intrinsic,
// so that code generation emits no DIE for them (Missing DIE).
func MarkSuppressedIfDbgless(fn *ir.Func, vars map[*ir.Var]bool) {
	remaining := map[*ir.Var]int{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.Args[0].Kind != ir.Undef {
				remaining[in.V]++
			}
		}
	}
	for v := range vars {
		if remaining[v] == 0 {
			v.SuppressDIE = true
		}
	}
}
