package opt

import (
	"repro/internal/bugs"
	"repro/internal/ir"
)

// SROA promotes address-taken scalar locals to registers when their address
// provably does not escape: every address value is used only by direct
// loads and stores in the same function.
//
// Debug-information behaviours:
//   - Correct: a debug value is recorded at every store, as mem2reg does.
//   - bugs.GCAddrTakenReg: no debug values are recorded at all — gcc's
//     acknowledged gap for address-taken locals that become registers
//     (105145); the variable's DIE turns hollow.
//   - bugs.CLSROAPartialRestore: debug values are recorded only for stores
//     in the entry block; later control flow loses them (54796), so
//     availability is intermittent.
type SROA struct{}

// Name implements Pass.
func (SROA) Name() string { return "sroa" }

// Run implements Pass.
func (p SROA) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for _, v := range fn.Vars {
		if !v.AddrTaken || v.Slot < 0 || v.Type.Size() != 1 || v.Inlined != nil {
			continue
		}
		if p.promote(fn, ctx, v) {
			changed = true
			ctx.Count("sroa.promoted")
		}
	}
	return changed
}

// promote attempts to register-promote the address-taken variable v.
func (p SROA) promote(fn *ir.Func, ctx *Context, v *ir.Var) bool {
	slot := v.Slot
	// Collect address definitions and validate all uses.
	addrTemps := map[int]bool{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAddrSlot && in.Slot == slot {
				if in.Dst < 0 || !in.Args[0].IsConst() || in.Args[0].C != 0 {
					return false
				}
				addrTemps[in.Dst] = true
			}
		}
	}
	// Every use of an address register must be a direct pointer load, or a
	// pointer store's address operand. Any other use means escape. Debug
	// intrinsics do not pin the address: the pointer variable's binding is
	// voided below instead.
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal {
				continue
			}
			for ai, a := range in.Args {
				if !a.IsTemp() || !addrTemps[a.Temp] {
					continue
				}
				switch {
				case in.Op == ir.OpLoadPtr && ai == 0:
				case in.Op == ir.OpStorePtr && ai == 0:
				case in.Op == ir.OpAddrSlot:
				default:
					return false
				}
			}
			// Redefinition of an address register by unrelated code would
			// confuse the rewrite; require address registers to have only
			// OpAddrSlot definitions.
			if in.Dst >= 0 && addrTemps[in.Dst] && in.Op != ir.OpAddrSlot {
				return false
			}
		}
	}
	// Rewrite. The variable gets a home register.
	reg := fn.NewTemp()
	lossy := ctx.Defect(bugs.GCAddrTakenReg)
	partial := ctx.Defect(bugs.CLSROAPartialRestore)
	entry := fn.Entry()
	for _, b := range fn.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpAddrSlot && in.Slot == slot:
				continue // address computations disappear
			case in.Op == ir.OpLoadSlot && in.Slot == slot:
				in.Op = ir.OpCopy
				in.Args = []ir.Value{ir.TempVal(reg)}
				in.Slot = 0
			case in.Op == ir.OpStoreSlot && in.Slot == slot,
				in.Op == ir.OpStorePtr && in.Args[0].IsTemp() && addrTemps[in.Args[0].Temp]:
				val := in.Args[1]
				st := &ir.Instr{Op: ir.OpCopy, Dst: reg, Args: []ir.Value{val},
					Width: in.Width, Line: in.Line, At: in.At}
				out = append(out, st)
				emitDbg := !lossy && (!partial || b == entry)
				if emitDbg {
					dv := val
					if !dv.IsConst() {
						dv = ir.TempVal(reg)
					}
					out = append(out, &ir.Instr{Op: ir.OpDbgVal, Dst: -1, V: v,
						Args: []ir.Value{dv}, Line: in.Line, At: in.At})
				} else {
					ctx.Count("sroa.dropped-dbg")
				}
				continue
			case in.Op == ir.OpLoadPtr && in.Args[0].IsTemp() && addrTemps[in.Args[0].Temp]:
				in.Op = ir.OpCopy
				in.Args = []ir.Value{ir.TempVal(reg)}
			case in.Op == ir.OpDbgVal && in.Args[0].Kind == ir.SlotRef && in.Args[0].Temp == slot:
				// The whole-lifetime slot location no longer holds.
				if lossy || partial {
					ctx.Count("sroa.dropped-decl")
					continue
				}
				continue // replaced by per-store debug values
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	// Pointer variables that held the replaced address have no storage to
	// refer to any more: their bindings become undefined (a legitimate
	// optimized-out, as the paper's Conjecture 2 discussion notes).
	for t := range addrTemps {
		DropDbgUses(fn, t)
	}
	v.AddrTaken = false
	return true
}
