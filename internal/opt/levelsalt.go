package opt

import (
	"strings"

	"repro/internal/bugs"
)

// The optimizer's output is a function of (module, schedule, active
// defects) — and, for exactly the defects listed below, of the
// optimization level: those catalogued mechanisms branch on ctx.Level
// inside a pass body. Everything else treats levels identically, which is
// what lets the snapshot tier share optimizer states across the levels of
// one version × level grid (their schedules share long prefixes).
//
// Contract: any pass code that consults ctx.Level MUST be gated on a
// defect listed in levelKeyedDefects, and must compare only against the
// level recorded for it. The optimizer snapshot cache (compiler.Optimize
// with Options.Snapshots) relies on this table to decide when an IR state
// may be shared across levels; an unlisted level branch would make
// snapshot-resumed runs diverge from cold ones.
var levelKeyedDefects = map[string]string{
	// constprop.go: CCP folds eagerly except at -Og.
	bugs.GCCCPNoConstValue: "Og",
	// constprop.go: CCP shrinks location ranges only at -Og.
	bugs.GCCCPRangeShrink: "Og",
	// dce.go: copy-prop's range defect fires only at -Og.
	bugs.GCCopyPropRange: "Og",
	// loops.go: the residual LSR salvage gap fires only at -Os.
	bugs.CLLSRNoSalvageSize: "Os",
}

// LevelSalt returns the level-dependent component of an optimizer-state
// cache key: the empty string when no active defect consults the level —
// the optimizer then behaves identically at every level running the same
// schedule — otherwise one token per level comparison the active set can
// reach ("og=0,os=1"-style). Two configurations with equal defect sets
// and equal salts are interchangeable for snapshot reuse; with unequal
// salts they never are.
func LevelSalt(defects map[string]bool, level string) string {
	needOg, needOs := false, false
	for d := range defects {
		switch levelKeyedDefects[d] {
		case "Og":
			needOg = true
		case "Os":
			needOs = true
		}
	}
	var parts []string
	if needOg {
		parts = append(parts, "og="+saltBit(level == "Og"))
	}
	if needOs {
		parts = append(parts, "os="+saltBit(level == "Os"))
	}
	return strings.Join(parts, ",")
}

func saltBit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
