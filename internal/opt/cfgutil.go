package opt

import (
	"repro/internal/ir"
)

// This file provides CFG analyses shared by the passes: dominators, natural
// loop detection, and small structural helpers.

// Dominators computes the immediate-dominator-closed dominator sets of fn
// using the classic iterative dataflow formulation. The returned map gives,
// for each block, the set of blocks that dominate it (including itself).
func Dominators(fn *ir.Func) map[*ir.Block]map[*ir.Block]bool {
	blocks := fn.Blocks
	if len(blocks) == 0 {
		return nil
	}
	entry := fn.Entry()
	all := map[*ir.Block]bool{}
	for _, b := range blocks {
		all[b] = true
	}
	dom := map[*ir.Block]map[*ir.Block]bool{}
	dom[entry] = map[*ir.Block]bool{entry: true}
	for _, b := range blocks {
		if b != entry {
			s := map[*ir.Block]bool{}
			for k := range all {
				s[k] = true
			}
			dom[b] = s
		}
	}
	reach := fn.Reachable()
	preds := fn.Preds()
	changed := true
	for changed {
		changed = false
		for _, b := range blocks {
			if b == entry || !reach[b] {
				// Unreachable blocks keep the full set: dominance over dead
				// code is vacuous and this keeps the meet well-defined.
				continue
			}
			var meet map[*ir.Block]bool
			for _, p := range preds[b] {
				if meet == nil {
					meet = map[*ir.Block]bool{}
					for k := range dom[p] {
						meet[k] = true
					}
				} else {
					for k := range meet {
						if !dom[p][k] {
							delete(meet, k)
						}
					}
				}
			}
			if meet == nil {
				meet = map[*ir.Block]bool{}
			}
			meet[b] = true
			if len(meet) != len(dom[b]) {
				dom[b] = meet
				changed = true
				continue
			}
			for k := range meet {
				if !dom[b][k] {
					dom[b] = meet
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// Loop describes one natural loop.
type Loop struct {
	Header *ir.Block
	Latch  *ir.Block // source of the back edge
	Blocks map[*ir.Block]bool
	// Exits are blocks outside the loop that loop blocks branch to.
	Exits []*ir.Block
}

// FindLoops detects natural loops (back edges to a dominating header).
// Loops sharing a header are merged. Only the reachable CFG is considered:
// unreachable blocks carry the vacuous full dominator set, so without the
// filter every edge out of one would read as a back edge.
func FindLoops(fn *ir.Func) []*Loop {
	dom := Dominators(fn)
	preds := fn.Preds()
	reach := fn.Reachable()
	byHeader := map[*ir.Block]*Loop{}
	var order []*ir.Block
	for _, b := range fn.Blocks {
		if !reach[b] {
			continue
		}
		for _, s := range b.Succs() {
			if dom[b][s] { // back edge b -> s
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Latch: b, Blocks: map[*ir.Block]bool{s: true}}
					byHeader[s] = l
					order = append(order, s)
				}
				l.Latch = b
				// Collect the loop body: blocks that reach the latch
				// without passing through the header.
				stack := []*ir.Block{b}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks[x] {
						continue
					}
					l.Blocks[x] = true
					for _, p := range preds[x] {
						if reach[p] {
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	var loops []*Loop
	for _, h := range order {
		l := byHeader[h]
		seenExit := map[*ir.Block]bool{}
		for b := range l.Blocks {
			for _, s := range b.Succs() {
				if !l.Blocks[s] && !seenExit[s] {
					seenExit[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
		loops = append(loops, l)
	}
	return loops
}

// ReplaceSucc rewrites branches in b from old to new.
func ReplaceSucc(b *ir.Block, old, new *ir.Block) {
	t := b.Term()
	if t == nil {
		return
	}
	for i, tgt := range t.Tgts {
		if tgt == old {
			t.Tgts[i] = new
		}
	}
}

// TempUseCounts returns, for each register, how many non-debug uses it has
// in the function.
func TempUseCounts(fn *ir.Func) []int {
	uses := make([]int, fn.NTemp)
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal {
				continue
			}
			for _, a := range in.Args {
				if a.IsTemp() {
					uses[a.Temp]++
				}
			}
		}
	}
	return uses
}

// DefCounts returns, for each register, how many definitions it has.
func DefCounts(fn *ir.Func) []int {
	defs := make([]int, fn.NTemp)
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dst >= 0 {
				defs[in.Dst]++
			}
		}
	}
	return defs
}

// RemoveUnreachable deletes blocks not reachable from the entry and returns
// whether anything was removed. Debug intrinsics in removed blocks are
// dropped: the code never executes, so no location can be valid there.
func RemoveUnreachable(fn *ir.Func) bool {
	reach := fn.Reachable()
	if len(reach) == len(fn.Blocks) {
		return false
	}
	var kept []*ir.Block
	for _, b := range fn.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	changed := len(kept) != len(fn.Blocks)
	fn.Blocks = kept
	return changed
}
