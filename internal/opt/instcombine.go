package opt

import (
	"repro/internal/bugs"
	"repro/internal/ir"
	"repro/internal/minic"
)

// InstCombine is the peephole simplifier: it folds constant operations and
// applies algebraic identities (x*0, x&0, x+0, ...). When a folded register
// has a single definition, its uses are replaced by the folded constant and
// the definition is deleted.
//
// Correct debug maintenance rewrites debug intrinsics that referenced the
// folded register to the constant. Under bugs.CLInstCombineDrop the
// intrinsics are associated with an undefined location instead — the
// behaviour behind the paper's running example for Conjecture 1 (49975).
type InstCombine struct{}

// Name implements Pass.
func (InstCombine) Name() string { return "instcombine" }

// Run implements Pass.
func (ic InstCombine) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for {
		round := false
		defs := singleDefs(fn)
		dom := Dominators(fn)
		for _, b := range fn.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				v, ok := ic.simplify(in)
				if !ok {
					continue
				}
				round = true
				ctx.Count("instcombine.simplified")
				// Replacing uses of the destination with a register operand
				// is only sound when that operand itself has a single
				// definition (it cannot be redefined between the folded
				// instruction and the uses).
				if v.IsTemp() && defs[v.Temp] == nil {
					in.Op = ir.OpCopy
					in.Args = []ir.Value{v}
					in.UnOp = 0
					in.BinOp = 0
					continue
				}
				// Use replacement additionally requires the definition to
				// dominate every use.
				if in.Dst >= 0 && defs[in.Dst] == in && !defDominatesUses(fn, dom, b, i, in.Dst) {
					in.Op = ir.OpCopy
					in.Args = []ir.Value{v}
					in.UnOp = 0
					in.BinOp = 0
					continue
				}
				if in.Dst >= 0 && defs[in.Dst] == in {
					// Single definition: fold uses and delete.
					replaceAllUses(fn, in.Dst, v)
					if v.IsConst() {
						if ctx.Defect(bugs.CLInstCombineDrop) {
							DropDbgUses(fn, in.Dst)
							ctx.Count("instcombine.dropped-dbg")
						} else {
							RewriteDbgUses(fn, in.Dst, v)
						}
					} else {
						RewriteDbgUses(fn, in.Dst, v)
					}
					RemoveInstr(b, i)
					i--
					defs = singleDefs(fn)
					continue
				}
				// Multiple definitions: rewrite in place as a copy.
				in.Op = ir.OpCopy
				in.Args = []ir.Value{v}
				in.UnOp = 0
				in.BinOp = 0
			}
		}
		if !round {
			break
		}
		changed = true
	}
	return changed
}

// simplify returns the value in computes when it can be folded or reduced
// to one of its operands.
func (InstCombine) simplify(in *ir.Instr) (ir.Value, bool) {
	if v, ok := SalvageValue(in); ok && in.Op != ir.OpCopy {
		return v, true
	}
	if in.Op != ir.OpBin {
		return ir.Value{}, false
	}
	x, y := in.Args[0], in.Args[1]
	// Identities that return an operand unchanged are only valid when the
	// instruction performs no truncation.
	wide := in.Width == nil || in.Width.Width == 64
	// Normalise: put the constant on the right for commutative operators.
	if x.IsConst() && !y.IsConst() {
		switch in.BinOp {
		case minic.Add, minic.Mul, minic.And, minic.Or, minic.Xor, minic.Eq, minic.Ne:
			x, y = y, x
		}
	}
	if !y.IsConst() {
		// Identical operands: x-x = 0, x^x = 0 (same register at the same
		// program point always holds the same value).
		if x.IsTemp() && y.IsTemp() && x.Temp == y.Temp {
			switch in.BinOp {
			case minic.Sub, minic.Xor:
				return ir.ConstVal(0), true
			case minic.And, minic.Or:
				if wide {
					return x, true
				}
			}
		}
		return ir.Value{}, false
	}
	c := y.C
	switch in.BinOp {
	case minic.Mul:
		if c == 0 {
			return ir.ConstVal(0), true
		}
		if c == 1 && wide {
			return x, true
		}
	case minic.And:
		if c == 0 {
			return ir.ConstVal(0), true
		}
		if c == -1 && wide {
			return x, true
		}
	case minic.Add, minic.Sub, minic.Or, minic.Xor, minic.Shl, minic.Shr:
		if c == 0 && wide {
			return x, true
		}
	case minic.Div:
		if c == 1 && wide && (in.Width == nil || !in.Width.Unsigned) {
			return x, true
		}
	case minic.Rem:
		if c == 1 {
			return ir.ConstVal(0), true
		}
	}
	return ir.Value{}, false
}
