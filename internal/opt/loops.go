package opt

import (
	"repro/internal/bugs"
	"repro/internal/ir"
	"repro/internal/minic"
)

// Canonical loop recognition shared by the loop passes. The matcher is
// deliberately tolerant of the verbose register traffic our non-SSA IR
// carries (copies between a variable's home register and use temporaries).

// CanonLoop is a counted loop in canonical shape:
//
//	preheader:  ivReg = copy <init const>; ...; br header
//	header:     t = cmp(ivReg, <limit const>); condbr t, bodyEntry, exit
//	body ...:   arbitrary blocks
//	latch:      ivReg = ivReg + <step const> (through copies); br header
type CanonLoop struct {
	Loop      *Loop
	Preheader *ir.Block
	Exit      *ir.Block
	BodyEntry *ir.Block
	IVReg     int
	Init      int64
	Step      int64
	Limit     int64
	CmpOp     minic.BinOp
	CmpWidth  *minic.IntType
	// IVWidth is the width at which the induction variable wraps (nil for
	// full 64-bit arithmetic).
	IVWidth *minic.IntType
	// IVVars are the source variables whose debug values track IVReg.
	IVVars []*ir.Var
}

// resolveCopies follows single-definition register copies inside fn.
func resolveCopies(defs []*ir.Instr, v ir.Value) ir.Value {
	for i := 0; i < 8 && v.IsTemp(); i++ {
		d := defs[v.Temp]
		if d == nil || d.Op != ir.OpCopy {
			return v
		}
		if d.Width != nil && d.Width.Width < 64 {
			return v
		}
		v = d.Args[0]
	}
	return v
}

// resolveLocal follows copies defined within one block, searching backwards
// from index i; it tolerates multiply-defined registers by using the nearest
// preceding definition in the same block. A truncating copy is followed only
// when its source value is provably already truncated to the same width
// (the source's defining instruction carries an identical width, or the
// source is a constant within range), making the copy an identity move.
func resolveLocal(b *ir.Block, i int, v ir.Value) ir.Value {
	for steps := 0; steps < 12 && v.IsTemp(); steps++ {
		var def *ir.Instr
		defIdx := -1
		for j := i - 1; j >= 0; j-- {
			if b.Instrs[j].Dst == v.Temp {
				def = b.Instrs[j]
				defIdx = j
				break
			}
		}
		if def == nil || def.Op != ir.OpCopy {
			return v
		}
		if def.Width != nil && def.Width.Width < 64 && !truncIsIdentity(b, defIdx, def) {
			return v
		}
		v = def.Args[0]
		i = defIdx
	}
	return v
}

// resolveLocalDef follows identity copies backwards within a block and
// returns the first non-copy defining instruction of v, with its index.
func resolveLocalDef(b *ir.Block, i int, v ir.Value) (*ir.Instr, int) {
	for steps := 0; steps < 12 && v.IsTemp(); steps++ {
		var def *ir.Instr
		defIdx := -1
		for j := i - 1; j >= 0; j-- {
			if b.Instrs[j].Dst == v.Temp {
				def = b.Instrs[j]
				defIdx = j
				break
			}
		}
		if def == nil {
			return nil, -1
		}
		if def.Op == ir.OpCopy &&
			(def.Width == nil || def.Width.Width == 64 || truncIsIdentity(b, defIdx, def)) {
			v = def.Args[0]
			i = defIdx
			continue
		}
		return def, defIdx
	}
	return nil, -1
}

// truncIsIdentity reports whether the truncating copy at b.Instrs[i] cannot
// change its operand's value.
func truncIsIdentity(b *ir.Block, i int, cp *ir.Instr) bool {
	src := cp.Args[0]
	if src.IsConst() {
		return cp.Width.Truncate(src.C) == src.C
	}
	if !src.IsTemp() {
		return false
	}
	for j := i - 1; j >= 0; j-- {
		d := b.Instrs[j]
		if d.Dst != src.Temp {
			continue
		}
		return d.Width != nil && d.Width.Width == cp.Width.Width && d.Width.Unsigned == cp.Width.Unsigned
	}
	return false
}

// MatchCanonLoop tries to put l into canonical shape.
func MatchCanonLoop(fn *ir.Func, l *Loop) (*CanonLoop, bool) {
	h := l.Header
	term := h.Term()
	if term == nil || term.Op != ir.OpCondBr || !term.Args[0].IsTemp() {
		return nil, false
	}
	// Find the comparison defining the branch condition inside the header.
	var cmp *ir.Instr
	cmpIdx := -1
	for i, in := range h.Instrs {
		if in.Dst == term.Args[0].Temp && in.Op == ir.OpBin && in.BinOp.IsComparison() {
			cmp = in
			cmpIdx = i
		}
	}
	if cmp == nil || !cmp.Args[1].IsConst() {
		return nil, false
	}
	ivv := resolveLocal(h, cmpIdx, cmp.Args[0])
	if !ivv.IsTemp() {
		return nil, false
	}
	iv := ivv.Temp
	// Body entry must be inside the loop; exit must be outside.
	var bodyEntry, exit *ir.Block
	switch {
	case l.Blocks[term.Tgts[0]] && !l.Blocks[term.Tgts[1]]:
		bodyEntry, exit = term.Tgts[0], term.Tgts[1]
	case l.Blocks[term.Tgts[1]] && !l.Blocks[term.Tgts[0]]:
		// Inverted test; normalising would flip the comparison. Skip.
		return nil, false
	default:
		return nil, false
	}
	// The latch must update the IV by a constant step: its last definition
	// of the IV register resolves (through identity copies) to an addition
	// of the IV and a constant.
	latch := l.Latch
	updIdx := -1
	for j := len(latch.Instrs) - 1; j >= 0; j-- {
		if latch.Instrs[j].Dst == iv {
			updIdx = j
			break
		}
	}
	if updIdx < 0 {
		return nil, false
	}
	upd := latch.Instrs[updIdx]
	var add *ir.Instr
	addIdx := -1
	var ivWidth *minic.IntType
	switch {
	case upd.Op == ir.OpBin && upd.BinOp == minic.Add:
		add, addIdx, ivWidth = upd, updIdx, upd.Width
	case upd.Op == ir.OpCopy:
		def, di := resolveLocalDef(latch, updIdx, upd.Args[0])
		if def == nil || def.Op != ir.OpBin || def.BinOp != minic.Add {
			return nil, false
		}
		add, addIdx = def, di
		// The stored value wraps at the narrower of the addition's and the
		// store copy's widths; mismatched widths are not canonical.
		switch {
		case upd.Width == nil:
			ivWidth = add.Width
		case add.Width == nil || (add.Width.Width == upd.Width.Width && add.Width.Unsigned == upd.Width.Unsigned):
			ivWidth = upd.Width
		default:
			return nil, false
		}
	default:
		return nil, false
	}
	a := resolveLocal(latch, addIdx, add.Args[0])
	if !a.IsTemp() || a.Temp != iv || !add.Args[1].IsConst() {
		return nil, false
	}
	step := add.Args[1].C
	if step == 0 {
		return nil, false
	}
	// The preheader is the unique non-latch predecessor of the header, and
	// it must initialise the IV with a constant as its last IV definition.
	preds := fn.Preds()
	var pre *ir.Block
	for _, p := range preds[h] {
		if !l.Blocks[p] {
			if pre != nil {
				return nil, false
			}
			pre = p
		}
	}
	if pre == nil {
		return nil, false
	}
	var initC int64
	haveInit := false
	for _, in := range pre.Instrs {
		if in.Dst == iv && in.Op == ir.OpCopy && in.Args[0].IsConst() {
			initC = in.Args[0].C
			if in.Width != nil {
				initC = in.Width.Truncate(initC)
			}
			haveInit = true
		} else if in.Dst == iv {
			haveInit = false
		}
	}
	if !haveInit {
		return nil, false
	}
	// No other definitions of the IV inside the loop beyond the latch.
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Dst == iv && b != latch {
				return nil, false
			}
		}
	}
	cl := &CanonLoop{Loop: l, Preheader: pre, Exit: exit, BodyEntry: bodyEntry,
		IVReg: iv, Init: initC, Step: step, Limit: cmp.Args[1].C,
		CmpOp: cmp.BinOp, CmpWidth: cmp.Width, IVWidth: ivWidth}
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.Args[0].IsTemp() && in.Args[0].Temp == iv {
				cl.IVVars = appendVarOnce(cl.IVVars, in.V)
			}
		}
	}
	return cl, true
}

// linearChain returns the single-successor block chain from entry to the
// loop latch, or false if the body is not linear.
func linearChain(entry *ir.Block, l *Loop) ([]*ir.Block, bool) {
	var chain []*ir.Block
	cur := entry
	for steps := 0; steps < 8; steps++ {
		if !l.Blocks[cur] {
			return nil, false
		}
		chain = append(chain, cur)
		if cur == l.Latch {
			return chain, true
		}
		succs := cur.Succs()
		if len(succs) != 1 {
			return nil, false
		}
		cur = succs[0]
	}
	return nil, false
}

func appendVarOnce(vs []*ir.Var, v *ir.Var) []*ir.Var {
	for _, x := range vs {
		if x == v {
			return vs
		}
	}
	return append(vs, v)
}

// TripCount simulates the exit test and returns the iteration count, or
// false if it exceeds max or never terminates within it.
func (cl *CanonLoop) TripCount(max int) (int, bool) {
	n, _, ok := cl.simulate(max)
	return n, ok
}

// TripCountNoWrap is like TripCount but additionally reports whether the
// induction variable stayed within its width throughout (required by LSR's
// wide accumulator).
func (cl *CanonLoop) TripCountNoWrap(max int) (trip int, noWrap, ok bool) {
	return cl.simulate(max)
}

func (cl *CanonLoop) simulate(max int) (int, bool, bool) {
	iv := cl.Init
	noWrap := true
	for n := 0; n <= max; n++ {
		taken := ir.EvalBin(cl.CmpOp, iv, cl.Limit, cl.CmpWidth)
		if taken == 0 {
			return n, noWrap, true
		}
		next := iv + cl.Step
		if cl.IVWidth != nil && cl.IVWidth.Truncate(next) != next {
			noWrap = false
			next = cl.IVWidth.Truncate(next)
		}
		iv = next
	}
	return 0, noWrap, false
}

// LoopRotate converts while-style loops into do-while form guarded by a
// cloned test: the header's instructions are duplicated into a guard block
// before the loop and into the latch, and the original header disappears.
//
// Under bugs.CLLoopRotateDrop the duplicated header code omits the debug
// intrinsics, losing the variable updates the header carried (49580).
type LoopRotate struct{}

// Name implements Pass.
func (LoopRotate) Name() string { return "looprotate" }

// Run implements Pass.
func (p LoopRotate) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for {
		progress := false
		for _, l := range FindLoops(fn) {
			if p.rotate(fn, l, ctx) {
				ctx.Count("looprotate.rotated")
				RemoveUnreachable(fn)
				progress = true
				break // loop structures are stale after a rotation
			}
		}
		if !progress {
			break
		}
		changed = true
	}
	return changed
}

func (LoopRotate) rotate(fn *ir.Func, l *Loop, ctx *Context) bool {
	h := l.Header
	term := h.Term()
	if term == nil || term.Op != ir.OpCondBr {
		return false
	}
	if h == l.Latch {
		return false // already bottom-tested
	}
	// The header must contain only speculatable instructions (it will run
	// once more on the guard path).
	if len(h.Instrs) > 8 {
		return false
	}
	for _, in := range h.Instrs[:len(h.Instrs)-1] {
		switch in.Op {
		case ir.OpCopy, ir.OpUn, ir.OpBin, ir.OpDbgVal:
		case ir.OpLoadG:
			if in.G.Volatile {
				return false
			}
		default:
			return false
		}
	}
	latch := l.Latch
	lt := latch.Term()
	if lt == nil || lt.Op != ir.OpBr || lt.Tgts[0] != h {
		return false
	}
	dropDbg := ctx.Defect(bugs.CLLoopRotateDrop)
	cloneHeader := func() []*ir.Instr {
		var out []*ir.Instr
		for _, in := range h.Instrs {
			if in.Op == ir.OpDbgVal && dropDbg {
				ctx.Count("looprotate.dropped-dbg")
				continue
			}
			out = append(out, in.Clone())
		}
		return out
	}
	// Guard block: clone of the header placed before the loop.
	preds := fn.Preds()
	guard := fn.NewBlock()
	guard.Instrs = cloneHeader()
	for _, p := range preds[h] {
		if p != latch {
			ReplaceSucc(p, h, guard)
		}
	}
	// Latch: replace the back edge with the cloned test.
	latch.Instrs = latch.Instrs[:len(latch.Instrs)-1]
	latch.Instrs = append(latch.Instrs, cloneHeader()...)
	// The original header now only serves its internal successors; it has
	// no predecessors left and will be removed as unreachable, after its
	// role as branch target is gone.
	return true
}

// LoopUnroll fully unrolls canonical counted loops with a small constant
// trip count and a single-block body. Each unrolled copy keeps its debug
// intrinsics and source lines, so one source line maps to several
// instruction ranges afterwards (the situation footnote 3 of the paper
// discusses).
type LoopUnroll struct {
	// MaxTrip bounds full unrolling; defaults to 4.
	MaxTrip int
	// MaxBody bounds the body size in instructions; defaults to 24.
	MaxBody int
}

// Name implements Pass.
func (LoopUnroll) Name() string { return "loopunroll" }

// Run implements Pass.
func (p LoopUnroll) Run(fn *ir.Func, ctx *Context) bool {
	maxTrip := p.MaxTrip
	if maxTrip == 0 {
		maxTrip = 4
	}
	maxBody := p.MaxBody
	if maxBody == 0 {
		maxBody = 24
	}
	changed := false
	for {
		progress := false
		for _, l := range FindLoops(fn) {
			cl, ok := MatchCanonLoop(fn, l)
			if !ok {
				continue
			}
			// The body must be a linear block chain from the body entry to
			// the latch, covering the whole loop except the header.
			chain, ok := linearChain(cl.BodyEntry, l)
			if !ok || len(chain)+1 != len(l.Blocks) {
				continue
			}
			total := 0
			for _, b := range chain {
				total += len(b.Instrs)
			}
			if total > maxBody {
				continue
			}
			trip, ok := cl.TripCount(maxTrip)
			if !ok || trip == 0 {
				continue
			}
			// Instantiate the chain trip times between preheader and exit.
			entryOf := make([]*ir.Block, trip+1)
			for k := 0; k < trip; k++ {
				bmap := map[*ir.Block]*ir.Block{}
				for _, b := range chain {
					bmap[b] = fn.NewBlock()
				}
				for _, b := range chain {
					nb := bmap[b]
					for _, in := range b.Instrs {
						ni := in.Clone()
						for ti, tgt := range ni.Tgts {
							if nt, ok := bmap[tgt]; ok {
								ni.Tgts[ti] = nt
							}
						}
						nb.Instrs = append(nb.Instrs, ni)
					}
				}
				entryOf[k] = bmap[chain[0]]
			}
			entryOf[trip] = cl.Exit
			ReplaceSucc(cl.Preheader, l.Header, entryOf[0])
			// Retarget back edges: each copy's latch still points at the
			// original header; it must continue into the next copy, and the
			// last one into the exit.
			for k := 0; k < trip; k++ {
				next := entryOf[k+1]
				// Walk the k-th copy chain and retarget header references.
				seen := map[*ir.Block]bool{}
				stack := []*ir.Block{entryOf[k]}
				for len(stack) > 0 {
					b := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if seen[b] || b == cl.Exit || b == next {
						continue
					}
					seen[b] = true
					ReplaceSucc(b, l.Header, next)
					for _, s := range b.Succs() {
						stack = append(stack, s)
					}
				}
			}
			RemoveUnreachable(fn)
			ctx.Count("loopunroll.unrolled")
			progress = true
			break // loop structures are stale after an unroll
		}
		if !progress {
			break
		}
		changed = true
	}
	return changed
}

// LoopDelete removes loops whose bodies have no externally visible effects
// and whose computed values are unused after the loop.
//
// A correct implementation records the final induction-variable value as a
// constant debug location at the exit. Under bugs.CLLoopDeleteDrop all debug
// information of the variables the loop defined is discarded instead, which
// downgrades their DIEs to missing (49546).
type LoopDelete struct{}

// Name implements Pass.
func (LoopDelete) Name() string { return "loopdelete" }

// Run implements Pass.
func (p LoopDelete) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
restart:
	for _, l := range FindLoops(fn) {
		if len(l.Exits) != 1 {
			continue
		}
		if !loopIsPure(l, ctx.Mod) {
			continue
		}
		// Values defined inside must not be used outside.
		defined := map[int]bool{}
		for b := range l.Blocks {
			for _, in := range b.Instrs {
				if in.Dst >= 0 {
					defined[in.Dst] = true
				}
			}
		}
		usedOutside := false
		for _, b := range fn.Blocks {
			if l.Blocks[b] {
				continue
			}
			for _, in := range b.Instrs {
				if in.Op == ir.OpDbgVal {
					continue
				}
				for _, a := range in.Args {
					if a.IsTemp() && defined[a.Temp] {
						usedOutside = true
					}
				}
			}
		}
		if usedOutside {
			continue
		}
		exit := l.Exits[0]
		cl, canon := MatchCanonLoop(fn, l)
		// Collect variables whose debug values live in the loop.
		loopVars := map[*ir.Var]bool{}
		for b := range l.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpDbgVal {
					loopVars[in.V] = true
				}
			}
		}
		// Retarget every entering edge to the exit.
		preds := fn.Preds()
		for _, pb := range preds[l.Header] {
			if !l.Blocks[pb] {
				ReplaceSucc(pb, l.Header, exit)
			}
		}
		RemoveUnreachable(fn)
		if ctx.Defect(bugs.CLLoopDeleteDrop) {
			// Defective: all trace of the loop's variables disappears.
			for v := range loopVars {
				for _, b := range fn.Blocks {
					for i := 0; i < len(b.Instrs); i++ {
						if b.Instrs[i].Op == ir.OpDbgVal && b.Instrs[i].V == v {
							RemoveInstr(b, i)
							i--
						}
					}
				}
			}
			MarkSuppressedIfDbgless(fn, loopVars)
			ctx.Count("loopdelete.dropped-dbg")
		} else {
			// Correct: the final IV value is recorded at the exit; other
			// loop-local variables become optimized-out there.
			var prologue []*ir.Instr
			if canon {
				if trip, ok := cl.TripCount(1 << 16); ok {
					final := cl.Init + int64(trip)*cl.Step
					for _, v := range cl.IVVars {
						prologue = append(prologue, &ir.Instr{Op: ir.OpDbgVal, Dst: -1,
							V: v, Args: []ir.Value{ir.ConstVal(final)}, Line: exitLine(exit)})
						delete(loopVars, v)
					}
				}
			}
			for v := range loopVars {
				prologue = append(prologue, &ir.Instr{Op: ir.OpDbgVal, Dst: -1,
					V: v, Args: []ir.Value{ir.UndefVal()}, Line: exitLine(exit)})
			}
			exit.Instrs = append(prologue, exit.Instrs...)
		}
		changed = true
		ctx.Count("loopdelete.deleted")
		goto restart // loop structures are stale after a deletion
	}
	return changed
}

func exitLine(b *ir.Block) int {
	for _, in := range b.Instrs {
		if in.Line > 0 {
			return in.Line
		}
	}
	return 0
}

func loopIsPure(l *Loop, m *ir.Module) bool {
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStoreG, ir.OpStorePtr, ir.OpLoadPtr, ir.OpAddrSlot, ir.OpAddrG:
				return false
			case ir.OpStoreSlot:
				return false // slots may be address-taken; be conservative
			case ir.OpCall:
				callee := m.Func(in.Call)
				if callee == nil || !callee.Pure {
					return false
				}
			case ir.OpLoadG:
				if in.G.Volatile {
					return false
				}
			case ir.OpRet:
				return false
			}
		}
	}
	return true
}

// IVSimplify canonicalises induction variables. For single-trip loops it
// propagates the (constant) initial value into the body's uses.
//
// Correct behaviour rewrites the IV's debug values in the body to the
// constant; under bugs.CLIVSimplifyDrop they become undefined (49973).
type IVSimplify struct{}

// Name implements Pass.
func (IVSimplify) Name() string { return "ivsimplify" }

// Run implements Pass.
func (p IVSimplify) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for _, l := range FindLoops(fn) {
		cl, ok := MatchCanonLoop(fn, l)
		if !ok {
			continue
		}
		trip, ok := cl.TripCount(1)
		if !ok || trip != 1 {
			continue
		}
		c := ir.ConstVal(cl.Init)
		// Only body blocks are touched: in the header the IV may already
		// hold the post-step value on the second test, and the latch must
		// keep performing the real update.
		for b := range l.Blocks {
			if b == l.Header || b == l.Latch {
				continue
			}
			for _, in := range b.Instrs {
				if in.Op == ir.OpDbgVal {
					if in.Args[0].IsTemp() && in.Args[0].Temp == cl.IVReg {
						if ctx.Defect(bugs.CLIVSimplifyDrop) {
							in.Args[0] = ir.UndefVal()
							ctx.Count("ivsimplify.dropped-dbg")
						} else {
							in.Args[0] = c
						}
						changed = true
					}
					continue
				}
				for i, a := range in.Args {
					if a.IsTemp() && a.Temp == cl.IVReg {
						in.Args[i] = c
						changed = true
						ctx.Count("ivsimplify.propagated")
					}
				}
			}
		}
	}
	return changed
}

// LSR is loop strength reduction: multiplications of an induction variable
// by a loop-invariant constant are replaced by a second accumulator that
// steps by the scaled amount.
//
// A correct implementation leaves the IV's debug values untouched (the IV
// itself survives for the exit test). Under bugs.CLLSRNoSalvage the pass
// fails to salvage the IV's debug intrinsics inside the loop, leaving the
// variable optimized-out exactly within the loop body (53855a); under
// bugs.CLLSRNoSalvageSize the same happens only at size-optimizing levels
// (the post-fix residue, 53855b).
type LSR struct{}

// Name implements Pass.
func (LSR) Name() string { return "lsr" }

// Run implements Pass.
func (p LSR) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for _, l := range FindLoops(fn) {
		cl, ok := MatchCanonLoop(fn, l)
		if !ok {
			continue
		}
		// The wide accumulator is only equivalent while the induction
		// variable does not wrap at its own width.
		trip, noWrap, ok := cl.TripCountNoWrap(1 << 16)
		if !ok || !noWrap {
			continue
		}
		final := cl.Init + int64(trip)*cl.Step
		// Find iv*const multiplications inside the loop.
		var muls []*ir.Instr
		var mulBlocks []*ir.Block
		for b := range l.Blocks {
			for i, in := range b.Instrs {
				if in.Op != ir.OpBin || in.BinOp != minic.Mul {
					continue
				}
				a := resolveLocal(b, i, in.Args[0])
				if a.IsTemp() && a.Temp == cl.IVReg && in.Args[1].IsConst() && in.Args[1].C != 0 {
					// A narrower multiplication is safe only when the
					// product never overflows that width; iv*k is monotonic
					// in iv, so checking both extremes suffices.
					k := in.Args[1].C
					if in.Width != nil && in.Width.Width < 64 {
						lo, hi := cl.Init*k, final*k
						if in.Width.Truncate(lo) != lo || in.Width.Truncate(hi) != hi {
							continue
						}
					}
					muls = append(muls, in)
					mulBlocks = append(mulBlocks, b)
				}
			}
		}
		if len(muls) == 0 {
			continue
		}
		for mi, mul := range muls {
			k := mul.Args[1].C
			acc := fn.NewTemp()
			// Initialise the accumulator in the preheader, right before the
			// terminator.
			pre := cl.Preheader
			// Accumulator scaffolding is artificial code: it belongs to no
			// source line, exactly like the induction rewrites of real
			// strength reduction.
			initInstr := &ir.Instr{Op: ir.OpCopy, Dst: acc,
				Args: []ir.Value{ir.ConstVal(cl.Init * k)}}
			pre.Instrs = append(pre.Instrs[:len(pre.Instrs)-1],
				initInstr, pre.Instrs[len(pre.Instrs)-1])
			// Step the accumulator in the latch, before the terminator.
			latch := cl.Loop.Latch
			stepInstr := &ir.Instr{Op: ir.OpBin, Dst: acc, BinOp: minic.Add,
				Args: []ir.Value{ir.TempVal(acc), ir.ConstVal(cl.Step * k)}}
			latch.Instrs = append(latch.Instrs[:len(latch.Instrs)-1],
				stepInstr, latch.Instrs[len(latch.Instrs)-1])
			// The multiplication becomes a copy of the accumulator.
			mul.Op = ir.OpCopy
			mul.BinOp = 0
			mul.Args = []ir.Value{ir.TempVal(acc)}
			_ = mulBlocks[mi]
			ctx.Count("lsr.reduced")
		}
		// The partial fix (trunkstar) salvages the common single-reduction
		// case; the residue (53855b) needs a size-optimizing level and a
		// loop with several reduced expressions, which the fix's provisions
		// do not cover.
		lossy := ctx.Defect(bugs.CLLSRNoSalvage) ||
			(ctx.Defect(bugs.CLLSRNoSalvageSize) && ctx.Level == "Os" && len(muls) >= 2)
		if lossy {
			for b := range l.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.OpDbgVal && in.Args[0].IsTemp() && in.Args[0].Temp == cl.IVReg {
						in.Args[0] = ir.UndefVal()
						ctx.Count("lsr.dropped-dbg")
					}
				}
			}
			// The salvage failure voids the location over the whole loop:
			// the entry location must not leak into the rewritten body, on
			// any path and regardless of later block cloning.
			for _, v := range cl.IVVars {
				for b := range l.Blocks {
					undef := &ir.Instr{Op: ir.OpDbgVal, Dst: -1, V: v,
						Args: []ir.Value{ir.UndefVal()}, Line: exitLine(b)}
					b.Instrs = append([]*ir.Instr{undef}, b.Instrs...)
				}
			}
		}
		changed = true
	}
	return changed
}
