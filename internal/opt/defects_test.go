package opt

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/ir"
	"repro/internal/minic"
)

// These tests verify, mechanism by mechanism, that each injected defect (a)
// damages debug metadata when active and (b) leaves it intact when not —
// the contract the Table 3 catalog relies on. Run-time behaviour
// equivalence under defects is covered by the differential tests.

// dbgStates summarises a function's debug intrinsics per variable name.
func dbgStates(m *ir.Module, fn string) map[string][]ir.ValueKind {
	out := map[string][]ir.ValueKind{}
	for _, b := range m.Func(fn).Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal {
				out[in.V.Name] = append(out[in.V.Name], in.Args[0].Kind)
			}
		}
	}
	return out
}

func countUndef(states map[string][]ir.ValueKind, name string) int {
	n := 0
	for _, k := range states[name] {
		if k == ir.Undef {
			n++
		}
	}
	return n
}

func runWith(t *testing.T, src string, passes []Pass, defects map[string]bool, level string) *ir.Module {
	t.Helper()
	prog := minic.MustParse(src)
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	RunPipeline(m, passes, Options{BisectLimit: -1, Defects: defects, Level: level})
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestMechanismVRPDrop(t *testing.T) {
	src := `
int g;
int main(void) {
  int x = g;
  if (x == 7) {
    g = x + 1;
  }
  return 0;
}`
	passes := []Pass{Mem2Reg{}, VRP{}, DCE{}}
	clean := runWith(t, src, passes, nil, "O2")
	buggy := runWith(t, src, passes, map[string]bool{bugs.GCVRPDrop: true}, "O2")
	cs, bs := dbgStates(clean, "main"), dbgStates(buggy, "main")
	if countUndef(bs, "x") < countUndef(cs, "x") {
		t.Errorf("VRP defect should not reduce undef count: clean=%v buggy=%v", cs["x"], bs["x"])
	}
}

func TestMechanismDSEDrop(t *testing.T) {
	src := `
int g;
int main(void) {
  int a = 5;
  g = a;
  g = a + 1;
  return 0;
}`
	passes := []Pass{Mem2Reg{}, DSE{}}
	stats := map[string]int{}
	prog := minic.MustParse(src)
	m, _ := ir.Lower(prog)
	RunPipeline(m, passes, Options{BisectLimit: -1, Stats: stats,
		Defects: map[string]bool{bugs.GCDSEDrop: true}})
	if stats["dse.removed-stores"] == 0 {
		t.Skip("dead store not eliminated in this configuration")
	}
	// The defect is allowed to fire only when the store is removed.
	if stats["dse.dropped-dbg"] > 0 && stats["dse.removed-stores"] == 0 {
		t.Error("defect fired without the transformation")
	}
}

func TestMechanismLoopRotateDrop(t *testing.T) {
	// The assignment expression in the condition puts a debug update into
	// the loop header, which rotation duplicates (or, defectively, drops).
	src := `
volatile int c;
int main(void) {
  int i = 0;
  int t = 0;
  while ((t = i + 1) < 5) {
    c = t;
    i = t;
  }
  return 0;
}`
	passes := []Pass{Mem2Reg{}, LoopRotate{}}
	stats := map[string]int{}
	prog := minic.MustParse(src)
	m, _ := ir.Lower(prog)
	RunPipeline(m, passes, Options{BisectLimit: -1, Stats: stats,
		Defects: map[string]bool{bugs.CLLoopRotateDrop: true}})
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if stats["looprotate.rotated"] == 0 {
		t.Skip("loop not rotated")
	}
	if stats["looprotate.dropped-dbg"] == 0 {
		t.Error("rotation defect did not drop any metadata")
	}
	// Semantics hold regardless.
	ref, err := ir.Interp(mustLower(t, src), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ir.Interp(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(got) {
		t.Error("rotation defect changed behaviour")
	}
}

func mustLower(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Lower(minic.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMechanismSROAAddrTaken(t *testing.T) {
	src := `
int g;
int main(void) {
  int x = 1;
  int* p = &x;
  *p = 5;
  g = *p;
  return g;
}`
	passes := []Pass{Mem2Reg{}, CopyProp{}, SROA{}}
	clean := runWith(t, src, passes, nil, "O2")
	hollow := runWith(t, src, passes, map[string]bool{bugs.GCAddrTakenReg: true}, "O2")
	cs, hs := dbgStates(clean, "main"), dbgStates(hollow, "main")
	if len(cs["x"]) == 0 {
		t.Skip("SROA did not promote x")
	}
	if len(hs["x"]) >= len(cs["x"]) {
		t.Errorf("addr-taken defect should lose x's metadata: clean=%d buggy=%d",
			len(cs["x"]), len(hs["x"]))
	}
}

func TestMechanismPureConstDrop(t *testing.T) {
	src := `
int zero(void) { return 0; }
int g;
int main(void) {
  int x = zero();
  g = x + 1;
  return g;
}`
	// CCP completes the constant's journey into the home register's
	// metadata; the defect must survive that recovery attempt.
	passes := []Pass{Mem2Reg{}, IPAPureConst{}, CCP{}}
	clean := runWith(t, src, passes, nil, "O2")
	buggy := runWith(t, src, passes, map[string]bool{bugs.GCPureConstDrop: true}, "O2")
	cleanConst, buggyConst := false, false
	for _, k := range dbgStates(clean, "main")["x"] {
		if k == ir.Const {
			cleanConst = true
		}
	}
	for _, k := range dbgStates(buggy, "main")["x"] {
		if k == ir.Const {
			buggyConst = true
		}
	}
	if !cleanConst {
		t.Error("correct fold must keep x's constant")
	}
	if buggyConst {
		t.Error("defective fold must lose x's constant")
	}
}

func TestMechanismSchedFlags(t *testing.T) {
	src := `
int a;
int b;
int g;
extern void opaque(int x);
int main(void) {
  int x = a + 1;
  int y = b;
  g = x;
  opaque(y);
  return 0;
}`
	passes := []Pass{Mem2Reg{}, Sched{}}
	prog := minic.MustParse(src)
	m, _ := ir.Lower(prog)
	stats := map[string]int{}
	RunPipeline(m, passes, Options{BisectLimit: -1, Stats: stats,
		Defects: map[string]bool{bugs.CLSchedIncomplete: true}})
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if stats["sched.hoisted"] == 0 {
		t.Skip("nothing scheduled")
	}
	// Any flagged intrinsic must carry the truncation bit.
	flagged := 0
	for _, b := range m.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.Flags&ir.DbgTruncRange != 0 {
				flagged++
			}
		}
	}
	if stats["sched.flagged-trunc"] != flagged {
		t.Errorf("stat/flag mismatch: %d vs %d", stats["sched.flagged-trunc"], flagged)
	}
}

func TestMechanismTopLevelReorderDrop(t *testing.T) {
	src := `
int x = 7;
int y = 7;
int g;
int main(void) {
  int v = y;
  g = v + x;
  return g;
}`
	passes := []Pass{Mem2Reg{}, TopLevelReorder{}}
	clean := runWith(t, src, passes, nil, "O2")
	buggy := runWith(t, src, passes, map[string]bool{bugs.GCTopLevelReorder: true}, "O2")
	cs, bs := dbgStates(clean, "main"), dbgStates(buggy, "main")
	if countUndef(bs, "v") <= countUndef(cs, "v") {
		t.Errorf("toplevel-reorder defect should damage v: clean=%v buggy=%v", cs["v"], bs["v"])
	}
}

func TestMechanismInlineWrongFrame(t *testing.T) {
	src := `
int g;
int callee(int p) { return p * 2; }
int main(void) {
  g = callee(21);
  return g;
}`
	passes := []Pass{Mem2Reg{}, Inline{}}
	m := runWith(t, src, passes, map[string]bool{bugs.GCInlineWrongLoc: true}, "O2")
	flagged := false
	for _, b := range m.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.Flags&ir.DbgWrongFrame != 0 {
				flagged = true
			}
		}
	}
	if !flagged {
		t.Error("inline wrong-frame defect set no flags")
	}
	obs, err := ir.Interp(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Ret != 42 {
		t.Errorf("ret = %d, want 42", obs.Ret)
	}
}

func TestMechanismLegacyWeakTracking(t *testing.T) {
	src := `
int g;
int main(void) {
  int a = g;
  int b = 3;
  g = a + b;
  return 0;
}`
	passes := []Pass{Mem2Reg{}}
	clean := runWith(t, src, passes, nil, "O2")
	legacy := runWith(t, src, passes, map[string]bool{bugs.LegacyWeakTracking: true}, "O2")
	cs, ls := dbgStates(clean, "main"), dbgStates(legacy, "main")
	// The constant-assigned b keeps its metadata; the register-assigned a
	// loses everything under legacy tracking.
	if len(ls["b"]) == 0 {
		t.Error("legacy tracking must keep constant stores")
	}
	if len(ls["a"]) >= len(cs["a"]) {
		t.Errorf("legacy tracking should lose register stores: clean=%d legacy=%d",
			len(cs["a"]), len(ls["a"]))
	}
}

func TestMechanismSimplifyCFGFoldDrop(t *testing.T) {
	src := `
int g;
int main(void) {
  int flag = 1;
  int x = 9;
  if (flag) {
    g = x;
  }
  return 0;
}`
	passes := []Pass{Mem2Reg{}, CCP{}, SimplifyCFG{}}
	stats := map[string]int{}
	prog := minic.MustParse(src)
	m, _ := ir.Lower(prog)
	RunPipeline(m, passes, Options{BisectLimit: -1, Stats: stats, Level: "O1",
		Defects: map[string]bool{bugs.GCCleanupCFGDrop: true}})
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if stats["simplifycfg.folded-branches"] == 0 {
		t.Skip("constant branch not folded")
	}
	// Behaviour still intact.
	ref, _ := ir.Interp(mustLower(t, src), 0)
	got, err := ir.Interp(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(got) {
		t.Error("cleanup defect changed behaviour")
	}
}
