package opt

import (
	"testing"

	"repro/internal/bugs"
	"repro/internal/ir"
	"repro/internal/minic"
)

// allPasses is a representative aggressive pipeline used by the tests.
func allPasses() []Pass {
	return []Pass{
		Mem2Reg{},
		IPAPureConst{},
		Inline{},
		SimplifyCFG{},
		InstCombine{},
		CCP{},
		VRP{},
		SROA{},
		LoopRotate{},
		LoopUnroll{},
		IVSimplify{},
		LSR{},
		LoopDelete{},
		DSE{},
		CopyProp{},
		InstCombine{},
		CCP{},
		DCE{},
		SimplifyCFG{},
		TopLevelReorder{},
		DCE{},
	}
}

func lowerSrc(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog := minic.MustParse(src)
	m, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify O0: %v", err)
	}
	return m
}

// checkSemantics optimizes a copy of the module with the given pipeline and
// defects, verifying behaviour equivalence against the unoptimized module.
func checkSemantics(t *testing.T, m *ir.Module, passes []Pass, defects map[string]bool) *ir.Module {
	t.Helper()
	ref, err := ir.Interp(m, 0)
	if err != nil {
		t.Fatalf("reference interp: %v", err)
	}
	optMod := m.Clone()
	RunPipeline(optMod, passes, Options{BisectLimit: -1, Defects: defects})
	if err := ir.Verify(optMod); err != nil {
		t.Fatalf("optimized module fails verify: %v\n%s", err, optMod)
	}
	got, err := ir.Interp(optMod, 0)
	if err != nil {
		t.Fatalf("optimized interp: %v\n%s", err, optMod)
	}
	if !ref.Equal(got) {
		t.Fatalf("optimization changed behaviour\nref: ret=%d events=%v\ngot: ret=%d events=%v\nIR:\n%s",
			ref.Ret, ref.Events, got.Ret, got.Events, optMod)
	}
	return optMod
}

var semanticPrograms = []string{
	`
int b[10][2];
int a;
int main(void) {
  int i = 0;
  int j;
  int k;
  for (; i < 10; i = i + 1) {
    j = 0;
    k = 0;
    for (; k < 1; k = k + 1) {
      a = b[i][j * k];
    }
  }
  return a;
}`,
	`
volatile int c;
int a[2][4] = {{1, 2, 3, 4}, {5, 6, 7, 8}};
int main(void) {
  int i;
  int j;
  for (i = 0; i < 2; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) {
      c = a[i][j];
    }
  }
  return 0;
}`,
	`
extern void opaque(int a, int b, int c);
short a = 4;
void b(int c) {
  short v1 = 0;
  int v2;
  int v3 = 2;
  int v7 = (v2 = a) == 0 & c;
  opaque(v1, v2, v7);
}
int main(void) {
  b(a);
  a = 0;
  return 0;
}`,
	`
int b = 0;
int a;
void foo(int* d) { a = 0; }
int main(void) {
  int* v1 = &b;
  int** v2 = &v1;
f: if (a) {
    goto f;
  }
  *v2 = v1;
  foo(*v2);
  return 0;
}`,
	`
int zero(void) { return 0; }
int g;
int main(void) {
  int x = zero() + 3;
  g = x * 2;
  return g;
}`,
	`
extern void opaque(int x);
int main(void) {
  int j;
  for (j = 0; j < 1; j = j + 1) {
    opaque(j);
  }
  return 0;
}`,
	`
int g;
int main(void) {
  int t = 0;
  int i;
  for (i = 0; i < 4; i = i + 1) {
    t = t + i;
  }
  g = t;
  return t;
}`,
	`
int x = 5;
int y = 5;
int g;
int main(void) {
  g = x + y;
  return g;
}`,
	`
int g;
int main(void) {
  int dead1 = 11;
  int dead2 = dead1 * 3;
  g = 1;
  g = 2;
  return g + dead2 - dead2;
}`,
	`
unsigned short b[4] = {1, 2, 3, 4};
volatile int c;
int main(void) {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    c = b[i];
  }
  return 0;
}`,
}

func TestPipelinePreservesSemantics(t *testing.T) {
	for i, src := range semanticPrograms {
		m := lowerSrc(t, src)
		checkSemantics(t, m, allPasses(), nil)
		_ = i
	}
}

func TestPipelinePreservesSemanticsWithAllDefects(t *testing.T) {
	// Debug-information defects must never change run-time behaviour.
	defects := map[string]bool{}
	for _, sys := range []bugs.System{bugs.SysClang, bugs.SysGCC} {
		for _, mech := range bugs.MechanismsFor(sys) {
			defects[mech] = true
		}
	}
	for _, src := range semanticPrograms {
		m := lowerSrc(t, src)
		checkSemantics(t, m, allPasses(), defects)
	}
}

func TestEachPassIndividuallyPreservesSemantics(t *testing.T) {
	for _, p := range allPasses() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for _, src := range semanticPrograms {
				m := lowerSrc(t, src)
				checkSemantics(t, m, []Pass{Mem2Reg{}, p}, nil)
			}
		})
	}
}

func countDbgVals(m *ir.Module, fn string) (total, undef int) {
	f := m.Func(fn)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal {
				total++
				if in.Args[0].Kind == ir.Undef {
					undef++
				}
			}
		}
	}
	return
}

func TestMem2RegPromotes(t *testing.T) {
	m := lowerSrc(t, `
int g;
int main(void) {
  int x = 3;
  int y = x + 4;
  g = y;
  return y;
}`)
	RunPipeline(m, []Pass{Mem2Reg{}}, Options{BisectLimit: -1})
	f := m.Func("main")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoadSlot || in.Op == ir.OpStoreSlot {
				t.Fatalf("slot op survived mem2reg: %v", in)
			}
			if in.Op == ir.OpDbgVal && in.Args[0].Kind == ir.SlotRef {
				t.Fatalf("slot-ref dbgval survived mem2reg: %v", in)
			}
		}
	}
	total, _ := countDbgVals(m, "main")
	if total < 2 {
		t.Errorf("expected per-store dbgvals, got %d", total)
	}
}

func TestCCPFoldsAndPreservesDebug(t *testing.T) {
	src := `
int g;
int main(void) {
  int x = 2 + 3;
  g = x;
  return g;
}`
	// Without the defect: x's dbgval becomes the constant 5.
	m := lowerSrc(t, src)
	RunPipeline(m, []Pass{Mem2Reg{}, InstCombine{}, CCP{}, CopyProp{}, DCE{}}, Options{BisectLimit: -1})
	foundConst := false
	for _, b := range m.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.V.Name == "x" && in.Args[0].IsConst() && in.Args[0].C == 5 {
				foundConst = true
			}
		}
	}
	if !foundConst {
		t.Errorf("x's debug value should be the constant 5:\n%s", m)
	}
	// The no-const-value defect is loop-scoped (105161's shape): a fold in
	// straight-line code keeps its constant even under the defect...
	m2 := lowerSrc(t, src)
	RunPipeline(m2, []Pass{Mem2Reg{}, InstCombine{}, CCP{}, CopyProp{}, DCE{}},
		Options{BisectLimit: -1, Defects: map[string]bool{bugs.GCCCPNoConstValue: true}})
	straightOK := false
	for _, b := range m2.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.V.Name == "x" && in.Args[0].IsConst() {
				straightOK = true
			}
		}
	}
	if !straightOK {
		t.Error("straight-line fold should keep its constant under the loop-scoped defect")
	}
	// ...while a fold inside a loop loses it.
	loopSrc := `
volatile int g;
int main(void) {
  int i;
  for (i = 0; i < 3; i = i + 1) {
    int x = 2 + 3;
    g = x + i;
  }
  return 0;
}`
	m3 := lowerSrc(t, loopSrc)
	stats := map[string]int{}
	RunPipeline(m3, []Pass{Mem2Reg{}, InstCombine{}, CCP{}},
		Options{BisectLimit: -1, Stats: stats,
			Defects: map[string]bool{bugs.GCCCPNoConstValue: true}})
	if stats["ccp.dropped-const"] == 0 {
		t.Errorf("loop-context fold should drop the constant under the defect:\n%s", m3.Func("main"))
	}
}

func TestSimplifyCFGDefectDropsDbg(t *testing.T) {
	src := `
int g;
int main(void) {
  int x = 1;
  if (g) {
    x = 2;
  }
  g = 3;
  return 0;
}`
	clean := lowerSrc(t, src)
	RunPipeline(clean, []Pass{Mem2Reg{}, SimplifyCFG{}}, Options{BisectLimit: -1})
	cleanTotal, _ := countDbgVals(clean, "main")
	buggy := lowerSrc(t, src)
	RunPipeline(buggy, []Pass{Mem2Reg{}, SimplifyCFG{}},
		Options{BisectLimit: -1, Defects: map[string]bool{bugs.CLSimplifyCFGDrop: true}})
	buggyTotal, _ := countDbgVals(buggy, "main")
	if buggyTotal > cleanTotal {
		t.Errorf("defect should not add dbgvals: clean=%d buggy=%d", cleanTotal, buggyTotal)
	}
}

func TestInlinePlacesInlineSites(t *testing.T) {
	m := lowerSrc(t, `
int g;
int add1(int v) { return v + 1; }
int main(void) {
  g = add1(41);
  return g;
}`)
	RunPipeline(m, []Pass{Mem2Reg{}, Inline{}}, Options{BisectLimit: -1})
	f := m.Func("main")
	foundInlined := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Call == "add1" {
				t.Fatalf("call to add1 not inlined")
			}
			if in.At != nil && in.At.Callee == "add1" {
				foundInlined = true
			}
		}
	}
	if !foundInlined {
		t.Error("no instructions carry the inline site")
	}
	foundVar := false
	for _, v := range f.Vars {
		if v.Inlined != nil && v.Name == "v" {
			foundVar = true
		}
	}
	if !foundVar {
		t.Error("inlined variable v not imported")
	}
	// Semantics preserved.
	obs, err := ir.Interp(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Ret != 42 {
		t.Errorf("ret = %d, want 42", obs.Ret)
	}
}

func TestLoopUnrollSmallTripCount(t *testing.T) {
	m := lowerSrc(t, `
int g;
int main(void) {
  int k;
  int acc = 0;
  for (k = 0; k < 3; k = k + 1) {
    acc = acc + k;
  }
  g = acc;
  return acc;
}`)
	stats := map[string]int{}
	RunPipeline(m, []Pass{Mem2Reg{}, LoopUnroll{}}, Options{BisectLimit: -1, Stats: stats})
	if stats["loopunroll.unrolled"] == 0 {
		t.Fatalf("loop not unrolled:\n%s", m)
	}
	obs, err := ir.Interp(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Ret != 3 {
		t.Errorf("ret = %d, want 3", obs.Ret)
	}
	if len(FindLoops(m.Func("main"))) != 0 {
		t.Error("loop structure still present after full unroll")
	}
}

func TestLSRReducesAndDefectDropsIV(t *testing.T) {
	src := `
volatile int c;
int b[12];
int main(void) {
  int i;
  for (i = 0; i < 6; i = i + 1) {
    c = b[i * 2];
  }
  return 0;
}`
	m := lowerSrc(t, src)
	stats := map[string]int{}
	RunPipeline(m, []Pass{Mem2Reg{}, LSR{}}, Options{BisectLimit: -1, Stats: stats})
	if stats["lsr.reduced"] == 0 {
		t.Fatalf("lsr did not fire:\n%s", m.Func("main"))
	}
	_, undef := countDbgVals(m, "main")
	if undef != 0 {
		t.Errorf("correct LSR dropped %d dbgvals", undef)
	}
	m2 := lowerSrc(t, src)
	RunPipeline(m2, []Pass{Mem2Reg{}, LSR{}},
		Options{BisectLimit: -1, Defects: map[string]bool{bugs.CLLSRNoSalvage: true}})
	_, undef2 := countDbgVals(m2, "main")
	if undef2 == 0 {
		t.Error("defective LSR should drop IV dbgvals in the loop")
	}
}

func TestLoopDeleteRecordsFinalIV(t *testing.T) {
	src := `
int main(void) {
  int i;
  int waste = 0;
  for (i = 0; i < 5; i = i + 1) {
    waste = waste + 1;
  }
  return 0;
}`
	m := lowerSrc(t, src)
	stats := map[string]int{}
	RunPipeline(m, []Pass{Mem2Reg{}, DCE{}, LoopDelete{}}, Options{BisectLimit: -1, Stats: stats})
	if stats["loopdelete.deleted"] == 0 {
		t.Skipf("loop not deletable in this configuration:\n%s", m.Func("main"))
	}
	final := false
	for _, b := range m.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpDbgVal && in.V.Name == "i" && in.Args[0].IsConst() && in.Args[0].C == 5 {
				final = true
			}
		}
	}
	if !final {
		t.Errorf("final IV value not recorded at exit:\n%s", m.Func("main"))
	}
}

func TestIPAPureConstFoldsConstantReturns(t *testing.T) {
	src := `
int zero(void) { return 0; }
int g;
int main(void) {
  int x = zero();
  g = x + 1;
  return g;
}`
	m := lowerSrc(t, src)
	stats := map[string]int{}
	RunPipeline(m, []Pass{Mem2Reg{}, IPAPureConst{}}, Options{BisectLimit: -1, Stats: stats})
	if stats["ipa-pure-const.folded-calls"] == 0 {
		t.Fatalf("constant-returning call not folded:\n%s", m.Func("main"))
	}
	if !m.Func("zero").Pure {
		t.Error("zero not marked pure")
	}
}

func TestBisectLimitStopsPipeline(t *testing.T) {
	m := lowerSrc(t, semanticPrograms[0])
	full := RunPipeline(m.Clone(), allPasses(), Options{BisectLimit: -1})
	if full.Executions < 5 {
		t.Fatalf("pipeline too short to test bisection: %d", full.Executions)
	}
	half := RunPipeline(m.Clone(), allPasses(), Options{BisectLimit: full.Executions / 2})
	if half.Executions != full.Executions/2 {
		t.Errorf("bisect stopped at %d, want %d", half.Executions, full.Executions/2)
	}
}

func TestDisabledPassSkipped(t *testing.T) {
	m := lowerSrc(t, semanticPrograms[0])
	res := RunPipeline(m, allPasses(), Options{BisectLimit: -1,
		Disabled: map[string]bool{"lsr": true, "inline": true}})
	for _, name := range res.Applied {
		if name == "lsr(main)" || name == "inline" {
			t.Errorf("disabled pass executed: %s", name)
		}
	}
}

func TestSROAPromotesNonEscaping(t *testing.T) {
	src := `
int g;
int main(void) {
  int x = 1;
  int* p = &x;
  *p = 5;
  g = *p;
  return g;
}`
	m := lowerSrc(t, src)
	stats := map[string]int{}
	RunPipeline(m, []Pass{Mem2Reg{}, CopyProp{}, SROA{}}, Options{BisectLimit: -1, Stats: stats})
	obs, err := ir.Interp(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Ret != 5 {
		t.Errorf("ret = %d, want 5", obs.Ret)
	}
}

func TestDominatorsAndLoops(t *testing.T) {
	m := lowerSrc(t, `
int main(void) {
  int i;
  int s = 0;
  for (i = 0; i < 3; i = i + 1) {
    s = s + i;
  }
  return s;
}`)
	f := m.Func("main")
	dom := Dominators(f)
	entry := f.Entry()
	for _, b := range f.Blocks {
		if !dom[b][entry] {
			t.Errorf("entry does not dominate b%d", b.ID)
		}
	}
	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	if len(loops[0].Exits) != 1 {
		t.Errorf("loop exits = %d, want 1", len(loops[0].Exits))
	}
}

func TestTopLevelReorderMergesGlobals(t *testing.T) {
	src := `
int x = 7;
int y = 7;
int g;
int main(void) {
  g = x + y;
  return g;
}`
	m := lowerSrc(t, src)
	stats := map[string]int{}
	RunPipeline(m, []Pass{Mem2Reg{}, TopLevelReorder{}}, Options{BisectLimit: -1, Stats: stats})
	if stats["toplevel-reorder.merged-refs"] == 0 {
		t.Error("identical read-only globals not merged")
	}
	obs, err := ir.Interp(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Ret != 14 {
		t.Errorf("ret = %d, want 14", obs.Ret)
	}
}
