package opt

import (
	"repro/internal/bugs"
	"repro/internal/ir"
)

// SimplifyCFG removes unreachable blocks, folds constant branches, threads
// forwarder blocks, and merges straight-line block chains. It is the shared
// cleanup helper of the pipeline: like gcc's cleanup_tree_cfg, it runs after
// most other transformations, so a debug-information defect here bleeds into
// violations attributed to many passes (the paper's 105158 experience).
//
// Defect hooks:
//   - bugs.CLSimplifyCFGDrop: forwarder blocks whose only content is debug
//     intrinsics are removed without re-homing the intrinsics.
//   - bugs.GCCleanupCFGDrop: same lossy behaviour via the gcc-like shared
//     cleanup (fixed in the "patched" version).
type SimplifyCFG struct{}

// Name implements Pass.
func (SimplifyCFG) Name() string { return "simplifycfg" }

// Run implements Pass.
func (s SimplifyCFG) Run(fn *ir.Func, ctx *Context) bool {
	changed := false
	for {
		round := false
		round = RemoveUnreachable(fn) || round
		round = s.foldConstBranches(fn, ctx) || round
		round = s.threadForwarders(fn, ctx) || round
		round = s.mergeChains(fn, ctx) || round
		if !round {
			break
		}
		changed = true
	}
	return changed
}

// foldConstBranches turns condbr on a constant into an unconditional
// branch. This is the "boolean expression simplified, then the shared CFG
// cleanup runs" site of the paper's 105158: under the cleanup defect, the
// debug intrinsics at the head of the surviving edge's target are wrongly
// invalidated while rewriting the edge.
func (SimplifyCFG) foldConstBranches(fn *ir.Func, ctx *Context) bool {
	lossy := ctx.Defect(bugs.CLSimplifyCFGDrop) || ctx.Defect(bugs.GCCleanupCFGDrop)
	changed := false
	for _, b := range fn.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr || !t.Args[0].IsConst() {
			continue
		}
		var tgt *ir.Block
		if t.Args[0].C != 0 {
			tgt = t.Tgts[0]
		} else {
			tgt = t.Tgts[1]
		}
		t.Op = ir.OpBr
		t.Args = nil
		t.Tgts = []*ir.Block{tgt}
		changed = true
		ctx.Count("simplifycfg.folded-branches")
		if lossy {
			dropped := map[*ir.Var]bool{}
			for _, in := range tgt.Instrs {
				if in.Op != ir.OpDbgVal {
					break
				}
				if in.Args[0].Kind != ir.Undef {
					in.Args[0] = ir.UndefVal()
					dropped[in.V] = true
					ctx.Count("simplifycfg.dropped-dbg")
				}
			}
			if len(dropped) > 0 {
				MarkSuppressedIfDbgless(fn, dropped)
			}
		}
	}
	return changed
}

// threadForwarders removes blocks that only forward control (possibly
// carrying debug intrinsics) by retargeting their predecessors.
func (SimplifyCFG) threadForwarders(fn *ir.Func, ctx *Context) bool {
	lossy := ctx.Defect(bugs.CLSimplifyCFGDrop) || ctx.Defect(bugs.GCCleanupCFGDrop)
	preds := fn.Preds()
	changed := false
	for _, b := range fn.Blocks {
		if b == fn.Entry() {
			continue
		}
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		onlyDbg := true
		nDbg := 0
		for _, in := range b.Instrs[:len(b.Instrs)-1] {
			if in.Op != ir.OpDbgVal {
				onlyDbg = false
				break
			}
			nDbg++
		}
		if !onlyDbg {
			continue
		}
		succ := t.Tgts[0]
		if succ == b {
			continue // self loop
		}
		var droppedVars map[*ir.Var]bool
		if nDbg > 0 {
			if lossy {
				// Defective behaviour: the intrinsics have nowhere to go in
				// this helper's view, so they are dropped with the block.
				droppedVars = map[*ir.Var]bool{}
				for _, in := range b.Instrs[:len(b.Instrs)-1] {
					droppedVars[in.V] = true
				}
				ctx.Count("simplifycfg.dropped-dbg")
			} else if len(preds[succ]) == 1 {
				// The successor is reached only through us: the intrinsics
				// stay correct when hoisted to its head.
				HoistDbgVals(b, succ)
			} else {
				// Cannot prove the intrinsics hold on the successor's other
				// paths; keep the block.
				continue
			}
		}
		for _, p := range preds[b] {
			ReplaceSucc(p, b, succ)
		}
		fn.RemoveBlock(b)
		if droppedVars != nil {
			MarkSuppressedIfDbgless(fn, droppedVars)
		}
		changed = true
		ctx.Count("simplifycfg.threaded")
		// Predecessor map is stale now; recompute next round.
		return true
	}
	return changed
}

// mergeChains appends a block into its unique predecessor when that
// predecessor has a single successor. Under the shared-cleanup defect
// (105158/105194), constant-valued debug intrinsics at the seam are wrongly
// invalidated while the blocks are stitched — the value was recoverable,
// which is what makes this an implementation defect rather than an
// unavoidable loss.
func (SimplifyCFG) mergeChains(fn *ir.Func, ctx *Context) bool {
	lossy := ctx.Defect(bugs.CLSimplifyCFGDrop) || ctx.Defect(bugs.GCCleanupCFGDrop)
	preds := fn.Preds()
	for _, b := range fn.Blocks {
		if b == fn.Entry() {
			continue
		}
		ps := preds[b]
		if len(ps) != 1 {
			continue
		}
		p := ps[0]
		t := p.Term()
		if t == nil || t.Op != ir.OpBr || p == b {
			continue
		}
		if lossy {
			// The defective cleanup rebuilds the merged block's statement
			// list and loses the constant-valued debug bindings it carries
			// (recoverable information — the definition of a completeness
			// defect). Register-valued bindings survive: their storage
			// subsists and the helper keeps those mappings intact.
			dropped := map[*ir.Var]bool{}
			for _, in := range b.Instrs {
				if in.Op == ir.OpDbgVal && in.Args[0].IsConst() {
					in.Args[0] = ir.UndefVal()
					dropped[in.V] = true
					ctx.Count("simplifycfg.dropped-dbg")
				}
			}
			if len(dropped) > 0 {
				MarkSuppressedIfDbgless(fn, dropped)
			}
		}
		// Merge: drop p's terminator, append b's instructions.
		p.Instrs = append(p.Instrs[:len(p.Instrs)-1], b.Instrs...)
		fn.RemoveBlock(b)
		ctx.Count("simplifycfg.merged")
		return true
	}
	return false
}
