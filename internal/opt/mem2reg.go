package opt

import (
	"repro/internal/bugs"
	"repro/internal/ir"
)

// Mem2Reg promotes scalar, non-address-taken local variables from stack
// slots to virtual registers, the first step of every optimizing pipeline.
// After promotion the variable's debug information switches from a single
// whole-lifetime slot location to a chain of DbgVal intrinsics, one per
// source-level assignment — exactly the point at which the completeness
// problem becomes possible.
type Mem2Reg struct{}

// Name implements Pass.
func (Mem2Reg) Name() string { return "mem2reg" }

// Run implements Pass.
func (Mem2Reg) Run(fn *ir.Func, ctx *Context) bool {
	// Decide which variables are promotable.
	promoted := map[int]*ir.Var{} // slot -> var
	regOf := map[int]int{}        // slot -> dedicated register
	for _, v := range fn.Vars {
		if v.AddrTaken || v.Slot < 0 {
			continue
		}
		if v.Type.Size() != 1 {
			continue // arrays stay in memory
		}
		promoted[v.Slot] = v
		regOf[v.Slot] = fn.NewTemp()
	}
	if len(promoted) == 0 {
		return false
	}
	changed := false
	for _, b := range fn.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpDbgVal:
				// Replace the slot-lifetime declaration with nothing: the
				// register location chain starts at the first assignment.
				if in.Args[0].Kind == ir.SlotRef {
					if _, ok := promoted[in.Args[0].Temp]; ok {
						changed = true
						continue
					}
				}
				out = append(out, in)
			case ir.OpLoadSlot:
				if _, ok := promoted[in.Slot]; ok && in.Args[0].IsConst() && in.Args[0].C == 0 {
					in.Op = ir.OpCopy
					in.Args = []ir.Value{ir.TempVal(regOf[in.Slot])}
					in.Slot = 0
					// The register always holds a value already truncated
					// to the variable's width, so the load's width
					// annotation is redundant on the copy.
					in.Width = nil
					changed = true
				}
				out = append(out, in)
			case ir.OpStoreSlot:
				if v, ok := promoted[in.Slot]; ok && in.Args[0].IsConst() && in.Args[0].C == 0 {
					reg := regOf[in.Slot]
					val := in.Args[1]
					st := &ir.Instr{Op: ir.OpCopy, Dst: reg, Args: []ir.Value{val},
						Width: in.Width, Line: in.Line, At: in.At}
					out = append(out, st)
					// The debug value names the stored value itself when it
					// is a constant (best information), else the register.
					dv := val
					if !dv.IsConst() {
						dv = ir.TempVal(reg)
					}
					if dv.IsConst() || !ctx.Defect(bugs.LegacyWeakTracking) {
						out = append(out, &ir.Instr{Op: ir.OpDbgVal, Dst: -1, V: v,
							Args: []ir.Value{dv}, Line: in.Line, At: in.At})
					} else {
						ctx.Count("mem2reg.legacy-untracked")
					}
					changed = true
					ctx.Count("mem2reg.promoted-stores")
					continue
				}
				out = append(out, in)
			default:
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
	// Parameters are special: their value arrives in the slot, so promoted
	// parameters need an entry copy from the incoming slot value. We model
	// the calling convention as "parameters materialise in registers": add
	// an entry DbgVal and replace the slot semantics by copying from the
	// slot once at entry (the slot itself becomes dead and is collected by
	// later passes).
	entry := fn.Entry()
	var prologue []*ir.Instr
	for _, p := range fn.Params {
		if _, ok := promoted[p.Slot]; !ok {
			continue
		}
		reg := regOf[p.Slot]
		// Parameter values were truncated at the call boundary, so the load
		// needs no width annotation.
		prologue = append(prologue,
			&ir.Instr{Op: ir.OpLoadSlot, Dst: reg, Slot: p.Slot, Args: []ir.Value{ir.ConstVal(0)}, Line: fn.Line},
			&ir.Instr{Op: ir.OpDbgVal, Dst: -1, V: p, Args: []ir.Value{ir.TempVal(reg)}, Line: fn.Line})
	}
	// Non-parameter promoted variables are bound to their home register
	// from function entry: before the first assignment a debugger shows
	// the register's (garbage) content, exactly like real targets — the
	// variable is presented, not optimized out.
	if !ctx.Defect(bugs.LegacyWeakTracking) {
		for _, v := range fn.Vars { // deterministic order
			if v.IsParam || v.Slot < 0 {
				continue
			}
			if pv, ok := promoted[v.Slot]; !ok || pv != v {
				continue
			}
			prologue = append(prologue, &ir.Instr{Op: ir.OpDbgVal, Dst: -1, V: v,
				Args: []ir.Value{ir.TempVal(regOf[v.Slot])}, Line: v.DeclLine})
		}
	}
	if len(prologue) > 0 {
		entry.Instrs = append(prologue, entry.Instrs...)
		changed = true
	}
	// Note: v.Slot is left in place. The slot itself becomes dead for
	// non-parameters (no loads or stores reference it any more), but the
	// index keeps identifying where a caller must materialise arguments if
	// the function is later inlined.
	return changed
}
