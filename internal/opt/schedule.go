package opt

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// This file makes the pass schedule a first-class, serializable value.
// A Schedule is an ordered list of registered pass names (plus one integer
// parameter for the budgeted passes), round-trips through a canonical
// string form, and executes via RunSchedule. Everything that previously
// needed to name, subset, or permute "the pipeline" — the engine's cache
// keys, triage's schedule delta debugging, corpus signatures — works on
// Schedule values instead of opaque []Pass slices.

// Entry is one slot of a Schedule: a registered pass name plus the
// integer parameter of the budgeted passes (inline's callee-size
// threshold, loopunroll's trip bound). Arg is 0 for unparameterized
// passes and omitted from the string form.
type Entry struct {
	Name string
	Arg  int
}

// String renders the entry in canonical form: "dce", "inline:40".
func (e Entry) String() string {
	if e.Arg == 0 {
		return e.Name
	}
	return e.Name + ":" + strconv.Itoa(e.Arg)
}

// Schedule is an ordered pass schedule. The zero value is the empty
// schedule (no optimization passes, as at -O0).
type Schedule struct {
	Entries []Entry
}

// Len returns the number of entries.
func (s Schedule) Len() int { return len(s.Entries) }

// String renders the schedule in canonical form: entries in order,
// comma-separated ("mem2reg,inline:40,dce"). The empty schedule renders
// as the empty string. ParseSchedule inverts it.
func (s Schedule) String() string {
	if len(s.Entries) == 0 {
		return ""
	}
	var b strings.Builder
	for i, e := range s.Entries {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// Equal reports whether two schedules have identical entries.
func (s Schedule) Equal(t Schedule) bool {
	if len(s.Entries) != len(t.Entries) {
		return false
	}
	for i, e := range s.Entries {
		if t.Entries[i] != e {
			return false
		}
	}
	return true
}

// Clone returns a deep copy; mutating the copy's Entries never aliases
// the original.
func (s Schedule) Clone() Schedule {
	if len(s.Entries) == 0 {
		return Schedule{}
	}
	return Schedule{Entries: append([]Entry(nil), s.Entries...)}
}

// Digest returns a 16-hex-digit FNV-1a hash of the canonical string
// form, for compact cache keys. Schedules with equal String() — and only
// those — share a digest.
func (s Schedule) Digest() string {
	h := fnv.New64a()
	h.Write([]byte(s.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// PrefixDigests returns the digest of every prefix of the schedule:
// element i is the digest of Entries[:i], so element 0 is the empty
// schedule's digest and element Len() equals Digest(). The slice is
// computed with one incremental FNV-1a pass over the canonical string
// form — digesting all prefixes costs the same as digesting the full
// schedule once. Prefix digests key the optimizer's snapshot tier: two
// schedules that share their first i entries — and only those — share
// their i-entry prefix digest.
func (s Schedule) PrefixDigests() []string {
	out := make([]string, len(s.Entries)+1)
	h := fnv.New64a()
	out[0] = fmt.Sprintf("%016x", h.Sum64())
	for i, e := range s.Entries {
		if i > 0 {
			h.Write([]byte{','})
		}
		h.Write([]byte(e.String()))
		out[i+1] = fmt.Sprintf("%016x", h.Sum64())
	}
	return out
}

// PrefixDigest returns the digest of the schedule's first n entries —
// PrefixDigests()[n] computed alone. PrefixDigest(Len()) == Digest().
func (s Schedule) PrefixDigest(n int) string {
	return Schedule{Entries: s.Entries[:n]}.Digest()
}

// ParseSchedule parses the canonical string form produced by
// Schedule.String. Every named pass must be registered; budgeted passes
// accept an optional ":<int>" argument.
func ParseSchedule(s string) (Schedule, error) {
	if s == "" {
		return Schedule{}, nil
	}
	parts := strings.Split(s, ",")
	entries := make([]Entry, 0, len(parts))
	for _, part := range parts {
		name, argStr, hasArg := strings.Cut(part, ":")
		if name == "" {
			return Schedule{}, fmt.Errorf("opt: empty pass name in schedule %q", s)
		}
		if _, ok := passRegistry[name]; !ok {
			return Schedule{}, fmt.Errorf("opt: unknown pass %q in schedule", name)
		}
		e := Entry{Name: name}
		if hasArg {
			arg, err := strconv.Atoi(argStr)
			if err != nil {
				return Schedule{}, fmt.Errorf("opt: bad argument %q for pass %q: %v", argStr, name, err)
			}
			e.Arg = arg
		}
		entries = append(entries, e)
	}
	return Schedule{Entries: entries}, nil
}

// passRegistry maps every stable pass name to a constructor, so schedules
// round-trip through strings. The constructor receives the entry's Arg
// (0 when absent); unparameterized passes ignore it.
var passRegistry = map[string]func(arg int) Pass{
	"mem2reg":          func(int) Pass { return Mem2Reg{} },
	"ccp":              func(int) Pass { return CCP{} },
	"vrp":              func(int) Pass { return VRP{} },
	"instcombine":      func(int) Pass { return InstCombine{} },
	"copyprop":         func(int) Pass { return CopyProp{} },
	"dse":              func(int) Pass { return DSE{} },
	"dce":              func(int) Pass { return DCE{} },
	"simplifycfg":      func(int) Pass { return SimplifyCFG{} },
	"toplevel-reorder": func(int) Pass { return TopLevelReorder{} },
	"ipa-pure-const":   func(int) Pass { return IPAPureConst{} },
	"ipa-reference":    func(int) Pass { return IPAReference{} },
	"inline":           func(arg int) Pass { return Inline{MaxInstrs: arg} },
	"sroa":             func(int) Pass { return SROA{} },
	"ivsimplify":       func(int) Pass { return IVSimplify{} },
	"lsr":              func(int) Pass { return LSR{} },
	"loopunroll":       func(arg int) Pass { return LoopUnroll{MaxTrip: arg} },
	"loopdelete":       func(int) Pass { return LoopDelete{} },
	"looprotate":       func(int) Pass { return LoopRotate{} },
	"sched":            func(int) Pass { return Sched{} },
}

// RegisteredPasses returns the sorted names of every registered pass.
func RegisteredPasses() []string {
	names := make([]string, 0, len(passRegistry))
	for n := range passRegistry {
		names = append(names, n)
	}
	// Insertion sort: the list is tiny and this avoids an import.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// EntryOf returns the schedule entry describing a pass value, extracting
// the budget argument of the parameterized passes.
func EntryOf(p Pass) Entry {
	e := Entry{Name: p.Name()}
	switch t := p.(type) {
	case Inline:
		e.Arg = t.MaxInstrs
	case LoopUnroll:
		e.Arg = t.MaxTrip
	}
	return e
}

// ScheduleOf captures a pass list as a Schedule.
func ScheduleOf(passes []Pass) Schedule {
	entries := make([]Entry, len(passes))
	for i, p := range passes {
		entries[i] = EntryOf(p)
	}
	return Schedule{Entries: entries}
}

// Passes materializes the schedule into runnable pass values. It fails
// only when an entry names an unregistered pass.
func (s Schedule) Passes() ([]Pass, error) {
	passes := make([]Pass, len(s.Entries))
	for i, e := range s.Entries {
		mk, ok := passRegistry[e.Name]
		if !ok {
			return nil, fmt.Errorf("opt: unknown pass %q in schedule", e.Name)
		}
		passes[i] = mk(e.Arg)
	}
	return passes, nil
}

// RunSchedule materializes and executes a schedule on the module under
// the given options; Disabled and BisectLimit apply on top of the
// schedule exactly as they do for RunPipeline. The module is modified in
// place. It fails only when the schedule names an unregistered pass.
func RunSchedule(m *ir.Module, s Schedule, o Options) (*Result, error) {
	passes, err := s.Passes()
	if err != nil {
		return nil, err
	}
	return RunPipeline(m, passes, o), nil
}

// Checkpoint observes a RunScheduleFrom execution at an entry boundary.
// prefixLen is the number of schedule entries fully executed so far
// (counting the skipped prefix), so the module at that moment is exactly
// the state Entries[:prefixLen] produces; res is the live suffix result —
// implementations that retain it must copy. final marks the last boundary
// the run completes: either the whole schedule ran, or the budget stops
// inside (or immediately before) the next entry, making mid-entry states
// — which are not prefix states — unreachable as snapshots.
type Checkpoint func(prefixLen int, res *Result, final bool)

// RunScheduleFrom is RunSchedule resuming at an entry offset: the module
// is assumed to be in the state Entries[:start] left it (a snapshot the
// caller cloned), only Entries[start:] execute, and res covers the suffix
// alone — the caller stitches the prefix's Executions/Applied back on.
// BisectLimit, like the result, is suffix-local. cp, when non-nil, fires
// at every entry boundary after start, letting the caller publish the
// intermediate module states as snapshots; boundaries at or before start
// are never re-emitted.
func RunScheduleFrom(m *ir.Module, s Schedule, o Options, start int, cp Checkpoint) (*Result, error) {
	passes, err := s.Passes()
	if err != nil {
		return nil, err
	}
	if start < 0 || start > len(passes) {
		return nil, fmt.Errorf("opt: schedule offset %d out of range [0, %d]", start, len(passes))
	}
	ctx := newContext(m, o)
	res := &Result{Applied: make([]string, 0, CountExecutions(m, passes[start:], o.Disabled))}
	limit := o.BisectLimit
	for i := start; i < len(passes); i++ {
		p := passes[i]
		disabled := o.Disabled[p.Name()]
		need := 0
		if !disabled {
			need = entryCost(m, p)
		}
		// The budget runs out inside (or right before) this entry, so the
		// boundary ahead of it is the last completed one.
		partial := limit >= 0 && res.Executions+need > limit
		if cp != nil && i > start {
			cp(i, res, partial)
		}
		if disabled {
			continue
		}
		runEntry(m, p, ctx, res, limit)
		if partial {
			return res, nil
		}
	}
	if cp != nil && len(passes) > start {
		cp(len(passes), res, true)
	}
	return res, nil
}

// RemoveRegisteredPassForTest unregisters a pass and returns a function
// restoring it, so tests can pin the broken-registry failure paths (the
// canonical schedules must always materialize; compiler.Pipeline panics
// otherwise). Never use outside tests — and never in parallel ones: the
// registry is a process-wide table.
func RemoveRegisteredPassForTest(name string) (restore func()) {
	mk, ok := passRegistry[name]
	if !ok {
		return func() {}
	}
	delete(passRegistry, name)
	return func() { passRegistry[name] = mk }
}
