package opt

import (
	"repro/internal/bugs"
	"repro/internal/ir"
	"repro/internal/minic"
)

// Inline replaces calls to small, non-recursive, defined functions with the
// callee's body. Callee variables join the caller as inlined variables
// carrying an InlineSite chain; code generation later emits abstract and
// concrete DW_TAG_inlined_subroutine DIEs from that information.
//
// Debug-related behaviours:
//   - Correct: parameter variables of the callee receive a DbgVal with the
//     argument value at the inlined entry.
//   - bugs.GCInlineWrongLoc: the locations of inlined parameters are
//     attributed to the wrong frame, so the debugger cannot resolve them at
//     the call point even though the values are tracked (104549).
//   - bugs.CLInlineAbstractOnly: constant locations of inlined variables
//     are emitted only on the abstract origin DIE. That is legitimate DWARF
//     that one debugger cannot consume (50076 interplay) and the reason the
//     Inliner tops the clang triage table.
type Inline struct {
	// MaxInstrs is the callee size threshold; defaults to 40.
	MaxInstrs int
}

// Name implements Pass.
func (Inline) Name() string { return "inline" }

// RunModule implements ModulePass.
func (p Inline) RunModule(ctx *Context) bool {
	max := p.MaxInstrs
	if max == 0 {
		max = 40
	}
	changed := false
	for _, f := range ctx.Mod.Funcs {
		if f.Opaque {
			continue
		}
		// Repeat until no more inlinable calls in f (new calls can appear
		// from inlined bodies; recursion is rejected, so this terminates).
		for p.inlineOneCall(ctx, f, max) {
			changed = true
		}
	}
	return changed
}

// Run implements Pass (unused for module passes).
func (Inline) Run(fn *ir.Func, ctx *Context) bool { return false }

func instrCount(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// inlineOneCall finds the first inlinable call in caller and inlines it.
func (p Inline) inlineOneCall(ctx *Context, caller *ir.Func, max int) bool {
	for _, b := range caller.Blocks {
		for i, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			callee := ctx.Mod.Func(in.Call)
			if callee == nil || callee.Opaque || callee.Name == caller.Name {
				continue
			}
			if instrCount(callee) > max || callsInto(callee, caller.Name, ctx.Mod, map[string]bool{}) {
				continue
			}
			p.doInline(ctx, caller, b, i, callee)
			ctx.Count("inline.inlined")
			return true
		}
	}
	return false
}

// callsInto reports whether f (transitively) calls target, which would make
// inlining f into target a recursion hazard.
func callsInto(f *ir.Func, target string, m *ir.Module, seen map[string]bool) bool {
	if seen[f.Name] {
		return false
	}
	seen[f.Name] = true
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			if in.Call == target {
				return true
			}
			if next := m.Func(in.Call); next != nil && !next.Opaque {
				if callsInto(next, target, m, seen) {
					return true
				}
			}
		}
	}
	return false
}

// doInline splices callee's body in place of the call at b.Instrs[callIdx].
func (p Inline) doInline(ctx *Context, caller *ir.Func, b *ir.Block, callIdx int, callee *ir.Func) {
	call := b.Instrs[callIdx]
	site := &ir.InlineSite{Callee: callee.Name, CallLine: call.Line,
		ID: caller.NewInlineID(), Parent: call.At}

	// Remap callee registers and slots into the caller's namespace.
	tempMap := make([]int, callee.NTemp)
	for t := range tempMap {
		tempMap[t] = caller.NewTemp()
	}
	slotMap := make([]int, callee.NSlot)
	for s, size := range callee.Slots {
		slotMap[s] = caller.NewSlot(size)
	}
	// Import callee variables as inlined variables.
	varMap := map[*ir.Var]*ir.Var{}
	for _, v := range callee.Vars {
		nv := &ir.Var{Name: v.Name, Type: v.Type, DeclLine: v.DeclLine,
			AddrTaken: v.AddrTaken, IsParam: v.IsParam, Inlined: site,
			SuppressDIE: v.SuppressDIE, InNestedScope: v.InNestedScope}
		if v.Inlined != nil {
			// Variables already inlined into the callee get a chained site.
			nv.Inlined = &ir.InlineSite{Callee: v.Inlined.Callee, CallLine: v.Inlined.CallLine,
				ID: caller.NewInlineID(), Parent: site}
		}
		if v.Slot >= 0 {
			nv.Slot = slotMap[v.Slot]
		} else {
			nv.Slot = -1
		}
		varMap[v] = nv
		caller.Vars = append(caller.Vars, nv)
	}
	// Clone callee blocks.
	blockMap := map[*ir.Block]*ir.Block{}
	var newBlocks []*ir.Block
	for _, cb := range callee.Blocks {
		nb := caller.NewBlock()
		blockMap[cb] = nb
		newBlocks = append(newBlocks, nb)
	}
	// Continuation block: the remainder of b after the call.
	cont := caller.NewBlock()
	cont.Instrs = append(cont.Instrs, b.Instrs[callIdx+1:]...)

	retReg := call.Dst
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, in := range cb.Instrs {
			ni := in.Clone()
			if ni.Dst >= 0 {
				ni.Dst = tempMap[ni.Dst]
			}
			for ai, a := range ni.Args {
				switch a.Kind {
				case ir.Temp:
					ni.Args[ai] = ir.Value{Kind: ir.Temp, Temp: tempMap[a.Temp]}
				case ir.SlotRef:
					ni.Args[ai] = ir.Value{Kind: ir.SlotRef, Temp: slotMap[a.Temp]}
				}
			}
			switch ni.Op {
			case ir.OpLoadSlot, ir.OpStoreSlot, ir.OpAddrSlot:
				ni.Slot = slotMap[ni.Slot]
			case ir.OpDbgVal:
				ni.V = varMap[ni.V]
			}
			// Chain the inline site.
			if in.At == nil {
				ni.At = site
			} else {
				ni.At = &ir.InlineSite{Callee: in.At.Callee, CallLine: in.At.CallLine,
					ID: in.At.ID, Parent: site}
			}
			for ti, tgt := range ni.Tgts {
				ni.Tgts[ti] = blockMap[tgt]
			}
			if ni.Op == ir.OpRet {
				// Return becomes a copy to the call destination plus a jump
				// to the continuation.
				if retReg >= 0 && len(ni.Args) > 0 {
					nb.Instrs = append(nb.Instrs, &ir.Instr{Op: ir.OpCopy, Dst: retReg,
						Args: []ir.Value{ni.Args[0]}, Line: call.Line, At: call.At})
				}
				nb.Instrs = append(nb.Instrs, &ir.Instr{Op: ir.OpBr, Dst: -1,
					Tgts: []*ir.Block{cont}, Line: call.Line, At: call.At})
				continue
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	// Entry glue: store arguments into parameter slots (the callee body
	// still begins with slot-resident parameters or with mem2reg prologue
	// loads, both of which read the slot).
	entry := blockMap[callee.Entry()]
	var glue []*ir.Instr
	for pi, pv := range callee.Params {
		if pi >= len(call.Args) {
			break
		}
		nv := varMap[pv]
		slot := -1
		if pv.Slot >= 0 {
			slot = slotMap[pv.Slot]
		}
		arg := call.Args[pi]
		if slot >= 0 {
			var w *minic.IntType
			if it, ok := pv.Type.(*minic.IntType); ok {
				w = it
			}
			glue = append(glue, &ir.Instr{Op: ir.OpStoreSlot, Dst: -1, Slot: slot,
				Args: []ir.Value{ir.ConstVal(0), arg}, Width: w, Line: call.Line, At: call.At})
		}
		// Debug value for the inlined parameter at the inlined entry.
		dv := &ir.Instr{Op: ir.OpDbgVal, Dst: -1, V: nv, Args: []ir.Value{arg},
			Line: callee.Line, At: site}
		if ctx.Defect(bugs.GCInlineWrongLoc) {
			dv.Flags |= ir.DbgWrongFrame
			ctx.Count("inline.wrongframe")
		}
		if ctx.Defect(bugs.CLInlineAbstractOnly) && arg.IsConst() {
			dv.Flags |= ir.DbgAbstractOnly
			ctx.Count("inline.abstractonly")
		}
		glue = append(glue, dv)
	}
	entry.Instrs = append(glue, entry.Instrs...)

	// Rewire the call block: everything up to the call, then jump into the
	// inlined entry.
	b.Instrs = append(b.Instrs[:callIdx:callIdx], &ir.Instr{Op: ir.OpBr, Dst: -1,
		Tgts: []*ir.Block{entry}, Line: call.Line, At: call.At})
	_ = newBlocks
}
