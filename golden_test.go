package pokeholes_test

// Golden-corpus regression harness: every program under testdata/golden
// has its Check, Sweep and Triage reports pinned byte-for-byte as the
// exact HTTP response bodies of the serving layer. Any drift in the
// report formats — wire field order, violation ordering, summary rollups,
// float rendering — fails tier-1 until the change is deliberate:
//
//	go test -run TestGolden -update
//
// regenerates the fixtures from the current implementation.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

var update = flag.Bool("update", false, "regenerate testdata/golden fixtures")

// goldenConfig is the single-configuration fixture target; goldenSweep is
// the (deliberately small) matrix fixture target.
var (
	goldenCheck = pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	goldenSweep = pokeholes.SweepRequest{Family: "gc",
		Versions: []string{"v8", "trunk"}, Levels: []string{"O1", "O2"}}
)

// goldenPost returns the full response body of one request, requiring 200.
func goldenPost(t *testing.T, client *http.Client, url string, body string) []byte {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, out)
	}
	return out
}

// firstDiff locates the first differing byte, for a readable failure.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first difference at byte %d:\n got: …%q\nwant: …%q",
				i, got[lo:min(i+40, len(got))], want[lo:min(i+40, len(want))])
		}
	}
	return fmt.Sprintf("common prefix of %d bytes; lengths %d vs %d", n, len(got), len(want))
}

// TestGolden pins the serving layer's report bytes for every checked-in
// program: Check and Triage at gc-trunk -O2, Sweep across a 2×2 matrix.
func TestGolden(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("testdata", "golden", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) < 6 {
		t.Fatalf("golden corpus has %d programs, want at least 6", len(srcs))
	}

	eng := pokeholes.NewEngine()
	ts := httptest.NewServer(eng.NewServer(pokeholes.ServeSpec{}).Handler())
	defer ts.Close()

	for _, srcPath := range srcs {
		name := strings.TrimSuffix(filepath.Base(srcPath), ".mc")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(srcPath)
			if err != nil {
				t.Fatal(err)
			}
			// Both request bodies derive from the declared fixture configs
			// above, so widening the golden matrix is a one-line edit.
			checkReq, err := json.Marshal(pokeholes.CheckRequest{Source: string(src),
				Family: string(goldenCheck.Family), Version: goldenCheck.Version,
				Level: goldenCheck.Level})
			if err != nil {
				t.Fatal(err)
			}
			sweep := goldenSweep
			sweep.Source = string(src)
			sweepReq, err := json.Marshal(sweep)
			if err != nil {
				t.Fatal(err)
			}
			// The schedule-enriched triage variant has its own fixture;
			// the default triage body above must stay byte-identical to
			// the pre-schedule fixtures.
			schedReq, err := json.Marshal(pokeholes.CheckRequest{Source: string(src),
				Family: string(goldenCheck.Family), Version: goldenCheck.Version,
				Level: goldenCheck.Level, Schedules: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range []struct {
				suffix, path string
				req          []byte
			}{
				{"check.json", "/check", checkReq},
				{"sweep.ndjson", "/sweep", sweepReq},
				{"triage.json", "/triage", checkReq},
				{"triage-sched.json", "/triage", schedReq},
			} {
				got := goldenPost(t, ts.Client(), ts.URL+g.path, string(g.req))
				goldenPath := filepath.Join("testdata", "golden", name+"."+g.suffix)
				if *update {
					if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatalf("missing fixture %s (regenerate with: go test -run TestGolden -update): %v",
						goldenPath, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s drifted from its golden fixture.\n%s\nIf the change is deliberate, regenerate with: go test -run TestGolden -update",
						g.path, firstDiff(got, want))
				}
			}
		})
	}
}

// TestGoldenSourcesCanonical pins that the checked-in programs are in
// canonical form: parse→render must reproduce the file exactly, so the
// fingerprints inside the fixtures stay meaningful.
func TestGoldenSourcesCanonical(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("testdata", "golden", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	for _, srcPath := range srcs {
		src, err := os.ReadFile(srcPath)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := pokeholes.ParseProgram(string(src))
		if err != nil {
			t.Errorf("%s: %v", srcPath, err)
			continue
		}
		if rendered := pokeholes.Render(prog); rendered != string(src) {
			t.Errorf("%s is not canonical: parse→render changed it", srcPath)
		}
	}
}
