package pokeholes_test

// Acceptance tests for schedule delta debugging (Engine.ScheduleReduce)
// at the public API: the reduction is byte-deterministic at any engine
// worker count, its ddmin probes never re-run the frontend once a Check
// has warmed the engine, and the schedule component of v2 bucket
// signatures splits real bugs that v1's (conjecture, culprit, shape)
// triple conflated.

import (
	"context"
	"strings"
	"testing"

	"repro"
)

// schedSplitSeed is a fuzzer seed whose program, at gc-trunk -O2, yields
// two violations with the same v1 signature but different minimal
// schedules ("mem2reg" vs "mem2reg,ccp") — found by scanning seeds and
// pinned here so the tests below don't pay for the scan.
const schedSplitSeed = 56

var schedCfg = pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}

// TestScheduleReduceDeterministicAcrossWorkers: a serial engine and an
// 8-worker engine reduce every violation of the same program to the
// identical minimal schedule with the identical probe count.
func TestScheduleReduceDeterministicAcrossWorkers(t *testing.T) {
	prog := pokeholes.GenerateProgram(schedSplitSeed)
	ctx := context.Background()
	reduceAll := func(workers int) (scheds []string, probes []int) {
		eng := pokeholes.NewEngine(pokeholes.WithWorkers(workers))
		rep, err := eng.Check(ctx, prog, schedCfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) < 2 {
			t.Fatalf("seed %d has %d violations, want >= 2", schedSplitSeed, len(rep.Violations))
		}
		for _, v := range rep.Violations {
			red, err := eng.ScheduleReduce(ctx, prog, schedCfg, v)
			if err != nil {
				t.Fatal(err)
			}
			scheds = append(scheds, red.Schedule.String())
			probes = append(probes, red.Probes)
		}
		return scheds, probes
	}
	serialScheds, serialProbes := reduceAll(1)
	parallelScheds, parallelProbes := reduceAll(8)
	for i := range serialScheds {
		if serialScheds[i] != parallelScheds[i] {
			t.Errorf("violation %d: schedule differs across worker counts: %q vs %q",
				i, serialScheds[i], parallelScheds[i])
		}
		if serialProbes[i] != parallelProbes[i] {
			t.Errorf("violation %d: probe count differs across worker counts: %d vs %d",
				i, serialProbes[i], parallelProbes[i])
		}
	}
}

// TestScheduleReduceZeroFrontendProbes: after the Check has lowered the
// program once, a reduction's probes all reuse the cached lowered module
// — the engine's frontend counter must not move.
func TestScheduleReduceZeroFrontendProbes(t *testing.T) {
	prog := pokeholes.GenerateProgram(schedSplitSeed)
	ctx := context.Background()
	eng := pokeholes.NewEngine()
	rep, err := eng.Check(ctx, prog, schedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatalf("seed %d has no violations", schedSplitSeed)
	}
	before := eng.Stats().Frontends
	totalProbes := 0
	for _, v := range rep.Violations {
		red, err := eng.ScheduleReduce(ctx, prog, schedCfg, v)
		if err != nil {
			t.Fatal(err)
		}
		totalProbes += red.Probes
	}
	if totalProbes == 0 {
		t.Fatal("reductions spent zero probes; the frontend assertion is vacuous")
	}
	if d := eng.Stats().Frontends - before; d != 0 {
		t.Errorf("reductions ran the frontend %d times over %d probes, want 0", d, totalProbes)
	}
}

// TestHuntSplitsV1ConflatedBuckets: hunting the pinned program yields two
// distinct buckets whose signatures share the v1 (conjecture, culprit,
// shape) prefix and differ only in the minimal-schedule component — the
// bug classes v1 signatures conflated into one bucket.
func TestHuntSplitsV1ConflatedBuckets(t *testing.T) {
	eng := pokeholes.NewEngine()
	rep, err := eng.Hunt(context.Background(), pokeholes.HuntSpec{
		Family: pokeholes.GC, Version: "trunk", Levels: []string{"O2"},
		Budget: 1, Seed0: schedSplitSeed, NoMinimize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Group buckets by their v1 prefix (the signature minus the fourth,
	// schedule component).
	byV1 := map[string][]string{}
	for _, b := range rep.Corpus.Buckets() {
		parts := strings.Split(string(b.Sig), "|")
		if len(parts) != 4 {
			t.Errorf("bucket %q: want a four-part v2 signature", b.Sig)
			continue
		}
		v1 := strings.Join(parts[:3], "|")
		byV1[v1] = append(byV1[v1], parts[3])
		if b.Schedule != parts[3] {
			t.Errorf("bucket %q: Schedule field %q != signature component %q",
				b.Sig, b.Schedule, parts[3])
		}
	}
	split := false
	for v1, scheds := range byV1 {
		uniq := map[string]bool{}
		for _, s := range scheds {
			uniq[s] = true
		}
		if len(uniq) > 1 {
			split = true
			t.Logf("v1 signature %q split into schedules %v", v1, scheds)
		}
	}
	if !split {
		t.Errorf("no v1 signature split into multiple schedule buckets; buckets: %v", byV1)
	}
}
