package pokeholes

// This file implements the open-ended hunting loop: Hunt fuzzes batches
// of programs on top of Engine.Campaign, buckets every conjecture
// violation by its stable signature (conjecture, culprit pass, violation
// shape, minimal reproducing pass schedule — the last splitting
// interaction bugs apart) into a persistent internal/corpus store,
// minimizes one exemplar
// per bucket as background jobs on the worker pool, and adaptively
// reweights the fuzzer's feature knobs toward assortments that recently
// opened new buckets. The loop is deterministic at any worker count:
// programs are generated from a seed cursor, results are aggregated in
// seed order, weights update only between batches, and each bucket's
// exemplar is minimized from the first (seed-ordered) violation that
// opened it — so a fixed (seed, budget) hunt produces a byte-identical
// corpus serially and in parallel, and a resumed hunt never re-reports a
// bucket already in its corpus.

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/internal/fuzzgen"
	"repro/internal/minic"
)

// Re-exported corpus types, so Hunt callers need not import the internal
// package.
type (
	// Corpus is the persistent deduplicated bug store of a hunt.
	Corpus = corpus.Corpus
	// Bucket is one unique bug of a corpus: signature, provenance, and
	// a minimized exemplar program.
	Bucket = corpus.Bucket
	// BucketSignature identifies a bucket: (conjecture, culprit pass,
	// violation shape, minimal reproducing pass schedule).
	BucketSignature = corpus.Signature
	// MergeStats summarizes one Corpus.Merge call (distributed
	// shard-and-merge hunting's bucket union).
	MergeStats = corpus.MergeStats
)

// LoadCorpus reads a corpus checkpoint from disk (see Corpus.Save).
func LoadCorpus(path string) (*Corpus, error) { return corpus.Load(path) }

// DefaultHuntBatch is the number of programs Hunt fuzzes per batch unless
// HuntSpec.BatchSize overrides it. Batch boundaries are where the
// adaptive weights update, so the batch size is part of the hunt's
// deterministic identity — it deliberately does NOT default from the
// worker count.
const DefaultHuntBatch = 32

// HuntSpec describes one budgeted hunting run.
type HuntSpec struct {
	// Family and Version select the compiler under test; Levels are the
	// optimization levels to check (default: OptLevels).
	Family  Family
	Version string
	Levels  []string
	// Matrix switches the hunt to matrix mode: every program is swept
	// across the version × level grid and Family/Version/Levels above
	// are ignored (the CampaignSpec.Matrix contract).
	Matrix *Matrix
	// Budget is the number of fuzzed programs this run consumes.
	Budget int
	// Seed0 seeds a fresh hunt. A resumed hunt (Corpus non-nil) ignores
	// it and continues from the corpus's own seed cursor.
	Seed0 int64
	// ShardIndex/ShardCount partition the seed space for distributed
	// hunting: shard i of n hunts the stride Seed0+i, Seed0+i+n, … so N
	// replicas on the same Seed0 cover disjoint seed slices whose merged
	// corpora equal one unsharded hunt over the union. ShardCount 0 (the
	// zero value) means unsharded — shard 0 of 1 — except on resume,
	// where it adopts whatever shard identity the corpus records. A
	// non-zero ShardCount on resume must match the corpus's recorded
	// identity exactly: resuming under a different shard scheme would
	// silently re-fuzz or skip seeds that belong to another replica, so
	// Hunt fails loudly instead.
	ShardIndex int
	ShardCount int
	// BatchSize is the number of programs per fuzz batch (default
	// DefaultHuntBatch). The adaptive weights update between batches.
	BatchSize int
	// Corpus, when non-nil, resumes an earlier hunt: its buckets
	// deduplicate this run's findings and its cursor supplies the next
	// seeds. Nil starts a fresh corpus at Seed0.
	Corpus *corpus.Corpus
	// CorpusPath, when non-empty, checkpoints the corpus there
	// (atomically) after every batch and once more on return.
	CorpusPath string
	// NoMinimize keeps each bucket's exemplar as the original fuzzed
	// program instead of reducing it (useful for fast discovery-only
	// runs; the corpus marks exemplars via Bucket.Minimized).
	NoMinimize bool
	// Progress, when non-nil, is called after every batch from the
	// hunt's own goroutine (serially).
	Progress func(HuntProgress)
	// Snapshot, when non-nil, is called with the live corpus at every
	// point it is quiescent and checkpoint-consistent: after each batch
	// (post-checkpoint), and once more on any exit path. The serving
	// layer uses it to Merge the hunt's findings into a global corpus
	// without racing the hunt loop. The callback runs on the hunt's own
	// goroutine and must not retain the corpus past its return.
	Snapshot func(*corpus.Corpus)
}

// HuntProgress is one batch's progress snapshot (lifetime corpus values).
// It is JSON-serializable so the serving layer's /hunt/status endpoint can
// surface it verbatim.
type HuntProgress struct {
	Batch      int `json:"batch"`        // batches completed this run
	Programs   int `json:"programs"`     // lifetime programs hunted
	Buckets    int `json:"buckets"`      // lifetime unique buckets
	Violations int `json:"violations"`   // lifetime violations (unique + duplicate)
	Dups       int `json:"dups"`         // lifetime duplicates
	NewInBatch int `json:"new_in_batch"` // buckets opened by this batch
}

// CurvePoint is one point of the unique-bugs-over-time curve.
type CurvePoint struct {
	Programs int `json:"programs"`
	Buckets  int `json:"buckets"`
}

// HuntReport is the outcome of one Hunt run.
type HuntReport struct {
	// Corpus is the (possibly resumed) corpus after this run.
	Corpus *corpus.Corpus
	// Programs, Violations and Dups count THIS run's work; the corpus
	// carries the lifetime totals.
	Programs   int
	Violations int
	Dups       int
	// NewBuckets are the buckets this run opened, in discovery order. A
	// resumed run never lists a bucket its input corpus already had.
	NewBuckets []*corpus.Bucket
	// Curve has one point per program processed this run, in lifetime
	// coordinates — the paper-style unique-bugs-over-time curve.
	Curve []CurvePoint
}

// sourceLines counts the lines of a rendered program.
func sourceLines(src string) int {
	return strings.Count(src, "\n")
}

// minimizeJob is one background exemplar reduction.
type minimizeJob struct {
	bucket  *corpus.Bucket
	prog    *minic.Program
	cfg     Config
	v       Violation
	culprit string
}

// Hunt runs an open-ended, budgeted, deduplicated bug hunt and returns
// the (new or extended) corpus with this run's report. On an error or
// cancellation mid-run the corpus is checkpointed and the partial report
// is returned alongside the error; resuming with the same corpus
// continues exactly where the hunt stopped.
func (e *Engine) Hunt(ctx context.Context, spec HuntSpec) (*HuntReport, error) {
	if spec.Budget <= 0 {
		return nil, fmt.Errorf("pokeholes: hunt budget must be positive")
	}
	batch := spec.BatchSize
	if batch <= 0 {
		batch = DefaultHuntBatch
	}
	idx, cnt := spec.ShardIndex, spec.ShardCount
	if cnt < 0 || (cnt == 0 && idx != 0) || (cnt > 0 && (idx < 0 || idx >= cnt)) {
		return nil, fmt.Errorf("pokeholes: invalid hunt shard %d/%d", idx, cnt)
	}
	c := spec.Corpus
	if c == nil {
		if cnt == 0 {
			cnt = 1 // unsharded is shard 0 of 1
		}
		c = corpus.New()
		c.Seed0, c.ShardIndex, c.ShardCount = spec.Seed0, idx, cnt
		c.NextSeed = spec.Seed0 + int64(idx)
	} else {
		switch {
		case c.ShardCount == 0 && cnt > 1:
			// A legacy (pre-shard) corpus records no identity, so there is
			// no way to prove its cursor sits on this shard's stride —
			// resuming it sharded could silently overlap another replica.
			return nil, fmt.Errorf("pokeholes: cannot resume a corpus with no shard identity as shard %d/%d", idx, cnt)
		case c.ShardCount == 0:
			// Legacy corpus, unsharded resume: adopt the 0/1 identity with
			// the cursor itself as origin so the stride math below holds.
			c.Seed0, c.ShardIndex, c.ShardCount = c.NextSeed, 0, 1
		case cnt != 0 && (idx != c.ShardIndex || cnt != c.ShardCount):
			return nil, fmt.Errorf("pokeholes: corpus was hunted as shard %d/%d; refusing to resume as shard %d/%d (would re-fuzz or skip another replica's seeds)",
				c.ShardIndex, c.ShardCount, idx, cnt)
		}
		idx, cnt = c.ShardIndex, c.ShardCount
		// The cursor must sit exactly on this shard's stride: NextSeed =
		// Seed0 + idx + k*cnt for some k ≥ 0. Anything else means the
		// store was produced under different shard math (or corrupted)
		// and continuing would leave the residue class.
		rel := c.NextSeed - c.Seed0 - int64(idx)
		if rel < 0 || rel%int64(cnt) != 0 {
			return nil, fmt.Errorf("pokeholes: corpus cursor %d is off the stride of shard %d/%d at seed0 %d; refusing to resume",
				c.NextSeed, idx, cnt, c.Seed0)
		}
	}
	stride := int64(cnt)
	rep := &HuntReport{Corpus: c}
	publish := func() {
		if spec.Snapshot != nil {
			spec.Snapshot(c)
		}
	}
	checkpoint := func() error {
		// Nothing to persist before the hunt has consumed anything: in
		// particular, a spec error on the very first batch must not
		// drop an empty store onto CorpusPath (it would block a
		// corrected fresh re-run behind clobber guards).
		if spec.CorpusPath == "" || (c.Programs == 0 && c.Len() == 0) {
			return nil
		}
		return c.Save(spec.CorpusPath)
	}
	// fail returns err after a final checkpoint attempt. A checkpoint
	// failure takes over as the primary error: callers treat a clean
	// cancellation as benign, which a lost corpus is not. The corpus is
	// quiescent here, so interrupted hunts still publish a snapshot.
	fail := func(err error) error {
		if cpErr := checkpoint(); cpErr != nil {
			return fmt.Errorf("corpus checkpoint failed: %w (while handling: %v)", cpErr, err)
		}
		publish()
		return err
	}

	// Backfill pass: re-minimize exemplars an earlier run left
	// unreduced (a NoMinimize hunt, or a reduction skipped by a
	// mid-batch interrupt), so corpora upgrade incrementally. The jobs
	// depend only on stored bucket state, so they are as deterministic
	// as discovery-time minimization.
	if !spec.NoMinimize {
		var backfill []minimizeJob
		for _, b := range c.Buckets() {
			if b.Minimized || b.Family == "" {
				continue // nothing to do, or a pre-structured-config bucket
			}
			prog, err := ParseProgram(b.Exemplar)
			if err != nil {
				continue
			}
			culprit := b.Culprit
			if culprit == "untriaged" {
				culprit = ""
			}
			backfill = append(backfill, minimizeJob{b, prog,
				Config{Family: Family(b.Family), Version: b.Version, Level: b.Level},
				Violation{Conjecture: b.Conjecture, Var: b.Var}, culprit})
		}
		if len(backfill) > 0 {
			e.minimizeExemplars(ctx, backfill)
			if err := checkpoint(); err != nil {
				return rep, err
			}
		}
	}

	batches := 0
	for remaining := spec.Budget; remaining > 0; remaining -= batch {
		if err := ctx.Err(); err != nil {
			return rep, fail(err)
		}
		n := batch
		if n > remaining {
			n = remaining
		}
		// Generate the batch under the weights of everything hunted so
		// far. Seeds advance with the corpus cursor by the shard stride
		// (1 when unsharded), so resumed hunts never replay a program
		// they already consumed and sharded replicas stay inside their
		// disjoint residue class.
		weights := c.Weights()
		seed0 := c.NextSeed
		progs := make([]*minic.Program, n)
		feats := make([]map[string]bool, n)
		for i := 0; i < n; i++ {
			o := fuzzgen.WeightedOptions(seed0+int64(i)*stride, weights)
			progs[i] = fuzzgen.Generate(o)
			feats[i] = o.Features()
		}

		// The campaign runs under a per-batch child context so that an
		// early exit from the result loop (a failed program) can release
		// the worker pool per the Campaign cancel contract.
		bctx, bcancel := context.WithCancel(ctx)
		results, err := e.Campaign(bctx, CampaignSpec{
			Family: spec.Family, Version: spec.Version, Levels: spec.Levels,
			Matrix: spec.Matrix, Programs: progs, Triage: true,
			ReduceSchedules: true})
		if err != nil {
			bcancel()
			return rep, fail(err)
		}

		var jobs []minimizeJob
		newInBatch := 0
		var resErr error
		for res := range results {
			if res.Err != nil {
				// The stream is seed-ordered and contiguous, so
				// everything before this program is fully aggregated;
				// the cursor stays on the failed program for resume.
				resErr = res.Err
				break
			}
			seed := seed0 + int64(res.Index)*stride
			producedNew := false
			bucketViolation := func(cfg Config, v Violation, culprit, sched string) {
				rep.Violations++
				sig := corpus.SignatureOf(v, culprit, sched)
				if b, ok := c.Bucket(sig); ok {
					c.CountViolation(b)
					rep.Dups++
					e.dupViolations.Add(1)
					return
				}
				src := Render(res.Prog)
				b := &corpus.Bucket{
					Sig: sig, Conjecture: v.Conjecture,
					Culprit: culpritName(culprit), Shape: corpus.Shape(v),
					Schedule: sched,
					Seed:     seed, Config: cfg.String(),
					Family: string(cfg.Family), Version: cfg.Version, Level: cfg.Level,
					Var: v.Var, Line: v.Line,
					Exemplar: src, ExemplarLines: sourceLines(src),
					Count: 1, FoundAfter: c.Programs + 1,
				}
				// §4.2 cross-validation, once per bucket: a violation
				// that disappears under the other debugger engine points
				// at the checking debugger rather than the compiler. The
				// other engine's view was recorded in the same single VM
				// execution the check traced, so on a caching engine this
				// reads the cached session's second view — no re-run. It
				// runs outside the hunt's cancellation (at worst one
				// bounded compile + trace on a cache-disabled engine) so
				// a bucket persisted by a mid-batch interrupt carries the
				// same verdict as in an uninterrupted hunt.
				if also, cvErr := e.CrossValidate(context.WithoutCancel(ctx), res.Prog, cfg, v); cvErr == nil && !also {
					b.DebuggerSuspect = true
				}
				if err := c.Add(b); err != nil {
					panic("pokeholes: hunt bucketed one signature twice: " + err.Error())
				}
				rep.NewBuckets = append(rep.NewBuckets, b)
				e.bucketsFound.Add(1)
				producedNew = true
				newInBatch++
				if !spec.NoMinimize {
					jobs = append(jobs, minimizeJob{b, res.Prog, cfg, v, culprit})
				}
			}
			if spec.Matrix != nil {
				for i, rp := range res.Sweep.Reports {
					cfg := res.Sweep.Configs[i]
					for _, v := range rp.Violations {
						culprit, _ := res.CulpritAt(cfg, v)
						sched, _ := res.ScheduleAt(cfg, v)
						bucketViolation(cfg, v, culprit, sched)
					}
				}
			} else {
				levels := spec.Levels
				if len(levels) == 0 {
					levels = OptLevels(spec.Family)
				}
				for _, level := range levels {
					cfg := Config{Family: spec.Family, Version: spec.Version, Level: level}
					for _, v := range res.Violations[level] {
						culprit, _ := res.Culprit(level, v)
						sched, _ := res.Schedule(level, v)
						bucketViolation(cfg, v, culprit, sched)
					}
				}
			}
			c.RecordProgram(feats[res.Index], producedNew)
			c.Programs++
			c.NextSeed = seed + stride
			rep.Programs++
			rep.Curve = append(rep.Curve, CurvePoint{Programs: c.Programs, Buckets: c.Len()})
		}
		bcancel()

		// Minimize this batch's new exemplars as background jobs fanned
		// out over the engine's worker budget. Each job depends only on
		// the (deterministic) first violation of its bucket, so the
		// minimized exemplars are identical at any parallelism; waiting
		// here keeps every checkpoint internally consistent.
		e.minimizeExemplars(ctx, jobs)

		if resErr != nil {
			return rep, fail(resErr)
		}
		batches++
		if err := checkpoint(); err != nil {
			return rep, err
		}
		publish()
		if spec.Progress != nil {
			spec.Progress(HuntProgress{Batch: batches, Programs: c.Programs,
				Buckets: c.Len(), Violations: c.Violations(), Dups: c.Dups,
				NewInBatch: newInBatch})
		}
	}
	return rep, nil
}

// minimizeExemplars reduces each new bucket's exemplar, at most
// e.workers jobs at a time, and waits for all of them.
func (e *Engine) minimizeExemplars(ctx context.Context, jobs []minimizeJob) {
	if len(jobs) == 0 {
		return
	}
	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			small := e.Minimize(ctx, j.prog, j.cfg, j.v, j.culprit)
			if ctx.Err() != nil {
				// A cancelled reduction returns its best-so-far, which
				// is not deterministic; keep the unminimized exemplar
				// so an interrupted checkpoint stays reproducible.
				return
			}
			src := Render(small)
			j.bucket.Exemplar = src
			j.bucket.ExemplarLines = sourceLines(src)
			j.bucket.Minimized = true
		}()
	}
	wg.Wait()
}

// culpritName normalizes the empty (not single-knob controllable) culprit
// the way corpus signatures do.
func culpritName(culprit string) string {
	if culprit == "" {
		return "untriaged"
	}
	return culprit
}
