package pokeholes_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro"
	"repro/internal/experiments"
)

// campaignFingerprint reduces a campaign's result stream to a comparable
// form: the ordered list of (index, seed, level, violation-key) plus the
// violation multiset.
func campaignFingerprint(t *testing.T, eng *pokeholes.Engine, spec pokeholes.CampaignSpec) ([]string, map[string]int) {
	t.Helper()
	results, err := eng.Campaign(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var ordered []string
	multiset := map[string]int{}
	next := 0
	for res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Index != next {
			t.Fatalf("out-of-order result: got index %d, want %d", res.Index, next)
		}
		next++
		var levels []string
		for l := range res.Violations {
			levels = append(levels, l)
		}
		sort.Strings(levels)
		for _, level := range levels {
			for _, v := range res.Violations[level] {
				key := fmt.Sprintf("seed%d|%s|%s", res.Seed, level, v.Key())
				ordered = append(ordered, key)
				multiset[key]++
			}
		}
	}
	if next != spec.N {
		t.Fatalf("got %d results, want %d", next, spec.N)
	}
	return ordered, multiset
}

// TestCampaignParallelMatchesSerial is the determinism contract: a campaign
// over 8 workers must yield the same ordered stream and the same violation
// multiset as a serial run. Run under -race this also exercises the cache
// and worker pool for data races.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	spec := pokeholes.CampaignSpec{Family: pokeholes.GC, Version: "trunk", N: 12, Seed0: 500}
	serialOrder, serialSet := campaignFingerprint(t, pokeholes.NewEngine(pokeholes.WithWorkers(1)), spec)
	parallelOrder, parallelSet := campaignFingerprint(t, pokeholes.NewEngine(pokeholes.WithWorkers(8)), spec)
	if !reflect.DeepEqual(serialOrder, parallelOrder) {
		t.Errorf("ordered violation streams differ:\nserial:   %v\nparallel: %v", serialOrder, parallelOrder)
	}
	if !reflect.DeepEqual(serialSet, parallelSet) {
		t.Errorf("violation multisets differ:\nserial:   %v\nparallel: %v", serialSet, parallelSet)
	}
	if len(serialSet) == 0 {
		t.Error("campaign found no violations at all; the comparison is vacuous")
	}
}

// TestTable1DeterministicAcrossWorkers pins the acceptance criterion:
// Table 1 output is byte-identical between a serial and an 8-worker run.
func TestTable1DeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		var buf bytes.Buffer
		r := experiments.NewRunner(pokeholes.NewEngine(pokeholes.WithWorkers(workers)))
		if _, _, err := r.Table1(context.Background(), 10, 500, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("Table 1 differs across worker counts:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestCacheHitSecondCheckDoesNotRecompile asserts the compile counter does
// not move on a repeated Check of the same program and configuration.
func TestCacheHitSecondCheckDoesNotRecompile(t *testing.T) {
	eng := pokeholes.NewEngine()
	ctx := context.Background()
	prog := pokeholes.GenerateProgram(3)
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	first, err := eng.Check(ctx, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compiles := eng.Stats().Compiles
	if compiles == 0 {
		t.Fatal("first Check performed no compilation")
	}
	second, err := eng.Check(ctx, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Compiles; got != compiles {
		t.Errorf("second Check recompiled: %d -> %d compiles", compiles, got)
	}
	if !reflect.DeepEqual(first.Violations, second.Violations) {
		t.Error("cached Check returned different violations")
	}
	// A clone-equivalent program (same canonical source) must also hit.
	reparsed, err := pokeholes.ParseProgram(pokeholes.Render(prog))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Check(ctx, reparsed, cfg); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Compiles; got != compiles {
		t.Errorf("re-parsed identical source recompiled: %d -> %d compiles", compiles, got)
	}
}

// findTriagedViolation scans fuzzed programs for a violation with a
// successfully triaged culprit, so the flow test below is deterministic.
func findTriagedViolation(t *testing.T, eng *pokeholes.Engine) (seed int64, cfg pokeholes.Config, v pokeholes.Violation, culprit string) {
	t.Helper()
	ctx := context.Background()
	cfg = pokeholes.Config{Family: pokeholes.CL, Version: "trunk", Level: "Og"}
	for seed = 1000; seed < 1100; seed++ {
		prog := pokeholes.GenerateProgram(seed)
		report, err := eng.Check(ctx, prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, cand := range report.Violations {
			c, err := eng.Triage(ctx, prog, cfg, cand)
			if err == nil {
				return seed, cfg, cand, c
			}
		}
	}
	t.Skip("no triagable violation in the probe seed range")
	return
}

// TestCacheEliminatesRedundantCompiles demonstrates the acceptance
// criterion on the Check -> Triage -> Minimize flow: with the cache on,
// the whole flow performs strictly fewer compilations than with the cache
// off, and repeated baselines are served from memory.
func TestCacheEliminatesRedundantCompiles(t *testing.T) {
	probe := pokeholes.NewEngine()
	seed, cfg, v, culprit := findTriagedViolation(t, probe)

	runFlow := func(eng *pokeholes.Engine) int64 {
		ctx := context.Background()
		prog := pokeholes.GenerateProgram(seed)
		if _, err := eng.Check(ctx, prog, cfg); err != nil {
			t.Fatal(err)
		}
		got, err := eng.Triage(ctx, prog, cfg, v)
		if err != nil {
			t.Fatal(err)
		}
		if got != culprit {
			t.Fatalf("culprit = %q, want %q", got, culprit)
		}
		eng.Minimize(ctx, prog, cfg, v, culprit)
		return eng.Stats().Compiles
	}

	uncached := runFlow(pokeholes.NewEngine(pokeholes.WithCompileCache(0)))
	cached := runFlow(pokeholes.NewEngine())
	if cached >= uncached {
		t.Errorf("cache did not reduce compilations: cached=%d uncached=%d", cached, uncached)
	}
	t.Logf("Check->Triage->Minimize compiles: uncached=%d cached=%d", uncached, cached)
}

// TestCampaignCancel verifies the stream closes promptly on cancellation
// and delivers a contiguous prefix.
func TestCampaignCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(4))
	results, err := eng.Campaign(ctx, pokeholes.CampaignSpec{
		Family: pokeholes.GC, Version: "trunk", N: 64, Seed0: 1})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for res := range results {
		if res.Index != next {
			t.Fatalf("gap in cancelled stream: got %d, want %d", res.Index, next)
		}
		next++
		if next == 3 {
			cancel()
		}
	}
	if next == 64 {
		t.Log("campaign finished before cancellation took effect")
	}
	cancel()
}

// TestCampaignSpecValidation covers the error paths.
func TestCampaignSpecValidation(t *testing.T) {
	eng := pokeholes.NewEngine()
	ctx := context.Background()
	cases := []pokeholes.CampaignSpec{
		{Family: "frobnicator", Version: "trunk", N: 1},
		{Family: pokeholes.GC, Version: "v99", N: 1},
		{Family: pokeholes.GC, Version: "trunk", N: 0},
	}
	for _, spec := range cases {
		if _, err := eng.Campaign(ctx, spec); err == nil {
			t.Errorf("spec %+v: expected error", spec)
		}
	}
}

// TestCrossValidateSharesExecution pins the single-pass contract of the
// Recorder refactor: Check records ONE VM execution whose session carries
// both debugger views, and a subsequent CrossValidate of any violation
// reads the second view instead of re-executing — the old implementation
// needed 2 executions per binary, the new one needs 1.
func TestCrossValidateSharesExecution(t *testing.T) {
	ctx := context.Background()
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	// A program with at least one violation makes the cross-validation
	// meaningful (probe shared with BenchmarkCrossValidate).
	prog, report := findViolatingSeed(t, cfg)

	eng := pokeholes.NewEngine()
	if _, err := eng.Check(ctx, prog, cfg); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Traces; got != 1 {
		t.Fatalf("Check recorded %d executions, want 1", got)
	}
	for _, v := range report.Violations {
		if _, err := eng.CrossValidate(ctx, prog, cfg, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Stats().Traces; got != 1 {
		t.Errorf("Check + CrossValidate recorded %d executions, want 1 (single pass)", got)
	}

	// Both views are exposed through TraceAll, and the primary view is
	// exactly what Check reported on.
	mt, err := eng.TraceAll(ctx, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mt.Views) != 2 || mt.Views[0] == mt.Views[1] {
		t.Fatalf("TraceAll: want 2 distinct views, got %v", mt.Engines)
	}
	if !reflect.DeepEqual(mt.Views[0], report.Trace) {
		t.Error("TraceAll primary view differs from the Check trace")
	}
	if got := eng.Stats().Traces; got != 1 {
		t.Errorf("TraceAll re-recorded: %d executions, want 1", got)
	}
}

// TestMeasureSharesReference asserts that measuring two levels of one
// program traces the O0 reference only once.
func TestMeasureSharesReference(t *testing.T) {
	eng := pokeholes.NewEngine()
	ctx := context.Background()
	prog := pokeholes.GenerateProgram(7)
	if _, err := eng.Measure(ctx, prog, pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}); err != nil {
		t.Fatal(err)
	}
	traces := eng.Stats().Traces // O0 + O2
	if _, err := eng.Measure(ctx, prog, pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O3"}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Traces; got != traces+1 {
		t.Errorf("second Measure recorded %d traces, want exactly 1 more (O3 only)", got-traces)
	}
}
