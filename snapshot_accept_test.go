package pokeholes_test

// Acceptance tests for the optimizer's schedule-prefix snapshot tier: a
// snapshot-warm engine must produce byte-identical results to a cold,
// from-scratch engine — across Sweep grids, triage (flag search and
// bisection), and ScheduleReduce, at 1 and 8 workers — while executing
// measurably fewer optimizer passes.

import (
	"bytes"
	"context"
	"testing"

	"repro"
)

// TestSnapshotSweepByteIdentical pins the tier's hard constraint on the
// hottest path: full version × level sweeps of both families, at 1 and 8
// workers, produce reports byte-identical to a snapshot-disabled engine's
// — and the serial snapshot engine demonstrably skips prefix work (for
// the gc grid, at least a quarter of all pass executions, the sharing the
// level schedules' common prefixes buy).
func TestSnapshotSweepByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, fam := range []pokeholes.Family{pokeholes.GC, pokeholes.CL} {
		mx := pokeholes.FullMatrix(fam)
		for _, seed := range []int64{7, 56} {
			prog := pokeholes.GenerateProgram(seed)
			cold := pokeholes.NewEngine(pokeholes.WithWorkers(1), pokeholes.WithOptSnapshots(false))
			want, err := cold.Sweep(ctx, prog, mx)
			if err != nil {
				t.Fatal(err)
			}
			if s := cold.Stats(); s.PassesSkipped != 0 || s.SnapshotHits != 0 {
				t.Fatalf("snapshot-disabled engine skipped passes: %+v", s)
			}
			for _, workers := range []int{1, 8} {
				warm := pokeholes.NewEngine(pokeholes.WithWorkers(workers))
				got, err := warm.Sweep(ctx, prog, mx)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.Reports {
					if !bytes.Equal(reportJSON(t, want.Reports[i]), reportJSON(t, got.Reports[i])) {
						t.Errorf("%s seed %d workers %d: %s report differs from cold run",
							fam, seed, workers, got.Configs[i])
					}
				}
				s := warm.Stats()
				if s.SnapshotHits == 0 || s.PassesSkipped == 0 {
					t.Errorf("%s seed %d workers %d: sweep never resumed from a snapshot (%+v)",
						fam, seed, workers, s)
				}
				// Counters must balance: warm work plus skipped work is the
				// cold run's total.
				if coldTotal := cold.Stats().PassesRun; s.PassesRun+s.PassesSkipped != coldTotal {
					t.Errorf("%s seed %d workers %d: passes run %d + skipped %d != cold %d",
						fam, seed, workers, s.PassesRun, s.PassesSkipped, coldTotal)
				}
				// The serial engine's schedule-prefix reuse is deterministic;
				// the gc grid shares enough prefix to drop >= 25% of all
				// executions (concurrent workers may save less when siblings
				// race ahead of the checkpoint they'd resume from).
				if workers == 1 && fam == pokeholes.GC {
					total := s.PassesRun + s.PassesSkipped
					if 4*s.PassesSkipped < total {
						t.Errorf("gc seed %d: serial sweep skipped %d of %d passes, want >= 25%%",
							seed, s.PassesSkipped, total)
					}
				}
			}
		}
	}
}

// TestSnapshotTriageByteIdentical: both triage strategies — gc's
// per-pass flag search and cl's pipeline bisection — return the same
// culprit on a snapshot-warm engine as on a cold one, and their probes
// actually resume from snapshots (bisection probes become O(suffix)).
func TestSnapshotTriageByteIdentical(t *testing.T) {
	ctx := context.Background()
	cases := []pokeholes.Config{
		{Family: pokeholes.GC, Version: "trunk", Level: "O2"},
		{Family: pokeholes.CL, Version: "trunk", Level: "Og"},
	}
	for _, cfg := range cases {
		triaged := 0
		for seed := int64(1000); seed < 1040 && triaged < 2; seed++ {
			prog := pokeholes.GenerateProgram(seed)
			cold := pokeholes.NewEngine(pokeholes.WithOptSnapshots(false))
			rep, err := cold.Check(ctx, prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				want, errCold := cold.Triage(ctx, prog, cfg, v)
				warm := pokeholes.NewEngine()
				if _, err := warm.Check(ctx, prog, cfg); err != nil {
					t.Fatal(err)
				}
				got, errWarm := warm.Triage(ctx, prog, cfg, v)
				if (errCold == nil) != (errWarm == nil) || got != want {
					t.Errorf("%s seed %d %s: triage differs: cold (%q, %v) vs warm (%q, %v)",
						cfg, seed, v.Key(), want, errCold, got, errWarm)
				}
				if errCold != nil {
					continue
				}
				triaged++
				if s := warm.Stats(); s.PassesSkipped == 0 {
					t.Errorf("%s seed %d: warm triage never resumed from a snapshot (%+v)", cfg, seed, s)
				}
			}
		}
		if triaged == 0 {
			t.Errorf("%s: no triagable violation in the probe seed range; comparison is vacuous", cfg)
		}
	}
}

// TestSnapshotScheduleReduceByteIdentical: ddmin reductions on a
// snapshot-warm engine return the identical minimal schedule and probe
// count as on a cold engine, at 1 and 8 workers, while the probes share
// prefixes through the snapshot tier.
func TestSnapshotScheduleReduceByteIdentical(t *testing.T) {
	ctx := context.Background()
	prog := pokeholes.GenerateProgram(schedSplitSeed)
	reduceAll := func(eng *pokeholes.Engine) (scheds []string, probes []int) {
		rep, err := eng.Check(ctx, prog, schedCfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) == 0 {
			t.Fatalf("seed %d has no violations", schedSplitSeed)
		}
		for _, v := range rep.Violations {
			red, err := eng.ScheduleReduce(ctx, prog, schedCfg, v)
			if err != nil {
				t.Fatal(err)
			}
			scheds = append(scheds, red.Schedule.String())
			probes = append(probes, red.Probes)
		}
		return scheds, probes
	}
	coldScheds, coldProbes := reduceAll(pokeholes.NewEngine(pokeholes.WithOptSnapshots(false)))
	for _, workers := range []int{1, 8} {
		warm := pokeholes.NewEngine(pokeholes.WithWorkers(workers))
		scheds, probes := reduceAll(warm)
		for i := range coldScheds {
			if scheds[i] != coldScheds[i] || probes[i] != coldProbes[i] {
				t.Errorf("workers %d violation %d: (%q, %d probes) differs from cold (%q, %d probes)",
					workers, i, scheds[i], probes[i], coldScheds[i], coldProbes[i])
			}
		}
		if s := warm.Stats(); s.PassesSkipped == 0 || s.SnapshotHits == 0 {
			t.Errorf("workers %d: reduction probes never resumed from a snapshot (%+v)", workers, s)
		}
	}
}
