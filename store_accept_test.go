package pokeholes_test

// Acceptance tests of the persistent artifact tier: the container
// round-trip contract (a decoded executable is observationally identical
// to the one that was encoded, across the golden corpus and both compiler
// families) and the warm-start contract (a second engine pointed at a
// pre-warmed store directory serves the full golden corpus byte-for-byte
// with zero frontend and zero backend computations).

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/container"
	"repro/internal/minic"
)

// storeConfigs is the acceptance matrix: both families at O0 and O2.
func storeConfigs() []pokeholes.Config {
	return []pokeholes.Config{
		{Family: pokeholes.GC, Version: "trunk", Level: "O0"},
		{Family: pokeholes.GC, Version: "trunk", Level: "O2"},
		{Family: pokeholes.CL, Version: "trunk", Level: "O0"},
		{Family: pokeholes.CL, Version: "trunk", Level: "O2"},
	}
}

func goldenSources(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("golden corpus has %d programs, want at least 6", len(paths))
	}
	srcs := map[string]string{}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[strings.TrimSuffix(filepath.Base(p), ".mc")] = string(src)
	}
	return srcs
}

// traceProjection renders a trace deterministically for comparison (Stop
// holds an unexported lazy index, so struct equality is not usable).
func traceProjection(tr *pokeholes.Trace) string {
	var b strings.Builder
	for line := 1; line <= tr.NLines; line++ {
		s, ok := tr.Stops[line]
		if !ok {
			continue
		}
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestStoreRoundTripContract pins that for every golden program × family ×
// level, Decode(Encode(exe)) yields an executable with a byte-identical
// debug section, an identical recorded trace, and identical DWARF
// classifications for every violation the check finds.
func TestStoreRoundTripContract(t *testing.T) {
	ctx := context.Background()
	eng := pokeholes.NewEngine()
	for name, src := range goldenSources(t) {
		prog, err := pokeholes.ParseProgram(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, cfg := range storeConfigs() {
			res, err := eng.CompileResult(ctx, prog, cfg)
			if err != nil {
				t.Fatalf("%s %s: %v", name, cfg, err)
			}
			canonical := pokeholes.Render(prog)
			art := &container.Artifact{
				Exe: res.Exe,
				Prov: container.Provenance{
					Family: string(cfg.Family), Version: cfg.Version, Level: cfg.Level,
					Fingerprint: minic.FingerprintSource(canonical), SourceLen: len(canonical),
				},
				PipelineExecutions: res.PipelineExecutions,
				Applied:            res.Applied,
			}
			dec, err := container.Decode(container.Encode(art))
			if err != nil {
				t.Fatalf("%s %s: %v", name, cfg, err)
			}
			if !bytes.Equal(dec.Exe.DebugSection, res.Exe.DebugSection) {
				t.Fatalf("%s %s: decoded debug section differs", name, cfg)
			}

			dbg := pokeholes.NativeDebugger(cfg.Family)
			tr1, err := pokeholes.RecordTrace(res.Exe, dbg)
			if err != nil {
				t.Fatalf("%s %s: %v", name, cfg, err)
			}
			tr2, err := pokeholes.RecordTrace(dec.Exe, dbg)
			if err != nil {
				t.Fatalf("%s %s: %v", name, cfg, err)
			}
			if p1, p2 := traceProjection(tr1), traceProjection(tr2); p1 != p2 {
				t.Fatalf("%s %s: decoded executable traces differently:\n%s\nvs\n%s", name, cfg, p1, p2)
			}

			rep, err := eng.Check(ctx, prog, cfg)
			if err != nil {
				t.Fatalf("%s %s: %v", name, cfg, err)
			}
			for _, v := range rep.Violations {
				c1, err1 := pokeholes.ClassifyDWARF(res.Exe, v)
				c2, err2 := pokeholes.ClassifyDWARF(dec.Exe, v)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s %s: classify %s: %v / %v", name, cfg, v.Var, err1, err2)
				}
				if c1 != c2 {
					t.Fatalf("%s %s: violation %s classifies %q on the compiled exe but %q on the decoded one",
						name, cfg, v.Var, c1, c2)
				}
			}
		}
	}
}

// TestStoreWarmStart pins the warm-start contract end to end through the
// serving layer: engine A fills a store directory by answering the golden
// corpus; a fresh engine B on the same directory answers the identical
// requests byte-for-byte from disk, with zero frontend runs and zero
// backend compilations.
func TestStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	srcs := goldenSources(t)

	post := func(t *testing.T, ts *httptest.Server, src string, cfg pokeholes.Config) []byte {
		t.Helper()
		body, err := json.Marshal(pokeholes.CheckRequest{Source: src,
			Family: string(cfg.Family), Version: cfg.Version, Level: cfg.Level})
		if err != nil {
			t.Fatal(err)
		}
		return goldenPost(t, ts.Client(), ts.URL+"/check", string(body))
	}

	engA := pokeholes.NewEngine(pokeholes.WithArtifactStore(dir))
	if serr := engA.Stats().StoreError; serr != "" {
		t.Fatalf("store failed to open: %s", serr)
	}
	tsA := httptest.NewServer(engA.NewServer(pokeholes.ServeSpec{}).Handler())
	cold := map[string][]byte{}
	for name, src := range srcs {
		for _, cfg := range storeConfigs() {
			cold[name+"|"+cfg.String()] = post(t, tsA, src, cfg)
		}
	}
	tsA.Close()
	if st := engA.Stats(); st.Store.Writes == 0 {
		t.Fatalf("cold engine wrote nothing through to the store: %+v", st.Store)
	}

	engB := pokeholes.NewEngine(pokeholes.WithArtifactStore(dir))
	if serr := engB.Stats().StoreError; serr != "" {
		t.Fatalf("store failed to reopen: %s", serr)
	}
	tsB := httptest.NewServer(engB.NewServer(pokeholes.ServeSpec{}).Handler())
	defer tsB.Close()
	for name, src := range srcs {
		for _, cfg := range storeConfigs() {
			warm := post(t, tsB, src, cfg)
			if !bytes.Equal(warm, cold[name+"|"+cfg.String()]) {
				t.Errorf("%s %s: warm-start body differs from the cold one.\n%s",
					name, cfg, firstDiff(warm, cold[name+"|"+cfg.String()]))
			}
		}
	}

	st := engB.Stats()
	if st.Frontends != 0 {
		t.Errorf("warm engine ran %d frontends, want 0", st.Frontends)
	}
	if st.Compiles != 0 {
		t.Errorf("warm engine ran %d backend compilations, want 0", st.Compiles)
	}
	if st.Store.Hits == 0 {
		t.Errorf("warm engine hit the store 0 times: %+v", st.Store)
	}
	if st.Store.Quarantined != 0 {
		t.Errorf("warm engine quarantined %d entries on a healthy store", st.Store.Quarantined)
	}

	// The gc-trunk-O2 warm bodies must also match the committed golden
	// fixtures: disk-served artifacts reproduce the pinned corpus bytes.
	for name, src := range srcs {
		warm := post(t, tsB, src, pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"})
		want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".check.json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(warm, want) {
			t.Errorf("%s: warm-start /check drifted from the golden fixture.\n%s",
				name, firstDiff(warm, want))
		}
	}
}
