package pokeholes_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro"
)

// waitGoroutinesDrained polls until the process goroutine count is back
// at (or below) the bracket taken before the test body ran.
func waitGoroutinesDrained(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finalizers; cheap compared to the poll loop
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCampaignCancelDrainsGoroutines pins the cancel contract of the
// worker pool: a consumer that cancels ctx and then ABANDONS the results
// channel (without draining it) must not leak the feeder, the workers or
// the reorder goroutine.
func TestCampaignCancelDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(8))
	results, err := eng.Campaign(ctx, pokeholes.CampaignSpec{
		Family: pokeholes.GC, Version: "trunk", N: 256, Seed0: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Consume a couple of results so the pool is genuinely mid-flight,
	// then cancel and walk away without draining.
	for i := 0; i < 2; i++ {
		if _, ok := <-results; !ok {
			t.Fatal("campaign ended after 2 of 256 results")
		}
	}
	cancel()
	waitGoroutinesDrained(t, before)
}

// TestSweepCancelDrainsGoroutines cancels a mid-flight Sweep and asserts
// it returns the cancellation error with no goroutine left behind.
func TestSweepCancelDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(8))
	prog := pokeholes.GenerateProgram(11)
	done := make(chan error, 1)
	go func() {
		_, err := eng.Sweep(ctx, prog, pokeholes.FullMatrix(pokeholes.GC))
		done <- err
	}()
	// Let the sweep get going, then cancel it mid-flight.
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep returned %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep did not return")
	}
	waitGoroutinesDrained(t, before)
}

// TestHuntCancelDrainsGoroutines cancels a mid-flight Hunt (campaign and
// background minimizers included) and asserts everything drains.
func TestHuntCancelDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(4))
	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Hunt(ctx, pokeholes.HuntSpec{
			Family: pokeholes.GC, Version: "trunk", Levels: []string{"O2"},
			Budget: 512, Seed0: 300, BatchSize: 16})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled hunt did not return")
	}
	waitGoroutinesDrained(t, before)
}
