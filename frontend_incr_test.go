package pokeholes_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/compiler"
)

const incrBaseSrc = `int g1 = 7;
volatile int g2;
int helper(int x) {
  g1 = g1 + x;
  return g1;
}
int twice(int x) {
  return helper(x) + helper(x);
}
int main(void) {
  int i = 0;
  for (; i < 4; i = i + 1) {
    g2 = twice(i);
  }
  return g1;
}
`

// TestEngineFnFrontendCounters pins the engine-level accounting of the
// function-granular frontend: a first Check lowers every function fresh; a
// one-function edit re-lowers exactly one and serves the rest from the
// per-function cache; an exact repeat assembles nothing at all (served by
// the module tier).
func TestEngineFnFrontendCounters(t *testing.T) {
	ctx := context.Background()
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(1))
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}

	base, err := pokeholes.ParseProgram(incrBaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Check(ctx, base, cfg); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Frontends != 1 || st.FnFrontends != 3 || st.FnFrontendHits != 0 || st.FnRelowered != 3 {
		t.Fatalf("after cold check: %+v", st)
	}

	edited, err := pokeholes.ParseProgram(strings.Replace(incrBaseSrc,
		"return helper(x) + helper(x);", "return helper(x) + helper(x + 1);", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Check(ctx, edited, cfg); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Frontends != 2 || st.FnFrontends != 6 || st.FnFrontendHits != 2 || st.FnRelowered != 4 {
		t.Fatalf("after one-function edit: %+v", st)
	}

	// An exact repeat hits the module tier: no per-function work at all.
	repeat, err := pokeholes.ParseProgram(incrBaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Check(ctx, repeat, cfg); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Frontends != 2 || st.FnFrontends != 6 || st.FnRelowered != 4 {
		t.Fatalf("after exact repeat: %+v", st)
	}
}

// TestIncrementalFrontendDWARFClassification pins the last leg of the
// byte-identity contract over the golden corpus: the DWARF classification
// of every violation found through the engine (whose frontend assembles
// modules from the per-function cache) matches classification over a
// direct whole-program compile of the same program.
func TestIncrementalFrontendDWARFClassification(t *testing.T) {
	ctx := context.Background()
	eng := pokeholes.NewEngine()
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.mc"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden corpus: %v", err)
	}
	configs := []pokeholes.Config{
		{Family: pokeholes.GC, Version: "trunk", Level: "O2"},
		{Family: pokeholes.CL, Version: "trunk", Level: "Os"},
	}
	classified := 0
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		// Parse twice so the engine path and the direct path cannot share
		// AST-level state.
		for _, cfg := range configs {
			prog, err := pokeholes.ParseProgram(string(src))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := eng.Check(ctx, prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := pokeholes.ParseProgram(string(src))
			if err != nil {
				t.Fatal(err)
			}
			res, err := compiler.Compile(direct, cfg, compiler.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				got, err := eng.ClassifyDWARF(ctx, prog, cfg, v)
				if err != nil {
					t.Fatal(err)
				}
				want, err := pokeholes.ClassifyDWARF(res.Exe, v)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s %v %s: engine classified %q, whole-program %q",
						filepath.Base(p), cfg, v.Key(), got, want)
				}
				classified++
			}
		}
	}
	if classified == 0 {
		t.Fatal("golden corpus produced no violations to classify")
	}
	t.Logf("classified %d violations identically", classified)
}
