package pokeholes

// This file implements the serving layer: Engine.Serve exposes a shared
// engine as an HTTP/JSON service — /check, /sweep, /triage, /minimize,
// /campaign, /hunt/status and /stats — with request batching, bounded
// admission control and per-request deadlines. Batching coalesces
// concurrent submissions of the same program fingerprint (and request
// shape) onto one cache-backed computation via the same coalescing LRU
// the engine keys compilations on, so a burst of identical requests costs
// one frontend, one compile and one trace. Responses are
// byte-deterministic for a fixed request — two engines given the same
// request produce identical bodies — so the service can be load-balanced
// and replayed; live endpoints (/stats, /hunt/status, /healthz) are the
// deliberate exception.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/minic"
)

// Serving defaults, overridable per field in ServeSpec.
const (
	// DefaultMaxQueueFactor sizes the admission queue at this multiple of
	// MaxInflight when ServeSpec.MaxQueue is zero.
	DefaultMaxQueueFactor = 4
	// DefaultRequestTimeout is the per-request deadline unless
	// ServeSpec.RequestTimeout overrides it.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultResponseCache is the response-body cache capacity (entries)
	// unless ServeSpec.ResponseCache overrides it.
	DefaultResponseCache = 1024
	// DefaultRetryAfter is the Retry-After hint on 429/503 responses.
	DefaultRetryAfter = time.Second
	// DefaultShutdownGrace bounds how long Serve waits for in-flight
	// requests after its context is cancelled.
	DefaultShutdownGrace = 10 * time.Second
)

// ServeSpec configures one serving session over an engine.
type ServeSpec struct {
	// Addr is the TCP listen address (e.g. ":8080"). Ignored when
	// Listener is set.
	Addr string
	// Listener, when non-nil, is served directly — tests and callers that
	// need to know the bound port pass a prepared loopback listener.
	Listener net.Listener
	// MaxInflight bounds concurrently processed requests (default: the
	// engine's worker count).
	MaxInflight int
	// MaxQueue bounds admitted-but-waiting requests beyond MaxInflight
	// (default: DefaultMaxQueueFactor × MaxInflight; negative: no queue).
	// A request arriving past MaxInflight+MaxQueue is rejected with 429
	// and a Retry-After hint.
	MaxQueue int
	// RequestTimeout is the per-request deadline, queue wait included
	// (default DefaultRequestTimeout; negative: no deadline). A request
	// that exceeds it fails with 503 and a Retry-After hint.
	RequestTimeout time.Duration
	// ResponseCache is the response-body cache capacity in entries
	// (default DefaultResponseCache; negative disables caching AND
	// response-level batching — engine-level caches still coalesce).
	ResponseCache int
	// RetryAfter is the Retry-After hint on 429/503 responses (default
	// DefaultRetryAfter).
	RetryAfter time.Duration
	// ShutdownGrace bounds the graceful drain after the serve context is
	// cancelled (default DefaultShutdownGrace).
	ShutdownGrace time.Duration
	// Hunt, when non-nil, runs a background Engine.Hunt for the lifetime
	// of the serve context; /hunt/status reports its live progress.
	Hunt *HuntSpec
}

// withDefaults resolves the spec's zero values against an engine.
func (sp ServeSpec) withDefaults(e *Engine) ServeSpec {
	if sp.MaxInflight <= 0 {
		sp.MaxInflight = e.workers
	}
	if sp.MaxQueue == 0 {
		sp.MaxQueue = DefaultMaxQueueFactor * sp.MaxInflight
	}
	if sp.MaxQueue < 0 {
		sp.MaxQueue = 0
	}
	if sp.RequestTimeout == 0 {
		sp.RequestTimeout = DefaultRequestTimeout
	}
	if sp.ResponseCache == 0 {
		sp.ResponseCache = DefaultResponseCache
	}
	if sp.RetryAfter <= 0 {
		sp.RetryAfter = DefaultRetryAfter
	}
	if sp.ShutdownGrace <= 0 {
		sp.ShutdownGrace = DefaultShutdownGrace
	}
	return sp
}

// Wire types. Every response body ends in a single newline; NDJSON bodies
// are a sequence of such lines. Encoding goes through encoding/json whose
// output is deterministic (struct fields in declaration order, map keys
// sorted), which is what makes the determinism guarantee hold.

// CheckRequest is the body of POST /check and POST /triage.
type CheckRequest struct {
	Source  string `json:"source"`
	Family  string `json:"family"`
	Version string `json:"version"`
	Level   string `json:"level"`
	// Schedules, on /triage, additionally delta-debugs every violation's
	// pass schedule to its minimal reproducing subsequence and reports it
	// per culprit (ignored by /check). Off by default: default responses
	// are byte-identical to schedule-less servers.
	Schedules bool `json:"schedules,omitempty"`
}

// SweepRequest is the body of POST /sweep.
type SweepRequest struct {
	Source string `json:"source"`
	Family string `json:"family"`
	// Versions and Levels select the matrix (empty: the family's full
	// version list / all optimizing levels).
	Versions []string `json:"versions,omitempty"`
	Levels   []string `json:"levels,omitempty"`
	// Measure adds the §2 metrics of every cell to its report line.
	Measure bool `json:"measure,omitempty"`
}

// MinimizeRequest is the body of POST /minimize.
type MinimizeRequest struct {
	Source  string `json:"source"`
	Family  string `json:"family"`
	Version string `json:"version"`
	Level   string `json:"level"`
	// Conjecture and Var identify the violation to preserve; Culprit,
	// when non-empty, must be preserved too (the §4.4 predicate).
	Conjecture int    `json:"conjecture"`
	Var        string `json:"var"`
	Culprit    string `json:"culprit,omitempty"`
}

// CampaignRequest is the body of POST /campaign.
type CampaignRequest struct {
	Family  string   `json:"family"`
	Version string   `json:"version"`
	Levels  []string `json:"levels,omitempty"`
	N       int      `json:"n"`
	Seed0   int64    `json:"seed0"`
	Triage  bool     `json:"triage,omitempty"`
	Measure bool     `json:"measure,omitempty"`
}

// WireViolation is one conjecture violation on the wire.
type WireViolation struct {
	Conjecture int    `json:"conjecture"`
	Line       int    `json:"line"`
	Func       string `json:"func"`
	Var        string `json:"var"`
	State      string `json:"state"`
	Detail     string `json:"detail"`
	Key        string `json:"key"`
}

// WireMetrics are the §2 measures on the wire.
type WireMetrics struct {
	LineCoverage float64 `json:"line_coverage"`
	Availability float64 `json:"availability"`
	Product      float64 `json:"product"`
}

// CheckResponse is the body of POST /check and the per-cell report line
// of the /sweep NDJSON stream.
type CheckResponse struct {
	Fingerprint string          `json:"fingerprint"`
	Family      string          `json:"family"`
	Version     string          `json:"version"`
	Level       string          `json:"level"`
	Config      string          `json:"config"`
	LinesHit    int             `json:"lines_hit"`
	Steppable   int             `json:"steppable"`
	Violations  []WireViolation `json:"violations"`
}

// SweepReportLine is one /sweep NDJSON line of kind "report".
type SweepReportLine struct {
	Kind string `json:"kind"`
	CheckResponse
	Metrics *WireMetrics `json:"metrics,omitempty"`
}

// SweepSummaryLine is one /sweep NDJSON line of kind "summary": one per
// matrix version, after all report lines — the Figures 2/3 level-set
// decomposition and the Table 4 per-conjecture rollup.
type SweepSummaryLine struct {
	Kind               string         `json:"kind"`
	Fingerprint        string         `json:"fingerprint"`
	Version            string         `json:"version"`
	LevelSetCounts     map[string]int `json:"level_set_counts"`
	UniqueByConjecture [3]int         `json:"unique_by_conjecture"`
}

// WireCulprit is one triaged violation of a TriageResponse.
type WireCulprit struct {
	Violation WireViolation `json:"violation"`
	// Culprit is the single optimization pass controlling the violation;
	// empty (Controllable false) when no single knob controls it (§4.3).
	Culprit      string `json:"culprit"`
	Controllable bool   `json:"controllable"`
	// MinimalSchedule is the canonical string of the minimal pass
	// schedule that still reproduces the violation — present only when
	// the request set "schedules" and the reduction succeeded. Two or
	// more comma-separated entries mark a pass-interaction bug
	// (Interaction true); an interaction's constituent passes are beyond
	// what the single Culprit can express.
	MinimalSchedule string `json:"minimal_schedule,omitempty"`
	Interaction     bool   `json:"interaction,omitempty"`
}

// TriageResponse is the body of POST /triage: the configuration's check
// with every violation attributed to a culprit pass.
type TriageResponse struct {
	Fingerprint string        `json:"fingerprint"`
	Config      string        `json:"config"`
	Culprits    []WireCulprit `json:"culprits"`
}

// MinimizeResponse is the body of POST /minimize.
type MinimizeResponse struct {
	Fingerprint string `json:"fingerprint"`
	Config      string `json:"config"`
	Conjecture  int    `json:"conjecture"`
	Var         string `json:"var"`
	Culprit     string `json:"culprit,omitempty"`
	// Source is the minimized program; MinimizedFingerprint its identity.
	Source               string `json:"source"`
	Lines                int    `json:"lines"`
	MinimizedFingerprint string `json:"minimized_fingerprint"`
}

// CampaignResultLine is one /campaign NDJSON line of kind "result" — one
// program's outcome, streamed in seed order as the campaign produces it.
type CampaignResultLine struct {
	Kind       string                     `json:"kind"`
	Index      int                        `json:"index"`
	Seed       int64                      `json:"seed"`
	Violations map[string][]WireViolation `json:"violations"`
	Culprits   map[string]string          `json:"culprits,omitempty"`
	Metrics    map[string]WireMetrics     `json:"metrics,omitempty"`
}

// CampaignEndLine terminates a /campaign NDJSON stream.
type CampaignEndLine struct {
	Kind     string `json:"kind"`
	Programs int    `json:"programs"`
	// Error carries the first per-program failure when the stream ended
	// early (kind "error" instead of "end").
	Error string `json:"error,omitempty"`
}

// HuntStatus is the body of GET /hunt/status.
type HuntStatus struct {
	// Configured reports whether this server runs a background hunt at
	// all; Running and Done track its lifecycle.
	Configured bool   `json:"configured"`
	Running    bool   `json:"running"`
	Done       bool   `json:"done"`
	Error      string `json:"error,omitempty"`
	// Shard is the background hunt's seed-space slice as "index/count"
	// (empty when no hunt is configured). A herd of replicas on disjoint
	// shards reports disjoint values here, which is how the coordinator
	// sanity-checks its fleet.
	Shard string `json:"shard,omitempty"`
	// Progress is the latest per-batch snapshot (absent before the first
	// batch completes).
	Progress *HuntProgress `json:"progress,omitempty"`
}

// MergeResponse is the body of POST /hunt/merge: what the pushed corpus
// contributed to this server's global corpus, and its new size.
type MergeResponse struct {
	NewBuckets    int `json:"new_buckets"`
	MergedBuckets int `json:"merged_buckets"`
	GlobalBuckets int `json:"global_buckets"`
}

// ServerStats are the serving layer's own counters, surfaced next to the
// engine's in GET /stats.
type ServerStats struct {
	// Requests counts admission attempts on the work endpoints; Rejected
	// counts 429s (queue full); Deadline counts RequestTimeout expiries
	// (503) — client disconnects are excluded.
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected"`
	Deadline int64 `json:"deadline_failures"`
	// ResponseHits counts requests served (or coalesced) from the
	// response-body cache; a hit means zero new engine work for the
	// request. ResponseEntries is the current resident count.
	ResponseHits    uint64 `json:"response_hits"`
	ResponseMisses  uint64 `json:"response_misses"`
	ResponseEntries int    `json:"response_entries"`
	// Merges counts corpora unioned into the global corpus — the local
	// hunt's snapshots and /hunt/merge pushes alike; GlobalBuckets is
	// the global corpus's current unique-bug count.
	Merges        int64 `json:"merges"`
	GlobalBuckets int   `json:"global_buckets"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Engine EngineStats `json:"engine"`
	Server ServerStats `json:"server"`
}

// errorBody is the JSON body of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// requestError marks a client-side (400) failure.
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &requestError{fmt.Sprintf(format, args...)}
}

// Server is the HTTP serving layer over one engine. Construct with
// Engine.NewServer; Handler returns the routed http.Handler (embed it, or
// let Engine.Serve listen and drain for you).
type Server struct {
	eng  *Engine
	spec ServeSpec
	mux  *http.ServeMux

	// resp is the response-body cache: coalescing gives request batching
	// (identical concurrent requests compute once), storage gives replay
	// (identical later requests cost zero engine work). Nil when disabled.
	resp *cache.Cache[string, []byte]

	// Admission state: pending counts admitted requests (running +
	// queued); sem bounds the running ones.
	pending atomic.Int64
	sem     chan struct{}

	requests  atomic.Int64
	rejected  atomic.Int64
	deadlines atomic.Int64

	huntMu sync.Mutex
	hunt   HuntStatus

	// global is the server's merged bug set: the local background hunt's
	// batch-boundary snapshots and every corpus POSTed to /hunt/merge,
	// unioned via corpus.Merge. globalMu serializes merges against
	// /hunt/export encodes, so an export is always a consistent
	// (never torn) snapshot. merges counts unions performed.
	globalMu sync.Mutex
	global   *corpus.Corpus
	merges   atomic.Int64
}

// NewServer returns the serving layer over the engine. The returned
// server is ready to use via Handler; Engine.Serve adds listening,
// graceful shutdown and the optional background hunt.
func (e *Engine) NewServer(spec ServeSpec) *Server {
	spec = spec.withDefaults(e)
	s := &Server{
		eng:    e,
		spec:   spec,
		sem:    make(chan struct{}, spec.MaxInflight),
		global: corpus.New(),
	}
	if spec.ResponseCache > 0 {
		s.resp = cache.New[string, []byte](spec.ResponseCache)
	}
	s.hunt.Configured = spec.Hunt != nil
	if spec.Hunt != nil {
		cnt := spec.Hunt.ShardCount
		if cnt == 0 {
			cnt = 1
		}
		s.hunt.Shard = fmt.Sprintf("%d/%d", spec.Hunt.ShardIndex, cnt)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /check", s.handleCheck)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("POST /triage", s.handleTriage)
	mux.HandleFunc("POST /minimize", s.handleMinimize)
	mux.HandleFunc("POST /campaign", s.handleCampaign)
	// The hunt/merge plane sits outside the admission gate, like
	// /hunt/status: the coordinator's pulls and pushes are cheap,
	// engine-free, and must not be starved behind queued work requests.
	mux.HandleFunc("GET /hunt/status", s.handleHuntStatus)
	mux.HandleFunc("GET /hunt/export", s.handleHuntExport)
	mux.HandleFunc("POST /hunt/merge", s.handleHuntMerge)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// Handler returns the server's routed handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats returns the serving layer's own counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Requests: s.requests.Load(),
		Rejected: s.rejected.Load(),
		Deadline: s.deadlines.Load(),
		Merges:   s.merges.Load(),
	}
	if s.resp != nil {
		st.ResponseHits, st.ResponseMisses = s.resp.Stats()
		st.ResponseEntries = s.resp.Len()
	}
	s.globalMu.Lock()
	st.GlobalBuckets = s.global.Len()
	s.globalMu.Unlock()
	return st
}

// mergeGlobal unions a corpus into the server's global bug set.
func (s *Server) mergeGlobal(c *corpus.Corpus) (MergeStats, error) {
	s.globalMu.Lock()
	defer s.globalMu.Unlock()
	st, err := s.global.Merge(c)
	if err == nil {
		s.merges.Add(1)
	}
	return st, err
}

// retryAfterSeconds renders the Retry-After hint (at least 1 second).
func (s *Server) retryAfterSeconds() string {
	secs := int((s.spec.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeJSON writes one JSON body line with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil { // wire types always marshal; defensive only
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// writeError maps an error to its status code and deterministic JSON body.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var reqErr *requestError
	switch {
	case errors.As(err, &reqErr):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: reqErr.msg})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// Only genuine RequestTimeout expiries count toward the deadline
		// stat: a Canceled here means the client disconnected (or the
		// server is closing), which is not deadline pressure.
		if errors.Is(err, context.DeadlineExceeded) {
			s.deadlines.Add(1)
		}
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "deadline exceeded"})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// admitted wraps a work handler with the admission gate and the
// per-request deadline: past MaxInflight+MaxQueue it rejects with 429
// immediately; a request whose deadline fires while queued fails with
// 503. The context handed to the handler carries the request deadline.
func (s *Server) admitted(h func(ctx context.Context, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		limit := int64(s.spec.MaxInflight + s.spec.MaxQueue)
		if s.pending.Add(1) > limit {
			s.pending.Add(-1)
			s.rejected.Add(1)
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "admission queue full"})
			return
		}
		defer s.pending.Add(-1)

		ctx := r.Context()
		if s.spec.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.spec.RequestTimeout)
			defer cancel()
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.deadlines.Add(1) // a client disconnect is not deadline pressure
			}
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "deadline exceeded while queued"})
			return
		}
		h(ctx, w, r)
	}
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// parseConfig validates and builds a configuration from wire fields.
func parseConfig(family, version, level string) (Config, error) {
	cfg := Config{Family: Family(family), Version: version, Level: level}
	if cfg.Family != GC && cfg.Family != CL {
		return cfg, badRequest("unknown family %q", family)
	}
	if cfg.VersionIndex() < 0 {
		return cfg, badRequest("unknown version %q for family %s", version, family)
	}
	for _, l := range Levels(cfg.Family) {
		if l == level {
			return cfg, nil
		}
	}
	return cfg, badRequest("unknown level %q for family %s", level, family)
}

// parseSource parses MiniC source from a request.
func parseSource(src string) (*minic.Program, error) {
	if src == "" {
		return nil, badRequest("empty source")
	}
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, badRequest("parse: %v", err)
	}
	return prog, nil
}

// serveBody runs compute through the response cache — coalescing
// concurrent identical requests onto one computation and replaying
// repeats for free — and writes the body. The coalescing inherits the
// cache's per-request deadline semantics: a waiter's deadline unblocks
// only that waiter, and a leader abandoned by its own deadline hands the
// computation to a live waiter instead of failing it.
func (s *Server) serveBody(ctx context.Context, w http.ResponseWriter, key, contentType string, compute func(ctx context.Context) ([]byte, error)) {
	var body []byte
	var err error
	if s.resp != nil {
		body, err = s.resp.GetOrComputeCtx(ctx, key, func() ([]byte, error) { return compute(ctx) })
	} else {
		body, err = compute(ctx)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(body)
}

// wireViolations converts violations for the wire (never nil: an empty
// list serializes as [], keeping bodies deterministic).
func wireViolations(vs []Violation) []WireViolation {
	out := make([]WireViolation, 0, len(vs))
	for _, v := range vs {
		out = append(out, WireViolation{Conjecture: v.Conjecture, Line: v.Line,
			Func: v.Func, Var: v.Var, State: v.State.String(), Detail: v.Detail,
			Key: v.Key()})
	}
	return out
}

// wireCheck builds the wire report of one configuration's check.
func wireCheck(fp string, rep *Report) CheckResponse {
	return CheckResponse{
		Fingerprint: fp,
		Family:      string(rep.Config.Family),
		Version:     rep.Config.Version,
		Level:       rep.Config.Level,
		Config:      rep.Config.String(),
		LinesHit:    len(rep.Trace.Stops),
		Steppable:   len(rep.Trace.Steppable),
		Violations:  wireViolations(rep.Violations),
	}
}

// wireMetrics converts the §2 measures for the wire.
func wireMetrics(m Metrics) WireMetrics {
	return WireMetrics{LineCoverage: m.LineCoverage, Availability: m.Availability,
		Product: m.Product}
}

// marshalLine renders one NDJSON line (newline included).
func marshalLine(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	s.admitted(func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req CheckRequest
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		cfg, err := parseConfig(req.Family, req.Version, req.Level)
		if err != nil {
			s.writeError(w, err)
			return
		}
		prog, err := parseSource(req.Source)
		if err != nil {
			s.writeError(w, err)
			return
		}
		// The batching key is the canonical source (fingerprint-prefixed),
		// not the raw request bytes: requests differing only in formatting
		// or field order coalesce too.
		srcKey := sourceKey(prog)
		fp := srcKey[:16] // the sourceKey's fingerprint prefix; avoids a second render
		key := "check|" + cfg.String() + "|" + srcKey
		s.serveBody(ctx, w, key, "application/json", func(ctx context.Context) ([]byte, error) {
			rep, err := s.eng.Check(ctx, prog, cfg)
			if err != nil {
				return nil, err
			}
			return marshalLine(wireCheck(fp, rep))
		})
	})(w, r)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.admitted(func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		fam := Family(req.Family)
		if fam != GC && fam != CL {
			s.writeError(w, badRequest("unknown family %q", req.Family))
			return
		}
		mx := Matrix{Family: fam, Versions: req.Versions, Levels: req.Levels,
			Measure: req.Measure}
		// Validate the matrix up front so malformed requests 400 here and
		// every later failure is a genuine server-side (5xx) one.
		if err := mx.withDefaults().validate(); err != nil {
			s.writeError(w, badRequest("%v", err))
			return
		}
		prog, err := parseSource(req.Source)
		if err != nil {
			s.writeError(w, err)
			return
		}
		srcKey := sourceKey(prog)
		fp := srcKey[:16] // the sourceKey's fingerprint prefix; avoids a second render
		// The matrix dimensions are JSON-encoded into the key: a plain
		// join would let distinct requests collide (["v8","trunk"] vs
		// ["v8 trunk"]) and serve each other's cached bodies.
		dims, err := json.Marshal(struct {
			V []string `json:"v"`
			L []string `json:"l"`
			M bool     `json:"m"`
		}{req.Versions, req.Levels, req.Measure})
		if err != nil {
			s.writeError(w, err)
			return
		}
		key := fmt.Sprintf("sweep|%s|%s|%s", fam, dims, srcKey)
		s.serveBody(ctx, w, key, "application/x-ndjson", func(ctx context.Context) ([]byte, error) {
			sr, err := s.eng.Sweep(ctx, prog, mx)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			for i, rep := range sr.Reports {
				line := SweepReportLine{Kind: "report", CheckResponse: wireCheck(fp, rep)}
				if sr.Matrix.Measure {
					m := wireMetrics(sr.Metrics[i])
					line.Metrics = &m
				}
				b, err := marshalLine(line)
				if err != nil {
					return nil, err
				}
				buf.Write(b)
			}
			for _, ver := range sr.Matrix.Versions {
				b, err := marshalLine(SweepSummaryLine{Kind: "summary", Fingerprint: fp,
					Version: ver, LevelSetCounts: sr.LevelSetCounts(ver),
					UniqueByConjecture: sr.UniqueByConjecture(ver)})
				if err != nil {
					return nil, err
				}
				buf.Write(b)
			}
			return buf.Bytes(), nil
		})
	})(w, r)
}

func (s *Server) handleTriage(w http.ResponseWriter, r *http.Request) {
	s.admitted(func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req CheckRequest
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		cfg, err := parseConfig(req.Family, req.Version, req.Level)
		if err != nil {
			s.writeError(w, err)
			return
		}
		prog, err := parseSource(req.Source)
		if err != nil {
			s.writeError(w, err)
			return
		}
		srcKey := sourceKey(prog)
		fp := srcKey[:16] // the sourceKey's fingerprint prefix; avoids a second render
		// Schedule-enriched responses cache under their own key: the same
		// source must keep serving the byte-identical default body.
		key := "triage|" + cfg.String() + "|" + srcKey
		if req.Schedules {
			key = "triage-sched|" + cfg.String() + "|" + srcKey
		}
		s.serveBody(ctx, w, key, "application/json", func(ctx context.Context) ([]byte, error) {
			rep, err := s.eng.Check(ctx, prog, cfg)
			if err != nil {
				return nil, err
			}
			resp := TriageResponse{Fingerprint: fp, Config: cfg.String(),
				Culprits: make([]WireCulprit, 0, len(rep.Violations))}
			for _, v := range rep.Violations {
				culprit, err := s.eng.Triage(ctx, prog, cfg, v)
				if cerr := ctx.Err(); cerr != nil {
					// Distinguish "not single-knob controllable" from "the
					// request died": only the former is a result.
					return nil, cerr
				}
				if err != nil {
					culprit = ""
				}
				wc := WireCulprit{
					Violation: wireViolations([]Violation{v})[0],
					Culprit:   culprit, Controllable: culprit != ""}
				if req.Schedules {
					if red, rerr := s.eng.ScheduleReduce(ctx, prog, cfg, v); rerr == nil {
						wc.MinimalSchedule = red.Schedule.String()
						wc.Interaction = red.Interaction()
					}
					if cerr := ctx.Err(); cerr != nil {
						return nil, cerr
					}
				}
				resp.Culprits = append(resp.Culprits, wc)
			}
			return marshalLine(resp)
		})
	})(w, r)
}

func (s *Server) handleMinimize(w http.ResponseWriter, r *http.Request) {
	s.admitted(func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req MinimizeRequest
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		cfg, err := parseConfig(req.Family, req.Version, req.Level)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if req.Conjecture < 1 || req.Conjecture > 3 {
			s.writeError(w, badRequest("conjecture must be 1, 2 or 3"))
			return
		}
		if req.Var == "" {
			s.writeError(w, badRequest("empty var"))
			return
		}
		prog, err := parseSource(req.Source)
		if err != nil {
			s.writeError(w, err)
			return
		}
		srcKey := sourceKey(prog)
		fp := srcKey[:16] // the sourceKey's fingerprint prefix; avoids a second render
		// Var and Culprit are client-controlled free-form strings: encode
		// them unambiguously so ("x|", "z") and ("x", "|z") cannot share a
		// cache entry.
		key := fmt.Sprintf("minimize|%s|%d|%q|%q|%s", cfg, req.Conjecture, req.Var,
			req.Culprit, srcKey)
		s.serveBody(ctx, w, key, "application/json", func(ctx context.Context) ([]byte, error) {
			v := Violation{Conjecture: req.Conjecture, Var: req.Var}
			small := s.eng.Minimize(ctx, prog, cfg, v, req.Culprit)
			if err := ctx.Err(); err != nil {
				// A cancelled reduction returns its (nondeterministic)
				// best-so-far; the determinism guarantee forbids serving it.
				return nil, err
			}
			src := Render(small)
			return marshalLine(MinimizeResponse{Fingerprint: fp, Config: cfg.String(),
				Conjecture: req.Conjecture, Var: req.Var, Culprit: req.Culprit,
				Source: src, Lines: sourceLines(src),
				MinimizedFingerprint: Fingerprint(small)})
		})
	})(w, r)
}

// handleCampaign streams one NDJSON line per program as the campaign
// produces them (seed order), terminated by a "end" (or "error") line.
// Unlike the other work endpoints the stream is written live — there is
// no response cache — but the line sequence for a fixed request is still
// deterministic at any worker count.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	s.admitted(func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req CampaignRequest
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		if req.N <= 0 {
			s.writeError(w, badRequest("n must be positive"))
			return
		}
		cctx, cancel := context.WithCancel(ctx)
		defer cancel() // the Campaign cancel contract: never abandon the pool
		results, err := s.eng.Campaign(cctx, CampaignSpec{
			Family: Family(req.Family), Version: req.Version, Levels: req.Levels,
			N: req.N, Seed0: req.Seed0, Triage: req.Triage, Measure: req.Measure})
		if err != nil {
			s.writeError(w, badRequest("%v", err))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		programs := 0
		for res := range results {
			if res.Err != nil {
				enc.Encode(CampaignEndLine{Kind: "error", Programs: programs,
					Error: res.Err.Error()})
				return
			}
			line := CampaignResultLine{Kind: "result", Index: res.Index, Seed: res.Seed,
				Violations: map[string][]WireViolation{}}
			for level, vs := range res.Violations {
				line.Violations[level] = wireViolations(vs)
			}
			if res.Culprits != nil {
				line.Culprits = res.Culprits
			}
			if res.Metrics != nil {
				line.Metrics = map[string]WireMetrics{}
				for level, m := range res.Metrics {
					line.Metrics[level] = wireMetrics(m)
				}
			}
			if err := enc.Encode(line); err != nil {
				return // client gone; the deferred cancel drains the pool
			}
			if flusher != nil {
				flusher.Flush()
			}
			programs++
		}
		if err := ctx.Err(); err != nil {
			enc.Encode(CampaignEndLine{Kind: "error", Programs: programs,
				Error: err.Error()})
			return
		}
		enc.Encode(CampaignEndLine{Kind: "end", Programs: programs})
	})(w, r)
}

func (s *Server) handleHuntStatus(w http.ResponseWriter, r *http.Request) {
	s.huntMu.Lock()
	st := s.hunt
	if st.Progress != nil {
		p := *st.Progress // copy: the background hunt keeps updating it
		st.Progress = &p
	}
	s.huntMu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleHuntExport serves the global corpus as a JSONL snapshot. The
// body is encoded to completion under the merge mutex, so it is always
// a consistent corpus — never torn by a concurrent merge — and, because
// merged corpora serialize in canonical signature order, two replicas
// holding the same merged state export byte-identical bodies.
func (s *Server) handleHuntExport(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	s.globalMu.Lock()
	err := s.global.Encode(&buf)
	s.globalMu.Unlock()
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(buf.Bytes())
}

// handleHuntMerge accepts a corpus JSONL body and unions it into the
// global corpus. Decoding happens outside the mutex (bodies can be
// large); the union itself is atomic with respect to /hunt/export.
func (s *Server) handleHuntMerge(w http.ResponseWriter, r *http.Request) {
	src, err := corpus.Decode(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		s.writeError(w, badRequest("decode corpus: %v", err))
		return
	}
	st, err := s.mergeGlobal(src)
	if err != nil {
		s.writeError(w, badRequest("merge corpus: %v", err))
		return
	}
	s.globalMu.Lock()
	buckets := s.global.Len()
	s.globalMu.Unlock()
	writeJSON(w, http.StatusOK, MergeResponse{NewBuckets: st.NewBuckets,
		MergedBuckets: st.MergedBuckets, GlobalBuckets: buckets})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{Engine: s.eng.Stats(), Server: s.Stats()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{OK: true})
}

// huntStarted/huntProgress/huntFinished feed the /hunt/status snapshot.
func (s *Server) huntStarted() {
	s.huntMu.Lock()
	s.hunt.Running = true
	s.huntMu.Unlock()
}

func (s *Server) huntProgress(p HuntProgress) {
	s.huntMu.Lock()
	s.hunt.Progress = &p
	s.huntMu.Unlock()
}

func (s *Server) huntFinished(err error) {
	s.huntMu.Lock()
	s.hunt.Running = false
	s.hunt.Done = true
	if err != nil {
		s.hunt.Error = err.Error()
	}
	s.huntMu.Unlock()
}

// Serve runs the service until ctx is cancelled: it listens on
// spec.Listener (or spec.Addr), serves the engine's endpoints, runs the
// optional background hunt, and on cancellation drains in-flight requests
// for up to spec.ShutdownGrace before returning. A clean drain returns
// nil; a listener failure returns its error.
func (e *Engine) Serve(ctx context.Context, spec ServeSpec) error {
	s := e.NewServer(spec)
	spec = s.spec // defaults resolved
	ln := spec.Listener
	if ln == nil {
		var err error
		if ln, err = net.Listen("tcp", spec.Addr); err != nil {
			return err
		}
	}

	// The background hunt lives exactly as long as the serve context; its
	// spec's own Progress callback, if any, still runs after the status
	// snapshot updates.
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	huntDone := make(chan struct{})
	if spec.Hunt != nil {
		hs := *spec.Hunt
		user := hs.Progress
		hs.Progress = func(p HuntProgress) {
			s.huntProgress(p)
			if user != nil {
				user(p)
			}
		}
		// Feed the hunt's batch-boundary snapshots into the global corpus:
		// the callback runs on the hunt goroutine while the corpus is
		// quiescent, and Merge copies what it keeps, so the hunt can
		// mutate its corpus again as soon as the callback returns.
		userSnap := hs.Snapshot
		hs.Snapshot = func(c *Corpus) {
			s.mergeGlobal(c)
			if userSnap != nil {
				userSnap(c)
			}
		}
		s.huntStarted()
		go func() {
			defer close(huntDone)
			_, err := e.Hunt(hctx, hs)
			if errors.Is(err, context.Canceled) {
				err = nil // shutdown, not failure
			}
			s.huntFinished(err)
		}()
	} else {
		close(huntDone)
	}

	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	var err error
	select {
	case <-ctx.Done():
		sctx, scancel := context.WithTimeout(context.Background(), spec.ShutdownGrace)
		err = srv.Shutdown(sctx)
		scancel()
		if err != nil {
			// Grace expired: force-close lingering connections, which
			// cancels their request contexts and unblocks the handlers.
			srv.Close()
		}
		<-errCh // http.ErrServerClosed
	case err = <-errCh:
		// Listener failure: stop the hunt too.
	}
	hcancel()
	<-huntDone
	return err
}
