// Bughunt: the paper's §4 pipeline as a deduplicated hunting loop. One
// Engine.Hunt call fuzzes a budget of programs, checks the three
// conjectures on every one, triages each violation to its culprit
// optimization, buckets the violations by (conjecture, culprit,
// violation shape), and minimizes one exemplar per bucket — tens of
// violations collapse into a handful of unique, culprit-attributed bugs.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	eng := pokeholes.NewEngine()
	rep, err := eng.Hunt(context.Background(), pokeholes.HuntSpec{
		Family: pokeholes.CL, Version: "trunk", Levels: []string{"Og"},
		Budget: 100, Seed0: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d programs, %d violations -> %d unique bugs (%d duplicates)\n\n",
		rep.Programs, rep.Violations, rep.Corpus.Len(), rep.Dups)
	for _, b := range rep.Corpus.Buckets() {
		fmt.Printf("%s\n", b.Sig)
		fmt.Printf("  %d violation(s); first: seed %d, %s, var %s at line %d\n",
			b.Count, b.Seed, b.Config, b.Var, b.Line)
		if b.DebuggerSuspect {
			fmt.Println("  note: not reproducible in the other debugger (debugger-side suspect)")
		}
		fmt.Printf("  minimized exemplar (%d lines):\n", b.ExemplarLines)
		fmt.Println(indent(b.Exemplar))
	}
	stats := eng.Stats()
	fmt.Printf("engine: %d compiles, %d cache hits, dup rate %.0f%%\n",
		stats.Compiles, stats.CacheHits, 100*stats.DupRate)
}

func indent(s string) string {
	out := ""
	line := ""
	for _, c := range s {
		if c == '\n' {
			out += "    " + line + "\n"
			line = ""
		} else {
			line += string(c)
		}
	}
	return out
}
