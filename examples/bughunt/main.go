// Bughunt: the paper's §4 pipeline on fuzzed programs — find a conjecture
// violation, triage the culprit optimization, cross-validate in the other
// debugger, classify the DWARF manifestation, and minimize the test case.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := pokeholes.Config{Family: pokeholes.CL, Version: "trunk", Level: "Og"}
	for seed := int64(1000); seed < 1100; seed++ {
		prog := pokeholes.GenerateProgram(seed)
		report, err := pokeholes.Check(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if len(report.Violations) == 0 {
			continue
		}
		v := report.Violations[0]
		fmt.Printf("seed %d: %s\n", seed, v)

		culprit, err := pokeholes.Triage(prog, cfg, v)
		if err != nil {
			fmt.Println("  triage failed:", err)
			continue
		}
		fmt.Println("  culprit optimization:", culprit)

		exe, err := pokeholes.Compile(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		class, err := pokeholes.ClassifyDWARF(exe, v)
		if err == nil {
			fmt.Println("  DWARF manifestation:", class)
		}

		small := pokeholes.Minimize(prog, cfg, v, culprit)
		fmt.Printf("  minimized test case (culprit preserved):\n")
		fmt.Println(indent(pokeholes.Render(small)))
		return
	}
	fmt.Println("no violations found in the seed range")
}

func indent(s string) string {
	out := ""
	line := ""
	for _, c := range s {
		if c == '\n' {
			out += "    " + line + "\n"
			line = ""
		} else {
			line += string(c)
		}
	}
	return out
}
