// Bughunt: the paper's §4 pipeline on fuzzed programs — find a conjecture
// violation, triage the culprit optimization, cross-validate in the other
// debugger, classify the DWARF manifestation, and minimize the test case.
// Every stage runs on one Engine session, so the compile of Check is
// reused by Triage, ClassifyDWARF and the first Minimize probe.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	eng := pokeholes.NewEngine()
	ctx := context.Background()
	cfg := pokeholes.Config{Family: pokeholes.CL, Version: "trunk", Level: "Og"}
	for seed := int64(1000); seed < 1100; seed++ {
		prog := pokeholes.GenerateProgram(seed)
		report, err := eng.Check(ctx, prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if len(report.Violations) == 0 {
			continue
		}
		v := report.Violations[0]
		fmt.Printf("seed %d: %s\n", seed, v)

		culprit, err := eng.Triage(ctx, prog, cfg, v)
		if err != nil {
			fmt.Println("  triage failed:", err)
			continue
		}
		fmt.Println("  culprit optimization:", culprit)

		if also, err := eng.CrossValidate(ctx, prog, cfg, v); err == nil && !also {
			fmt.Println("  note: not reproducible in the other debugger")
		}

		class, err := eng.ClassifyDWARF(ctx, prog, cfg, v)
		if err == nil {
			fmt.Println("  DWARF manifestation:", class)
		}

		small := eng.Minimize(ctx, prog, cfg, v, culprit)
		fmt.Printf("  minimized test case (culprit preserved):\n")
		fmt.Println(indent(pokeholes.Render(small)))
		stats := eng.Stats()
		fmt.Printf("  engine: %d compiles, %d cache hits\n", stats.Compiles, stats.CacheHits)
		return
	}
	fmt.Println("no violations found in the seed range")
}

func indent(s string) string {
	out := ""
	line := ""
	for _, c := range s {
		if c == '\n' {
			out += "    " + line + "\n"
			line = ""
		} else {
			line += string(c)
		}
	}
	return out
}
