// Storewarm drives the artifact-store warm-start check against a running
// conjserved instance: it posts every golden-corpus program to /check and
// writes each response body to a file, so two runs against two server
// boots sharing one -store directory can be diffed byte for byte. With
// -expect-frontends 0 it additionally asserts from /stats that the server
// answered the whole corpus without a single frontend run or backend
// compilation — the warm-start contract. Any violation (or non-2xx
// response) exits non-zero, so CI can use it as the smoke-store probe.
//
// Typical CI sequence:
//
//	conjserved -addr :8080 -store artifacts/ &     # cold boot
//	storewarm -addr http://127.0.0.1:8080 -out cold/
//	# stop, reboot on the same directory
//	conjserved -addr :8080 -store artifacts/ &     # warm boot
//	storewarm -addr http://127.0.0.1:8080 -out warm/ -expect-frontends 0
//	diff -r cold/ warm/
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "conjserved base URL")
	outDir := flag.String("out", "", "directory to write one <program>.<config>.check.json per response into")
	corpus := flag.String("corpus", "testdata/golden", "directory of *.mc golden programs")
	expectFrontends := flag.Int("expect-frontends", -1, "fail unless /stats reports exactly this many frontends and zero compiles (-1: don't check)")
	flag.Parse()

	srcs, err := filepath.Glob(filepath.Join(*corpus, "*.mc"))
	if err != nil {
		log.Fatal(err)
	}
	if len(srcs) == 0 {
		log.Fatalf("storewarm: no *.mc programs under %s", *corpus)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	configs := []pokeholes.Config{
		{Family: pokeholes.GC, Version: "trunk", Level: "O0"},
		{Family: pokeholes.GC, Version: "trunk", Level: "O2"},
		{Family: pokeholes.CL, Version: "trunk", Level: "O0"},
		{Family: pokeholes.CL, Version: "trunk", Level: "O2"},
	}
	checks := 0
	for _, srcPath := range srcs {
		src, err := os.ReadFile(srcPath)
		if err != nil {
			log.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(srcPath), ".mc")
		for _, cfg := range configs {
			body := post(*addr, "/check", pokeholes.CheckRequest{
				Source: string(src), Family: string(cfg.Family),
				Version: cfg.Version, Level: cfg.Level})
			checks++
			if *outDir != "" {
				out := filepath.Join(*outDir, fmt.Sprintf("%s.%s-%s-%s.check.json",
					name, cfg.Family, cfg.Version, cfg.Level))
				if err := os.WriteFile(out, body, 0o644); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Printf("storewarm: %d /check responses over %d programs\n", checks, len(srcs))

	var stats pokeholes.StatsResponse
	if err := json.Unmarshal(get(*addr, "/stats"), &stats); err != nil {
		log.Fatalf("/stats: %v", err)
	}
	e := stats.Engine
	fmt.Printf("stats: %d frontends, %d compiles, store %d hits / %d misses / %d writes (%d entries)\n",
		e.Frontends, e.Compiles, e.Store.Hits, e.Store.Misses, e.Store.Writes, e.Store.Entries)
	if e.StoreError != "" {
		log.Fatalf("storewarm: engine reports store error: %s", e.StoreError)
	}
	if *expectFrontends >= 0 {
		if e.Frontends != int64(*expectFrontends) {
			log.Fatalf("storewarm: %d frontends, want exactly %d", e.Frontends, *expectFrontends)
		}
		if e.Compiles != 0 {
			log.Fatalf("storewarm: %d backend compilations, want 0 (warm start must serve from the store)", e.Compiles)
		}
		if e.Store.Hits == 0 {
			log.Fatalf("storewarm: zero store hits on a warm start")
		}
	}
}

// post sends a JSON body and fails the run on any non-2xx status.
func post(base, path string, req any) []byte {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("POST %s: read: %v", path, err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("POST %s: %s: %s", path, resp.Status, out)
	}
	return out
}

func get(base, path string) []byte {
	resp, err := http.Get(base + path)
	if err != nil {
		log.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("GET %s: %s: %s", path, resp.Status, out)
	}
	return out
}
