// Regression: the paper's §5.4 study in miniature — how debug-information
// quality evolves across compiler releases, and what a single fix buys.
// Both halves run as Engine campaigns: the worker pool sweeps the seed
// pool, and results aggregate in seed order.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/compiler"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	const programs = 25
	eng := pokeholes.NewEngine()
	runner := experiments.NewRunner(eng)
	ctx := context.Background()

	// Availability of variables across gc releases at -O1.
	fmt.Println("availability of variables at -O1 across gc releases:")
	for _, ver := range []string{"v4", "v6", "v8", "v10", "trunk", "patched"} {
		results, err := eng.Campaign(ctx, pokeholes.CampaignSpec{
			Family: pokeholes.GC, Version: ver, Levels: []string{"O1"},
			N: programs, Seed0: 0, Measure: true})
		if err != nil {
			log.Fatal(err)
		}
		var ms []metrics.Metrics
		for res := range results {
			if res.Err != nil {
				log.Fatal(res.Err)
			}
			ms = append(ms, res.Metrics["O1"])
		}
		mean := metrics.Mean(ms)
		fmt.Printf("  %-8s line=%.3f avail=%.3f product=%.3f\n",
			ver, mean.LineCoverage, mean.Availability, mean.Product)
	}
	// Unique violations across versions (Table 4's shape).
	fmt.Println("\nunique violations across versions:")
	for _, f := range []compiler.Family{compiler.GC, compiler.CL} {
		versions := []string{"v4", "v8", "trunk", "patched"}
		if f == compiler.CL {
			versions = []string{"v5", "v9", "trunk", "trunkstar"}
		}
		for _, ver := range versions {
			lv, err := runner.Sweep(ctx, f, ver, programs, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-3s %-10s C1=%-4d C2=%-4d C3=%-4d\n",
				f, ver, lv.Unique(1), lv.Unique(2), lv.Unique(3))
		}
	}
}
