// Regression: the paper's §5.4 study in miniature — how debug-information
// quality evolves across compiler releases, and what a single fix buys.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/compiler"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	const programs = 25
	// Availability of variables across gc releases at -O1.
	fmt.Println("availability of variables at -O1 across gc releases:")
	for _, ver := range []string{"v4", "v6", "v8", "v10", "trunk", "patched"} {
		var ms []metrics.Metrics
		for seed := int64(0); seed < programs; seed++ {
			prog := pokeholes.GenerateProgram(seed)
			m, err := pokeholes.Measure(prog, pokeholes.Config{
				Family: pokeholes.GC, Version: ver, Level: "O1"})
			if err != nil {
				log.Fatal(err)
			}
			ms = append(ms, m)
		}
		mean := metrics.Mean(ms)
		fmt.Printf("  %-8s line=%.3f avail=%.3f product=%.3f\n",
			ver, mean.LineCoverage, mean.Availability, mean.Product)
	}
	// Unique violations across versions (Table 4's shape).
	fmt.Println("\nunique violations across versions:")
	for _, f := range []compiler.Family{compiler.GC, compiler.CL} {
		versions := []string{"v4", "v8", "trunk", "patched"}
		if f == compiler.CL {
			versions = []string{"v5", "v9", "trunk", "trunkstar"}
		}
		for _, ver := range versions {
			lv, err := experiments.Sweep(f, ver, programs, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-3s %-10s C1=%-4d C2=%-4d C3=%-4d\n",
				f, ver, lv.Unique(1), lv.Unique(2), lv.Unique(3))
		}
	}
}
