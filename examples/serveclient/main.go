// Serveclient exercises a running conjserved instance end to end: it
// checks a small program, streams a matrix sweep as NDJSON, triages the
// violations, and prints the engine's cache counters from /stats. Any
// non-2xx response (or transport failure) exits non-zero, so CI can use
// it as a service smoke test.
//
// Start a server first:
//
//	go run ./cmd/conjserved -addr :8080
//	go run ./examples/serveclient -addr http://127.0.0.1:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"

	"repro"
)

const src = `
int g;
extern void opaque(int x);
int main(void) {
  int a = 6 * 7;
  int b = a + 1;
  g = a * b;
  opaque(b);
  opaque(a);
  return 0;
}
`

// post sends a JSON body and fails the run on any non-2xx status.
func post(base, path string, req any) []byte {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("POST %s: read: %v", path, err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("POST %s: %s: %s", path, resp.Status, out)
	}
	return out
}

func get(base, path string) []byte {
	resp, err := http.Get(base + path)
	if err != nil {
		log.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("GET %s: %s: %s", path, resp.Status, out)
	}
	return out
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "conjserved base URL")
	flag.Parse()
	base := *addr

	// One configuration's report.
	var check pokeholes.CheckResponse
	body := post(base, "/check", pokeholes.CheckRequest{
		Source: src, Family: "gc", Version: "trunk", Level: "O2"})
	if err := json.Unmarshal(body, &check); err != nil {
		log.Fatalf("/check: %v", err)
	}
	fmt.Printf("check %s (program %s): %d lines hit, %d violations\n",
		check.Config, check.Fingerprint, check.LinesHit, len(check.Violations))
	for _, v := range check.Violations {
		fmt.Printf("  %s: %s is %s at line %d (%s)\n", v.Key, v.Var, v.State, v.Line, v.Detail)
	}

	// The same program across a version × level grid, streamed as NDJSON.
	body = post(base, "/sweep", pokeholes.SweepRequest{
		Source: src, Family: "gc", Versions: []string{"v8", "trunk"},
		Levels: []string{"O1", "O2", "O3"}})
	sc := bufio.NewScanner(bytes.NewReader(body))
	reports, summaries := 0, 0
	for sc.Scan() {
		var line struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatalf("/sweep: bad NDJSON line: %v", err)
		}
		switch line.Kind {
		case "report":
			reports++
		case "summary":
			summaries++
			fmt.Printf("sweep summary: %s\n", sc.Text())
		default:
			log.Fatalf("/sweep: unexpected line kind %q", line.Kind)
		}
	}
	fmt.Printf("sweep: %d report lines, %d summaries\n", reports, summaries)

	// Attribute every violation of the checked configuration to a culprit.
	var triage pokeholes.TriageResponse
	body = post(base, "/triage", pokeholes.CheckRequest{
		Source: src, Family: "gc", Version: "trunk", Level: "O2"})
	if err := json.Unmarshal(body, &triage); err != nil {
		log.Fatalf("/triage: %v", err)
	}
	for _, c := range triage.Culprits {
		culprit := c.Culprit
		if !c.Controllable {
			culprit = "(not single-knob controllable)"
		}
		fmt.Printf("triage %s -> %s\n", c.Violation.Key, culprit)
	}

	// The shared engine's counters: the sweep re-used the check's
	// frontend, so frontends stays at 1 however many requests ran.
	var stats pokeholes.StatsResponse
	if err := json.Unmarshal(get(base, "/stats"), &stats); err != nil {
		log.Fatalf("/stats: %v", err)
	}
	fmt.Printf("stats: %d frontends, %d compiles, %d/%d cache hits/misses, %d response hits\n",
		stats.Engine.Frontends, stats.Engine.Compiles,
		stats.Engine.CacheHits, stats.Engine.CacheMisses, stats.Server.ResponseHits)
}
