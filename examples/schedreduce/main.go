// Schedreduce delta-debugs the pass schedule of one violation down to its
// minimal reproducing subsequence (Engine.ScheduleReduce) and prints the
// result. It doubles as the CI smoke-schedule probe: after the initial
// Check has warmed the engine, the reduction itself must not run the
// frontend even once — every ddmin probe re-optimizes the cached lowered
// module and re-runs only the debugger — so the example asserts that the
// engine's frontend counter is unchanged across the reduction and exits
// non-zero if any probe slipped back to a full recompile. The probes must
// also lean on the schedule-prefix snapshot tier — each one resumes from
// the longest cached prefix state instead of re-optimizing from entry 0 —
// so the example additionally asserts that the reduction skipped at least
// one pass execution via a snapshot.
//
// Usage:
//
//	schedreduce -src testdata/golden/seed022.mc -family gc -version trunk -level O2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	src := flag.String("src", "", "MiniC source file to check (required)")
	family := flag.String("family", "gc", "compiler family: gc or cl")
	version := flag.String("version", "trunk", "compiler version")
	level := flag.String("level", "O2", "optimization level")
	flag.Parse()
	if *src == "" {
		log.Fatal("schedreduce: -src is required")
	}

	text, err := os.ReadFile(*src)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := pokeholes.ParseProgram(string(text))
	if err != nil {
		log.Fatalf("schedreduce: %s: %v", *src, err)
	}

	eng := pokeholes.NewEngine()
	ctx := context.Background()
	cfg := pokeholes.Config{Family: pokeholes.Family(*family), Version: *version, Level: *level}
	rep, err := eng.Check(ctx, prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		log.Fatalf("schedreduce: %s has no conjecture violations at %s; pick a program that does", *src, cfg)
	}
	v := rep.Violations[0]
	fmt.Printf("%s @ %s: %d violations; reducing first (C%d, var %s line %d)\n",
		*src, cfg, len(rep.Violations), v.Conjecture, v.Var, v.Line)

	// The Check above lowered the program once; the reduction must reuse
	// that cached module for every probe (Optimize+Codegen only), and its
	// probes — explicit schedules sharing prefixes with the canonical run
	// and each other — must resume from prefix snapshots.
	before := eng.Stats()
	red, err := eng.ScheduleReduce(ctx, prog, cfg, v)
	if err != nil {
		log.Fatal(err)
	}
	after := eng.Stats()
	if d := after.Frontends - before.Frontends; d != 0 {
		log.Fatalf("schedreduce: reduction ran the frontend %d times, want 0 (probes must reuse the cached lowered module)", d)
	}
	skipped := after.PassesSkipped - before.PassesSkipped
	if skipped == 0 {
		log.Fatalf("schedreduce: reduction skipped no pass executions (stats %+v); probes must resume from schedule-prefix snapshots", after)
	}

	fmt.Printf("minimal schedule: %s\n", orNone(red.Schedule.String()))
	fmt.Printf("probes: %d (all frontend-free, %d pass executions skipped via %d snapshot resumes)\n",
		red.Probes, skipped, after.SnapshotHits-before.SnapshotHits)
	if red.Interaction() {
		fmt.Println("interaction bug: reproducing needs >= 2 passes together")
	} else if red.Schedule.Len() == 1 {
		fmt.Println("single-pass bug: one pass reproduces it alone")
	} else {
		fmt.Println("pre-optimizer: the violation survives an empty schedule")
	}
}

// orNone renders the empty schedule readably.
func orNone(s string) string {
	if s == "" {
		return "(empty)"
	}
	return s
}
